(* Periodic metrics sampler on the simulated clock.

   Each tick snapshots the sim's registry and hands it to the callback.
   The tricky part is termination: experiments run the scheduler until the
   queue drains (Network.settle), so an unconditionally self-rescheduling
   sampler would keep the queue non-empty forever.  We therefore go
   dormant when a tick finds nothing else queued — the simulation has
   converged — and resume through Sim.on_wake when new work arrives (the
   next measurement phase of the same experiment).  The caller takes the
   final settled snapshot explicitly (see Framework.Telemetry). *)

type t = {
  sim : Sim.t;
  interval : Time.span;
  on_sample : Metrics.snapshot -> unit;
  mutable ticks : int;
  mutable dormant : bool;
  mutable stopped : bool;
}

let category = "telemetry.sample"

let rec tick t () =
  if not t.stopped then begin
    t.ticks <- t.ticks + 1;
    t.on_sample (Metrics.snapshot (Sim.metrics t.sim) ~at:(Sim.now t.sim));
    (* Our own event has been popped already: pending > 0 means real work
       remains, so the timeline should keep sampling. *)
    if Sim.pending t.sim > 0 then arm t else t.dormant <- true
  end

and arm t = ignore (Sim.schedule_after ~category t.sim t.interval (tick t))

let start sim ~interval ~on_sample =
  if Time.to_us interval <= 0 then
    invalid_arg "Sampler.start: interval must be positive";
  let t = { sim; interval; on_sample; ticks = 0; dormant = false; stopped = false } in
  Sim.on_wake sim (fun () ->
      if (not t.stopped) && t.dormant then begin
        t.dormant <- false;
        arm t
      end);
  arm t;
  t

let stop t = t.stopped <- true

let ticks t = t.ticks
