lib/net/fib.mli: Ipv4
