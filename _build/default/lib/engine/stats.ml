(* Descriptive statistics for experiment results: the paper reports
   convergence times as boxplots over repeated runs (Fig. 2). *)

type boxplot = {
  n : int;
  minimum : float;
  q1 : float;
  median : float;
  q3 : float;
  maximum : float;
  mean : float;
  stddev : float;
}

let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev = function
  | [] | [ _ ] -> 0.0
  | l ->
    let m = mean l in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l in
    sqrt (sq /. float_of_int (List.length l - 1))

(* Linear-interpolation quantile (type 7, the R/NumPy default) on a sorted
   array. *)
let quantile_sorted a q =
  let n = Array.length a in
  if n = 0 then nan
  else if n = 1 then a.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let quantile l q =
  let a = Array.of_list l in
  Array.sort Float.compare a;
  quantile_sorted a q

let median l = quantile l 0.5

let boxplot l =
  let a = Array.of_list l in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.boxplot: empty sample";
  {
    n;
    minimum = a.(0);
    q1 = quantile_sorted a 0.25;
    median = quantile_sorted a 0.5;
    q3 = quantile_sorted a 0.75;
    maximum = a.(n - 1);
    mean = mean l;
    stddev = stddev l;
  }

let pp_boxplot ppf b =
  Fmt.pf ppf "n=%d min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f mean=%.2f sd=%.2f"
    b.n b.minimum b.q1 b.median b.q3 b.maximum b.mean b.stddev

(* Least-squares fit y = a + b*x; used to check Fig. 2's "linear
   reduction" claim programmatically. *)
let linear_fit pts =
  match pts with
  | [] | [ _ ] -> invalid_arg "Stats.linear_fit: need at least two points"
  | _ ->
    let n = float_of_int (List.length pts) in
    let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 pts in
    let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 pts in
    let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 pts in
    let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 pts in
    let denom = (n *. sxx) -. (sx *. sx) in
    if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x";
    let b = ((n *. sxy) -. (sx *. sy)) /. denom in
    let a = (sy -. (b *. sx)) /. n in
    (a, b)

let r_squared pts =
  let a, b = linear_fit pts in
  let ys = List.map snd pts in
  let ybar = mean ys in
  let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. ybar) ** 2.0)) 0.0 ys in
  let ss_res =
    List.fold_left (fun acc (x, y) -> acc +. ((y -. (a +. (b *. x))) ** 2.0)) 0.0 pts
  in
  if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot)

(* Streaming accumulator for long-running measurements (loss counters,
   per-update latencies) that should not retain every sample. *)
module Running = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable minimum : float;
    mutable maximum : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; minimum = infinity; maximum = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.minimum then t.minimum <- x;
    if x > t.maximum then t.maximum <- x

  let count t = t.n

  let mean t = if t.n = 0 then nan else t.mean

  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

  let stddev t = sqrt (variance t)

  let minimum t = if t.n = 0 then nan else t.minimum

  let maximum t = if t.n = 0 then nan else t.maximum
end
