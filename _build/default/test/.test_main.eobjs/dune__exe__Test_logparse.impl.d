test/test_logparse.ml: Alcotest Engine Fmt Framework List Net Option Topology
