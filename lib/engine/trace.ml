(* Structured event log.

   The original framework grep-analyses Quagga log files; we keep structured
   records and can render them to similar text lines, so the log-analysis
   tooling (framework.Logparse) has a faithful input format. *)

type level = Debug | Info | Warn

type record = {
  time : Time.t;
  node : string;
  category : string;
  level : level;
  message : string;
}

type t = {
  mutable records : record list; (* newest first *)
  mutable count : int;
  mutable total : int; (* records ever seen, eviction-proof *)
  mutable warns : int; (* Warn-level records ever seen *)
  mutable enabled : bool;
  mutable capacity : int; (* 0 = unbounded *)
}

let create ?(enabled = true) ?(capacity = 0) () =
  { records = []; count = 0; total = 0; warns = 0; enabled; capacity }

let set_enabled t flag = t.enabled <- flag

let enabled t = t.enabled

let record t ~time ~node ~category ?(level = Info) message =
  if t.enabled then begin
    t.records <- { time; node; category; level; message } :: t.records;
    t.count <- t.count + 1;
    t.total <- t.total + 1;
    if level = Warn then t.warns <- t.warns + 1;
    if t.capacity > 0 && t.count > t.capacity then begin
      (* Drop the oldest half, but always retain at least the newest
         record — at capacity 1 the eviction would otherwise empty the
         log entirely.  Amortized O(1) per record. *)
      let keep = Stdlib.max 1 (t.capacity / 2) in
      t.records <- List.filteri (fun i _ -> i < keep) t.records;
      t.count <- keep
    end
  end

let count t = t.count

let total t = t.total

let warn_count t = t.warns

let records t = List.rev t.records

let clear t =
  t.records <- [];
  t.count <- 0

let filter ?node ?category ?since t =
  let matches r =
    (match node with None -> true | Some n -> String.equal r.node n)
    && (match category with None -> true | Some c -> String.equal r.category c)
    && match since with None -> true | Some s -> Time.(r.time >= s)
  in
  List.filter matches (records t)

let level_to_string = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let render_line r =
  Fmt.str "%012d %s %s[%s]: %s" (Time.to_us r.time) (level_to_string r.level)
    r.node r.category r.message

let to_lines t = List.map render_line (records t)

let last_time_matching t pred =
  (* records are newest-first, so the first match is the latest. *)
  let rec find = function
    | [] -> None
    | r :: rest -> if pred r then Some r.time else find rest
  in
  find t.records
