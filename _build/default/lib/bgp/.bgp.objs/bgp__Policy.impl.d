lib/bgp/policy.ml: Attrs Community Fmt Net
