lib/net/fib.ml: Int32 Ipv4 List Option
