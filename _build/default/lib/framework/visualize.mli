(** Visualization: Graphviz export of the experiment component graph
    (Fig. 1 equivalent), ASCII boxplots for sweeps, route-change
    timelines. *)

val spec_to_dot : ?with_infrastructure:bool -> Topology.Spec.t -> string
(** Dot source: SDN members as boxes, relationship-styled AS links, and
    (unless disabled) the collector and controller/speaker with their
    monitoring/control edges. *)

val series_to_ascii : ?width:int -> Experiments.series -> string
(** One boxplot row per sweep point over a shared scale. *)

val timeline : Logparse.entry list -> Net.Ipv4.prefix -> string
(** Rendered route-change history for a prefix. *)
