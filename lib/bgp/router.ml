(* A BGP speaker emulating one AS's border router (the framework isolates
   inter- from intra-domain routing by emulating each AS as one device).

   Faithful protocol mechanics that matter for convergence dynamics:
   - Adj-RIB-In / Loc-RIB / Adj-RIB-Out separation with implicit withdraw;
   - the standard decision process (Decision.compare);
   - per-peer MRAI with Quagga-style jitter — the pacing that produces the
     classic path-exploration rounds on withdrawal;
   - AS-path loop rejection on import and suppression on export;
   - serialized update processing: a single-threaded bgpd works through
     its input queue, so each update's processing delay pushes a
     [busy_until] watermark and later updates queue behind it. *)

module Pt = Net.Ipv4.Prefix_trie

type stats = {
  mutable msgs_in : int;
  mutable msgs_out : int;
  mutable prefixes_in : int;
  mutable prefixes_out : int;
  mutable decision_runs : int;
  mutable best_changes : int;
}

(* Registry handles, created once per router (labels [node=<asn>]). *)
type telemetry = {
  updates_sent : Engine.Metrics.Counter.t;
  updates_received : Engine.Metrics.Counter.t;
  withdrawals_sent : Engine.Metrics.Counter.t;
  withdrawals_received : Engine.Metrics.Counter.t;
  decision_runs_c : Engine.Metrics.Counter.t;
  best_changes_c : Engine.Metrics.Counter.t;
  hold_expirations : Engine.Metrics.Counter.t;
}

type peer = {
  peer_asn : Net.Asn.t;
  peer_node : int;
  policy : Policy.t;
  mutable established : bool;
  mutable open_sent : bool;
  mutable peer_hold : int; (* hold time (s) the peer proposed in its OPEN; 0 = none *)
  mutable retry_attempt : int; (* reconnect backoff position *)
  mrai : Mrai.t;
  mutable keepalive : Engine.Timer.t option; (* periodic KEEPALIVE emission *)
  mutable hold : Engine.Timer.t option; (* liveness: reset by any inbound message *)
}

type t = {
  sim : Engine.Sim.t;
  node : Engine.Node.t;
  rng : Engine.Rng.t;
  asn : Net.Asn.t;
  node_id : int;
  router_id : Net.Ipv4.addr;
  config : Config.t;
  send_raw : dst:int -> Message.t -> bool;
  mutable peers : peer Net.Asn.Map.t;
  peer_of_node : (int, Net.Asn.t) Hashtbl.t;
  adj_in : Rib.Adj_in.t;
  loc : Rib.Loc.t;
  adj_out : Rib.Adj_out.t;
  originated : Attrs.t Pt.t;
  mutable busy_until : Engine.Time.t;
  (* Updates accepted but not yet processed by the serialized bgpd:
     (finish instant, peer, update) in processing order.  The scheduler
     event for each entry pops the head, so the queue is the explicit,
     checkpointable form of what used to live in captured closures. *)
  pending_updates : (Engine.Time.t * Net.Asn.t * Message.update) Queue.t;
  damping : Damping.t option;
  stats : stats;
  tm : telemetry;
  mutable on_best_change : (Net.Ipv4.prefix -> Route.t option -> unit) array;
  (* Update batching: every entry point that can enqueue outbound changes
     runs inside a batch scope; peers whose MRAI state went dirty during
     the scope are flushed once, in ascending ASN order, when the
     outermost scope closes — one packed UPDATE per peer per event. *)
  mutable batch_depth : int;
  mutable batch_dirty : peer list;
}

let name t = Net.Asn.to_string t.asn

let log t fmt = Engine.Sim.logf t.sim ~node:(Net.Asn.to_string t.asn) ~category:"bgp" fmt

(* [create] is completed by [hook_lifecycle] at the bottom of this file
   (the crash/restart/snapshot hooks need the session machinery defined
   in between). *)
let create_unhooked ?damping ~sim ~asn ~node_id ~router_id ~config ~send () =
  let m = Engine.Sim.metrics sim in
  let labels = [ ("node", Net.Asn.to_string asn) ] in
  let counter ?help name = Engine.Metrics.counter m ?help ~labels name in
  let tm =
    {
      updates_sent =
        counter ~help:"prefixes announced in sent UPDATEs" "bgp_updates_sent_total";
      updates_received =
        counter ~help:"prefixes announced in received UPDATEs" "bgp_updates_received_total";
      withdrawals_sent =
        counter ~help:"prefixes withdrawn in sent UPDATEs" "bgp_withdrawals_sent_total";
      withdrawals_received =
        counter ~help:"prefixes withdrawn in received UPDATEs"
          "bgp_withdrawals_received_total";
      decision_runs_c = counter ~help:"decision process invocations" "bgp_decision_runs_total";
      best_changes_c = counter ~help:"Loc-RIB best-path changes" "bgp_best_changes_total";
      hold_expirations =
        counter ~help:"sessions torn down by hold-timer expiry" "bgp_hold_expirations_total";
    }
  in
  (* The split from the root stream happens exactly where it always did,
     keeping every later subsystem's draws byte-identical; the node only
     borrows the stream for checkpointing. *)
  let rng = Engine.Rng.split (Engine.Sim.rng sim) in
  let node = Engine.Node.create ~kind:"router" ~rng sim ~name:(Net.Asn.to_string asn) in
  let t =
    {
      damping = Option.map Damping.create damping;
      sim;
      node;
      rng;
      asn;
      node_id;
      router_id;
      config;
      send_raw = send;
      peers = Net.Asn.Map.empty;
      peer_of_node = Hashtbl.create 8;
      adj_in = Rib.Adj_in.create ();
      loc = Rib.Loc.create ();
      adj_out = Rib.Adj_out.create ();
      originated = Pt.create ();
      busy_until = Engine.Time.zero;
      pending_updates = Queue.create ();
      stats =
        {
          msgs_in = 0;
          msgs_out = 0;
          prefixes_in = 0;
          prefixes_out = 0;
          decision_runs = 0;
          best_changes = 0;
        };
      tm;
      on_best_change = [||];
      batch_depth = 0;
      batch_dirty = [];
    }
  in
  let loc_gauge =
    Engine.Metrics.gauge m ~help:"routes in the Loc-RIB" ~labels "bgp_loc_rib_routes"
  in
  let adj_gauge =
    Engine.Metrics.gauge m ~help:"routes in the Adj-RIB-In" ~labels "bgp_adj_in_routes"
  in
  Engine.Metrics.on_collect m (fun () ->
      Engine.Metrics.Gauge.set loc_gauge (float_of_int (Rib.Loc.size t.loc));
      Engine.Metrics.Gauge.set adj_gauge (float_of_int (Rib.Adj_in.size t.adj_in)));
  t

let asn t = t.asn

let node t = t.node

let node_id t = t.node_id

let router_id t = t.router_id

let stats t = t.stats

(* Rebuild-on-subscribe (rare) so notification (hot, every best-path
   change) is a plain array iteration — never the quadratic
   [subscribers @ [f]] append. *)
let subscribe_best_change t f = t.on_best_change <- Array.append t.on_best_change [| f |]

let find_peer t peer_asn = Net.Asn.Map.find_opt peer_asn t.peers

let peer_asns t = List.map fst (Net.Asn.Map.bindings t.peers)

let peer_established t peer_asn =
  match find_peer t peer_asn with Some p -> p.established | None -> false

let session_state t peer_asn =
  match find_peer t peer_asn with
  | None -> Session.Idle
  | Some p -> Session.of_flags ~open_sent:p.open_sent ~established:p.established

let send_message t peer msg =
  let sent = t.send_raw ~dst:peer.peer_node msg in
  if sent then begin
    t.stats.msgs_out <- t.stats.msgs_out + 1;
    match msg with
    | Message.Update u ->
      t.stats.prefixes_out <- t.stats.prefixes_out + Message.update_size u;
      Engine.Metrics.Counter.add t.tm.updates_sent (List.length u.Message.announced);
      Engine.Metrics.Counter.add t.tm.withdrawals_sent (List.length u.Message.withdrawn)
    | Message.Open _ | Message.Keepalive | Message.Notification _ -> ()
  end;
  sent

let flush_batch t =
  let dirty = t.batch_dirty in
  t.batch_dirty <- [];
  let dirty =
    List.sort_uniq (fun a b -> Net.Asn.compare a.peer_asn b.peer_asn) dirty
  in
  List.iter (fun p -> Mrai.flush_event p.mrai) dirty

let with_batch t f =
  t.batch_depth <- t.batch_depth + 1;
  Fun.protect
    ~finally:(fun () ->
      t.batch_depth <- t.batch_depth - 1;
      if t.batch_depth = 0 then flush_batch t)
    f

let add_peer t ~peer_asn ~peer_node ~policy =
  if Net.Asn.Map.mem peer_asn t.peers then
    invalid_arg (Fmt.str "Router.add_peer: duplicate %a" Net.Asn.pp peer_asn);
  let send_update update =
    (* Looked up at send time: the peer may have gone down since the
       update was queued. *)
    match Net.Asn.Map.find_opt peer_asn t.peers with
    | Some p when p.established -> ignore (send_message t p (Message.Update update))
    | Some _ | None -> ()
  in
  let mrai =
    Mrai.create t.sim ~rng:(Engine.Rng.split t.rng) ~config:t.config
      ~name:(Fmt.str "%a-mrai-%a" Net.Asn.pp t.asn Net.Asn.pp peer_asn)
      ~send:send_update
  in
  let peer =
    { peer_asn; peer_node; policy; established = false; open_sent = false; peer_hold = 0;
      retry_attempt = 0; mrai; keepalive = None; hold = None }
  in
  Mrai.set_on_dirty mrai (fun () ->
      if t.batch_depth > 0 then t.batch_dirty <- peer :: t.batch_dirty
      else Mrai.flush_event mrai);
  t.peers <- Net.Asn.Map.add peer_asn peer t.peers;
  Hashtbl.replace t.peer_of_node peer_node peer_asn;
  (* Session-state gauge, sampled at scrape time. *)
  let m = Engine.Sim.metrics t.sim in
  let state_gauge =
    Engine.Metrics.gauge m ~help:"BGP session FSM state (0=idle, 1=connect, 2=established)"
      ~labels:[ ("node", Net.Asn.to_string t.asn); ("peer", Net.Asn.to_string peer_asn) ]
      "bgp_session_state"
  in
  Engine.Metrics.on_collect m (fun () ->
      Engine.Metrics.Gauge.set state_gauge
        (float_of_int
           (Session.to_int
              (Session.of_flags ~open_sent:peer.open_sent ~established:peer.established))))

(* --- Decision process and export ------------------------------------- *)

let local_route t prefix =
  match Pt.find prefix t.originated with
  | None -> None
  | Some attrs ->
    Some (Route.make ~prefix ~attrs ~source:Route.Local ~learned_at:Engine.Time.zero)

let candidates t prefix =
  let learned = Rib.Adj_in.candidates t.adj_in prefix in
  (* Damping excludes suppressed (peer, prefix) routes from selection;
     they remain in Adj-RIB-In and return once their penalty decays. *)
  let learned =
    match t.damping with
    | None -> learned
    | Some damping ->
      let now = Engine.Sim.now t.sim in
      List.filter
        (fun r ->
          match Route.from_peer r with
          | Some peer -> not (Damping.is_suppressed damping ~peer ~prefix ~now)
          | None -> true)
        learned
  in
  match local_route t prefix with Some r -> r :: learned | None -> learned

let damping_state t = t.damping

let best t prefix = Rib.Loc.find t.loc prefix

let loc_entries t = Rib.Loc.entries t.loc

let originated_prefixes t = Pt.keys t.originated

let route_equal a b =
  (match (Route.source a, Route.source b) with
  | Route.Local, Route.Local -> true
  | Route.Ebgp p, Route.Ebgp q -> Net.Asn.equal p q
  | Route.Local, Route.Ebgp _ | Route.Ebgp _, Route.Local -> false)
  && Attrs.wire_equal (Route.attrs a) (Route.attrs b)
  && (Route.attrs a).Attrs.local_pref = (Route.attrs b).Attrs.local_pref

let provenance t (route : Route.t) =
  match Route.source route with
  | Route.Local -> Policy.Originated
  | Route.Ebgp q -> (
    match find_peer t q with
    | Some p -> Policy.From (Policy.relationship p.policy)
    | None -> Policy.From Policy.Unrestricted)

(* What (if anything) the current best route looks like when advertised to
   [peer]. *)
let desired_export t prefix best peer =
  match best with
  | None -> None
  | Some route ->
    if Route.from_peer route = Some peer.peer_asn then None
    else if Attrs.path_contains (Route.attrs route) peer.peer_asn then None
    else begin
      let rec prepend_n n a = if n <= 0 then a else prepend_n (n - 1) (Attrs.prepend a t.asn) in
      let attrs =
        Route.attrs route
        |> prepend_n (1 + Policy.export_prepend peer.policy)
        |> (fun a -> Attrs.with_next_hop a t.router_id)
        |> fun a -> Attrs.with_local_pref a Attrs.default_local_pref
      in
      Policy.export peer.policy ~provenance:(provenance t route) ~prefix attrs
    end

let export_to_peer t prefix best peer =
  if peer.established then begin
    let current = Rib.Adj_out.find t.adj_out ~peer:peer.peer_asn prefix in
    match (desired_export t prefix best peer, current) with
    | Some a, Some b when Attrs.wire_equal a b -> ()
    | Some a, (Some _ | None) ->
      Rib.Adj_out.set t.adj_out ~peer:peer.peer_asn prefix a;
      Mrai.enqueue_announce peer.mrai prefix a
    | None, Some _ ->
      Rib.Adj_out.remove t.adj_out ~peer:peer.peer_asn prefix;
      Mrai.enqueue_withdraw peer.mrai prefix
    | None, None -> ()
  end

let export_all_peers t prefix best =
  Net.Asn.Map.iter (fun _ peer -> export_to_peer t prefix best peer) t.peers

let run_decision t prefix =
  t.stats.decision_runs <- t.stats.decision_runs + 1;
  Engine.Metrics.Counter.inc t.tm.decision_runs_c;
  let best = Decision.select (candidates t prefix) in
  let old = Rib.Loc.find t.loc prefix in
  let changed =
    match (old, best) with
    | None, None -> false
    | Some a, Some b -> not (route_equal a b)
    | None, Some _ | Some _, None -> true
  in
  if changed then begin
    (match best with
    | Some r ->
      Rib.Loc.set t.loc r;
      log t "bestpath %a -> [%a]" Net.Ipv4.pp_prefix prefix Attrs.pp_path
        (Attrs.as_path (Route.attrs r))
    | None ->
      Rib.Loc.remove t.loc prefix;
      log t "bestpath %a -> unreachable" Net.Ipv4.pp_prefix prefix);
    t.stats.best_changes <- t.stats.best_changes + 1;
    Engine.Metrics.Counter.inc t.tm.best_changes_c;
    Array.iter (fun f -> f prefix best) t.on_best_change;
    export_all_peers t prefix best
  end

let run_decisions t prefixes =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun p ->
      if not (Hashtbl.mem seen p) then begin
        Hashtbl.replace seen p ();
        run_decision t p
      end)
    prefixes

(* --- Origination ------------------------------------------------------ *)

let originate ?(med = 0) ?(origin = Attrs.Igp) ?(communities = Community.Set.empty) t prefix =
  let attrs =
    Attrs.make ~as_path:[] ~med ~origin ~communities ~next_hop:t.router_id ()
  in
  Pt.set prefix attrs t.originated;
  log t "originate %a" Net.Ipv4.pp_prefix prefix;
  with_batch t (fun () -> run_decision t prefix)

let withdraw_origin t prefix =
  if Pt.mem prefix t.originated then begin
    Pt.remove prefix t.originated;
    log t "withdraw-origin %a" Net.Ipv4.pp_prefix prefix;
    with_batch t (fun () -> run_decision t prefix)
  end

(* --- Sessions ---------------------------------------------------------- *)

let sync_peer t peer =
  List.iter (fun (prefix, route) -> export_to_peer t prefix (Some route) peer)
    (Rib.Loc.entries t.loc)

let stop_liveness peer =
  Option.iter Engine.Timer.cancel peer.keepalive;
  Option.iter Engine.Timer.cancel peer.hold

(* The hold time (whole seconds) we propose in our OPENs; 0 when
   keepalives are off — RFC 4271 lets either side disable liveness. *)
let our_hold_secs t =
  match t.config.Config.keepalives with
  | None -> 0
  | Some { Config.hold_time; _ } ->
    let s = int_of_float (Engine.Time.to_sec_f hold_time) in
    max 1 s

(* RFC 4271 §4.2 negotiation: the session hold time is the smaller of the
   two proposals, and 0 on either side disables liveness entirely. *)
let negotiated_hold t peer =
  let ours = our_hold_secs t in
  if ours = 0 || peer.peer_hold = 0 then None
  else Some (Engine.Time.sec (min ours peer.peer_hold))

let send_open t peer =
  ignore
    (send_message t peer
       (Message.Open { asn = t.asn; router_id = t.router_id; hold_time = our_hold_secs t }))

let session_down t peer_asn =
  match find_peer t peer_asn with
  | None -> ()
  | Some peer ->
    if peer.established || peer.open_sent then begin
      peer.established <- false;
      peer.open_sent <- false;
      Mrai.reset peer.mrai;
      stop_liveness peer;
      log t "session %a down" Net.Asn.pp peer_asn;
      let dropped_in = Rib.Adj_in.drop_peer t.adj_in ~peer:peer_asn in
      ignore (Rib.Adj_out.drop_peer t.adj_out ~peer:peer_asn);
      with_batch t (fun () -> run_decisions t dropped_in)
    end

(* KEEPALIVE emission + hold-timer supervision.  Armed only when both
   sides proposed a non-zero hold time; the emission interval is jittered
   per cycle (Quagga jitters keepalives the same way it jitters MRAI) and
   clamped to a third of the negotiated hold so three losses are needed
   to kill a healthy session. *)
let rec start_liveness t peer =
  match (t.config.Config.keepalives, negotiated_hold t peer) with
  | None, _ | _, None -> ()
  | Some { Config.interval; _ }, Some hold_time ->
    let interval =
      Engine.Time.min interval (Engine.Time.span_scale hold_time (1.0 /. 3.0))
    in
    let jittered () = Engine.Rng.jitter_span t.rng interval ~lo:0.75 ~hi:1.0 in
    let keepalive =
      match peer.keepalive with
      | Some timer -> timer
      | None ->
        let timer_ref = ref None in
        let emit () =
          if peer.established then begin
            ignore (send_message t peer Message.Keepalive);
            Option.iter (fun timer -> Engine.Timer.start timer (jittered ())) !timer_ref
          end
        in
        let timer =
          Engine.Timer.create ~category:"bgp.liveness" t.sim
            ~name:(Fmt.str "%a-keepalive-%a" Net.Asn.pp t.asn Net.Asn.pp peer.peer_asn)
            ~callback:emit
        in
        timer_ref := Some timer;
        peer.keepalive <- Some timer;
        Engine.Node.own_timer t.node timer;
        timer
    in
    let hold =
      match peer.hold with
      | Some timer -> timer
      | None ->
        let timer =
          Engine.Timer.create ~category:"bgp.liveness" t.sim
            ~name:(Fmt.str "%a-hold-%a" Net.Asn.pp t.asn Net.Asn.pp peer.peer_asn)
            ~callback:(fun () -> hold_expired t peer)
        in
        peer.hold <- Some timer;
        Engine.Node.own_timer t.node timer;
        timer
    in
    Engine.Timer.start keepalive (jittered ());
    Engine.Timer.start hold hold_time

and hold_expired t peer =
  Engine.Sim.logf t.sim ~node:(Net.Asn.to_string t.asn) ~category:"bgp"
    ~level:Engine.Trace.Warn "hold timer expired for %a" Net.Asn.pp peer.peer_asn;
  Engine.Metrics.Counter.inc t.tm.hold_expirations;
  ignore (send_message t peer (Message.Notification "hold timer expired"));
  session_down t peer.peer_asn;
  (* The neighbor may be rebooting rather than gone: retry the session on
     the backoff schedule (an eventual NOTIFICATION+OPEN from the peer's
     own restart path also re-establishes, whichever comes first). *)
  match t.config.Config.reconnect with
  | None -> ()
  | Some backoff ->
    let delay = Session.delay backoff t.rng ~attempt:0 in
    Engine.Node.schedule_after ~category:"bgp.reconnect" t.node delay (fun () ->
        if not (peer.established || peer.open_sent) then open_session t peer.peer_asn)

(* Deterministic exponential-backoff retry of an unanswered OPEN.  The
   chain stops when the session establishes, when the session-down path
   resets the flags (link reported down), or when the attempt budget is
   exhausted (the peer's own restart OPEN can still revive the session). *)
and schedule_retry t peer =
  match t.config.Config.reconnect with
  | None -> ()
  | Some backoff ->
    let attempt = peer.retry_attempt in
    if attempt < backoff.Session.max_attempts then begin
      let delay = Session.delay backoff t.rng ~attempt in
      Engine.Node.schedule_after ~category:"bgp.reconnect" t.node delay (fun () ->
          if peer.open_sent && not peer.established then begin
            peer.retry_attempt <- attempt + 1;
            log t "reconnect %a: retry %d" Net.Asn.pp peer.peer_asn (attempt + 1);
            send_open t peer;
            schedule_retry t peer
          end)
    end

and open_session t peer_asn =
  match find_peer t peer_asn with
  | None -> invalid_arg (Fmt.str "Router.open_session: unknown peer %a" Net.Asn.pp peer_asn)
  | Some peer ->
    if not peer.open_sent then begin
      peer.open_sent <- true;
      peer.retry_attempt <- 0;
      send_open t peer;
      schedule_retry t peer
    end

let establish t peer =
  if not peer.established then begin
    peer.established <- true;
    peer.retry_attempt <- 0;
    log t "session %a established" Net.Asn.pp peer.peer_asn;
    start_liveness t peer;
    sync_peer t peer
  end

(* Any inbound traffic proves the peer alive. *)
let touch_hold t peer =
  match (negotiated_hold t peer, peer.hold) with
  | Some hold_time, Some hold when peer.established -> Engine.Timer.start hold hold_time
  | _, _ -> ()

let start t = List.iter (fun (_, p) -> open_session t p.peer_asn) (Net.Asn.Map.bindings t.peers)

(* --- Inbound processing ------------------------------------------------ *)

(* Flap bookkeeping: penalize the (peer, prefix) pair and, when it gets
   suppressed, schedule a re-decision at its reuse time. *)
let note_flap t peer_asn prefix event =
  match t.damping with
  | None -> ()
  | Some damping -> (
    let now = Engine.Sim.now t.sim in
    match Damping.record damping ~peer:peer_asn ~prefix ~now event with
    | `Ok -> ()
    | `Suppressed_until reuse_at ->
      log t "damping: %a from %a suppressed until %a" Net.Ipv4.pp_prefix prefix Net.Asn.pp
        peer_asn Engine.Time.pp reuse_at;
      (* a hair past the reuse instant so the decayed penalty is safely
         at-or-below the threshold despite floating-point rounding *)
      let recheck = Engine.Time.add reuse_at (Engine.Time.ms 10) in
      Engine.Node.schedule_at ~category:"bgp.damping" t.node recheck (fun () ->
          with_batch t (fun () -> run_decision t prefix)))

let process_update t peer_asn (u : Message.update) =
  with_batch t @@ fun () ->
  match find_peer t peer_asn with
  | None -> ()
  | Some peer when not peer.established -> () (* stale: session flapped *)
  | Some peer ->
    let affected = ref [] in
    List.iter
      (fun prefix ->
        if Option.is_some (Rib.Adj_in.find t.adj_in ~peer:peer_asn prefix) then begin
          Rib.Adj_in.remove t.adj_in ~peer:peer_asn prefix;
          note_flap t peer_asn prefix Damping.Withdrawal;
          affected := prefix :: !affected
        end)
      u.Message.withdrawn;
    List.iter
      (fun (prefix, attrs) ->
        match Policy.import peer.policy ~me:t.asn ~prefix attrs with
        | Some attrs ->
          let previous = Rib.Adj_in.find t.adj_in ~peer:peer_asn prefix in
          (match (previous, t.damping) with
          | _, None -> ()
          | Some old, Some _ ->
            if not (Attrs.wire_equal (Route.attrs old) attrs) then
              note_flap t peer_asn prefix Damping.Attribute_change
          | None, Some damping ->
            (* Re-advertisement after a withdrawal leaves a decaying
               penalty behind; a first-ever announcement does not. *)
            if
              Damping.current_penalty damping ~peer:peer_asn ~prefix
                ~now:(Engine.Sim.now t.sim)
              > 0.0
            then note_flap t peer_asn prefix Damping.Readvertisement);
          let route =
            Route.make ~prefix ~attrs ~source:(Route.Ebgp peer_asn)
              ~learned_at:(Engine.Sim.now t.sim)
          in
          Rib.Adj_in.set t.adj_in ~peer:peer_asn route;
          affected := prefix :: !affected
        | None ->
          (* Policy rejection implicitly withdraws any previous route. *)
          if Option.is_some (Rib.Adj_in.find t.adj_in ~peer:peer_asn prefix) then begin
            Rib.Adj_in.remove t.adj_in ~peer:peer_asn prefix;
            affected := prefix :: !affected
          end)
      u.Message.announced;
    run_decisions t (List.rev !affected)

let handle_message t ~from msg =
  with_batch t @@ fun () ->
  match Hashtbl.find_opt t.peer_of_node from with
  | None -> log t "message from unknown node %d dropped" from
  | Some peer_asn -> (
    Option.iter (fun peer -> touch_hold t peer) (find_peer t peer_asn);
    match msg with
    | Message.Open { hold_time; _ } -> (
      match find_peer t peer_asn with
      | None -> ()
      | Some peer ->
        peer.peer_hold <- hold_time;
        if not peer.open_sent then begin
          peer.open_sent <- true;
          send_open t peer
        end;
        establish t peer)
    | Message.Keepalive -> ()
    | Message.Notification reason ->
      log t "notification from %a: %s" Net.Asn.pp peer_asn reason;
      session_down t peer_asn
    | Message.Update u ->
      t.stats.msgs_in <- t.stats.msgs_in + 1;
      t.stats.prefixes_in <- t.stats.prefixes_in + Message.update_size u;
      if Engine.Causal.enabled (Engine.Sim.causal t.sim) then
        Engine.Sim.annotate t.sim ~category:"bgp.update" ~node:(Net.Asn.to_string t.asn)
          ~label:(Net.Asn.to_string peer_asn) ();
      Engine.Metrics.Counter.add t.tm.updates_received (List.length u.Message.announced);
      Engine.Metrics.Counter.add t.tm.withdrawals_received (List.length u.Message.withdrawn);
      (* Serialized processing behind a busy watermark: emulates a
         single-threaded bgpd working through its input queue. *)
      let now = Engine.Sim.now t.sim in
      let start = Engine.Time.max now t.busy_until in
      let finish = Engine.Time.add start (Config.processing_delay t.config t.rng) in
      t.busy_until <- finish;
      (* Finish instants are non-decreasing and events at the same instant
         fire in scheduling order, so each event pops exactly the entry it
         was scheduled for.  A crash clears the queue and bumps the node
         epoch, which voids the orphaned events. *)
      Queue.push (finish, peer_asn, u) t.pending_updates;
      Engine.Node.schedule_at ~category:"bgp.process" t.node finish (fun () ->
          match Queue.take_opt t.pending_updates with
          | Some (_, peer, u) -> process_update t peer u
          | None -> ()))

(* --- Lifecycle and checkpointing --------------------------------------- *)

type checkpoint = {
  ck_rng : Engine.Rng.t;
  ck_busy : Engine.Time.t;
  ck_adj_in : (Net.Asn.t * Route.t) list;
  ck_loc : Route.t list;
  ck_adj_out : (Net.Asn.t * (Net.Ipv4.prefix * Attrs.t) list) list;
  ck_originated : (Net.Ipv4.prefix * Attrs.t) list;
  ck_peers : (Net.Asn.t * bool * bool * int * int * Mrai.state) list;
  ck_pending : (Engine.Time.t * Net.Asn.t * Message.update) list;
}

type Engine.Node.blob += Router_state of checkpoint

let snapshot t =
  Router_state
    {
      ck_rng = Engine.Rng.copy t.rng;
      ck_busy = t.busy_until;
      ck_adj_in = Rib.Adj_in.entries t.adj_in;
      ck_loc = List.map snd (Rib.Loc.entries t.loc);
      ck_adj_out = Rib.Adj_out.entries t.adj_out;
      ck_originated = Pt.entries t.originated;
      ck_peers =
        List.map
          (fun (asn, p) ->
            (asn, p.established, p.open_sent, p.peer_hold, p.retry_attempt, Mrai.state p.mrai))
          (Net.Asn.Map.bindings t.peers);
      ck_pending = List.of_seq (Queue.to_seq t.pending_updates);
    }

(* Restores into a freshly built router with the same peers/config.  Loc
   entries are written directly ([on_best_change] subscribers are NOT
   replayed — the framework rebuilds FIBs from its own checkpoint). *)
let restore t = function
  | Router_state ck ->
    Engine.Rng.assign ~from:ck.ck_rng t.rng;
    t.busy_until <- ck.ck_busy;
    Rib.Adj_in.clear t.adj_in;
    List.iter (fun (peer, r) -> Rib.Adj_in.set t.adj_in ~peer r) ck.ck_adj_in;
    Rib.Loc.clear t.loc;
    List.iter (Rib.Loc.set t.loc) ck.ck_loc;
    Rib.Adj_out.clear t.adj_out;
    List.iter
      (fun (peer, entries) ->
        List.iter (fun (prefix, attrs) -> Rib.Adj_out.set t.adj_out ~peer prefix attrs) entries)
      ck.ck_adj_out;
    Pt.clear t.originated;
    List.iter (fun (p, a) -> Pt.set p a t.originated) ck.ck_originated;
    List.iter
      (fun (asn, established, open_sent, peer_hold, retry_attempt, mrai_state) ->
        match find_peer t asn with
        | None -> ()
        | Some peer ->
          peer.established <- established;
          peer.open_sent <- open_sent;
          peer.peer_hold <- peer_hold;
          peer.retry_attempt <- retry_attempt;
          Mrai.restore peer.mrai mrai_state;
          if established then start_liveness t peer)
      ck.ck_peers;
    Queue.clear t.pending_updates;
    List.iter
      (fun (finish, peer, u) ->
        Queue.push (finish, peer, u) t.pending_updates;
        Engine.Node.schedule_at ~category:"bgp.process" t.node finish (fun () ->
            match Queue.take_opt t.pending_updates with
            | Some (_, peer, u) -> process_update t peer u
            | None -> ()))
      ck.ck_pending
  | _ -> invalid_arg "Router.restore: foreign snapshot blob"

(* Crash: lose all volatile bgpd state.  [originated] survives — it is the
   router's configuration, not learned state.  Owned timers and scheduled
   events are voided by the node runtime itself. *)
let on_crashed t =
  Queue.clear t.pending_updates;
  t.busy_until <- Engine.Time.zero;
  Net.Asn.Map.iter
    (fun _ peer ->
      peer.established <- false;
      peer.open_sent <- false;
      peer.peer_hold <- 0;
      peer.retry_attempt <- 0;
      Mrai.reset peer.mrai)
    t.peers;
  Rib.Adj_in.clear t.adj_in;
  Rib.Loc.clear t.loc;
  Rib.Adj_out.clear t.adj_out

(* Restart: re-originate configured prefixes, then resync every session.
   The NOTIFICATION makes the live peer run its session-down path (it
   flushes routes learned from us and stops treating the old session as
   open), so the OPEN that follows is answered like a cold start. *)
let on_restarted t =
  with_batch t (fun () -> run_decisions t (Pt.keys t.originated));
  Net.Asn.Map.iter
    (fun _ peer ->
      ignore (send_message t peer (Message.Notification "peer restarted"));
      open_session t peer.peer_asn)
    t.peers

let create ?damping ~sim ~asn ~node_id ~router_id ~config ~send () =
  let t = create_unhooked ?damping ~sim ~asn ~node_id ~router_id ~config ~send () in
  Engine.Node.on_crash t.node (fun () -> on_crashed t);
  Engine.Node.on_start t.node (fun ~first -> if not first then on_restarted t);
  Engine.Node.set_snapshot t.node (fun () -> snapshot t);
  Engine.Node.set_restore t.node (restore t);
  Engine.Node.start t.node;
  t

(* Test/diagnostic accessors. *)

let adj_in_find t ~peer prefix = Rib.Adj_in.find t.adj_in ~peer prefix

let adj_out_find t ~peer prefix = Rib.Adj_out.find t.adj_out ~peer prefix

let adj_in_size t = Rib.Adj_in.size t.adj_in

let loc_size t = Rib.Loc.size t.loc
