(** Static forwarding-state verification: classify every (src, dst) pair
    of the composed BGP FIB + SDN flow-table state — delivered,
    black-holed, looping, TTL-bound — by walking a frozen
    {!Net.Dataplane} snapshot, without sending packets and without
    mutating flow counters.  Loops are never legal; black holes may be
    (a prefix can be genuinely unreachable mid-recovery).  The
    {!differential} check holds the verifier and the event-driven
    reference walker ({!Monitor.walk}) to the same answer on every pair
    and backs the chaos invariant oracle. *)

type issue = {
  src : Net.Asn.t;
  dst : Net.Asn.t;
  fate : Net.Dataplane.fate;  (** never [Delivered] *)
  path : Net.Asn.t list;  (** source first, terminal node last *)
}

type report = {
  pairs : int;
  delivered : int;
  blackholed : int;
  looped : int;
  ttl_expired : int;
  issues : issue list;  (** every non-delivered pair, (src, dst) walk order *)
}

val pp_issue : Format.formatter -> issue -> unit

val loops : report -> issue list

val blackholes : report -> issue list

val verify :
  ?ttl:int ->
  ?snapshot:Net.Dataplane.t ->
  ?srcs:Net.Asn.t list ->
  ?dsts:Net.Asn.t list ->
  Network.t ->
  report
(** Walk every [srcs] × [dsts] pair (defaults: all ASes) toward the host
    address of [dst]'s origin prefix.  [snapshot] reuses an
    already-compiled {!Network.dataplane_snapshot} of unchanged state. *)

type disagreement = {
  d_src : Net.Asn.t;
  d_dst : Net.Asn.t;
  static_fate : Net.Dataplane.fate;
  walk_outcome : Monitor.outcome;
}

val pp_disagreement : Format.formatter -> disagreement -> unit

val fate_of_outcome : Monitor.outcome -> Net.Dataplane.fate

val differential : ?ttl:int -> Network.t -> disagreement list
(** All pairs where the snapshot's fate differs from {!Monitor.walk}
    over the live state ([max_hops] = [ttl]; on networks smaller than
    that bound neither limit binds before loop detection, so agreement
    must be exact).  Empty on a correct fast path. *)
