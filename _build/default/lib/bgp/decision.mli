(** The BGP decision process: a deterministic total order on candidate
    routes for the same prefix. *)

val compare : Route.t -> Route.t -> int
(** Negative when the first route is preferred. *)

val better : Route.t -> Route.t -> bool

val select : Route.t list -> Route.t option
(** The most preferred candidate. *)

val explain : Route.t -> Route.t -> string * int
(** The decision step that separated the two routes, and its sign. *)
