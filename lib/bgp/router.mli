(** A BGP speaker emulating one AS's border router: RIBs, decision
    process, relationship policies, per-peer MRAI, serialized update
    processing. *)

type stats = {
  mutable msgs_in : int;
  mutable msgs_out : int;
  mutable prefixes_in : int;
  mutable prefixes_out : int;
  mutable decision_runs : int;
  mutable best_changes : int;
}

type t

val create :
  ?damping:Damping.config ->
  sim:Engine.Sim.t ->
  asn:Net.Asn.t ->
  node_id:int ->
  router_id:Net.Ipv4.addr ->
  config:Config.t ->
  send:(dst:int -> Message.t -> bool) ->
  unit ->
  t
(** [send] delivers a message to a fabric node (wired to Netsim by the
    framework); [damping] enables RFC 2439 route-flap damping. *)

val damping_state : t -> Damping.t option

val name : t -> string

val asn : t -> Net.Asn.t

val node : t -> Engine.Node.t
(** The runtime node: lifecycle (crash/restart), mailbox port target,
    snapshot/restore.  A crash loses all learned state but keeps
    [originate]d prefixes (configuration); a restart re-originates them
    and re-opens every session with a NOTIFICATION-then-OPEN exchange. *)

val node_id : t -> int

val router_id : t -> Net.Ipv4.addr

val stats : t -> stats

val subscribe_best_change : t -> (Net.Ipv4.prefix -> Route.t option -> unit) -> unit
(** Called whenever the Loc-RIB best route for a prefix changes (the
    framework hooks the FIB here). *)

val add_peer : t -> peer_asn:Net.Asn.t -> peer_node:int -> policy:Policy.t -> unit

val peer_asns : t -> Net.Asn.t list

val peer_established : t -> Net.Asn.t -> bool

val session_state : t -> Net.Asn.t -> Session.state
(** Derived FSM state of the session toward [peer] ([Idle] for an
    unknown peer). *)

val open_session : t -> Net.Asn.t -> unit
(** Send an OPEN toward the peer (idempotent). *)

val start : t -> unit
(** Open sessions to all configured peers. *)

val session_down : t -> Net.Asn.t -> unit
(** Tear down the session: flush RIBs learned from/advertised to the peer
    and rerun the decision process. *)

val handle_message : t -> from:int -> Message.t -> unit
(** Fabric delivery entry point ([from] is the sender's node id). *)

val originate :
  ?med:int -> ?origin:Attrs.origin -> ?communities:Community.Set.t -> t -> Net.Ipv4.prefix -> unit

val withdraw_origin : t -> Net.Ipv4.prefix -> unit

val best : t -> Net.Ipv4.prefix -> Route.t option

val candidates : t -> Net.Ipv4.prefix -> Route.t list

val loc_entries : t -> (Net.Ipv4.prefix * Route.t) list

val originated_prefixes : t -> Net.Ipv4.prefix list

val adj_in_find : t -> peer:Net.Asn.t -> Net.Ipv4.prefix -> Route.t option

val adj_out_find : t -> peer:Net.Asn.t -> Net.Ipv4.prefix -> Attrs.t option

val adj_in_size : t -> int

val loc_size : t -> int
