(* Dataset workflow: build topologies from measured-data files, exactly
   as the original framework consumes iPlane and CAIDA snapshots.

   We synthesize an iPlane-format inter-PoP file and a CAIDA-format
   AS-relationship file, write them to disk, load them back through the
   parsers, and run a quick experiment on each.

     dune exec examples/dataset_workflow.exe *)

let write path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let () =
  let rng = Engine.Rng.create 99 in
  (* --- iPlane inter-PoP links --------------------------------------- *)
  let iplane_path = "example-iplane-links.txt" in
  write iplane_path (Topology.Iplane.generate_text ~ases:10 ~pops_per_as:3 rng);
  let iplane_spec =
    match Topology.Iplane.parse_file iplane_path with
    | Ok spec -> spec
    | Error e -> Fmt.failwith "iplane parse: %a" Topology.Iplane.pp_parse_error e
  in
  Fmt.pr "loaded %s: %d ASes, %d links (PoP pairs collapsed, min latency kept)@." iplane_path
    (Topology.Spec.node_count iplane_spec)
    (Topology.Spec.link_count iplane_spec);
  let exp = Framework.Experiment.create ~seed:3 iplane_spec in
  let origin = List.hd (Topology.Spec.asns iplane_spec) in
  let m = Core.measure_announcement exp origin in
  Fmt.pr "announcement on the iPlane graph converged in %.2f s@.@." (Core.seconds m);
  (* --- CAIDA AS relationships ---------------------------------------- *)
  let caida_path = "example-caida-rel.txt" in
  write caida_path (Topology.Caida.render (Topology.Caida.generate ~tier1:3 ~tier2:6 ~stubs:10 rng));
  let caida_spec =
    match Topology.Caida.parse_file caida_path with
    | Ok spec -> spec
    | Error e -> Fmt.failwith "caida parse: %a" Topology.Caida.pp_parse_error e
  in
  Fmt.pr "loaded %s: %d ASes, %d relationship-annotated links@." caida_path
    (Topology.Spec.node_count caida_spec)
    (Topology.Spec.link_count caida_spec);
  let customers =
    List.length
      (List.filter
         (fun (l : Topology.Spec.link_spec) -> l.Topology.Spec.rel = Topology.Spec.C2p)
         (Topology.Spec.links caida_spec))
  in
  Fmt.pr "  %d customer-provider, %d other links@." customers
    (Topology.Spec.link_count caida_spec - customers);
  let exp = Framework.Experiment.create ~seed:4 caida_spec in
  let origin = List.hd (List.rev (Topology.Spec.asns caida_spec)) in
  let m = Core.measure_withdrawal exp origin in
  Fmt.pr "withdrawal of a stub prefix converged in %.2f s under valley-free policies@."
    (Core.seconds m)
