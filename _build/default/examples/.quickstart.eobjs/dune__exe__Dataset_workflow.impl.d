examples/dataset_workflow.ml: Core Engine Fmt Framework List Topology
