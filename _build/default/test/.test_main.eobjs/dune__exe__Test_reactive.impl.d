test/test_reactive.ml: Alcotest Cluster_ctl Engine Framework Net Option Sdn Topology
