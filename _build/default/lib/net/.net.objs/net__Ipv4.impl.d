lib/net/ipv4.ml: Fmt Hashtbl Int Int32 List Map Option Set String
