(* Declarative description of an experiment topology: ASes, inter-AS links
   and their business relationships, plus which ASes are SDN-controlled.
   Generators and dataset loaders produce specs; framework.Builder turns a
   spec into a running emulation. *)

type role = Legacy | Sdn

(* Relationship of link endpoint [a] towards endpoint [b]. *)
type rel =
  | C2p (* a is customer of b *)
  | P2p (* settlement-free peers *)
  | S2s (* siblings: mutual full transit *)
  | Open (* no policy: full propagation; used for clique experiments *)

type node_spec = { asn : Net.Asn.t; role : role; name : string }

type link_spec = { a : Net.Asn.t; b : Net.Asn.t; rel : rel; delay_us : int option }

type t = { title : string; nodes : node_spec list; links : link_spec list }

let rel_to_string = function
  | C2p -> "c2p"
  | P2p -> "p2p"
  | S2s -> "s2s"
  | Open -> "open"

let rel_of_string = function
  | "c2p" -> Some C2p
  | "p2p" -> Some P2p
  | "s2s" -> Some S2s
  | "open" -> Some Open
  | _ -> None

let role_to_string = function Legacy -> "legacy" | Sdn -> "sdn"

let node ?(role = Legacy) ?name asn =
  let name = match name with Some n -> n | None -> Net.Asn.to_string asn in
  { asn; role; name }

let link ?(rel = Open) ?delay_us a b = { a; b; rel; delay_us }

let make ~title ~nodes ~links = { title; nodes; links }

let title t = t.title

let nodes t = t.nodes

let links t = t.links

let asns t = List.map (fun n -> n.asn) t.nodes

let node_count t = List.length t.nodes

let link_count t = List.length t.links

let find_node t asn = List.find_opt (fun n -> Net.Asn.equal n.asn asn) t.nodes

let mem t asn = Option.is_some (find_node t asn)

let sdn_asns t = List.filter_map (fun n -> if n.role = Sdn then Some n.asn else None) t.nodes

let legacy_asns t =
  List.filter_map (fun n -> if n.role = Legacy then Some n.asn else None) t.nodes

let role_of t asn =
  match find_node t asn with
  | Some n -> n.role
  | None -> invalid_arg (Fmt.str "Spec.role_of: unknown %a" Net.Asn.pp asn)

(* Mark the given ASes as SDN-controlled, all others legacy. *)
let with_sdn t sdn =
  let is_sdn asn = List.exists (Net.Asn.equal asn) sdn in
  List.iter
    (fun asn ->
      if not (mem t asn) then invalid_arg (Fmt.str "Spec.with_sdn: unknown %a" Net.Asn.pp asn))
    sdn;
  {
    t with
    nodes = List.map (fun n -> { n with role = (if is_sdn n.asn then Sdn else Legacy) }) t.nodes;
  }

let links_of t asn =
  List.filter (fun l -> Net.Asn.equal l.a asn || Net.Asn.equal l.b asn) t.links

let neighbors t asn =
  List.map (fun l -> if Net.Asn.equal l.a asn then l.b else l.a) (links_of t asn)

(* Relationship of [asn]'s link partner towards [asn]: if the link says
   [a C2p b] then, seen from [a], the neighbor [b] is a Provider. *)
type neighbor_role = Customer | Provider | Peer | Sibling | Unrestricted

let neighbor_role_to_string = function
  | Customer -> "customer"
  | Provider -> "provider"
  | Peer -> "peer"
  | Sibling -> "sibling"
  | Unrestricted -> "unrestricted"

let neighbor_role_of_link ~me l =
  if Net.Asn.equal l.a me then
    match l.rel with
    | C2p -> Provider (* I am the customer; my neighbor is my provider *)
    | P2p -> Peer
    | S2s -> Sibling
    | Open -> Unrestricted
  else if Net.Asn.equal l.b me then
    match l.rel with
    | C2p -> Customer
    | P2p -> Peer
    | S2s -> Sibling
    | Open -> Unrestricted
  else invalid_arg "Spec.neighbor_role_of_link: AS not on link"

(* Structural validity: referenced ASes exist, no duplicate ASNs or links,
   no self-links.  Returns human-readable problems, empty when valid. *)
let validate t =
  let problems = ref [] in
  let problem fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n.asn then problem "duplicate node %a" Net.Asn.pp n.asn
      else Hashtbl.replace seen n.asn ())
    t.nodes;
  let pairs = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if Net.Asn.equal l.a l.b then problem "self-link on %a" Net.Asn.pp l.a;
      if not (Hashtbl.mem seen l.a) then problem "link references unknown %a" Net.Asn.pp l.a;
      if not (Hashtbl.mem seen l.b) then problem "link references unknown %a" Net.Asn.pp l.b;
      let key =
        if Net.Asn.compare l.a l.b <= 0 then (l.a, l.b) else (l.b, l.a)
      in
      if Hashtbl.mem pairs key then
        problem "duplicate link %a<->%a" Net.Asn.pp l.a Net.Asn.pp l.b
      else Hashtbl.replace pairs key ())
    t.links;
  List.rev !problems

let is_valid t = validate t = []

(* Undirected AS-level graph of the spec (node ids are raw ASN ints). *)
let to_graph t =
  let g = Net.Graph.create () in
  List.iter (fun n -> Net.Graph.add_node g (Net.Asn.to_int n.asn)) t.nodes;
  List.iter
    (fun l -> Net.Graph.add_edge g (Net.Asn.to_int l.a) (Net.Asn.to_int l.b))
    t.links;
  g

let is_connected t = Net.Graph.is_connected (to_graph t)

let pp ppf t =
  Fmt.pf ppf "@[<v>topology %S: %d ASes (%d SDN), %d links" t.title (node_count t)
    (List.length (sdn_asns t))
    (link_count t);
  List.iter
    (fun l ->
      Fmt.pf ppf "@,  %a -[%s]- %a" Net.Asn.pp l.a (rel_to_string l.rel) Net.Asn.pp l.b)
    t.links;
  Fmt.pf ppf "@]"
