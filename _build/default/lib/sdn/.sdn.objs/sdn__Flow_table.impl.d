lib/sdn/flow_table.ml: Flow Fmt Int List Net
