lib/bgp/community.ml: Fmt Set String
