lib/cluster_ctl/as_graph.ml: Bgp Fmt Hashtbl List Net
