lib/sdn/flow.ml: Engine Fmt Net
