lib/framework/looking_glass.mli: Bgp Cluster_ctl Network Sdn
