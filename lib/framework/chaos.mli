(** Seeded chaos campaigns: randomized fault schedules executed against a
    fresh network, an invariant oracle at every quiescent point, and
    greedy minimization of failing schedules.  Everything is driven by
    deterministic RNG streams, so a campaign report (and its MD5 digest)
    is bit-identical across invocations of the same seed. *)

type fault =
  | Crash of Net.Asn.t  (** crash the AS's router/switch, restart at heal *)
  | Link_down of Net.Asn.t * Net.Asn.t
  | Link_flap of Net.Asn.t * Net.Asn.t * int  (** n 1 s fail/recover cycles *)
  | Loss_burst of Net.Asn.t * Net.Asn.t
      (** 100% loss while the link still reports up: only KEEPALIVE/hold
          liveness can detect it *)
  | Ctrl_partition of Net.Asn.t
      (** a member's control channel goes down, its data links stay up *)
  | Head_crash  (** the cluster head: controller + speaker together *)

type event = { at : Engine.Time.t; heal_at : Engine.Time.t; fault : fault }

type schedule = { index : int; events : event list }

val pp_fault : Format.formatter -> fault -> unit

val pp_event : Format.formatter -> event -> unit

val default_spec : unit -> Topology.Spec.t
(** The 8-AS clique with a 3-member SDN sub-cluster. *)

val generate : spec:Topology.Spec.t -> rng:Engine.Rng.t -> int -> schedule
(** Draw a random fault schedule (1–4 faults, disjoint targets, injected
    in [8 s, 14 s], fully healed). *)

(* --- Invariant oracle --- *)

type violation = { invariant : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val check_invariants : Network.t -> violation list
(** Interrogate a (quiescent) network: no forwarding loops, no flow rule
    pointing at a crashed node or down link, RIB contents consistent with
    session FSM state, and checkpoint→restore digest idempotency. *)

val render_state : Network.t -> string
(** The deterministic control/data-plane rendering behind
    {!state_digest} (no wall-clock fields, no traffic counters). *)

val state_digest : Network.t -> string
(** MD5 hex digest of {!render_state}. *)

(* --- Execution --- *)

type run_result = {
  schedule : schedule;
  quiesced : bool;  (** control plane went quiet before the 180 s limit *)
  violations : violation list;
  digest : string;  (** {!state_digest} at the quiescent point *)
  flight : string list;
      (** the causal flight recorder ({!Engine.Causal.flight_lines}),
          auto-dumped when [violations <> []]; empty on clean runs *)
}

val execute :
  ?fallback:bool -> ?spec:Topology.Spec.t -> seed:int -> schedule -> run_result
(** Run one schedule: build the network ({!Config.failure_test}; with
    [~fallback:false] the switches' legacy fallback is disabled),
    converge, inject, heal, wait for quiet, check invariants. *)

val run_one : ?fallback:bool -> ?spec:Topology.Spec.t -> seed:int -> int -> run_result
(** [run_one ~seed i] generates schedule [i] of the campaign and
    {!execute}s it. *)

val minimize : ?fallback:bool -> ?spec:Topology.Spec.t -> seed:int -> schedule -> schedule
(** Greedily drop faults while the schedule still produces a violation:
    the result is a locally minimal reproducer.  Returns the input
    schedule unchanged when it does not fail. *)

(* --- Campaign --- *)

type report = {
  seed : int;
  runs : int;
  fallback : bool;
  results : run_result list;
  campaign_digest : string;  (** MD5 over all rendered results *)
}

val run_campaign :
  ?fallback:bool -> ?spec:Topology.Spec.t -> seed:int -> runs:int -> unit -> report

val render_result : run_result -> string

val render_report : report -> string
