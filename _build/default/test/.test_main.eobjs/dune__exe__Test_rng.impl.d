test/test_rng.ml: Alcotest Engine Int List QCheck QCheck_alcotest Rng Time
