(** Deterministic causal span tracing.

    Every scheduled event can carry a span: the interval from the instant
    it was scheduled ([queued_at], the fire time of its causal parent) to
    the instant it fired ([fired_at]).  Because simulated time never
    advances inside an event handler, a child's [queued_at] always equals
    its parent's [fired_at], so the waits along any parent chain telescope
    exactly: walking from a leaf back to its root attributes the full
    end-to-end latency with no gaps and no double counting.

    Span ids are dense sequence numbers in scheduling order and the trace
    id is minted from a dedicated stream derived from the simulation seed
    — never from wall clock, and never by drawing from (or splitting) the
    sim's root RNG, whose draw order existing subsystems depend on.  Same
    seed, same spans, byte-identical exports.

    Domain-safety: a span store is unsynchronized mutable state owned by
    its simulation — one sim, one domain at a time, exactly like {!Trace}
    and {!Metrics}.  {!Pool} sweeps are safe because every task builds its
    own sim and thus its own store. *)

type mode =
  | Disabled  (** no store, no allocation: every hook is a cheap no-op *)
  | Ring of int
      (** bounded flight recorder: retain only the [n] newest spans *)
  | Full  (** retain everything (growable) — for export and analysis *)

type span = {
  id : int;
  parent : int;  (** parent span id, [-1] for a root *)
  category : string;  (** the scheduling category (or annotation kind) *)
  node : string;  (** emitting component, [""] for plain events *)
  label : string;  (** free-form detail (e.g. the prefix), [""] if none *)
  queued_at : Time.t;  (** when the event was scheduled (= parent fire time) *)
  mutable fired_at : Time.t;  (** when it executed; [= queued_at] for markers *)
  mutable closed : bool;  (** false while queued (or cancelled forever) *)
}

type t

val create : ?mode:mode -> seed:int -> unit -> t
(** Default mode is [Disabled]. *)

val mode : t -> mode

val enabled : t -> bool

val trace_id : t -> int
(** Deterministic per-seed run identifier carried by the exports. *)

val total : t -> int
(** Spans ever opened (eviction-proof). *)

val stored : t -> int
(** Spans currently retained. *)

val spans : t -> span list
(** Retained spans, oldest first. *)

val find : t -> int -> span option
(** [None] for ids that were never issued or have been evicted. *)

val find_last : t -> (span -> bool) -> span option
(** The newest retained span satisfying the predicate. *)

(** {1 Scheduler hooks}

    Called by {!Sim}; exposed so alternative drivers can participate. *)

val on_schedule : t -> category:string -> queued_at:Time.t -> int
(** Open a span for a freshly scheduled event, parented under the span
    currently executing ([-1] at top level).  Returns the span id, or
    [-1] when disabled. *)

val on_execute : t -> int -> fired_at:Time.t -> unit
(** Close the event's span and make it the current parent for anything
    scheduled while its action runs. *)

val current : t -> int

val clear_current : t -> unit

(** {1 Instrumentation} *)

val annotate : t -> category:string -> ?node:string -> ?label:string -> at:Time.t -> unit -> unit
(** Record a zero-length marker span (e.g. a FIB or flow-table write) as a
    child of the current span. *)

val with_span :
  t -> category:string -> ?node:string -> ?label:string -> at:Time.t -> (unit -> 'a) -> 'a
(** Run [f] under a zero-length container span: children scheduled inside
    [f] are parented under it.  A top-level call roots a new tree. *)

(** {1 Critical path}

    Walking a convergence leaf (the last FIB/flow write of a prefix) back
    to its root yields the critical path; bucketing each hop's wait by
    category attributes the end-to-end latency. *)

type bucket =
  | Propagation  (** link/fabric delivery delay *)
  | Mrai_hold  (** MRAI batching holds *)
  | Session_backoff  (** liveness detection, reconnect backoff, damping *)
  | Recompute  (** controller recomputation batches *)
  | Flow_install  (** switch-side rule installs/removals and timeouts *)
  | Mailbox  (** node mailbox hops and serialized processing delay *)
  | Other

val bucket_of_category : string -> bucket

val bucket_to_string : bucket -> string

val path_to_root : t -> span -> span list
(** Oldest (root) first, ending at the given span; stops early if an
    ancestor has been evicted from a ring. *)

type attribution_row = { bucket : bucket; seconds : float; hops : int }

type attribution = {
  rows : attribution_row list;  (** non-empty buckets, largest share first *)
  total_seconds : float;  (** leaf fire time - path-head queue time *)
  depth : int;  (** spans on the path *)
}

val attribute : t -> span -> attribution
(** The rows sum exactly to [total_seconds] (the telescoping property). *)

val convergence_leaf : ?label:string -> t -> span option
(** The newest data-plane write marker ([fib.write], [flow.install] or
    [flow.remove]), optionally restricted to one prefix label — the leaf
    to attribute a convergence measurement against. *)

val pp_attribution : Format.formatter -> attribution -> unit

(** {1 Exporters}

    Both are pure functions of the retained spans: byte-identical for the
    same seed.  Open (cancelled) spans are skipped. *)

val to_chrome : t -> string
(** One-line Chrome trace-event JSON ([{"traceEvents":[...]}], complete
    "X" events, microsecond timestamps), loadable in Perfetto; one thread
    lane per emitting node. *)

val to_jsonl : t -> string
(** One JSON object per span per line. *)

val render_line : span -> string
(** Human-readable one-liner, {!Trace.render_line}-style. *)

val flight_lines : t -> string list
(** The retained spans rendered oldest first — the flight-recorder dump
    {!Framework.Chaos} attaches to invariant violations. *)
