(* Allocation-free data-plane fast path.

   A compiled, frozen view of a network's forwarding state — legacy FIBs,
   SDN flow tables, local delivery sets and link liveness — over dense
   node indices, through which packed int-encoded probes (src index, dst
   address bits, TTL, all immediate ints) are forwarded in a batch TTL
   walk: one [forward] call resolves the probe's entire path and
   classifies its fate without building a [Packet.t] record, an [option],
   or any other per-hop value.

   The structure is a snapshot: compile it (cheap, proportional to table
   sizes), fire millions of probes, recompile after the control plane
   moves.  Loop detection uses a preallocated per-snapshot visited-stamp
   cursor, so repeated walks share scratch instead of allocating visited
   sets.  Not domain-safe: one snapshot per domain. *)

type fate = Delivered | Blackholed | Looped | Ttl_expired

let fate_code = function Delivered -> 0 | Blackholed -> 1 | Looped -> 2 | Ttl_expired -> 3

let fate_of_code = function
  | 0 -> Delivered
  | 1 -> Blackholed
  | 2 -> Looped
  | 3 -> Ttl_expired
  | c -> invalid_arg (Fmt.str "Dataplane.fate_of_code: %d" c)

let fate_to_string = function
  | Delivered -> "delivered"
  | Blackholed -> "blackhole"
  | Looped -> "loop"
  | Ttl_expired -> "ttl_expired"

let pp_fate ppf f = Fmt.string ppf (fate_to_string f)

(* Action code in forwarding entries: a dense next-node index, or [drop]
   for anything that cannot carry the probe onward (no route, an SDN Drop
   or controller punt, a next hop outside the snapshot). *)
let drop = -1

type fwd =
  | No_fwd
  | Fib of int Fib.t (* LPM trie whose values are action codes *)
  | Rules of { nets : int array; masks : int array; acts : int array }
      (* a flow table flattened in its (priority desc, length desc)
         order: first int-mask match wins, exactly like the live table *)

type t = {
  n : int;
  asns : int array; (* dense index -> AS number *)
  index : (int, int) Hashtbl.t; (* AS number -> dense index *)
  fwd : fwd array;
  mutable local_nets : int array array; (* per node: masked networks... *)
  mutable local_masks : int array array; (* ...and their masks, in step *)
  links : Bytes.t; (* n*n directed adjacency, '\001' = usable *)
  visited : int array; (* loop-detection stamps, one slot per node *)
  path : int array; (* the last walk's node sequence *)
  mutable path_len : int;
  mutable stamp : int;
}

let create ~asns =
  let n = Array.length asns in
  let index = Hashtbl.create (max 16 n) in
  Array.iteri (fun i a -> Hashtbl.replace index a i) asns;
  {
    n;
    asns = Array.copy asns;
    index;
    fwd = Array.make n No_fwd;
    local_nets = Array.make n [||];
    local_masks = Array.make n [||];
    links = Bytes.make (n * n) '\000';
    visited = Array.make n (-1);
    path = Array.make (n + 1) (-1);
    path_len = 0;
    stamp = 0;
  }

let size t = t.n

let asn_at t i = t.asns.(i)

let index_of t asn = match Hashtbl.find_opt t.index asn with Some i -> i | None -> -1

(* --- Building the snapshot (allocation here is fine) -------------------- *)

let add_local t i prefix =
  let net = Ipv4.addr_to_bits (Ipv4.prefix_network prefix) in
  let mask = Ipv4.mask_bits (Ipv4.prefix_len prefix) in
  t.local_nets.(i) <- Array.append t.local_nets.(i) [| net |];
  t.local_masks.(i) <- Array.append t.local_masks.(i) [| mask |]

let add_local_addr t i addr =
  t.local_nets.(i) <- Array.append t.local_nets.(i) [| Ipv4.addr_to_bits addr |];
  t.local_masks.(i) <- Array.append t.local_masks.(i) [| Ipv4.mask_bits 32 |]

let set_fib t i fib = t.fwd.(i) <- Fib fib

let set_rules t i ~nets ~masks ~acts =
  if Array.length nets <> Array.length masks || Array.length nets <> Array.length acts then
    invalid_arg "Dataplane.set_rules: length mismatch";
  t.fwd.(i) <- Rules { nets; masks; acts }

let set_link t i j up = Bytes.set t.links ((i * t.n) + j) (if up then '\001' else '\000')

(* --- The hot path ------------------------------------------------------- *)

(* Every scan on the hot path is a module-level recursion: a local
   [let rec] capturing the probe would allocate its closure on each
   call, and at millions of probes per second that is the whole
   allocation budget. *)

let rec local_scan nets masks dst_bits j k =
  j < k
  && (dst_bits land Array.unsafe_get masks j = Array.unsafe_get nets j
     || local_scan nets masks dst_bits (j + 1) k)

let is_local t i dst_bits =
  let nets = Array.unsafe_get t.local_nets i in
  local_scan nets (Array.unsafe_get t.local_masks i) dst_bits 0 (Array.length nets)

let rec rules_scan nets masks acts dst_bits j n =
  if j >= n then drop
  else if dst_bits land Array.unsafe_get masks j = Array.unsafe_get nets j then
    Array.unsafe_get acts j
  else rules_scan nets masks acts dst_bits (j + 1) n

let next_of t i dst_bits =
  match Array.unsafe_get t.fwd i with
  | No_fwd -> drop
  | Fib f -> Fib.lookup_bits f ~default:drop dst_bits
  | Rules r -> rules_scan r.nets r.masks r.acts dst_bits 0 (Array.length r.nets)

let link_ok t i j = Bytes.unsafe_get t.links ((i * t.n) + j) <> '\000'

(* Forward one probe to its final fate.  Mirrors the live per-hop order
   exactly (local delivery, then TTL, then lookup, then link liveness);
   the only addition is loop classification: forwarding state is frozen
   during a walk, so revisiting a node proves a persistent cycle — a real
   packet would go on to die of TTL there.  Returns the packed int
   [(hops lsl 2) lor fate_code]; nothing on this path allocates. *)
let rec walk t stamp dst_bits cur ttl hops =
  Array.unsafe_set t.path hops cur;
  if is_local t cur dst_bits then begin
    t.path_len <- hops + 1;
    hops lsl 2 (* Delivered = 0 *)
  end
  else if Array.unsafe_get t.visited cur = stamp then begin
    t.path_len <- hops + 1;
    (hops lsl 2) lor 2 (* Looped *)
  end
  else begin
    Array.unsafe_set t.visited cur stamp;
    if ttl <= 0 then begin
      t.path_len <- hops + 1;
      (hops lsl 2) lor 3 (* Ttl_expired *)
    end
    else begin
      let nxt = next_of t cur dst_bits in
      if nxt < 0 || not (link_ok t cur nxt) then begin
        t.path_len <- hops + 1;
        (hops lsl 2) lor 1 (* Blackholed *)
      end
      else walk t stamp dst_bits nxt (ttl - 1) (hops + 1)
    end
  end

let forward t ~src ~dst_bits ~ttl =
  if src < 0 || src >= t.n then invalid_arg "Dataplane.forward: bad src index";
  t.stamp <- t.stamp + 1;
  walk t t.stamp dst_bits src ttl 0

let result_fate r = fate_of_code (r land 3)

let result_fate_code r = r land 3

let result_hops r = r lsr 2

(* The node-index path of the most recent [forward] (copied out). *)
let last_path t = Array.sub t.path 0 t.path_len

let pp ppf t =
  Fmt.pf ppf "dataplane snapshot: %d nodes, %d fibs, %d rule tables" t.n
    (Array.fold_left (fun a f -> match f with Fib _ -> a + 1 | _ -> a) 0 t.fwd)
    (Array.fold_left (fun a f -> match f with Rules _ -> a + 1 | _ -> a) 0 t.fwd)
