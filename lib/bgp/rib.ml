(* Routing information bases.

   Adj_in:  per (peer, prefix) routes as received (post-import-policy).
   Loc:     the selected best route per prefix.
   Adj_out: per (peer, prefix) attributes as advertised — consulted to
            suppress duplicate announcements and to know what to withdraw. *)

module Pm = Net.Ipv4.Prefix_map

module Adj_in = struct
  (* Two views of the same routes.  The peer-major view serves session
     maintenance ([drop_peer], [prefixes_from]); the prefix-major view
     makes [candidates] — run on every decision process — a single map
     lookup instead of a fold over every peer's whole prefix map.  Both
     are updated together; [count] tracks the total so [size] is O(1). *)
  type t = {
    mutable by_peer : Route.t Pm.t Net.Asn.Map.t;
    mutable by_prefix : Route.t Net.Asn.Map.t Pm.t;
    mutable count : int;
  }

  let create () = { by_peer = Net.Asn.Map.empty; by_prefix = Pm.empty; count = 0 }

  let set t ~peer (route : Route.t) =
    let prefix = Route.prefix route in
    let m = Option.value (Net.Asn.Map.find_opt peer t.by_peer) ~default:Pm.empty in
    if not (Pm.mem prefix m) then t.count <- t.count + 1;
    t.by_peer <- Net.Asn.Map.add peer (Pm.add prefix route m) t.by_peer;
    let pm = Option.value (Pm.find_opt prefix t.by_prefix) ~default:Net.Asn.Map.empty in
    t.by_prefix <- Pm.add prefix (Net.Asn.Map.add peer route pm) t.by_prefix

  let remove_from_prefix t ~peer prefix =
    match Pm.find_opt prefix t.by_prefix with
    | None -> ()
    | Some pm ->
      let pm = Net.Asn.Map.remove peer pm in
      t.by_prefix <-
        (if Net.Asn.Map.is_empty pm then Pm.remove prefix t.by_prefix
         else Pm.add prefix pm t.by_prefix)

  let remove t ~peer prefix =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> ()
    | Some m ->
      if Pm.mem prefix m then begin
        t.count <- t.count - 1;
        t.by_peer <- Net.Asn.Map.add peer (Pm.remove prefix m) t.by_peer;
        remove_from_prefix t ~peer prefix
      end

  let find t ~peer prefix =
    Option.bind (Net.Asn.Map.find_opt peer t.by_peer) (Pm.find_opt prefix)

  (* All routes for a prefix across peers, in ascending peer order. *)
  let candidates t prefix =
    match Pm.find_opt prefix t.by_prefix with
    | None -> []
    | Some pm -> Net.Asn.Map.fold (fun _ r acc -> r :: acc) pm [] |> List.rev

  let prefixes_from t ~peer =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> []
    | Some m -> Pm.fold (fun p _ acc -> p :: acc) m [] |> List.rev

  let drop_peer t ~peer =
    let dropped = prefixes_from t ~peer in
    t.by_peer <- Net.Asn.Map.remove peer t.by_peer;
    List.iter (fun prefix -> remove_from_prefix t ~peer prefix) dropped;
    t.count <- t.count - List.length dropped;
    dropped

  let all_prefixes t = Pm.fold (fun p _ acc -> p :: acc) t.by_prefix [] |> List.rev

  let size t = t.count

  let entries t =
    Net.Asn.Map.fold
      (fun peer m acc -> Pm.fold (fun _ r acc -> (peer, r) :: acc) m acc)
      t.by_peer []
    |> List.rev

  let clear t =
    t.by_peer <- Net.Asn.Map.empty;
    t.by_prefix <- Pm.empty;
    t.count <- 0
end

module Loc = struct
  type t = { mutable best : Route.t Pm.t }

  let create () = { best = Pm.empty }

  let find t prefix = Pm.find_opt prefix t.best

  let set t (route : Route.t) = t.best <- Pm.add (Route.prefix route) route t.best

  let remove t prefix = t.best <- Pm.remove prefix t.best

  let entries t = Pm.bindings t.best

  let prefixes t = List.map fst (entries t)

  let size t = Pm.cardinal t.best

  let clear t = t.best <- Pm.empty
end

module Adj_out = struct
  type t = { mutable by_peer : Attrs.t Pm.t Net.Asn.Map.t }

  let create () = { by_peer = Net.Asn.Map.empty }

  let set t ~peer prefix attrs =
    let m = Option.value (Net.Asn.Map.find_opt peer t.by_peer) ~default:Pm.empty in
    t.by_peer <- Net.Asn.Map.add peer (Pm.add prefix attrs m) t.by_peer

  let remove t ~peer prefix =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> ()
    | Some m -> t.by_peer <- Net.Asn.Map.add peer (Pm.remove prefix m) t.by_peer

  let find t ~peer prefix =
    Option.bind (Net.Asn.Map.find_opt peer t.by_peer) (Pm.find_opt prefix)

  let advertised t ~peer =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> []
    | Some m -> Pm.bindings m

  let drop_peer t ~peer =
    let dropped = List.map fst (advertised t ~peer) in
    t.by_peer <- Net.Asn.Map.remove peer t.by_peer;
    dropped

  let size t = Net.Asn.Map.fold (fun _ m acc -> acc + Pm.cardinal m) t.by_peer 0

  let entries t =
    Net.Asn.Map.bindings t.by_peer |> List.map (fun (peer, m) -> (peer, Pm.bindings m))

  let clear t = t.by_peer <- Net.Asn.Map.empty
end
