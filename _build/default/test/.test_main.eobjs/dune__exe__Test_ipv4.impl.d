test/test_ipv4.ml: Alcotest Int32 Ipv4 List Net Option QCheck QCheck_alcotest
