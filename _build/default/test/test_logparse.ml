(* Framework.Logparse: render/parse roundtrip and analyses. *)

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let test_parse_line () =
  match Framework.Logparse.parse_line "000001234567 info AS65001[bgp]: bestpath 1.2.3.0/24" with
  | Some e ->
    Alcotest.(check int) "time" 1_234_567 e.Framework.Logparse.time_us;
    Alcotest.(check string) "level" "info" e.Framework.Logparse.level;
    Alcotest.(check string) "node" "AS65001" e.Framework.Logparse.node;
    Alcotest.(check string) "category" "bgp" e.Framework.Logparse.category;
    Alcotest.(check string) "message" "bestpath 1.2.3.0/24" e.Framework.Logparse.message
  | None -> Alcotest.fail "must parse"

let test_parse_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (Framework.Logparse.parse_line "not a log line" = None);
  Alcotest.(check bool) "empty rejected" true (Framework.Logparse.parse_line "" = None)

let test_trace_roundtrip () =
  let trace = Engine.Trace.create () in
  Engine.Trace.record trace ~time:(Engine.Time.ms 5) ~node:"AS65001" ~category:"bgp"
    "bestpath 100.64.0.0/24 -> [AS65002]";
  Engine.Trace.record trace ~time:(Engine.Time.ms 9) ~node:"controller" ~category:"controller"
    ~level:Engine.Trace.Warn "decision 100.64.0.0/24 AS65003: unreachable";
  let entries = Framework.Logparse.of_trace trace in
  Alcotest.(check int) "both parsed" 2 (List.length entries);
  let changes = Framework.Logparse.route_changes entries (p "100.64.0.0/24") in
  Alcotest.(check int) "both are route changes" 2 (List.length changes);
  Alcotest.(check (option int)) "convergence instant" (Some 9_000)
    (Framework.Logparse.convergence_time_us entries (p "100.64.0.0/24"))

let test_aggregations () =
  let trace = Engine.Trace.create () in
  List.iter
    (fun (node, cat) ->
      Engine.Trace.record trace ~time:Engine.Time.zero ~node ~category:cat "x")
    [ ("a", "bgp"); ("a", "bgp"); ("b", "link"); ("a", "link") ];
  let entries = Framework.Logparse.of_trace trace in
  Alcotest.(check (list (pair string int))) "by node" [ ("a", 3); ("b", 1) ]
    (Framework.Logparse.by_node entries);
  Alcotest.(check (list (pair string int))) "by category" [ ("bgp", 2); ("link", 2) ]
    (Framework.Logparse.by_category entries)

let test_window () =
  let trace = Engine.Trace.create () in
  List.iter
    (fun ms ->
      Engine.Trace.record trace ~time:(Engine.Time.ms ms) ~node:"a" ~category:"c" "x")
    [ 1; 5; 9 ];
  let entries = Framework.Logparse.of_trace trace in
  Alcotest.(check int) "window filter" 1
    (List.length (Framework.Logparse.in_window entries ~from_us:4_000 ~to_us:8_000))

let test_real_network_logs () =
  (* End-to-end: run a tiny experiment and analyse its real trace. *)
  let exp =
    Framework.Experiment.create ~config:Framework.Config.fast_test ~seed:21
      (Topology.Artificial.clique 3)
  in
  let asn0 = Topology.Artificial.asn 0 in
  let prefix = Framework.Experiment.default_prefix exp asn0 in
  ignore
    (Framework.Experiment.measure exp ~prefix (fun () ->
         ignore (Framework.Experiment.announce exp asn0)));
  let trace = Engine.Sim.trace (Framework.Experiment.sim exp) in
  let entries = Framework.Logparse.of_trace trace in
  Alcotest.(check bool) "trace parsed" true (List.length entries > 0);
  Alcotest.(check bool) "route changes found" true
    (List.length (Framework.Logparse.route_changes entries prefix) >= 3);
  Alcotest.(check bool) "convergence derivable from logs" true
    (Framework.Logparse.convergence_time_us entries prefix <> None)

let test_exploration_rounds () =
  (* withdrawal on a clique explores in multiple MRAI waves; the
     announcement settles in one *)
  let exp =
    Framework.Experiment.create ~config:Framework.Config.fast_test ~seed:23
      (Topology.Artificial.clique 6)
  in
  let origin = Topology.Artificial.asn 0 in
  let prefix = Framework.Experiment.default_prefix exp origin in
  ignore
    (Framework.Experiment.measure exp ~prefix (fun () ->
         ignore (Framework.Experiment.announce exp origin)));
  let entries () =
    Framework.Logparse.of_trace (Engine.Sim.trace (Framework.Experiment.sim exp))
  in
  (* fast_test MRAI is 2 s: use a 1 s gap *)
  let announce_rounds = Framework.Logparse.exploration_rounds ~round_gap_us:1_000_000 (entries ()) prefix in
  Alcotest.(check int) "announcement: one wave" 1 announce_rounds;
  ignore
    (Framework.Experiment.measure exp ~prefix (fun () ->
         ignore (Framework.Experiment.withdraw exp origin)));
  let total_rounds = Framework.Logparse.exploration_rounds ~round_gap_us:1_000_000 (entries ()) prefix in
  Alcotest.(check bool)
    (Fmt.str "withdrawal adds exploration waves (total %d)" total_rounds)
    true (total_rounds >= 3);
  Alcotest.(check int) "no changes, no rounds" 0
    (Framework.Logparse.exploration_rounds (entries ())
       (Option.get (Net.Ipv4.prefix_of_string "203.0.113.0/24")))

let suite =
  [
    Alcotest.test_case "parse line" `Quick test_parse_line;
    Alcotest.test_case "exploration rounds" `Quick test_exploration_rounds;
    Alcotest.test_case "parse garbage" `Quick test_parse_garbage;
    Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
    Alcotest.test_case "aggregations" `Quick test_aggregations;
    Alcotest.test_case "time window" `Quick test_window;
    Alcotest.test_case "real network logs" `Quick test_real_network_logs;
  ]
