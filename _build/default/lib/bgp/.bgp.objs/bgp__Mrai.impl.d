lib/bgp/mrai.ml: Attrs Config Engine List Message Net
