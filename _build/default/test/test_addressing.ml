(* Framework.Addressing: automatic assignment is unique and coherent. *)

let test_uniqueness () =
  let spec = Topology.Artificial.clique 20 in
  let plan = Framework.Addressing.plan spec in
  let asns = Topology.Spec.asns spec in
  let routers = List.map plan.Framework.Addressing.router_addr asns in
  let origins = List.map plan.Framework.Addressing.origin_prefix asns in
  let uniq cmp l = List.length (List.sort_uniq cmp l) = List.length l in
  Alcotest.(check bool) "router addrs unique" true (uniq Net.Ipv4.compare_addr routers);
  Alcotest.(check bool) "origin prefixes unique" true (uniq Net.Ipv4.compare_prefix origins)

let test_host_in_origin_prefix () =
  let spec = Topology.Artificial.clique 5 in
  let plan = Framework.Addressing.plan spec in
  List.iter
    (fun asn ->
      Alcotest.(check bool) "host inside origin" true
        (Net.Ipv4.mem
           (plan.Framework.Addressing.host_addr asn)
           (plan.Framework.Addressing.origin_prefix asn)))
    (Topology.Spec.asns spec)

let test_router_outside_origin () =
  let spec = Topology.Artificial.clique 5 in
  let plan = Framework.Addressing.plan spec in
  List.iter
    (fun asn ->
      Alcotest.(check bool) "router not inside origin" false
        (Net.Ipv4.mem
           (plan.Framework.Addressing.router_addr asn)
           (plan.Framework.Addressing.origin_prefix asn)))
    (Topology.Spec.asns spec)

let test_unknown_asn_rejected () =
  let spec = Topology.Artificial.clique 3 in
  let plan = Framework.Addressing.plan spec in
  match plan.Framework.Addressing.router_addr (Net.Asn.of_int 1234) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown ASN must raise"

let test_large_topology () =
  (* index split across the second octet *)
  let spec = Topology.Artificial.line 300 in
  let plan = Framework.Addressing.plan spec in
  let a299 = plan.Framework.Addressing.router_addr (Topology.Artificial.asn 299) in
  let o1, o2, o3, _ = Net.Ipv4.octets a299 in
  Alcotest.(check (list int)) "octets split" [ 10; 1; 43 ] [ o1; o2; o3 ]

let suite =
  [
    Alcotest.test_case "uniqueness" `Quick test_uniqueness;
    Alcotest.test_case "host inside origin prefix" `Quick test_host_in_origin_prefix;
    Alcotest.test_case "router outside origin prefix" `Quick test_router_outside_origin;
    Alcotest.test_case "unknown ASN rejected" `Quick test_unknown_asn_rejected;
    Alcotest.test_case "large topology octet split" `Quick test_large_topology;
  ]
