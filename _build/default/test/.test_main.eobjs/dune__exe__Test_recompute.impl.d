test/test_recompute.ml: Alcotest Cluster_ctl Engine List Net Option Sim Time
