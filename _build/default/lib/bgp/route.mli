(** A route: prefix, path attributes, provenance. *)

type source = Local | Ebgp of Net.Asn.t

type t = {
  prefix : Net.Ipv4.prefix;
  attrs : Attrs.t;
  source : source;
  learned_at : Engine.Time.t;
}

val make :
  prefix:Net.Ipv4.prefix -> attrs:Attrs.t -> source:source -> learned_at:Engine.Time.t -> t

val prefix : t -> Net.Ipv4.prefix

val attrs : t -> Attrs.t

val source : t -> source

val learned_at : t -> Engine.Time.t

val is_local : t -> bool

val from_peer : t -> Net.Asn.t option

val pp_source : Format.formatter -> source -> unit

val pp : Format.formatter -> t -> unit
