lib/framework/config.ml: Bgp Cluster_ctl Engine
