lib/bgp/attrs.ml: Community Fmt List Net
