test/test_experiments.ml: Alcotest Engine Float Fmt Framework List Net Topology
