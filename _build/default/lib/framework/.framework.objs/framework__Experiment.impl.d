lib/framework/experiment.ml: Addressing Config Convergence Engine List Monitor Network Topology
