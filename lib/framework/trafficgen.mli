(** High-rate synthetic traffic generation over the allocation-free
    data-plane fast path ({!Net.Dataplane}).

    A generator fires seeded, deterministic probe bursts between
    simulation events: each burst classifies its whole schedule against
    a frozen snapshot of the composed forwarding state (no per-probe
    allocation, no flow-counter mutation), records the fate census as an
    epoch, and mirrors it into the simulator's metrics registry —
    [dataplane_probes_total], [dataplane_probes_delivered_total] and
    [dataplane_probes_dropped_total{fate="blackhole"|"loop"|"ttl_expired"}]
    — which {!Telemetry} scrapes on its normal cadence.  Drop counters
    are registered lazily per fate, so clean runs export unchanged
    series. *)

type schedule =
  | All_pairs  (** every ordered (src, dst) pair, spec order *)
  | Sampled_pairs of int  (** that many seeded random pairs per burst *)
  | Per_prefix of int  (** that many seeded random sources per destination prefix *)

val pp_schedule : Format.formatter -> schedule -> unit

type epoch = {
  at : Engine.Time.t;  (** simulated instant of the burst *)
  injected : int;
  delivered : int;
  blackholed : int;
  looped : int;
  ttl_expired : int;
}

val epoch_lost : epoch -> int
(** [blackholed + looped + ttl_expired]. *)

val loss_ratio : epoch -> float
(** Lost fraction of the injected probes (0 when none were injected). *)

val pp_epoch : Format.formatter -> epoch -> unit

type t

val create : ?ttl:int -> ?seed:int -> ?dsts:Net.Asn.t list -> Network.t -> schedule -> t
(** A generator probing from every AS toward [dsts] (default: all ASes;
    restrict it to the actually-originated prefixes when only some ASes
    announce).  [ttl] defaults to {!Net.Packet.default_ttl}; [seed] to
    0.  Sampling draws from a private RNG stream, so two generators with
    equal seeds fire identical schedules.
    @raise Invalid_argument on a non-positive sample budget or an empty
    destination set. *)

val schedule : t -> schedule

val burst : ?snapshot:Net.Dataplane.t -> t -> epoch
(** Fire one scheduled burst against the current forwarding state and
    record (and return) its epoch.  [snapshot] reuses an
    already-compiled {!Network.dataplane_snapshot} when the caller knows
    the control plane has not changed since. *)

val run : t -> every:Engine.Time.span -> until:Engine.Time.t -> unit
(** Schedule recurring bursts on the simulator, one every [every],
    first at [now + every], last at or before [until].  Each burst
    compiles a fresh snapshot, so it sees the control-plane state at its
    own instant.  @raise Invalid_argument on a non-positive interval. *)

val epochs : t -> epoch list
(** Every recorded epoch, oldest first. *)

val totals : t -> epoch
(** Sum over all epochs ([at] = the latest burst instant). *)
