test/test_router.ml: Alcotest Bgp Engine Hashtbl List Net Option Sim Time
