(* Bgp.Session: the per-peer session FSM, hold-time negotiation, the
   hold-expiry purge, and the deterministic reconnect backoff. *)

open Engine

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let asn = Net.Asn.of_int

let keepalive_config =
  Bgp.Config.with_reconnect
    (Bgp.Config.with_keepalives
       ~keepalive:{ Bgp.Config.interval = Time.sec 5; hold_time = Time.sec 15 }
       { Bgp.Config.default with Bgp.Config.mrai = Time.sec 1;
         proc_delay_min = Time.ms 1; proc_delay_max = Time.ms 1 })

(* Blockable two-router harness (same shape as test_liveness, plus
   per-router configs so hold negotiation can be asymmetric). *)
type env = {
  sim : Sim.t;
  a : Bgp.Router.t;
  b : Bgp.Router.t;
  blocked : bool ref;
}

let setup ?(seed = 11) ?(config_b = keepalive_config) () =
  let sim = Sim.create ~seed () in
  let blocked = ref false in
  let handlers : (int, from:int -> Bgp.Message.t -> unit) Hashtbl.t = Hashtbl.create 4 in
  let make n config =
    let send ~dst msg =
      if !blocked then true (* silently dropped on the wire *)
      else
        match Hashtbl.find_opt handlers dst with
        | None -> false
        | Some handler ->
          ignore (Sim.schedule_after sim (Time.ms 1) (fun () -> handler ~from:n msg));
          true
    in
    let r =
      Bgp.Router.create ~sim ~asn:(asn n) ~node_id:n
        ~router_id:(Net.Ipv4.addr_of_octets 10 0 (n mod 256) 1)
        ~config ~send ()
    in
    Hashtbl.replace handlers n (fun ~from msg -> Bgp.Router.handle_message r ~from msg);
    r
  in
  let a = make 65001 keepalive_config and b = make 65002 config_b in
  Bgp.Router.add_peer a ~peer_asn:(asn 65002) ~peer_node:65002
    ~policy:(Bgp.Policy.make Bgp.Policy.Unrestricted);
  Bgp.Router.add_peer b ~peer_asn:(asn 65001) ~peer_node:65001
    ~policy:(Bgp.Policy.make Bgp.Policy.Unrestricted);
  { sim; a; b; blocked }

let start env =
  Bgp.Router.start env.a;
  Bgp.Router.start env.b

let run_until env t = ignore (Sim.run ~until:t env.sim)

let state_a env = Bgp.Router.session_state env.a (asn 65002)

(* --- The FSM itself ----------------------------------------------------- *)

let test_of_flags () =
  Alcotest.(check string) "idle" "idle"
    (Bgp.Session.to_string (Bgp.Session.of_flags ~open_sent:false ~established:false));
  Alcotest.(check string) "connect" "connect"
    (Bgp.Session.to_string (Bgp.Session.of_flags ~open_sent:true ~established:false));
  Alcotest.(check string) "established dominates" "established"
    (Bgp.Session.to_string (Bgp.Session.of_flags ~open_sent:true ~established:true));
  (* stable gauge encoding *)
  Alcotest.(check (list int)) "to_int" [ 0; 1; 2 ]
    (List.map Bgp.Session.to_int [ Bgp.Session.Idle; Bgp.Session.Connect; Bgp.Session.Established ])

let test_fsm_transitions () =
  let env = setup () in
  Alcotest.(check bool) "idle before start" true (state_a env = Bgp.Session.Idle);
  (* OPEN goes out into a black hole: the session sits in Connect *)
  env.blocked := true;
  start env;
  run_until env (Time.ms 100);
  Alcotest.(check bool) "connect while OPEN unanswered" true
    (state_a env = Bgp.Session.Connect);
  (* the wire heals before the retry budget runs out *)
  env.blocked := false;
  run_until env (Time.sec 40);
  Alcotest.(check bool) "established once answered" true
    (state_a env = Bgp.Session.Established)

(* --- Hold expiry -------------------------------------------------------- *)

let test_hold_expiry_purges_adj_in () =
  let env = setup () in
  start env;
  run_until env (Time.sec 5);
  Bgp.Router.originate env.a (p "100.64.0.0/24");
  run_until env (Time.sec 10);
  Alcotest.(check bool) "b holds the route in Adj-RIB-In" true
    (Bgp.Router.adj_in_find env.b ~peer:(asn 65001) (p "100.64.0.0/24") <> None);
  env.blocked := true;
  run_until env (Time.sec 40);
  Alcotest.(check bool) "session no longer established" false
    (Bgp.Router.peer_established env.b (asn 65001));
  Alcotest.(check bool) "hold expiry purged Adj-RIB-In" true
    (Bgp.Router.adj_in_find env.b ~peer:(asn 65001) (p "100.64.0.0/24") = None);
  Alcotest.(check bool) "Loc-RIB withdrawn too" true
    (Bgp.Router.best env.b (p "100.64.0.0/24") = None)

let test_hold_zero_disables_liveness () =
  (* b negotiates hold 0 (no keepalives configured): RFC 4271 semantics —
     neither side may tear the session down on silence. *)
  let env = setup ~config_b:{ keepalive_config with Bgp.Config.keepalives = None } () in
  start env;
  run_until env (Time.sec 5);
  env.blocked := true;
  run_until env (Time.sec 120);
  Alcotest.(check bool) "a never expires the session" true
    (Bgp.Router.peer_established env.a (asn 65002));
  Alcotest.(check bool) "b never expires the session" true
    (Bgp.Router.peer_established env.b (asn 65001))

(* --- Reconnect ---------------------------------------------------------- *)

let test_reconnect_after_outage () =
  let env = setup () in
  start env;
  run_until env (Time.sec 5);
  Bgp.Router.originate env.a (p "100.64.0.0/24");
  run_until env (Time.sec 10);
  env.blocked := true;
  (* outage long enough for hold expiry on both ends, short enough that
     the ~63 s cumulative retry budget still has attempts left *)
  run_until env (Time.sec 45);
  Alcotest.(check bool) "down during the outage" false
    (Bgp.Router.peer_established env.a (asn 65002));
  env.blocked := false;
  run_until env (Time.sec 110);
  Alcotest.(check bool) "reconnected after the outage" true
    (Bgp.Router.peer_established env.a (asn 65002));
  Alcotest.(check bool) "route relearned after resync" true
    (Bgp.Router.best env.b (p "100.64.0.0/24") <> None)

let test_backoff_delay_determinism () =
  let b = Bgp.Session.default_backoff in
  let delays seed =
    let rng = Rng.create seed in
    List.init b.Bgp.Session.max_attempts (fun attempt ->
        Time.to_us (Bgp.Session.delay b rng ~attempt))
  in
  Alcotest.(check (list int)) "same seed, same schedule" (delays 7) (delays 7);
  Alcotest.(check bool) "different seed, different jitter" true (delays 7 <> delays 8);
  (* envelope: jitter shrinks each nominal delay by at most 25 %, and the
     cap bounds every retry *)
  let nominal attempt =
    Time.to_us
      (Time.min b.Bgp.Session.retry_max
         (Time.span_scale b.Bgp.Session.retry_initial
            (b.Bgp.Session.retry_multiplier ** float_of_int attempt)))
  in
  List.iteri
    (fun attempt d ->
      Alcotest.(check bool) "within jitter envelope" true
        (float_of_int d >= 0.75 *. float_of_int (nominal attempt) -. 1.0
        && d <= nominal attempt))
    (delays 7)

(* --- Determinism -------------------------------------------------------- *)

let render env =
  Fmt.str "a:%s b:%s a_out:%d b_out:%d best:%a"
    (Bgp.Session.to_string (Bgp.Router.session_state env.a (asn 65002)))
    (Bgp.Session.to_string (Bgp.Router.session_state env.b (asn 65001)))
    (Bgp.Router.stats env.a).Bgp.Router.msgs_out
    (Bgp.Router.stats env.b).Bgp.Router.msgs_out
    (Fmt.option ~none:(Fmt.any "-") Bgp.Route.pp)
    (Bgp.Router.best env.b (p "100.64.0.0/24"))

let test_same_seed_identical () =
  let episode () =
    let env = setup ~seed:2014 () in
    start env;
    run_until env (Time.sec 5);
    Bgp.Router.originate env.a (p "100.64.0.0/24");
    run_until env (Time.sec 10);
    env.blocked := true;
    run_until env (Time.sec 45);
    env.blocked := false;
    run_until env (Time.sec 110);
    render env
  in
  Alcotest.(check string) "byte-identical episodes" (episode ()) (episode ())

let suite =
  [
    Alcotest.test_case "of_flags and gauge encoding" `Quick test_of_flags;
    Alcotest.test_case "idle -> connect -> established" `Quick test_fsm_transitions;
    Alcotest.test_case "hold expiry purges Adj-RIB-In" `Quick test_hold_expiry_purges_adj_in;
    Alcotest.test_case "hold 0 disables liveness" `Quick test_hold_zero_disables_liveness;
    Alcotest.test_case "reconnect after an outage" `Quick test_reconnect_after_outage;
    Alcotest.test_case "backoff schedule is deterministic" `Quick test_backoff_delay_determinism;
    Alcotest.test_case "same-seed episodes identical" `Quick test_same_seed_identical;
  ]
