(* Delayed best-path recomputation.

   The paper's second design insight: recomputing on every external BGP
   input destabilizes the cluster during update bursts (which is exactly
   what convergence events produce), so the controller marks prefixes
   dirty and recomputes them in one batch after a delay, rate-limiting
   route flaps.  A zero delay degenerates to immediate recomputation (the
   ablation baseline). *)

type t = {
  sim : Engine.Sim.t;
  delay : Engine.Time.span;
  mutable dirty : Net.Ipv4.Prefix_set.t;
  timer : Engine.Timer.t;
  mutable batches : int;
  mutable marks : int;
  coalesced_c : Engine.Metrics.Counter.t;
  callback : Net.Ipv4.prefix list -> unit;
}

let fire t () =
  let prefixes = Net.Ipv4.Prefix_set.elements t.dirty in
  t.dirty <- Net.Ipv4.Prefix_set.empty;
  if prefixes <> [] then begin
    t.batches <- t.batches + 1;
    t.callback prefixes
  end

let create ~sim ~delay ~callback =
  let self = ref None in
  let timer =
    Engine.Timer.create ~category:"ctrl.recompute" sim ~name:"recompute"
      ~callback:(fun () -> match !self with Some t -> fire t () | None -> ())
  in
  let t =
    {
      sim;
      delay;
      dirty = Net.Ipv4.Prefix_set.empty;
      timer;
      batches = 0;
      marks = 0;
      coalesced_c =
        Engine.Metrics.counter (Engine.Sim.metrics sim)
          ~help:"dirty marks absorbed by an already-armed recompute timer"
          "controller_recompute_coalesced_total";
      callback;
    }
  in
  self := Some t;
  t

let delay t = t.delay

let mark_dirty t prefix =
  t.marks <- t.marks + 1;
  t.dirty <- Net.Ipv4.Prefix_set.add prefix t.dirty;
  if Engine.Time.equal t.delay Engine.Time.zero then fire t ()
  else if Engine.Timer.is_armed t.timer then
    Engine.Metrics.Counter.inc t.coalesced_c
  else Engine.Timer.start_if_idle t.timer t.delay

let mark_dirty_many t prefixes = List.iter (mark_dirty t) prefixes

let flush_now t =
  Engine.Timer.cancel t.timer;
  fire t ()

let reset t =
  t.dirty <- Net.Ipv4.Prefix_set.empty;
  Engine.Timer.cancel t.timer

(* Checkpointing: the dirty set and the armed expiry travel together so a
   restored controller flushes the same batch at the same instant. *)
type state = { s_dirty : Net.Ipv4.Prefix_set.t; s_due : Engine.Time.t option }

let state t = { s_dirty = t.dirty; s_due = Engine.Timer.due t.timer }

let restore t st =
  t.dirty <- st.s_dirty;
  match st.s_due with
  | Some at -> Engine.Timer.start_at t.timer at
  | None -> Engine.Timer.cancel t.timer

let pending t = Net.Ipv4.Prefix_set.cardinal t.dirty

let batches t = t.batches

let marks t = t.marks
