(* Bgp.Message: construction helpers and rendering. *)

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let nh = Net.Ipv4.addr_of_octets 10 0 0 1

let test_update_helpers () =
  Alcotest.(check bool) "empty is empty" true
    (Bgp.Message.is_empty_update Bgp.Message.empty_update);
  let u =
    { Bgp.Message.announced = [ (p "1.0.0.0/8", Bgp.Attrs.make ~next_hop:nh ()) ];
      withdrawn = [ p "2.0.0.0/8"; p "3.0.0.0/8" ] }
  in
  Alcotest.(check bool) "non-empty" false (Bgp.Message.is_empty_update u);
  Alcotest.(check int) "size counts both" 3 (Bgp.Message.update_size u)

let test_update_constructor () =
  match Bgp.Message.update ~withdrawn:[ p "9.0.0.0/8" ] () with
  | Bgp.Message.Update u ->
    Alcotest.(check int) "withdrawn only" 1 (Bgp.Message.update_size u);
    Alcotest.(check int) "no announcements" 0 (List.length u.Bgp.Message.announced)
  | _ -> Alcotest.fail "constructor must build an Update"

let test_rendering () =
  let render m = Fmt.str "%a" Bgp.Message.pp m in
  Alcotest.(check bool) "open mentions asn" true
    (let s = render (Bgp.Message.Open { asn = Net.Asn.of_int 65001; router_id = nh; hold_time = 180 }) in
     Astring_like.contains s "AS65001");
  Alcotest.(check string) "keepalive" "KEEPALIVE" (render Bgp.Message.Keepalive);
  Alcotest.(check bool) "notification carries reason" true
    (Astring_like.contains (render (Bgp.Message.Notification "bye")) "bye");
  Alcotest.(check bool) "update lists prefixes" true
    (Astring_like.contains
       (render (Bgp.Message.update ~withdrawn:[ p "9.9.0.0/16" ] ()))
       "9.9.0.0/16")

let suite =
  [
    Alcotest.test_case "update helpers" `Quick test_update_helpers;
    Alcotest.test_case "update constructor" `Quick test_update_constructor;
    Alcotest.test_case "rendering" `Quick test_rendering;
  ]
