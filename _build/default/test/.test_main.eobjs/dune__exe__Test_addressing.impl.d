test/test_addressing.ml: Alcotest Framework List Net Topology
