(* Declarative experiment scenarios: a list of timed actions replayed
   against a network — the scripting layer on which interactive demos and
   regression experiments are written. *)

type action =
  | Announce of Net.Asn.t * Net.Ipv4.prefix option (* None = the AS's default prefix *)
  | Withdraw of Net.Asn.t * Net.Ipv4.prefix option
  | Fail_link of Net.Asn.t * Net.Asn.t
  | Recover_link of Net.Asn.t * Net.Asn.t
  | Crash_node of Net.Asn.t
  | Restart_node of Net.Asn.t
  | Partition of Net.Asn.t * Net.Asn.t option
      (* cut the link to another AS, or (None) the member's control channel *)
  | Flap of Net.Asn.t * Net.Asn.t * int (* n fail/recover cycles, 1 s period *)
  | Heal (* bring every failed link back up *)
  | Ping of Net.Asn.t * Net.Asn.t
  | Note of string

type step = { at : Engine.Time.t; action : action }

type t = { title : string; steps : step list }

let make ~title steps =
  let sorted = List.stable_sort (fun a b -> Engine.Time.compare a.at b.at) steps in
  { title; steps = sorted }

let at seconds action = { at = Engine.Time.of_sec_f seconds; action }

let title t = t.title

let steps t = t.steps

let pp_action ppf = function
  | Announce (asn, p) ->
    Fmt.pf ppf "announce %a %a" Net.Asn.pp asn
      (Fmt.option ~none:(Fmt.any "<default>") Net.Ipv4.pp_prefix)
      p
  | Withdraw (asn, p) ->
    Fmt.pf ppf "withdraw %a %a" Net.Asn.pp asn
      (Fmt.option ~none:(Fmt.any "<default>") Net.Ipv4.pp_prefix)
      p
  | Fail_link (a, b) -> Fmt.pf ppf "fail-link %a %a" Net.Asn.pp a Net.Asn.pp b
  | Recover_link (a, b) -> Fmt.pf ppf "recover-link %a %a" Net.Asn.pp a Net.Asn.pp b
  | Crash_node asn -> Fmt.pf ppf "crash %a" Net.Asn.pp asn
  | Restart_node asn -> Fmt.pf ppf "restart %a" Net.Asn.pp asn
  | Partition (a, Some b) -> Fmt.pf ppf "partition %a %a" Net.Asn.pp a Net.Asn.pp b
  | Partition (a, None) -> Fmt.pf ppf "partition %a ctrl" Net.Asn.pp a
  | Flap (a, b, n) -> Fmt.pf ppf "flap %a %a %d" Net.Asn.pp a Net.Asn.pp b n
  | Heal -> Fmt.string ppf "heal"
  | Ping (a, b) -> Fmt.pf ppf "ping %a -> %a" Net.Asn.pp a Net.Asn.pp b
  | Note s -> Fmt.pf ppf "note %S" s

(* --- Text format ----------------------------------------------------------

   One action per line, '#' comments:

     @0.5  announce AS65001
     @2.0  announce AS65002 100.99.0.0/24
     @10.0 fail-link AS65001 AS65002
     @15.0 crash AS65003
     @18.0 restart AS65003
     @20.0 recover-link AS65001 AS65002
     @25.0 ping AS65002 AS65001
     @30.0 withdraw AS65001
     @31.0 note measurement window ends

   This is the file format `hybridsim scenario` replays. *)

let render_action = function
  | Announce (asn, p) ->
    Fmt.str "announce %a%s" Net.Asn.pp asn
      (match p with Some p -> " " ^ Net.Ipv4.prefix_to_string p | None -> "")
  | Withdraw (asn, p) ->
    Fmt.str "withdraw %a%s" Net.Asn.pp asn
      (match p with Some p -> " " ^ Net.Ipv4.prefix_to_string p | None -> "")
  | Fail_link (a, b) -> Fmt.str "fail-link %a %a" Net.Asn.pp a Net.Asn.pp b
  | Recover_link (a, b) -> Fmt.str "recover-link %a %a" Net.Asn.pp a Net.Asn.pp b
  | Crash_node asn -> Fmt.str "crash %a" Net.Asn.pp asn
  | Restart_node asn -> Fmt.str "restart %a" Net.Asn.pp asn
  | Partition (a, Some b) -> Fmt.str "partition %a %a" Net.Asn.pp a Net.Asn.pp b
  | Partition (a, None) -> Fmt.str "partition %a ctrl" Net.Asn.pp a
  | Flap (a, b, n) -> Fmt.str "flap %a %a %d" Net.Asn.pp a Net.Asn.pp b n
  | Heal -> "heal"
  | Ping (a, b) -> Fmt.str "ping %a %a" Net.Asn.pp a Net.Asn.pp b
  | Note s -> Fmt.str "note %s" s

let render t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "# scenario: %s\n" t.title);
  List.iter
    (fun step ->
      Buffer.add_string buf
        (Fmt.str "@%.3f %s\n" (Engine.Time.to_sec_f step.at) (render_action step.action)))
    t.steps;
  Buffer.contents buf

let parse_line lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else begin
    let fail reason = Error (Fmt.str "line %d: %s" lineno reason) in
    let words = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
    match words with
    | time :: action :: args when String.length time > 1 && time.[0] = '@' -> (
      let time_str = String.sub time 1 (String.length time - 1) in
      match float_of_string_opt time_str with
      | None -> fail (Fmt.str "bad time %S" time_str)
      | Some seconds -> (
        let asn1 () =
          match args with
          | a :: _ -> Net.Asn.of_string a
          | [] -> None
        in
        let asn2 () =
          match args with
          | _ :: b :: _ -> Net.Asn.of_string b
          | _ -> None
        in
        let opt_prefix () =
          match args with
          | [ _ ] -> Ok None
          | [ _; p ] -> (
            match Net.Ipv4.prefix_of_string p with
            | Some p -> Ok (Some p)
            | None -> Error (Fmt.str "bad prefix %S" p))
          | _ -> Error "expected: AS [prefix]"
        in
        match (String.lowercase_ascii action, asn1 (), asn2 ()) with
        | "announce", Some a, _ -> (
          match opt_prefix () with
          | Ok p -> Ok (Some (at seconds (Announce (a, p))))
          | Error e -> fail e)
        | "withdraw", Some a, _ -> (
          match opt_prefix () with
          | Ok p -> Ok (Some (at seconds (Withdraw (a, p))))
          | Error e -> fail e)
        | "fail-link", Some a, Some b -> Ok (Some (at seconds (Fail_link (a, b))))
        | "recover-link", Some a, Some b -> Ok (Some (at seconds (Recover_link (a, b))))
        | "crash", Some a, _ -> Ok (Some (at seconds (Crash_node a)))
        | "restart", Some a, _ -> Ok (Some (at seconds (Restart_node a)))
        | "partition", Some a, _ -> (
          match args with
          | [ _; b ] when String.lowercase_ascii b = "ctrl" ->
            Ok (Some (at seconds (Partition (a, None))))
          | _ -> (
            match asn2 () with
            | Some b -> Ok (Some (at seconds (Partition (a, Some b))))
            | None -> fail "expected: partition AS (AS|ctrl)"))
        | "flap", Some a, Some b -> (
          match args with
          | [ _; _; n ] -> (
            match int_of_string_opt n with
            | Some n when n > 0 -> Ok (Some (at seconds (Flap (a, b, n))))
            | _ -> fail (Fmt.str "bad flap count %S" n))
          | _ -> fail "expected: flap AS AS COUNT")
        | "heal", _, _ -> Ok (Some (at seconds Heal))
        | "ping", Some a, Some b -> Ok (Some (at seconds (Ping (a, b))))
        | "note", _, _ -> Ok (Some (at seconds (Note (String.concat " " args))))
        | ( ("announce" | "withdraw" | "fail-link" | "recover-link" | "crash" | "restart"
            | "partition" | "flap" | "ping"),
            _,
            _ ) ->
          fail "bad or missing AS number"
        | other, _, _ -> fail (Fmt.str "unknown action %S" other)))
    | _ -> fail "expected: @SECONDS ACTION ..."
  end

let parse_string ?(title = "scenario") text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (make ~title (List.rev acc))
    | line :: rest -> (
      match parse_line lineno line with
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some step) -> go (lineno + 1) (step :: acc) rest
      | Error e -> Error e)
  in
  go 1 [] lines

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string ~title:(Filename.basename path) text

(* Schedule every step on the simulator, then run to quiescence.  Returns
   the executed (time, action, note) log. *)
let run exp scenario =
  let network = Experiment.network exp in
  let sim = Network.sim network in
  let log = ref [] in
  let record action = log := (Engine.Sim.now sim, action) :: !log in
  let prefix_for asn = function Some p -> p | None -> Experiment.default_prefix exp asn in
  List.iter
    (fun { at; action } ->
      let dispatch () =
        record action;
        match action with
        | Announce (asn, p) -> Network.originate network asn (prefix_for asn p)
        | Withdraw (asn, p) -> Network.withdraw network asn (prefix_for asn p)
        | Fail_link (a, b) -> Network.fail_link network a b
        | Recover_link (a, b) -> Network.recover_link network a b
        | Crash_node asn -> Network.crash_node network asn
        | Restart_node asn -> Network.restart_node network asn
        | Partition (a, Some b) -> Network.fail_link network a b
        | Partition (a, None) -> Network.fail_ctrl_link network a
        | Flap (a, b, n) ->
          (* n fail/recover cycles on a 1 s period: down for 500 ms, up
             for 500 ms (the last recovery leaves the link up). *)
          let down = Engine.Time.ms 500 and period = Engine.Time.sec 1 in
          Network.fail_link network a b;
          for i = 0 to n - 1 do
            let base =
              Engine.Time.add (Engine.Sim.now sim)
                (Engine.Time.span_scale period (float_of_int i))
            in
            ignore
              (Engine.Sim.schedule_at ~category:"scenario.step" sim
                 (Engine.Time.add base down) (fun () ->
                   Network.recover_link network a b));
            if i < n - 1 then
              ignore
                (Engine.Sim.schedule_at ~category:"scenario.step" sim
                   (Engine.Time.add base period) (fun () ->
                     Network.fail_link network a b))
          done
        | Heal -> Network.heal_all_links network
        | Ping (src, dst) ->
          let plan = Network.plan network in
          Network.inject network ~src
            (Net.Packet.echo ~src:(plan.Addressing.host_addr src)
               ~dst:(plan.Addressing.host_addr dst) 0)
        | Note _ -> ()
      in
      (* Each step runs under its own span so every scenario action roots
         a causal tree (Announce/Withdraw add their own action.* span via
         Network; this covers link/crash/flap steps uniformly). *)
      let run_action () =
        if Engine.Causal.enabled (Engine.Sim.causal sim) then
          Engine.Sim.with_span sim ~category:"scenario.action"
            ~label:(render_action action) dispatch
        else dispatch ()
      in
      if Engine.Time.(at <= Engine.Sim.now sim) then run_action ()
      else ignore (Engine.Sim.schedule_at ~category:"scenario.step" sim at run_action))
    scenario.steps;
  ignore (Network.settle network);
  List.rev !log
