lib/cluster_ctl/recompute.mli: Engine Net
