lib/framework/looking_glass.ml: Bgp Cluster_ctl Engine Fmt List Net Network Sdn
