test/test_policy.ml: Alcotest Bgp Fmt List Net Option QCheck QCheck_alcotest
