(** Exportable convergence timelines: a periodic {!Engine.Sampler} feeding
    a metrics file in Prometheus, JSONL or CSV format.

    Snapshots are driven purely by simulated time, so identical seeds
    produce byte-identical export files. *)

type format = Prometheus | Jsonl | Csv

val format_to_string : format -> string

val format_of_path : string -> format
(** By extension: [.prom]/[.txt] → Prometheus, [.csv] → CSV, anything
    else → JSONL. *)

type t

val default_interval : Engine.Time.span
(** One simulated second. *)

val create : ?interval:Engine.Time.span -> sim:Engine.Sim.t -> path:string -> unit -> t
(** Start sampling [sim]'s registry every [interval] of simulated time.
    Nothing is written until {!finish}. *)

val snapshots : t -> Engine.Metrics.snapshot list
(** Collected so far, oldest first. *)

val finish : t -> int
(** Stop sampling, append a final snapshot of the settled state, write the
    file and return the number of snapshots it holds.  Prometheus output
    contains only the final snapshot (exposition format is point-in-time);
    JSONL and CSV contain the whole timeline. *)

val validate : format -> string -> (int, string) result
(** Check [text] parses as [format]; [Ok n] is the number of samples
    (Prometheus), lines (JSONL) or rows (CSV) checked. *)

val validate_file : string -> (int, string) result
(** {!validate} on a file's contents, format inferred from its path. *)
