(* Reactive flow installation: rules appear on demand with idle timeouts
   instead of being pushed for every decision. *)

let asn = Topology.Artificial.asn

let reactive_cfg =
  {
    Framework.Config.fast_test with
    Framework.Config.controller =
      {
        Cluster_ctl.Controller.recompute_delay = Engine.Time.ms 200;
        proactive = false;
        reactive_idle_timeout = Engine.Time.sec 5;
      };
  }

let build config =
  let spec = Topology.Spec.with_sdn (Topology.Artificial.clique 4) [ asn 2; asn 3 ] in
  let net = Framework.Network.create ~config ~seed:71 spec in
  Framework.Network.start net;
  ignore (Framework.Network.settle net);
  let plan = Framework.Network.plan net in
  Framework.Network.originate net (asn 0) (plan.Framework.Addressing.origin_prefix (asn 0));
  Framework.Network.originate net (asn 2) (plan.Framework.Addressing.origin_prefix (asn 2));
  ignore (Framework.Network.settle net);
  net

let table_size net member =
  Sdn.Flow_table.size (Sdn.Switch.table (Option.get (Framework.Network.switch net member)))

let test_no_rules_until_traffic () =
  let net = build reactive_cfg in
  Alcotest.(check int) "empty table before traffic" 0 (table_size net (asn 2));
  (* proactive mode installs immediately, for contrast *)
  let proactive = build Framework.Config.fast_test in
  Alcotest.(check bool) "proactive installs" true (table_size proactive (asn 2) > 0)

let test_traffic_installs_and_expires () =
  let net = build reactive_cfg in
  let plan = Framework.Network.plan net in
  (* first packet punts to the controller, which installs + forwards *)
  Framework.Network.inject net ~src:(asn 2)
    (Net.Packet.echo
       ~src:(plan.Framework.Addressing.host_addr (asn 2))
       ~dst:(plan.Framework.Addressing.host_addr (asn 0))
       1);
  (* inspect before the 5 s idle timeout can fire *)
  Framework.Network.run_until net
    (Engine.Time.add (Framework.Network.now net) (Engine.Time.sec 1));
  Alcotest.(check bool) "rule installed on demand" true (table_size net (asn 2) > 0);
  Alcotest.(check bool) "packet still delivered" true
    ((Framework.Network.data_stats net).Framework.Network.delivered >= 2);
  (* idle expiry cleans the table; the switch notified the controller *)
  ignore (Framework.Network.settle net);
  Alcotest.(check int) "rule expired when idle" 0 (table_size net (asn 2));
  let prefix = plan.Framework.Addressing.origin_prefix (asn 0) in
  (* a later packet reinstalls (controller forgot the expired rule) *)
  Framework.Network.inject net ~src:(asn 2)
    (Net.Packet.echo
       ~src:(plan.Framework.Addressing.host_addr (asn 2))
       ~dst:(Net.Ipv4.nth_host prefix 10)
       2);
  Framework.Network.run_until net
    (Engine.Time.add (Framework.Network.now net) (Engine.Time.sec 1));
  Alcotest.(check bool) "reinstalled on new traffic" true (table_size net (asn 2) > 0);
  ignore (Framework.Network.settle net)

let test_reactive_rules_refresh_on_reroute () =
  let net = build reactive_cfg in
  let plan = Framework.Network.plan net in
  let prefix = plan.Framework.Addressing.origin_prefix (asn 0) in
  Framework.Network.inject net ~src:(asn 2)
    (Net.Packet.echo
       ~src:(plan.Framework.Addressing.host_addr (asn 2))
       ~dst:(plan.Framework.Addressing.host_addr (asn 0))
       1);
  Framework.Network.run_until net
    (Engine.Time.add (Framework.Network.now net) (Engine.Time.sec 1));
  let action () =
    let sw = Option.get (Framework.Network.switch net (asn 2)) in
    match Sdn.Flow_table.lookup (Sdn.Switch.table sw) (Net.Ipv4.nth_host prefix 10) with
    | Some { Sdn.Flow.action = Sdn.Flow.Output port; _ } -> Some port
    | _ -> None
  in
  Alcotest.(check (option int)) "direct exit first" (Some 65001) (action ());
  (* kill the direct link: the installed reactive rule must be refreshed
     by recomputation, not left stale *)
  Framework.Network.fail_link net (asn 2) (asn 0);
  ignore (Framework.Network.settle net);
  match action () with
  | Some port -> Alcotest.(check bool) "rerouted away from dead link" true (port <> 65001)
  | None -> () (* rule dropped is also safe: next packet reinstalls *)

let suite =
  [
    Alcotest.test_case "no rules until traffic" `Quick test_no_rules_until_traffic;
    Alcotest.test_case "install + idle expiry + reinstall" `Quick
      test_traffic_installs_and_expires;
    Alcotest.test_case "refresh on reroute" `Quick test_reactive_rules_refresh_on_reroute;
  ]
