test/test_wire.ml: Alcotest Bgp Bytes Char Fmt List Net Option QCheck QCheck_alcotest
