(* Routing information bases.

   Adj_in:  per (peer, prefix) routes as received (post-import-policy).
   Loc:     the selected best route per prefix.
   Adj_out: per (peer, prefix) attributes as advertised — consulted to
            suppress duplicate announcements and to know what to withdraw.

   Storage is mutable prefix tries ([Net.Ipv4.Prefix_trie]) rather than
   persistent [Prefix_map]s: at Internet scale a RIB holds 10k+ prefixes
   per peer and the persistent spines dominated both allocation and live
   heap.  Iteration order is unchanged ([compare_prefix] ascending), so
   checkpoint dumps and decision ordering are bit-identical to the old
   map-based representation (enforced by test/test_rib_differential.ml). *)

module Pt = Net.Ipv4.Prefix_trie

module Adj_in = struct
  (* Two views of the same routes.  The peer-major view (one trie per
     peer, dropped when emptied) serves session maintenance
     ([drop_peer], [prefixes_from]); the prefix-major view makes
     [candidates] — run on every decision process — a single trie lookup
     yielding a compact flat array of (peer, route) cells in ascending
     peer order.  Both are updated together; [count] tracks the total so
     [size] is O(1). *)
  type t = {
    mutable by_peer : Route.t Pt.t Net.Asn.Map.t;
    by_prefix : (int * Route.t) array Pt.t;
    mutable count : int;
  }

  let create () = { by_peer = Net.Asn.Map.empty; by_prefix = Pt.create (); count = 0 }

  (* Insert or replace a cell keeping ascending peer order.  Replacement
     mutates in place (the array is owned by the trie); insertion copies. *)
  let array_set arr pi route =
    let n = Array.length arr in
    let rec pos i = if i = n || fst arr.(i) >= pi then i else pos (i + 1) in
    let i = pos 0 in
    if i < n && fst arr.(i) = pi then begin
      arr.(i) <- (pi, route);
      arr
    end
    else begin
      let out = Array.make (n + 1) (pi, route) in
      Array.blit arr 0 out 0 i;
      Array.blit arr i out (i + 1) (n - i);
      out
    end

  let array_remove arr pi =
    let n = Array.length arr in
    let rec pos i = if i = n || fst arr.(i) = pi then i else pos (i + 1) in
    let i = pos 0 in
    if i = n then arr
    else begin
      let out = Array.make (n - 1) arr.(0) in
      Array.blit arr 0 out 0 i;
      Array.blit arr (i + 1) out i (n - 1 - i);
      out
    end

  let set t ~peer (route : Route.t) =
    let prefix = Route.prefix route in
    let ptrie =
      match Net.Asn.Map.find_opt peer t.by_peer with
      | Some tr -> tr
      | None ->
        let tr = Pt.create () in
        t.by_peer <- Net.Asn.Map.add peer tr t.by_peer;
        tr
    in
    if not (Pt.mem prefix ptrie) then t.count <- t.count + 1;
    Pt.set prefix route ptrie;
    let pi = Net.Asn.to_int peer in
    let arr = match Pt.find prefix t.by_prefix with None -> [||] | Some a -> a in
    let arr' = array_set arr pi route in
    if arr' != arr || Array.length arr = 0 then Pt.set prefix arr' t.by_prefix

  let remove_from_prefix t ~peer prefix =
    match Pt.find prefix t.by_prefix with
    | None -> ()
    | Some arr ->
      let arr' = array_remove arr (Net.Asn.to_int peer) in
      if Array.length arr' = 0 then Pt.remove prefix t.by_prefix
      else if arr' != arr then Pt.set prefix arr' t.by_prefix

  let remove t ~peer prefix =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> ()
    | Some ptrie ->
      if Pt.mem prefix ptrie then begin
        t.count <- t.count - 1;
        Pt.remove prefix ptrie;
        if Pt.is_empty ptrie then t.by_peer <- Net.Asn.Map.remove peer t.by_peer;
        remove_from_prefix t ~peer prefix
      end

  let find t ~peer prefix =
    Option.bind (Net.Asn.Map.find_opt peer t.by_peer) (Pt.find prefix)

  (* All routes for a prefix across peers, in ascending peer order. *)
  let candidates t prefix =
    match Pt.find prefix t.by_prefix with
    | None -> []
    | Some arr -> Array.fold_right (fun (_, r) acc -> r :: acc) arr []

  let prefixes_from t ~peer =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> []
    | Some ptrie -> Pt.keys ptrie

  let drop_peer t ~peer =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> []
    | Some ptrie ->
      let dropped = Pt.keys ptrie in
      t.by_peer <- Net.Asn.Map.remove peer t.by_peer;
      List.iter (fun prefix -> remove_from_prefix t ~peer prefix) dropped;
      t.count <- t.count - List.length dropped;
      dropped

  let all_prefixes t = Pt.keys t.by_prefix

  let size t = t.count

  let entries t =
    Net.Asn.Map.fold
      (fun peer ptrie acc -> Pt.fold (fun _ r acc -> (peer, r) :: acc) ptrie acc)
      t.by_peer []
    |> List.rev

  let clear t =
    t.by_peer <- Net.Asn.Map.empty;
    Pt.clear t.by_prefix;
    t.count <- 0
end

module Loc = struct
  type t = { best : Route.t Pt.t }

  let create () = { best = Pt.create () }

  let find t prefix = Pt.find prefix t.best

  let set t (route : Route.t) = Pt.set (Route.prefix route) route t.best

  let remove t prefix = Pt.remove prefix t.best

  let entries t = Pt.entries t.best

  let prefixes t = Pt.keys t.best

  let size t = Pt.size t.best

  let clear t = Pt.clear t.best
end

module Adj_out = struct
  (* One trie per peer, dropped as soon as it empties (a peer whose last
     advertisement was withdrawn leaves no residue), with a maintained
     total count so [size] is O(1). *)
  type t = {
    mutable by_peer : Attrs.t Pt.t Net.Asn.Map.t;
    mutable count : int;
  }

  let create () = { by_peer = Net.Asn.Map.empty; count = 0 }

  let set t ~peer prefix attrs =
    let ptrie =
      match Net.Asn.Map.find_opt peer t.by_peer with
      | Some tr -> tr
      | None ->
        let tr = Pt.create () in
        t.by_peer <- Net.Asn.Map.add peer tr t.by_peer;
        tr
    in
    if not (Pt.mem prefix ptrie) then t.count <- t.count + 1;
    Pt.set prefix attrs ptrie

  let remove t ~peer prefix =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> ()
    | Some ptrie ->
      if Pt.mem prefix ptrie then begin
        t.count <- t.count - 1;
        Pt.remove prefix ptrie;
        if Pt.is_empty ptrie then t.by_peer <- Net.Asn.Map.remove peer t.by_peer
      end

  let find t ~peer prefix =
    Option.bind (Net.Asn.Map.find_opt peer t.by_peer) (Pt.find prefix)

  let advertised t ~peer =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> []
    | Some ptrie -> Pt.entries ptrie

  let drop_peer t ~peer =
    match Net.Asn.Map.find_opt peer t.by_peer with
    | None -> []
    | Some ptrie ->
      let dropped = Pt.keys ptrie in
      t.by_peer <- Net.Asn.Map.remove peer t.by_peer;
      t.count <- t.count - List.length dropped;
      dropped

  let size t = t.count

  let entries t =
    Net.Asn.Map.bindings t.by_peer
    |> List.map (fun (peer, ptrie) -> (peer, Pt.entries ptrie))

  let clear t =
    t.by_peer <- Net.Asn.Map.empty;
    t.count <- 0
end
