(** Deterministic artificial topologies.  ASNs are assigned from 65001
    upward in node order. *)

val base_asn : int

val asn : int -> Net.Asn.t
(** [asn i] is the ASN of the [i]-th generated node. *)

val clique : ?rel:Spec.rel -> int -> Spec.t
(** Full mesh; [Open] relationships by default (the paper's Fig. 2
    substrate). *)

val star : ?rel:Spec.rel -> int -> Spec.t
(** Node 0 is the hub; leaves are its customers by default. *)

val line : ?rel:Spec.rel -> int -> Spec.t

val ring : ?rel:Spec.rel -> int -> Spec.t

val tree : ?rel:Spec.rel -> int -> Spec.t
(** Complete binary tree of the given depth; children are customers. *)

val grid : ?rel:Spec.rel -> int -> int -> Spec.t

val dual_homed_stub : ?clique_size:int -> unit -> Spec.t
(** A clique plus one stub AS dual-homed to clique members 0 (primary) and
    1 (backup) — the fail-over experiment topology. *)

val stub_asn : Spec.t -> Net.Asn.t
(** The last node of a spec (the stub in {!dual_homed_stub} and
    {!failover_backup_chain}). *)

val failover_backup_chain : ?clique_size:int -> ?chain_len:int -> unit -> Spec.t
(** A clique plus a stub whose primary path enters at member 0 and whose
    strictly longer backup path reaches member 1 through [chain_len]
    transit ASes — failing the primary link triggers genuine path
    exploration among the legacy clique members. *)
