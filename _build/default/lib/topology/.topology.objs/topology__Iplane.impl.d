lib/topology/iplane.ml: Array Artificial Buffer Engine Filename Float Fmt Fun Hashtbl List Net Option Spec String
