(* Cluster_ctl.Recompute: dirty marking, batching, zero-delay mode. *)

open Engine

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let setup delay =
  let sim = Sim.create () in
  let batches = ref [] in
  let r =
    Cluster_ctl.Recompute.create ~sim ~delay ~callback:(fun prefixes ->
        batches := (Sim.now sim, prefixes) :: !batches)
  in
  (sim, r, batches)

let test_zero_delay_immediate () =
  let _, r, batches = setup Time.zero in
  Cluster_ctl.Recompute.mark_dirty r (p "100.64.0.0/24");
  Alcotest.(check int) "fired immediately" 1 (List.length !batches);
  Alcotest.(check int) "nothing pending" 0 (Cluster_ctl.Recompute.pending r)

let test_delayed_batching () =
  let sim, r, batches = setup (Time.sec 2) in
  Cluster_ctl.Recompute.mark_dirty r (p "100.64.0.0/24");
  Cluster_ctl.Recompute.mark_dirty r (p "100.64.1.0/24");
  Cluster_ctl.Recompute.mark_dirty r (p "100.64.0.0/24") (* duplicate *);
  Alcotest.(check int) "not yet" 0 (List.length !batches);
  Alcotest.(check int) "pending deduplicated" 2 (Cluster_ctl.Recompute.pending r);
  ignore (Sim.run sim);
  (match !batches with
  | [ (at, prefixes) ] ->
    Alcotest.(check int) "fired at delay" 2_000_000 (Time.to_us at);
    Alcotest.(check int) "one batch of two" 2 (List.length prefixes)
  | _ -> Alcotest.fail "expected exactly one batch");
  Alcotest.(check int) "marks counted" 3 (Cluster_ctl.Recompute.marks r);
  Alcotest.(check int) "one batch counted" 1 (Cluster_ctl.Recompute.batches r)

let test_timer_not_postponed_by_later_marks () =
  let sim, r, batches = setup (Time.sec 2) in
  Cluster_ctl.Recompute.mark_dirty r (p "100.64.0.0/24");
  ignore
    (Sim.schedule_at sim (Time.sec 1) (fun () ->
         Cluster_ctl.Recompute.mark_dirty r (p "100.64.1.0/24")));
  ignore (Sim.run sim);
  match List.rev !batches with
  | [ (at, prefixes) ] ->
    (* coalesced into the first deadline, not pushed out *)
    Alcotest.(check int) "first deadline kept" 2_000_000 (Time.to_us at);
    Alcotest.(check int) "both included" 2 (List.length prefixes)
  | _ -> Alcotest.fail "expected one batch"

let test_rearms_after_batch () =
  let sim, r, batches = setup (Time.sec 2) in
  Cluster_ctl.Recompute.mark_dirty r (p "100.64.0.0/24");
  ignore (Sim.run sim);
  Cluster_ctl.Recompute.mark_dirty r (p "100.64.1.0/24");
  ignore (Sim.run sim);
  Alcotest.(check int) "two batches" 2 (List.length !batches)

let test_flush_now () =
  let _, r, batches = setup (Time.sec 60) in
  Cluster_ctl.Recompute.mark_dirty r (p "100.64.0.0/24");
  Cluster_ctl.Recompute.flush_now r;
  Alcotest.(check int) "flushed without waiting" 1 (List.length !batches);
  (* a later empty flush is a no-op *)
  Cluster_ctl.Recompute.flush_now r;
  Alcotest.(check int) "empty flush no-op" 1 (List.length !batches)

let suite =
  [
    Alcotest.test_case "zero delay immediate" `Quick test_zero_delay_immediate;
    Alcotest.test_case "delayed batching + dedup" `Quick test_delayed_batching;
    Alcotest.test_case "deadline not postponed" `Quick test_timer_not_postponed_by_later_marks;
    Alcotest.test_case "re-arms after batch" `Quick test_rearms_after_batch;
    Alcotest.test_case "flush now" `Quick test_flush_now;
  ]
