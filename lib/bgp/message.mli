(** BGP messages at semantic granularity. *)

type update = {
  announced : (Net.Ipv4.prefix * Attrs.t) list;
  withdrawn : Net.Ipv4.prefix list;
}

type t =
  | Open of { asn : Net.Asn.t; router_id : Net.Ipv4.addr; hold_time : int }
      (** proposed hold time in whole seconds; 0 disables liveness *)
  | Keepalive
  | Update of update
  | Notification of string

val update : ?announced:(Net.Ipv4.prefix * Attrs.t) list -> ?withdrawn:Net.Ipv4.prefix list -> unit -> t

val empty_update : update

val is_empty_update : update -> bool

val update_size : update -> int

val pp : Format.formatter -> t -> unit

val rehash : t -> t
(** Re-intern the hash-consed {!Attrs.t} of an [Update] on the calling
    domain (cross-shard receive path); identity for other messages. *)
