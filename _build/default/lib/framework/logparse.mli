(** Log-file analysis over the trace's rendered text lines (the analogue
    of the original framework's Quagga-log tooling). *)

type entry = {
  time_us : int;
  level : string;
  node : string;
  category : string;
  message : string;
}

val parse_line : string -> entry option

val parse_lines : string list -> entry list

val parse_text : string -> entry list

val of_trace : Engine.Trace.t -> entry list

val by_node : entry list -> (string * int) list
(** Record counts per node, sorted by node name. *)

val by_category : entry list -> (string * int) list

val route_changes : entry list -> Net.Ipv4.prefix -> entry list
(** Bestpath/decision lines mentioning the prefix, in time order. *)

val convergence_time_us : entry list -> Net.Ipv4.prefix -> int option
(** Log-derived convergence instant: the last route change for the
    prefix. *)

val in_window : entry list -> from_us:int -> to_us:int -> entry list

val exploration_rounds : ?round_gap_us:int -> entry list -> Net.Ipv4.prefix -> int
(** Count MRAI-spaced waves of best-route changes for a prefix (clusters
    split at gaps above [round_gap_us], default 10 s — use about half the
    MRAI).  The "rounds" whose count times the MRAI is Fig. 2's
    convergence time. *)

val pp_entry : Format.formatter -> entry -> unit
