(** An OpenFlow switch acting as a cluster member's border device: flow
    forwarding, PACKET_IN on miss, and BGP relaying between external
    neighbors and the cluster BGP speaker.  With [liveness] configured it
    heartbeats the controller and degrades into a legacy-BGP fallback
    route when the control plane goes silent. *)

type liveness = {
  echo_interval : Engine.Time.span;  (** ECHO_REQUEST probe period *)
  fail_after : Engine.Time.span;  (** control silence before fallback *)
}

type stats = {
  mutable forwarded : int;
  mutable to_controller : int;
  mutable dropped : int;
  mutable relayed_in : int;
  mutable relayed_out : int;
  mutable flow_mods : int;
  mutable relay_drops : int;
      (** BGP relays discarded because the control channel refused them *)
}

type t

val create :
  ?liveness:liveness ->
  ?fallback_port:(unit -> Flow.port option) ->
  ?on_relay_drop:(unit -> unit) ->
  sim:Engine.Sim.t ->
  asn:Net.Asn.t ->
  node_id:int ->
  send_control:(Openflow.t -> bool) ->
  send_data:(dst:int -> Net.Packet.t -> bool) ->
  send_bgp:(dst:int -> Bgp.Message.t -> bool) ->
  asn_of_node:(int -> Net.Asn.t option) ->
  node_of_asn:(Net.Asn.t -> int option) ->
  is_local:(Net.Ipv4.addr -> bool) ->
  deliver_local:(Net.Packet.t -> unit) ->
  unit ->
  t
(** [fallback_port] picks the legacy neighbor the fallback default route
    points at (consulted on failover and when the chosen port dies);
    [on_relay_drop] accounts BGP relays discarded because the control
    channel is down (wired to [Netsim.note_drop Session_down]). *)

val asn : t -> Net.Asn.t

val node : t -> Engine.Node.t
(** The runtime node; a crash empties the flow table (the controller
    re-installs rules when the member is resynced on restart). *)

val node_id : t -> int

val table : t -> Flow_table.t

val stats : t -> stats

val fallback_active : t -> bool
(** Whether the switch is currently degraded onto its legacy default
    route. *)

val handle_data : t -> from:int -> Net.Packet.t -> unit
(** Forward a data packet (TTL decrement, flow lookup, PACKET_IN on miss). *)

val handle_bgp : t -> from:int -> Bgp.Message.t -> unit
(** Encapsulate an external neighbor's BGP message toward the speaker. *)

val handle_control : t -> Openflow.t -> unit
(** Process a message from the controller (FLOW_MOD, PACKET_OUT, relay,
    ECHO_REPLY, RESYNC_DONE). *)

val port_change : t -> peer:int -> up:bool -> unit
(** Report an adjacent link state change as PORT_STATUS. *)
