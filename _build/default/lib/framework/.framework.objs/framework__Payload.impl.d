lib/framework/payload.ml: Bgp Fmt Net Sdn
