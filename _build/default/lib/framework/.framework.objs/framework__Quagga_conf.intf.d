lib/framework/quagga_conf.mli: Addressing Net Topology
