(** Periodic metrics sampler on the simulated clock.

    Snapshots {!Sim.metrics} every [interval] of simulated time and passes
    each snapshot to [on_sample], building a convergence timeline.  The
    sampler re-arms only while other events remain queued, so it never
    prevents a run-to-exhaustion ([Sim.run] / [Network.settle]) from
    terminating; it goes dormant when the queue drains and resumes (via
    {!Sim.on_wake}) when new work is scheduled.  Take a final snapshot
    explicitly once the run finishes. *)

type t

val start : Sim.t -> interval:Time.span -> on_sample:(Metrics.snapshot -> unit) -> t
(** First sample fires one [interval] after the current instant.
    @raise Invalid_argument if [interval] is not positive. *)

val stop : t -> unit
(** Permanently disable further ticks. *)

val ticks : t -> int
(** Samples delivered so far. *)
