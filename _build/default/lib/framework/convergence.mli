(** Convergence detection: instruments every decision point (legacy
    Loc-RIBs, controller decisions) and the route collector, and measures
    per-prefix convergence of experiment events. *)

type t

val attach : Network.t -> t
(** Subscribe to every router and the controller.  Attach before running
    the phase you want measured. *)

val last_control_change : t -> Net.Ipv4.prefix -> Engine.Time.t option

val last_collector_update : t -> Net.Ipv4.prefix -> Engine.Time.t option

val control_changes : t -> Net.Ipv4.prefix -> int
(** Total best-route changes observed for the prefix. *)

val last_any_change : t -> Engine.Time.t
(** Latest control-plane change for any prefix. *)

type measurement = {
  prefix : Net.Ipv4.prefix;
  event_time : Engine.Time.t;
  settled_at : Engine.Time.t;
  last_change : Engine.Time.t option;
  convergence : Engine.Time.span option;
  changes : int;
}

val measure :
  ?max_events:int ->
  ?changes_before:int ->
  t ->
  prefix:Net.Ipv4.prefix ->
  event_time:Engine.Time.t ->
  measurement
(** Run the network to quiescence and report the interval from
    [event_time] to the prefix's last control-plane change ([None] when
    the event changed nothing). *)

val wait_quiet :
  ?step:Engine.Time.span ->
  ?max_wait:Engine.Time.span ->
  quiet:Engine.Time.span ->
  t ->
  [ `Quiet of Engine.Time.t | `Timeout of Engine.Time.t ]
(** Advance the simulation until no control-plane change for [quiet] —
    the detection mode for networks whose event queue never drains
    (keepalives, endless probe streams). *)

val pp_measurement : Format.formatter -> measurement -> unit
