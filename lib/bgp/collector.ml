(* The BGP route collector: every router peers with it, it accepts
   everything and never advertises — its timestamped update stream is the
   monitoring signal the framework's convergence detection consumes. *)

module Pt = Net.Ipv4.Prefix_trie

type action = Announce of Attrs.t | Withdraw

type event = { time : Engine.Time.t; peer : Net.Asn.t; prefix : Net.Ipv4.prefix; action : action }

(* At Internet scale the full event list (one boxed record per update ever
   seen) dwarfs the RIBs themselves, while convergence detection only
   needs counts and per-prefix last-update instants — [Counts_only] keeps
   exactly those and drops the log. *)
type retention = Full | Counts_only

type t = {
  sim : Engine.Sim.t;
  node : Engine.Node.t;
  asn : Net.Asn.t;
  node_id : int;
  router_id : Net.Ipv4.addr;
  send_raw : dst:int -> Message.t -> bool;
  peer_of_node : (int, Net.Asn.t) Hashtbl.t;
  retention : retention;
  mutable events : event list; (* newest first; empty under Counts_only *)
  mutable event_count : int;
  last_by_prefix : Engine.Time.t Pt.t;
  mutable last_time : Engine.Time.t option;
}

type Engine.Node.blob +=
  | Collector_state of
      event list * int * (Net.Ipv4.prefix * Engine.Time.t) list * Engine.Time.t option

let create ?(retention = Full) ~sim ~asn ~node_id ~router_id ~send () =
  let node = Engine.Node.create ~kind:"collector" sim ~name:"collector" in
  let t =
    {
      sim;
      node;
      asn;
      node_id;
      router_id;
      send_raw = send;
      peer_of_node = Hashtbl.create 16;
      retention;
      events = [];
      event_count = 0;
      last_by_prefix = Pt.create ();
      last_time = None;
    }
  in
  (* A crashed collector loses its event log — the monitoring feed has a
     gap, like a real route collector outage. *)
  Engine.Node.on_crash node (fun () ->
      t.events <- [];
      t.event_count <- 0;
      Pt.clear t.last_by_prefix;
      t.last_time <- None);
  Engine.Node.set_snapshot node (fun () ->
      Collector_state (t.events, t.event_count, Pt.entries t.last_by_prefix, t.last_time));
  Engine.Node.set_restore node (function
    | Collector_state (events, count, last_entries, last_time) ->
      t.events <- events;
      t.event_count <- count;
      Pt.clear t.last_by_prefix;
      List.iter (fun (p, time) -> Pt.set p time t.last_by_prefix) last_entries;
      t.last_time <- last_time
    | _ -> invalid_arg "Collector.restore: foreign snapshot blob");
  Engine.Node.start node;
  t

let asn t = t.asn

let node t = t.node

let node_id t = t.node_id

let add_peer t ~peer_asn ~peer_node = Hashtbl.replace t.peer_of_node peer_node peer_asn

let record t ~peer ~prefix action =
  let time = Engine.Sim.now t.sim in
  (match t.retention with
  | Full -> t.events <- { time; peer; prefix; action } :: t.events
  | Counts_only -> ());
  Pt.set prefix time t.last_by_prefix;
  t.last_time <- Some time;
  t.event_count <- t.event_count + 1

let handle_message t ~from msg =
  match Hashtbl.find_opt t.peer_of_node from with
  | None -> ()
  | Some peer -> (
    match msg with
    | Message.Open _ ->
      (* Auto-respond so routers' session FSM completes.  Hold time 0:
         the collector never emits keepalives, so it must opt the session
         out of liveness supervision. *)
      ignore
        (t.send_raw ~dst:from
           (Message.Open { asn = t.asn; router_id = t.router_id; hold_time = 0 }))
    | Message.Keepalive | Message.Notification _ -> ()
    | Message.Update u ->
      List.iter (fun prefix -> record t ~peer ~prefix Withdraw) u.Message.withdrawn;
      List.iter (fun (prefix, attrs) -> record t ~peer ~prefix (Announce attrs))
        u.Message.announced)

let events t = List.rev t.events

let event_count t = t.event_count

let events_for t prefix =
  List.filter (fun e -> Net.Ipv4.equal_prefix e.prefix prefix) (events t)

let last_update_time t = t.last_time

let last_update_for t prefix = Pt.find prefix t.last_by_prefix

let last_updates t = Pt.entries t.last_by_prefix

let updates_since t time =
  List.length (List.filter (fun e -> Engine.Time.(e.time >= time)) (events t))

let clear t =
  t.events <- [];
  t.event_count <- 0;
  Pt.clear t.last_by_prefix;
  t.last_time <- None

(* --- Dump format (MRT-inspired text) ----------------------------------

     <time_us>|<peer_asn>|A|<prefix>|<asn asn ...>
     <time_us>|<peer_asn>|W|<prefix>|

   Written by experiments for offline analysis, parseable back into
   events (with minimal attributes: the AS path only). *)

let dump t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      let base =
        Fmt.str "%d|%d" (Engine.Time.to_us e.time) (Net.Asn.to_int e.peer)
      in
      match e.action with
      | Announce attrs ->
        Buffer.add_string buf
          (Fmt.str "%s|A|%s|%s\n" base
             (Net.Ipv4.prefix_to_string e.prefix)
             (String.concat " "
                (List.map
                   (fun a -> string_of_int (Net.Asn.to_int a))
                   (Attrs.as_path attrs))))
      | Withdraw ->
        Buffer.add_string buf (Fmt.str "%s|W|%s|\n" base (Net.Ipv4.prefix_to_string e.prefix)))
    (events t);
  Buffer.contents buf

let parse_dump_line lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else begin
    let fail reason = Error (Fmt.str "line %d: %s" lineno reason) in
    match String.split_on_char '|' line with
    | [ time; peer; kind; prefix; path ] -> (
      match
        (int_of_string_opt time, Net.Asn.of_string peer, Net.Ipv4.prefix_of_string prefix)
      with
      | Some time_us, Some peer, Some prefix -> (
        let time = Engine.Time.of_us time_us in
        match kind with
        | "W" -> Ok (Some { time; peer; prefix; action = Withdraw })
        | "A" -> (
          let hops = String.split_on_char ' ' path |> List.filter (fun s -> s <> "") in
          let asns = List.filter_map Net.Asn.of_string hops in
          if List.length asns <> List.length hops then fail "bad AS path"
          else begin
            let attrs =
              Attrs.make ~as_path:asns ~next_hop:(Net.Ipv4.addr_of_octets 0 0 0 0) ()
            in
            Ok (Some { time; peer; prefix; action = Announce attrs })
          end)
        | k -> fail (Fmt.str "unknown record kind %S" k))
      | _ -> fail "bad time, peer or prefix")
    | _ -> fail "expected time|peer|kind|prefix|path"
  end

let parse_dump text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_dump_line lineno line with
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some e) -> go (lineno + 1) (e :: acc) rest
      | Error e -> Error e)
  in
  go 1 [] lines

(* Update counts per time bucket — the "updates over time" view used for
   burst/churn plots. *)
let rate_buckets ?(bucket = Engine.Time.sec 1) t =
  let table : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let bucket_us = Engine.Time.to_us bucket in
  if bucket_us <= 0 then invalid_arg "Collector.rate_buckets: bucket must be positive";
  List.iter
    (fun e ->
      let b = Engine.Time.to_us e.time / bucket_us in
      Hashtbl.replace table b (1 + Option.value (Hashtbl.find_opt table b) ~default:0))
    (events t);
  Hashtbl.fold (fun b count acc -> (Engine.Time.of_us (b * bucket_us), count) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Engine.Time.compare a b)

let pp_event ppf e =
  match e.action with
  | Announce attrs ->
    Fmt.pf ppf "%a %a announce %a [%a]" Engine.Time.pp e.time Net.Asn.pp e.peer
      Net.Ipv4.pp_prefix e.prefix Attrs.pp_path (Attrs.as_path attrs)
  | Withdraw ->
    Fmt.pf ppf "%a %a withdraw %a" Engine.Time.pp e.time Net.Asn.pp e.peer Net.Ipv4.pp_prefix
      e.prefix
