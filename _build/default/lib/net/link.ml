(* Point-to-point links between emulated network devices. *)

type id = int

type t = {
  id : id;
  a : int;
  b : int;
  delay : Engine.Time.span;
  bandwidth_bps : int option; (* None = infinite capacity *)
  queue_limit : int; (* max transmissions in flight per direction *)
  mutable up : bool;
  mutable loss : float;
  mutable delivered : int;
  mutable dropped : int;
  (* per-direction transmitter state for serialization delay: the time at
     which the (single) transmitter toward each endpoint frees up *)
  mutable busy_until_ab : Engine.Time.t;
  mutable busy_until_ba : Engine.Time.t;
}

let make ?bandwidth_bps ?(queue_limit = 64) ~id ~a ~b ~delay ~loss () =
  if a = b then invalid_arg "Link.make: self-link";
  if loss < 0.0 || loss > 1.0 then invalid_arg "Link.make: loss out of [0,1]";
  (match bandwidth_bps with
  | Some bps when bps <= 0 -> invalid_arg "Link.make: bandwidth must be positive"
  | Some _ | None -> ());
  if queue_limit < 1 then invalid_arg "Link.make: queue_limit must be >= 1";
  {
    id;
    a;
    b;
    delay;
    bandwidth_bps;
    queue_limit;
    up = true;
    loss;
    delivered = 0;
    dropped = 0;
    busy_until_ab = Engine.Time.zero;
    busy_until_ba = Engine.Time.zero;
  }

let id t = t.id

let endpoints t = (t.a, t.b)

let other_end t v =
  if v = t.a then t.b
  else if v = t.b then t.a
  else invalid_arg "Link.other_end: node not on link"

let connects t u v = (t.a = u && t.b = v) || (t.a = v && t.b = u)

let is_up t = t.up

let delay t = t.delay

let loss t = t.loss

let set_loss t p =
  if p < 0.0 || p > 1.0 then invalid_arg "Link.set_loss";
  t.loss <- p

let delivered t = t.delivered

let dropped t = t.dropped

let note_delivered t = t.delivered <- t.delivered + 1

let note_dropped t = t.dropped <- t.dropped + 1

(* State changes go through Netsim so endpoint watchers are notified. *)
let set_up_internal t up = t.up <- up

let bandwidth_bps t = t.bandwidth_bps

(* Serialization (transmission) time of [size_bits] on this link. *)
let transmission_time t ~size_bits =
  match t.bandwidth_bps with
  | None -> Engine.Time.span_zero
  | Some bps -> Engine.Time.us (max 1 (size_bits * 1_000_000 / bps))

(* Admit a transmission toward [dst] at [now]: returns the delivery time,
   or [None] when the per-direction queue (of pending transmissions) is
   full.  The transmitter serializes messages FIFO; queue depth is
   approximated by how far the transmitter's busy horizon extends beyond
   now, measured in transmissions of this size. *)
let admit t ~now ~dst ~size_bits =
  match t.bandwidth_bps with
  | None -> Some (Engine.Time.add now t.delay)
  | Some _ ->
    let busy = if dst = t.b then t.busy_until_ab else t.busy_until_ba in
    let tx = transmission_time t ~size_bits in
    let backlog_spans =
      if Engine.Time.(busy <= now) then 0
      else begin
        let waiting = Engine.Time.to_us (Engine.Time.diff busy now) in
        let per = max 1 (Engine.Time.to_us tx) in
        (waiting + per - 1) / per
      end
    in
    if backlog_spans >= t.queue_limit then None
    else begin
      let start = Engine.Time.max now busy in
      let done_at = Engine.Time.add start tx in
      if dst = t.b then t.busy_until_ab <- done_at else t.busy_until_ba <- done_at;
      Some (Engine.Time.add done_at t.delay)
    end

let pp ppf t =
  Fmt.pf ppf "link#%d %d<->%d %a %s" t.id t.a t.b Engine.Time.pp_span t.delay
    (if t.up then "up" else "down")
