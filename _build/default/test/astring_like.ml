(* Tiny shared test helper: substring search. *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  n > 0 && scan 0
