lib/bgp/rib.ml: Attrs List Net Option Route
