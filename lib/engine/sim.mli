(** Deterministic discrete-event scheduler.

    Events fire in (time, insertion sequence) order; with the splittable
    {!Rng} this makes runs bit-reproducible for a given seed.

    Domain-safety: a sim — and everything reachable from it ({!rng},
    {!trace}, {!metrics}, queued events) — is owned by exactly one
    domain at a time.  {!Pool}-driven sweeps respect this by building a
    fresh sim inside each task; the one accidental-sharing hazard is
    capturing a [t] (or its registry) in a closure submitted to the
    pool, which this module cannot detect — don't. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

type order = Seq | Canonical
(** Same-instant tie-breaking discipline.  [Seq] (the default) orders
    same-time events by scheduling sequence — the historical behaviour,
    byte-identical to every pre-sharding run.  [Canonical] orders them by
    their {!key} first (class, node, per-channel sequence) and falls back
    to the scheduling sequence only between events with equal keys; this
    makes the merged event order of a sharded run independent of how the
    topology was partitioned. *)

type key = { kclass : int; knode : int; kseq : int }
(** Canonical tie-break key.  Sharded runs use [kclass = -1] for
    pre-scheduled driver commands, [0] (the default) for component-local
    events such as timers, and [1] for network deliveries keyed by
    source node and per-directed-channel sequence number. *)

val default_key : key
(** [{ kclass = 0; knode = 0; kseq = 0 }]. *)

val create :
  ?order:order ->
  ?seed:int ->
  ?trace:bool ->
  ?causal:Causal.mode ->
  ?profiling:bool ->
  unit ->
  t
(** [causal] (default {!Causal.Disabled}) selects the causal-tracing mode:
    disabled costs nothing per event, [Ring n] keeps a bounded flight
    recorder, [Full] retains every span for export and analysis. *)

val order : t -> order

val now : t -> Time.t

val rng : t -> Rng.t
(** The root RNG; split per subsystem rather than drawing directly. *)

val trace : t -> Trace.t

val causal : t -> Causal.t
(** The per-simulation causal span store (one per sim, same domain
    ownership rule as {!trace} and {!metrics}).  Every scheduled event
    opens a span parented under the event executing at schedule time. *)

val annotate : t -> category:string -> ?node:string -> ?label:string -> unit -> unit
(** Record a zero-length causal marker (e.g. a FIB write) at the current
    simulated time, as a child of the currently executing event's span.
    No-op when tracing is disabled. *)

val with_span :
  t -> category:string -> ?node:string -> ?label:string -> (unit -> 'a) -> 'a
(** Run a thunk under a labelled span so the events it schedules are
    parented under it — used to root a tree per scenario action.
    Just calls the thunk when tracing is disabled. *)

val metrics : t -> Metrics.t
(** The per-simulation metrics registry.  Every subsystem holding a [Sim.t]
    registers its series here, so one snapshot covers the whole stack. *)

val pending : t -> int
(** Events still queued (including cancelled ones not yet reaped). *)

val executed : t -> int
(** Events executed so far. *)

val schedule_at : ?category:string -> ?key:key -> t -> Time.t -> (unit -> unit) -> handle
(** [category] (default ["event"]) labels the event in the
    [sim_events_scheduled_total]/[sim_events_executed_total] counters and
    in the wall-clock profile.  [key] (default {!default_key}) is the
    canonical tie-break key; it only affects ordering under [Canonical].
    @raise Invalid_argument if the instant is in the past. *)

val schedule_after :
  ?category:string -> ?key:key -> t -> Time.span -> (unit -> unit) -> handle

val on_wake : t -> (unit -> unit) -> unit
(** [f] runs whenever the event queue transitions from empty to non-empty
    — the hook periodic services (e.g. {!Sampler}) use to resume after the
    simulation has drained and new work arrives. *)

val cancel : handle -> unit

val cancelled : handle -> bool

val step : t -> bool
(** Execute the next event; [false] when the queue is empty. *)

type run_result = Exhausted | Reached_limit | Reached_time of Time.t

val run : ?until:Time.t -> ?max_events:int -> t -> run_result
(** Run until the queue drains, [max_events] fire, or the next event lies
    beyond [until] (in which case the clock advances to [until]). *)

val run_before : ?max_events:int -> t -> horizon:Time.t -> run_result
(** Run every event with [fire_at < horizon] (strictly before — the epoch
    horizon itself is excluded).  Unlike {!run}, the clock is NOT advanced
    to the horizon: it stays at the last executed event, so events injected
    afterwards at instants [>= horizon] are still schedulable.  Used by
    {!Shard} for lockstep epochs. *)

val next_event_time : t -> Time.t option
(** Fire time of the earliest live (non-cancelled) queued event; reaps
    cancelled events it skips over.  [None] when the queue is drained. *)

(** {1 Wall-clock self-profiling}

    Per-category host CPU time spent inside event actions.  This is real
    time, not simulated time, so it varies run to run — it is therefore
    kept in its own table and never enters the metrics registry, keeping
    metric exports byte-identical across same-seed runs. *)

val set_profiling : t -> bool -> unit

val profiling : t -> bool

type profile_row = { category : string; events : int; seconds : float }

val profile : t -> profile_row list
(** Sorted by category; empty unless profiling was enabled. *)

val pp_profile : Format.formatter -> t -> unit

val log : t -> node:string -> category:string -> ?level:Trace.level -> string -> unit

val logf :
  t ->
  node:string ->
  category:string ->
  ?level:Trace.level ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
