lib/bgp/decision.ml: Attrs Int List Net Route
