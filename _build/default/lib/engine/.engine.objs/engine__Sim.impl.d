lib/engine/sim.ml: Fmt Heap Rng Time Trace
