examples/video_failover.ml: Engine Fmt Framework List Topology
