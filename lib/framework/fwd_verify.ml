(* Static forwarding-state verification.

   After a convergence event the composed BGP FIB + SDN flow-table state
   either carries every (src, dst) pair, black-holes it (legal while a
   prefix is genuinely unreachable), or — never legally — cycles it.
   This module walks a frozen [Net.Dataplane] snapshot over all pairs to
   classify each one WITHOUT sending packets: the same per-hop order as
   the live data plane (local delivery, TTL, lookup, link liveness), at
   snapshot speed, with no mutation of flow counters.

   Two consumers: experiments call [verify] for loop/black-hole censuses
   between events, and the chaos invariant oracle calls [differential]
   to hold the verifier and the event-driven reference walker
   ([Monitor.walk]) to the same answer on every pair — the standing
   correctness check that the fast path forwards exactly like the
   emulation it summarizes. *)

type issue = {
  src : Net.Asn.t;
  dst : Net.Asn.t;
  fate : Net.Dataplane.fate; (* never [Delivered] *)
  path : Net.Asn.t list; (* source first, terminal node last *)
}

type report = {
  pairs : int;
  delivered : int;
  blackholed : int;
  looped : int;
  ttl_expired : int;
  issues : issue list; (* every non-delivered pair, (src, dst) walk order *)
}

let pp_issue ppf i =
  Fmt.pf ppf "%a -> %a: %a via [%a]" Net.Asn.pp i.src Net.Asn.pp i.dst Net.Dataplane.pp_fate
    i.fate
    Fmt.(list ~sep:sp Net.Asn.pp)
    i.path

let loops r = List.filter (fun i -> i.fate = Net.Dataplane.Looped) r.issues

let blackholes r = List.filter (fun i -> i.fate = Net.Dataplane.Blackholed) r.issues

let path_of dp =
  Array.to_list (Net.Dataplane.last_path dp)
  |> List.map (fun i -> Net.Asn.of_int (Net.Dataplane.asn_at dp i))

(* Classify every (src, dst) pair against the host address of [dst]'s
   origin prefix.  [snapshot] lets callers amortize one compile across
   several verifications of unchanged state. *)
let verify ?(ttl = Net.Packet.default_ttl) ?snapshot ?srcs ?dsts net =
  let all = Topology.Spec.asns (Network.spec net) in
  let srcs = Option.value srcs ~default:all in
  let dsts = Option.value dsts ~default:all in
  let plan = Network.plan net in
  let dp = match snapshot with Some dp -> dp | None -> Network.dataplane_snapshot net in
  let delivered = ref 0
  and blackholed = ref 0
  and looped = ref 0
  and ttl_expired = ref 0
  and pairs = ref 0
  and issues = ref [] in
  List.iter
    (fun src ->
      let si = Net.Dataplane.index_of dp (Net.Asn.to_int src) in
      List.iter
        (fun dst ->
          if not (Net.Asn.equal src dst) then begin
            incr pairs;
            let dst_bits = Net.Ipv4.addr_to_bits (plan.Addressing.host_addr dst) in
            let r = Net.Dataplane.forward dp ~src:si ~dst_bits ~ttl in
            match Net.Dataplane.result_fate r with
            | Net.Dataplane.Delivered -> incr delivered
            | fate ->
              (match fate with
              | Net.Dataplane.Blackholed -> incr blackholed
              | Net.Dataplane.Looped -> incr looped
              | Net.Dataplane.Delivered | Net.Dataplane.Ttl_expired -> incr ttl_expired);
              issues := { src; dst; fate; path = path_of dp } :: !issues
          end)
        dsts)
    srcs;
  {
    pairs = !pairs;
    delivered = !delivered;
    blackholed = !blackholed;
    looped = !looped;
    ttl_expired = !ttl_expired;
    issues = List.rev !issues;
  }

(* --- Verifier-vs-walker differential ------------------------------------ *)

type disagreement = {
  d_src : Net.Asn.t;
  d_dst : Net.Asn.t;
  static_fate : Net.Dataplane.fate;
  walk_outcome : Monitor.outcome;
}

let pp_disagreement ppf d =
  Fmt.pf ppf "%a -> %a: verifier says %a, walker says %a" Net.Asn.pp d.d_src Net.Asn.pp
    d.d_dst Net.Dataplane.pp_fate d.static_fate Monitor.pp_outcome d.walk_outcome

let fate_of_outcome = function
  | Monitor.Delivered _ -> Net.Dataplane.Delivered
  | Monitor.Blackhole _ -> Net.Dataplane.Blackholed
  | Monitor.Loop _ -> Net.Dataplane.Looped
  | Monitor.Ttl_exceeded _ -> Net.Dataplane.Ttl_expired

(* Every pair where the snapshot's fate differs from [Monitor.walk] over
   the live state.  [ttl] and [max_hops] are held equal; on networks
   smaller than that bound (every test and chaos topology) neither limit
   binds before loop detection does, so the two classifiers must agree
   exactly. *)
let differential ?(ttl = Net.Packet.default_ttl) net =
  let asns = Topology.Spec.asns (Network.spec net) in
  let plan = Network.plan net in
  let dp = Network.dataplane_snapshot net in
  List.concat_map
    (fun src ->
      let si = Net.Dataplane.index_of dp (Net.Asn.to_int src) in
      List.filter_map
        (fun dst ->
          if Net.Asn.equal src dst then None
          else begin
            let dst_addr = plan.Addressing.host_addr dst in
            let r =
              Net.Dataplane.forward dp ~src:si
                ~dst_bits:(Net.Ipv4.addr_to_bits dst_addr)
                ~ttl
            in
            let static_fate = Net.Dataplane.result_fate r in
            let walk_outcome = Monitor.walk ~max_hops:ttl net ~src ~dst_addr in
            if fate_of_outcome walk_outcome = static_fate then None
            else Some { d_src = src; d_dst = dst; static_fate; walk_outcome }
          end)
        asns)
    asns
