test/test_looking_glass.ml: Alcotest Framework List Option String Topology
