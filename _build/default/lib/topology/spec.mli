(** Declarative topology description: ASes, relationship-annotated links,
    and the SDN/legacy role split. *)

type role = Legacy | Sdn

(** Relationship of link endpoint [a] towards endpoint [b]. *)
type rel =
  | C2p  (** [a] is customer of [b] *)
  | P2p  (** settlement-free peers *)
  | S2s  (** siblings (mutual full transit) *)
  | Open  (** no policy — full propagation (clique experiments) *)

type node_spec = { asn : Net.Asn.t; role : role; name : string }

type link_spec = { a : Net.Asn.t; b : Net.Asn.t; rel : rel; delay_us : int option }

type t

val rel_to_string : rel -> string

val rel_of_string : string -> rel option

val role_to_string : role -> string

val node : ?role:role -> ?name:string -> Net.Asn.t -> node_spec

val link : ?rel:rel -> ?delay_us:int -> Net.Asn.t -> Net.Asn.t -> link_spec

val make : title:string -> nodes:node_spec list -> links:link_spec list -> t

val title : t -> string

val nodes : t -> node_spec list

val links : t -> link_spec list

val asns : t -> Net.Asn.t list

val node_count : t -> int

val link_count : t -> int

val find_node : t -> Net.Asn.t -> node_spec option

val mem : t -> Net.Asn.t -> bool

val sdn_asns : t -> Net.Asn.t list

val legacy_asns : t -> Net.Asn.t list

val role_of : t -> Net.Asn.t -> role

val with_sdn : t -> Net.Asn.t list -> t
(** Mark exactly the given ASes as SDN-controlled. *)

val links_of : t -> Net.Asn.t -> link_spec list

val neighbors : t -> Net.Asn.t -> Net.Asn.t list

(** A neighbor's role relative to a given AS. *)
type neighbor_role = Customer | Provider | Peer | Sibling | Unrestricted

val neighbor_role_to_string : neighbor_role -> string

val neighbor_role_of_link : me:Net.Asn.t -> link_spec -> neighbor_role

val validate : t -> string list
(** Structural problems; empty when valid. *)

val is_valid : t -> bool

val to_graph : t -> Net.Graph.t
(** Undirected AS graph; node ids are raw ASN integers. *)

val is_connected : t -> bool

val pp : Format.formatter -> t -> unit
