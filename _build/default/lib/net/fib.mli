(** Longest-prefix-match forwarding table (binary trie), generic in the
    entry type. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val insert : 'a t -> Ipv4.prefix -> 'a -> unit
(** Replaces any existing entry for exactly this prefix. *)

val find : 'a t -> Ipv4.prefix -> 'a option
(** Exact-prefix lookup. *)

val remove : 'a t -> Ipv4.prefix -> unit

val lookup : 'a t -> Ipv4.addr -> (Ipv4.prefix * 'a) option
(** Longest-prefix match for an address. *)

val lookup_value : 'a t -> Ipv4.addr -> 'a option

val entries : 'a t -> (Ipv4.prefix * 'a) list
(** Sorted by prefix. *)

val clear : 'a t -> unit

val iter : 'a t -> (Ipv4.prefix -> 'a -> unit) -> unit
