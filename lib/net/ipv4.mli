(** IPv4 addresses and prefixes, plus the sequential subnet allocator used
    for automatic address assignment. *)

type addr

type prefix

val compare_addr : addr -> addr -> int
(** Unsigned comparison. *)

val equal_addr : addr -> addr -> bool

val addr_of_int32 : int32 -> addr

val addr_to_int32 : addr -> int32

val addr_of_octets : int -> int -> int -> int -> addr

val octets : addr -> int * int * int * int

val pp_addr : Format.formatter -> addr -> unit

val addr_to_string : addr -> string

val addr_of_string : string -> addr option

val addr_to_bits : addr -> int
(** The address's 32 bits as a non-negative int (allocation-free: the
    underlying [Int32.to_int] returns an immediate).  The int encoding
    the data-plane fast path forwards instead of boxed addresses. *)

val addr_of_bits : int -> addr
(** Inverse of {!addr_to_bits} (boxes; build/edge use only). *)

val mask_bits : int -> int
(** [mask_bits len] is the network mask of a /len prefix in the
    {!addr_to_bits} int encoding — so prefix membership on the fast path
    is [bits land mask_bits len = addr_to_bits network], with no Int32
    boxing. *)

val prefix : addr -> int -> prefix
(** [prefix a len] normalizes [a] to its network address.
    @raise Invalid_argument if [len] is outside [0..32]. *)

val prefix_len : prefix -> int

val prefix_network : prefix -> addr

val compare_prefix : prefix -> prefix -> int

val equal_prefix : prefix -> prefix -> bool

val hash_prefix : prefix -> int

val mem : addr -> prefix -> bool

val subsumes : outer:prefix -> inner:prefix -> bool
(** [subsumes ~outer ~inner] iff every address of [inner] is in [outer]. *)

val pp_prefix : Format.formatter -> prefix -> unit

val prefix_to_string : prefix -> string

val prefix_of_string : string -> prefix option
(** Accepts ["10.0.0.0/8"] and bare addresses (as /32). *)

val host_count : prefix -> int
(** Usable host addresses (1 for /31 and /32). *)

val nth_host : prefix -> int -> addr
(** [nth_host p n] is the [n]-th address of [p] (0 = network address). *)

val subnets : prefix -> len:int -> prefix list
(** All subnets of [p] with the given longer length. *)

(** Sequential allocator of equal-sized subnets from a pool. *)
module Allocator : sig
  type t

  val create : pool:prefix -> len:int -> t

  val next : t -> prefix
  (** @raise Failure when the pool is exhausted. *)

  val allocated : t -> int

  val capacity : t -> int
end

(** Mutable binary trie keyed on prefix bits, with longest-prefix match.
    Iteration order is deterministic: exactly [compare_prefix] ascending,
    matching [Prefix_map] folds.  Not domain-safe; each trie is owned by
    one router/component. *)
module Prefix_trie : sig
  type 'a t

  val create : unit -> 'a t

  val size : 'a t -> int
  (** O(1). *)

  val is_empty : 'a t -> bool

  val find : prefix -> 'a t -> 'a option
  (** Exact-prefix lookup. *)

  val mem : prefix -> 'a t -> bool

  val set : prefix -> 'a -> 'a t -> unit
  (** Insert or replace the entry for exactly this prefix. *)

  val remove : prefix -> 'a t -> unit
  (** No-op when absent; prunes emptied branches. *)

  val lookup : addr -> 'a t -> (prefix * 'a) option
  (** Longest-prefix match for an address. *)

  val lookup_value : addr -> 'a t -> 'a option

  val lookup_value_exn : addr -> 'a t -> 'a
  (** Longest-prefix match without the [option]/pair boxing of {!lookup}:
      the walk aliases populated nodes' own value cells, so a hit
      allocates nothing.  @raise Not_found on a miss. *)

  val lookup_bits : default:'a -> int -> 'a t -> 'a
  (** Allocation- and exception-free longest-prefix match on
      {!Ipv4.addr_to_bits} int bits; [default] on a miss.  The data-plane
      fast path's lookup. *)

  val fold : (prefix -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
  (** Ascending [compare_prefix] order, like [Prefix_map.fold]. *)

  val iter : (prefix -> 'a -> unit) -> 'a t -> unit
  (** Ascending [compare_prefix] order. *)

  val entries : 'a t -> (prefix * 'a) list
  (** Ascending [compare_prefix] order. *)

  val keys : 'a t -> prefix list

  val clear : 'a t -> unit
end

module Prefix_map : Map.S with type key = prefix

module Prefix_set : Set.S with type elt = prefix
