(* OpenFlow-style control messages between switches and the controller,
   plus the BGP relay encapsulation the cluster uses: every external BGP
   peering of a cluster member terminates at the cluster BGP speaker, and
   its messages travel encapsulated over the switch-controller channel. *)

type flow_mod_command = Add | Delete | Delete_strict

type removal_reason = Idle_timeout | Hard_timeout

type relay_direction = To_speaker | To_neighbor

type t =
  | Hello
  | Echo_request of { switch_asn : Net.Asn.t } (* switch -> controller heartbeat probe *)
  | Echo_reply (* controller -> switch: the control plane is alive *)
  | Resync_done
      (* controller -> switch after a restart: the flow table has been
         atomically reinstalled; leave legacy fallback mode *)
  | Packet_in of { switch_asn : Net.Asn.t; in_port : Flow.port; packet : Net.Packet.t }
  | Packet_out of { out_port : Flow.port; packet : Net.Packet.t }
  | Flow_mod of { command : flow_mod_command; rule : Flow.rule }
  | Flow_removed of { switch_asn : Net.Asn.t; rule : Flow.rule; reason : removal_reason }
  | Port_status of { switch_asn : Net.Asn.t; port : Flow.port; up : bool }
  | Bgp_relay of {
      member : Net.Asn.t; (* the cluster member AS whose peering this is *)
      neighbor : Net.Asn.t; (* the external BGP neighbor *)
      direction : relay_direction;
      payload : Bgp.Message.t;
    }

let pp ppf = function
  | Hello -> Fmt.string ppf "HELLO"
  | Echo_request { switch_asn } -> Fmt.pf ppf "ECHO_REQUEST %a" Net.Asn.pp switch_asn
  | Echo_reply -> Fmt.string ppf "ECHO_REPLY"
  | Resync_done -> Fmt.string ppf "RESYNC_DONE"
  | Packet_in { switch_asn; in_port; packet } ->
    Fmt.pf ppf "PACKET_IN %a port=%d %a" Net.Asn.pp switch_asn in_port Net.Packet.pp packet
  | Packet_out { out_port; packet } ->
    Fmt.pf ppf "PACKET_OUT port=%d %a" out_port Net.Packet.pp packet
  | Flow_mod { command; rule } ->
    let cmd = match command with Add -> "add" | Delete -> "del" | Delete_strict -> "del!" in
    Fmt.pf ppf "FLOW_MOD %s %a" cmd Flow.pp rule
  | Flow_removed { switch_asn; rule; reason } ->
    let r = match reason with Idle_timeout -> "idle" | Hard_timeout -> "hard" in
    Fmt.pf ppf "FLOW_REMOVED %a %a (%s)" Net.Asn.pp switch_asn Flow.pp rule r
  | Port_status { switch_asn; port; up } ->
    Fmt.pf ppf "PORT_STATUS %a port=%d %s" Net.Asn.pp switch_asn port
      (if up then "up" else "down")
  | Bgp_relay { member; neighbor; direction; payload } ->
    let dir = match direction with To_speaker -> "->speaker" | To_neighbor -> "->neighbor" in
    Fmt.pf ppf "BGP_RELAY %a/%a %s %a" Net.Asn.pp member Net.Asn.pp neighbor dir
      Bgp.Message.pp payload
