(* Random topology models (Erdős–Rényi, Barabási–Albert, Waxman).

   All models draw from a caller-supplied RNG and guarantee a connected
   result: components are stitched by linking each to the first one, which
   perturbs the degree distribution negligibly for the sizes used here.

   Relationships: by default every link is [Open]; with [~infer_rels:true]
   links are oriented customer→provider towards the higher-degree endpoint,
   a standard degree heuristic for synthetic AS graphs. *)

let asn = Artificial.asn

let stitch_connected rng links n =
  let g = Net.Graph.create () in
  for i = 0 to n - 1 do
    Net.Graph.add_node g i
  done;
  List.iter (fun (a, b) -> Net.Graph.add_edge g a b) !links;
  match Net.Graph.components g with
  | [] | [ _ ] -> ()
  | first :: rest ->
    List.iter
      (fun comp ->
        let a = Engine.Rng.pick rng first in
        let b = Engine.Rng.pick rng comp in
        links := (a, b) :: !links)
      rest

let degree_table links n =
  let deg = Array.make n 0 in
  List.iter
    (fun (a, b) ->
      deg.(a) <- deg.(a) + 1;
      deg.(b) <- deg.(b) + 1)
    links;
  deg

let to_spec ~title ~infer_rels links n =
  let deg = degree_table links n in
  let rel_for a b =
    if not infer_rels then (a, b, Spec.Open)
    else if deg.(a) = deg.(b) then (a, b, Spec.P2p)
    else if deg.(a) < deg.(b) then (a, b, Spec.C2p) (* a is the customer *)
    else (b, a, Spec.C2p)
  in
  let links =
    List.map
      (fun (a, b) ->
        let a, b, rel = rel_for a b in
        Spec.link ~rel (asn a) (asn b))
      links
  in
  Spec.make ~title ~nodes:(List.init n (fun i -> Spec.node (asn i))) ~links

let erdos_renyi ?(infer_rels = false) rng ~n ~p =
  if n < 2 then invalid_arg "Random_models.erdos_renyi: n >= 2";
  if p < 0.0 || p > 1.0 then invalid_arg "Random_models.erdos_renyi: p in [0,1]";
  let links = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Engine.Rng.chance rng p then links := (i, j) :: !links
    done
  done;
  stitch_connected rng links n;
  to_spec ~title:(Fmt.str "er-%d-p%.2f" n p) ~infer_rels !links n

let barabasi_albert ?(infer_rels = false) rng ~n ~m =
  if n < 2 || m < 1 || m >= n then invalid_arg "Random_models.barabasi_albert";
  (* Endpoint multiset for preferential attachment. *)
  let endpoints = ref [] in
  let links = ref [] in
  let add_link a b =
    links := (a, b) :: !links;
    endpoints := a :: b :: !endpoints
  in
  (* Seed: a small connected core of m+1 nodes in a line. *)
  for i = 0 to m - 1 do
    add_link i (i + 1)
  done;
  for v = m + 1 to n - 1 do
    (* Draw m distinct targets weighted by degree. *)
    let chosen = Hashtbl.create m in
    let attempts = ref 0 in
    while Hashtbl.length chosen < m && !attempts < 1000 do
      incr attempts;
      let target = Engine.Rng.pick rng !endpoints in
      if target <> v then Hashtbl.replace chosen target ()
    done;
    Hashtbl.iter (fun target () -> add_link v target) chosen
  done;
  stitch_connected rng links n;
  to_spec ~title:(Fmt.str "ba-%d-m%d" n m) ~infer_rels !links n

(* Generalized Linear Preference (Bu & Towsley, INFOCOM'02): grows a graph
   where, with probability [p], [m] new links are added between existing
   nodes, otherwise a new node joins with [m] links; attachment
   probability is proportional to (degree - beta).  Produces AS-level
   degree distributions closer to measured data than plain BA. *)
let glp ?(infer_rels = false) ?(p = 0.45) ?(beta = 0.64) rng ~n ~m =
  if n < 3 || m < 1 || m >= n then invalid_arg "Random_models.glp";
  if p < 0.0 || p >= 1.0 then invalid_arg "Random_models.glp: p in [0,1)";
  if beta >= 1.0 then invalid_arg "Random_models.glp: beta < 1";
  let degree = Array.make n 0 in
  let links = ref [] in
  let link_set = Hashtbl.create 64 in
  let add_link a b =
    let key = (min a b, max a b) in
    if a <> b && not (Hashtbl.mem link_set key) then begin
      Hashtbl.replace link_set key ();
      links := (a, b) :: !links;
      degree.(a) <- degree.(a) + 1;
      degree.(b) <- degree.(b) + 1
    end
  in
  (* seed: a small line of m+1 nodes *)
  let node_count = ref (m + 1) in
  for i = 0 to m - 1 do
    add_link i (i + 1)
  done;
  (* weighted pick proportional to (degree - beta) over current nodes *)
  let pick_preferential () =
    let total = ref 0.0 in
    for i = 0 to !node_count - 1 do
      total := !total +. Float.max 0.05 (float_of_int degree.(i) -. beta)
    done;
    let draw = Engine.Rng.float rng !total in
    let rec find i acc =
      if i >= !node_count - 1 then i
      else begin
        let acc = acc +. Float.max 0.05 (float_of_int degree.(i) -. beta) in
        if draw < acc then i else find (i + 1) acc
      end
    in
    find 0 0.0
  in
  let safety = ref 0 in
  while !node_count < n && !safety < 100 * n do
    incr safety;
    if Engine.Rng.chance rng p then
      (* densify: m new internal links *)
      for _ = 1 to m do
        add_link (pick_preferential ()) (pick_preferential ())
      done
    else begin
      (* attach the new node to targets drawn among existing nodes *)
      let v = !node_count in
      for _ = 1 to m do
        add_link v (pick_preferential ())
      done;
      incr node_count
    end
  done;
  let n = !node_count in
  stitch_connected rng links n;
  to_spec ~title:(Fmt.str "glp-%d-m%d" n m) ~infer_rels !links n

let waxman ?(infer_rels = false) ?(alpha = 0.4) ?(beta = 0.2) rng ~n =
  if n < 2 then invalid_arg "Random_models.waxman: n >= 2";
  let xs = Array.init n (fun _ -> Engine.Rng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Engine.Rng.float rng 1.0) in
  let dist i j = sqrt (((xs.(i) -. xs.(j)) ** 2.0) +. ((ys.(i) -. ys.(j)) ** 2.0)) in
  let max_dist = sqrt 2.0 in
  let links = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = alpha *. exp (-.dist i j /. (beta *. max_dist)) in
      if Engine.Rng.chance rng p then links := (i, j) :: !links
    done
  done;
  stitch_connected rng links n;
  to_spec ~title:(Fmt.str "waxman-%d" n) ~infer_rels !links n
