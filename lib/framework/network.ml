(* The network builder: turn a topology spec into a running emulation.

   Layout on the fabric:
   - every AS is one node whose id is its raw ASN integer — a legacy node
     runs a Bgp.Router, an SDN node runs an Sdn.Switch;
   - node [collector_node] (-2) hosts the monitoring route collector,
     linked and peered with every AS;
   - node [ctrl_node] (-1) hosts the cluster BGP speaker and the IDR
     controller, linked to every SDN switch (the per-peering
     speaker-to-border-switch relay links of the paper);
   - data packets are forwarded through legacy FIBs and SDN flow tables,
     so end-to-end connectivity reflects actual programmed state. *)

module Pm = Net.Ipv4.Prefix_map

let ctrl_node = -1

let collector_node = -2

let collector_asn = Net.Asn.of_int 4_200_000_000

type data_stats = { mutable forwarded : int; mutable dropped : int; mutable delivered : int }

type t = {
  sim : Engine.Sim.t;
  net : Payload.t Net.Netsim.t;
  seed : int; (* construction seed, recorded for checkpointing *)
  spec : Topology.Spec.t;
  plan : Addressing.plan;
  config : Config.t;
  routers : Bgp.Router.t Net.Asn.Map.t;
  switches : Sdn.Switch.t Net.Asn.Map.t;
  fibs : int Net.Fib.t Net.Asn.Map.t; (* legacy data planes: prefix -> next node *)
  local_prefixes : (Net.Asn.t, Net.Ipv4.Prefix_set.t ref) Hashtbl.t;
  collector : Bgp.Collector.t;
  controller : Cluster_ctl.Controller.t option;
  speaker : Cluster_ctl.Speaker.t option;
  data_stats : data_stats;
  mutable on_deliver : (Net.Asn.t -> Net.Packet.t -> unit) list;
  mutable auto_reply : bool;
  (* relationships of peerings added at runtime, keyed (me, neighbor) *)
  rel_overrides : (Net.Asn.t * Net.Asn.t, Bgp.Policy.relationship) Hashtbl.t;
  (* (me, neighbor) -> spec link, both directions; see [index_links] *)
  link_index : (Net.Asn.t * Net.Asn.t, Topology.Spec.link_spec) Hashtbl.t;
  (* sharded execution: which fabric nodes this instance executes.  The
     full network is always CONSTRUCTED (replicated construction keeps
     every per-component RNG stream identical across shards); ownership
     only gates what runs — [start] and link watchers. *)
  owned : int -> bool;
}

let sim t = t.sim

let fabric t = t.net

let spec t = t.spec

let plan t = t.plan

let config t = t.config

let collector t = t.collector

let controller t = t.controller

let speaker t = t.speaker

let data_stats t = t.data_stats

let routers t = t.routers

let router t asn = Net.Asn.Map.find_opt asn t.routers

let switch t asn = Net.Asn.Map.find_opt asn t.switches

let seed t = t.seed

(* --- Node registry ------------------------------------------------------ *)

(* The runtime node behind an AS (router or switch) or the collector; the
   registry is the fabric's attachment table, so Network itself holds no
   duplicate component bookkeeping. *)
let runtime_node t asn =
  if Net.Asn.equal asn collector_asn then
    Net.Netsim.attached_node t.net collector_node
  else if Topology.Spec.mem t.spec asn then
    Net.Netsim.attached_node t.net (Net.Asn.to_int asn)
  else None

(* Every runtime node, fabric id order (controller at [ctrl_node],
   collector at [collector_node] first), plus the speaker, which has no
   fabric node of its own (it shares [ctrl_node] with the controller). *)
let runtime_nodes t =
  let fabric =
    List.filter_map (Net.Netsim.attached_node t.net) (Net.Netsim.node_ids t.net)
  in
  match t.speaker with
  | Some sp -> fabric @ [ Cluster_ctl.Speaker.node sp ]
  | None -> fabric

let asns t = Topology.Spec.asns t.spec

let sdn_asns t = Topology.Spec.sdn_asns t.spec

let legacy_asns t = Topology.Spec.legacy_asns t.spec

let node_of_asn_exn asn = Net.Asn.to_int asn

let is_as_node t node = node > 0 && Topology.Spec.mem t.spec (Net.Asn.of_int node)

let asn_of_node t node =
  if node = collector_node then Some collector_asn
  else if is_as_node t node then Some (Net.Asn.of_int node)
  else None

let node_of_asn t asn =
  if Net.Asn.equal asn collector_asn then Some collector_node
  else if Topology.Spec.mem t.spec asn then Some (Net.Asn.to_int asn)
  else None

let local_set t asn =
  match Hashtbl.find_opt t.local_prefixes asn with
  | Some s -> s
  | None ->
    let s = ref Net.Ipv4.Prefix_set.empty in
    Hashtbl.replace t.local_prefixes asn s;
    s

let is_local_addr t asn addr =
  Net.Ipv4.equal_addr addr (t.plan.Addressing.router_addr asn)
  || Net.Ipv4.Prefix_set.exists (fun p -> Net.Ipv4.mem addr p) !(local_set t asn)

let add_local_prefix t asn prefix =
  let s = local_set t asn in
  s := Net.Ipv4.Prefix_set.add prefix !s

let remove_local_prefix t asn prefix =
  let s = local_set t asn in
  s := Net.Ipv4.Prefix_set.remove prefix !s

let subscribe_deliver t f = t.on_deliver <- t.on_deliver @ [ f ]

let set_auto_reply t flag = t.auto_reply <- flag

(* --- Data plane --------------------------------------------------------- *)

let rec deliver_local t asn (packet : Net.Packet.t) =
  t.data_stats.delivered <- t.data_stats.delivered + 1;
  Engine.Sim.logf t.sim ~node:(Net.Asn.to_string asn) ~category:"data" "delivered %a"
    Net.Packet.pp packet;
  List.iter (fun f -> f asn packet) t.on_deliver;
  if t.auto_reply then
    match Net.Packet.reply_to packet with
    | Some reply -> inject t ~src:asn reply
    | None -> ()

and forward_legacy t asn (packet : Net.Packet.t) =
  if is_local_addr t asn packet.Net.Packet.dst then deliver_local t asn packet
  else
    match Net.Packet.decr_ttl packet with
    | None -> t.data_stats.dropped <- t.data_stats.dropped + 1
    | Some packet -> (
      let fib = Net.Asn.Map.find asn t.fibs in
      match Net.Fib.lookup_value fib packet.Net.Packet.dst with
      | Some next_node ->
        if Net.Netsim.send t.net ~src:(node_of_asn_exn asn) ~dst:next_node (Payload.Data packet)
        then t.data_stats.forwarded <- t.data_stats.forwarded + 1
        else t.data_stats.dropped <- t.data_stats.dropped + 1
      | None -> t.data_stats.dropped <- t.data_stats.dropped + 1)

(* Start a packet at an AS, as if a local host emitted it. *)
and inject t ~src (packet : Net.Packet.t) =
  match Net.Asn.Map.find_opt src t.switches with
  | Some sw -> Sdn.Switch.handle_data sw ~from:(node_of_asn_exn src) packet
  | None -> (
    match Net.Asn.Map.find_opt src t.routers with
    | Some _ -> forward_legacy t src packet
    | None -> invalid_arg (Fmt.str "Network.inject: unknown AS %a" Net.Asn.pp src))

(* --- Construction ------------------------------------------------------- *)

(* (me, neighbor) -> spec link, both directions.  Built once per network:
   the naive per-peering List.find_opt over the full link list made
   construction O(E^2), which dominates setup on Internet-scale graphs. *)
let index_links spec =
  let idx = Hashtbl.create 1024 in
  List.iter
    (fun (l : Topology.Spec.link_spec) ->
      Hashtbl.replace idx (l.Topology.Spec.a, l.Topology.Spec.b) l;
      Hashtbl.replace idx (l.Topology.Spec.b, l.Topology.Spec.a) l)
    (Topology.Spec.links spec);
  idx

let indexed_relationship link_index ~me ~neighbor =
  if Net.Asn.equal neighbor collector_asn then Bgp.Policy.Customer
  else begin
    match Hashtbl.find_opt link_index (me, neighbor) with
    | None -> Bgp.Policy.Unrestricted
    | Some l -> (
      match Topology.Spec.neighbor_role_of_link ~me l with
      | Topology.Spec.Customer -> Bgp.Policy.Customer
      | Topology.Spec.Provider -> Bgp.Policy.Provider
      | Topology.Spec.Peer -> Bgp.Policy.Peer
      | Topology.Spec.Sibling -> Bgp.Policy.Sibling
      | Topology.Spec.Unrestricted -> Bgp.Policy.Unrestricted)
  end

(* Runtime-aware relationship lookup: peerings added after construction
   take precedence over (absence in) the spec. *)
let relationship_for t ~me ~neighbor =
  match Hashtbl.find_opt t.rel_overrides (me, neighbor) with
  | Some rel -> rel
  | None -> indexed_relationship t.link_index ~me ~neighbor

let policy_for t ~me ~neighbor = Bgp.Policy.make (relationship_for t ~me ~neighbor)

let create ?(config = Config.default) ?(order = Engine.Sim.Seq) ?(owned = fun _ -> true)
    ~seed spec =
  (match Topology.Spec.validate spec with
  | [] -> ()
  | problems ->
    invalid_arg (Fmt.str "Network.create: invalid spec: %s" (String.concat "; " problems)));
  let sim = Engine.Sim.create ~order ~seed ~causal:config.Config.causal () in
  let net = Net.Netsim.create sim in
  let plan = Addressing.plan spec in
  let link_index = index_links spec in
  let all_asns = Topology.Spec.asns spec in
  let sdn = Topology.Spec.sdn_asns spec in
  let sdn_set = Net.Asn.Set.of_list sdn in
  let is_sdn asn = Net.Asn.Set.mem asn sdn_set in
  (* Fabric nodes. *)
  List.iter
    (fun asn ->
      Net.Netsim.add_node net ~id:(Net.Asn.to_int asn) ~name:(Net.Asn.to_string asn))
    all_asns;
  Net.Netsim.add_node net ~id:collector_node ~name:"collector";
  if sdn <> [] then Net.Netsim.add_node net ~id:ctrl_node ~name:"ctrl";
  (* Fabric links: AS-AS per the spec, collector to everyone, control
     links to every switch. *)
  List.iter
    (fun (l : Topology.Spec.link_spec) ->
      let delay =
        match l.Topology.Spec.delay_us with
        | Some us -> Engine.Time.us us
        | None -> config.Config.default_link_delay
      in
      ignore
        (Net.Netsim.add_link ~delay net (Net.Asn.to_int l.Topology.Spec.a)
           (Net.Asn.to_int l.Topology.Spec.b)))
    (Topology.Spec.links spec);
  List.iter
    (fun asn ->
      ignore
        (Net.Netsim.add_link ~delay:config.Config.collector_link_delay net collector_node
           (Net.Asn.to_int asn)))
    all_asns;
  List.iter
    (fun asn ->
      ignore
        (Net.Netsim.add_link ~delay:config.Config.control_link_delay net ctrl_node
           (Net.Asn.to_int asn)))
    sdn;
  (* BGP transmission, optionally through the RFC 4271 binary codec (a
     semantic UPDATE may split into several wire messages, delivered
     individually, as a real TCP transport would). *)
  let send_bgp_via ~src ~dst msg =
    if not config.Config.wire_transport then
      Net.Netsim.send net ~src ~dst (Payload.Bgp msg)
    else begin
      match Bgp.Wire.decode_all (Bgp.Wire.encode_concat msg) with
      | Ok msgs ->
        List.fold_left
          (fun acc m -> Net.Netsim.send net ~src ~dst (Payload.Bgp m) && acc)
          true msgs
      | Error e -> failwith (Fmt.str "Network: wire codec failure: %a" Bgp.Wire.pp_error e)
    end
  in
  (* Collector. *)
  let collector =
    Bgp.Collector.create ~retention:config.Config.collector_retention ~sim
      ~asn:collector_asn ~node_id:collector_node
      ~router_id:(Net.Ipv4.addr_of_octets 10 255 255 1)
      ~send:(fun ~dst msg -> send_bgp_via ~src:collector_node ~dst msg)
      ()
  in
  (* Legacy routers. *)
  let routers =
    List.fold_left
      (fun acc asn ->
        if is_sdn asn then acc
        else begin
          let node_id = Net.Asn.to_int asn in
          let router =
            Bgp.Router.create ?damping:config.Config.damping ~sim ~asn ~node_id
              ~router_id:(plan.Addressing.router_addr asn) ~config:config.Config.bgp
              ~send:(fun ~dst msg -> send_bgp_via ~src:node_id ~dst msg)
              ()
          in
          Net.Asn.Map.add asn router acc
        end)
      Net.Asn.Map.empty all_asns
  in
  (* Configure router peers: spec neighbors + the collector. *)
  Net.Asn.Map.iter
    (fun asn router ->
      List.iter
        (fun neighbor ->
          Bgp.Router.add_peer router ~peer_asn:neighbor ~peer_node:(Net.Asn.to_int neighbor)
            ~policy:(Bgp.Policy.make (indexed_relationship link_index ~me:asn ~neighbor)))
        (Topology.Spec.neighbors spec asn);
      Bgp.Router.add_peer router ~peer_asn:collector_asn ~peer_node:collector_node
        ~policy:(Bgp.Policy.make Bgp.Policy.Customer);
      Bgp.Collector.add_peer collector ~peer_asn:asn ~peer_node:(Net.Asn.to_int asn))
    routers;
  (* Legacy FIBs driven by Loc-RIB changes. *)
  let fibs =
    Net.Asn.Map.map
      (fun _ -> (Net.Fib.create () : int Net.Fib.t))
      routers
  in
  Net.Asn.Map.iter
    (fun asn router ->
      let fib = Net.Asn.Map.find asn fibs in
      Bgp.Router.subscribe_best_change router (fun prefix best ->
          if Engine.Causal.enabled (Engine.Sim.causal sim) then
            Engine.Sim.annotate sim ~category:"fib.write" ~node:(Net.Asn.to_string asn)
              ~label:(Net.Ipv4.prefix_to_string prefix) ();
          match best with
          | Some route -> (
            match Bgp.Route.from_peer route with
            | Some peer -> Net.Fib.insert fib prefix (Net.Asn.to_int peer)
            | None -> Net.Fib.remove fib prefix (* locally originated *))
          | None -> Net.Fib.remove fib prefix))
    routers;
  (* The record is needed by the switch/controller closures below; build
     it first with placeholders for the SDN parts, then fill them in. *)
  let t_ref = ref None in
  let the () = Option.get !t_ref in
  (* Cluster: speaker + controller + switches. *)
  let speaker, controller, switches =
    if sdn = [] then (None, None, Net.Asn.Map.empty)
    else begin
      let send_relay ~member ~neighbor msg =
        (* speaker -> member's border switch, encapsulated *)
        Net.Netsim.send net ~src:ctrl_node ~dst:(Net.Asn.to_int member)
          (Payload.Openflow
             (Sdn.Openflow.Bgp_relay
                { member; neighbor; direction = Sdn.Openflow.To_neighbor; payload = msg }))
      in
      let speaker =
        Cluster_ctl.Speaker.create ?liveness:config.Config.speaker_liveness ~sim ~send_relay ()
      in
      (* One speaker session per external peering of each member (legacy
         neighbors, members of *other* sub-networks are still neighbors on
         the wire but handled intra-cluster, and the collector). *)
      List.iter
        (fun member ->
          List.iter
            (fun neighbor ->
              if not (is_sdn neighbor) then
                Cluster_ctl.Speaker.add_session ?mrai_config:config.Config.speaker_mrai speaker
                  ~member ~neighbor ~member_addr:(plan.Addressing.router_addr member))
            (Topology.Spec.neighbors spec member);
          Cluster_ctl.Speaker.add_session ?mrai_config:config.Config.speaker_mrai speaker
            ~member ~neighbor:collector_asn
            ~member_addr:(plan.Addressing.router_addr member);
          Bgp.Collector.add_peer collector ~peer_asn:member ~peer_node:(Net.Asn.to_int member))
        sdn;
      let intra_links =
        List.filter_map
          (fun (l : Topology.Spec.link_spec) ->
            if is_sdn l.Topology.Spec.a && is_sdn l.Topology.Spec.b then
              Some (l.Topology.Spec.a, l.Topology.Spec.b)
            else None)
          (Topology.Spec.links spec)
      in
      let controller =
        Cluster_ctl.Controller.create ?flow_idle_timeout:config.Config.flow_idle_timeout
          ?flow_hard_timeout:config.Config.flow_hard_timeout ~sim
          ~config:config.Config.controller ~members:sdn ~speaker
          ~send_switch:(fun ~member msg ->
            Net.Netsim.send net ~src:ctrl_node ~dst:(Net.Asn.to_int member)
              (Payload.Openflow msg))
          ~node_of_asn:(fun asn -> node_of_asn (the ()) asn)
          ~asn_of_node:(fun node -> asn_of_node (the ()) node)
          ~addr_of_member:plan.Addressing.router_addr
          ~policy_of:(fun ~member ~neighbor -> policy_for (the ()) ~me:member ~neighbor)
          ~intra_links ()
      in
      (* Fallback egress for a degraded member: its lowest-numbered legacy
         neighbor whose link is still up (deterministic, re-picked by the
         switch when the chosen port dies). *)
      let link_is_up a b =
        match Net.Netsim.link_between net (Net.Asn.to_int a) (Net.Asn.to_int b) with
        | Some l -> Net.Link.is_up l
        | None -> false
      in
      let fallback_port_for member () =
        Topology.Spec.neighbors spec member
        |> List.filter (fun n -> (not (is_sdn n)) && link_is_up member n)
        |> List.sort Net.Asn.compare
        |> function
        | [] -> None
        | n :: _ -> Some (Net.Asn.to_int n)
      in
      let switches =
        List.fold_left
          (fun acc member ->
            let node_id = Net.Asn.to_int member in
            let sw =
              Sdn.Switch.create ?liveness:config.Config.switch_liveness
                ~fallback_port:(fallback_port_for member)
                ~on_relay_drop:(fun () -> Net.Netsim.note_drop net Net.Netsim.Session_down)
                ~sim ~asn:member ~node_id
                ~send_control:(fun msg ->
                  Net.Netsim.send net ~src:node_id ~dst:ctrl_node (Payload.Openflow msg))
                ~send_data:(fun ~dst pkt ->
                  Net.Netsim.send net ~src:node_id ~dst (Payload.Data pkt))
                ~send_bgp:(fun ~dst msg -> send_bgp_via ~src:node_id ~dst msg)
                ~asn_of_node:(fun node -> asn_of_node (the ()) node)
                ~node_of_asn:(fun asn -> node_of_asn (the ()) asn)
                ~is_local:(fun addr -> is_local_addr (the ()) member addr)
                ~deliver_local:(fun pkt -> deliver_local (the ()) member pkt)
                ()
            in
            Net.Asn.Map.add member sw acc)
          Net.Asn.Map.empty sdn
      in
      (Some speaker, Some controller, switches)
    end
  in
  let t =
    {
      sim;
      net;
      seed;
      spec;
      plan;
      config;
      routers;
      switches;
      fibs;
      local_prefixes = Hashtbl.create 16;
      collector;
      controller;
      speaker;
      data_stats = { forwarded = 0; dropped = 0; delivered = 0 };
      on_deliver = [];
      auto_reply = true;
      rel_overrides = Hashtbl.create 8;
      link_index;
      owned;
    }
  in
  t_ref := Some t;
  (* Data-plane and trace health series, synced from their owners at
     snapshot time (data_stats counts are monotonic, so exporting the
     delta since the previous collect keeps counter semantics). *)
  let m = Engine.Sim.metrics sim in
  let fwd_c =
    Engine.Metrics.counter m ~help:"data packets forwarded hop by hop"
      "net_data_forwarded_total"
  in
  let dlv_c =
    Engine.Metrics.counter m ~help:"data packets delivered to a local host"
      "net_data_delivered_total"
  in
  let drp_c =
    Engine.Metrics.counter m ~help:"data packets dropped (no route, TTL, dead link)"
      "net_data_dropped_total"
  in
  let warn_g =
    Engine.Metrics.gauge m ~help:"Warn-level trace records emitted" "trace_warn_records"
  in
  let exported = ref (0, 0, 0) in
  Engine.Metrics.on_collect m (fun () ->
      let f0, d0, r0 = !exported in
      Engine.Metrics.Counter.add fwd_c (t.data_stats.forwarded - f0);
      Engine.Metrics.Counter.add dlv_c (t.data_stats.delivered - d0);
      Engine.Metrics.Counter.add drp_c (t.data_stats.dropped - r0);
      exported := (t.data_stats.forwarded, t.data_stats.delivered, t.data_stats.dropped);
      Engine.Metrics.Gauge.set warn_g
        (float_of_int (Engine.Trace.warn_count (Engine.Sim.trace sim))));
  (* Ingress: every fabric node's deliveries go through its component's
     runtime-node mailbox, so a crashed component refuses traffic at the
     fabric boundary (counted as [node_down] drops) instead of having a
     stale closure poke dead state. *)
  Net.Asn.Map.iter
    (fun asn router ->
      Net.Netsim.attach net (Net.Asn.to_int asn)
        (Engine.Node.port (Bgp.Router.node router) ~handler:(fun ~from msg ->
             match msg with
             | Payload.Bgp m -> Bgp.Router.handle_message router ~from m
             | Payload.Data p -> forward_legacy t asn p
             | Payload.Openflow _ -> ())))
    routers;
  Net.Asn.Map.iter
    (fun asn sw ->
      Net.Netsim.attach net (Net.Asn.to_int asn)
        (Engine.Node.port (Sdn.Switch.node sw) ~handler:(fun ~from msg ->
             match msg with
             | Payload.Bgp m -> Sdn.Switch.handle_bgp sw ~from m
             | Payload.Data p -> Sdn.Switch.handle_data sw ~from p
             | Payload.Openflow c ->
               if from = ctrl_node then Sdn.Switch.handle_control sw c)))
    switches;
  Net.Netsim.attach net collector_node
    (Engine.Node.port (Bgp.Collector.node collector) ~handler:(fun ~from msg ->
         match msg with
         | Payload.Bgp m -> Bgp.Collector.handle_message collector ~from m
         | Payload.Data _ | Payload.Openflow _ -> ()));
  (match controller with
  | Some ctrl ->
    (* The cluster head: the controller's runtime node gates the shared
       fabric node, so a controller crash also silences the speaker's
       relayed BGP (they are one emulated process, see
       {!crash_controller}). *)
    Net.Netsim.attach net ctrl_node
      (Engine.Node.port (Cluster_ctl.Controller.node ctrl) ~handler:(fun ~from:_ msg ->
           match msg with
           | Payload.Openflow m -> Cluster_ctl.Controller.handle_openflow ctrl m
           | Payload.Bgp _ | Payload.Data _ -> ()))
  | None -> ());
  (* A router crash also loses its kernel forwarding state. *)
  Net.Asn.Map.iter
    (fun asn router ->
      let fib = Net.Asn.Map.find asn fibs in
      Engine.Node.on_crash (Bgp.Router.node router) (fun () -> Net.Fib.clear fib))
    routers;
  (* Link watchers: session lifecycle for legacy routers, PORT_STATUS for
     switches.  Only installed on OWNED nodes: a non-owned replica must
     stay inert when a replicated link-state command flips a link, or it
     would run detection timers the owning shard also runs. *)
  Net.Asn.Map.iter
    (fun asn router ->
      if owned (Net.Asn.to_int asn) then
      (* Detection delays run on the router's node: if it crashes while
         the timer is pending, the epoch guard discards the stale event. *)
      let node = Bgp.Router.node router in
      Net.Netsim.set_link_watcher net (Net.Asn.to_int asn) (fun ~link ~peer ~up ->
          match asn_of_node t peer with
          | None -> ()
          | Some peer_asn ->
            if up then
              Engine.Node.schedule_after node
                config.Config.bgp.Bgp.Config.session_open_delay (fun () ->
                  if Net.Link.is_up link then Bgp.Router.open_session router peer_asn)
            else
              Engine.Node.schedule_after node
                config.Config.bgp.Bgp.Config.session_down_detect (fun () ->
                  if not (Net.Link.is_up link) then Bgp.Router.session_down router peer_asn)))
    routers;
  Net.Asn.Map.iter
    (fun _ sw ->
      if owned (Sdn.Switch.node_id sw) then
        Net.Netsim.set_link_watcher net (Sdn.Switch.node_id sw) (fun ~link:_ ~peer ~up ->
            if peer <> ctrl_node && Engine.Node.is_up (Sdn.Switch.node sw) then
              Sdn.Switch.port_change sw ~peer ~up))
    switches;
  t

let owned t node = t.owned node

(* Open all BGP sessions (idempotent).  In a sharded run only owned
   components come alive; the rest are inert replicas that exist so the
   construction-order RNG splits match the single-shard run. *)
let start t =
  Net.Asn.Map.iter
    (fun asn r -> if t.owned (Net.Asn.to_int asn) then Bgp.Router.start r)
    t.routers;
  if t.owned ctrl_node then Option.iter Cluster_ctl.Speaker.open_all t.speaker

(* --- Experiment-facing operations -------------------------------------- *)

let role t asn = Topology.Spec.role_of t.spec asn

(* Root a causal span per experiment action so the whole convergence
   fan-out (sessions, MRAI holds, recomputes, flow installs, FIB writes)
   hangs off one tree per action. *)
let action_span t ~category ~asn ~prefix f =
  if Engine.Causal.enabled (Engine.Sim.causal t.sim) then
    Engine.Sim.with_span t.sim ~category ~node:(Net.Asn.to_string asn)
      ~label:(Net.Ipv4.prefix_to_string prefix) f
  else f ()

let originate t asn prefix =
  action_span t ~category:"action.originate" ~asn ~prefix @@ fun () ->
  add_local_prefix t asn prefix;
  match Net.Asn.Map.find_opt asn t.routers with
  | Some router -> Bgp.Router.originate router prefix
  | None -> (
    match t.controller with
    | Some ctrl -> Cluster_ctl.Controller.originate ctrl ~member:asn prefix
    | None -> invalid_arg (Fmt.str "Network.originate: unknown AS %a" Net.Asn.pp asn))

let withdraw t asn prefix =
  action_span t ~category:"action.withdraw" ~asn ~prefix @@ fun () ->
  remove_local_prefix t asn prefix;
  match Net.Asn.Map.find_opt asn t.routers with
  | Some router -> Bgp.Router.withdraw_origin router prefix
  | None -> (
    match t.controller with
    | Some ctrl -> Cluster_ctl.Controller.withdraw_origin ctrl ~member:asn prefix
    | None -> invalid_arg (Fmt.str "Network.withdraw: unknown AS %a" Net.Asn.pp asn))

let fail_link t a b =
  if not (Net.Netsim.fail_link_between t.net (Net.Asn.to_int a) (Net.Asn.to_int b)) then
    invalid_arg
      (Fmt.str "Network.fail_link: no link %a<->%a" Net.Asn.pp a Net.Asn.pp b)

let recover_link t a b =
  if not (Net.Netsim.recover_link_between t.net (Net.Asn.to_int a) (Net.Asn.to_int b)) then
    invalid_arg
      (Fmt.str "Network.recover_link: no link %a<->%a" Net.Asn.pp a Net.Asn.pp b)

(* Partition one member from the cluster head (the control channel only:
   data-plane links are untouched, so the member's fallback route still
   carries traffic). *)
let fail_ctrl_link t member =
  if not (Net.Netsim.fail_link_between t.net (Net.Asn.to_int member) ctrl_node) then
    invalid_arg (Fmt.str "Network.fail_ctrl_link: %a has no control link" Net.Asn.pp member)

let recover_ctrl_link t member =
  if not (Net.Netsim.recover_link_between t.net (Net.Asn.to_int member) ctrl_node) then
    invalid_arg
      (Fmt.str "Network.recover_ctrl_link: %a has no control link" Net.Asn.pp member)

let ctrl_link_up t member =
  match Net.Netsim.link_between t.net (Net.Asn.to_int member) ctrl_node with
  | Some link -> Net.Link.is_up link
  | None -> false

(* Bring every failed link (AS-AS, control and collector) back up —
   chaos-schedule epilogue. *)
let heal_all_links t =
  List.iter
    (fun link -> if not (Net.Link.is_up link) then Net.Netsim.set_link_up t.net link true)
    (Net.Netsim.links t.net)

(* --- Component lifecycle (crash / restart) ------------------------------ *)

let unknown_as op asn = invalid_arg (Fmt.str "Network.%s: unknown AS %a" op Net.Asn.pp asn)

let crash_node t asn =
  match Net.Asn.Map.find_opt asn t.routers with
  | Some r -> Engine.Node.crash (Bgp.Router.node r)
  | None -> (
    match Net.Asn.Map.find_opt asn t.switches with
    | Some sw -> Engine.Node.crash (Sdn.Switch.node sw)
    | None -> unknown_as "crash_node" asn)

let restart_node t asn =
  match Net.Asn.Map.find_opt asn t.routers with
  | Some r -> Engine.Node.restart (Bgp.Router.node r)
  | None -> (
    match Net.Asn.Map.find_opt asn t.switches with
    | Some sw ->
      Engine.Node.restart (Sdn.Switch.node sw);
      (* the switch came back with an empty flow table, so the
         controller's installed-rule shadow is stale until it re-pushes *)
      Option.iter (fun c -> Cluster_ctl.Controller.resync_member c asn) t.controller
    | None -> unknown_as "restart_node" asn)

(* The cluster head is one emulated host running both processes: crashing
   it takes the controller and the speaker down together. *)
let crash_controller t =
  match (t.controller, t.speaker) with
  | Some ctrl, Some sp ->
    Engine.Node.crash (Cluster_ctl.Controller.node ctrl);
    Engine.Node.crash (Cluster_ctl.Speaker.node sp)
  | _ -> invalid_arg "Network.crash_controller: no SDN cluster in this topology"

let restart_controller t =
  match (t.controller, t.speaker) with
  | Some ctrl, Some sp ->
    (* controller first, so the speaker's session resync finds a live
       update handler behind [on_update] *)
    Engine.Node.restart (Cluster_ctl.Controller.node ctrl);
    Engine.Node.restart (Cluster_ctl.Speaker.node sp)
  | _ -> invalid_arg "Network.restart_controller: no SDN cluster in this topology"

(* Dynamically add an inter-AS peering mid-experiment — the framework's
   "dynamically changing the topology" objective.  [rel] is expressed as
   in topology specs ([C2p] = [a] is the customer of [b]). *)
let add_peering ?(rel = Topology.Spec.Open) ?delay t a b =
  if not (Topology.Spec.mem t.spec a) then
    invalid_arg (Fmt.str "Network.add_peering: unknown %a" Net.Asn.pp a);
  if not (Topology.Spec.mem t.spec b) then
    invalid_arg (Fmt.str "Network.add_peering: unknown %a" Net.Asn.pp b);
  let delay = Option.value delay ~default:t.config.Config.default_link_delay in
  (* Netsim rejects duplicate links, so existing peerings are caught here. *)
  ignore (Net.Netsim.add_link ~delay t.net (Net.Asn.to_int a) (Net.Asn.to_int b));
  let probe = Topology.Spec.link ~rel a b in
  let to_policy_rel = function
    | Topology.Spec.Customer -> Bgp.Policy.Customer
    | Topology.Spec.Provider -> Bgp.Policy.Provider
    | Topology.Spec.Peer -> Bgp.Policy.Peer
    | Topology.Spec.Sibling -> Bgp.Policy.Sibling
    | Topology.Spec.Unrestricted -> Bgp.Policy.Unrestricted
  in
  Hashtbl.replace t.rel_overrides (a, b)
    (to_policy_rel (Topology.Spec.neighbor_role_of_link ~me:a probe));
  Hashtbl.replace t.rel_overrides (b, a)
    (to_policy_rel (Topology.Spec.neighbor_role_of_link ~me:b probe));
  let configure_endpoint me other =
    match Net.Asn.Map.find_opt me t.routers with
    | Some router ->
      Bgp.Router.add_peer router ~peer_asn:other ~peer_node:(Net.Asn.to_int other)
        ~policy:(Bgp.Policy.make (relationship_for t ~me ~neighbor:other));
      Bgp.Router.open_session router other
    | None -> (
      (* [me] is an SDN member *)
      if Net.Asn.Map.mem other t.switches then begin
        (* member-to-member: grow the controller's switch graph *)
        match t.controller with
        | Some ctrl ->
          Cluster_ctl.Controller.handle_openflow ctrl
            (Sdn.Openflow.Port_status
               { switch_asn = me; port = Net.Asn.to_int other; up = true })
        | None -> ()
      end
      else
        match t.speaker with
        | Some speaker ->
          Cluster_ctl.Speaker.add_session ?mrai_config:t.config.Config.speaker_mrai speaker
            ~member:me ~neighbor:other
            ~member_addr:(t.plan.Addressing.router_addr me);
          Cluster_ctl.Speaker.open_session speaker ~member:me ~neighbor:other
        | None -> ())
  in
  configure_endpoint a b;
  configure_endpoint b a

(* Run the simulation until no events remain (the network is idle: all
   protocol activity, including MRAI timers, has quiesced) or safety
   limits are hit. *)
let settle ?(max_events = 10_000_000) t =
  match Engine.Sim.run ~max_events t.sim with
  | Engine.Sim.Exhausted -> Engine.Sim.now t.sim
  | Engine.Sim.Reached_limit -> failwith "Network.settle: event limit hit (divergence?)"
  | Engine.Sim.Reached_time _ -> assert false

let run_until t time = ignore (Engine.Sim.run ~until:time t.sim)

let now t = Engine.Sim.now t.sim

let link_up t a b =
  match Net.Netsim.link_between t.net (Net.Asn.to_int a) (Net.Asn.to_int b) with
  | Some link -> Net.Link.is_up link
  | None -> false

let link_delay t a b =
  match Net.Netsim.link_between t.net (Net.Asn.to_int a) (Net.Asn.to_int b) with
  | Some link -> Some (Net.Link.delay link)
  | None -> None

(* Forwarding-state introspection for the connectivity walker. *)
type forwarding = Local | Next of int | No_route

let forwarding_at t asn (addr : Net.Ipv4.addr) =
  if is_local_addr t asn addr then Local
  else
    match Net.Asn.Map.find_opt asn t.switches with
    | Some sw -> (
      match Sdn.Flow_table.lookup (Sdn.Switch.table sw) addr with
      | Some { Sdn.Flow.action = Sdn.Flow.Output port; _ } -> Next port
      | Some { Sdn.Flow.action = Sdn.Flow.Drop; _ }
      | Some { Sdn.Flow.action = Sdn.Flow.To_controller; _ }
      | None -> No_route)
    | None -> (
      match Net.Asn.Map.find_opt asn t.fibs with
      | Some fib -> (
        match Net.Fib.lookup_value fib addr with
        | Some node -> Next node
        | None -> No_route)
      | None -> No_route)

(* Compile the composed forwarding state — FIBs, flow tables, local
   delivery sets, link liveness — into a frozen [Net.Dataplane] snapshot
   over dense node indices.  The snapshot mirrors [forwarding_at] plus
   the [link_up] check of the connectivity walker, but reads tables
   through the non-mutating lookups, so probing it perturbs neither flow
   packet counters nor miss metrics.  Legacy FIB values (next fabric
   node ids) are recompiled into dense indices so the hot path never
   maps ids per hop. *)
let dataplane_snapshot t =
  let as_list = Topology.Spec.asns t.spec in
  let asns = Array.of_list (List.map Net.Asn.to_int as_list) in
  let dp = Net.Dataplane.create ~asns in
  let idx asn = Net.Dataplane.index_of dp (Net.Asn.to_int asn) in
  let code_of_node node =
    match asn_of_node t node with
    | Some next_asn ->
      let j = idx next_asn in
      if j >= 0 then j else Net.Dataplane.drop
    | None -> Net.Dataplane.drop
  in
  List.iter
    (fun asn ->
      let i = idx asn in
      Net.Dataplane.add_local_addr dp i (t.plan.Addressing.router_addr asn);
      Net.Ipv4.Prefix_set.iter (fun p -> Net.Dataplane.add_local dp i p) !(local_set t asn))
    as_list;
  Net.Asn.Map.iter
    (fun asn fib ->
      let i = idx asn in
      let compiled = Net.Fib.create () in
      Net.Fib.iter fib (fun p next -> Net.Fib.insert compiled p (code_of_node next));
      Net.Dataplane.set_fib dp i compiled)
    t.fibs;
  Net.Asn.Map.iter
    (fun asn sw ->
      let i = idx asn in
      let rules = Array.of_list (Sdn.Flow_table.entries_sorted (Sdn.Switch.table sw)) in
      let nets =
        Array.map
          (fun (r : Sdn.Flow.rule) ->
            Net.Ipv4.addr_to_bits (Net.Ipv4.prefix_network r.Sdn.Flow.match_prefix))
          rules
      in
      let masks =
        Array.map
          (fun (r : Sdn.Flow.rule) ->
            Net.Ipv4.mask_bits (Net.Ipv4.prefix_len r.Sdn.Flow.match_prefix))
          rules
      in
      let acts =
        Array.map
          (fun (r : Sdn.Flow.rule) ->
            match r.Sdn.Flow.action with
            | Sdn.Flow.Output port -> code_of_node port
            | Sdn.Flow.Drop | Sdn.Flow.To_controller -> Net.Dataplane.drop)
          rules
      in
      Net.Dataplane.set_rules dp i ~nets ~masks ~acts)
    t.switches;
  List.iter
    (fun link ->
      if Net.Link.is_up link then begin
        let a, b = Net.Link.endpoints link in
        if is_as_node t a && is_as_node t b then begin
          let i = Net.Dataplane.index_of dp a and j = Net.Dataplane.index_of dp b in
          if i >= 0 && j >= 0 then begin
            Net.Dataplane.set_link dp i j true;
            Net.Dataplane.set_link dp j i true
          end
        end
      end)
    (Net.Netsim.links t.net);
  dp

(* --- Whole-network checkpointing ---------------------------------------- *)

(* A checkpoint is the construction recipe (seed + spec + config) plus
   everything that diverged since: link states, every runtime node's
   captured state (lifecycle, armed timers, component blob), the fabric's
   loss RNG position and in-flight messages, and the framework-owned data
   planes.  Restoring rebuilds the network from the recipe and overwrites
   the divergent state — the restored simulator's clock restarts at zero,
   with captured events re-scheduled at their original absolute instants.

   Known limits (see DESIGN.md "Node runtime"): telemetry counters are
   not carried over, flow-rule idle/hard timeouts and damping re-check
   events are not re-armed, and same-instant event ties across the
   checkpoint boundary follow restore re-scheduling order. *)

type checkpoint = {
  ck_seed : int;
  ck_spec : Topology.Spec.t;
  ck_config : Config.t;
  ck_time : Engine.Time.t;
  ck_links : (Net.Link.id * bool) list;
  ck_routers : (Net.Asn.t * Engine.Node.state) list;
  ck_switches : (Net.Asn.t * Engine.Node.state) list;
  ck_collector : Engine.Node.state;
  ck_controller : Engine.Node.state option;
  ck_speaker : Engine.Node.state option;
  ck_net_rng : Engine.Rng.t;
  ck_in_flight : Payload.t Net.Netsim.in_flight list;
  ck_fibs : (Net.Asn.t * (Net.Ipv4.prefix * int) list) list;
  ck_locals : (Net.Asn.t * Net.Ipv4.prefix list) list;
}

let checkpoint_time ck = ck.ck_time

let checkpoint t =
  if Hashtbl.length t.rel_overrides > 0 then
    invalid_arg "Network.checkpoint: runtime-added peerings are not checkpointable";
  {
    ck_seed = t.seed;
    ck_spec = t.spec;
    ck_config = t.config;
    ck_time = Engine.Sim.now t.sim;
    ck_links =
      List.map (fun l -> (Net.Link.id l, Net.Link.is_up l)) (Net.Netsim.links t.net);
    ck_routers =
      List.map
        (fun (asn, r) -> (asn, Engine.Node.state (Bgp.Router.node r)))
        (Net.Asn.Map.bindings t.routers);
    ck_switches =
      List.map
        (fun (asn, sw) -> (asn, Engine.Node.state (Sdn.Switch.node sw)))
        (Net.Asn.Map.bindings t.switches);
    ck_collector = Engine.Node.state (Bgp.Collector.node t.collector);
    ck_controller =
      Option.map (fun c -> Engine.Node.state (Cluster_ctl.Controller.node c)) t.controller;
    ck_speaker =
      Option.map (fun s -> Engine.Node.state (Cluster_ctl.Speaker.node s)) t.speaker;
    ck_net_rng = Engine.Rng.copy (Net.Netsim.rng t.net);
    ck_in_flight = Net.Netsim.in_flight t.net;
    ck_fibs =
      List.map (fun (asn, fib) -> (asn, Net.Fib.entries fib)) (Net.Asn.Map.bindings t.fibs);
    ck_locals =
      Hashtbl.fold
        (fun asn s acc -> (asn, Net.Ipv4.Prefix_set.elements !s) :: acc)
        t.local_prefixes []
      |> List.sort (fun (a, _) (b, _) -> Net.Asn.compare a b);
  }

let restore ck =
  let t = create ~config:ck.ck_config ~seed:ck.ck_seed ck.ck_spec in
  (* Link states first, silently: watchers must not see these as runtime
     transitions. *)
  List.iter
    (fun (id, up) ->
      match Net.Netsim.link_by_id t.net id with
      | Some link -> Net.Link.set_up_internal link up
      | None -> ())
    ck.ck_links;
  (* Component states; each restore re-arms that component's timers and
     re-schedules its pending work at the captured absolute instants. *)
  List.iter
    (fun (asn, st) ->
      match Net.Asn.Map.find_opt asn t.routers with
      | Some r -> Engine.Node.restore_state (Bgp.Router.node r) st
      | None -> ())
    ck.ck_routers;
  List.iter
    (fun (asn, st) ->
      match Net.Asn.Map.find_opt asn t.switches with
      | Some sw -> Engine.Node.restore_state (Sdn.Switch.node sw) st
      | None -> ())
    ck.ck_switches;
  Engine.Node.restore_state (Bgp.Collector.node t.collector) ck.ck_collector;
  (match (t.controller, ck.ck_controller) with
  | Some c, Some st -> Engine.Node.restore_state (Cluster_ctl.Controller.node c) st
  | _ -> ());
  (match (t.speaker, ck.ck_speaker) with
  | Some s, Some st -> Engine.Node.restore_state (Cluster_ctl.Speaker.node s) st
  | _ -> ());
  (* The wire: loss-RNG position, then the captured in-flight messages. *)
  Engine.Rng.assign ~from:ck.ck_net_rng (Net.Netsim.rng t.net);
  List.iter (Net.Netsim.inject_in_flight t.net) ck.ck_in_flight;
  (* Framework-owned data planes. *)
  List.iter
    (fun (asn, entries) ->
      match Net.Asn.Map.find_opt asn t.fibs with
      | None -> ()
      | Some fib ->
        Net.Fib.clear fib;
        List.iter (fun (p, v) -> Net.Fib.insert fib p v) entries)
    ck.ck_fibs;
  List.iter
    (fun (asn, prefixes) ->
      let s = local_set t asn in
      s := Net.Ipv4.Prefix_set.of_list prefixes)
    ck.ck_locals;
  (* No [start]: sessions are already open per the captured states. *)
  t
