lib/engine/sim.mli: Format Rng Time Trace
