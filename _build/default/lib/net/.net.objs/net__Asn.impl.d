lib/net/asn.ml: Fmt Hashtbl Int Map Set String
