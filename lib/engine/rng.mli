(** Deterministic splittable PRNG (SplitMix64).

    Split a dedicated stream per subsystem so random draws in one module
    never perturb another module's stream.

    Domain-safety: a generator is unsynchronized mutable state.  The
    ownership rule is the engine-wide one — one simulation's state
    belongs to one domain at a time.  Never share a [t] between domains
    ({!Pool} tasks must each [create] or [split] their own); concurrent
    draws would race and destroy determinism silently. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. *)

val split : t -> t
(** [split t] derives an independent stream, advancing [t] by one draw. *)

val copy : t -> t
(** [copy t] duplicates the stream at its current position without
    consuming a draw — the checkpointing primitive. *)

val assign : from:t -> t -> unit
(** [assign ~from t] overwrites [t]'s position with [from]'s (restore). *)

val next_int64 : t -> int64

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] draws uniformly from [\[lo, hi)]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)], without modulo bias. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] draws uniformly from [\[lo, hi\]] inclusive. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val exponential : t -> mean:float -> float

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a list -> 'a list

val sample : t -> int -> 'a list -> 'a list
(** [sample t k l] is [k] elements of [l] without replacement (all of [l]
    if [k >= length l]). *)

val jitter_span : t -> Time.span -> lo:float -> hi:float -> Time.span
(** [jitter_span t s ~lo ~hi] scales span [s] by a uniform factor in
    [\[lo, hi)] — e.g. Quagga's MRAI jitter uses [lo=0.75, hi=1.0]. *)
