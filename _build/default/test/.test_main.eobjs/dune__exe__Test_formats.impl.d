test/test_formats.ml: Alcotest Bgp Engine Framework List Net Option Topology
