(** Canned experiments reproducing the paper's evaluation, parameterized
    so tests can run scaled-down instances of the bench's exact code
    paths. *)

type event_kind = Withdrawal | Announcement | Failover

val event_to_string : event_kind -> string

type run_result = {
  seconds : float;  (** convergence time of the measured event *)
  changes : int;  (** control-plane best-route changes during it *)
  collector_updates : int;
  restore_mean : float;  (** mean per-AS data-plane restoration (failover) *)
  restore_max : float;
  metrics : Engine.Metrics.snapshot;  (** whole-stack telemetry at run end *)
}

type point = { x : float; results : run_result list; box : Engine.Stats.boxplot }

type series = { label : string; points : point list }

val clique_run :
  n:int -> sdn:int -> event:event_kind -> seed:int -> config:Config.t -> unit -> run_result
(** One convergence measurement on an [n]-clique with [sdn] centralized
    ASes (the origin stays legacy).
    @raise Invalid_argument for [Failover] (use {!failover_run}). *)

val failover_run : n:int -> sdn:int -> seed:int -> config:Config.t -> unit -> run_result
(** Primary-link failure with a longer backup chain; also measures per-AS
    data-plane restoration. *)

val fig2_withdrawal : ?n:int -> ?runs:int -> ?seed:int -> ?config:Config.t -> unit -> series
(** The paper's Fig. 2 sweep: withdrawal convergence vs SDN fraction. *)

val announcement_sweep : ?n:int -> ?runs:int -> ?seed:int -> ?config:Config.t -> unit -> series

val failover_sweep : ?n:int -> ?runs:int -> ?seed:int -> ?config:Config.t -> unit -> series

val ablation_recompute_delay :
  ?n:int -> ?runs:int -> ?seed:int -> ?config:Config.t -> ?delays_ms:int list -> unit -> series

val ablation_mrai :
  ?n:int -> ?runs:int -> ?seed:int -> ?config:Config.t -> ?mrai_s:int list -> sdn:int -> unit -> series

val ablation_wrate :
  ?n:int -> ?runs:int -> ?seed:int -> ?config:Config.t -> sdn:int -> unit -> series
(** RFC-exempt (x=0) vs Quagga-paced (x=1) withdrawals. *)

val scaling_sweep :
  ?sizes:int list ->
  ?fraction:float ->
  ?runs:int ->
  ?seed:int ->
  ?config:Config.t ->
  unit ->
  series
(** Withdrawal convergence vs clique size at a fixed SDN fraction. *)

val churn_run :
  n:int -> sdn:int -> flap_period_s:float -> seed:int -> config:Config.t -> unit -> run_result
(** Withdrawal convergence while an unrelated AS flaps its prefix: per-peer
    MRAI timers couple the measured prefix to the background churn. *)

(** Deployment-placement strategies for heterogeneous topologies. *)
type placement = Top_degree | Random_choice | Stubs_first

val placement_to_string : placement -> string

val choose_members :
  spec:Topology.Spec.t ->
  k:int ->
  placement:placement ->
  origin:Net.Asn.t ->
  seed:int ->
  Net.Asn.t list

val placement_run :
  spec:Topology.Spec.t ->
  k:int ->
  placement:placement ->
  origin:Net.Asn.t ->
  seed:int ->
  config:Config.t ->
  unit ->
  run_result

val placement_sweep :
  ?tier1:int ->
  ?tier2:int ->
  ?stubs:int ->
  ?ks:int list ->
  ?runs:int ->
  ?seed:int ->
  ?config:Config.t ->
  placement:placement ->
  unit ->
  series
(** Withdrawal convergence vs cluster size on a synthetic Internet-like
    topology, for one placement strategy. *)

val table_size_run :
  n:int -> sdn:int -> background:int -> seed:int -> config:Config.t -> unit -> run_result
(** Negative control: withdrawal convergence with [background] unrelated
    prefixes installed everywhere — should be table-size independent. *)

type flap_result = {
  collector_updates_total : int;
  recovery_seconds : float;
  suppressions_total : int;
  blackholed_after_storm : int;
}

val flap_run :
  ?n:int ->
  ?flaps:int ->
  ?gap_s:float ->
  damping:bool ->
  seed:int ->
  config:Config.t ->
  unit ->
  flap_result
(** A flapping origin with or without RFC 2439 damping at the receivers:
    damping trades monitoring-plane churn for recovery latency. *)

type subcluster_result = {
  reachable_before : bool;
  reachable_after_split : bool;
  reachable_after_recovery : bool;
  used_legacy_bridge : bool;
}

val subcluster_resilience : ?seed:int -> ?config:Config.t -> unit -> subcluster_result
(** Two SDN islands lose their intra-cluster bridge and must reach each
    other over the legacy world (the paper's design goal 3). *)

val pp_series : Format.formatter -> series -> unit

val series_to_csv : series -> string
(** One row per (point, run): label,x,run,seconds,changes,collector_updates. *)

val median_trend : series -> float * float * float
(** (intercept, slope, r²) of the least-squares line through the medians
    — the Fig. 2 "linear reduction" check. *)
