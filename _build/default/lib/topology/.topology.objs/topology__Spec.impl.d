lib/topology/spec.ml: Fmt Hashtbl List Net Option
