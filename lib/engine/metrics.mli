(** Label-aware metrics registry: counters, gauges and log-scale
    histograms, snapshot-able at any simulated instant.

    One registry per simulation (see {!Sim.metrics}).  Label sets are
    canonicalized (sorted by key) at registration and snapshots are
    sorted by (name, labels), so identical seeds yield byte-identical
    exports.  Registration is idempotent: the same (name, labels) pair
    always returns the same handle.

    Domain-safety: registries are deliberately unsynchronized — there is
    no process-global registry precisely so parallel sweeps ({!Pool})
    can give every run its own.  The ownership rule: one registry
    belongs to one sim, and one sim to one domain at a time.  Passing a
    registry (or handles minted from it) to another domain while the
    owning sim still runs is a data race.  {!snapshot}s, by contrast,
    are immutable and safe to move across domains — that is how sweep
    results carry telemetry back to the submitting domain. *)

type t

type labels = (string * string) list

val create : unit -> t

val on_collect : t -> (unit -> unit) -> unit
(** Register a callback run at the start of every {!snapshot} — the place
    to sync pull-style gauges (RIB sizes, table occupancy) from their
    owners. *)

(** Monotonically increasing integer count. *)
module Counter : sig
  type t

  val inc : t -> unit

  val add : t -> int -> unit
  (** @raise Invalid_argument on negative increments. *)

  val value : t -> int
end

(** Arbitrary instantaneous float value. *)
module Gauge : sig
  type t

  val set : t -> float -> unit

  val add : t -> float -> unit

  val value : t -> float
end

(** Fixed-bucket distribution; use {!log_buckets} for the intended
    log-scale bounds. *)
module Histogram : sig
  type t

  val observe : t -> float -> unit

  val count : t -> int

  val sum : t -> float
end

val log_buckets : ?start:float -> ?factor:float -> ?count:int -> unit -> float array
(** Geometric bucket upper bounds [start, start*factor, ...]; defaults
    give 16 base-2 buckets from 1 ms up (seconds-denominated). *)

val counter : t -> ?help:string -> ?labels:labels -> string -> Counter.t
(** Find-or-create.
    @raise Invalid_argument if the series exists with a different kind. *)

val gauge : t -> ?help:string -> ?labels:labels -> string -> Gauge.t

val histogram :
  t -> ?help:string -> ?labels:labels -> ?buckets:float array -> string -> Histogram.t

(** {1 Snapshots} *)

type hist_value = {
  buckets : (float * int) list;
      (** (upper bound, cumulative count) pairs; the [infinity] bound is
          always last and equals [count]. *)
  sum : float;
  count : int;
}

type value = Counter_v of int | Gauge_v of float | Histogram_v of hist_value

type sample = { name : string; help : string; labels : labels; value : value }

type snapshot = { at : Time.t; samples : sample list }

val snapshot : t -> at:Time.t -> snapshot
(** Run the collect callbacks, then freeze every series.  The result is
    immutable: later registry mutation never alters an earlier snapshot. *)

val merge :
  ?resolve:(name:string -> labels:labels -> [ `Sum | `Max ]) -> snapshot list -> snapshot
(** Combine per-shard snapshots of replicated registries into the series
    a single unsharded registry would hold: counters and histogram
    buckets/sums/counts add, gauges combine per [resolve] (default
    [`Sum], which is right for gauges only the owning shard ever sets —
    the replicas contribute their initial 0; use [`Max] for
    last-timestamp-style gauges every shard touches).  Series present in
    only some snapshots are kept as-is.  The result is sorted like
    {!snapshot} output and stamped with the latest [at].
    @raise Invalid_argument on an empty list, mismatched series kinds, or
    mismatched histogram buckets. *)

val find_sample : snapshot -> ?labels:labels -> string -> sample option

val value : snapshot -> ?labels:labels -> string -> float option
(** Scalar view: counter/gauge values as-is, histograms by their count. *)

(** {1 Exporters} *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition format ([# HELP]/[# TYPE] per family,
    histogram [_bucket]/[_sum]/[_count] expansion). *)

val to_jsonl : snapshot -> string
(** One JSON object per sample, one per line, each stamped with the
    snapshot's simulated time ([t_us]) — append snapshots taken at
    increasing instants to build a timeline. *)

val csv_header : string

val to_csv : ?header:bool -> snapshot -> string
(** [t_us,metric,labels,type,value] rows; histograms are flattened to
    [_bucket]/[_sum]/[_count] rows. *)

(** {1 Parsing} *)

type parsed_sample = { p_name : string; p_labels : labels; p_value : float }

val parse_prometheus : string -> (parsed_sample list, string) result
(** Parse Prometheus exposition text (as emitted by {!to_prometheus}):
    comments are skipped, samples are returned in file order. *)
