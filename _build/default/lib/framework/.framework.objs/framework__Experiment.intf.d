lib/framework/experiment.mli: Config Convergence Engine Monitor Net Network Topology
