lib/framework/addressing.mli: Net Topology
