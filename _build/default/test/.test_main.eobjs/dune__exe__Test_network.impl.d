test/test_network.ml: Alcotest Bgp Cluster_ctl Engine Fmt Framework List Net Option Sdn Topology
