(* Array-backed binary min-heap, polymorphic in the element type with an
   explicit comparison supplied at creation.  Used by the event queue, the
   timer wheel and Dijkstra. *)

type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  cmp : 'a -> 'a -> int;
  dummy : 'a;
}

let create ?(capacity = 64) ~dummy cmp =
  let capacity = Stdlib.max capacity 1 in
  { data = Array.make capacity dummy; size = 0; cmp; dummy }

let length h = h.size

let is_empty h = h.size = 0

let grow h =
  let data = Array.make (2 * Array.length h.data) h.dummy in
  Array.blit h.data 0 data 0 h.size;
  h.data <- data

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < h.size && h.cmp h.data.(left) h.data.(!smallest) < 0 then
    smallest := left;
  if right < h.size && h.cmp h.data.(right) h.data.(!smallest) < 0 then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  if h.size = Array.length h.data then grow h;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- h.dummy;
    if h.size > 0 then sift_down h 0;
    Some top
  end

let clear h =
  Array.fill h.data 0 h.size h.dummy;
  h.size <- 0

let to_list h = Array.to_list (Array.sub h.data 0 h.size)
