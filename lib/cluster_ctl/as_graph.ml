(* The per-prefix AS topology graph and its route selection.

   This is the paper's key algorithmic insight: the controller cannot
   reuse BGP's AS-path loop avoidance because it makes one centralized
   decision for many ASes.  Instead, for every destination prefix it
   transforms the *switch graph* (physical intra-cluster topology) into an
   *AS topology graph* and runs Dijkstra on it:

   - member<->member intra-cluster links become weight-1 edges;
   - an external route learned at member [m] from neighbor [n] whose
     AS path contains no cluster member becomes an exit edge
     m -> destination with weight |path|;
   - an external route whose AS path re-enters the cluster is dangerous:
     if the first cluster member [c] on the path belongs to m's *own*
     sub-cluster the route is discarded (using it could form a forwarding
     loop the AS-path cannot reveal, since the controller routes all of
     the sub-cluster); if [c] belongs to a *different* sub-cluster it
     becomes a legacy-bridge edge m -> c weighted by the legacy segment
     length — this is what keeps disjoint sub-clusters mutually reachable
     over the legacy world (design goal 3 of the paper);
   - a member originating the prefix gets a weight-0 edge to the
     destination.

   Routes are then read off the Dijkstra successor tree, which is acyclic
   by construction — the loop-freedom the transformation exists to
   provide. *)

module Pm = Net.Ipv4.Prefix_map

type exit_route = {
  member : Net.Asn.t;
  neighbor : Net.Asn.t;
  attrs : Bgp.Attrs.t;
  rel : Bgp.Policy.relationship; (* our relationship toward [neighbor] *)
}

type hop =
  | Deliver_local
  | Exit of { neighbor : Net.Asn.t }
  | Intra of { next_member : Net.Asn.t }
  | Bridge of { via_neighbor : Net.Asn.t; to_member : Net.Asn.t }

type decision = {
  member : Net.Asn.t;
  hop : hop;
  as_path : Net.Asn.t list; (* from this member to the origin, member excluded *)
  distance : float;
  provenance : Bgp.Policy.route_provenance;
}

(* Reserved Dijkstra node id for the virtual destination (ASNs are > 0). *)
let dest_id = 0

let subcluster_table members switch_graph =
  let components = Net.Graph.components switch_graph in
  let table = Hashtbl.create 16 in
  List.iteri (fun i comp -> List.iter (fun v -> Hashtbl.replace table v i) comp) components;
  (* Members isolated from the switch graph still form their own
     sub-cluster. *)
  let next = ref (List.length components) in
  Net.Asn.Set.iter
    (fun m ->
      let id = Net.Asn.to_int m in
      if not (Hashtbl.mem table id) then begin
        Hashtbl.replace table id !next;
        incr next
      end)
    members;
  table

(* Split an AS path at its first cluster member: [`External] when it never
   enters the cluster, [`Reenters (segment, c)] with the legacy segment
   up to and including [c] otherwise. *)
let classify_path members path =
  let rec scan acc = function
    | [] -> `External
    | asn :: rest ->
      if Net.Asn.Set.mem asn members then `Reenters (List.rev (asn :: acc), asn)
      else scan (asn :: acc) rest
  in
  scan [] path

type edge_kind =
  | K_intra
  | K_exit of exit_route
  | K_bridge of { via_neighbor : Net.Asn.t; to_member : Net.Asn.t; segment : Net.Asn.t list;
                  rel : Bgp.Policy.relationship }
  | K_local

(* Reusable working state for [compute].  A controller recomputing many
   prefixes against the same switch graph reuses the edge/memo tables, the
   reversed graph, the Dijkstra scratch, and — keyed on the switch graph's
   version counter — the sub-cluster table, so a batch stops reallocating
   (and stops rerunning [Net.Graph.components]) per prefix. *)
type arena = {
  a_edges : (int * int, float * edge_kind) Hashtbl.t;
  a_reversed : Net.Graph.t;
  a_memo : (int, Net.Asn.t list * Bgp.Policy.route_provenance) Hashtbl.t;
  a_scratch : Net.Graph.scratch;
  mutable a_subclusters : (Net.Graph.t * int * Net.Asn.Set.t * (int, int) Hashtbl.t) option;
      (* switch graph (physical identity), its version and the member set
         when the table was built, and the node -> sub-cluster id table *)
}

let create_arena () =
  {
    a_edges = Hashtbl.create 64;
    a_reversed = Net.Graph.create ~directed:true ();
    a_memo = Hashtbl.create 16;
    a_scratch = Net.Graph.scratch ();
    a_subclusters = None;
  }

let subcluster_lookup ?arena members switch_graph =
  let table =
    match arena with
    | None -> subcluster_table members switch_graph
    | Some a -> (
      let v = Net.Graph.version switch_graph in
      match a.a_subclusters with
      | Some (g, v', ms, table) when g == switch_graph && v' = v && Net.Asn.Set.equal ms members
        -> table
      | Some _ | None ->
        let table = subcluster_table members switch_graph in
        a.a_subclusters <- Some (switch_graph, v, members, table);
        table)
  in
  fun asn -> Hashtbl.find_opt table (Net.Asn.to_int asn)

let compute ?arena ~members ~switch_graph ~(routes : exit_route list) ~originators () =
  let subcluster_of = subcluster_lookup ?arena members switch_graph in
  (* Best candidate per directed edge, with the realizing kind. *)
  let edges : (int * int, float * edge_kind) Hashtbl.t =
    match arena with
    | Some a ->
      Hashtbl.clear a.a_edges;
      a.a_edges
    | None -> Hashtbl.create 64
  in
  let consider u v w kind =
    match Hashtbl.find_opt edges (u, v) with
    | Some (w', _) when w' <= w -> ()
    | Some _ | None -> Hashtbl.replace edges (u, v) (w, kind)
  in
  (* Intra-cluster switch links. *)
  List.iter
    (fun (u, v, _) ->
      consider u v 1.0 K_intra;
      consider v u 1.0 K_intra)
    (Net.Graph.edges switch_graph);
  (* Originators reach the destination at no cost. *)
  Net.Asn.Set.iter
    (fun o -> consider (Net.Asn.to_int o) dest_id 0.0 K_local)
    originators;
  (* External routes: exits or legacy bridges. *)
  List.iter
    (fun (r : exit_route) ->
      if Net.Asn.Set.mem r.member members then begin
        let m = Net.Asn.to_int r.member in
        let path = Bgp.Attrs.as_path r.attrs in
        match classify_path members path with
        | `External -> consider m dest_id (float_of_int (List.length path)) (K_exit r)
        | `Reenters (segment, c) ->
          let same_subcluster =
            match (subcluster_of r.member, subcluster_of c) with
            | Some a, Some b -> a = b
            | _, _ -> true (* unknown membership: be conservative, drop *)
          in
          if (not same_subcluster) && not (Net.Asn.equal c r.member) then
            consider m (Net.Asn.to_int c)
              (float_of_int (List.length segment))
              (K_bridge
                 { via_neighbor = r.neighbor; to_member = c; segment; rel = r.rel })
      end)
    routes;
  (* Dijkstra from the destination over reversed edges: pred in the
     reversed run is each node's successor toward the destination. *)
  let reversed =
    match arena with
    | Some a ->
      Net.Graph.clear a.a_reversed;
      a.a_reversed
    | None -> Net.Graph.create ~directed:true ()
  in
  Net.Graph.add_node reversed dest_id;
  Net.Asn.Set.iter (fun m -> Net.Graph.add_node reversed (Net.Asn.to_int m)) members;
  Hashtbl.iter (fun (u, v) (w, _) -> Net.Graph.add_edge ~w reversed v u) edges;
  let dist, succ =
    match arena with
    | Some a -> Net.Graph.dijkstra_reuse a.a_scratch reversed dest_id
    | None -> Net.Graph.dijkstra reversed dest_id
  in
  (* Read decisions off the successor tree, memoizing AS paths. *)
  let memo : (int, Net.Asn.t list * Bgp.Policy.route_provenance) Hashtbl.t =
    match arena with
    | Some a ->
      Hashtbl.clear a.a_memo;
      a.a_memo
    | None -> Hashtbl.create 16
  in
  let rec path_of m =
    match Hashtbl.find_opt memo m with
    | Some r -> r
    | None ->
      let s = Hashtbl.find succ m in
      let _, kind = Hashtbl.find edges (m, s) in
      let result =
        match kind with
        | K_local -> ([], Bgp.Policy.Originated)
        | K_exit r -> (Bgp.Attrs.as_path r.attrs, Bgp.Policy.From r.rel)
        | K_intra ->
          let rest, prov = path_of s in
          (Net.Asn.of_int s :: rest, prov)
        | K_bridge { segment; rel; to_member; _ } ->
          let rest, _ = path_of (Net.Asn.to_int to_member) in
          (segment @ rest, Bgp.Policy.From rel)
      in
      Hashtbl.replace memo m result;
      result
  in
  Net.Asn.Set.fold
    (fun member acc ->
      let m = Net.Asn.to_int member in
      match Hashtbl.find_opt dist m with
      | None -> acc (* unreachable *)
      | Some distance ->
        let s = Hashtbl.find succ m in
        let _, kind = Hashtbl.find edges (m, s) in
        let hop =
          match kind with
          | K_local -> Deliver_local
          | K_exit r -> Exit { neighbor = r.neighbor }
          | K_intra -> Intra { next_member = Net.Asn.of_int s }
          | K_bridge { via_neighbor; to_member; _ } -> Bridge { via_neighbor; to_member }
        in
        let as_path, provenance = path_of m in
        acc |> Net.Asn.Map.add member { member; hop; as_path; distance; provenance })
    members Net.Asn.Map.empty

(* The strategy the paper warns against ("we can not naively use the same
   loop avoidance mechanism as BGP"): select each member's best external
   route independently, relying only on BGP's own-ASN loop check (already
   applied at import).  No switch-graph transformation, no sub-cluster
   analysis.  Kept as the comparison baseline that demonstrates why the
   transformation exists — mutually-referential stale routes through
   other cluster members produce forwarding loops the AS paths cannot
   reveal (see test_as_graph). *)
let naive_compute ~members ~(routes : exit_route list) ~originators () =
  Net.Asn.Set.fold
    (fun member acc ->
      if Net.Asn.Set.mem member originators then
        acc
        |> Net.Asn.Map.add member
             { member; hop = Deliver_local; as_path = []; distance = 0.0;
               provenance = Bgp.Policy.Originated }
      else begin
        let candidates =
          List.filter (fun (r : exit_route) -> Net.Asn.equal r.member member) routes
        in
        let best =
          List.fold_left
            (fun acc (r : exit_route) ->
              let len = List.length (Bgp.Attrs.as_path r.attrs) in
              match acc with
              | Some (best_len, (best_r : exit_route))
                when best_len < len
                     || (best_len = len && Net.Asn.compare best_r.neighbor r.neighbor <= 0)
                -> acc
              | Some _ | None -> Some (len, r))
            None candidates
        in
        match best with
        | None -> acc
        | Some (len, r) ->
          acc
          |> Net.Asn.Map.add member
               {
                 member;
                 hop = Exit { neighbor = r.neighbor };
                 as_path = Bgp.Attrs.as_path r.attrs;
                 distance = float_of_int len;
                 provenance = Bgp.Policy.From r.rel;
               }
      end)
    members Net.Asn.Map.empty

let pp_hop ppf = function
  | Deliver_local -> Fmt.string ppf "local"
  | Exit { neighbor } -> Fmt.pf ppf "exit via %a" Net.Asn.pp neighbor
  | Intra { next_member } -> Fmt.pf ppf "intra to %a" Net.Asn.pp next_member
  | Bridge { via_neighbor; to_member } ->
    Fmt.pf ppf "bridge via %a to %a" Net.Asn.pp via_neighbor Net.Asn.pp to_member

let pp_decision ppf d =
  Fmt.pf ppf "%a: %a dist=%.0f path=[%a]" Net.Asn.pp d.member pp_hop d.hop d.distance
    Bgp.Attrs.pp_path d.as_path
