(* Compile AS-graph decisions into per-switch flow rules and diff them
   against what is installed, emitting only the necessary FLOW_MODs. *)

module Pm = Net.Ipv4.Prefix_map

(* Desired forwarding action at a member's switch for one prefix. *)
let action_of_decision ~node_of_asn (d : As_graph.decision) =
  match d.As_graph.hop with
  | As_graph.Deliver_local -> Some (Sdn.Flow.Output (Net.Asn.to_int d.As_graph.member))
    (* port = own node id is the Switch.handle_control PACKET_OUT-to-self
       convention for local delivery; for installed rules we instead mark
       local prefixes on the switch, so this case is normally filtered out
       by the caller. *)
  | As_graph.Exit { neighbor } -> Option.map (fun n -> Sdn.Flow.Output n) (node_of_asn neighbor)
  | As_graph.Intra { next_member } ->
    Option.map (fun n -> Sdn.Flow.Output n) (node_of_asn next_member)
  | As_graph.Bridge { via_neighbor; _ } ->
    Option.map (fun n -> Sdn.Flow.Output n) (node_of_asn via_neighbor)

type change = {
  member : Net.Asn.t;
  mods : Sdn.Openflow.t list; (* FLOW_MODs to send to this member's switch *)
}

(* [installed]: what each member's switch currently has for this prefix.
   [desired]: the new decisions.  Returns the per-member FLOW_MODs and the
   new installed state. *)
let diff ?idle_timeout ?hard_timeout ~prefix ~node_of_asn ~(members : Net.Asn.t list)
    ~(installed : Sdn.Flow.action Net.Asn.Map.t) ~(desired : As_graph.decision Net.Asn.Map.t)
    () =
  let priority = Net.Ipv4.prefix_len prefix in
  let changes = ref [] in
  let new_installed = ref Net.Asn.Map.empty in
  List.iter
    (fun member ->
      let want =
        match Net.Asn.Map.find_opt member desired with
        | Some d when d.As_graph.hop <> As_graph.Deliver_local ->
          action_of_decision ~node_of_asn d
        | Some _ (* Deliver_local: the switch's is_local check handles it *) | None -> None
      in
      let have = Net.Asn.Map.find_opt member installed in
      let mods =
        match (want, have) with
        | Some w, Some h when Sdn.Flow.action_equal w h -> []
        | Some w, (Some _ | None) ->
          [ Sdn.Openflow.Flow_mod
              {
                command = Sdn.Openflow.Add;
                rule =
                  Sdn.Flow.make ?idle_timeout ?hard_timeout ~priority ~match_prefix:prefix w;
              } ]
        | None, Some h ->
          [ Sdn.Openflow.Flow_mod
              { command = Sdn.Openflow.Delete;
                rule = Sdn.Flow.make ~priority ~match_prefix:prefix h } ]
        | None, None -> []
      in
      (match want with
      | Some w -> new_installed := Net.Asn.Map.add member w !new_installed
      | None -> ());
      if mods <> [] then changes := { member; mods } :: !changes)
    members;
  (List.rev !changes, !new_installed)
