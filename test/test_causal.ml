(* Engine.Causal: span store modes, parent-chain telescoping, critical-path
   attribution against measured convergence, deterministic exports (including
   under parallel sweeps), and the chaos flight recorder. *)

open Engine

let asn = Topology.Artificial.asn

let full_config =
  { Framework.Config.fast_test with Framework.Config.causal = Causal.Full }

(* --- Store modes --------------------------------------------------------- *)

let test_disabled_is_noop () =
  let sim = Sim.create ~seed:1 () in
  ignore (Sim.schedule_at sim (Time.ms 1) ignore);
  ignore (Sim.run sim);
  let c = Sim.causal sim in
  Alcotest.(check bool) "disabled" false (Causal.enabled c);
  Alcotest.(check int) "no spans opened" 0 (Causal.total c);
  Alcotest.(check int) "on_schedule yields -1" (-1)
    (Causal.on_schedule c ~category:"x" ~queued_at:Time.zero);
  (* annotate / with_span degrade to plain calls *)
  Sim.annotate sim ~category:"x" ();
  Alcotest.(check int) "annotate is a no-op" 0 (Causal.total c);
  Alcotest.(check int) "with_span runs the thunk" 7
    (Sim.with_span sim ~category:"x" (fun () -> 7))

let test_ring_exact () =
  let c = Causal.create ~mode:(Causal.Ring 4) ~seed:0 () in
  for _ = 1 to 10 do
    let id = Causal.on_schedule c ~category:"e" ~queued_at:Time.zero in
    Causal.on_execute c id ~fired_at:(Time.ms 1)
  done;
  Alcotest.(check int) "total eviction-proof" 10 (Causal.total c);
  Alcotest.(check int) "exactly capacity retained" 4 (Causal.stored c);
  Alcotest.(check bool) "evicted id gone" true (Causal.find c 0 = None);
  Alcotest.(check bool) "pre-window id gone" true (Causal.find c 5 = None);
  Alcotest.(check (list int)) "newest window, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun (s : Causal.span) -> s.Causal.id) (Causal.spans c))

let test_trace_id_deterministic () =
  let id seed = Causal.trace_id (Causal.create ~mode:Causal.Full ~seed ()) in
  Alcotest.(check int) "same seed same id" (id 42) (id 42);
  Alcotest.(check bool) "different seeds differ" true (id 42 <> id 43)

(* The trace id comes from its own stream: minting it must not perturb the
   sim root RNG's draw order. *)
let test_trace_id_leaves_root_rng_alone () =
  let draws causal =
    let sim = Sim.create ~seed:5 ~causal () in
    List.init 8 (fun _ -> Rng.int (Sim.rng sim) 1000)
  in
  Alcotest.(check (list int)) "root RNG stream unchanged by tracing"
    (draws Causal.Disabled) (draws Causal.Full)

(* --- Parent chains ------------------------------------------------------- *)

let test_parent_chain_telescopes () =
  let sim = Sim.create ~seed:3 ~causal:Causal.Full () in
  let c = Sim.causal sim in
  ignore
    (Sim.schedule_at ~category:"a" sim (Time.ms 10) (fun () ->
         ignore
           (Sim.schedule_after ~category:"b" sim (Time.ms 20) (fun () ->
                ignore (Sim.schedule_after ~category:"c" sim (Time.ms 5) ignore)))));
  ignore (Sim.run sim);
  let leaf =
    match Causal.find_last c (fun s -> s.Causal.category = "c") with
    | Some s -> s
    | None -> Alcotest.fail "leaf span missing"
  in
  let path = Causal.path_to_root c leaf in
  Alcotest.(check (list string)) "path categories root-first" [ "a"; "b"; "c" ]
    (List.map (fun (s : Causal.span) -> s.Causal.category) path);
  (* Each child is queued at the instant its parent fired. *)
  List.iteri
    (fun i (s : Causal.span) ->
      if i > 0 then
        let parent = List.nth path (i - 1) in
        Alcotest.(check int) "child queued at parent fire time"
          (Time.to_us parent.Causal.fired_at)
          (Time.to_us s.Causal.queued_at))
    path;
  let a = Causal.attribute c leaf in
  Alcotest.(check int) "depth" 3 a.Causal.depth;
  Alcotest.(check (float 1e-9)) "total telescopes to end-to-end" 0.035
    a.Causal.total_seconds;
  let sum = List.fold_left (fun acc r -> acc +. r.Causal.seconds) 0.0 a.Causal.rows in
  Alcotest.(check (float 1e-9)) "rows sum exactly to total" a.Causal.total_seconds sum

let test_annotate_and_with_span () =
  let sim = Sim.create ~seed:4 ~causal:Causal.Full () in
  let c = Sim.causal sim in
  Sim.with_span sim ~category:"scenario.action" ~label:"root" (fun () ->
      ignore
        (Sim.schedule_at ~category:"net.deliver" sim (Time.ms 2) (fun () ->
             Sim.annotate sim ~category:"fib.write" ~node:"AS65001" ~label:"p" ())));
  ignore (Sim.run sim);
  let leaf =
    match Causal.convergence_leaf c with
    | Some s -> s
    | None -> Alcotest.fail "fib.write marker missing"
  in
  Alcotest.(check string) "marker node" "AS65001" leaf.Causal.node;
  Alcotest.(check bool) "marker is zero-length" true
    (Time.equal leaf.Causal.queued_at leaf.Causal.fired_at);
  let path = Causal.path_to_root c leaf in
  Alcotest.(check (list string)) "rooted under the action"
    [ "scenario.action"; "net.deliver"; "fib.write" ]
    (List.map (fun (s : Causal.span) -> s.Causal.category) path)

let test_convergence_leaf_label_filter () =
  let sim = Sim.create ~seed:4 ~causal:Causal.Full () in
  let c = Sim.causal sim in
  Sim.annotate sim ~category:"fib.write" ~node:"a" ~label:"10.0.0.0/24" ();
  Sim.annotate sim ~category:"flow.install" ~node:"b" ~label:"10.0.1.0/24" ();
  (match Causal.convergence_leaf c with
  | Some s -> Alcotest.(check string) "newest write wins" "b" s.Causal.node
  | None -> Alcotest.fail "no leaf");
  match Causal.convergence_leaf ~label:"10.0.0.0/24" c with
  | Some s -> Alcotest.(check string) "label filter" "a" s.Causal.node
  | None -> Alcotest.fail "no labelled leaf"

(* --- End-to-end: attribution vs. measured convergence -------------------- *)

(* The acceptance bar: on a seeded clique withdrawal the critical-path
   attribution table sums to the measured convergence time, because every
   child span is queued at its parent's fire instant and the waits
   telescope from the action root to the final FIB write. *)
let test_clique_attribution_matches_convergence () =
  let spec = Topology.Artificial.clique 6 in
  let exp = Framework.Experiment.create ~config:full_config ~seed:2014 spec in
  let m = Core.measure_withdrawal exp (asn 0) in
  let seconds = Framework.Experiment.convergence_seconds m in
  let c = Sim.causal (Framework.Experiment.sim exp) in
  let label =
    Net.Ipv4.prefix_to_string (Framework.Experiment.default_prefix exp (asn 0))
  in
  let leaf =
    match Causal.convergence_leaf ~label c with
    | Some s -> s
    | None -> Alcotest.fail "no FIB write for the withdrawn prefix"
  in
  let a = Causal.attribute c leaf in
  Alcotest.(check bool) "non-trivial path" true (a.Causal.depth > 3);
  Alcotest.(check (float 1e-6)) "attribution sums to convergence time" seconds
    a.Causal.total_seconds;
  let sum = List.fold_left (fun acc r -> acc +. r.Causal.seconds) 0.0 a.Causal.rows in
  Alcotest.(check (float 1e-9)) "rows sum to total" a.Causal.total_seconds sum;
  (* A 6-clique withdrawal under MRAI pacing is dominated by MRAI holds. *)
  match a.Causal.rows with
  | top :: _ ->
    Alcotest.(check string) "mrai dominates" "mrai_hold"
      (Causal.bucket_to_string top.Causal.bucket)
  | [] -> Alcotest.fail "empty attribution"

(* --- Deterministic exports (sequential and under Pool) ------------------- *)

let chrome_of_run seed =
  let spec = Topology.Spec.with_sdn (Topology.Artificial.clique 5) [ asn 3; asn 4 ] in
  let exp = Framework.Experiment.create ~config:full_config ~seed spec in
  ignore (Core.measure_withdrawal exp (asn 0));
  Causal.to_chrome (Sim.causal (Framework.Experiment.sim exp))

let test_same_seed_byte_identical () =
  let a = chrome_of_run 7 and b = chrome_of_run 7 in
  Alcotest.(check string) "sequential repeat" a b;
  let parallel =
    Pool.with_pool ~jobs:2 (fun pool -> Pool.map pool chrome_of_run [ 7; 7; 9 ])
  in
  (match parallel with
  | [ x; y; z ] ->
    Alcotest.(check string) "parallel run matches sequential" a x;
    Alcotest.(check string) "parallel same-seed pair agrees" x y;
    Alcotest.(check bool) "different seed differs" true (a <> z)
  | _ -> Alcotest.fail "pool returned wrong arity")

let test_exports_are_valid_json () =
  let sim = Sim.create ~seed:11 ~causal:Causal.Full () in
  Sim.with_span sim ~category:"action" ~label:"quote\"and\\slash" (fun () ->
      ignore (Sim.schedule_at ~category:"net.deliver" sim (Time.ms 1) ignore));
  ignore (Sim.run sim);
  let c = Sim.causal sim in
  Alcotest.(check bool) "chrome export is valid JSON" true
    (Framework.Telemetry.json_valid (Causal.to_chrome c));
  String.split_on_char '\n' (Causal.to_jsonl c)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.iter (fun l ->
         Alcotest.(check bool) "jsonl line is valid JSON" true
           (Framework.Telemetry.json_valid l))

(* Cancelled events leave their spans open; exporters must skip them. *)
let test_cancelled_events_not_exported () =
  let sim = Sim.create ~seed:12 ~causal:Causal.Full () in
  let h = Sim.schedule_at ~category:"doomed" sim (Time.ms 5) ignore in
  ignore (Sim.schedule_at ~category:"kept" sim (Time.ms 1) ignore);
  Sim.cancel h;
  ignore (Sim.run sim);
  let c = Sim.causal sim in
  let chrome = Causal.to_chrome c in
  let contains needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "executed span exported" true (contains "kept" chrome);
  Alcotest.(check bool) "cancelled span skipped" false (contains "doomed" chrome)

(* --- Flight recorder ----------------------------------------------------- *)

(* The framework default keeps a bounded ring alive on every network, so a
   flight dump is always available without opting into Full tracing. *)
let test_ring_always_on_in_framework () =
  let net =
    Framework.Network.create ~seed:3 (Topology.Artificial.clique 4)
  in
  Framework.Network.start net;
  let plan = Framework.Network.plan net in
  Framework.Network.originate net (asn 0) (plan.Framework.Addressing.origin_prefix (asn 0));
  ignore (Framework.Network.settle net);
  let c = Sim.causal (Framework.Network.sim net) in
  (match Causal.mode c with
  | Causal.Ring _ -> ()
  | _ -> Alcotest.fail "framework default must be a flight-recorder ring");
  Alcotest.(check bool) "flight dump non-empty" true (Causal.flight_lines c <> []);
  Alcotest.(check bool) "ring stayed bounded" true
    (Causal.stored c <= 4096 && Causal.total c > 0)

(* A chaos violation renders its flight dump into the report. *)
let test_chaos_violation_renders_flight () =
  let schedule = { Framework.Chaos.index = 0; events = [] } in
  let fabricated =
    {
      Framework.Chaos.schedule;
      quiesced = true;
      violations =
        [ { Framework.Chaos.invariant = "no-forwarding-loop"; detail = "synthetic" } ];
      digest = "d41d8cd98f00b204e9800998ecf8427e";
      flight = [ "000000001000 #1<-0 chaos.fault (wait 10us)" ];
    }
  in
  let rendered = Framework.Chaos.render_result fabricated in
  let contains needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report names the flight recorder" true
    (contains "flight recorder" rendered);
  Alcotest.(check bool) "report carries the spans" true
    (contains "chaos.fault" rendered);
  (* Clean runs carry no dump. *)
  let clean = { fabricated with Framework.Chaos.violations = []; flight = [] } in
  Alcotest.(check bool) "clean run has no dump" false
    (contains "flight recorder" (Framework.Chaos.render_result clean))

(* End to end through [Chaos.execute]: a link flapping every second for
   far longer than the 180 s quiet budget forces a real "quiescence"
   violation, which must auto-dump the flight recorder from the run's
   own ring store. *)
let test_chaos_execute_dumps_flight () =
  let a = Topology.Artificial.asn 0 and b = Topology.Artificial.asn 1 in
  let schedule =
    {
      Framework.Chaos.index = 0;
      events =
        [
          {
            Framework.Chaos.at = Engine.Time.sec 12;
            heal_at = Engine.Time.sec 13;
            fault = Framework.Chaos.Link_flap (a, b, 220);
          };
        ];
    }
  in
  let r = Framework.Chaos.execute ~seed:2014 schedule in
  Alcotest.(check bool) "run does not quiesce" false r.Framework.Chaos.quiesced;
  Alcotest.(check bool) "violations reported" true (r.Framework.Chaos.violations <> []);
  Alcotest.(check bool) "flight recorder auto-dumped" true
    (r.Framework.Chaos.flight <> []);
  (* The dump is the causal history into the bad state: the injected
     fault's spans must be visible in it. *)
  let contains needle hay =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "dump shows the chaos fault spans" true
    (List.exists (contains "chaos.") r.Framework.Chaos.flight)

let suite =
  [
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "ring keeps exactly n newest" `Quick test_ring_exact;
    Alcotest.test_case "trace id deterministic" `Quick test_trace_id_deterministic;
    Alcotest.test_case "trace id leaves root RNG alone" `Quick
      test_trace_id_leaves_root_rng_alone;
    Alcotest.test_case "parent chain telescopes" `Quick test_parent_chain_telescopes;
    Alcotest.test_case "annotate and with_span" `Quick test_annotate_and_with_span;
    Alcotest.test_case "convergence leaf label filter" `Quick
      test_convergence_leaf_label_filter;
    Alcotest.test_case "clique attribution = convergence" `Quick
      test_clique_attribution_matches_convergence;
    Alcotest.test_case "same seed byte-identical (incl. pool)" `Quick
      test_same_seed_byte_identical;
    Alcotest.test_case "exports are valid JSON" `Quick test_exports_are_valid_json;
    Alcotest.test_case "cancelled events not exported" `Quick
      test_cancelled_events_not_exported;
    Alcotest.test_case "framework ring always on" `Quick test_ring_always_on_in_framework;
    Alcotest.test_case "chaos violation renders flight" `Quick
      test_chaos_violation_renders_flight;
    Alcotest.test_case "chaos execute dumps flight (end to end)" `Slow
      test_chaos_execute_dumps_flight;
  ]
