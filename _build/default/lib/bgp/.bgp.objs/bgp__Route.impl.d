lib/bgp/route.ml: Attrs Engine Fmt Net
