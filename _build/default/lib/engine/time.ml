(* Virtual simulation time.

   Time is an absolute instant measured in integer microseconds since the
   start of the simulation; [span] is a difference of instants.  Integer
   microseconds keep event ordering exact and runs bit-reproducible, which
   float seconds would not. *)

type t = int64

type span = int64

let zero = 0L

let compare = Int64.compare

let equal = Int64.equal

let min a b = if Stdlib.( <= ) (Int64.compare a b) 0 then a else b

let max a b = if Stdlib.( >= ) (Int64.compare a b) 0 then a else b

let ( <= ) a b = Stdlib.( <= ) (Int64.compare a b) 0

let ( < ) a b = Stdlib.( < ) (Int64.compare a b) 0

let ( >= ) a b = Stdlib.( >= ) (Int64.compare a b) 0

let ( > ) a b = Stdlib.( > ) (Int64.compare a b) 0

let add = Int64.add

let diff = Int64.sub

(* Span constructors. *)

let us n = Int64.of_int n

let ms n = Int64.mul (Int64.of_int n) 1_000L

let sec n = Int64.mul (Int64.of_int n) 1_000_000L

let of_sec_f f = Int64.of_float (f *. 1e6)

let span_add = Int64.add

let span_scale span f = Int64.of_float (Int64.to_float span *. f)

let span_zero = 0L

(* Conversions. *)

let to_us t = Int64.to_int t

let to_ms_f t = Int64.to_float t /. 1e3

let to_sec_f t = Int64.to_float t /. 1e6

let of_us n = Int64.of_int n

let pp ppf t = Fmt.pf ppf "%.3fs" (to_sec_f t)

let pp_span = pp

let to_string t = Fmt.str "%a" pp t
