test/test_mrai.ml: Alcotest Bgp Engine List Net Option Rng Sim Time
