(* An OpenFlow switch standing as a cluster member AS's border device.

   Data packets are forwarded by flow-table lookup; table misses go to the
   controller as PACKET_INs.  BGP messages arriving from external (legacy)
   neighbors are not processed locally — the switch encapsulates them
   toward the cluster BGP speaker (BGP_RELAY), and relays the speaker's
   messages back out to the neighbors, exactly the control-plane relaying
   the paper describes. *)

type stats = {
  mutable forwarded : int;
  mutable to_controller : int;
  mutable dropped : int;
  mutable relayed_in : int;
  mutable relayed_out : int;
  mutable flow_mods : int;
}

type t = {
  sim : Engine.Sim.t;
  node : Engine.Node.t;
  asn : Net.Asn.t;
  node_id : int;
  table : Flow_table.t;
  send_control : Openflow.t -> bool;
  send_data : dst:int -> Net.Packet.t -> bool;
  send_bgp : dst:int -> Bgp.Message.t -> bool;
  asn_of_node : int -> Net.Asn.t option;
  node_of_asn : Net.Asn.t -> int option;
  is_local : Net.Ipv4.addr -> bool;
  deliver_local : Net.Packet.t -> unit;
  stats : stats;
}

let log t fmt = Engine.Sim.logf t.sim ~node:(Net.Asn.to_string t.asn) ~category:"switch" fmt

type Engine.Node.blob += Switch_state of Flow.rule list

let create ~sim ~asn ~node_id ~send_control ~send_data ~send_bgp ~asn_of_node ~node_of_asn
    ~is_local ~deliver_local =
  let node =
    Engine.Node.create ~kind:"switch" sim ~name:(Fmt.str "sw-%a" Net.Asn.pp asn)
  in
  let t =
  {
    sim;
    node;
    asn;
    node_id;
    table =
      Flow_table.create ~metrics:(Engine.Sim.metrics sim)
        ~labels:[ ("node", Net.Asn.to_string asn) ]
        ();
    send_control;
    send_data;
    send_bgp;
    asn_of_node;
    node_of_asn;
    is_local;
    deliver_local;
    stats =
      {
        forwarded = 0;
        to_controller = 0;
        dropped = 0;
        relayed_in = 0;
        relayed_out = 0;
        flow_mods = 0;
      };
  }
  in
  (* A crashed switch loses its flow table; the controller re-installs
     rules when the framework resyncs the member on restart. *)
  Engine.Node.on_crash node (fun () -> Flow_table.clear t.table);
  (* Rule records are mutable ([packets], [last_used]) and the
     checkpointed run keeps running, so both directions copy.  Timeout
     enforcement is not re-armed on restore — a documented checkpoint
     limitation (rules outlive their recorded idle/hard deadlines). *)
  Engine.Node.set_snapshot node (fun () ->
      Switch_state (List.map (fun (r : Flow.rule) -> { r with packets = r.packets })
          (Flow_table.rules t.table)));
  Engine.Node.set_restore node (function
    | Switch_state rules ->
      Flow_table.clear t.table;
      List.iter
        (fun (r : Flow.rule) -> Flow_table.add t.table { r with packets = r.packets })
        rules
    | _ -> invalid_arg "Switch.restore: foreign snapshot blob");
  Engine.Node.start node;
  t

let asn t = t.asn

let node t = t.node

let node_id t = t.node_id

let table t = t.table

let stats t = t.stats

let packet_in t ~in_port packet =
  t.stats.to_controller <- t.stats.to_controller + 1;
  ignore (t.send_control (Openflow.Packet_in { switch_asn = t.asn; in_port; packet }))

(* Timeout enforcement.  Timers hold the physical rule record, so a
   same-key replacement installed later is untouched by the old timers. *)
let expire t rule reason =
  if Flow_table.remove_physical t.table rule then
    ignore (t.send_control (Openflow.Flow_removed { switch_asn = t.asn; rule; reason }))

let arm_timeouts t (rule : Flow.rule) =
  rule.Flow.last_used <- Engine.Sim.now t.sim;
  Option.iter
    (fun span ->
      Engine.Node.schedule_after ~category:"sdn.timeout" t.node span (fun () ->
          expire t rule Openflow.Hard_timeout))
    rule.Flow.hard_timeout;
  Option.iter
    (fun span ->
      let rec check () =
        if Flow_table.mem_physical t.table rule then begin
          let idle_deadline = Engine.Time.add rule.Flow.last_used span in
          if Engine.Time.(idle_deadline <= Engine.Sim.now t.sim) then
            expire t rule Openflow.Idle_timeout
          else
            Engine.Node.schedule_at ~category:"sdn.timeout" t.node idle_deadline check
        end
      in
      Engine.Node.schedule_after ~category:"sdn.timeout" t.node span check)
    rule.Flow.idle_timeout

let handle_data t ~from (packet : Net.Packet.t) =
  if t.is_local packet.Net.Packet.dst then t.deliver_local packet
  else
    match Net.Packet.decr_ttl packet with
    | None ->
      t.stats.dropped <- t.stats.dropped + 1;
      log t "ttl exceeded for %a" Net.Packet.pp packet
    | Some packet -> (
      let matched = Flow_table.lookup t.table packet.Net.Packet.dst in
      Option.iter (fun (r : Flow.rule) -> r.Flow.last_used <- Engine.Sim.now t.sim) matched;
      match matched with
      | Some { Flow.action = Flow.Output port; _ } ->
        if t.send_data ~dst:port packet then t.stats.forwarded <- t.stats.forwarded + 1
        else begin
          t.stats.dropped <- t.stats.dropped + 1;
          log t "output port %d unreachable, packet dropped" port
        end
      | Some { Flow.action = Flow.Drop; _ } -> t.stats.dropped <- t.stats.dropped + 1
      | Some { Flow.action = Flow.To_controller; _ } | None ->
        (* Table miss (or explicit punt): controller decides. *)
        packet_in t ~in_port:from packet)

(* BGP from an external neighbor: encapsulate toward the speaker. *)
let handle_bgp t ~from msg =
  match t.asn_of_node from with
  | None -> log t "bgp from unknown node %d dropped" from
  | Some neighbor ->
    t.stats.relayed_in <- t.stats.relayed_in + 1;
    ignore
      (t.send_control
         (Openflow.Bgp_relay
            { member = t.asn; neighbor; direction = Openflow.To_speaker; payload = msg }))

let handle_control t msg =
  match msg with
  | Openflow.Hello -> ignore (t.send_control Openflow.Hello)
  | Openflow.Flow_mod { command; rule } -> begin
    t.stats.flow_mods <- t.stats.flow_mods + 1;
    match command with
    | Openflow.Add ->
      Flow_table.add t.table rule;
      arm_timeouts t rule
    | Openflow.Delete -> Flow_table.delete t.table ~match_prefix:rule.Flow.match_prefix
    | Openflow.Delete_strict -> Flow_table.delete_exact t.table rule
  end
  | Openflow.Packet_out { out_port; packet } ->
    if out_port = t.node_id then t.deliver_local packet
    else if t.send_data ~dst:out_port packet then t.stats.forwarded <- t.stats.forwarded + 1
    else t.stats.dropped <- t.stats.dropped + 1
  | Openflow.Bgp_relay { neighbor; direction = Openflow.To_neighbor; payload; _ } -> begin
    match t.node_of_asn neighbor with
    | Some dst ->
      t.stats.relayed_out <- t.stats.relayed_out + 1;
      ignore (t.send_bgp ~dst payload)
    | None -> log t "relay to unknown neighbor %a dropped" Net.Asn.pp neighbor
  end
  | Openflow.Bgp_relay _ | Openflow.Packet_in _ | Openflow.Port_status _
  | Openflow.Flow_removed _ ->
    log t "unexpected control message: %a" Openflow.pp msg

(* Adjacent link changed state: report to the controller. *)
let port_change t ~peer ~up =
  ignore (t.send_control (Openflow.Port_status { switch_asn = t.asn; port = peer; up }))
