lib/sdn/flow_table.mli: Flow Format Net
