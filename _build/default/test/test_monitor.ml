(* Framework.Monitor: forwarding-state walker and probe streams. *)

let asn = Topology.Artificial.asn

let cfg = Framework.Config.fast_test

let build ?(spec = Topology.Artificial.clique 4) () =
  let net = Framework.Network.create ~config:cfg ~seed:9 spec in
  Framework.Network.start net;
  ignore (Framework.Network.settle net);
  net

let originate net a =
  let plan = Framework.Network.plan net in
  Framework.Network.originate net a (plan.Framework.Addressing.origin_prefix a);
  ignore (Framework.Network.settle net)

let test_walk_delivered_path () =
  let net = build ~spec:(Topology.Artificial.line 4) () in
  originate net (asn 3);
  let plan = Framework.Network.plan net in
  match
    Framework.Monitor.walk net ~src:(asn 0)
      ~dst_addr:(plan.Framework.Addressing.host_addr (asn 3))
  with
  | Framework.Monitor.Delivered path ->
    Alcotest.(check (list int)) "hop-by-hop path"
      [ 65001; 65002; 65003; 65004 ]
      (List.map Net.Asn.to_int path)
  | o -> Alcotest.failf "expected delivery, got %a" Framework.Monitor.pp_outcome o

let test_walk_blackhole () =
  let net = build () in
  let plan = Framework.Network.plan net in
  (* nothing announced: no route anywhere *)
  match
    Framework.Monitor.walk net ~src:(asn 0)
      ~dst_addr:(plan.Framework.Addressing.host_addr (asn 2))
  with
  | Framework.Monitor.Blackhole [ hop ] ->
    Alcotest.(check int) "stops at source" 65001 (Net.Asn.to_int hop)
  | o -> Alcotest.failf "expected blackhole, got %a" Framework.Monitor.pp_outcome o

let test_connectivity_matrix () =
  let net = build () in
  originate net (asn 0);
  originate net (asn 1);
  let matrix =
    Framework.Monitor.connectivity_matrix net ~origins:[ asn 0; asn 1 ]
  in
  (* 4 sources x 2 destinations, minus the 2 self-pairs *)
  Alcotest.(check int) "matrix size" 6 (List.length matrix);
  Alcotest.(check bool) "all reachable" true (List.for_all (fun (_, _, ok) -> ok) matrix)

let test_probe_stream_no_loss () =
  let net = build () in
  originate net (asn 0);
  originate net (asn 2);
  let stream =
    Framework.Monitor.start_stream net ~src:(asn 2) ~dst:(asn 0)
      ~interval:(Engine.Time.ms 100) ~count:10
  in
  ignore (Framework.Network.settle net);
  Alcotest.(check (float 1e-9)) "no loss" 0.0 (Framework.Monitor.loss_ratio stream);
  Alcotest.(check bool) "rtt measured" true (Framework.Monitor.mean_rtt_ms stream > 0.0)

let test_probe_stream_loss_during_blackhole () =
  (* On a line topology, failing the only path loses probes until the
     prefix is withdrawn; total loss thereafter (no reroute exists). *)
  let net = build ~spec:(Topology.Artificial.line 3) () in
  originate net (asn 0);
  originate net (asn 2);
  Framework.Network.fail_link net (asn 0) (asn 1);
  ignore (Framework.Network.settle net);
  let stream =
    Framework.Monitor.start_stream net ~src:(asn 2) ~dst:(asn 0)
      ~interval:(Engine.Time.ms 50) ~count:5
  in
  ignore (Framework.Network.settle net);
  Alcotest.(check (float 1e-9)) "all probes lost" 1.0 (Framework.Monitor.loss_ratio stream)

let test_traceroute () =
  let net = build ~spec:(Topology.Artificial.line 4) () in
  originate net (asn 3);
  let outcome, hops = Framework.Monitor.traceroute net ~src:(asn 0) ~dst:(asn 3) in
  Alcotest.(check bool) "reached" true (Framework.Monitor.is_delivered outcome);
  Alcotest.(check int) "four hops" 4 (List.length hops);
  (* cumulative latency is monotone and positive past the first hop *)
  let cumulative = List.map (fun h -> Engine.Time.to_ms_f h.Framework.Monitor.cumulative) hops in
  (match cumulative with
  | first :: rest ->
    Alcotest.(check (float 1e-9)) "starts at zero" 0.0 first;
    ignore
      (List.fold_left
         (fun prev c ->
           Alcotest.(check bool) "monotone" true (c >= prev);
           c)
         first rest);
    Alcotest.(check bool) "nonzero end-to-end" true (List.nth cumulative 3 > 0.0)
  | [] -> Alcotest.fail "no hops")

let suite =
  [
    Alcotest.test_case "walk delivered path" `Quick test_walk_delivered_path;
    Alcotest.test_case "traceroute" `Quick test_traceroute;
    Alcotest.test_case "walk blackhole" `Quick test_walk_blackhole;
    Alcotest.test_case "connectivity matrix" `Quick test_connectivity_matrix;
    Alcotest.test_case "probe stream no loss" `Quick test_probe_stream_no_loss;
    Alcotest.test_case "probe loss after failure" `Quick test_probe_stream_loss_during_blackhole;
  ]
