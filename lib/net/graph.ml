(* Weighted graph over integer node ids.

   Used for physical topologies, the controller's switch graph and the
   per-prefix AS topology graph.  Adjacency is a map per node (so edge
   insertion is O(log degree) — a clique no longer pays a quadratic
   rebuild per node) with a memoized sorted neighbor list, so traversal
   order — and therefore every algorithm built on top — stays
   deterministic and hot loops still iterate a plain list.

   Every structural mutation bumps [version]; callers that cache derived
   structures (the controller's sub-cluster table) key them on it. *)

module Int_map = Map.Make (Int)

type entry = {
  mutable out : float Int_map.t; (* neighbor -> weight *)
  mutable sorted : (int * float) list option; (* memoized [Int_map.bindings out] *)
}

type t = {
  adj : (int, entry) Hashtbl.t;
  directed : bool;
  mutable nedges : int;
  mutable version : int;
}

let create ?(directed = false) () =
  { adj = Hashtbl.create 64; directed; nedges = 0; version = 0 }

let is_directed t = t.directed

let version t = t.version

let touch t = t.version <- t.version + 1

let fresh_entry () = { out = Int_map.empty; sorted = Some [] }

let add_node t v =
  if not (Hashtbl.mem t.adj v) then begin
    Hashtbl.replace t.adj v (fresh_entry ());
    touch t
  end

let mem_node t v = Hashtbl.mem t.adj v

let nodes t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.adj [] |> List.sort Int.compare

let node_count t = Hashtbl.length t.adj

let edge_count t = t.nedges

let neighbors t v =
  match Hashtbl.find_opt t.adj v with
  | None -> []
  | Some e -> (
    match e.sorted with
    | Some l -> l
    | None ->
      let l = Int_map.bindings e.out in
      e.sorted <- Some l;
      l)

let succ t v = List.map fst (neighbors t v)

let degree t v =
  match Hashtbl.find_opt t.adj v with None -> 0 | Some e -> Int_map.cardinal e.out

let weight t u v =
  match Hashtbl.find_opt t.adj u with
  | None -> None
  | Some e -> Int_map.find_opt v e.out

let mem_edge t u v = Option.is_some (weight t u v)

let entry t v =
  match Hashtbl.find_opt t.adj v with
  | Some e -> e
  | None ->
    let e = fresh_entry () in
    Hashtbl.replace t.adj v e;
    e

(* True when the half-edge is new or its weight changed. *)
let add_half t u v w =
  let e = entry t u in
  ignore (entry t v);
  match Int_map.find_opt v e.out with
  | Some old when Float.equal old w -> false
  | _ ->
    e.out <- Int_map.add v w e.out;
    e.sorted <- None;
    true

let add_edge ?(w = 1.0) t u v =
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  let existed = mem_edge t u v in
  let changed = add_half t u v w in
  let changed = (if not t.directed then add_half t v u w else false) || changed in
  if not existed then t.nedges <- t.nedges + 1;
  (* Re-adding an existing edge with its existing weight is a no-op and
     keeps [version] stable, so redundant PORT_STATUS events stay
     skippable for version-keyed caches. *)
  if changed then touch t

let remove_half t u v =
  match Hashtbl.find_opt t.adj u with
  | None -> false
  | Some e ->
    if Int_map.mem v e.out then begin
      e.out <- Int_map.remove v e.out;
      e.sorted <- None;
      true
    end
    else false

let remove_edge t u v =
  let existed = remove_half t u v in
  if not t.directed then ignore (remove_half t v u);
  if existed then begin
    t.nedges <- t.nedges - 1;
    touch t
  end

let remove_node t v =
  if Hashtbl.mem t.adj v then begin
    let out_degree = degree t v in
    Hashtbl.remove t.adj v;
    let removed_in = ref 0 in
    Hashtbl.iter
      (fun _ e ->
        if Int_map.mem v e.out then begin
          e.out <- Int_map.remove v e.out;
          e.sorted <- None;
          incr removed_in
        end)
      t.adj;
    if t.directed then t.nedges <- t.nedges - out_degree - !removed_in
    else t.nedges <- t.nedges - out_degree;
    touch t
  end

let clear t =
  Hashtbl.reset t.adj;
  t.nedges <- 0;
  touch t

let edges t =
  let all =
    Hashtbl.fold
      (fun u e acc -> Int_map.fold (fun v w acc -> (u, v, w) :: acc) e.out acc)
      t.adj []
  in
  let all = if t.directed then all else List.filter (fun (u, v, _) -> u < v) all in
  List.sort (fun (a, b, _) (c, d, _) -> if a <> c then Int.compare a c else Int.compare b d) all

let copy t =
  let g = create ~directed:t.directed () in
  Hashtbl.iter (fun v e -> Hashtbl.replace g.adj v { out = e.out; sorted = e.sorted }) t.adj;
  g.nedges <- t.nedges;
  g.version <- t.version;
  g

(* --- Dijkstra ----------------------------------------------------------- *)

(* Heap elements are (distance, insertion sequence, node): the sequence
   number makes pop order — and hence tie-breaking — deterministic. *)
let heap_cmp (d1, s1, _) (d2, s2, _) =
  let c = Float.compare d1 d2 in
  if c <> 0 then c else Int.compare s1 s2

(* Reusable state so per-prefix sweeps don't reallocate tables and heap
   storage on every run (the controller's hottest loop). *)
type scratch = {
  s_dist : (int, float) Hashtbl.t;
  s_pred : (int, int) Hashtbl.t;
  s_heap : (float * int * int) Engine.Heap.t;
}

let scratch () =
  {
    s_dist = Hashtbl.create 64;
    s_pred = Hashtbl.create 64;
    s_heap = Engine.Heap.create ~dummy:(0.0, 0, 0) heap_cmp;
  }

(* Dijkstra from [src]; infinite-distance nodes are absent from the result.
   The returned tables belong to [s] and are overwritten by its next use. *)
let dijkstra_reuse s t src =
  let dist = s.s_dist and pred = s.s_pred and heap = s.s_heap in
  Hashtbl.clear dist;
  Hashtbl.clear pred;
  Engine.Heap.clear heap;
  let seq = ref 0 in
  let push d v =
    Engine.Heap.push heap (d, !seq, v);
    incr seq
  in
  Hashtbl.replace dist src 0.0;
  push 0.0 src;
  let rec loop () =
    match Engine.Heap.pop heap with
    | None -> ()
    | Some (d, _, v) ->
      (* Skip stale entries. *)
      if Float.equal (Hashtbl.find dist v) d then
        List.iter
          (fun (w, wt) ->
            if wt < 0.0 then invalid_arg "Graph.dijkstra: negative weight";
            let nd = d +. wt in
            let better =
              match Hashtbl.find_opt dist w with
              | None -> true
              | Some old -> nd < old
            in
            if better then begin
              Hashtbl.replace dist w nd;
              Hashtbl.replace pred w v;
              push nd w
            end)
          (neighbors t v);
      loop ()
  in
  loop ();
  (dist, pred)

let dijkstra t src = dijkstra_reuse (scratch ()) t src

let distance t src dst =
  let dist, _ = dijkstra t src in
  Hashtbl.find_opt dist dst

let shortest_path t src dst =
  if src = dst then if mem_node t src then Some [ src ] else None
  else begin
    let _, pred = dijkstra t src in
    if not (Hashtbl.mem pred dst) then None
    else begin
      let rec build v acc =
        if v = src then v :: acc else build (Hashtbl.find pred v) (v :: acc)
      in
      Some (build dst [])
    end
  end

let bfs_reachable t src =
  if not (mem_node t src) then []
  else begin
    let visited = Hashtbl.create 64 in
    Hashtbl.replace visited src ();
    let queue = Queue.create () in
    Queue.push src queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun (w, _) ->
          if not (Hashtbl.mem visited w) then begin
            Hashtbl.replace visited w ();
            Queue.push w queue
          end)
        (neighbors t v)
    done;
    Hashtbl.fold (fun v () acc -> v :: acc) visited [] |> List.sort Int.compare
  end

(* Connected components of the undirected view, each sorted, listed by
   smallest member. *)
let components t =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun v ->
      if Hashtbl.mem seen v then None
      else begin
        let comp = bfs_reachable t v in
        List.iter (fun w -> Hashtbl.replace seen w ()) comp;
        Some comp
      end)
    (nodes t)

let is_connected t =
  match nodes t with
  | [] -> true
  | v :: _ -> List.length (bfs_reachable t v) = node_count t

let pp ppf t =
  Fmt.pf ppf "@[<v>graph %d nodes %d edges" (node_count t) (edge_count t);
  List.iter (fun (u, v, w) -> Fmt.pf ppf "@,  %d %s %d (%.1f)" u
                (if t.directed then "->" else "--") v w) (edges t);
  Fmt.pf ppf "@]"
