(* Framework.Network: full-stack wiring — sessions, FIBs, data plane,
   link failures — on small topologies with the fast test config. *)

let asn = Topology.Artificial.asn

let cfg = Framework.Config.fast_test

let build ?(sdn = []) ?(seed = 3) spec_n =
  let spec = Topology.Spec.with_sdn (Topology.Artificial.clique spec_n) sdn in
  let net = Framework.Network.create ~config:cfg ~seed spec in
  Framework.Network.start net;
  ignore (Framework.Network.settle net);
  net

let test_sessions_up () =
  let net = build 4 in
  List.iter
    (fun a ->
      let r = Option.get (Framework.Network.router net a) in
      List.iter
        (fun b ->
          if not (Net.Asn.equal a b) then
            Alcotest.(check bool)
              (Fmt.str "%a-%a" Net.Asn.pp a Net.Asn.pp b)
              true
              (Bgp.Router.peer_established r b))
        (Framework.Network.asns net))
    (Framework.Network.asns net)

let test_collector_peered () =
  let net = build 3 in
  let plan = Framework.Network.plan net in
  Framework.Network.originate net (asn 0) (plan.Framework.Addressing.origin_prefix (asn 0));
  ignore (Framework.Network.settle net);
  Alcotest.(check bool) "collector saw updates" true
    (Bgp.Collector.event_count (Framework.Network.collector net) > 0)

let test_data_plane_end_to_end () =
  let net = build 4 in
  let plan = Framework.Network.plan net in
  Framework.Network.originate net (asn 0) (plan.Framework.Addressing.origin_prefix (asn 0));
  Framework.Network.originate net (asn 2) (plan.Framework.Addressing.origin_prefix (asn 2));
  ignore (Framework.Network.settle net);
  (* walk: 2 -> 0 *)
  let outcome =
    Framework.Monitor.walk net ~src:(asn 2)
      ~dst_addr:(plan.Framework.Addressing.host_addr (asn 0))
  in
  Alcotest.(check bool) "delivered" true (Framework.Monitor.is_delivered outcome);
  (* real packets: inject an echo, settle, expect delivery + auto reply *)
  let before = (Framework.Network.data_stats net).Framework.Network.delivered in
  Framework.Network.inject net ~src:(asn 2)
    (Net.Packet.echo
       ~src:(plan.Framework.Addressing.host_addr (asn 2))
       ~dst:(plan.Framework.Addressing.host_addr (asn 0))
       1);
  ignore (Framework.Network.settle net);
  let after = (Framework.Network.data_stats net).Framework.Network.delivered in
  Alcotest.(check int) "echo + reply delivered" 2 (after - before)

let test_link_failure_session_down () =
  let net = build 3 in
  let r0 = Option.get (Framework.Network.router net (asn 0)) in
  Framework.Network.fail_link net (asn 0) (asn 1);
  ignore (Framework.Network.settle net);
  Alcotest.(check bool) "session down after detection" false
    (Bgp.Router.peer_established r0 (asn 1));
  Framework.Network.recover_link net (asn 0) (asn 1);
  ignore (Framework.Network.settle net);
  Alcotest.(check bool) "session re-established" true (Bgp.Router.peer_established r0 (asn 1))

let test_reroute_after_failure () =
  (* line 0-1-2 plus direct 0-2?  Use a square: 0-1, 1-2, 2-3, 3-0.
     0 originates; 2 reaches it via 1 or 3; fail the active first hop and
     the data plane must re-route. *)
  let spec = Topology.Artificial.ring 4 in
  let net = Framework.Network.create ~config:cfg ~seed:3 spec in
  Framework.Network.start net;
  ignore (Framework.Network.settle net);
  let plan = Framework.Network.plan net in
  Framework.Network.originate net (asn 0) (plan.Framework.Addressing.origin_prefix (asn 0));
  ignore (Framework.Network.settle net);
  let dst_addr = plan.Framework.Addressing.host_addr (asn 0) in
  let first_hop () =
    match Framework.Monitor.walk net ~src:(asn 2) ~dst_addr with
    | Framework.Monitor.Delivered (_ :: hop :: _) -> Some hop
    | _ -> None
  in
  let hop1 = Option.get (first_hop ()) in
  Framework.Network.fail_link net (asn 2) hop1;
  ignore (Framework.Network.settle net);
  let hop2 = Option.get (first_hop ()) in
  Alcotest.(check bool) "rerouted around failure" false (Net.Asn.equal hop1 hop2)

let test_sdn_members_have_switches () =
  let net = build ~sdn:[ asn 2; asn 3 ] 4 in
  Alcotest.(check bool) "switch exists" true (Framework.Network.switch net (asn 2) <> None);
  Alcotest.(check bool) "no router for SDN member" true
    (Framework.Network.router net (asn 2) = None);
  Alcotest.(check bool) "controller exists" true (Framework.Network.controller net <> None);
  Alcotest.(check bool) "speaker exists" true (Framework.Network.speaker net <> None)

let test_speaker_sessions_established () =
  let net = build ~sdn:[ asn 2; asn 3 ] 4 in
  let speaker = Option.get (Framework.Network.speaker net) in
  (* member 2 peers with legacy 0, legacy 1 and the collector; member-to-
     member peerings are intra-cluster, not speaker sessions *)
  Alcotest.(check int) "sessions of member 2" 3
    (List.length (Cluster_ctl.Speaker.sessions_of speaker (asn 2)));
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Fmt.str "2/%a established" Net.Asn.pp n)
        true
        (Cluster_ctl.Speaker.session_established speaker ~member:(asn 2) ~neighbor:n))
    (Cluster_ctl.Speaker.sessions_of speaker (asn 2))

let test_hybrid_route_exchange () =
  let net = build ~sdn:[ asn 2; asn 3 ] 4 in
  let plan = Framework.Network.plan net in
  (* legacy 0 announces; SDN members must get flow rules; legacy 1 keeps
     its BGP route *)
  let prefix = plan.Framework.Addressing.origin_prefix (asn 0) in
  Framework.Network.originate net (asn 0) prefix;
  ignore (Framework.Network.settle net);
  let ctrl = Option.get (Framework.Network.controller net) in
  (match Cluster_ctl.Controller.decision ctrl ~member:(asn 2) prefix with
  | Some d ->
    Alcotest.(check bool) "member 2 exits toward 0" true
      (d.Cluster_ctl.As_graph.hop = Cluster_ctl.As_graph.Exit { neighbor = asn 0 })
  | None -> Alcotest.fail "controller must route member 2");
  let sw = Option.get (Framework.Network.switch net (asn 2)) in
  Alcotest.(check bool) "flow rule installed" true
    (Sdn.Flow_table.size (Sdn.Switch.table sw) > 0);
  (* SDN member originates; legacy routers must learn it via the speaker
     with the member's AS identity *)
  let sdn_prefix = plan.Framework.Addressing.origin_prefix (asn 3) in
  Framework.Network.originate net (asn 3) sdn_prefix;
  ignore (Framework.Network.settle net);
  let r0 = Option.get (Framework.Network.router net (asn 0)) in
  match Bgp.Router.best r0 sdn_prefix with
  | Some route ->
    Alcotest.(check (list int)) "AS identity preserved"
      [ Net.Asn.to_int (asn 3) ]
      (List.map Net.Asn.to_int (Bgp.Attrs.as_path (Bgp.Route.attrs route)))
  | None -> Alcotest.fail "legacy must learn the SDN-originated prefix"

let test_hybrid_data_path () =
  let net = build ~sdn:[ asn 2; asn 3 ] 4 in
  let plan = Framework.Network.plan net in
  Framework.Network.originate net (asn 0) (plan.Framework.Addressing.origin_prefix (asn 0));
  Framework.Network.originate net (asn 3) (plan.Framework.Addressing.origin_prefix (asn 3));
  ignore (Framework.Network.settle net);
  Alcotest.(check bool) "sdn -> legacy" true
    (Framework.Monitor.reachable net ~src:(asn 3) ~dst:(asn 0));
  Alcotest.(check bool) "legacy -> sdn" true
    (Framework.Monitor.reachable net ~src:(asn 0) ~dst:(asn 3))

let test_dynamic_peering_legacy () =
  (* line 0-1-2: traffic 0->2 transits 1 until a direct 0-2 peering is
     added at runtime *)
  let spec = Topology.Artificial.line 3 in
  let net = Framework.Network.create ~config:cfg ~seed:13 spec in
  Framework.Network.start net;
  ignore (Framework.Network.settle net);
  let plan = Framework.Network.plan net in
  Framework.Network.originate net (asn 2) (plan.Framework.Addressing.origin_prefix (asn 2));
  ignore (Framework.Network.settle net);
  let path () =
    match
      Framework.Monitor.walk net ~src:(asn 0)
        ~dst_addr:(plan.Framework.Addressing.host_addr (asn 2))
    with
    | Framework.Monitor.Delivered p -> List.length p
    | _ -> -1
  in
  Alcotest.(check int) "transit path first" 3 (path ());
  Framework.Network.add_peering net (asn 0) (asn 2);
  ignore (Framework.Network.settle net);
  Alcotest.(check int) "direct after dynamic peering" 2 (path ());
  let r0 = Option.get (Framework.Network.router net (asn 0)) in
  Alcotest.(check bool) "session established" true
    (Bgp.Router.peer_established r0 (asn 2))

let test_dynamic_peering_hybrid () =
  (* legacy 0 gains a runtime peering with SDN member 3 *)
  let spec = Topology.Artificial.line 4 in
  let spec = Topology.Spec.with_sdn spec [ asn 3 ] in
  let net = Framework.Network.create ~config:cfg ~seed:14 spec in
  Framework.Network.start net;
  ignore (Framework.Network.settle net);
  let plan = Framework.Network.plan net in
  Framework.Network.originate net (asn 3) (plan.Framework.Addressing.origin_prefix (asn 3));
  ignore (Framework.Network.settle net);
  Framework.Network.add_peering net (asn 0) (asn 3);
  ignore (Framework.Network.settle net);
  let r0 = Option.get (Framework.Network.router net (asn 0)) in
  (match Bgp.Router.best r0 (plan.Framework.Addressing.origin_prefix (asn 3)) with
  | Some route ->
    Alcotest.(check (list int)) "direct path over new peering" [ 65004 ]
      (List.map Net.Asn.to_int (Bgp.Attrs.as_path (Bgp.Route.attrs route)))
  | None -> Alcotest.fail "route must arrive over the new peering");
  let speaker = Option.get (Framework.Network.speaker net) in
  Alcotest.(check bool) "speaker session live" true
    (Cluster_ctl.Speaker.session_established speaker ~member:(asn 3) ~neighbor:(asn 0))

let test_dynamic_peering_guards () =
  let net = build 3 in
  (match Framework.Network.add_peering net (asn 0) (asn 1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate peering must raise");
  match Framework.Network.add_peering net (asn 0) (Net.Asn.of_int 4242) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "unknown AS must raise"

let test_determinism () =
  let run () =
    let net = build ~sdn:[ asn 3 ] ~seed:11 4 in
    let plan = Framework.Network.plan net in
    Framework.Network.originate net (asn 0) (plan.Framework.Addressing.origin_prefix (asn 0));
    let t1 = Framework.Network.settle net in
    Framework.Network.withdraw net (asn 0) (plan.Framework.Addressing.origin_prefix (asn 0));
    let t2 = Framework.Network.settle net in
    (Engine.Time.to_us t1, Engine.Time.to_us t2,
     Bgp.Collector.event_count (Framework.Network.collector net))
  in
  let a = run () and b = run () in
  Alcotest.(check (triple int int int)) "bit-identical rerun" a b

let suite =
  [
    Alcotest.test_case "sessions up" `Quick test_sessions_up;
    Alcotest.test_case "collector peered" `Quick test_collector_peered;
    Alcotest.test_case "data plane end-to-end" `Quick test_data_plane_end_to_end;
    Alcotest.test_case "link failure bounces session" `Quick test_link_failure_session_down;
    Alcotest.test_case "reroute after failure" `Quick test_reroute_after_failure;
    Alcotest.test_case "sdn wiring" `Quick test_sdn_members_have_switches;
    Alcotest.test_case "speaker sessions" `Quick test_speaker_sessions_established;
    Alcotest.test_case "hybrid route exchange" `Quick test_hybrid_route_exchange;
    Alcotest.test_case "hybrid data path" `Quick test_hybrid_data_path;
    Alcotest.test_case "dynamic peering (legacy)" `Quick test_dynamic_peering_legacy;
    Alcotest.test_case "dynamic peering (hybrid)" `Quick test_dynamic_peering_hybrid;
    Alcotest.test_case "dynamic peering guards" `Quick test_dynamic_peering_guards;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]
