(* A route: a prefix with its path attributes and provenance. *)

type source =
  | Local (* originated by this router *)
  | Ebgp of Net.Asn.t (* learned from this external peer *)

type t = {
  prefix : Net.Ipv4.prefix;
  attrs : Attrs.t;
  source : source;
  learned_at : Engine.Time.t;
}

let make ~prefix ~attrs ~source ~learned_at = { prefix; attrs; source; learned_at }

let prefix t = t.prefix

let attrs t = t.attrs

let source t = t.source

let learned_at t = t.learned_at

let is_local t = match t.source with Local -> true | Ebgp _ -> false

let from_peer t = match t.source with Local -> None | Ebgp p -> Some p

let pp_source ppf = function
  | Local -> Fmt.string ppf "local"
  | Ebgp p -> Fmt.pf ppf "ebgp:%a" Net.Asn.pp p

let pp ppf t =
  Fmt.pf ppf "%a %a via %a" Net.Ipv4.pp_prefix t.prefix Attrs.pp t.attrs pp_source t.source
