lib/framework/payload.mli: Bgp Format Net Sdn
