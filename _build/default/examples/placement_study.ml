(* Where should a small SDN deployment go?

   The paper shows centralization helps "even with small SDN cluster
   deployments"; on a heterogeneous Internet-like topology the answer
   depends heavily on *which* ASes join.  This study sweeps cluster size
   for three placement strategies on a synthetic CAIDA-style graph and
   prints the resulting convergence-time boxplots.

     dune exec examples/placement_study.exe *)

let () =
  Fmt.pr
    "placement study: withdrawal convergence of a stub prefix on a 31-AS@.\
     Internet-like topology (3 tier-1, 8 transit, 20 stubs), k cluster members@.@.";
  List.iter
    (fun placement ->
      let series =
        Framework.Experiments.placement_sweep ~runs:3 ~ks:[ 0; 2; 4; 6 ] ~placement ()
      in
      Fmt.pr "%s@." (Framework.Visualize.series_to_ascii series))
    [ Framework.Experiments.Top_degree; Framework.Experiments.Random_choice;
      Framework.Experiments.Stubs_first ];
  Fmt.pr
    "path exploration lives in the transit core: centralizing the four@.\
     best-connected ASes halves convergence, centralizing stubs does nothing.@."
