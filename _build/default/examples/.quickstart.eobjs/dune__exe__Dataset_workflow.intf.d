examples/dataset_workflow.mli:
