(* Canned experiments reproducing the paper's evaluation.

   Fig. 2: withdrawal convergence on a 16-AS clique vs fraction of
   SDN-controlled ASes, boxplots over 10 seeded runs; plus the
   announcement and fail-over variants §4 mentions, and the ablations
   DESIGN.md commits to.  All are parameterized so tests can run scaled-
   down versions of the same code paths. *)

type event_kind = Withdrawal | Announcement | Failover

let event_to_string = function
  | Withdrawal -> "withdrawal"
  | Announcement -> "announcement"
  | Failover -> "failover"

type run_result = {
  seconds : float; (* convergence time of the measured event *)
  changes : int; (* control-plane best-route changes during it *)
  collector_updates : int; (* updates seen by the route collector *)
  restore_mean : float; (* mean per-AS data-plane restoration (failover) *)
  restore_max : float; (* slowest AS's restoration (failover) *)
  metrics : Engine.Metrics.snapshot; (* whole-stack telemetry at run end *)
}

type point = {
  x : float; (* e.g. SDN fraction *)
  results : run_result list;
  box : Engine.Stats.boxplot; (* over convergence seconds *)
}

type series = { label : string; points : point list }

let box_of results = Engine.Stats.boxplot (List.map (fun r -> r.seconds) results)

(* --- Single measured runs ------------------------------------------------ *)

(* One convergence measurement on a clique with [sdn] of the non-origin
   ASes centralized.  The origin AS (node 0) always stays legacy, as in
   the paper's experiment where the withdrawn prefix belongs to the
   legacy world. *)
let clique_run ~n ~sdn ~event ~seed ~config () =
  if sdn > n - 2 then invalid_arg "Experiments.clique_run: sdn must leave origin + 1 legacy";
  let spec = Topology.Artificial.clique n in
  let members = List.init sdn (fun i -> Topology.Artificial.asn (n - 1 - i)) in
  let spec = Topology.Spec.with_sdn spec members in
  let exp = Experiment.create ~config ~seed spec in
  let origin = Topology.Artificial.asn 0 in
  let prefix = Experiment.default_prefix exp origin in
  let collector = Network.collector (Experiment.network exp) in
  (* For withdrawals, [collector_updates] counts only the measured
     (post-announcement) phase, not the bootstrap announcement's churn. *)
  let baseline = ref 0 in
  let measured =
    match event with
    | Announcement ->
      Experiment.measure exp ~prefix (fun () -> ignore (Experiment.announce exp origin))
    | Withdrawal ->
      ignore (Experiment.measure exp ~prefix (fun () -> ignore (Experiment.announce exp origin)));
      baseline := Bgp.Collector.event_count collector;
      Experiment.measure exp ~prefix (fun () -> ignore (Experiment.withdraw exp origin))
    | Failover -> invalid_arg "Experiments.clique_run: use failover_run"
  in
  let collector_updates = Bgp.Collector.event_count collector - !baseline in
  {
    seconds = Experiment.convergence_seconds measured;
    changes = measured.Convergence.changes;
    collector_updates;
    restore_mean = nan;
    restore_max = nan;
    metrics = Experiment.final_metrics exp;
  }

(* Fail-over: a stub's short primary path (into clique member 0) dies and
   the network must fall back to a strictly longer backup chain (into
   member 1).  Legacy clique members hold stale intermediate-length paths
   through each other and explore them MRAI round by round before
   settling on the backup; centralized members skip that exploration.
   [sdn] clique members are centralized — never members 0/1, which anchor
   the primary and backup paths. *)
let failover_run ~n ~sdn ~seed ~config () =
  if sdn > n - 2 then invalid_arg "Experiments.failover_run: too many SDN members";
  let spec = Topology.Artificial.failover_backup_chain ~clique_size:n ~chain_len:2 () in
  let members = List.init sdn (fun i -> Topology.Artificial.asn (n - 1 - i)) in
  let spec = Topology.Spec.with_sdn spec members in
  let exp = Experiment.create ~config ~seed spec in
  let stub = Topology.Artificial.stub_asn spec in
  let primary = Topology.Artificial.asn 0 in
  let prefix = Experiment.default_prefix exp stub in
  ignore (Experiment.measure exp ~prefix (fun () -> ignore (Experiment.announce exp stub)));
  let collector = Network.collector (Experiment.network exp) in
  (* Track per-AS data-plane restoration (the paper's end-to-end video
     interruption): sample forwarding state every 100 ms after the
     failure and record each AS's first instant of renewed reachability
     to the stub. *)
  let network = Experiment.network exp in
  let sim = Experiment.sim exp in
  let watchers = List.filter (fun a -> not (Net.Asn.equal a stub)) (Topology.Spec.asns spec) in
  let restored : (Net.Asn.t, float) Hashtbl.t = Hashtbl.create 16 in
  let event_time = ref Engine.Time.zero in
  let rec sample () =
    List.iter
      (fun src ->
        if not (Hashtbl.mem restored src) && Monitor.reachable network ~src ~dst:stub then
          Hashtbl.replace restored src
            (Engine.Time.to_sec_f (Engine.Time.diff (Engine.Sim.now sim) !event_time)))
      watchers;
    let elapsed = Engine.Time.diff (Engine.Sim.now sim) !event_time in
    if
      Hashtbl.length restored < List.length watchers
      && Engine.Time.(elapsed < Engine.Time.sec 3600)
    then ignore (Engine.Sim.schedule_after sim (Engine.Time.ms 100) sample)
  in
  let measured =
    Experiment.measure exp ~prefix (fun () ->
        event_time := Engine.Sim.now sim;
        Experiment.fail_link exp stub primary;
        sample ())
  in
  let restore_times = Hashtbl.fold (fun _ t acc -> t :: acc) restored [] in
  let restore_mean = Engine.Stats.mean restore_times in
  let restore_max = List.fold_left Float.max 0.0 restore_times in
  {
    seconds = Experiment.convergence_seconds measured;
    changes = measured.Convergence.changes;
    collector_updates = Bgp.Collector.event_count collector;
    restore_mean;
    restore_max;
    metrics = Experiment.final_metrics exp;
  }

(* --- Sweeps --------------------------------------------------------------- *)

let take_drop k xs =
  let rec go k acc xs =
    if k = 0 then (List.rev acc, xs)
    else match xs with [] -> (List.rev acc, []) | x :: rest -> go (k - 1) (x :: acc) rest
  in
  go k [] xs

(* The parallel experiment runner every sweep and ablation goes through.

   The (x, trial) grid is flattened into one task list and dispatched
   through [pool] when given; each task builds its own [Experiment]
   (and thus its own [Sim]/[Metrics]/[Rng]/[Trace]) so nothing mutable
   crosses a domain boundary.  Results come back from [Engine.Pool.map]
   in submission order, and are regrouped per x here — so the output is
   bit-identical to the sequential run whatever the pool's scheduling.
   Without a pool (or with [jobs = 1]) this is plain [List.map]: the
   sequential path is unchanged. *)
let sweep_points ?pool ~runs ~seed ~run_at xs =
  let tasks = List.concat_map (fun x -> List.init runs (fun i -> (x, seed + (1000 * i)))) xs in
  let eval (x, seed) = run_at ~x ~seed in
  let results =
    match pool with
    | Some pool -> Engine.Pool.map pool eval tasks
    | None -> List.map eval tasks
  in
  let rec regroup xs results =
    match xs with
    | [] -> []
    | x :: rest ->
      let mine, others = take_drop runs results in
      { x; results = mine; box = box_of mine } :: regroup rest others
  in
  regroup xs results

let default_fractions n =
  (* 0, 2, 4, ... n-2 SDN members out of n, as in Fig. 2. *)
  List.init ((n / 2) - 0) (fun i -> 2 * i) |> List.filter (fun k -> k <= n - 2)

(* Fig. 2: withdrawal convergence vs SDN fraction. *)
let fig2_withdrawal ?pool ?(n = 16) ?(runs = 10) ?(seed = 7) ?(config = Config.default) () =
  let points =
    sweep_points ?pool ~runs ~seed
      ~run_at:(fun ~x ~seed ->
        clique_run ~n ~sdn:(int_of_float x) ~event:Withdrawal ~seed ~config ())
      (List.map float_of_int (default_fractions n))
  in
  { label = Fmt.str "fig2-withdrawal-clique%d" n; points }

(* §4: announcement experiments — smaller reductions. *)
let announcement_sweep ?pool ?(n = 16) ?(runs = 10) ?(seed = 11) ?(config = Config.default) () =
  let points =
    sweep_points ?pool ~runs ~seed
      ~run_at:(fun ~x ~seed ->
        clique_run ~n ~sdn:(int_of_float x) ~event:Announcement ~seed ~config ())
      (List.map float_of_int (default_fractions n))
  in
  { label = Fmt.str "announcement-clique%d" n; points }

(* §4: fail-over experiments — smaller reductions. *)
let failover_sweep ?pool ?(n = 16) ?(runs = 10) ?(seed = 13) ?(config = Config.default) () =
  let points =
    sweep_points ?pool ~runs ~seed
      ~run_at:(fun ~x ~seed -> failover_run ~n ~sdn:(int_of_float x) ~seed ~config ())
      (List.map float_of_int (default_fractions n))
  in
  { label = Fmt.str "failover-clique%d" n; points }

(* Ablation A1: the controller's delayed-recomputation interval, at a
   fixed 50% deployment. *)
let ablation_recompute_delay ?pool ?(n = 16) ?(runs = 10) ?(seed = 17)
    ?(config = Config.default) ?(delays_ms = [ 0; 500; 2000; 8000 ]) () =
  let points =
    sweep_points ?pool ~runs ~seed
      ~run_at:(fun ~x ~seed ->
        let config = Config.with_recompute_delay config (Engine.Time.ms (int_of_float x)) in
        clique_run ~n ~sdn:(n / 2) ~event:Withdrawal ~seed ~config ())
      (List.map float_of_int delays_ms)
  in
  { label = Fmt.str "ablation-recompute-delay-clique%d" n; points }

(* Ablation A3: MRAI sensitivity of the 0%-SDN baseline and of a 50%
   deployment. *)
let ablation_mrai ?pool ?(n = 16) ?(runs = 10) ?(seed = 19) ?(config = Config.default)
    ?(mrai_s = [ 5; 15; 30 ]) ~sdn () =
  let points =
    sweep_points ?pool ~runs ~seed
      ~run_at:(fun ~x ~seed ->
        let config = Config.with_mrai config (Engine.Time.sec (int_of_float x)) in
        clique_run ~n ~sdn ~event:Withdrawal ~seed ~config ())
      (List.map float_of_int mrai_s)
  in
  { label = Fmt.str "ablation-mrai-clique%d-sdn%d" n sdn; points }

(* Ablation A4: RFC-style MRAI (withdrawals exempt, x=0) vs Quagga-style
   (x=1). *)
let ablation_wrate ?pool ?(n = 16) ?(runs = 10) ?(seed = 23) ?(config = Config.default) ~sdn ()
    =
  let points =
    sweep_points ?pool ~runs ~seed
      ~run_at:(fun ~x ~seed ->
        let wrate = x > 0.5 in
        let config =
          { config with Config.bgp = { config.Config.bgp with Bgp.Config.mrai_on_withdrawals = wrate } }
        in
        clique_run ~n ~sdn ~event:Withdrawal ~seed ~config ())
      [ 0.0; 1.0 ]
  in
  { label = Fmt.str "ablation-wrate-clique%d-sdn%d" n sdn; points }

(* Scaling: withdrawal convergence vs clique size at a fixed deployment
   fraction — does the linear-in-(legacy count) behaviour persist as the
   network grows? *)
let scaling_sweep ?pool ?(sizes = [ 8; 12; 16; 20; 24 ]) ?(fraction = 0.5) ?(runs = 5)
    ?(seed = 37) ?(config = Config.default) () =
  let points =
    sweep_points ?pool ~runs ~seed
      ~run_at:(fun ~x ~seed ->
        let n = int_of_float x in
        let sdn = int_of_float (float_of_int n *. fraction) in
        let sdn = min sdn (n - 2) in
        clique_run ~n ~sdn ~event:Withdrawal ~seed ~config ())
      (List.map float_of_int sizes)
  in
  { label = Fmt.str "scaling-withdrawal-f%.2f" fraction; points }

(* Convergence under background churn: a second AS flaps its own prefix
   throughout the measurement.  Because MRAI timers are per *peer*, not
   per prefix, background churn keeps the timers armed and the measured
   withdrawal inherits extra pacing delay — centralized members are
   immune to that coupling. *)
let churn_run ~n ~sdn ~flap_period_s ~seed ~config () =
  if sdn > n - 3 then invalid_arg "Experiments.churn_run: need origin + flapper legacy";
  let spec = Topology.Artificial.clique n in
  let members = List.init sdn (fun i -> Topology.Artificial.asn (n - 1 - i)) in
  let spec = Topology.Spec.with_sdn spec members in
  let exp = Experiment.create ~config ~seed spec in
  let origin = Topology.Artificial.asn 0 in
  let flapper = Topology.Artificial.asn 1 in
  let prefix = Experiment.default_prefix exp origin in
  ignore (Experiment.measure exp ~prefix (fun () -> ignore (Experiment.announce exp origin)));
  (* schedule a finite flap train long enough to cover the measurement *)
  let sim = Experiment.sim exp in
  let network = Experiment.network exp in
  let period = Engine.Time.of_sec_f flap_period_s in
  let flap_prefix = Experiment.default_prefix exp flapper in
  let cycles = 40 in
  for i = 0 to cycles - 1 do
    let base = Engine.Time.add (Engine.Sim.now sim) (Engine.Time.span_scale period (float_of_int i)) in
    ignore
      (Engine.Sim.schedule_at sim base (fun () -> Network.originate network flapper flap_prefix));
    ignore
      (Engine.Sim.schedule_at sim
         (Engine.Time.add base (Engine.Time.span_scale period 0.5))
         (fun () -> Network.withdraw network flapper flap_prefix))
  done;
  let collector = Network.collector network in
  let measured =
    Experiment.measure exp ~prefix (fun () -> ignore (Experiment.withdraw exp origin))
  in
  {
    seconds = Experiment.convergence_seconds measured;
    changes = measured.Convergence.changes;
    collector_updates = Bgp.Collector.event_count collector;
    restore_mean = nan;
    restore_max = nan;
    metrics = Experiment.final_metrics exp;
  }

(* --- Deployment placement -------------------------------------------------

   On heterogeneous (Internet-like) topologies it matters *which* ASes
   join the cluster.  Three strategies: the k best-connected ASes, k
   random ASes, k stubs.  The origin never joins. *)

type placement = Top_degree | Random_choice | Stubs_first

let placement_to_string = function
  | Top_degree -> "top-degree"
  | Random_choice -> "random"
  | Stubs_first -> "stubs"

let choose_members ~spec ~k ~placement ~origin ~seed =
  let candidates =
    List.filter (fun a -> not (Net.Asn.equal a origin)) (Topology.Spec.asns spec)
  in
  let degree a = List.length (Topology.Spec.neighbors spec a) in
  match placement with
  | Top_degree ->
    List.stable_sort (fun a b -> Int.compare (degree b) (degree a)) candidates
    |> List.filteri (fun i _ -> i < k)
  | Stubs_first ->
    List.stable_sort (fun a b -> Int.compare (degree a) (degree b)) candidates
    |> List.filteri (fun i _ -> i < k)
  | Random_choice -> Engine.Rng.sample (Engine.Rng.create seed) k candidates

(* Withdrawal convergence with [k] members placed by [placement]. *)
let placement_run ~spec ~k ~placement ~origin ~seed ~config () =
  let members = choose_members ~spec ~k ~placement ~origin ~seed in
  let spec = Topology.Spec.with_sdn spec members in
  let exp = Experiment.create ~config ~seed spec in
  let prefix = Experiment.default_prefix exp origin in
  ignore (Experiment.measure exp ~prefix (fun () -> ignore (Experiment.announce exp origin)));
  let collector = Network.collector (Experiment.network exp) in
  let measured =
    Experiment.measure exp ~prefix (fun () -> ignore (Experiment.withdraw exp origin))
  in
  {
    seconds = Experiment.convergence_seconds measured;
    changes = measured.Convergence.changes;
    collector_updates = Bgp.Collector.event_count collector;
    restore_mean = nan;
    restore_max = nan;
    metrics = Experiment.final_metrics exp;
  }

(* Sweep k for one strategy on an Internet-like topology.  The spec is
   generated once and shared read-only across (possibly parallel) runs;
   each run derives its own members/Experiment from it. *)
let placement_sweep ?pool ?(tier1 = 3) ?(tier2 = 8) ?(stubs = 20) ?(ks = [ 0; 2; 4; 6; 8 ])
    ?(runs = 5) ?(seed = 53) ?(config = Config.default) ~placement () =
  let spec = Topology.Caida.generate ~tier1 ~tier2 ~stubs (Engine.Rng.create seed) in
  let origin = List.hd (Topology.Caida.stub_asns ~tier1 ~tier2 ~stubs) in
  let points =
    sweep_points ?pool ~runs ~seed:(seed + 1)
      ~run_at:(fun ~x ~seed ->
        placement_run ~spec ~k:(int_of_float x) ~placement ~origin ~seed ~config ())
      (List.map float_of_int ks)
  in
  { label = Fmt.str "placement-%s" (placement_to_string placement); points }

(* Table-size independence (negative control): withdraw one prefix while
   [background] unrelated prefixes sit in every table.  Since updates are
   per-prefix and the background is quiescent, convergence of the
   withdrawn prefix should not depend on table size. *)
let table_size_run ~n ~sdn ~background ~seed ~config () =
  if background > n - 1 then invalid_arg "Experiments.table_size_run: too many background origins";
  let spec = Topology.Artificial.clique n in
  let members = List.init sdn (fun i -> Topology.Artificial.asn (n - 1 - i)) in
  let spec = Topology.Spec.with_sdn spec members in
  let exp = Experiment.create ~config ~seed spec in
  (* background prefixes from ASes 1..background *)
  for i = 1 to background do
    ignore (Experiment.announce exp (Topology.Artificial.asn i))
  done;
  ignore (Experiment.settle exp);
  let origin = Topology.Artificial.asn 0 in
  let prefix = Experiment.default_prefix exp origin in
  ignore (Experiment.measure exp ~prefix (fun () -> ignore (Experiment.announce exp origin)));
  let collector = Network.collector (Experiment.network exp) in
  let measured =
    Experiment.measure exp ~prefix (fun () -> ignore (Experiment.withdraw exp origin))
  in
  {
    seconds = Experiment.convergence_seconds measured;
    changes = measured.Convergence.changes;
    collector_updates = Bgp.Collector.event_count collector;
    restore_mean = nan;
    restore_max = nan;
    metrics = Experiment.final_metrics exp;
  }

(* --- Internet scale -------------------------------------------------------

   The tentpole stress path: a synthetic CAIDA graph (thousands of ASes)
   loaded with thousands of prefixes spread across its stubs, then one
   measured withdrawal.  The load phase is throughput-bound, not
   convergence-bound: it runs under an explicit event budget so peak
   memory and host time stay proportional to [load_max_events] rather
   than to full global propagation (at full Internet scale every router
   learning every prefix would not fit one process).  [load_settled]
   reports whether the budget in fact reached quiescence — small
   configurations (tests, the smoke alias) do. *)

type scale_result = {
  ases : int;
  links : int;
  prefixes : int;
  sdn_members : int;
  load_updates : int; (* collector-recorded updates during the load phase *)
  load_seconds : float; (* host seconds spent in the load phase *)
  updates_per_sec : float; (* load_updates / load_seconds *)
  load_settled : bool; (* the load phase reached quiescence under its budget *)
  withdrawal : run_result; (* the measured withdrawal after the load *)
  rib_routes : int; (* Loc-RIB entries summed over legacy routers *)
  adj_in_routes : int; (* Adj-RIB-In entries summed over legacy routers *)
  live_words : int; (* major-heap live words after the run (post-compaction) *)
  peak_words : int; (* Gc top_heap_words over the whole run *)
  distinct_attrs : int; (* interned attribute sets (domain-local table) *)
}

(* [Network.settle] treats an exhausted event budget as divergence and
   raises; at scale a bounded horizon is the intended operating mode, so
   run the scheduler directly and report whether quiescence was reached. *)
(* Run the queue dry under two explicit bounds: an event budget and an
   optional host-clock deadline.  At Internet scale one batched delivery
   can carry thousands of prefixes — per-event cost varies by four
   orders of magnitude — so events alone cannot bound wall time; the
   deadline is checked between small slices.  Returns [true] iff the
   queue actually drained (quiescence). *)
let bounded_settle ?deadline ?(clock = Sys.time) exp ~budget =
  let sim = Experiment.sim exp in
  let slice = 100 in
  let rec loop remaining =
    if remaining <= 0 then false
    else if (match deadline with Some d -> clock () >= d | None -> false) then false
    else
      match Engine.Sim.run ~max_events:(min slice remaining) sim with
      | Engine.Sim.Exhausted -> true
      | Engine.Sim.Reached_limit -> loop (remaining - slice)
      | Engine.Sim.Reached_time _ -> assert false
  in
  loop budget

(* [Convergence.measure] under the same bounded budget/deadline. *)
let bounded_measure ?deadline ?clock exp ~budget ~prefix action =
  let watcher = Experiment.watcher exp in
  let event_time = Experiment.now exp in
  let changes_before = Convergence.control_changes watcher prefix in
  action ();
  ignore (bounded_settle ?deadline ?clock exp ~budget);
  let last_change =
    match Convergence.last_control_change watcher prefix with
    | Some time when Engine.Time.(time >= event_time) -> Some time
    | Some _ | None -> None
  in
  {
    Convergence.prefix;
    event_time;
    settled_at = Experiment.now exp;
    last_change;
    convergence = Option.map (fun c -> Engine.Time.diff c event_time) last_change;
    changes = Convergence.control_changes watcher prefix - changes_before;
  }

(* Synthetic prefixes for the load phase: 101.0.0.0/24 onward, disjoint
   from the addressing plan's 100.64/10 origin prefixes and 10/8 router
   addresses. *)
let scale_prefix m =
  if m < 0 || m >= 0x9a_0000 then invalid_arg "Experiments.scale_prefix";
  Net.Ipv4.prefix
    (Net.Ipv4.addr_of_octets (101 + (m lsr 16)) ((m lsr 8) land 0xff) (m land 0xff) 0)
    24

(* The sharded twin of [scale_run]: the same CAIDA graph, load, announce
   and withdrawal, but executed through {!Sharding} as three driver
   phases across [shards] domains.  Returns both the [scale_result] view
   and the raw {!Sharding.result} (partition sizes, per-shard stats, and
   the deterministic signature the shards=N-vs-1 differential compares).

   The phase structure differs from the sequential path — commands fire
   at pre-scheduled driver instants after quiescence rather than
   immediately — so sharded results are bit-comparable across SHARD
   COUNTS (N vs 1 through this same function), not against the
   unsharded [scale_run]. *)
let scale_shard_run ?(tier1 = 5) ?(tier2 = 40) ?(stubs = 455) ?(prefixes = 1000) ?(sdn = 0)
    ?(load_max_events = 20_000_000) ?(shards = 1) ?(clock = Sys.time) ~seed ~config () =
  let total = tier1 + tier2 + stubs in
  let spec = Topology.Caida.generate ~tier1 ~tier2 ~stubs (Engine.Rng.create seed) in
  let stub_list = Topology.Caida.stub_asns ~tier1 ~tier2 ~stubs in
  let origin = List.hd stub_list in
  let members = choose_members ~spec ~k:sdn ~placement:Top_degree ~origin ~seed in
  let spec = Topology.Spec.with_sdn spec members in
  let config = { config with Config.collector_retention = Bgp.Collector.Counts_only } in
  let plan = Addressing.plan spec in
  let prefix = plan.Addressing.origin_prefix origin in
  let stub_arr = Array.of_list stub_list in
  let load_cmds =
    List.init prefixes (fun m ->
        Sharding.Originate (stub_arr.(m mod Array.length stub_arr), scale_prefix m))
  in
  let phases =
    [
      { Sharding.commands = load_cmds; measured = None };
      { Sharding.commands = [ Sharding.Originate (origin, prefix) ]; measured = Some prefix };
      { Sharding.commands = [ Sharding.Withdraw (origin, prefix) ]; measured = Some prefix };
    ]
  in
  let t0 = clock () in
  let r =
    Sharding.run ~shards ~partition_seed:seed ~budget:load_max_events ~clock ~config ~seed
      ~phases spec
  in
  let wall = clock () -. t0 in
  let phase k = List.nth_opt r.Sharding.phases k in
  let load_updates =
    match phase 0 with Some p -> p.Sharding.collector_updates | None -> 0
  in
  let withdrawal_m = Option.bind (phase 2) (fun p -> p.Sharding.measurement) in
  let withdrawal =
    {
      seconds =
        (match withdrawal_m with
        | Some { Convergence.convergence = Some c; _ } -> Engine.Time.to_sec_f c
        | Some _ | None -> nan);
      changes = (match withdrawal_m with Some m -> m.Convergence.changes | None -> 0);
      collector_updates =
        (match phase 2 with Some p -> p.Sharding.collector_updates | None -> 0);
      restore_mean = nan;
      restore_max = nan;
      metrics = r.Sharding.metrics;
    }
  in
  let stat = Gc.stat () in
  let intern = Bgp.Attrs.intern_stats () in
  ( {
      ases = total;
      links = List.length (Topology.Spec.links spec);
      prefixes;
      sdn_members = sdn;
      load_updates;
      (* sharded phases interleave at the epoch loop; report whole-run
         host seconds rather than a per-phase split *)
      load_seconds = wall;
      updates_per_sec = (if wall > 0.0 then float_of_int load_updates /. wall else nan);
      load_settled = phase 0 <> None;
      withdrawal;
      rib_routes = r.Sharding.rib_routes;
      adj_in_routes = r.Sharding.adj_in_routes;
      live_words = stat.Gc.live_words;
      peak_words = stat.Gc.top_heap_words;
      distinct_attrs = intern.Bgp.Attrs.distinct_full;
    },
    r )

let scale_run ?(tier1 = 5) ?(tier2 = 40) ?(stubs = 455) ?(prefixes = 1000) ?(sdn = 0)
    ?(load_max_events = 20_000_000) ?phase_wall_s ?(clock = Sys.time) ?shards ~seed ~config
    () =
  match shards with
  | Some shards ->
    if phase_wall_s <> None then
      invalid_arg "Experiments.scale_run: phase_wall_s is not supported with ~shards";
    fst
      (scale_shard_run ~tier1 ~tier2 ~stubs ~prefixes ~sdn ~load_max_events ~shards ~clock
         ~seed ~config ())
  | None ->
  let total = tier1 + tier2 + stubs in
  let spec = Topology.Caida.generate ~tier1 ~tier2 ~stubs (Engine.Rng.create seed) in
  let stub_list = Topology.Caida.stub_asns ~tier1 ~tier2 ~stubs in
  let origin = List.hd stub_list in
  let members = choose_members ~spec ~k:sdn ~placement:Top_degree ~origin ~seed in
  let spec = Topology.Spec.with_sdn spec members in
  (* At scale the collector keeps counts and last-update instants only;
     the full event log would dominate the live heap. *)
  let config = { config with Config.collector_retention = Bgp.Collector.Counts_only } in
  let exp = Experiment.create ~config ~seed spec in
  let network = Experiment.network exp in
  let collector = Network.collector network in
  let stub_arr = Array.of_list stub_list in
  (* Load: [prefixes] origins round-robin across the stubs, one event
     budget for the whole propagation. *)
  let t0 = clock () in
  let deadline_from t = Option.map (fun w -> t +. w) phase_wall_s in
  let updates_before = Bgp.Collector.event_count collector in
  for m = 0 to prefixes - 1 do
    Network.originate network stub_arr.(m mod Array.length stub_arr) (scale_prefix m)
  done;
  let load_settled =
    bounded_settle ?deadline:(deadline_from t0) ~clock exp ~budget:load_max_events
  in
  let load_seconds = clock () -. t0 in
  let load_updates = Bgp.Collector.event_count collector - updates_before in
  let rib_routes, adj_in_routes =
    Net.Asn.Map.fold
      (fun _ r (loc, adj) -> (loc + Bgp.Router.loc_size r, adj + Bgp.Router.adj_in_size r))
      (Network.routers network) (0, 0)
  in
  (* The measured withdrawal: the origin announces its (plan) prefix and
     withdraws it, each phase run to quiescence under the same budget. *)
  let prefix = Experiment.default_prefix exp origin in
  ignore
    (bounded_measure
       ?deadline:(deadline_from (clock ()))
       ~clock exp ~budget:load_max_events ~prefix
       (fun () -> ignore (Experiment.announce exp origin)));
  let baseline = Bgp.Collector.event_count collector in
  let measured =
    bounded_measure
      ?deadline:(deadline_from (clock ()))
      ~clock exp ~budget:load_max_events ~prefix
      (fun () -> ignore (Experiment.withdraw exp origin))
  in
  let withdrawal =
    {
      seconds = Experiment.convergence_seconds measured;
      changes = measured.Convergence.changes;
      collector_updates = Bgp.Collector.event_count collector - baseline;
      restore_mean = nan;
      restore_max = nan;
      metrics = Experiment.final_metrics exp;
    }
  in
  let stat = Gc.stat () in
  let intern = Bgp.Attrs.intern_stats () in
  {
    ases = total;
    links = List.length (Topology.Spec.links spec);
    prefixes;
    sdn_members = sdn;
    load_updates;
    load_seconds;
    updates_per_sec =
      (if load_seconds > 0.0 then float_of_int load_updates /. load_seconds else nan);
    load_settled;
    withdrawal;
    rib_routes;
    adj_in_routes;
    live_words = stat.Gc.live_words;
    peak_words = stat.Gc.top_heap_words;
    distinct_attrs = intern.Bgp.Attrs.distinct_full;
  }

(* The convergence-vs-centralization curve at scale: the Fig. 2 shape on
   a CAIDA-generated graph with loaded tables, x = centralized member
   count (top-degree placement). *)
let scale_sweep ?pool ?(tier1 = 4) ?(tier2 = 24) ?(stubs = 72) ?(prefixes = 200)
    ?(ks = [ 0; 8; 16; 24 ]) ?(runs = 3) ?(seed = 97) ?(config = Config.default) () =
  let points =
    sweep_points ?pool ~runs ~seed
      ~run_at:(fun ~x ~seed ->
        (scale_run ~tier1 ~tier2 ~stubs ~prefixes ~sdn:(int_of_float x) ~seed ~config ())
          .withdrawal)
      (List.map float_of_int ks)
  in
  { label = Fmt.str "scale-caida%d-p%d" (tier1 + tier2 + stubs) prefixes; points }

(* --- Flap storm / route-flap damping ------------------------------------ *)

type flap_result = {
  collector_updates_total : int; (* monitoring-plane churn over the storm *)
  recovery_seconds : float; (* convergence after the final re-announcement *)
  suppressions_total : int; (* damping suppressions across all routers *)
  blackholed_after_storm : int; (* routers without the route once quiet *)
}

(* A flapping origin: [flaps] withdraw/re-announce cycles [gap_s] apart on
   a clique, with or without RFC 2439 damping at the receivers.  Damping
   trades churn for availability: suppressed routers stop relaying the
   flaps but keep blackholing until the penalty decays. *)
let flap_run ?(n = 8) ?(flaps = 4) ?(gap_s = 45.0) ~damping ~seed ~config () =
  let config =
    { config with Config.damping = (if damping then Some Bgp.Damping.default_config else None) }
  in
  let spec = Topology.Artificial.clique n in
  let exp = Experiment.create ~config ~seed spec in
  let origin = Topology.Artificial.asn 0 in
  let prefix = Experiment.default_prefix exp origin in
  ignore (Experiment.measure exp ~prefix (fun () -> ignore (Experiment.announce exp origin)));
  let network = Experiment.network exp in
  let sim = Experiment.sim exp in
  let collector = Network.collector network in
  let updates_before = Bgp.Collector.event_count collector in
  let gap = Engine.Time.of_sec_f gap_s in
  let final_event = ref Engine.Time.zero in
  for i = 1 to flaps do
    ignore (Experiment.withdraw exp origin);
    Network.run_until network (Engine.Time.add (Engine.Sim.now sim) gap);
    final_event := Engine.Sim.now sim;
    ignore (Experiment.announce exp origin);
    if i < flaps then Network.run_until network (Engine.Time.add (Engine.Sim.now sim) gap)
  done;
  (* the storm is over; measure recovery of the final announcement *)
  let final_event = !final_event in
  let settled = Network.settle network in
  ignore settled;
  let watcher = Experiment.watcher exp in
  let recovery_seconds =
    match Convergence.last_control_change watcher prefix with
    | Some t when Engine.Time.(t >= final_event) ->
      Engine.Time.to_sec_f (Engine.Time.diff t final_event)
    | Some _ | None -> 0.0
  in
  let suppressions_total =
    List.fold_left
      (fun acc asn ->
        match Network.router network asn with
        | Some r -> (
          match Bgp.Router.damping_state r with
          | Some d -> acc + Bgp.Damping.suppressions d
          | None -> acc)
        | None -> acc)
      0 (Network.asns network)
  in
  let blackholed_after_storm =
    List.length
      (List.filter
         (fun asn ->
           (not (Net.Asn.equal asn origin))
           &&
           match Network.router network asn with
           | Some r -> Bgp.Router.best r prefix = None
           | None -> false)
         (Network.asns network))
  in
  {
    collector_updates_total = Bgp.Collector.event_count collector - updates_before;
    recovery_seconds;
    suppressions_total;
    blackholed_after_storm;
  }

(* --- Sub-cluster resilience (design goal: disjoint sub-clusters survive
   intra-cluster link failure via legacy paths) -------------------------- *)

type subcluster_result = {
  reachable_before : bool;
  reachable_after_split : bool; (* after the intra-cluster bridge died *)
  reachable_after_recovery : bool;
  used_legacy_bridge : bool; (* the post-split path crossed the legacy world *)
}

(* Topology: two SDN islands (a-b, c-d) whose only intra-cluster link is
   b<->c, all four also connected through a legacy backbone.  Traffic
   a -> d uses the cluster; when b<->c dies the controller must fall back
   to a legacy-crossing path rather than blackholing. *)
let subcluster_resilience ?(seed = 29) ?(config = Config.default) () =
  let asn = Topology.Artificial.asn in
  let a, b, c, d = (asn 0, asn 1, asn 2, asn 3) in
  let l1, l2 = (asn 4, asn 5) in
  let nodes =
    List.map (fun x -> Topology.Spec.node x) [ a; b; c; d; l1; l2 ]
  in
  let links =
    [
      Topology.Spec.link a b;
      Topology.Spec.link b c; (* the intra-cluster bridge that will fail *)
      Topology.Spec.link c d;
      Topology.Spec.link b l1;
      Topology.Spec.link l1 l2;
      Topology.Spec.link l2 c;
      Topology.Spec.link a l1;
      Topology.Spec.link d l2;
    ]
  in
  let spec =
    Topology.Spec.with_sdn
      (Topology.Spec.make ~title:"subclusters" ~nodes ~links)
      [ a; b; c; d ]
  in
  let exp = Experiment.create ~config ~seed spec in
  let prefix = Experiment.default_prefix exp d in
  ignore (Experiment.measure exp ~prefix (fun () -> ignore (Experiment.announce exp d)));
  let reachable_before = Experiment.reachable exp ~src:a ~dst:d in
  ignore (Experiment.measure exp ~prefix (fun () -> Experiment.fail_link exp b c));
  let reachable_after_split = Experiment.reachable exp ~src:a ~dst:d in
  let used_legacy_bridge =
    match Experiment.walk exp ~src:a ~dst:d with
    | Monitor.Delivered path ->
      List.exists (fun hop -> Net.Asn.equal hop l1 || Net.Asn.equal hop l2) path
    | Monitor.Blackhole _ | Monitor.Loop _ | Monitor.Ttl_exceeded _ -> false
  in
  ignore (Experiment.measure exp ~prefix (fun () -> Experiment.recover_link exp b c));
  let reachable_after_recovery = Experiment.reachable exp ~src:a ~dst:d in
  { reachable_before; reachable_after_split; reachable_after_recovery; used_legacy_bridge }

(* --- Equality ------------------------------------------------------------

   Structural equality of sweep outputs — the parallel-vs-sequential
   differential check.  [Stdlib.compare] is used (rather than [=]) so
   NaN fields (restore_mean/restore_max on non-failover runs, unmeasured
   seconds) compare equal to themselves. *)

let equal_run_result (a : run_result) (b : run_result) = Stdlib.compare a b = 0

let equal_series (a : series) (b : series) = Stdlib.compare a b = 0

(* --- Rendering ------------------------------------------------------------ *)

let pp_series ppf s =
  Fmt.pf ppf "@[<v># %s@,%8s %8s %8s %8s %8s %8s %8s@," s.label "x" "min" "q1" "median" "q3"
    "max" "mean";
  List.iter
    (fun p ->
      Fmt.pf ppf "%8.1f %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f@," p.x p.box.Engine.Stats.minimum
        p.box.Engine.Stats.q1 p.box.Engine.Stats.median p.box.Engine.Stats.q3
        p.box.Engine.Stats.maximum p.box.Engine.Stats.mean)
    s.points;
  Fmt.pf ppf "@]"

(* CSV export: one row per (point, run) for external plotting. *)
let series_to_csv s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "label,x,run,seconds,changes,collector_updates\n";
  List.iter
    (fun p ->
      List.iteri
        (fun i r ->
          Buffer.add_string buf
            (Fmt.str "%s,%g,%d,%.6f,%d,%d\n" s.label p.x i r.seconds r.changes
               r.collector_updates))
        p.results)
    s.points;
  Buffer.contents buf

(* The linear-trend check for Fig. 2: slope of median convergence vs SDN
   count, and the fit quality. *)
let median_trend s =
  let pts = List.map (fun p -> (p.x, p.box.Engine.Stats.median)) s.points in
  let intercept, slope = Engine.Stats.linear_fit pts in
  let r2 = Engine.Stats.r_squared pts in
  (intercept, slope, r2)

(* --- Data-plane loss under convergence -----------------------------------

   The paper's user-visible symptom (the "video interruption") measured
   directly: seeded probe bursts fired against the fast-path snapshot
   every [interval_ms] after a link failure, classifying every scheduled
   (src, prefix) pair as delivered / black-holed / looped until the data
   plane carries everything again.  Bursts are pure snapshot walks —
   they inject nothing into the emulation, so the measured control-plane
   convergence is exactly what it would be without probing. *)

type loss_result = {
  converge_seconds : float; (* control-plane convergence of the event *)
  loss_seconds : float; (* event -> first loss-free burst *)
  blackhole_seconds : float; (* event -> last burst with a black-holed probe *)
  loop_seconds : float; (* event -> last burst with a looping probe *)
  probes : int; (* post-event probes injected *)
  lost : int; (* post-event probes not delivered *)
  max_loss_ratio : float; (* worst single-burst loss fraction *)
  residual_issues : int; (* verifier census of non-delivered pairs at run end *)
  loss_epochs : Trafficgen.epoch list; (* post-event bursts, oldest first *)
}

let rec drop k xs = if k <= 0 then xs else match xs with [] -> [] | _ :: tl -> drop (k - 1) tl

(* The shared measured core: announce [origin]'s prefix, settle, then
   fail the [origin]-[peer] link and sample probe bursts every
   [interval_ms] until a burst comes back loss-free (or [cap_s] of
   simulated time passes — a censored run, e.g. a single-homed origin
   that can never recover). *)
let loss_run_core ~spec ~origin ~peer ~per_prefix ~interval_ms ~cap_s ~seed ~config () =
  let exp = Experiment.create ~config ~seed spec in
  let prefix = Experiment.default_prefix exp origin in
  ignore (Experiment.measure exp ~prefix (fun () -> ignore (Experiment.announce exp origin)));
  let network = Experiment.network exp in
  let sim = Experiment.sim exp in
  (* only [origin]'s prefix is announced, so probe that one: the loss
     curve is the affected prefix's, not diluted by never-routable
     destinations *)
  let tg = Trafficgen.create ~seed ~dsts:[ origin ] network (Trafficgen.Per_prefix per_prefix) in
  (* pre-event baseline burst: the settled network should carry everything *)
  ignore (Trafficgen.burst tg);
  let baseline_epochs = List.length (Trafficgen.epochs tg) in
  let interval = Engine.Time.ms interval_ms in
  let cap = Engine.Time.of_sec_f cap_s in
  let event_time = ref Engine.Time.zero in
  let rec sample () =
    let e = Trafficgen.burst tg in
    let elapsed = Engine.Time.diff (Engine.Sim.now sim) !event_time in
    if Trafficgen.epoch_lost e > 0 && Engine.Time.(elapsed < cap) then
      ignore (Engine.Sim.schedule_after sim interval sample)
  in
  let measured =
    Experiment.measure exp ~prefix (fun () ->
        event_time := Engine.Sim.now sim;
        Experiment.fail_link exp origin peer;
        sample ())
  in
  let post = drop baseline_epochs (Trafficgen.epochs tg) in
  let rel (e : Trafficgen.epoch) =
    Engine.Time.to_sec_f (Engine.Time.diff e.Trafficgen.at !event_time)
  in
  let loss_seconds =
    match List.find_opt (fun e -> Trafficgen.epoch_lost e = 0) post with
    | Some e -> rel e
    | None -> ( (* censored: loss never cleared within the cap *)
      match List.rev post with e :: _ -> rel e | [] -> 0.0)
  in
  let last_with f =
    List.fold_left (fun acc e -> if f e then rel e else acc) 0.0 post
  in
  let blackhole_seconds = last_with (fun e -> e.Trafficgen.blackholed > 0) in
  let loop_seconds = last_with (fun e -> e.Trafficgen.looped > 0) in
  let probes = List.fold_left (fun a e -> a + e.Trafficgen.injected) 0 post in
  let lost = List.fold_left (fun a e -> a + Trafficgen.epoch_lost e) 0 post in
  let max_loss_ratio = List.fold_left (fun a e -> Float.max a (Trafficgen.loss_ratio e)) 0.0 post in
  let residual_issues =
    List.length (Fwd_verify.verify ~dsts:[ origin ] network).Fwd_verify.issues
  in
  {
    converge_seconds = Experiment.convergence_seconds measured;
    loss_seconds;
    blackhole_seconds;
    loop_seconds;
    probes;
    lost;
    max_loss_ratio;
    residual_issues;
    loss_epochs = post;
  }

(* Loss on the fail-over topology: the stub's primary path dies and the
   network must shift onto the strictly longer backup chain; [sdn] clique
   members (never the primary/backup anchors) are centralized. *)
let loss_run ?(per_prefix = 2) ?(interval_ms = 100) ?(cap_s = 600.0) ~n ~sdn ~seed ~config () =
  if sdn > n - 2 then invalid_arg "Experiments.loss_run: too many SDN members";
  let spec = Topology.Artificial.failover_backup_chain ~clique_size:n ~chain_len:2 () in
  let members = List.init sdn (fun i -> Topology.Artificial.asn (n - 1 - i)) in
  let spec = Topology.Spec.with_sdn spec members in
  let stub = Topology.Artificial.stub_asn spec in
  let primary = Topology.Artificial.asn 0 in
  loss_run_core ~spec ~origin:stub ~peer:primary ~per_prefix ~interval_ms ~cap_s ~seed ~config
    ()

type loss_point = { lp_x : float; lp_results : loss_result list }

type loss_series = { ls_label : string; ls_points : loss_point list }

(* The loss analogue of [sweep_points]: same flattened (x, trial) grid,
   same submission-order [Engine.Pool.map], so the parallel sweep is
   bit-identical to the sequential one. *)
let loss_sweep_points ?pool ~runs ~seed ~run_at xs =
  let tasks = List.concat_map (fun x -> List.init runs (fun i -> (x, seed + (1000 * i)))) xs in
  let eval (x, seed) = run_at ~x ~seed in
  let results =
    match pool with
    | Some pool -> Engine.Pool.map pool eval tasks
    | None -> List.map eval tasks
  in
  let rec regroup xs results =
    match xs with
    | [] -> []
    | x :: rest ->
      let mine, others = take_drop runs results in
      { lp_x = x; lp_results = mine } :: regroup rest others
  in
  regroup xs results

(* Fig. 2's companion curve: data-plane loss duration vs SDN membership
   on the fail-over clique. *)
let loss_sweep ?pool ?(n = 16) ?(runs = 5) ?(seed = 43) ?(per_prefix = 2) ?(interval_ms = 100)
    ?(config = Config.default) () =
  let points =
    loss_sweep_points ?pool ~runs ~seed
      ~run_at:(fun ~x ~seed ->
        loss_run ~per_prefix ~interval_ms ~n ~sdn:(int_of_float x) ~seed ~config ())
      (List.map float_of_int (default_fractions n))
  in
  { ls_label = Fmt.str "loss-failover-clique%d" n; ls_points = points }

(* The same curve on an Internet-like CAIDA graph: the origin is a
   multi-homed stub (so the failure is survivable), the failed link its
   first provider, members placed top-degree.  The spec is generated
   once from the base seed and shared read-only across runs. *)
let loss_sweep_caida ?pool ?(tier1 = 3) ?(tier2 = 8) ?(stubs = 20) ?(ks = [ 0; 2; 4; 6; 8 ])
    ?(runs = 3) ?(seed = 61) ?(per_prefix = 2) ?(interval_ms = 100) ?(config = Config.default)
    () =
  let spec0 = Topology.Caida.generate ~tier1 ~tier2 ~stubs (Engine.Rng.create seed) in
  let stub_list = Topology.Caida.stub_asns ~tier1 ~tier2 ~stubs in
  let origin =
    match
      List.find_opt (fun a -> List.length (Topology.Spec.neighbors spec0 a) >= 2) stub_list
    with
    | Some a -> a
    | None -> List.hd stub_list
  in
  let peer = List.hd (Topology.Spec.neighbors spec0 origin) in
  let points =
    loss_sweep_points ?pool ~runs ~seed:(seed + 1)
      ~run_at:(fun ~x ~seed ->
        let members =
          choose_members ~spec:spec0 ~k:(int_of_float x) ~placement:Top_degree ~origin ~seed
        in
        let spec = Topology.Spec.with_sdn spec0 members in
        loss_run_core ~spec ~origin ~peer ~per_prefix ~interval_ms ~cap_s:600.0 ~seed ~config
          ())
      (List.map float_of_int ks)
  in
  { ls_label = Fmt.str "loss-caida%d" (tier1 + tier2 + stubs); ls_points = points }

let equal_loss_series (a : loss_series) (b : loss_series) = Stdlib.compare a b = 0

let pp_loss_series ppf s =
  Fmt.pf ppf "@[<v># %s@,%8s %10s %10s %10s %10s %10s@," s.ls_label "x" "loss_s" "bh_s"
    "loop_s" "maxloss" "converge";
  List.iter
    (fun p ->
      let mean f =
        match p.lp_results with
        | [] -> nan
        | rs -> List.fold_left (fun a r -> a +. f r) 0.0 rs /. float_of_int (List.length rs)
      in
      Fmt.pf ppf "%8.1f %10.2f %10.2f %10.2f %10.4f %10.2f@," p.lp_x
        (mean (fun r -> r.loss_seconds))
        (mean (fun r -> r.blackhole_seconds))
        (mean (fun r -> r.loop_seconds))
        (mean (fun r -> r.max_loss_ratio))
        (mean (fun r -> r.converge_seconds)))
    s.ls_points;
  Fmt.pf ppf "@]"

let loss_series_to_csv s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "label,x,run,converge_seconds,loss_seconds,blackhole_seconds,loop_seconds,probes,lost,max_loss_ratio,residual_issues\n";
  List.iter
    (fun p ->
      List.iteri
        (fun i r ->
          Buffer.add_string buf
            (Fmt.str "%s,%g,%d,%.6f,%.6f,%.6f,%.6f,%d,%d,%.6f,%d\n" s.ls_label p.lp_x i
               r.converge_seconds r.loss_seconds r.blackhole_seconds r.loop_seconds r.probes
               r.lost r.max_loss_ratio r.residual_issues))
        p.lp_results)
    s.ls_points;
  Buffer.contents buf
