(* Deterministic discrete-event scheduler.

   Events fire in (time, insertion sequence) order, so two events scheduled
   for the same instant run in the order they were scheduled — this plus the
   splittable RNG makes whole experiment runs bit-reproducible.

   Observability: every event carries a category string; the scheduler
   counts scheduled/executed/reaped events per category in its metrics
   registry (deterministic — safe to export), and, when profiling is
   enabled, additionally accumulates per-category wall-clock self time in
   a separate table that deliberately stays OUT of the registry so metric
   exports remain byte-identical across runs of the same seed. *)

type key = { kclass : int; knode : int; kseq : int }

let default_key = { kclass = 0; knode = 0; kseq = 0 }

type event = {
  fire_at : Time.t;
  seq : int;
  key : key;
  category : string;
  span : int; (* causal span id, -1 when tracing is disabled *)
  mutable cancelled : bool;
  action : unit -> unit;
}

type handle = event

type profile_row = { category : string; events : int; seconds : float }

type prof_cell = { mutable p_events : int; mutable p_seconds : float }

type order = Seq | Canonical

type t = {
  order : order;
  mutable now : Time.t;
  mutable next_seq : int;
  mutable executed : int;
  queue : event Heap.t;
  rng : Rng.t;
  trace : Trace.t;
  causal : Causal.t;
  metrics : Metrics.t;
  mutable profiling : bool;
  profile : (string, prof_cell) Hashtbl.t;
  scheduled_by : (string, Metrics.Counter.t) Hashtbl.t;
  executed_by : (string, Metrics.Counter.t) Hashtbl.t;
  reaped : Metrics.Counter.t;
  mutable on_wake : (unit -> unit) list;
}

let compare_event a b =
  let c = Time.compare a.fire_at b.fire_at in
  if c <> 0 then c else compare a.seq b.seq

(* Canonical order is independent of the local scheduling sequence for
   keyed events: cross-shard deliveries carry a (class, node, channel-seq)
   key that every partitioning assigns identically, so the merged event
   order matches the single-shard run regardless of how work was split. *)
let compare_event_canonical a b =
  let c = Time.compare a.fire_at b.fire_at in
  if c <> 0 then c
  else
    let c = compare a.key.kclass b.key.kclass in
    if c <> 0 then c
    else
      let c = compare a.key.knode b.key.knode in
      if c <> 0 then c
      else
        let c = compare a.key.kseq b.key.kseq in
        if c <> 0 then c else compare a.seq b.seq

let dummy_event =
  {
    fire_at = Time.zero;
    seq = -1;
    key = default_key;
    category = "";
    span = -1;
    cancelled = true;
    action = ignore;
  }

let create ?(order = Seq) ?(seed = 0) ?(trace = true) ?(causal = Causal.Disabled)
    ?(profiling = false) () =
  let metrics = Metrics.create () in
  let cmp = match order with Seq -> compare_event | Canonical -> compare_event_canonical in
  {
    order;
    now = Time.zero;
    next_seq = 0;
    executed = 0;
    queue = Heap.create ~capacity:1024 ~dummy:dummy_event cmp;
    rng = Rng.create seed;
    trace = Trace.create ~enabled:trace ();
    causal = Causal.create ~mode:causal ~seed ();
    metrics;
    profiling;
    profile = Hashtbl.create 16;
    scheduled_by = Hashtbl.create 16;
    executed_by = Hashtbl.create 16;
    reaped =
      Metrics.counter metrics ~help:"cancelled events reaped from the queue"
        "sim_events_cancelled_total";
    on_wake = [];
  }

let now t = t.now

let order t = t.order

let rng t = t.rng

let trace t = t.trace

let causal t = t.causal

let annotate t ~category ?node ?label () =
  Causal.annotate t.causal ~category ?node ?label ~at:t.now ()

let with_span t ~category ?node ?label f =
  Causal.with_span t.causal ~category ?node ?label ~at:t.now f

let metrics t = t.metrics

let pending t = Heap.length t.queue

let executed t = t.executed

let set_profiling t flag = t.profiling <- flag

let profiling t = t.profiling

let profile t =
  Hashtbl.fold
    (fun category cell acc ->
      { category; events = cell.p_events; seconds = cell.p_seconds } :: acc)
    t.profile []
  |> List.sort (fun a b -> String.compare a.category b.category)

let pp_profile ppf t =
  Fmt.pf ppf "%-24s %10s %12s@." "category" "events" "self-s";
  List.iter
    (fun r -> Fmt.pf ppf "%-24s %10d %12.6f@." r.category r.events r.seconds)
    (profile t)

let category_counter cache metrics name category =
  match Hashtbl.find_opt cache category with
  | Some c -> c
  | None ->
    let c = Metrics.counter metrics ~labels:[ ("category", category) ] name in
    Hashtbl.replace cache category c;
    c

let schedule_at ?(category = "event") ?(key = default_key) t fire_at action =
  if Time.(fire_at < t.now) then
    invalid_arg
      (Fmt.str "Sim.schedule_at: %a is in the past (now %a)" Time.pp fire_at Time.pp t.now);
  let span = Causal.on_schedule t.causal ~category ~queued_at:t.now in
  let ev = { fire_at; seq = t.next_seq; key; category; span; cancelled = false; action } in
  t.next_seq <- t.next_seq + 1;
  Metrics.Counter.inc
    (category_counter t.scheduled_by t.metrics "sim_events_scheduled_total" category);
  let was_empty = Heap.length t.queue = 0 in
  Heap.push t.queue ev;
  (* Notify after the push so a hook's own scheduling sees a non-empty
     queue and cannot re-trigger the transition. *)
  if was_empty then List.iter (fun f -> f ()) t.on_wake;
  ev

let schedule_after ?category ?key t span action =
  schedule_at ?category ?key t (Time.add t.now span) action

let on_wake t f = t.on_wake <- t.on_wake @ [ f ]

let cancel ev = ev.cancelled <- true

let cancelled ev = ev.cancelled

let note_reaped t = Metrics.Counter.inc t.reaped

let run_action t ev =
  if t.profiling then begin
    let t0 = Sys.time () in
    ev.action ();
    let dt = Sys.time () -. t0 in
    let cell =
      match Hashtbl.find_opt t.profile ev.category with
      | Some c -> c
      | None ->
        let c = { p_events = 0; p_seconds = 0.0 } in
        Hashtbl.replace t.profile ev.category c;
        c
    in
    cell.p_events <- cell.p_events + 1;
    cell.p_seconds <- cell.p_seconds +. dt
  end
  else ev.action ()

let execute t ev =
  t.now <- ev.fire_at;
  t.executed <- t.executed + 1;
  Metrics.Counter.inc
    (category_counter t.executed_by t.metrics "sim_events_executed_total" ev.category);
  if Causal.enabled t.causal then begin
    Causal.on_execute t.causal ev.span ~fired_at:ev.fire_at;
    Fun.protect
      ~finally:(fun () -> Causal.clear_current t.causal)
      (fun () -> run_action t ev)
  end
  else run_action t ev

(* Run one event; returns false when the queue is exhausted. *)
let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev when ev.cancelled ->
    note_reaped t;
    step t
  | Some ev ->
    execute t ev;
    true

type run_result = Exhausted | Reached_limit | Reached_time of Time.t

let run ?until ?(max_events = max_int) t =
  let rec loop remaining =
    if remaining = 0 then Reached_limit
    else
      match Heap.peek t.queue with
      | None -> Exhausted
      | Some ev when ev.cancelled ->
        ignore (Heap.pop t.queue);
        note_reaped t;
        loop remaining
      | Some ev -> (
        match until with
        | Some stop when Time.(ev.fire_at > stop) ->
          t.now <- stop;
          Reached_time stop
        | Some _ | None ->
          if step t then loop (remaining - 1) else Exhausted)
  in
  loop max_events

(* Epoch-horizon run for sharded execution: strictly-before semantics, and
   the clock stays at the last executed event so messages injected at the
   barrier (which arrive at or after the horizon) are still in the future. *)
let run_before ?(max_events = max_int) t ~horizon =
  let rec loop remaining =
    if remaining = 0 then Reached_limit
    else
      match Heap.peek t.queue with
      | None -> Exhausted
      | Some ev when ev.cancelled ->
        ignore (Heap.pop t.queue);
        note_reaped t;
        loop remaining
      | Some ev when Time.(ev.fire_at >= horizon) -> Reached_time horizon
      | Some _ -> if step t then loop (remaining - 1) else Exhausted
  in
  loop max_events

let rec next_event_time t =
  match Heap.peek t.queue with
  | None -> None
  | Some ev when ev.cancelled ->
    ignore (Heap.pop t.queue);
    note_reaped t;
    next_event_time t
  | Some ev -> Some ev.fire_at

let log t ~node ~category ?level msg =
  Trace.record t.trace ~time:t.now ~node ~category ?level msg

let logf t ~node ~category ?level fmt = Fmt.kstr (log t ~node ~category ?level) fmt
