examples/quickstart.ml: Core Fmt
