(* An Internet-like experiment: a synthetic CAIDA-style AS graph
   (tier-1 clique, multi-homed transit, stubs), with two SDN islands
   placed in the transit tier and controlled by one IDR controller.

   Demonstrates: dataset-style topology generation, valley-free policy
   auto-configuration, the controller's disjoint sub-cluster support, and
   convergence measurement on a realistic graph.

     dune exec examples/internet_subclusters.exe *)

let () =
  let tier1 = 3 and tier2 = 8 and stubs = 14 in
  let rng = Engine.Rng.create 2024 in
  let spec = Topology.Caida.generate ~tier1 ~tier2 ~stubs rng in
  Fmt.pr "synthetic CAIDA-style topology: %d ASes, %d links@."
    (Topology.Spec.node_count spec) (Topology.Spec.link_count spec);
  (* Two SDN islands in the transit tier: pick two disjoint *adjacent*
     tier-2 pairs so each island is an intra-connected sub-cluster, and
     the islands reach each other only over the legacy world. *)
  let t2 = List.init tier2 (fun i -> Topology.Artificial.asn (tier1 + i)) in
  let adjacent a b = List.exists (Net.Asn.equal b) (Topology.Spec.neighbors spec a) in
  let disjoint_from used a b =
    List.for_all (fun u -> (not (adjacent u a)) && not (adjacent u b)) used
  in
  let rec pick_pairs acc used = function
    | [] -> List.rev acc
    | a :: rest when List.length acc < 2 && not (List.memq a used) -> (
      match
        List.find_opt
          (fun b -> (not (List.memq b used)) && adjacent a b && disjoint_from used a b)
          rest
      with
      | Some b -> pick_pairs ((a, b) :: acc) (a :: b :: used) rest
      | None -> pick_pairs acc used rest)
    | _ :: rest -> pick_pairs acc used rest
  in
  let pairs = pick_pairs [] [] t2 in
  let islands = List.concat_map (fun (a, b) -> [ a; b ]) pairs in
  let spec = Topology.Spec.with_sdn spec islands in
  let exp = Framework.Experiment.create ~seed:5 spec in
  (match Framework.Network.controller (Framework.Experiment.network exp) with
  | Some ctrl ->
    let g = Cluster_ctl.Controller.switch_graph ctrl in
    Fmt.pr "SDN cluster: %d members in %d sub-cluster(s)@."
      (List.length (Cluster_ctl.Controller.members ctrl))
      (List.length (Net.Graph.components g))
  | None -> assert false);
  (* a stub announces and withdraws its prefix; measure both *)
  let origin = Topology.Artificial.asn (tier1 + tier2) (* first stub *) in
  let prefix = Framework.Experiment.default_prefix exp origin in
  let m_up =
    Framework.Experiment.measure exp ~prefix (fun () ->
        ignore (Framework.Experiment.announce exp origin))
  in
  Fmt.pr "@.announcement by %a: converged in %.2f s (%d best-route changes)@." Net.Asn.pp origin
    (Framework.Experiment.convergence_seconds m_up)
    m_up.Framework.Convergence.changes;
  (* verify global reachability with valley-free policies in force *)
  let matrix =
    Framework.Monitor.connectivity_matrix (Framework.Experiment.network exp) ~origins:[ origin ]
  in
  let ok = List.length (List.filter (fun (_, _, r) -> r) matrix) in
  Fmt.pr "reachability to %a: %d/%d ASes@." Net.Asn.pp origin ok (List.length matrix);
  let m_down =
    Framework.Experiment.measure exp ~prefix (fun () ->
        ignore (Framework.Experiment.withdraw exp origin))
  in
  Fmt.pr "withdrawal: converged in %.2f s (%d changes)@."
    (Framework.Experiment.convergence_seconds m_down)
    m_down.Framework.Convergence.changes;
  (* log-file analysis, as the framework's tooling would do it *)
  let entries =
    Framework.Logparse.of_trace (Engine.Sim.trace (Framework.Experiment.sim exp))
  in
  Fmt.pr "@.trace: %d log lines; busiest nodes:@." (List.length entries);
  let by_node = Framework.Logparse.by_node entries in
  let top =
    List.sort (fun (_, a) (_, b) -> Int.compare b a) by_node |> List.filteri (fun i _ -> i < 5)
  in
  List.iter (fun (node, count) -> Fmt.pr "  %-12s %d@." node count) top
