(** The monitoring route collector: peers with every router, accepts all
    updates, records them with timestamps, never advertises. *)

type action = Announce of Attrs.t | Withdraw

type event = { time : Engine.Time.t; peer : Net.Asn.t; prefix : Net.Ipv4.prefix; action : action }

type retention = Full | Counts_only
(** [Full] keeps the complete event log (dumps, per-prefix histories).
    [Counts_only] retains only the total count and per-prefix last-update
    instants — constant memory per prefix, what convergence detection
    needs — for Internet-scale runs where the log would dominate the
    heap. *)

type t

val create :
  ?retention:retention ->
  sim:Engine.Sim.t ->
  asn:Net.Asn.t ->
  node_id:int ->
  router_id:Net.Ipv4.addr ->
  send:(dst:int -> Message.t -> bool) ->
  unit ->
  t
(** [retention] defaults to [Full]. *)

val asn : t -> Net.Asn.t

val node : t -> Engine.Node.t
(** The runtime node; a crash loses the event log (a real collector
    outage leaves the same gap in the monitoring feed). *)

val node_id : t -> int

val add_peer : t -> peer_asn:Net.Asn.t -> peer_node:int -> unit

val handle_message : t -> from:int -> Message.t -> unit
(** Responds to OPENs and records updates. *)

val events : t -> event list
(** Oldest first.  Empty under [Counts_only] retention. *)

val event_count : t -> int

val events_for : t -> Net.Ipv4.prefix -> event list

val last_update_time : t -> Engine.Time.t option

val last_update_for : t -> Net.Ipv4.prefix -> Engine.Time.t option

val last_updates : t -> (Net.Ipv4.prefix * Engine.Time.t) list
(** Per-prefix most recent update instant, ascending by prefix.
    Maintained under every retention mode. *)

val updates_since : t -> Engine.Time.t -> int

val clear : t -> unit

val dump : t -> string
(** MRT-inspired text dump:
    ["<time_us>|<peer>|A|<prefix>|<asn asn ...>"] / ["...|W|<prefix>|"]. *)

val parse_dump : string -> (event list, string) result
(** Parse a dump back into events (attributes carry the AS path only). *)

val rate_buckets : ?bucket:Engine.Time.span -> t -> (Engine.Time.t * int) list
(** Update counts per time bucket (default 1 s), sorted by time. *)

val pp_event : Format.formatter -> event -> unit
