lib/net/graph.ml: Engine Float Fmt Hashtbl Int List Option Queue
