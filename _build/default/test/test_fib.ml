(* Net.Fib: longest-prefix-match semantics, checked against a reference
   linear scan. *)

open Net

let p s = Option.get (Ipv4.prefix_of_string s)

let a s = Option.get (Ipv4.addr_of_string s)

let test_basic_lpm () =
  let fib = Fib.create () in
  Fib.insert fib (p "10.0.0.0/8") "eight";
  Fib.insert fib (p "10.1.0.0/16") "sixteen";
  Fib.insert fib (p "10.1.2.0/24") "twentyfour";
  Alcotest.(check (option string)) "deepest" (Some "twentyfour")
    (Fib.lookup_value fib (a "10.1.2.3"));
  Alcotest.(check (option string)) "middle" (Some "sixteen")
    (Fib.lookup_value fib (a "10.1.9.1"));
  Alcotest.(check (option string)) "outer" (Some "eight")
    (Fib.lookup_value fib (a "10.200.0.1"));
  Alcotest.(check (option string)) "miss" None (Fib.lookup_value fib (a "11.0.0.1"))

let test_default_route () =
  let fib = Fib.create () in
  Fib.insert fib (p "0.0.0.0/0") "default";
  Fib.insert fib (p "10.0.0.0/8") "ten";
  Alcotest.(check (option string)) "specific beats default" (Some "ten")
    (Fib.lookup_value fib (a "10.0.0.1"));
  Alcotest.(check (option string)) "default catches rest" (Some "default")
    (Fib.lookup_value fib (a "99.0.0.1"))

let test_replace_and_remove () =
  let fib = Fib.create () in
  Fib.insert fib (p "10.0.0.0/8") 1;
  Fib.insert fib (p "10.0.0.0/8") 2;
  Alcotest.(check int) "size after replace" 1 (Fib.size fib);
  Alcotest.(check (option int)) "replaced" (Some 2) (Fib.lookup_value fib (a "10.0.0.1"));
  Fib.remove fib (p "10.0.0.0/8");
  Alcotest.(check int) "size after remove" 0 (Fib.size fib);
  Alcotest.(check (option int)) "removed" None (Fib.lookup_value fib (a "10.0.0.1"));
  (* removing an absent prefix is a no-op *)
  Fib.remove fib (p "10.0.0.0/8")

let test_exact_find () =
  let fib = Fib.create () in
  Fib.insert fib (p "10.1.0.0/16") "x";
  Alcotest.(check (option string)) "exact hit" (Some "x") (Fib.find fib (p "10.1.0.0/16"));
  Alcotest.(check (option string)) "different length misses" None
    (Fib.find fib (p "10.1.0.0/24"))

let test_entries_sorted () =
  let fib = Fib.create () in
  List.iter (fun s -> Fib.insert fib (p s) s) [ "10.1.0.0/16"; "9.0.0.0/8"; "10.0.0.0/8" ];
  Alcotest.(check (list string)) "sorted entries" [ "9.0.0.0/8"; "10.0.0.0/8"; "10.1.0.0/16" ]
    (List.map snd (Fib.entries fib))

let test_clear () =
  let fib = Fib.create () in
  Fib.insert fib (p "10.0.0.0/8") 1;
  Fib.clear fib;
  Alcotest.(check int) "cleared" 0 (Fib.size fib);
  Alcotest.(check (option int)) "empty lookup" None (Fib.lookup_value fib (a "10.0.0.1"))

(* Reference LPM: linear scan over all entries. *)
let reference_lookup entries addr =
  List.fold_left
    (fun best (pre, v) ->
      if Ipv4.mem addr pre then
        match best with
        | Some (bp, _) when Ipv4.prefix_len bp >= Ipv4.prefix_len pre -> best
        | _ -> Some (pre, v)
      else best)
    None entries

let gen_prefix =
  QCheck.Gen.(
    let* i = map Int32.of_int (int_range Int32.(to_int min_int) Int32.(to_int max_int)) in
    let* len = int_range 0 32 in
    return (Ipv4.prefix (Ipv4.addr_of_int32 i) len))

let prop_lpm_matches_reference =
  let gen =
    QCheck.Gen.(
      let* prefixes = list_size (int_range 0 30) gen_prefix in
      let* probes =
        list_size (int_range 1 20)
          (map
             (fun i -> Ipv4.addr_of_int32 (Int32.of_int i))
             (int_range Int32.(to_int min_int) Int32.(to_int max_int)))
      in
      return (prefixes, probes))
  in
  QCheck.Test.make ~name:"trie LPM matches linear-scan reference" ~count:300
    (QCheck.make ~print:(fun (ps, _) -> Fmt.str "%d prefixes" (List.length ps)) gen)
    (fun (prefixes, probes) ->
      let fib = Fib.create () in
      let entries = List.mapi (fun i pre -> (pre, i)) prefixes in
      (* Later inserts replace earlier ones for identical prefixes, so the
         reference must deduplicate keeping the last value. *)
      let dedup =
        List.fold_left
          (fun acc (pre, v) ->
            (pre, v) :: List.filter (fun (q, _) -> not (Ipv4.equal_prefix pre q)) acc)
          [] entries
      in
      List.iter (fun (pre, v) -> Fib.insert fib pre v) entries;
      List.for_all
        (fun probe ->
          let got = Fib.lookup_value fib probe in
          let want = Option.map snd (reference_lookup dedup probe) in
          got = want)
        probes)

let suite =
  [
    Alcotest.test_case "basic LPM" `Quick test_basic_lpm;
    Alcotest.test_case "default route" `Quick test_default_route;
    Alcotest.test_case "replace and remove" `Quick test_replace_and_remove;
    Alcotest.test_case "exact find" `Quick test_exact_find;
    Alcotest.test_case "entries sorted" `Quick test_entries_sorted;
    Alcotest.test_case "clear" `Quick test_clear;
    QCheck_alcotest.to_alcotest prop_lpm_matches_reference;
  ]
