(* BGP wire messages (at semantic granularity, not byte format). *)

type update = {
  announced : (Net.Ipv4.prefix * Attrs.t) list;
  withdrawn : Net.Ipv4.prefix list;
}

type t =
  | Open of { asn : Net.Asn.t; router_id : Net.Ipv4.addr; hold_time : int }
      (* proposed hold time in whole seconds; 0 disables liveness (RFC
         4271 permits 0 = "no keepalives on this session") *)
  | Keepalive
  | Update of update
  | Notification of string

let update ?(announced = []) ?(withdrawn = []) () = Update { announced; withdrawn }

let empty_update = { announced = []; withdrawn = [] }

let is_empty_update u = u.announced = [] && u.withdrawn = []

let update_size u = List.length u.announced + List.length u.withdrawn

let pp ppf = function
  | Open { asn; router_id; hold_time } ->
    Fmt.pf ppf "OPEN %a rid=%a hold=%ds" Net.Asn.pp asn Net.Ipv4.pp_addr router_id hold_time
  | Keepalive -> Fmt.string ppf "KEEPALIVE"
  | Update { announced; withdrawn } ->
    Fmt.pf ppf "UPDATE +[%a] -[%a]"
      Fmt.(list ~sep:comma (fun ppf (p, a) -> Fmt.pf ppf "%a{%a}" Net.Ipv4.pp_prefix p Attrs.pp a))
      announced
      Fmt.(list ~sep:comma Net.Ipv4.pp_prefix)
      withdrawn
  | Notification reason -> Fmt.pf ppf "NOTIFICATION %s" reason

(* Re-intern hash-consed attrs on the current domain (cross-shard receive
   path); identity for attr-free messages. *)
let rehash = function
  | Update { announced; withdrawn } ->
    Update
      { announced = List.map (fun (p, a) -> (p, Attrs.rehash a)) announced; withdrawn }
  | (Open _ | Keepalive | Notification _) as m -> m
