lib/engine/trace.ml: Fmt List String Time
