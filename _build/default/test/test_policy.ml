(* Bgp.Policy: import processing and the valley-free export matrix. *)

open Bgp.Policy

let me = Net.Asn.of_int 65000

let nh = Net.Ipv4.addr_of_octets 10 0 0 1

let prefix = Option.get (Net.Ipv4.prefix_of_string "100.64.0.0/24")

let attrs ?(path = [ 65001 ]) ?(communities = Bgp.Community.Set.empty) () =
  Bgp.Attrs.make ~as_path:(List.map Net.Asn.of_int path) ~communities ~next_hop:nh ()

let test_import_loop_rejected () =
  let p = make Customer in
  Alcotest.(check bool) "own ASN in path rejected" true
    (import p ~me ~prefix (attrs ~path:[ 65001; 65000; 65002 ] ()) = None);
  Alcotest.(check bool) "clean path accepted" true
    (import p ~me ~prefix (attrs ()) <> None)

let test_import_sets_local_pref () =
  List.iter
    (fun (rel, lp) ->
      match import (make rel) ~me ~prefix (attrs ()) with
      | Some a -> Alcotest.(check int) (relationship_to_string rel) lp a.Bgp.Attrs.local_pref
      | None -> Alcotest.fail "import rejected")
    [ (Customer, 130); (Sibling, 120); (Peer, 110); (Unrestricted, 100); (Provider, 90) ]

let test_import_prefix_filter () =
  let deny = make ~import_prefix_filter:(fun _ -> false) Customer in
  Alcotest.(check bool) "filtered" true (import deny ~me ~prefix (attrs ()) = None)

let test_import_no_advertise () =
  let p = make Customer in
  let a = attrs ~communities:(Bgp.Community.Set.singleton Bgp.Community.no_advertise) () in
  Alcotest.(check bool) "NO_ADVERTISE rejected" true (import p ~me ~prefix a = None)

let test_import_community_stamp () =
  let tag = Bgp.Community.make 65000 1 in
  let p = make ~import_community:tag Peer in
  match import p ~me ~prefix (attrs ()) with
  | Some a -> Alcotest.(check bool) "stamped" true (Bgp.Attrs.has_community a tag)
  | None -> Alcotest.fail "import rejected"

(* The valley-free matrix: rows = where the route came from, columns =
   where it would go. *)
let test_export_matrix () =
  let cases =
    [
      (* provenance, to_rel, allowed *)
      (Originated, Customer, true);
      (Originated, Peer, true);
      (Originated, Provider, true);
      (From Customer, Customer, true);
      (From Customer, Peer, true);
      (From Customer, Provider, true);
      (From Peer, Customer, true);
      (From Peer, Peer, false);
      (From Peer, Provider, false);
      (From Provider, Customer, true);
      (From Provider, Peer, false);
      (From Provider, Provider, false);
      (From Sibling, Peer, true);
      (From Unrestricted, Provider, true);
      (From Peer, Unrestricted, true);
    ]
  in
  List.iter
    (fun (provenance, to_rel, allowed) ->
      let name =
        Fmt.str "%s -> %s"
          (match provenance with
          | Originated -> "originated"
          | From r -> relationship_to_string r)
          (relationship_to_string to_rel)
      in
      Alcotest.(check bool) name allowed (export_allowed ~to_rel ~provenance))
    cases

let test_export_no_export_community () =
  let p = make Customer in
  let a = attrs ~communities:(Bgp.Community.Set.singleton Bgp.Community.no_export) () in
  Alcotest.(check bool) "NO_EXPORT blocked" true
    (export p ~provenance:Originated ~prefix a = None)

let test_export_prefix_filter () =
  let p = make ~export_prefix_filter:(fun _ -> false) Customer in
  Alcotest.(check bool) "filter blocks" true
    (export p ~provenance:Originated ~prefix (attrs ()) = None)

let test_export_passes_attrs_through () =
  let p = make Provider in
  match export p ~provenance:(From Customer) ~prefix (attrs ~path:[ 65009 ] ()) with
  | Some a ->
    Alcotest.(check (list int)) "path unchanged by export policy" [ 65009 ]
      (List.map Net.Asn.to_int (Bgp.Attrs.as_path a))
  | None -> Alcotest.fail "customer route must export to provider"

(* Gao-Rexford safety: a route never traverses customer->provider or
   peer after having gone "down" — equivalently an exported route's
   provenance/destination pair is always in the allowed matrix.  Here we
   check the matrix is downward-closed: if export to Provider is allowed,
   export to Customer must be too. *)
let prop_matrix_monotone =
  let arb_prov =
    QCheck.make
      ~print:(function Originated -> "orig" | From r -> relationship_to_string r)
      QCheck.Gen.(
        oneofl
          [ Originated; From Customer; From Provider; From Peer; From Sibling;
            From Unrestricted ])
  in
  QCheck.Test.make ~name:"export to provider implies export to customer" ~count:100 arb_prov
    (fun provenance ->
      (not (export_allowed ~to_rel:Provider ~provenance))
      || export_allowed ~to_rel:Customer ~provenance)

let suite =
  [
    Alcotest.test_case "import loop rejection" `Quick test_import_loop_rejected;
    Alcotest.test_case "import local pref" `Quick test_import_sets_local_pref;
    Alcotest.test_case "import prefix filter" `Quick test_import_prefix_filter;
    Alcotest.test_case "import NO_ADVERTISE" `Quick test_import_no_advertise;
    Alcotest.test_case "import community stamp" `Quick test_import_community_stamp;
    Alcotest.test_case "valley-free export matrix" `Quick test_export_matrix;
    Alcotest.test_case "export NO_EXPORT" `Quick test_export_no_export_community;
    Alcotest.test_case "export prefix filter" `Quick test_export_prefix_filter;
    Alcotest.test_case "export preserves attrs" `Quick test_export_passes_attrs_through;
    QCheck_alcotest.to_alcotest prop_matrix_monotone;
  ]
