test/test_bgp_attrs.ml: Alcotest Bgp List Net Option
