lib/topology/random_models.mli: Engine Spec
