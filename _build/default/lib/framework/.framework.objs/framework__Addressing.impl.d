lib/framework/addressing.ml: Fmt Hashtbl List Net Topology
