(* A switch's flow table: highest-priority matching rule wins; among equal
   priorities the longest prefix wins (the compiler sets priority = prefix
   length, so both tie-breaks agree). *)

type t = {
  mutable rules : Flow.rule list;
  mutable misses : int;
  misses_c : Engine.Metrics.Counter.t option;
}

(* [metrics]/[labels] are optional so tables can exist outside a simulation
   (tests, offline compilation); when given, misses become a labeled counter
   and occupancy a pull-style gauge synced at snapshot time. *)
let create ?metrics ?(labels = []) () =
  let misses_c =
    Option.map
      (fun m ->
        Engine.Metrics.counter m ~help:"lookups that matched no rule" ~labels
          "sdn_flow_table_misses_total")
      metrics
  in
  let t = { rules = []; misses = 0; misses_c } in
  Option.iter
    (fun m ->
      let g =
        Engine.Metrics.gauge m ~help:"installed flow rules" ~labels "sdn_flow_table_rules"
      in
      Engine.Metrics.on_collect m (fun () ->
          Engine.Metrics.Gauge.set g (float_of_int (List.length t.rules))))
    metrics;
  t

let rules t = t.rules

let size t = List.length t.rules

let misses t = t.misses

let add t rule =
  (* Add-or-replace on the (match, priority) key. *)
  t.rules <- rule :: List.filter (fun r -> not (Flow.same_match r rule)) t.rules

let delete t ~match_prefix =
  t.rules <-
    List.filter (fun r -> not (Net.Ipv4.equal_prefix r.Flow.match_prefix match_prefix)) t.rules

let delete_exact t rule = t.rules <- List.filter (fun r -> not (Flow.same_match r rule)) t.rules

(* Remove this very rule record (physical identity) — used by timeout
   expiry so that a same-key replacement installed later is never the
   victim of the old rule's timer. *)
let remove_physical t rule =
  let before = List.length t.rules in
  t.rules <- List.filter (fun r -> r != rule) t.rules;
  List.length t.rules < before

let mem_physical t rule = List.memq rule t.rules

let clear t = t.rules <- []

let lookup t addr =
  let candidates = List.filter (fun r -> Flow.matches r addr) t.rules in
  let better (a : Flow.rule) (b : Flow.rule) =
    if a.priority <> b.priority then a.priority > b.priority
    else Net.Ipv4.prefix_len a.match_prefix > Net.Ipv4.prefix_len b.match_prefix
  in
  match candidates with
  | [] ->
    t.misses <- t.misses + 1;
    Option.iter Engine.Metrics.Counter.inc t.misses_c;
    None
  | first :: rest ->
    let best = List.fold_left (fun acc r -> if better r acc then r else acc) first rest in
    best.Flow.packets <- best.Flow.packets + 1;
    Some best

let find t ~match_prefix =
  List.find_opt (fun r -> Net.Ipv4.equal_prefix r.Flow.match_prefix match_prefix) t.rules

let entries_sorted t =
  List.sort
    (fun (a : Flow.rule) (b : Flow.rule) ->
      if a.priority <> b.priority then Int.compare b.priority a.priority
      else Net.Ipv4.compare_prefix a.match_prefix b.match_prefix)
    t.rules

let pp ppf t =
  Fmt.pf ppf "@[<v>flow table (%d rules, %d misses)" (size t) t.misses;
  List.iter (fun r -> Fmt.pf ppf "@,  %a" Flow.pp r) (entries_sorted t);
  Fmt.pf ppf "@]"
