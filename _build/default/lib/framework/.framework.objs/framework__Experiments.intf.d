lib/framework/experiments.mli: Config Engine Format Net Topology
