(* Per-peer BGP session finite-state machine.

   The emulation keeps a deliberately collapsed version of the RFC 4271
   FSM: the TCP-level states (Connect/Active/OpenSent/OpenConfirm) fold
   into a single [Connect] state because the fabric either delivers the
   OPEN or it does not — there is no half-open TCP handshake to model.
   The observable states are

     Idle ──open──▶ Connect ──OPEN rcvd──▶ Established
       ▲               │  ▲                      │
       └───────────────┘  └──backoff retry       │
       ◀──────── hold expiry / NOTIFICATION ─────┘

   The router stores the two booleans it always stored ([open_sent],
   [established]); this module derives the FSM state from them and owns
   the deterministic exponential-backoff schedule used to retry a
   [Connect] that never completes. *)

type state = Idle | Connect | Established

let of_flags ~open_sent ~established =
  if established then Established else if open_sent then Connect else Idle

let to_string = function
  | Idle -> "idle"
  | Connect -> "connect"
  | Established -> "established"

(* Stable numeric encoding for the bgp_session_state gauge. *)
let to_int = function Idle -> 0 | Connect -> 1 | Established -> 2

let pp ppf s = Fmt.string ppf (to_string s)

(* Exponential-backoff schedule for session reconnects (Quagga's
   connect-retry with the usual doubling). *)
type backoff = {
  retry_initial : Engine.Time.span;
  retry_multiplier : float;
  retry_max : Engine.Time.span;
  max_attempts : int;  (** give up (stay Idle) after this many retries *)
}

let default_backoff =
  {
    retry_initial = Engine.Time.sec 1;
    retry_multiplier = 2.0;
    retry_max = Engine.Time.sec 32;
    max_attempts = 6;
  }

(* Delay before retry [attempt] (0-based): initial * multiplier^attempt,
   capped at [retry_max], multiplicatively jittered in [0.75, 1.0] from
   the supplied stream — deterministic for a fixed seed. *)
let delay b rng ~attempt =
  let scaled =
    Engine.Time.span_scale b.retry_initial (b.retry_multiplier ** float_of_int attempt)
  in
  let base = Engine.Time.min scaled b.retry_max in
  Engine.Rng.jitter_span rng base ~lo:0.75 ~hi:1.0
