lib/engine/time.ml: Fmt Int64 Stdlib
