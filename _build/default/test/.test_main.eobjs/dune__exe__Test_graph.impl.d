test/test_graph.ml: Alcotest Float Fmt Graph Hashtbl List Net QCheck QCheck_alcotest Queue
