(* iPlane Inter-PoP links dataset support.

   The iPlane "inter-PoP links" files (iplane.cs.washington.edu) list one
   link per line as two PoP identifiers and an optional measured latency:

     <pop1> <pop2> [latency_us]

   where a PoP id encodes an AS.  We emulate one router per AS, so PoPs
   collapse onto their AS: multiple PoP pairs between the same two ASes
   merge into one inter-AS link with the minimum latency.  Since no iPlane
   snapshot ships in the sealed environment, [generate] synthesizes PoP
   meshes with geographic latencies, exercising the same loader path. *)

type parse_error = { line : int; content : string; reason : string }

let pp_parse_error ppf e = Fmt.pf ppf "line %d (%S): %s" e.line e.content e.reason

(* PoP ids map to ASes as [asn = base + pop / pops_per_as]: iPlane ids are
   opaque; this fixed scheme keeps the loader deterministic and testable. *)
let pop_to_asn ?(pops_per_as = 4) pop_id =
  Net.Asn.of_int (Artificial.base_asn + (pop_id / pops_per_as))

let parse_line ?pops_per_as lineno line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then Ok None
  else
    let fields =
      String.split_on_char ' ' trimmed |> List.filter (fun s -> s <> "")
    in
    match fields with
    | [ a; b ] | [ a; b; _ ] -> (
      let latency =
        match fields with
        | [ _; _; l ] -> int_of_string_opt l
        | _ -> Some 5_000
      in
      match (int_of_string_opt a, int_of_string_opt b, latency) with
      | Some a, Some b, Some lat when a >= 0 && b >= 0 && lat >= 0 ->
        Ok (Some (pop_to_asn ?pops_per_as a, pop_to_asn ?pops_per_as b, lat))
      | _ -> Error { line = lineno; content = trimmed; reason = "bad PoP id or latency" })
    | _ -> Error { line = lineno; content = trimmed; reason = "expected: pop1 pop2 [latency_us]" }

let parse_string ?(title = "iplane") ?pops_per_as text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line ?pops_per_as lineno line with
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some l) -> go (lineno + 1) (l :: acc) rest
      | Error e -> Error e)
  in
  match go 1 [] lines with
  | Error e -> Error e
  | Ok raw ->
    (* Merge PoP-level links into AS-level links, keeping min latency. *)
    let best = Hashtbl.create 64 in
    List.iter
      (fun (a, b, lat) ->
        if not (Net.Asn.equal a b) then begin
          let key = if Net.Asn.compare a b <= 0 then (a, b) else (b, a) in
          match Hashtbl.find_opt best key with
          | Some prev when prev <= lat -> ()
          | Some _ | None -> Hashtbl.replace best key lat
        end)
      raw;
    let links =
      Hashtbl.fold (fun (a, b) lat acc -> Spec.link ~rel:Spec.Open ~delay_us:lat a b :: acc)
        best []
      |> List.sort (fun (l1 : Spec.link_spec) l2 ->
             let c = Net.Asn.compare l1.a l2.a in
             if c <> 0 then c else Net.Asn.compare l1.b l2.b)
    in
    let asns = Hashtbl.create 64 in
    List.iter
      (fun (l : Spec.link_spec) ->
        Hashtbl.replace asns l.a ();
        Hashtbl.replace asns l.b ())
      links;
    let nodes =
      Hashtbl.fold (fun asn () acc -> asn :: acc) asns []
      |> List.sort Net.Asn.compare
      |> List.map (fun asn -> Spec.node asn)
    in
    Ok (Spec.make ~title ~nodes ~links)

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string ~title:(Filename.basename path) text

(* Synthesize an iPlane-like inter-PoP file: [ases] ASes with
   [pops_per_as] PoPs each placed on the unit square; PoPs connect within
   their AS (backbone ring) and to geographically close foreign PoPs.
   Latency is distance-proportional (~1 ms per 0.05 units). *)
let generate_text ?(ases = 12) ?(pops_per_as = 4) rng =
  if ases < 2 || pops_per_as < 1 then invalid_arg "Iplane.generate_text";
  let total = ases * pops_per_as in
  let xs = Array.init total (fun _ -> Engine.Rng.float rng 1.0) in
  let ys = Array.init total (fun _ -> Engine.Rng.float rng 1.0) in
  let dist i j = sqrt (((xs.(i) -. xs.(j)) ** 2.0) +. ((ys.(i) -. ys.(j)) ** 2.0)) in
  let latency i j = int_of_float (dist i j /. 0.05 *. 1000.0) + 200 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# synthetic iPlane inter-PoP links: pop1 pop2 latency_us\n";
  let add i j = Buffer.add_string buf (Fmt.str "%d %d %d\n" i j (latency i j)) in
  (* Intra-AS PoP rings keep each AS's PoPs connected. *)
  for a = 0 to ases - 1 do
    let base = a * pops_per_as in
    for k = 0 to pops_per_as - 2 do
      add (base + k) (base + k + 1)
    done
  done;
  (* Inter-AS: each PoP links to its 2 nearest foreign PoPs. *)
  for i = 0 to total - 1 do
    let foreign =
      List.init total Fun.id
      |> List.filter (fun j -> j / pops_per_as <> i / pops_per_as)
      |> List.sort (fun j k -> Float.compare (dist i j) (dist i k))
    in
    List.iteri (fun rank j -> if rank < 2 then add i j) foreign
  done;
  Buffer.contents buf

let generate ?ases ?pops_per_as rng =
  let pops_per_as_v = Option.value pops_per_as ~default:4 in
  match
    parse_string ~title:"iplane-synth" ~pops_per_as:pops_per_as_v
      (generate_text ?ases ?pops_per_as rng)
  with
  | Ok spec -> spec
  | Error e -> failwith (Fmt.str "Iplane.generate: self-parse failed: %a" pp_parse_error e)
