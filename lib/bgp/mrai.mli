(** Per-peer outbound update scheduling under the
    MinRouteAdvertisementInterval: first change sends immediately and arms
    the timer; further changes coalesce until expiry; explicit withdrawals
    bypass the timer unless configured otherwise. *)

type pending = Announce of Attrs.t | Withdraw

type t

val create :
  Engine.Sim.t ->
  rng:Engine.Rng.t ->
  config:Config.t ->
  name:string ->
  send:(Message.update -> unit) ->
  t

val enqueue_announce : t -> Net.Ipv4.prefix -> Attrs.t -> unit

val enqueue_withdraw : t -> Net.Ipv4.prefix -> unit

val pending_count : t -> int

val flushes : t -> int
(** UPDATE messages emitted so far. *)

val is_throttled : t -> bool
(** True while the MRAI timer is running. *)

val reset : t -> unit
(** Drop pending changes and stop the timer (session reset). *)

type state
(** Opaque checkpoint of the pending set, armed expiry and jitter-stream
    position. *)

val state : t -> state

val restore : t -> state -> unit
(** Reinstall [state] into an instance created with the same config:
    re-arms the timer at its recorded absolute expiry. *)
