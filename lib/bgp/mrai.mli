(** Per-peer outbound update scheduling under the
    MinRouteAdvertisementInterval: first change sends immediately and arms
    the timer; further changes coalesce until expiry; explicit withdrawals
    bypass the timer unless configured otherwise. *)

type pending = Announce of Attrs.t | Withdraw

type t

val create :
  Engine.Sim.t ->
  rng:Engine.Rng.t ->
  config:Config.t ->
  name:string ->
  send:(Message.update -> unit) ->
  t

val enqueue_announce : t -> Net.Ipv4.prefix -> Attrs.t -> unit

val enqueue_withdraw : t -> Net.Ipv4.prefix -> unit

val set_on_dirty : t -> (unit -> unit) -> unit
(** Called (at most once per event) when the first change of a scheduler
    event is enqueued.  The owner records this instance as dirty and calls
    {!flush_event} at end of event, so all changes of one event leave as a
    single packed UPDATE.  Without a hook, every enqueue flushes
    immediately (the pre-batching behavior). *)

val flush_event : t -> unit
(** End-of-event flush: emit all enqueued changes as one UPDATE.  While
    the MRAI timer runs, only exempt withdrawals are sent (pending changes
    stay for timer expiry); the timer is armed only when throttle-subject
    changes were flushed.  Never crosses an MRAI boundary. *)

val pending_count : t -> int

val flushes : t -> int
(** UPDATE messages emitted so far. *)

val is_throttled : t -> bool
(** True while the MRAI timer is running. *)

val reset : t -> unit
(** Drop pending changes and stop the timer (session reset). *)

type state
(** Opaque checkpoint of the pending set, armed expiry and jitter-stream
    position. *)

val state : t -> state

val restore : t -> state -> unit
(** Reinstall [state] into an instance created with the same config:
    re-arms the timer at its recorded absolute expiry. *)
