test/test_liveness.ml: Alcotest Bgp Engine Framework Hashtbl Net Option Sim Time Topology
