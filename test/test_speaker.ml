(* Cluster_ctl.Speaker in isolation: session FSM, relaying, dedup. *)

let asn = Net.Asn.of_int

let member = asn 65010

let neighbor = asn 65001

let nh = Net.Ipv4.addr_of_octets 10 0 10 1

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let setup () =
  let sim = Engine.Sim.create () in
  let wire = ref [] in
  let speaker =
    Cluster_ctl.Speaker.create ~sim ~send_relay:(fun ~member ~neighbor msg ->
        wire := (member, neighbor, msg) :: !wire;
        true)
      ()
  in
  let updates = ref [] and sessions = ref [] in
  Cluster_ctl.Speaker.set_handlers speaker
    ~on_update:(fun ~member ~neighbor u -> updates := (member, neighbor, u) :: !updates)
    ~on_session:(fun ~member ~neighbor ~up -> sessions := (member, neighbor, up) :: !sessions);
  Cluster_ctl.Speaker.add_session speaker ~member ~neighbor ~member_addr:nh;
  (speaker, wire, updates, sessions)

let open_msg = Bgp.Message.Open { asn = neighbor; router_id = nh; hold_time = 0 }

let update_msg =
  Bgp.Message.Update
    { Bgp.Message.announced = [ (p "1.2.3.0/24", Bgp.Attrs.make ~as_path:[ neighbor ] ~next_hop:nh ()) ];
      withdrawn = [] }

let test_open_handshake_preserves_identity () =
  let speaker, wire, _, sessions = setup () in
  Cluster_ctl.Speaker.handle_relay speaker ~member ~neighbor open_msg;
  (match !wire with
  | [ (m, n, Bgp.Message.Open { asn = open_asn; _ }) ] ->
    Alcotest.(check int) "to the right member switch" 65010 (Net.Asn.to_int m);
    Alcotest.(check int) "toward neighbor" 65001 (Net.Asn.to_int n);
    Alcotest.(check int) "speaks AS the member" 65010 (Net.Asn.to_int open_asn)
  | _ -> Alcotest.fail "expected OPEN out");
  Alcotest.(check (list (triple int int bool))) "controller notified up"
    [ (65010, 65001, true) ]
    (List.map (fun (m, n, up) -> (Net.Asn.to_int m, Net.Asn.to_int n, up)) !sessions);
  Alcotest.(check bool) "established" true
    (Cluster_ctl.Speaker.session_established speaker ~member ~neighbor)

let test_update_relayed_to_controller () =
  let speaker, _, updates, _ = setup () in
  Cluster_ctl.Speaker.handle_relay speaker ~member ~neighbor open_msg;
  Cluster_ctl.Speaker.handle_relay speaker ~member ~neighbor update_msg;
  Alcotest.(check int) "one update" 1 (List.length !updates)

let test_update_before_open_dropped () =
  let speaker, _, updates, _ = setup () in
  Cluster_ctl.Speaker.handle_relay speaker ~member ~neighbor update_msg;
  Alcotest.(check int) "dropped when not established" 0 (List.length !updates)

let test_announce_dedup () =
  let speaker, wire, _, _ = setup () in
  Cluster_ctl.Speaker.handle_relay speaker ~member ~neighbor open_msg;
  let before = List.length !wire in
  let attrs = Bgp.Attrs.make ~as_path:[ member ] ~next_hop:nh () in
  Cluster_ctl.Speaker.announce speaker ~member ~neighbor (p "9.9.9.0/24") attrs;
  Cluster_ctl.Speaker.announce speaker ~member ~neighbor (p "9.9.9.0/24") attrs;
  Alcotest.(check int) "identical announcement suppressed" (before + 1) (List.length !wire);
  let attrs2 = Bgp.Attrs.prepend attrs (asn 65020) in
  Cluster_ctl.Speaker.announce speaker ~member ~neighbor (p "9.9.9.0/24") attrs2;
  Alcotest.(check int) "changed announcement sent" (before + 2) (List.length !wire)

let test_withdraw_only_if_advertised () =
  let speaker, wire, _, _ = setup () in
  Cluster_ctl.Speaker.handle_relay speaker ~member ~neighbor open_msg;
  let before = List.length !wire in
  Cluster_ctl.Speaker.withdraw speaker ~member ~neighbor (p "9.9.9.0/24");
  Alcotest.(check int) "nothing to withdraw" before (List.length !wire);
  let attrs = Bgp.Attrs.make ~as_path:[ member ] ~next_hop:nh () in
  Cluster_ctl.Speaker.announce speaker ~member ~neighbor (p "9.9.9.0/24") attrs;
  Cluster_ctl.Speaker.withdraw speaker ~member ~neighbor (p "9.9.9.0/24");
  Alcotest.(check int) "announce + withdraw" (before + 2) (List.length !wire);
  Alcotest.(check bool) "adj-out cleared" true
    (Cluster_ctl.Speaker.advertised speaker ~member ~neighbor (p "9.9.9.0/24") = None)

let test_session_down_clears_state () =
  let speaker, _, _, sessions = setup () in
  Cluster_ctl.Speaker.handle_relay speaker ~member ~neighbor open_msg;
  let attrs = Bgp.Attrs.make ~as_path:[ member ] ~next_hop:nh () in
  Cluster_ctl.Speaker.announce speaker ~member ~neighbor (p "9.9.9.0/24") attrs;
  Cluster_ctl.Speaker.session_down speaker ~member ~neighbor;
  Alcotest.(check bool) "down" false
    (Cluster_ctl.Speaker.session_established speaker ~member ~neighbor);
  Alcotest.(check bool) "adj-out flushed" true
    (Cluster_ctl.Speaker.advertised speaker ~member ~neighbor (p "9.9.9.0/24") = None);
  Alcotest.(check bool) "down notified" true
    (List.exists (fun (_, _, up) -> not up) !sessions)

let test_duplicate_session_rejected () =
  let speaker, _, _, _ = setup () in
  match Cluster_ctl.Speaker.add_session speaker ~member ~neighbor ~member_addr:nh with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate session must raise"

let suite =
  [
    Alcotest.test_case "open handshake + AS identity" `Quick test_open_handshake_preserves_identity;
    Alcotest.test_case "update relayed to controller" `Quick test_update_relayed_to_controller;
    Alcotest.test_case "update before open dropped" `Quick test_update_before_open_dropped;
    Alcotest.test_case "announce dedup" `Quick test_announce_dedup;
    Alcotest.test_case "withdraw only if advertised" `Quick test_withdraw_only_if_advertised;
    Alcotest.test_case "session down clears state" `Quick test_session_down_clears_state;
    Alcotest.test_case "duplicate session rejected" `Quick test_duplicate_session_rejected;
  ]
