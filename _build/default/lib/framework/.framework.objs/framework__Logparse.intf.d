lib/framework/logparse.mli: Engine Format Net
