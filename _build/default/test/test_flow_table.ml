(* Sdn.Flow and Sdn.Flow_table: rule matching, priorities, counters. *)

open Sdn

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let a s = Option.get (Net.Ipv4.addr_of_string s)

let rule ?priority prefix action = Flow.make ?priority ~match_prefix:(p prefix) action

let test_priority_wins () =
  let t = Flow_table.create () in
  Flow_table.add t (rule ~priority:1 "10.0.0.0/8" (Flow.Output 1));
  Flow_table.add t (rule ~priority:9 "10.0.0.0/8" (Flow.Output 2));
  match Flow_table.lookup t (a "10.1.1.1") with
  | Some r -> Alcotest.(check bool) "high priority" true (Flow.action_equal r.Flow.action (Flow.Output 2))
  | None -> Alcotest.fail "must match"

let test_longest_prefix_within_priority () =
  let t = Flow_table.create () in
  Flow_table.add t (rule ~priority:5 "10.0.0.0/8" (Flow.Output 1));
  Flow_table.add t (rule ~priority:5 "10.1.0.0/16" (Flow.Output 2));
  match Flow_table.lookup t (a "10.1.1.1") with
  | Some r -> Alcotest.(check bool) "longer match" true (Flow.action_equal r.Flow.action (Flow.Output 2))
  | None -> Alcotest.fail "must match"

let test_miss_counted () =
  let t = Flow_table.create () in
  Alcotest.(check bool) "miss" true (Flow_table.lookup t (a "9.9.9.9") = None);
  Alcotest.(check int) "miss counter" 1 (Flow_table.misses t)

let test_packet_counter () =
  let t = Flow_table.create () in
  Flow_table.add t (rule "10.0.0.0/8" (Flow.Output 1));
  ignore (Flow_table.lookup t (a "10.0.0.1"));
  ignore (Flow_table.lookup t (a "10.0.0.2"));
  match Flow_table.rules t with
  | [ r ] -> Alcotest.(check int) "two matches counted" 2 r.Flow.packets
  | _ -> Alcotest.fail "one rule expected"

let test_add_replaces_same_key () =
  let t = Flow_table.create () in
  Flow_table.add t (rule ~priority:5 "10.0.0.0/8" (Flow.Output 1));
  Flow_table.add t (rule ~priority:5 "10.0.0.0/8" (Flow.Output 7));
  Alcotest.(check int) "replaced" 1 (Flow_table.size t);
  match Flow_table.lookup t (a "10.0.0.1") with
  | Some r -> Alcotest.(check bool) "new action" true (Flow.action_equal r.Flow.action (Flow.Output 7))
  | None -> Alcotest.fail "must match"

let test_delete () =
  let t = Flow_table.create () in
  Flow_table.add t (rule ~priority:1 "10.0.0.0/8" (Flow.Output 1));
  Flow_table.add t (rule ~priority:2 "10.0.0.0/8" (Flow.Output 2));
  Flow_table.add t (rule "11.0.0.0/8" (Flow.Output 3));
  Flow_table.delete t ~match_prefix:(p "10.0.0.0/8");
  Alcotest.(check int) "both priorities deleted" 1 (Flow_table.size t);
  Alcotest.(check bool) "other remains" true (Flow_table.lookup t (a "11.0.0.1") <> None)

let test_drop_and_controller_actions () =
  let t = Flow_table.create () in
  Flow_table.add t (rule "10.0.0.0/8" Flow.Drop);
  Flow_table.add t (rule "11.0.0.0/8" Flow.To_controller);
  (match Flow_table.lookup t (a "10.0.0.1") with
  | Some { Flow.action = Flow.Drop; _ } -> ()
  | _ -> Alcotest.fail "drop rule");
  match Flow_table.lookup t (a "11.0.0.1") with
  | Some { Flow.action = Flow.To_controller; _ } -> ()
  | _ -> Alcotest.fail "controller rule"

(* Reference check: table lookup equals max over matching rules by
   (priority, prefix length). *)
let prop_lookup_matches_reference =
  let gen =
    QCheck.Gen.(
      let gen_rule =
        let* oct = int_range 0 255 in
        let* len = int_range 8 24 in
        let* prio = int_range 0 3 in
        let* port = int_range 1 5 in
        return
          (Flow.make ~priority:prio
             ~match_prefix:(Net.Ipv4.prefix (Net.Ipv4.addr_of_octets 10 oct 0 0) len)
             (Flow.Output port))
      in
      let* rules = list_size (int_range 0 15) gen_rule in
      let* o2 = int_range 0 255 in
      let* o3 = int_range 0 255 in
      return (rules, Net.Ipv4.addr_of_octets 10 o2 o3 1))
  in
  QCheck.Test.make ~name:"lookup = max by (priority, length)" ~count:300
    (QCheck.make ~print:(fun (rs, _) -> Fmt.str "%d rules" (List.length rs)) gen)
    (fun (rules, probe) ->
      let t = Flow_table.create () in
      List.iter (Flow_table.add t) rules;
      (* reference over the table's own rules (add dedups same-key) *)
      let matching = List.filter (fun r -> Flow.matches r probe) (Flow_table.rules t) in
      let better (x : Flow.rule) (y : Flow.rule) =
        if x.priority <> y.priority then x.priority > y.priority
        else Net.Ipv4.prefix_len x.match_prefix > Net.Ipv4.prefix_len y.match_prefix
      in
      let reference =
        List.fold_left
          (fun acc r -> match acc with None -> Some r | Some b -> if better r b then Some r else acc)
          None matching
      in
      let got = Flow_table.lookup t probe in
      match (got, reference) with
      | None, None -> true
      | Some g, Some r ->
        g.Flow.priority = r.Flow.priority
        && Net.Ipv4.prefix_len g.Flow.match_prefix = Net.Ipv4.prefix_len r.Flow.match_prefix
      | _ -> false)

let suite =
  [
    Alcotest.test_case "priority wins" `Quick test_priority_wins;
    Alcotest.test_case "longest prefix within priority" `Quick test_longest_prefix_within_priority;
    Alcotest.test_case "miss counted" `Quick test_miss_counted;
    Alcotest.test_case "packet counter" `Quick test_packet_counter;
    Alcotest.test_case "add replaces same key" `Quick test_add_replaces_same_key;
    Alcotest.test_case "delete by prefix" `Quick test_delete;
    Alcotest.test_case "drop and controller actions" `Quick test_drop_and_controller_actions;
    QCheck_alcotest.to_alcotest prop_lookup_matches_reference;
  ]
