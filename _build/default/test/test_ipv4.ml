(* Net.Ipv4: addresses, prefixes, containment, allocation. *)

open Net

let addr = Alcotest.testable Ipv4.pp_addr Ipv4.equal_addr

let prefix = Alcotest.testable Ipv4.pp_prefix Ipv4.equal_prefix

let a s = Option.get (Ipv4.addr_of_string s)

let p s = Option.get (Ipv4.prefix_of_string s)

let test_addr_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Ipv4.addr_to_string (a s)))
    [ "0.0.0.0"; "10.0.0.1"; "192.168.255.1"; "255.255.255.255"; "128.0.0.1" ]

let test_addr_parse_errors () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (Ipv4.addr_of_string s = None))
    [ ""; "10.0.0"; "10.0.0.256"; "10.0.0.-1"; "a.b.c.d"; "10.0.0.1.2" ]

let test_prefix_normalization () =
  Alcotest.check prefix "host bits cleared" (p "10.1.0.0/16")
    (Ipv4.prefix (a "10.1.2.3") 16);
  Alcotest.(check string) "/0 renders" "0.0.0.0/0" (Ipv4.prefix_to_string (p "1.2.3.4/0"))

let test_prefix_parse () =
  Alcotest.check prefix "bare addr is /32" (Ipv4.prefix (a "1.2.3.4") 32) (p "1.2.3.4");
  Alcotest.(check bool) "bad length" true (Ipv4.prefix_of_string "10.0.0.0/33" = None)

let test_mem () =
  Alcotest.(check bool) "inside" true (Ipv4.mem (a "10.1.2.3") (p "10.1.0.0/16"));
  Alcotest.(check bool) "outside" false (Ipv4.mem (a "10.2.0.1") (p "10.1.0.0/16"));
  Alcotest.(check bool) "/0 contains all" true (Ipv4.mem (a "200.1.1.1") (p "0.0.0.0/0"));
  Alcotest.(check bool) "/32 self" true (Ipv4.mem (a "9.9.9.9") (p "9.9.9.9/32"))

let test_subsumes () =
  Alcotest.(check bool) "outer/inner" true
    (Ipv4.subsumes ~outer:(p "10.0.0.0/8") ~inner:(p "10.5.0.0/16"));
  Alcotest.(check bool) "not subsumed" false
    (Ipv4.subsumes ~outer:(p "10.5.0.0/16") ~inner:(p "10.0.0.0/8"));
  Alcotest.(check bool) "equal subsumes" true
    (Ipv4.subsumes ~outer:(p "10.0.0.0/8") ~inner:(p "10.0.0.0/8"))

let test_subnets () =
  let subs = Ipv4.subnets (p "10.0.0.0/22") ~len:24 in
  Alcotest.(check (list prefix)) "four /24s"
    [ p "10.0.0.0/24"; p "10.0.1.0/24"; p "10.0.2.0/24"; p "10.0.3.0/24" ]
    subs

let test_hosts () =
  Alcotest.(check int) "/24 host count" 254 (Ipv4.host_count (p "10.0.0.0/24"));
  Alcotest.(check int) "/32 host count" 1 (Ipv4.host_count (p "10.0.0.1/32"));
  Alcotest.check addr "nth host" (a "10.0.0.10") (Ipv4.nth_host (p "10.0.0.0/24") 10)

let test_allocator () =
  let alloc = Ipv4.Allocator.create ~pool:(p "10.0.0.0/30") ~len:32 in
  Alcotest.(check int) "capacity" 4 (Ipv4.Allocator.capacity alloc);
  let all = List.init 4 (fun _ -> Ipv4.Allocator.next alloc) in
  Alcotest.(check (list prefix)) "sequential"
    [ p "10.0.0.0/32"; p "10.0.0.1/32"; p "10.0.0.2/32"; p "10.0.0.3/32" ]
    all;
  Alcotest.check_raises "exhausted" (Failure "Ipv4.Allocator: pool exhausted") (fun () ->
      ignore (Ipv4.Allocator.next alloc))

let gen_addr =
  QCheck.Gen.(map Int32.of_int (int_range Int32.(to_int min_int) Int32.(to_int max_int)))

let arb_addr = QCheck.make ~print:(fun i -> Ipv4.addr_to_string (Ipv4.addr_of_int32 i)) gen_addr

let prop_addr_string_roundtrip =
  QCheck.Test.make ~name:"addr to/of string roundtrip" ~count:500 arb_addr (fun i ->
      let addr = Ipv4.addr_of_int32 i in
      match Ipv4.addr_of_string (Ipv4.addr_to_string addr) with
      | Some back -> Ipv4.equal_addr addr back
      | None -> false)

let prop_prefix_contains_network =
  QCheck.Test.make ~name:"prefix contains its network address" ~count:500
    QCheck.(pair arb_addr (int_range 0 32))
    (fun (i, len) ->
      let pre = Ipv4.prefix (Ipv4.addr_of_int32 i) len in
      Ipv4.mem (Ipv4.prefix_network pre) pre)

let prop_subnets_subsumed =
  QCheck.Test.make ~name:"subnets are subsumed by their parent" ~count:200
    QCheck.(pair arb_addr (int_range 0 28))
    (fun (i, len) ->
      let parent = Ipv4.prefix (Ipv4.addr_of_int32 i) len in
      let sub_len = min 32 (len + 3) in
      List.for_all
        (fun inner -> Ipv4.subsumes ~outer:parent ~inner)
        (Ipv4.subnets parent ~len:sub_len))

let suite =
  [
    Alcotest.test_case "addr roundtrip" `Quick test_addr_roundtrip;
    Alcotest.test_case "addr parse errors" `Quick test_addr_parse_errors;
    Alcotest.test_case "prefix normalization" `Quick test_prefix_normalization;
    Alcotest.test_case "prefix parse" `Quick test_prefix_parse;
    Alcotest.test_case "mem" `Quick test_mem;
    Alcotest.test_case "subsumes" `Quick test_subsumes;
    Alcotest.test_case "subnets" `Quick test_subnets;
    Alcotest.test_case "hosts" `Quick test_hosts;
    Alcotest.test_case "allocator" `Quick test_allocator;
    QCheck_alcotest.to_alcotest prop_addr_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_prefix_contains_network;
    QCheck_alcotest.to_alcotest prop_subnets_subsumed;
  ]
