(* An OpenFlow switch standing as a cluster member AS's border device.

   Data packets are forwarded by flow-table lookup; table misses go to the
   controller as PACKET_INs.  BGP messages arriving from external (legacy)
   neighbors are not processed locally — the switch encapsulates them
   toward the cluster BGP speaker (BGP_RELAY), and relays the speaker's
   messages back out to the neighbors, exactly the control-plane relaying
   the paper describes.

   Failure domain: when [liveness] is configured the switch probes the
   controller with ECHO_REQUESTs and, after [fail_after] of control-plane
   silence, degrades into legacy fallback mode — a lowest-priority
   default route toward a surviving legacy neighbor (the OSHI-style
   "legacy plane stays live" answer to controller death).  Installed
   flow rules keep expiring on their idle/hard timeouts, so stale SDN
   paths decay onto the fallback route instead of blackholing.  The
   switch leaves fallback only on the controller's RESYNC_DONE, sent
   after the restarted controller has replayed speaker state and
   reinstalled the member's flows. *)

type liveness = {
  echo_interval : Engine.Time.span;  (* ECHO_REQUEST probe period *)
  fail_after : Engine.Time.span;  (* control silence before fallback *)
}

type stats = {
  mutable forwarded : int;
  mutable to_controller : int;
  mutable dropped : int;
  mutable relayed_in : int;
  mutable relayed_out : int;
  mutable flow_mods : int;
  mutable relay_drops : int; (* BGP relays discarded while degraded *)
}

type t = {
  sim : Engine.Sim.t;
  node : Engine.Node.t;
  asn : Net.Asn.t;
  node_id : int;
  table : Flow_table.t;
  liveness : liveness option;
  fallback_port : unit -> Flow.port option;
  on_relay_drop : unit -> unit;
  send_control : Openflow.t -> bool;
  send_data : dst:int -> Net.Packet.t -> bool;
  send_bgp : dst:int -> Bgp.Message.t -> bool;
  asn_of_node : int -> Net.Asn.t option;
  node_of_asn : Net.Asn.t -> int option;
  is_local : Net.Ipv4.addr -> bool;
  deliver_local : Net.Packet.t -> unit;
  stats : stats;
  mutable last_ctrl_seen : Engine.Time.t;
  mutable fallback : Flow.rule option; (* the installed legacy default route *)
  mutable supervise : Engine.Timer.t option;
  mutable failovers_c : Engine.Metrics.Counter.t option; (* lazy *)
  expired_by : (string, Engine.Metrics.Counter.t) Hashtbl.t; (* lazy, by reason *)
}

let log t fmt = Engine.Sim.logf t.sim ~node:(Net.Asn.to_string t.asn) ~category:"switch" fmt

(* rules, index of the fallback rule within them (if active), last
   control-plane contact. *)
type Engine.Node.blob +=
  | Switch_state of Flow.rule list * int option * Engine.Time.t

let prefix_all = Net.Ipv4.prefix (Net.Ipv4.addr_of_octets 0 0 0 0) 0

(* Registered on first failover so failure-free runs export exactly the
   series they always did. *)
let count_failover t =
  let c =
    match t.failovers_c with
    | Some c -> c
    | None ->
      let c =
        Engine.Metrics.counter (Engine.Sim.metrics t.sim)
          ~help:"switch transitions into legacy fallback mode"
          ~labels:[ ("node", Net.Asn.to_string t.asn) ]
          "controller_failovers_total"
      in
      t.failovers_c <- Some c;
      c
  in
  Engine.Metrics.Counter.inc c

let count_expired t reason =
  let label =
    match reason with Openflow.Idle_timeout -> "idle" | Openflow.Hard_timeout -> "hard"
  in
  let c =
    match Hashtbl.find_opt t.expired_by label with
    | Some c -> c
    | None ->
      let c =
        Engine.Metrics.counter (Engine.Sim.metrics t.sim)
          ~help:"flow rules removed by timeout"
          ~labels:[ ("node", Net.Asn.to_string t.asn); ("reason", label) ]
          "flow_rules_expired_total"
      in
      Hashtbl.replace t.expired_by label c;
      c
  in
  Engine.Metrics.Counter.inc c

(* --- Legacy fallback ---------------------------------------------------- *)

let fallback_active t = Option.is_some t.fallback

let install_fallback t port =
  let rule = Flow.make ~priority:0 ~match_prefix:prefix_all (Flow.Output port) in
  Flow_table.add t.table rule;
  t.fallback <- Some rule;
  log t "fallback route -> port %d" port

let enter_fallback t =
  if not (fallback_active t) then begin
    Engine.Sim.logf t.sim ~node:(Net.Asn.to_string t.asn) ~category:"switch"
      ~level:Engine.Trace.Warn "controller unreachable: entering legacy fallback";
    count_failover t;
    match t.fallback_port () with
    | Some port -> install_fallback t port
    | None -> log t "no legacy neighbor available for fallback"
  end

let exit_fallback t =
  match t.fallback with
  | None -> ()
  | Some rule ->
    ignore (Flow_table.remove_physical t.table rule);
    t.fallback <- None;
    log t "leaving legacy fallback (controller resynced)"

(* The fallback port died: re-pick a surviving legacy neighbor. *)
let repick_fallback t =
  match t.fallback with
  | None -> ()
  | Some rule ->
    ignore (Flow_table.remove_physical t.table rule);
    t.fallback <- None;
    (match t.fallback_port () with
    | Some port -> install_fallback t port
    | None -> log t "no legacy neighbor left for fallback")

let start_supervision t =
  match (t.liveness, t.supervise) with
  | None, _ | _, None -> ()
  | Some { echo_interval; _ }, Some timer -> Engine.Timer.start timer echo_interval

let supervise_tick t =
  match t.liveness with
  | None -> ()
  | Some { echo_interval; fail_after } ->
    ignore (t.send_control (Openflow.Echo_request { switch_asn = t.asn }));
    let silent = Engine.Time.diff (Engine.Sim.now t.sim) t.last_ctrl_seen in
    if Engine.Time.(silent >= fail_after) then enter_fallback t;
    Option.iter (fun timer -> Engine.Timer.start timer echo_interval) t.supervise

let create ?liveness ?(fallback_port = fun () -> None) ?(on_relay_drop = fun () -> ())
    ~sim ~asn ~node_id ~send_control ~send_data ~send_bgp ~asn_of_node ~node_of_asn
    ~is_local ~deliver_local () =
  let node =
    Engine.Node.create ~kind:"switch" sim ~name:(Fmt.str "sw-%a" Net.Asn.pp asn)
  in
  let t =
  {
    sim;
    node;
    asn;
    node_id;
    table =
      Flow_table.create ~metrics:(Engine.Sim.metrics sim)
        ~labels:[ ("node", Net.Asn.to_string asn) ]
        ();
    liveness;
    fallback_port;
    on_relay_drop;
    send_control;
    send_data;
    send_bgp;
    asn_of_node;
    node_of_asn;
    is_local;
    deliver_local;
    stats =
      {
        forwarded = 0;
        to_controller = 0;
        dropped = 0;
        relayed_in = 0;
        relayed_out = 0;
        flow_mods = 0;
        relay_drops = 0;
      };
    last_ctrl_seen = Engine.Sim.now sim;
    fallback = None;
    supervise = None;
    failovers_c = None;
    expired_by = Hashtbl.create 2;
  }
  in
  (* The supervision timer exists eagerly (even before start) so a
     checkpoint can re-arm it by name on restore. *)
  (match liveness with
  | None -> ()
  | Some _ ->
    t.supervise <-
      Some
        (Engine.Node.timer ~category:"sdn.liveness" node
           ~name:(Fmt.str "sw-%a-supervise" Net.Asn.pp asn)
           ~callback:(fun () -> supervise_tick t)));
  (* A crashed switch loses its flow table; the controller re-installs
     rules when the framework resyncs the member on restart. *)
  Engine.Node.on_crash node (fun () ->
      Flow_table.clear t.table;
      t.fallback <- None);
  Engine.Node.on_start node (fun ~first:_ ->
      t.last_ctrl_seen <- Engine.Sim.now sim;
      start_supervision t);
  (* Rule records are mutable ([packets], [last_used]) and the
     checkpointed run keeps running, so both directions copy.  Timeout
     enforcement is not re-armed on restore — a documented checkpoint
     limitation (rules outlive their recorded idle/hard deadlines). *)
  Engine.Node.set_snapshot node (fun () ->
      let rules = Flow_table.rules t.table in
      let fb_index =
        match t.fallback with
        | None -> None
        | Some fb ->
          let rec idx i = function
            | [] -> None
            | r :: rest -> if r == fb then Some i else idx (i + 1) rest
          in
          idx 0 rules
      in
      Switch_state
        ( List.map (fun (r : Flow.rule) -> { r with packets = r.packets }) rules,
          fb_index,
          t.last_ctrl_seen ));
  Engine.Node.set_restore node (function
    | Switch_state (rules, fb_index, last_ctrl_seen) ->
      Flow_table.clear t.table;
      let copies =
        List.map (fun (r : Flow.rule) -> { r with packets = r.packets }) rules
      in
      List.iter (Flow_table.add t.table) copies;
      t.fallback <- Option.bind fb_index (fun i -> List.nth_opt copies i);
      t.last_ctrl_seen <- last_ctrl_seen
    | _ -> invalid_arg "Switch.restore: foreign snapshot blob");
  Engine.Node.start node;
  t

let asn t = t.asn

let node t = t.node

let node_id t = t.node_id

let table t = t.table

let stats t = t.stats

let packet_in t ~in_port packet =
  t.stats.to_controller <- t.stats.to_controller + 1;
  ignore (t.send_control (Openflow.Packet_in { switch_asn = t.asn; in_port; packet }))

(* Timeout enforcement.  Timers hold the physical rule record, so a
   same-key replacement installed later is untouched by the old timers. *)
let expire t rule reason =
  if Flow_table.remove_physical t.table rule then begin
    count_expired t reason;
    ignore (t.send_control (Openflow.Flow_removed { switch_asn = t.asn; rule; reason }))
  end

let arm_timeouts t (rule : Flow.rule) =
  rule.Flow.last_used <- Engine.Sim.now t.sim;
  Option.iter
    (fun span ->
      Engine.Node.schedule_after ~category:"sdn.timeout" t.node span (fun () ->
          expire t rule Openflow.Hard_timeout))
    rule.Flow.hard_timeout;
  Option.iter
    (fun span ->
      let rec check () =
        if Flow_table.mem_physical t.table rule then begin
          let idle_deadline = Engine.Time.add rule.Flow.last_used span in
          if Engine.Time.(idle_deadline <= Engine.Sim.now t.sim) then
            expire t rule Openflow.Idle_timeout
          else
            Engine.Node.schedule_at ~category:"sdn.timeout" t.node idle_deadline check
        end
      in
      Engine.Node.schedule_after ~category:"sdn.timeout" t.node span check)
    rule.Flow.idle_timeout

let handle_data t ~from (packet : Net.Packet.t) =
  if t.is_local packet.Net.Packet.dst then t.deliver_local packet
  else
    match Net.Packet.decr_ttl packet with
    | None ->
      t.stats.dropped <- t.stats.dropped + 1;
      log t "ttl exceeded for %a" Net.Packet.pp packet
    | Some packet -> (
      let matched = Flow_table.lookup t.table packet.Net.Packet.dst in
      Option.iter (fun (r : Flow.rule) -> r.Flow.last_used <- Engine.Sim.now t.sim) matched;
      match matched with
      | Some { Flow.action = Flow.Output port; _ } ->
        if t.send_data ~dst:port packet then t.stats.forwarded <- t.stats.forwarded + 1
        else begin
          t.stats.dropped <- t.stats.dropped + 1;
          log t "output port %d unreachable, packet dropped" port
        end
      | Some { Flow.action = Flow.Drop; _ } -> t.stats.dropped <- t.stats.dropped + 1
      | Some { Flow.action = Flow.To_controller; _ } | None ->
        (* Table miss (or explicit punt): controller decides. *)
        packet_in t ~in_port:from packet)

(* BGP from an external neighbor: encapsulate toward the speaker.  The
   relay is always attempted — even while degraded — so that a restarted
   controller's session handshakes complete before RESYNC_DONE arrives;
   only a dead control *link* (send refused) discards here, accounted as
   [session_down] via [on_relay_drop].  (Relays sent while the controller
   node is down are dropped at delivery and accounted as [node_down].) *)
let handle_bgp t ~from msg =
  match t.asn_of_node from with
  | None -> log t "bgp from unknown node %d dropped" from
  | Some neighbor ->
    t.stats.relayed_in <- t.stats.relayed_in + 1;
    if
      not
        (t.send_control
           (Openflow.Bgp_relay
              { member = t.asn; neighbor; direction = Openflow.To_speaker; payload = msg }))
    then begin
      t.stats.relay_drops <- t.stats.relay_drops + 1;
      t.on_relay_drop ();
      log t "bgp relay from %a dropped (control channel down)" Net.Asn.pp neighbor
    end

let handle_control t msg =
  t.last_ctrl_seen <- Engine.Sim.now t.sim;
  match msg with
  | Openflow.Hello -> ignore (t.send_control Openflow.Hello)
  | Openflow.Echo_reply -> () (* liveness already refreshed above *)
  | Openflow.Resync_done -> exit_fallback t
  | Openflow.Flow_mod { command; rule } -> begin
    t.stats.flow_mods <- t.stats.flow_mods + 1;
    if Engine.Causal.enabled (Engine.Sim.causal t.sim) then
      Engine.Sim.annotate t.sim
        ~category:
          (match command with
          | Openflow.Add -> "flow.install"
          | Openflow.Delete | Openflow.Delete_strict -> "flow.remove")
        ~node:(Net.Asn.to_string t.asn)
        ~label:(Net.Ipv4.prefix_to_string rule.Flow.match_prefix)
        ();
    match command with
    | Openflow.Add ->
      Flow_table.add t.table rule;
      arm_timeouts t rule
    | Openflow.Delete -> Flow_table.delete t.table ~match_prefix:rule.Flow.match_prefix
    | Openflow.Delete_strict -> Flow_table.delete_exact t.table rule
  end
  | Openflow.Packet_out { out_port; packet } ->
    if out_port = t.node_id then t.deliver_local packet
    else if t.send_data ~dst:out_port packet then t.stats.forwarded <- t.stats.forwarded + 1
    else t.stats.dropped <- t.stats.dropped + 1
  | Openflow.Bgp_relay { neighbor; direction = Openflow.To_neighbor; payload; _ } -> begin
    match t.node_of_asn neighbor with
    | Some dst ->
      t.stats.relayed_out <- t.stats.relayed_out + 1;
      ignore (t.send_bgp ~dst payload)
    | None -> log t "relay to unknown neighbor %a dropped" Net.Asn.pp neighbor
  end
  | Openflow.Bgp_relay _ | Openflow.Packet_in _ | Openflow.Port_status _
  | Openflow.Flow_removed _ | Openflow.Echo_request _ ->
    log t "unexpected control message: %a" Openflow.pp msg

(* Adjacent link changed state: report to the controller, and re-pick the
   legacy fallback route when its egress just died. *)
let port_change t ~peer ~up =
  (match t.fallback with
  | Some { Flow.action = Flow.Output port; _ } when (not up) && port = peer ->
    repick_fallback t
  | _ -> ());
  ignore (t.send_control (Openflow.Port_status { switch_asn = t.asn; port = peer; up }))
