(* Chaos smoke: crash the cluster head (controller + speaker) in the
   middle of a hybrid run, keep the network busy while it is down,
   restart it, and assert that routing reconverges and the metrics
   export stays clean.  Exits non-zero on the first violated assertion —
   the `@chaos-smoke` dune alias runs this binary. *)

let fail fmt = Fmt.kstr (fun s -> prerr_endline ("chaos-smoke: FAIL: " ^ s); exit 1) fmt

let check what ok = if not ok then fail "%s" what

let () =
  let n = 8 and members = 4 in
  let spec = Topology.Artificial.clique n in
  let asns = Topology.Spec.asns spec in
  let spec =
    Topology.Spec.with_sdn spec (List.filteri (fun i _ -> i >= n - members) asns)
  in
  let exp =
    Framework.Experiment.create ~config:Framework.Config.fast_test ~seed:2014 spec
  in
  let net = Framework.Experiment.network exp in
  let origin = Topology.Artificial.asn 0 in
  let origin2 = Topology.Artificial.asn 1 in
  let member = Topology.Artificial.asn (n - 1) in
  ignore (Framework.Experiment.announce exp origin);
  ignore (Framework.Experiment.settle exp);
  check "member reaches the origin after initial convergence"
    (Framework.Experiment.reachable exp ~src:member ~dst:origin);
  (* Kill the cluster head, then keep routing changing while it is down:
     the new announcement converges among the legacy routers, and every
     update relayed toward the dead head is refused at the fabric. *)
  Framework.Network.crash_controller net;
  ignore (Framework.Experiment.announce exp origin2);
  ignore (Framework.Experiment.settle exp);
  let fabric = Framework.Network.fabric net in
  check "deliveries to the dead head are dropped as node_down"
    (Net.Netsim.drops fabric Net.Netsim.Node_down > 0);
  check "members lose connectivity while the head is down"
    (not (Framework.Experiment.reachable exp ~src:member ~dst:origin2));
  (* Restart: the controller re-runs its pipeline and the speaker's
     NOTIFICATION-then-OPEN resync pulls external routes back in. *)
  Framework.Network.restart_controller net;
  ignore (Framework.Experiment.settle exp);
  check "member reaches the origin after the restart"
    (Framework.Experiment.reachable exp ~src:member ~dst:origin);
  check "member learned the route announced during the outage"
    (Framework.Experiment.reachable exp ~src:member ~dst:origin2);
  (* The export must parse and carry the lifecycle + drop series. *)
  let text = Engine.Metrics.to_prometheus (Framework.Experiment.final_metrics exp) in
  match Engine.Metrics.parse_prometheus text with
  | Error e -> fail "metrics export does not parse: %s" e
  | Ok samples ->
    let has name = List.exists (fun s -> s.Engine.Metrics.p_name = name) samples in
    check "node_lifecycle_transitions_total exported"
      (has "node_lifecycle_transitions_total");
    check "net_messages_dropped_total exported" (has "net_messages_dropped_total");
    print_endline
      "chaos-smoke: cluster-head crash/restart reconverged; metrics export clean"
