lib/cluster_ctl/speaker.mli: Bgp Engine Net
