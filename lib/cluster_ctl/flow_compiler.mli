(** Compile AS-graph decisions to flow rules, diffed against the installed
    state so only changes produce FLOW_MODs. *)

val action_of_decision :
  node_of_asn:(Net.Asn.t -> int option) -> As_graph.decision -> Sdn.Flow.action option

type change = { member : Net.Asn.t; mods : Sdn.Openflow.t list }

val diff :
  ?idle_timeout:Engine.Time.span ->
  ?hard_timeout:Engine.Time.span ->
  prefix:Net.Ipv4.prefix ->
  node_of_asn:(Net.Asn.t -> int option) ->
  members:Net.Asn.t list ->
  installed:Sdn.Flow.action Net.Asn.Map.t ->
  desired:As_graph.decision Net.Asn.Map.t ->
  unit ->
  change list * Sdn.Flow.action Net.Asn.Map.t
(** Returns the per-member FLOW_MODs and the new installed-state map.
    [Deliver_local] decisions install nothing (the switch's local-prefix
    check delivers those packets).  [idle_timeout]/[hard_timeout] stamp
    every added rule so it decays at the switch unless refreshed. *)
