lib/net/link.mli: Engine Format
