(* Engine.Sim and Engine.Timer: scheduling order, cancellation,
   quiescence, restartable timers. *)

open Engine

let test_fifo_same_instant () =
  let sim = Sim.create () in
  let order = ref [] in
  let note tag () = order := tag :: !order in
  ignore (Sim.schedule_at sim (Time.ms 5) (note "a"));
  ignore (Sim.schedule_at sim (Time.ms 5) (note "b"));
  ignore (Sim.schedule_at sim (Time.ms 5) (note "c"));
  ignore (Sim.run sim);
  Alcotest.(check (list string)) "insertion order at same instant" [ "a"; "b"; "c" ]
    (List.rev !order)

let test_time_order () =
  let sim = Sim.create () in
  let order = ref [] in
  ignore (Sim.schedule_at sim (Time.ms 30) (fun () -> order := 30 :: !order));
  ignore (Sim.schedule_at sim (Time.ms 10) (fun () -> order := 10 :: !order));
  ignore (Sim.schedule_at sim (Time.ms 20) (fun () -> order := 20 :: !order));
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !order);
  Alcotest.(check int) "clock at last event" 30_000 (Time.to_us (Sim.now sim))

let test_cancellation () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule_at sim (Time.ms 1) (fun () -> fired := true) in
  Sim.cancel h;
  ignore (Sim.run sim);
  Alcotest.(check bool) "cancelled event does not fire" false !fired;
  Alcotest.(check bool) "handle reports cancelled" true (Sim.cancelled h)

let test_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule_at sim (Time.ms 1) (fun () ->
         log := "outer" :: !log;
         ignore (Sim.schedule_after sim (Time.ms 1) (fun () -> log := "inner" :: !log))));
  ignore (Sim.run sim);
  Alcotest.(check (list string)) "nested events run" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int) "two events executed" 2 (Sim.executed sim)

let test_past_scheduling_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim (Time.ms 10) (fun () -> ()));
  ignore (Sim.run sim);
  (match Sim.schedule_at sim (Time.ms 5) (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "scheduling in the past must raise")

let test_run_until () =
  let sim = Sim.create () in
  let fired = ref 0 in
  ignore (Sim.schedule_at sim (Time.ms 10) (fun () -> incr fired));
  ignore (Sim.schedule_at sim (Time.ms 50) (fun () -> incr fired));
  (match Sim.run ~until:(Time.ms 20) sim with
  | Sim.Reached_time _ -> ()
  | Sim.Exhausted | Sim.Reached_limit -> Alcotest.fail "expected Reached_time");
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check int) "clock advanced to limit" 20_000 (Time.to_us (Sim.now sim));
  ignore (Sim.run sim);
  Alcotest.(check int) "second fires later" 2 !fired

let test_max_events () =
  let sim = Sim.create () in
  for i = 1 to 10 do
    ignore (Sim.schedule_at sim (Time.ms i) (fun () -> ()))
  done;
  (match Sim.run ~max_events:3 sim with
  | Sim.Reached_limit -> ()
  | Sim.Exhausted | Sim.Reached_time _ -> Alcotest.fail "expected Reached_limit");
  Alcotest.(check int) "executed exactly 3" 3 (Sim.executed sim)

let test_trace_logging () =
  let sim = Sim.create () in
  ignore
    (Sim.schedule_at sim (Time.ms 7) (fun () ->
         Sim.logf sim ~node:"x" ~category:"test" "value=%d" 42));
  ignore (Sim.run sim);
  match Trace.records (Sim.trace sim) with
  | [ r ] ->
    Alcotest.(check string) "message" "value=42" r.Trace.message;
    Alcotest.(check int) "time" 7_000 (Time.to_us r.Trace.time)
  | records -> Alcotest.failf "expected 1 record, got %d" (List.length records)

(* Timer semantics *)

let test_timer_fires_once () =
  let sim = Sim.create () in
  let fires = ref 0 in
  let timer = Timer.create sim ~name:"t" ~callback:(fun () -> incr fires) in
  Timer.start timer (Time.ms 10);
  ignore (Sim.run sim);
  Alcotest.(check int) "one fire" 1 !fires;
  Alcotest.(check bool) "idle after fire" false (Timer.is_armed timer)

let test_timer_restart_replaces () =
  let sim = Sim.create () in
  let fired_at = ref [] in
  let timer = ref None in
  let t =
    Timer.create sim ~name:"t" ~callback:(fun () ->
        fired_at := Sim.now sim :: !fired_at;
        ignore timer)
  in
  timer := Some t;
  Timer.start t (Time.ms 10);
  Timer.start t (Time.ms 30);
  ignore (Sim.run sim);
  Alcotest.(check (list int)) "restart postpones" [ 30_000 ]
    (List.map Time.to_us (List.rev !fired_at))

let test_timer_start_if_idle_coalesces () =
  let sim = Sim.create () in
  let fires = ref 0 in
  let t = Timer.create sim ~name:"t" ~callback:(fun () -> incr fires) in
  Timer.start_if_idle t (Time.ms 10);
  Timer.start_if_idle t (Time.ms 50);
  ignore (Sim.run sim);
  Alcotest.(check int) "coalesced to one" 1 !fires;
  Alcotest.(check int) "fired at first deadline" 10_000 (Time.to_us (Sim.now sim))

let test_timer_cancel () =
  let sim = Sim.create () in
  let fires = ref 0 in
  let t = Timer.create sim ~name:"t" ~callback:(fun () -> incr fires) in
  Timer.start t (Time.ms 10);
  Timer.cancel t;
  ignore (Sim.run sim);
  Alcotest.(check int) "cancelled" 0 !fires

let test_trace_capacity () =
  let trace = Trace.create ~capacity:10 () in
  for i = 1 to 25 do
    Trace.record trace ~time:(Time.ms i) ~node:"n" ~category:"c" (string_of_int i)
  done;
  (* Exact ring: precisely the [capacity] newest records survive. *)
  Alcotest.(check int) "exactly capacity retained" 10 (Trace.count trace);
  Alcotest.(check int) "total is eviction-proof" 25 (Trace.total trace);
  (match Trace.records trace with
  | oldest :: _ -> Alcotest.(check string) "oldest is n-9" "16" oldest.Trace.message
  | [] -> Alcotest.fail "trace empty");
  (match List.rev (Trace.records trace) with
  | newest :: _ -> Alcotest.(check string) "newest kept" "25" newest.Trace.message
  | [] -> Alcotest.fail "trace empty");
  Alcotest.(check (list string))
    "contiguous newest window"
    (List.init 10 (fun i -> string_of_int (16 + i)))
    (List.map (fun r -> r.Trace.message) (Trace.records trace));
  Trace.clear trace;
  Alcotest.(check int) "clear empties" 0 (Trace.count trace);
  Trace.record trace ~time:(Time.ms 1) ~node:"n" ~category:"c" "after-clear";
  Alcotest.(check int) "usable after clear" 1 (Trace.count trace)

let test_trace_filter () =
  let trace = Trace.create () in
  Trace.record trace ~time:(Time.ms 1) ~node:"a" ~category:"x" "1";
  Trace.record trace ~time:(Time.ms 2) ~node:"b" ~category:"x" "2";
  Trace.record trace ~time:(Time.ms 3) ~node:"a" ~category:"y" "3";
  Alcotest.(check int) "by node" 2 (List.length (Trace.filter ~node:"a" trace));
  Alcotest.(check int) "by category" 2 (List.length (Trace.filter ~category:"x" trace));
  Alcotest.(check int) "by both" 1 (List.length (Trace.filter ~node:"a" ~category:"x" trace));
  Alcotest.(check int) "since" 2 (List.length (Trace.filter ~since:(Time.ms 2) trace));
  Alcotest.(check (option int)) "last matching" (Some 3_000)
    (Option.map Time.to_us (Trace.last_time_matching trace (fun r -> r.Trace.node = "a")))

let test_trace_disabled () =
  let trace = Trace.create ~enabled:false () in
  Trace.record trace ~time:Time.zero ~node:"a" ~category:"c" "x";
  Alcotest.(check int) "nothing recorded" 0 (Trace.count trace);
  Trace.set_enabled trace true;
  Trace.record trace ~time:Time.zero ~node:"a" ~category:"c" "x";
  Alcotest.(check int) "recording after enable" 1 (Trace.count trace)

let suite =
  [
    Alcotest.test_case "FIFO at same instant" `Quick test_fifo_same_instant;
    Alcotest.test_case "trace capacity" `Quick test_trace_capacity;
    Alcotest.test_case "trace filter" `Quick test_trace_filter;
    Alcotest.test_case "trace disabled" `Quick test_trace_disabled;
    Alcotest.test_case "time ordering" `Quick test_time_order;
    Alcotest.test_case "cancellation" `Quick test_cancellation;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "past scheduling rejected" `Quick test_past_scheduling_rejected;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "max events" `Quick test_max_events;
    Alcotest.test_case "trace logging" `Quick test_trace_logging;
    Alcotest.test_case "timer fires once" `Quick test_timer_fires_once;
    Alcotest.test_case "timer restart" `Quick test_timer_restart_replaces;
    Alcotest.test_case "timer start_if_idle" `Quick test_timer_start_if_idle_coalesces;
    Alcotest.test_case "timer cancel" `Quick test_timer_cancel;
  ]
