examples/internet_subclusters.mli:
