(** Delayed, batched best-path recomputation: dirty-marking coalesces
    bursts of external BGP input; a zero delay recomputes immediately. *)

type t

val create :
  sim:Engine.Sim.t ->
  delay:Engine.Time.span ->
  callback:(Net.Ipv4.prefix list -> unit) ->
  t

val delay : t -> Engine.Time.span

val mark_dirty : t -> Net.Ipv4.prefix -> unit

val mark_dirty_many : t -> Net.Ipv4.prefix list -> unit

val flush_now : t -> unit
(** Recompute everything dirty immediately (cancels the pending timer). *)

val reset : t -> unit
(** Forget the dirty set and cancel the pending batch (controller crash). *)

type state
(** Opaque checkpoint of the dirty set and armed expiry. *)

val state : t -> state

val restore : t -> state -> unit

val pending : t -> int

val batches : t -> int
(** Recomputation batches executed. *)

val marks : t -> int
(** Total dirty marks received (marks/batches = coalescing factor). *)
