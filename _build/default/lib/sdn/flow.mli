(** OpenFlow-style flow rules.  A "port" is the node id of the neighbor
    reached over the corresponding link. *)

type port = int

type action = Output of port | To_controller | Drop

type rule = {
  match_prefix : Net.Ipv4.prefix;
  priority : int;
  action : action;
  mutable packets : int;
  idle_timeout : Engine.Time.span option;  (** expire after this much disuse *)
  hard_timeout : Engine.Time.span option;  (** expire this long after install *)
  mutable last_used : Engine.Time.t;  (** maintained by the switch *)
}

val make :
  ?priority:int ->
  ?idle_timeout:Engine.Time.span ->
  ?hard_timeout:Engine.Time.span ->
  match_prefix:Net.Ipv4.prefix ->
  action ->
  rule

val matches : rule -> Net.Ipv4.addr -> bool

val action_equal : action -> action -> bool

val same_match : rule -> rule -> bool
(** Same (match, priority) key — OpenFlow's add-or-replace identity. *)

val pp_action : Format.formatter -> action -> unit

val pp : Format.formatter -> rule -> unit
