(** CAIDA AS-relationship dataset support: serial-1 parser/renderer and a
    synthetic Internet-like generator for sealed environments. *)

type parse_error = { line : int; content : string; reason : string }

val pp_parse_error : Format.formatter -> parse_error -> unit

val parse_string : ?title:string -> string -> (Spec.t, parse_error) result
(** Parse serial-1 text ([provider|customer|-1], [peer|peer|0],
    [sibling|sibling|2], ['#'] comments).  Self-loops and duplicate AS pairs (whatever their
    relationships) are rejected with the offending line — real datasets
    relate each unordered pair exactly once, so repetition means a broken
    file or generator. *)

val parse_file : string -> (Spec.t, parse_error) result

val render : Spec.t -> string
(** Render a spec back to serial-1 text ([Open] links render as peers). *)

val generate : ?tier1:int -> ?tier2:int -> ?stubs:int -> ?multihome:float -> Engine.Rng.t -> Spec.t
(** Synthetic Internet-like graph: tier-1 peering clique, multi-homed
    tier-2 transit with lateral peering, and stub customers. *)

val tier1_asns : tier1:int -> Net.Asn.t list

val stub_asns : tier1:int -> tier2:int -> stubs:int -> Net.Asn.t list
