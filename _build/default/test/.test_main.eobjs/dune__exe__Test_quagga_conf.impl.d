test/test_quagga_conf.ml: Alcotest Fmt Framework List Net String Topology
