lib/net/packet.mli: Format Ipv4
