(* Framework.Quagga_conf: exported bgpd.conf content. *)

let asn = Topology.Artificial.asn

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  n > 0 && scan 0

(* star: leaves are customers of hub 0 *)
let spec = Topology.Artificial.star 4

let plan = Framework.Addressing.plan spec

let test_basics () =
  let conf = Framework.Quagga_conf.bgpd_conf spec plan (asn 1) in
  Alcotest.(check bool) "hostname" true (contains conf "hostname AS65002");
  Alcotest.(check bool) "router bgp" true (contains conf "router bgp 65002");
  Alcotest.(check bool) "router id" true (contains conf "bgp router-id 10.0.1.1");
  Alcotest.(check bool) "network statement" true (contains conf "network 100.64.1.0/24");
  Alcotest.(check bool) "neighbor with remote-as" true (contains conf "remote-as 65001");
  Alcotest.(check bool) "mrai configured" true (contains conf "advertisement-interval 30")

let test_leaf_policy_toward_provider () =
  (* a leaf's single neighbor is its provider: import lp 90, provenance
     community, and valley-free deny on export *)
  let conf = Framework.Quagga_conf.bgpd_conf spec plan (asn 2) in
  Alcotest.(check bool) "provider local-pref" true
    (contains conf "set local-preference 90");
  Alcotest.(check bool) "provider community" true
    (contains conf "set community 65000:3 additive");
  Alcotest.(check bool) "export deny clause" true (contains conf "route-map EXPORT-65001 deny 10");
  Alcotest.(check bool) "community match" true
    (contains conf "match community FROM-PEER-OR-PROVIDER");
  Alcotest.(check bool) "community list emitted" true
    (contains conf "ip community-list standard FROM-PEER-OR-PROVIDER permit 65000:2")

let test_hub_policy_toward_customers () =
  (* the hub's neighbors are customers: lp 130, no export restriction *)
  let conf = Framework.Quagga_conf.bgpd_conf spec plan (asn 0) in
  Alcotest.(check bool) "customer local-pref" true
    (contains conf "set local-preference 130");
  Alcotest.(check bool) "customer community" true
    (contains conf "set community 65000:1 additive");
  Alcotest.(check bool) "exports to customers unrestricted" true
    (contains conf "route-map EXPORT-65002 permit 10");
  Alcotest.(check bool) "no deny toward customers" false
    (contains conf "route-map EXPORT-65002 deny")

let test_all_configs () =
  let configs = Framework.Quagga_conf.all_configs spec in
  Alcotest.(check int) "one per AS" 4 (List.length configs);
  List.iter
    (fun (asn, conf) ->
      Alcotest.(check bool)
        (Fmt.str "config of %a non-trivial" Net.Asn.pp asn)
        true
        (String.length conf > 200))
    configs

let test_unknown_asn () =
  match Framework.Quagga_conf.bgpd_conf spec plan (Net.Asn.of_int 99) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown ASN must raise"

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "leaf policy toward provider" `Quick test_leaf_policy_toward_provider;
    Alcotest.test_case "hub policy toward customers" `Quick test_hub_policy_toward_customers;
    Alcotest.test_case "all configs" `Quick test_all_configs;
    Alcotest.test_case "unknown asn" `Quick test_unknown_asn;
  ]
