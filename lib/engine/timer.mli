(** Restartable one-shot timer: the primitive behind BGP MRAI timers and
    the controller's delayed recomputation. *)

type t

val create : ?category:string -> Sim.t -> name:string -> callback:(unit -> unit) -> t
(** [category] (default ["timer"]) tags the scheduled expiry events for
    the scheduler's per-category accounting. *)

val start : t -> Time.span -> unit
(** (Re)arm the timer: any pending expiry is cancelled first. *)

val start_at : t -> Time.t -> unit
(** Arm at an absolute instant (checkpoint restore re-arms timers at
    their original expiry this way).
    @raise Invalid_argument if the instant is in the past. *)

val start_if_idle : t -> Time.span -> unit
(** Arm only if not already armed — coalesces bursts of triggers. *)

val cancel : t -> unit

val is_armed : t -> bool

val due : t -> Time.t option
(** Absolute expiry instant while armed, [None] otherwise. *)

val fires : t -> int
(** Number of times the timer has fired. *)

val name : t -> string
