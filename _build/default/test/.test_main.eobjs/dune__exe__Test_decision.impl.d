test/test_decision.ml: Alcotest Bgp Engine Fmt Gen List Net Option QCheck QCheck_alcotest
