examples/video_failover.mli:
