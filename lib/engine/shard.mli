(** Lockstep-epoch coordinator: partition one simulation across N
    domains while keeping the merged event order bit-identical to the
    single-shard run.

    Each shard owns a full {!Sim} (and its RNG/metrics/trace — the usual
    one-domain ownership rule) and is pinned to one domain for the whole
    run ({!Pool.run_each}), because hash-consed state lives in
    Domain.DLS.  All shards advance in conservative epochs bounded by

    [horizon = (global min next event time) + lookahead]

    where [lookahead] must be a lower bound on the delay of every link a
    message can travel — then any message sent during an epoch arrives
    at or after the horizon, so barrier-time injection is never late.
    Determinism additionally requires the shards' sims to run in
    {!Sim.Canonical} order with partition-independent keys on
    cross-shard-visible events (see {!Sim.key}). *)

type 'msg ops = {
  sim : Sim.t;  (** this shard's scheduler *)
  real_executed : unit -> int;
      (** events executed so far EXCLUDING infrastructure replicated in
          every shard (pre-scheduled driver commands) — the quantity the
          global [budget] is measured in, so budget decisions are
          partition-independent *)
  flush : unit -> (int * 'msg) list;
      (** drain this epoch's outbound cross-shard messages as
          [(destination shard, message)] pairs in send order *)
  inject : src:int -> 'msg list -> unit;
      (** accept messages from shard [src]; called in ascending [src]
          order at the barrier.  Implementations must re-intern any
          domain-local hash-consed payload state *)
  on_quiescent : max_now:Time.t -> bool;
      (** called on EVERY shard when all queues drain ([max_now] is the
          latest shard clock): schedule the next phase's work and return
          [true], or return [false] to finish.  Must make the same
          decision on every shard. *)
}

type stats = {
  shards : int;
  epochs : int;  (** executed epochs (quiescence checks excluded) *)
  lookahead : Time.span;
  executed : int array;  (** per-shard total events executed *)
  injected : int array;  (** per-shard cross-shard messages received *)
  stall_s : float array;
      (** per-shard wall seconds blocked at barriers (0 without [clock]) *)
  settled : bool;
      (** [true] when the run ended by [on_quiescent] returning [false]
          on a fully drained system, [false] when the budget stopped it *)
}

val run :
  shards:int ->
  lookahead:Time.span ->
  ?clock:(unit -> float) ->
  ?budget:int ->
  (int -> 'msg ops * (unit -> 'r)) ->
  'r array * stats
(** [run ~shards ~lookahead make] calls [make i] on shard [i]'s pinned
    domain to build its ops and a finish thunk, drives the epoch loop to
    completion, then calls each finish thunk (still on the shard's
    domain) and returns the results in shard order plus run statistics.

    [clock] (e.g. [Unix.gettimeofday]) feeds barrier-stall accounting
    and defaults to a constant so the engine keeps no unix dependency.
    [budget] bounds the total "real" event count (summed
    [real_executed]) across all shards, checked at epoch boundaries —
    runs may overshoot by up to one epoch, deterministically.

    [shards = 1] degenerates to a sequential run on the calling domain
    with the exact same epoch/budget structure, which is what makes
    shards=N-vs-1 differentials meaningful.

    If any shard raises, the barrier is poisoned (tearing down the other
    shards) and the lowest-indexed exception is re-raised here.
    @raise Invalid_argument if [shards < 1] or [lookahead <= 0]. *)
