(* Bgp.Rib: the three RIBs' bookkeeping. *)

let nh = Net.Ipv4.addr_of_octets 10 0 0 1

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let asn = Net.Asn.of_int

let route ~peer ~prefix =
  Bgp.Route.make ~prefix
    ~attrs:(Bgp.Attrs.make ~as_path:[ asn peer ] ~next_hop:nh ())
    ~source:(Bgp.Route.Ebgp (asn peer)) ~learned_at:Engine.Time.zero

let test_adj_in_implicit_withdraw () =
  let rib = Bgp.Rib.Adj_in.create () in
  let pre = p "100.64.0.0/24" in
  Bgp.Rib.Adj_in.set rib ~peer:(asn 65001) (route ~peer:65001 ~prefix:pre);
  Bgp.Rib.Adj_in.set rib ~peer:(asn 65001) (route ~peer:65001 ~prefix:pre);
  Alcotest.(check int) "replaced, not duplicated" 1 (Bgp.Rib.Adj_in.size rib);
  Bgp.Rib.Adj_in.set rib ~peer:(asn 65002) (route ~peer:65002 ~prefix:pre);
  Alcotest.(check int) "two candidates" 2 (List.length (Bgp.Rib.Adj_in.candidates rib pre))

let test_adj_in_candidates_order () =
  let rib = Bgp.Rib.Adj_in.create () in
  let pre = p "100.64.0.0/24" in
  List.iter
    (fun peer -> Bgp.Rib.Adj_in.set rib ~peer:(asn peer) (route ~peer ~prefix:pre))
    [ 65005; 65001; 65003 ];
  let peers =
    List.filter_map (fun r -> Bgp.Route.from_peer r) (Bgp.Rib.Adj_in.candidates rib pre)
  in
  Alcotest.(check (list int)) "ascending peer order" [ 65001; 65003; 65005 ]
    (List.map Net.Asn.to_int peers)

let test_adj_in_drop_peer () =
  let rib = Bgp.Rib.Adj_in.create () in
  let p1 = p "100.64.0.0/24" and p2 = p "100.64.1.0/24" in
  Bgp.Rib.Adj_in.set rib ~peer:(asn 65001) (route ~peer:65001 ~prefix:p1);
  Bgp.Rib.Adj_in.set rib ~peer:(asn 65001) (route ~peer:65001 ~prefix:p2);
  Bgp.Rib.Adj_in.set rib ~peer:(asn 65002) (route ~peer:65002 ~prefix:p1);
  let dropped = Bgp.Rib.Adj_in.drop_peer rib ~peer:(asn 65001) in
  Alcotest.(check int) "dropped both" 2 (List.length dropped);
  Alcotest.(check int) "other peer remains" 1 (Bgp.Rib.Adj_in.size rib);
  Alcotest.(check bool) "lookup empty" true
    (Bgp.Rib.Adj_in.find rib ~peer:(asn 65001) p1 = None)

let test_adj_in_remove () =
  let rib = Bgp.Rib.Adj_in.create () in
  let pre = p "100.64.0.0/24" in
  Bgp.Rib.Adj_in.set rib ~peer:(asn 65001) (route ~peer:65001 ~prefix:pre);
  Bgp.Rib.Adj_in.remove rib ~peer:(asn 65001) pre;
  Alcotest.(check int) "removed" 0 (Bgp.Rib.Adj_in.size rib);
  Alcotest.(check (list string)) "all_prefixes empty" []
    (List.map Net.Ipv4.prefix_to_string (Bgp.Rib.Adj_in.all_prefixes rib))

let test_loc () =
  let loc = Bgp.Rib.Loc.create () in
  let pre = p "100.64.0.0/24" in
  Alcotest.(check bool) "initially empty" true (Bgp.Rib.Loc.find loc pre = None);
  Bgp.Rib.Loc.set loc (route ~peer:65001 ~prefix:pre);
  Alcotest.(check int) "size" 1 (Bgp.Rib.Loc.size loc);
  Bgp.Rib.Loc.set loc (route ~peer:65002 ~prefix:pre);
  Alcotest.(check int) "replace keeps size" 1 (Bgp.Rib.Loc.size loc);
  (match Bgp.Rib.Loc.find loc pre with
  | Some r ->
    Alcotest.(check (option int)) "latest kept" (Some 65002)
      (Option.map Net.Asn.to_int (Bgp.Route.from_peer r))
  | None -> Alcotest.fail "must find");
  Bgp.Rib.Loc.remove loc pre;
  Alcotest.(check int) "removed" 0 (Bgp.Rib.Loc.size loc)

let test_adj_out () =
  let out = Bgp.Rib.Adj_out.create () in
  let pre = p "100.64.0.0/24" in
  let attrs = Bgp.Attrs.make ~next_hop:nh () in
  Bgp.Rib.Adj_out.set out ~peer:(asn 65001) pre attrs;
  Alcotest.(check bool) "recorded" true
    (Bgp.Rib.Adj_out.find out ~peer:(asn 65001) pre <> None);
  Alcotest.(check int) "advertised list" 1
    (List.length (Bgp.Rib.Adj_out.advertised out ~peer:(asn 65001)));
  let dropped = Bgp.Rib.Adj_out.drop_peer out ~peer:(asn 65001) in
  Alcotest.(check int) "drop peer" 1 (List.length dropped);
  Alcotest.(check int) "empty after drop" 0 (Bgp.Rib.Adj_out.size out)

let suite =
  [
    Alcotest.test_case "adj-in implicit withdraw" `Quick test_adj_in_implicit_withdraw;
    Alcotest.test_case "adj-in candidate order" `Quick test_adj_in_candidates_order;
    Alcotest.test_case "adj-in drop peer" `Quick test_adj_in_drop_peer;
    Alcotest.test_case "adj-in remove" `Quick test_adj_in_remove;
    Alcotest.test_case "loc-rib" `Quick test_loc;
    Alcotest.test_case "adj-out" `Quick test_adj_out;
  ]
