test/test_speaker.ml: Alcotest Bgp Cluster_ctl Engine List Net Option
