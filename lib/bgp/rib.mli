(** Routing information bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out. *)

module Adj_in : sig
  type t

  val create : unit -> t

  val set : t -> peer:Net.Asn.t -> Route.t -> unit
  (** Insert or implicitly replace the peer's route for its prefix. *)

  val remove : t -> peer:Net.Asn.t -> Net.Ipv4.prefix -> unit

  val find : t -> peer:Net.Asn.t -> Net.Ipv4.prefix -> Route.t option

  val candidates : t -> Net.Ipv4.prefix -> Route.t list
  (** All peers' routes for the prefix, ascending peer order. *)

  val prefixes_from : t -> peer:Net.Asn.t -> Net.Ipv4.prefix list

  val drop_peer : t -> peer:Net.Asn.t -> Net.Ipv4.prefix list
  (** Remove everything from the peer (session down); returns the dropped
      prefixes so the decision process can be rerun for them. *)

  val all_prefixes : t -> Net.Ipv4.prefix list

  val size : t -> int

  val entries : t -> (Net.Asn.t * Route.t) list
  (** Every (peer, route) pair, ascending (peer, prefix) — the checkpoint
      dump; replay through {!set} to rebuild. *)

  val clear : t -> unit
end

module Loc : sig
  type t

  val create : unit -> t

  val find : t -> Net.Ipv4.prefix -> Route.t option

  val set : t -> Route.t -> unit

  val remove : t -> Net.Ipv4.prefix -> unit

  val entries : t -> (Net.Ipv4.prefix * Route.t) list

  val prefixes : t -> Net.Ipv4.prefix list

  val size : t -> int

  val clear : t -> unit
end

module Adj_out : sig
  type t

  val create : unit -> t

  val set : t -> peer:Net.Asn.t -> Net.Ipv4.prefix -> Attrs.t -> unit

  val remove : t -> peer:Net.Asn.t -> Net.Ipv4.prefix -> unit

  val find : t -> peer:Net.Asn.t -> Net.Ipv4.prefix -> Attrs.t option

  val advertised : t -> peer:Net.Asn.t -> (Net.Ipv4.prefix * Attrs.t) list

  val drop_peer : t -> peer:Net.Asn.t -> Net.Ipv4.prefix list

  val size : t -> int

  val entries : t -> (Net.Asn.t * (Net.Ipv4.prefix * Attrs.t) list) list
  (** Per-peer advertised sets, ascending peer order (checkpoint dump). *)

  val clear : t -> unit
end
