(* Per-peer outbound update scheduling under the
   MinRouteAdvertisementInterval.

   Semantics (matching Quagga's behaviour): the first advertisement after
   an idle period goes out immediately and arms the timer; while the timer
   runs, changes coalesce in a pending set (later changes for the same
   prefix replace earlier ones — only the latest state is ever sent); on
   expiry the pending set is flushed as one UPDATE and the timer re-arms
   only if something was flushed.  Explicit withdrawals bypass the timer
   unless [mrai_on_withdrawals] is set. *)

module Pm = Net.Ipv4.Prefix_map
module Ps = Net.Ipv4.Prefix_set

type pending = Announce of Attrs.t | Withdraw

type t = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  config : Config.t;
  send : Message.update -> unit;
  timer : Engine.Timer.t;
  mutable pending : pending Pm.t;
  (* MRAI-exempt withdrawals awaiting the end-of-event flush: sent even
     while the timer runs, without touching it. *)
  mutable urgent : Ps.t;
  (* Set once per event on the first enqueue; cleared by [flush_event].
     The owner's [on_dirty] hook collects dirty peers so one scheduler
     event emits one packed UPDATE per peer. *)
  mutable dirty : bool;
  mutable on_dirty : (unit -> unit) option;
  mutable flushes : int;
  deferrals_c : Engine.Metrics.Counter.t;
  flushes_c : Engine.Metrics.Counter.t;
}

let split_pending pending =
  let announced, withdrawn =
    Pm.fold
      (fun prefix p (ann, wd) ->
        match p with
        | Announce attrs -> ((prefix, attrs) :: ann, wd)
        | Withdraw -> (ann, prefix :: wd))
      pending ([], [])
  in
  (List.rev announced, List.rev withdrawn)

let rec flush t =
  if not (Pm.is_empty t.pending) then begin
    let announced, withdrawn = split_pending t.pending in
    t.pending <- Pm.empty;
    t.flushes <- t.flushes + 1;
    Engine.Metrics.Counter.inc t.flushes_c;
    t.send { Message.announced; withdrawn };
    arm t
  end

and arm t = Engine.Timer.start t.timer (Config.jittered_mrai t.config t.rng)

let is_throttled t = Engine.Timer.is_armed t.timer

(* End-of-event flush: everything enqueued within the current scheduler
   event leaves as one packed UPDATE.  While the MRAI timer runs only the
   exempt withdrawals go out (the pending set stays for timer expiry);
   otherwise pending and exempt changes share the message, and the timer
   arms only when throttle-subject changes were flushed — an urgent-only
   message never starts an MRAI interval (same as the old immediate
   exempt-withdrawal path). *)
let flush_event t =
  t.dirty <- false;
  if is_throttled t then begin
    if not (Ps.is_empty t.urgent) then begin
      let withdrawn = Ps.elements t.urgent in
      t.urgent <- Ps.empty;
      t.send { Message.announced = []; withdrawn }
    end
  end
  else if not (Pm.is_empty t.pending && Ps.is_empty t.urgent) then begin
    let announced, withdrawn = split_pending t.pending in
    let withdrawn =
      List.merge Net.Ipv4.compare_prefix withdrawn (Ps.elements t.urgent)
    in
    let had_pending = not (Pm.is_empty t.pending) in
    t.pending <- Pm.empty;
    t.urgent <- Ps.empty;
    if had_pending then begin
      t.flushes <- t.flushes + 1;
      Engine.Metrics.Counter.inc t.flushes_c
    end;
    t.send { Message.announced; withdrawn };
    if had_pending then arm t
  end

(* Without a registered owner the flush degenerates to per-enqueue sends —
   the pre-batching behavior (used by direct Mrai drivers in tests). *)
let mark_dirty t =
  if not t.dirty then begin
    t.dirty <- true;
    match t.on_dirty with Some f -> f () | None -> flush_event t
  end

let set_on_dirty t f = t.on_dirty <- Some f

let create sim ~rng ~config ~name ~send =
  (* The timer callback needs the record and the record needs the timer;
     tie the knot through a reference. *)
  let self = ref None in
  let callback () = match !self with Some t -> flush t | None -> () in
  (* All per-peer instances share the same unlabeled series — idempotent
     registration returns the same handle each time. *)
  let m = Engine.Sim.metrics sim in
  let t =
    {
      sim;
      rng;
      config;
      send;
      timer = Engine.Timer.create ~category:"bgp.mrai" sim ~name ~callback;
      pending = Pm.empty;
      urgent = Ps.empty;
      dirty = false;
      on_dirty = None;
      flushes = 0;
      deferrals_c =
        Engine.Metrics.counter m ~help:"route changes deferred by a running MRAI timer"
          "bgp_mrai_deferrals_total";
      flushes_c =
        Engine.Metrics.counter m ~help:"batched UPDATE flushes" "bgp_mrai_flushes_total";
    }
  in
  self := Some t;
  t

let pending_count t = Pm.cardinal t.pending

let flushes t = t.flushes

let enqueue_announce t prefix attrs =
  t.pending <- Pm.add prefix (Announce attrs) t.pending;
  t.urgent <- Ps.remove prefix t.urgent;
  if is_throttled t then Engine.Metrics.Counter.inc t.deferrals_c else mark_dirty t

let enqueue_withdraw t prefix =
  if t.config.Config.mrai_on_withdrawals then begin
    t.pending <- Pm.add prefix Withdraw t.pending;
    t.urgent <- Ps.remove prefix t.urgent;
    if is_throttled t then Engine.Metrics.Counter.inc t.deferrals_c else mark_dirty t
  end
  else begin
    (* Withdrawals are exempt from MRAI: cancel any pending announcement
       for the prefix and send the withdrawal at end of event, leaving
       the timer state untouched. *)
    t.pending <- Pm.remove prefix t.pending;
    t.urgent <- Ps.add prefix t.urgent;
    mark_dirty t
  end

(* Session reset: drop pending state and stop the timer. *)
let reset t =
  t.pending <- Pm.empty;
  t.urgent <- Ps.empty;
  t.dirty <- false;
  Engine.Timer.cancel t.timer

(* Checkpointing.  The jitter stream position travels with the pending
   set so a restored run draws the same MRAI intervals the original
   would have. *)
type state = {
  s_pending : (Net.Ipv4.prefix * pending) list;
  s_due : Engine.Time.t option;
  s_rng : Engine.Rng.t;
}

let state t =
  {
    s_pending = Pm.bindings t.pending;
    s_due = Engine.Timer.due t.timer;
    s_rng = Engine.Rng.copy t.rng;
  }

let restore t st =
  Engine.Rng.assign ~from:st.s_rng t.rng;
  (* Checkpoints are taken between scheduler events, where the urgent set
     is always empty and no flush is outstanding. *)
  t.urgent <- Ps.empty;
  t.dirty <- false;
  t.pending <-
    List.fold_left (fun acc (prefix, p) -> Pm.add prefix p acc) Pm.empty st.s_pending;
  match st.s_due with
  | Some at -> Engine.Timer.start_at t.timer at
  | None -> Engine.Timer.cancel t.timer
