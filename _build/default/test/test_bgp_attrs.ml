(* Bgp.Attrs and Bgp.Community. *)

let nh = Net.Ipv4.addr_of_octets 10 0 0 1

let asn = Net.Asn.of_int

let test_prepend () =
  let a = Bgp.Attrs.make ~next_hop:nh () in
  let a = Bgp.Attrs.prepend a (asn 65002) in
  let a = Bgp.Attrs.prepend a (asn 65001) in
  Alcotest.(check (list int)) "leftmost is latest" [ 65001; 65002 ]
    (List.map Net.Asn.to_int (Bgp.Attrs.as_path a));
  Alcotest.(check int) "length" 2 (Bgp.Attrs.path_length a);
  Alcotest.(check bool) "contains" true (Bgp.Attrs.path_contains a (asn 65002));
  Alcotest.(check bool) "not contains" false (Bgp.Attrs.path_contains a (asn 65009))

let test_path_endpoints () =
  let a = Bgp.Attrs.make ~as_path:[ asn 65001; asn 65002; asn 65003 ] ~next_hop:nh () in
  Alcotest.(check (option int)) "origin AS" (Some 65003)
    (Option.map Net.Asn.to_int (Bgp.Attrs.origin_as a));
  Alcotest.(check (option int)) "neighbor AS" (Some 65001)
    (Option.map Net.Asn.to_int (Bgp.Attrs.neighbor_as a));
  let empty = Bgp.Attrs.make ~next_hop:nh () in
  Alcotest.(check (option int)) "empty origin" None
    (Option.map Net.Asn.to_int (Bgp.Attrs.origin_as empty))

let test_wire_equal_ignores_local_pref () =
  let a = Bgp.Attrs.make ~as_path:[ asn 65001 ] ~local_pref:100 ~next_hop:nh () in
  let b = Bgp.Attrs.with_local_pref a 200 in
  Alcotest.(check bool) "local pref excluded" true (Bgp.Attrs.wire_equal a b);
  let c = Bgp.Attrs.with_med a 5 in
  Alcotest.(check bool) "med included" false (Bgp.Attrs.wire_equal a c);
  let d = Bgp.Attrs.prepend a (asn 65009) in
  Alcotest.(check bool) "path included" false (Bgp.Attrs.wire_equal a d)

let test_communities () =
  let c = Bgp.Community.make 65000 77 in
  let a = Bgp.Attrs.add_community (Bgp.Attrs.make ~next_hop:nh ()) c in
  Alcotest.(check bool) "has community" true (Bgp.Attrs.has_community a c);
  Alcotest.(check bool) "no other" false (Bgp.Attrs.has_community a Bgp.Community.no_export);
  Alcotest.(check string) "render" "65000:77" (Bgp.Community.to_string c);
  Alcotest.(check bool) "parse roundtrip" true
    (Bgp.Community.of_string "65000:77" = Some c);
  Alcotest.(check bool) "bad parse" true (Bgp.Community.of_string "9999999:1" = None)

let test_origin_rank () =
  Alcotest.(check bool) "igp < egp" true
    (Bgp.Attrs.origin_rank Bgp.Attrs.Igp < Bgp.Attrs.origin_rank Bgp.Attrs.Egp);
  Alcotest.(check bool) "egp < incomplete" true
    (Bgp.Attrs.origin_rank Bgp.Attrs.Egp < Bgp.Attrs.origin_rank Bgp.Attrs.Incomplete)

let suite =
  [
    Alcotest.test_case "prepend" `Quick test_prepend;
    Alcotest.test_case "path endpoints" `Quick test_path_endpoints;
    Alcotest.test_case "wire equality" `Quick test_wire_equal_ignores_local_pref;
    Alcotest.test_case "communities" `Quick test_communities;
    Alcotest.test_case "origin rank" `Quick test_origin_rank;
  ]
