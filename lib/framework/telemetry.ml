(* Exportable convergence timelines.

   A sink couples a periodic Engine.Sampler to an output file: every
   sampling interval of *simulated* time it snapshots the sim's whole
   metrics registry, and [finish] appends a final snapshot (the settled
   state) and writes the file in the format implied by its extension.
   Because snapshots contain only simulated-time-driven series (wall-clock
   profiling lives outside the registry), identical seeds produce
   byte-identical files. *)

type format = Prometheus | Jsonl | Csv

let format_to_string = function
  | Prometheus -> "prometheus"
  | Jsonl -> "jsonl"
  | Csv -> "csv"

let format_of_path path =
  match String.rindex_opt path '.' with
  | None -> Jsonl
  | Some i -> (
    match String.lowercase_ascii (String.sub path (i + 1) (String.length path - i - 1)) with
    | "prom" | "txt" -> Prometheus
    | "csv" -> Csv
    | _ -> Jsonl)

type t = {
  sim : Engine.Sim.t;
  path : string;
  format : format;
  mutable snapshots : Engine.Metrics.snapshot list; (* newest first *)
  mutable sampler : Engine.Sampler.t option;
  mutable finished : bool;
}

let default_interval = Engine.Time.sec 1

let create ?(interval = default_interval) ~sim ~path () =
  let t =
    {
      sim;
      path;
      format = format_of_path path;
      snapshots = [];
      sampler = None;
      finished = false;
    }
  in
  t.sampler <-
    Some
      (Engine.Sampler.start sim ~interval ~on_sample:(fun snap ->
           t.snapshots <- snap :: t.snapshots));
  t

let snapshots t = List.rev t.snapshots

let render t =
  let snaps = snapshots t in
  match t.format with
  (* Exposition format is point-in-time: export the final state only. *)
  | Prometheus -> (
    match List.rev snaps with
    | last :: _ -> Engine.Metrics.to_prometheus last
    | [] -> "")
  | Jsonl -> String.concat "" (List.map Engine.Metrics.to_jsonl snaps)
  | Csv ->
    Engine.Metrics.csv_header
    ^ String.concat "" (List.map (Engine.Metrics.to_csv ~header:false) snaps)

(* Stop sampling and append the final snapshot exactly once: [finished]
   guards the append, so any number of [close]/[finish] calls after the
   first leave the snapshot list untouched. *)
let close t =
  if not t.finished then begin
    t.finished <- true;
    Option.iter Engine.Sampler.stop t.sampler;
    let final =
      Engine.Metrics.snapshot (Engine.Sim.metrics t.sim) ~at:(Engine.Sim.now t.sim)
    in
    (* Skip the duplicate when the last periodic sample already landed on
       the final instant. *)
    match t.snapshots with
    | last :: _ when Engine.Time.equal last.Engine.Metrics.at final.Engine.Metrics.at -> ()
    | _ -> t.snapshots <- final :: t.snapshots
  end

let closed t = t.finished

(* [close], then write the file.  Filesystem failures (missing directory,
   permissions, full disk) come back as [Error] instead of escaping as
   [Sys_error]; the collected snapshots survive for a retry at another
   path.  Idempotent on success: later calls rewrite the same content. *)
let finish t =
  close t;
  match open_out t.path with
  | exception Sys_error msg -> Error msg
  | oc -> (
    match
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (render t))
    with
    | () -> Ok (List.length t.snapshots)
    | exception Sys_error msg -> Error msg)

(* --- Validation ----------------------------------------------------------
   Self-contained checks used by `hybridsim metrics --check` and the smoke
   target, so emitted files are verified without external tooling. *)

(* Minimal JSON syntax checker (values, objects, arrays; no number
   pedantry beyond the grammar we emit). *)
let json_valid line =
  let len = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < len then Some line.[!pos] else None in
  let advance () = incr pos in
  let fail = ref false in
  let expect c = match peek () with Some x when x = c -> advance () | _ -> fail := true in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let parse_string () =
    expect '"';
    let rec chars () =
      if !fail then ()
      else
        match peek () with
        | None -> fail := true
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
            advance ();
            chars ()
          | Some 'u' ->
            advance ();
            for _ = 1 to 4 do
              match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> fail := true
            done;
            chars ()
          | _ -> fail := true)
        | Some _ ->
          advance ();
          chars ()
    in
    chars ()
  in
  let parse_number () =
    let any = ref false in
    let rec digits () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
        any := true;
        advance ();
        digits ()
      | _ -> ()
    in
    digits ();
    if not !any then fail := true
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let rec parse_value () =
    if !fail then ()
    else begin
      skip_ws ();
      match peek () with
      | Some '"' -> parse_string ()
      | Some '{' -> parse_object ()
      | Some '[' -> parse_array ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> parse_number ()
      | _ -> fail := true
    end;
    skip_ws ()
  and parse_object () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let rec members () =
        skip_ws ();
        parse_string ();
        skip_ws ();
        expect ':';
        parse_value ();
        match peek () with
        | Some ',' ->
          advance ();
          members ()
        | _ -> expect '}'
      in
      members ()
    end
  and parse_array () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let rec elems () =
        parse_value ();
        match peek () with
        | Some ',' ->
          advance ();
          elems ()
        | _ -> expect ']'
      in
      elems ()
    end
  in
  parse_value ();
  (not !fail) && !pos = len

let non_empty_lines text =
  String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")

(* Validate [text] as [format]; [Ok n] reports the number of samples (or
   rows) checked. *)
let validate format text =
  match format with
  | Prometheus ->
    Result.map List.length (Engine.Metrics.parse_prometheus text)
  | Jsonl ->
    let lines = non_empty_lines text in
    let rec check i = function
      | [] -> Ok (List.length lines)
      | l :: rest ->
        if not (json_valid (String.trim l)) then
          Error (Fmt.str "line %d: invalid JSON" i)
        else if not (String.length l >= 2 && l.[0] = '{') then
          Error (Fmt.str "line %d: not a JSON object" i)
        else check (i + 1) rest
    in
    check 1 lines
  | Csv -> (
    match non_empty_lines text with
    | [] -> Error "empty file"
    | header :: rows ->
      if header ^ "\n" <> Engine.Metrics.csv_header then
        Error (Fmt.str "unexpected header %S" header)
      else Ok (List.length rows))

let validate_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  validate (format_of_path path) text
