(* IPv4 addresses and prefixes.

   Addresses are int32 in network order semantics (bit 31 = first octet's
   MSB); all arithmetic goes through Int32 logical ops so the full unsigned
   range works. *)

type addr = int32

type prefix = { network : int32; len : int }

let compare_addr a b =
  (* unsigned comparison *)
  Int32.unsigned_compare a b

let equal_addr = Int32.equal

let addr_of_int32 i = i

let addr_to_int32 a = a

let addr_of_octets a b c d =
  if a < 0 || a > 255 || b < 0 || b > 255 || c < 0 || c > 255 || d < 0 || d > 255 then
    invalid_arg "Ipv4.addr_of_octets";
  Int32.logor
    (Int32.shift_left (Int32.of_int a) 24)
    (Int32.logor
       (Int32.shift_left (Int32.of_int b) 16)
       (Int32.logor (Int32.shift_left (Int32.of_int c) 8) (Int32.of_int d)))

let octets a =
  let byte shift = Int32.to_int (Int32.logand (Int32.shift_right_logical a shift) 0xFFl) in
  (byte 24, byte 16, byte 8, byte 0)

let pp_addr ppf a =
  let o1, o2, o3, o4 = octets a in
  Fmt.pf ppf "%d.%d.%d.%d" o1 o2 o3 o4

let addr_to_string a = Fmt.str "%a" pp_addr a

let addr_of_string s =
  match String.split_on_char '.' (String.trim s) with
  | [ a; b; c; d ] -> (
    match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c, int_of_string_opt d) with
    | Some a, Some b, Some c, Some d
      when a >= 0 && a <= 255 && b >= 0 && b <= 255 && c >= 0 && c <= 255 && d >= 0 && d <= 255
      -> Some (addr_of_octets a b c d)
    | _ -> None)
  | _ -> None

let mask_of_len len =
  if len = 0 then 0l else Int32.shift_left (-1l) (32 - len)

(* Address bits as a non-negative OCaml int.  [Int32.to_int] returns an
   immediate value, so both directions of the hot-path int encoding are
   allocation-free reads; only [addr_of_bits] boxes (build time only). *)
let addr_to_bits (a : addr) = Int32.to_int a land 0xffff_ffff

let addr_of_bits b = Int32.of_int b

let mask_bits len = if len = 0 then 0 else 0xffff_ffff lsl (32 - len) land 0xffff_ffff

let apply_mask addr len = Int32.logand addr (mask_of_len len)

let prefix addr len =
  if len < 0 || len > 32 then invalid_arg (Fmt.str "Ipv4.prefix: bad length %d" len);
  { network = apply_mask addr len; len }

let prefix_len p = p.len

let prefix_network p = p.network

let compare_prefix p q =
  let c = Int32.unsigned_compare p.network q.network in
  if c <> 0 then c else Int.compare p.len q.len

let equal_prefix p q = compare_prefix p q = 0

let hash_prefix p = Hashtbl.hash (p.network, p.len)

let mem addr p = Int32.equal (apply_mask addr p.len) p.network

let subsumes ~outer ~inner =
  outer.len <= inner.len && Int32.equal (apply_mask inner.network outer.len) outer.network

let pp_prefix ppf p = Fmt.pf ppf "%a/%d" pp_addr p.network p.len

let prefix_to_string p = Fmt.str "%a" pp_prefix p

let prefix_of_string s =
  match String.split_on_char '/' (String.trim s) with
  | [ addr; len ] -> (
    match (addr_of_string addr, int_of_string_opt len) with
    | Some a, Some l when l >= 0 && l <= 32 -> Some (prefix a l)
    | _ -> None)
  | [ addr ] -> Option.map (fun a -> prefix a 32) (addr_of_string addr)
  | _ -> None

let host_count p = if p.len >= 31 then 1 else (1 lsl (32 - p.len)) - 2

let nth_host p n =
  let span = Int32.shift_left 1l (32 - p.len) in
  if n < 0 || (p.len < 32 && Int32.unsigned_compare (Int32.of_int n) span >= 0) then
    invalid_arg "Ipv4.nth_host";
  Int32.add p.network (Int32.of_int n)

let subnets p ~len =
  if len < p.len || len > 32 then invalid_arg "Ipv4.subnets";
  let count = 1 lsl (len - p.len) in
  let step = Int32.shift_left 1l (32 - len) in
  List.init count (fun i ->
      { network = Int32.add p.network (Int32.mul (Int32.of_int i) step); len })

(* Sequential allocator of equal-sized subnets from a pool — the automatic
   IP assignment the framework performs for AS loopbacks, link nets and
   originated prefixes. *)
module Allocator = struct
  type t = { pool : prefix; len : int; mutable next : int; capacity : int }

  let create ~(pool : prefix) ~len =
    if len < pool.len || len > 32 then invalid_arg "Ipv4.Allocator.create";
    { pool; len; next = 0; capacity = 1 lsl (len - pool.len) }

  let allocated t = t.next

  let capacity t = t.capacity

  let next t =
    if t.next >= t.capacity then failwith "Ipv4.Allocator: pool exhausted";
    let step = Int32.shift_left 1l (32 - t.len) in
    let network = Int32.add t.pool.network (Int32.mul (Int32.of_int t.next) step) in
    t.next <- t.next + 1;
    { network; len = t.len }
end

(* Mutable binary trie keyed on prefix bits.  One node per distinct bit
   path; a populated node at depth [i] holds the value for the /i prefix
   spelled by the path.  Pre-order traversal (value, zero subtree, one
   subtree) visits prefixes in exactly [compare_prefix] ascending order
   (unsigned network, then length), so iteration is a drop-in
   deterministic replacement for [Prefix_map] folds.  Empty branches are
   pruned on removal so long-lived tables don't accrete dead spines. *)
module Prefix_trie = struct
  type 'a node = {
    mutable value : 'a option;
    mutable zero : 'a node option;
    mutable one : 'a node option;
  }

  type 'a t = { root : 'a node; mutable size : int }

  let make_node () = { value = None; zero = None; one = None }

  let create () = { root = make_node (); size = 0 }

  let size t = t.size

  let is_empty t = t.size = 0

  (* Address bits as a non-negative int so the walk avoids Int32 boxing. *)
  let bits_of_network (n : int32) = Int32.to_int n land 0xffff_ffff

  let bit bits i = (bits lsr (31 - i)) land 1

  let find p t =
    let bits = bits_of_network p.network in
    let len = p.len in
    let rec go node i =
      if i = len then node.value
      else
        match (if bit bits i = 0 then node.zero else node.one) with
        | None -> None
        | Some c -> go c (i + 1)
    in
    go t.root 0

  let mem p t = Option.is_some (find p t)

  let set p v t =
    let bits = bits_of_network p.network in
    let len = p.len in
    let rec go node i =
      if i = len then begin
        if Option.is_none node.value then t.size <- t.size + 1;
        node.value <- Some v
      end
      else begin
        let child = if bit bits i = 0 then node.zero else node.one in
        match child with
        | Some c -> go c (i + 1)
        | None ->
          let c = make_node () in
          if bit bits i = 0 then node.zero <- Some c else node.one <- Some c;
          go c (i + 1)
      end
    in
    go t.root 0

  (* Returns [true] when the subtree below (and including) [node] became
     empty, letting the parent drop its link. *)
  let remove p t =
    let bits = bits_of_network p.network in
    let len = p.len in
    let rec go node i =
      if i = len then begin
        if Option.is_some node.value then begin
          t.size <- t.size - 1;
          node.value <- None
        end
      end
      else begin
        let on_zero = bit bits i = 0 in
        match (if on_zero then node.zero else node.one) with
        | None -> ()
        | Some c ->
          go c (i + 1);
          if Option.is_none c.value && Option.is_none c.zero && Option.is_none c.one
          then if on_zero then node.zero <- None else node.one <- None
      end
    in
    go t.root 0

  let lookup addr t =
    let bits = bits_of_network addr in
    let rec walk node i best =
      let best =
        match node.value with
        | Some v -> Some ({ network = apply_mask addr i; len = i }, v)
        | None -> best
      in
      if i = 32 then best
      else
        match (if bit bits i = 0 then node.zero else node.one) with
        | None -> best
        | Some c -> walk c (i + 1) best
    in
    walk t.root 0 None

  let lookup_value addr t = Option.map snd (lookup addr t)

  (* Allocation-free longest-prefix match on pre-extracted address bits
     (see [addr_to_bits]).  The walk carries the best candidate by
     ALIASING the populated node's own [value] cell — no fresh [Some] is
     built per hop — and unwraps once at the end. *)
  (* The hot-path walk is a module-level recursion (not a local [let rec]
     capturing [bits]) so calls allocate no closure; [best] only aliases
     option cells already in the trie. *)
  let rec lookup_walk bits node i best =
    let best = match node.value with Some _ as s -> s | None -> best in
    if i = 32 then best
    else
      match (if bit bits i = 0 then node.zero else node.one) with
      | None -> best
      | Some c -> lookup_walk bits c (i + 1) best

  let lookup_bits ~default bits t =
    match lookup_walk bits t.root 0 None with Some v -> v | None -> default

  let lookup_value_exn addr t =
    match lookup_walk (bits_of_network addr) t.root 0 None with
    | Some v -> v
    | None -> raise Not_found

  (* Pre-order: a node's own value (shorter length) before its zero
     subtree (same network, longer lengths) before its one subtree
     (larger networks) — i.e. [compare_prefix] ascending. *)
  let fold f t init =
    let rec walk node bits i acc =
      let acc =
        match node.value with
        | Some v -> f { network = Int32.of_int bits; len = i } v acc
        | None -> acc
      in
      let acc =
        match node.zero with Some c -> walk c bits (i + 1) acc | None -> acc
      in
      match node.one with
      | Some c -> walk c (bits lor (1 lsl (31 - i))) (i + 1) acc
      | None -> acc
    in
    walk t.root 0 0 init

  let iter f t =
    let rec walk node bits i =
      (match node.value with
      | Some v -> f { network = Int32.of_int bits; len = i } v
      | None -> ());
      (match node.zero with Some c -> walk c bits (i + 1) | None -> ());
      match node.one with
      | Some c -> walk c (bits lor (1 lsl (31 - i))) (i + 1)
      | None -> ()
    in
    walk t.root 0 0

  let entries t = List.rev (fold (fun p v acc -> (p, v) :: acc) t [])

  let keys t = List.rev (fold (fun p _ acc -> p :: acc) t [])

  let clear t =
    t.root.value <- None;
    t.root.zero <- None;
    t.root.one <- None;
    t.size <- 0
end

module Prefix_map = Map.Make (struct
  type t = prefix

  let compare = compare_prefix
end)

module Prefix_set = Set.Make (struct
  type t = prefix

  let compare = compare_prefix
end)
