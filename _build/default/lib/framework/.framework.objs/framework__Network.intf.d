lib/framework/network.mli: Addressing Bgp Cluster_ctl Config Engine Net Payload Sdn Topology
