(* BGP path attributes, hash-consed.

   Every construction funnels through [intern], which returns a canonical
   value per distinct attribute content: equal logical attrs are the SAME
   physical value, with small-int ids for O(1) equality.  A 10k-AS table
   stores each distinct AS-path once no matter how many (peer, prefix)
   slots reference it.

   Intern tables are domain-local (Domain.DLS): [Engine.Pool] runs whole
   experiments on separate domains, and each simulation constructs and
   compares attrs only within its own domain.  Ids are used ONLY for
   equality, never for ordering, so domain-local id assignment cannot
   perturb deterministic results. *)

type origin = Igp | Egp | Incomplete

let origin_rank = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

let origin_to_string = function Igp -> "i" | Egp -> "e" | Incomplete -> "?"

(* Content fields first, cached fields last: polymorphic [compare] on two
   canonical values resolves on content before it can reach the ids, and
   full-content-equal values are the same canonical value (ids equal), so
   structural equality/ordering semantics are unchanged. *)
type t = {
  as_path : Net.Asn.t list; (* leftmost = most recent hop *)
  next_hop : Net.Ipv4.addr;
  local_pref : int;
  med : int;
  origin : origin;
  communities : Community.Set.t;
  path_len : int; (* cached List.length as_path *)
  wire_id : int; (* canonical id of the wire-visible attrs (no local_pref) *)
  id : int; (* canonical id of the full attribute set *)
}

let default_local_pref = 100

(* Wire-visible content, with communities as their canonical sorted element
   list: two equal sets can have different AVL shapes, so the raw set is
   not a safe structural hash-table key. *)
type wire_key =
  Net.Asn.t list * Net.Ipv4.addr * int * origin * Community.t list

type tables = {
  paths : (Net.Asn.t list, Net.Asn.t list) Hashtbl.t; (* logical -> canonical *)
  wires : (wire_key, int) Hashtbl.t;
  full : (int * int, t) Hashtbl.t; (* (wire_id, local_pref) -> canonical *)
  mutable next_wire : int;
  mutable next_id : int;
}

let tables_key =
  Domain.DLS.new_key (fun () ->
      {
        paths = Hashtbl.create 1024;
        wires = Hashtbl.create 1024;
        full = Hashtbl.create 1024;
        next_wire = 0;
        next_id = 0;
      })

let intern_path tbl path =
  match path with
  | [] -> []
  | _ -> (
    match Hashtbl.find_opt tbl.paths path with
    | Some canonical -> canonical
    | None ->
      Hashtbl.add tbl.paths path path;
      path)

let intern ~as_path ~next_hop ~local_pref ~med ~origin ~communities =
  let tbl = Domain.DLS.get tables_key in
  let as_path = intern_path tbl as_path in
  let wkey = (as_path, next_hop, med, origin, Community.Set.elements communities) in
  let wire_id =
    match Hashtbl.find_opt tbl.wires wkey with
    | Some id -> id
    | None ->
      let id = tbl.next_wire in
      tbl.next_wire <- id + 1;
      Hashtbl.add tbl.wires wkey id;
      id
  in
  match Hashtbl.find_opt tbl.full (wire_id, local_pref) with
  | Some t -> t
  | None ->
    let id = tbl.next_id in
    tbl.next_id <- id + 1;
    let t =
      {
        as_path;
        next_hop;
        local_pref;
        med;
        origin;
        communities;
        path_len = List.length as_path;
        wire_id;
        id;
      }
    in
    Hashtbl.add tbl.full (wire_id, local_pref) t;
    t

let make ?(as_path = []) ?(local_pref = default_local_pref) ?(med = 0) ?(origin = Igp)
    ?(communities = Community.Set.empty) ~next_hop () =
  intern ~as_path ~next_hop ~local_pref ~med ~origin ~communities

let as_path t = t.as_path

let path_length t = t.path_len

let path_contains t asn = List.exists (Net.Asn.equal asn) t.as_path

let prepend t asn =
  (* [t.as_path] is canonical, so the new cons shares its tail; interning
     the cons then shares the whole path across all routes carrying it. *)
  intern ~as_path:(asn :: t.as_path) ~next_hop:t.next_hop ~local_pref:t.local_pref
    ~med:t.med ~origin:t.origin ~communities:t.communities

let origin_as t =
  match List.rev t.as_path with [] -> None | last :: _ -> Some last

let neighbor_as t = match t.as_path with [] -> None | first :: _ -> Some first

let with_local_pref t lp =
  if lp = t.local_pref then t
  else
    intern ~as_path:t.as_path ~next_hop:t.next_hop ~local_pref:lp ~med:t.med
      ~origin:t.origin ~communities:t.communities

let with_next_hop t nh =
  if Net.Ipv4.equal_addr nh t.next_hop then t
  else
    intern ~as_path:t.as_path ~next_hop:nh ~local_pref:t.local_pref ~med:t.med
      ~origin:t.origin ~communities:t.communities

let with_med t med =
  if med = t.med then t
  else
    intern ~as_path:t.as_path ~next_hop:t.next_hop ~local_pref:t.local_pref ~med
      ~origin:t.origin ~communities:t.communities

let add_community t c =
  if Community.Set.mem c t.communities then t
  else
    intern ~as_path:t.as_path ~next_hop:t.next_hop ~local_pref:t.local_pref
      ~med:t.med ~origin:t.origin
      ~communities:(Community.Set.add c t.communities)

let has_community t c = Community.Set.mem c t.communities

let equal a b = a == b

(* Equality of everything a peer would see on the wire: used to suppress
   duplicate advertisements in Adj-RIB-Out.  With interning this is a
   single int comparison. *)
let wire_equal a b = a.wire_id = b.wire_id

let id t = t.id

let wire_id t = t.wire_id

type intern_stats = { distinct_paths : int; distinct_wire : int; distinct_full : int }

let intern_stats () =
  let tbl = Domain.DLS.get tables_key in
  {
    distinct_paths = Hashtbl.length tbl.paths;
    distinct_wire = Hashtbl.length tbl.wires;
    distinct_full = Hashtbl.length tbl.full;
  }

let pp_path ppf path =
  if path = [] then Fmt.string ppf "(empty)"
  else Fmt.(list ~sep:(any " ") Net.Asn.pp) ppf path

let pp ppf t =
  Fmt.pf ppf "path=[%a] nh=%a lp=%d med=%d origin=%s" pp_path t.as_path Net.Ipv4.pp_addr
    t.next_hop t.local_pref t.med (origin_to_string t.origin)

(* Re-intern on the CURRENT domain: intern tables live in Domain.DLS, so a
   value minted on another domain (a cross-shard message payload) must be
   rebuilt here before [equal]'s pointer comparison is meaningful.  On the
   minting domain this is the identity. *)
let rehash t =
  intern ~as_path:t.as_path ~next_hop:t.next_hop ~local_pref:t.local_pref ~med:t.med
    ~origin:t.origin ~communities:t.communities
