(** End-to-end connectivity and loss monitoring: a zero-time walker over
    programmed forwarding state, and real probe streams through the
    fabric. *)

type outcome =
  | Delivered of Net.Asn.t list  (** AS-level path, source first *)
  | Blackhole of Net.Asn.t list
  | Loop of Net.Asn.t list
  | Ttl_exceeded of Net.Asn.t list

val outcome_path : outcome -> Net.Asn.t list

val is_delivered : outcome -> bool

val walk : ?max_hops:int -> Network.t -> src:Net.Asn.t -> dst_addr:Net.Ipv4.addr -> outcome
(** Follow FIBs/flow tables hop by hop; a next hop over a failed link is
    a blackhole. *)

val reachable : Network.t -> src:Net.Asn.t -> dst:Net.Asn.t -> bool
(** Walk from [src] to [dst]'s host address. *)

val connectivity_matrix :
  Network.t -> origins:Net.Asn.t list -> (Net.Asn.t * Net.Asn.t * bool) list
(** All-pairs reachability from every AS to each origin's host. *)

type trace_hop = { hop : Net.Asn.t; cumulative : Engine.Time.span }

val traceroute :
  Network.t -> src:Net.Asn.t -> dst:Net.Asn.t -> outcome * trace_hop list
(** The walker annotated with cumulative one-way latency per hop. *)

val pp_traceroute : Format.formatter -> outcome * trace_hop list -> unit

type probe_stats = {
  mutable sent : int;
  mutable received : int;
  mutable replies : int;
  mutable rtt_sum_us : int;
}

type stream = {
  src : Net.Asn.t;
  dst : Net.Asn.t;
  stats : probe_stats;
  mutable sent_at : (int * Engine.Time.t) list;
}

val start_stream :
  Network.t ->
  src:Net.Asn.t ->
  dst:Net.Asn.t ->
  interval:Engine.Time.span ->
  count:int ->
  stream
(** Schedule [count] echo probes, [interval] apart, from now.  Loss and
    RTT accumulate as the simulation runs. *)

val loss_ratio : stream -> float
(** 1 − replies/sent. *)

val mean_rtt_ms : stream -> float

val pp_outcome : Format.formatter -> outcome -> unit
