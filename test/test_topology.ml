(* Topology: spec validation, generators, dataset loaders. *)

let asn = Topology.Artificial.asn

let test_clique () =
  let s = Topology.Artificial.clique 5 in
  Alcotest.(check int) "nodes" 5 (Topology.Spec.node_count s);
  Alcotest.(check int) "edges" 10 (Topology.Spec.link_count s);
  Alcotest.(check bool) "valid" true (Topology.Spec.is_valid s);
  Alcotest.(check bool) "connected" true (Topology.Spec.is_connected s);
  Alcotest.(check int) "degree" 4 (List.length (Topology.Spec.neighbors s (asn 2)))

let test_star () =
  let s = Topology.Artificial.star 6 in
  Alcotest.(check int) "edges" 5 (Topology.Spec.link_count s);
  Alcotest.(check int) "hub degree" 5 (List.length (Topology.Spec.neighbors s (asn 0)));
  (* leaves are customers: seen from a leaf, the hub is its provider *)
  match Topology.Spec.links_of s (asn 1) with
  | [ l ] ->
    Alcotest.(check string) "leaf sees provider" "provider"
      (Topology.Spec.neighbor_role_to_string (Topology.Spec.neighbor_role_of_link ~me:(asn 1) l));
    Alcotest.(check string) "hub sees customer" "customer"
      (Topology.Spec.neighbor_role_to_string (Topology.Spec.neighbor_role_of_link ~me:(asn 0) l))
  | _ -> Alcotest.fail "leaf should have one link"

let test_ring_line_tree_grid () =
  let ring = Topology.Artificial.ring 7 in
  Alcotest.(check int) "ring edges" 7 (Topology.Spec.link_count ring);
  let line = Topology.Artificial.line 7 in
  Alcotest.(check int) "line edges" 6 (Topology.Spec.link_count line);
  let tree = Topology.Artificial.tree 4 in
  Alcotest.(check int) "tree nodes" 15 (Topology.Spec.node_count tree);
  Alcotest.(check int) "tree edges" 14 (Topology.Spec.link_count tree);
  let grid = Topology.Artificial.grid 3 4 in
  Alcotest.(check int) "grid nodes" 12 (Topology.Spec.node_count grid);
  Alcotest.(check int) "grid edges" 17 (Topology.Spec.link_count grid);
  List.iter
    (fun s -> Alcotest.(check bool) (Topology.Spec.title s) true (Topology.Spec.is_connected s))
    [ ring; line; tree; grid ]

let test_with_sdn () =
  let s = Topology.Artificial.clique 4 in
  let s = Topology.Spec.with_sdn s [ asn 1; asn 3 ] in
  Alcotest.(check int) "sdn count" 2 (List.length (Topology.Spec.sdn_asns s));
  Alcotest.(check int) "legacy count" 2 (List.length (Topology.Spec.legacy_asns s));
  Alcotest.(check bool) "role of" true (Topology.Spec.role_of s (asn 1) = Topology.Spec.Sdn);
  (* reassignment replaces, not accumulates *)
  let s = Topology.Spec.with_sdn s [ asn 0 ] in
  Alcotest.(check int) "sdn replaced" 1 (List.length (Topology.Spec.sdn_asns s));
  match Topology.Spec.with_sdn s [ Net.Asn.of_int 99 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown ASN must raise"

let test_validation () =
  let n = Topology.Spec.node in
  let bad_dup =
    Topology.Spec.make ~title:"dup" ~nodes:[ n (asn 0); n (asn 0) ] ~links:[]
  in
  Alcotest.(check bool) "duplicate node" false (Topology.Spec.is_valid bad_dup);
  let bad_unknown =
    Topology.Spec.make ~title:"unk" ~nodes:[ n (asn 0) ]
      ~links:[ Topology.Spec.link (asn 0) (asn 1) ]
  in
  Alcotest.(check bool) "unknown endpoint" false (Topology.Spec.is_valid bad_unknown);
  let bad_self =
    Topology.Spec.make ~title:"self" ~nodes:[ n (asn 0) ]
      ~links:[ Topology.Spec.link (asn 0) (asn 0) ]
  in
  Alcotest.(check bool) "self link" false (Topology.Spec.is_valid bad_self);
  let bad_dup_link =
    Topology.Spec.make ~title:"dl" ~nodes:[ n (asn 0); n (asn 1) ]
      ~links:[ Topology.Spec.link (asn 0) (asn 1); Topology.Spec.link (asn 1) (asn 0) ]
  in
  Alcotest.(check int) "duplicate link reported" 1
    (List.length (Topology.Spec.validate bad_dup_link))

let test_caida_parse () =
  let text = "# comment\n65001|65002|-1\n65002|65003|0\n65003|65004|2\n\n" in
  match Topology.Caida.parse_string text with
  | Error e -> Alcotest.failf "parse failed: %a" Topology.Caida.pp_parse_error e
  | Ok spec ->
    Alcotest.(check int) "nodes" 4 (Topology.Spec.node_count spec);
    Alcotest.(check int) "links" 3 (Topology.Spec.link_count spec);
    (* 65001|65002|-1 means 65001 is the provider *)
    let l = List.hd (Topology.Spec.links_of spec (Net.Asn.of_int 65001)) in
    Alcotest.(check string) "provider side" "customer"
      (Topology.Spec.neighbor_role_to_string
         (Topology.Spec.neighbor_role_of_link ~me:(Net.Asn.of_int 65001) l))

let test_caida_parse_errors () =
  (match Topology.Caida.parse_string "65001|65002|7" with
  | Error { Topology.Caida.line = 1; _ } -> ()
  | Error _ | Ok _ -> Alcotest.fail "unknown relationship must fail");
  match Topology.Caida.parse_string "not-a-line" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must fail"

let test_caida_parse_malformed () =
  (* self-loops are structural corruption, not a droppable line *)
  (match Topology.Caida.parse_string "65001|65002|-1\n65003|65003|0\n" with
  | Error { Topology.Caida.line = 2; reason; _ } ->
    Alcotest.(check bool)
      "self-loop named" true
      (Astring_like.contains reason "self-loop")
  | Error e -> Alcotest.failf "wrong error: %a" Topology.Caida.pp_parse_error e
  | Ok _ -> Alcotest.fail "self-loop must fail");
  (* a repeated pair must be rejected even when the relationship agrees *)
  (match Topology.Caida.parse_string "65001|65002|-1\n65003|65004|0\n65001|65002|-1\n" with
  | Error { Topology.Caida.line = 3; reason; _ } ->
    Alcotest.(check bool)
      "duplicate cites first line" true
      (Astring_like.contains reason "line 1")
  | Error e -> Alcotest.failf "wrong error: %a" Topology.Caida.pp_parse_error e
  | Ok _ -> Alcotest.fail "duplicate pair must fail");
  (* ... and when it conflicts, and regardless of orientation *)
  match Topology.Caida.parse_string "65001|65002|-1\n65002|65001|0\n" with
  | Error { Topology.Caida.line = 2; _ } -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Topology.Caida.pp_parse_error e
  | Ok _ -> Alcotest.fail "conflicting reversed pair must fail"

let test_caida_roundtrip () =
  let rng = Engine.Rng.create 5 in
  let spec = Topology.Caida.generate ~tier1:3 ~tier2:5 ~stubs:8 rng in
  Alcotest.(check bool) "generated valid" true (Topology.Spec.is_valid spec);
  Alcotest.(check bool) "generated connected" true (Topology.Spec.is_connected spec);
  let text = Topology.Caida.render spec in
  match Topology.Caida.parse_string text with
  | Error e -> Alcotest.failf "roundtrip parse failed: %a" Topology.Caida.pp_parse_error e
  | Ok back ->
    Alcotest.(check int) "same nodes" (Topology.Spec.node_count spec)
      (Topology.Spec.node_count back);
    Alcotest.(check int) "same links" (Topology.Spec.link_count spec)
      (Topology.Spec.link_count back)

let test_iplane_parse () =
  let text = "# pops\n0 4 3000\n1 5 2000\n4 0 1500\n2 3\n" in
  (* pops_per_as = 4: pops 0-3 -> AS65001, pops 4-7 -> AS65002 *)
  match Topology.Iplane.parse_string text with
  | Error e -> Alcotest.failf "parse failed: %a" Topology.Iplane.pp_parse_error e
  | Ok spec ->
    Alcotest.(check int) "ASes" 2 (Topology.Spec.node_count spec);
    (* links 0-4, 1-5 and 4-0 collapse to one AS link; 2-3 is intra-AS *)
    Alcotest.(check int) "links" 1 (Topology.Spec.link_count spec);
    let l = List.hd (Topology.Spec.links spec) in
    Alcotest.(check (option int)) "min latency kept" (Some 1500) l.Topology.Spec.delay_us

let test_iplane_generate () =
  let rng = Engine.Rng.create 9 in
  let spec = Topology.Iplane.generate ~ases:8 ~pops_per_as:3 rng in
  Alcotest.(check bool) "valid" true (Topology.Spec.is_valid spec);
  Alcotest.(check bool) "has links" true (Topology.Spec.link_count spec > 0);
  Alcotest.(check bool) "at most 8 ASes" true (Topology.Spec.node_count spec <= 8)

let prop_er_connected =
  QCheck.Test.make ~name:"erdos-renyi always connected" ~count:50
    QCheck.(pair small_int (int_range 2 20))
    (fun (seed, n) ->
      let rng = Engine.Rng.create seed in
      let s = Topology.Random_models.erdos_renyi rng ~n ~p:0.1 in
      Topology.Spec.is_connected s && Topology.Spec.is_valid s)

let prop_ba_connected_valid =
  QCheck.Test.make ~name:"barabasi-albert connected and valid" ~count:50
    QCheck.(pair small_int (int_range 4 25))
    (fun (seed, n) ->
      let rng = Engine.Rng.create seed in
      let s = Topology.Random_models.barabasi_albert rng ~n ~m:2 in
      Topology.Spec.is_connected s && Topology.Spec.is_valid s)

let prop_glp_connected_valid =
  QCheck.Test.make ~name:"glp connected and valid" ~count:50
    QCheck.(pair small_int (int_range 5 30))
    (fun (seed, n) ->
      let rng = Engine.Rng.create seed in
      let s = Topology.Random_models.glp rng ~n ~m:2 in
      Topology.Spec.is_connected s && Topology.Spec.is_valid s)

let test_glp_heavier_tail_than_ba () =
  (* GLP's densification should produce a higher max degree than BA at
     equal size, at least typically; check over a few seeds *)
  let max_degree s =
    List.fold_left
      (fun acc a -> max acc (List.length (Topology.Spec.neighbors s a)))
      0 (Topology.Spec.asns s)
  in
  let wins = ref 0 in
  List.iter
    (fun seed ->
      let glp = Topology.Random_models.glp (Engine.Rng.create seed) ~n:60 ~m:2 in
      let ba = Topology.Random_models.barabasi_albert (Engine.Rng.create seed) ~n:60 ~m:2 in
      if max_degree glp >= max_degree ba then incr wins)
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "glp hub at least as large usually" true (!wins >= 3)

let prop_waxman_connected =
  QCheck.Test.make ~name:"waxman connected and valid" ~count:50
    QCheck.(pair small_int (int_range 2 20))
    (fun (seed, n) ->
      let rng = Engine.Rng.create seed in
      let s = Topology.Random_models.waxman rng ~n in
      Topology.Spec.is_connected s && Topology.Spec.is_valid s)

let prop_caida_generate_valid =
  QCheck.Test.make ~name:"caida generator valid and connected" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let rng = Engine.Rng.create seed in
      let s = Topology.Caida.generate ~tier1:3 ~tier2:6 ~stubs:10 rng in
      Topology.Spec.is_valid s && Topology.Spec.is_connected s)

let suite =
  [
    Alcotest.test_case "clique" `Quick test_clique;
    Alcotest.test_case "star relationships" `Quick test_star;
    Alcotest.test_case "ring/line/tree/grid" `Quick test_ring_line_tree_grid;
    Alcotest.test_case "with_sdn" `Quick test_with_sdn;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "caida parse" `Quick test_caida_parse;
    Alcotest.test_case "caida parse errors" `Quick test_caida_parse_errors;
    Alcotest.test_case "caida malformed input" `Quick test_caida_parse_malformed;
    Alcotest.test_case "caida generate/render roundtrip" `Quick test_caida_roundtrip;
    Alcotest.test_case "iplane parse" `Quick test_iplane_parse;
    Alcotest.test_case "iplane generate" `Quick test_iplane_generate;
    QCheck_alcotest.to_alcotest prop_er_connected;
    QCheck_alcotest.to_alcotest prop_ba_connected_valid;
    QCheck_alcotest.to_alcotest prop_glp_connected_valid;
    Alcotest.test_case "glp degree tail" `Quick test_glp_heavier_tail_than_ba;
    QCheck_alcotest.to_alcotest prop_waxman_connected;
    QCheck_alcotest.to_alcotest prop_caida_generate_valid;
  ]
