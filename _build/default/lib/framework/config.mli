(** Framework-level experiment configuration. *)

type t = {
  bgp : Bgp.Config.t;
  damping : Bgp.Damping.config option;
      (** RFC 2439 route-flap damping on legacy routers *)
  controller : Cluster_ctl.Controller.config;
  speaker_mrai : Bgp.Config.t option;
      (** pace the cluster speaker's announcements like a conventional BGP
          implementation ([None] = ExaBGP-style immediate emission) *)
  default_link_delay : Engine.Time.span;
  collector_link_delay : Engine.Time.span;
  control_link_delay : Engine.Time.span;
  wire_transport : bool;
      (** pass every BGP message through the RFC 4271 binary codec at the
          sender, as a TCP transport would *)
}

val default : t
(** The paper's Quagga-like deployment: 30 s jittered MRAI (withdrawals
    included), 2 s controller recomputation delay. *)

val fast_test : t
(** Second-scale timers for unit tests. *)

val with_mrai : t -> Engine.Time.span -> t

val with_recompute_delay : t -> Engine.Time.span -> t
