lib/net/link.ml: Engine Fmt
