(** Longest-prefix-match forwarding table (binary trie), generic in the
    entry type. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val insert : 'a t -> Ipv4.prefix -> 'a -> unit
(** Replaces any existing entry for exactly this prefix. *)

val find : 'a t -> Ipv4.prefix -> 'a option
(** Exact-prefix lookup. *)

val remove : 'a t -> Ipv4.prefix -> unit

val lookup : 'a t -> Ipv4.addr -> (Ipv4.prefix * 'a) option
(** Longest-prefix match for an address. *)

val lookup_value : 'a t -> Ipv4.addr -> 'a option

val lookup_exn : 'a t -> Ipv4.addr -> 'a
(** {!lookup_value} without the per-lookup [option] boxing: a hit
    allocates nothing.  @raise Not_found when no prefix covers [addr]. *)

val lookup_bits : 'a t -> default:'a -> int -> 'a
(** Allocation- and exception-free longest-prefix match on
    {!Ipv4.addr_to_bits} int bits; [default] on a miss. *)

val entries : 'a t -> (Ipv4.prefix * 'a) list
(** Sorted by prefix. *)

val clear : 'a t -> unit

val iter : 'a t -> (Ipv4.prefix -> 'a -> unit) -> unit
