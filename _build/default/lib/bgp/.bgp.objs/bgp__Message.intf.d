lib/bgp/message.mli: Attrs Format Net
