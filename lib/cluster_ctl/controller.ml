(* The proof-of-concept IDR SDN controller (the POX application role).

   Inputs: external BGP updates relayed by the cluster speaker, port
   status from member switches, and locally originated prefixes.
   State: the switch graph, a cluster-wide external RIB, and the last
   computed per-prefix decisions.
   Outputs: FLOW_MODs to member switches and BGP announcements through
   the speaker — one centralized decision replacing the members'
   distributed path exploration.

   Recomputation is *delayed*: external input marks prefixes dirty and a
   batch recomputation runs after [recompute_delay], which both
   rate-limits route flaps during bursts (the paper's design insight) and
   is the mechanism by which centralization shortens convergence. *)

module Pm = Net.Ipv4.Prefix_map

type config = {
  recompute_delay : Engine.Time.span;
  proactive : bool;
      (* true: push flow rules for every decision (the paper's mode);
         false: install reactively on PACKET_IN with an idle timeout *)
  reactive_idle_timeout : Engine.Time.span;
}

let default_config =
  {
    recompute_delay = Engine.Time.sec 2;
    proactive = true;
    reactive_idle_timeout = Engine.Time.sec 30;
  }

type stats = {
  mutable updates_in : int;
  mutable recompute_batches : int;
  mutable prefixes_recomputed : int;
  mutable recompute_skipped : int;
  mutable flow_mods : int;
  mutable announces : int;
  mutable withdraws : int;
  mutable decision_changes : int;
}

(* Registry handles, created once per controller. *)
type telemetry = {
  updates_in_c : Engine.Metrics.Counter.t;
  recompute_c : Engine.Metrics.Counter.t;
  prefixes_recomputed_c : Engine.Metrics.Counter.t;
  recompute_skipped_c : Engine.Metrics.Counter.t;
  dijkstra_runs_c : Engine.Metrics.Counter.t;
  flow_mods_c : Engine.Metrics.Counter.t;
  announce_c : Engine.Metrics.Counter.t;
  withdraw_c : Engine.Metrics.Counter.t;
  decision_changes_c : Engine.Metrics.Counter.t;
}

(* Everything [recompute_prefix] reads for one prefix.  When these match
   the previous run's inputs, [As_graph.compute] — deterministic — would
   reproduce the previous decisions, the flow diff would be empty and the
   speaker would deduplicate every announcement, so the run is skipped
   outright.  The RIB slice is kept in canonical (member, neighbor) order
   by [upsert_route], so plain list equality is a faithful comparison. *)
type fingerprint = {
  fp_routes : As_graph.exit_route list;
  fp_originators : Net.Asn.Set.t;
  fp_graph_version : int;
}

let exit_route_equal (a : As_graph.exit_route) (b : As_graph.exit_route) =
  Net.Asn.equal a.As_graph.member b.As_graph.member
  && Net.Asn.equal a.As_graph.neighbor b.As_graph.neighbor
  && a.As_graph.rel = b.As_graph.rel
  && Bgp.Attrs.wire_equal a.As_graph.attrs b.As_graph.attrs
  && a.As_graph.attrs.Bgp.Attrs.local_pref = b.As_graph.attrs.Bgp.Attrs.local_pref

let fingerprint_equal a b =
  a.fp_graph_version = b.fp_graph_version
  && Net.Asn.Set.equal a.fp_originators b.fp_originators
  && List.compare_lengths a.fp_routes b.fp_routes = 0
  && List.for_all2 exit_route_equal a.fp_routes b.fp_routes

type t = {
  sim : Engine.Sim.t;
  node : Engine.Node.t;
  config : config;
  flow_idle_timeout : Engine.Time.span option;
  flow_hard_timeout : Engine.Time.span option;
  members : Net.Asn.Set.t;
  speaker : Speaker.t;
  send_switch : member:Net.Asn.t -> Sdn.Openflow.t -> bool;
  node_of_asn : Net.Asn.t -> int option;
  asn_of_node : int -> Net.Asn.t option;
  addr_of_member : Net.Asn.t -> Net.Ipv4.addr;
  policy_of : member:Net.Asn.t -> neighbor:Net.Asn.t -> Bgp.Policy.t;
  switch_graph : Net.Graph.t;
  arena : As_graph.arena;
  mutable rib : As_graph.exit_route list Pm.t;
  mutable originated : Net.Asn.Set.t Pm.t;
  mutable installed : Sdn.Flow.action Net.Asn.Map.t Pm.t;
  mutable decisions : As_graph.decision Net.Asn.Map.t Pm.t;
  mutable fingerprints : fingerprint Pm.t;
  mutable recompute : Recompute.t option; (* set right after creation *)
  mutable resyncing : Net.Asn.Set.t;
      (* members owed a RESYNC_DONE once the next recompute batch has
         reinstalled their flow state (fallback-exit handshake) *)
  mutable on_decision_change :
    (Net.Ipv4.prefix -> Net.Asn.t -> As_graph.decision option -> unit) array;
  stats : stats;
  tm : telemetry;
}

let log t fmt = Engine.Sim.logf t.sim ~node:"controller" ~category:"controller" fmt

let node t = t.node

let members t = Net.Asn.Set.elements t.members

let stats t = t.stats

let switch_graph t = t.switch_graph

let decisions_for t prefix =
  Option.value (Pm.find_opt prefix t.decisions) ~default:Net.Asn.Map.empty

let decision t ~member prefix = Net.Asn.Map.find_opt member (decisions_for t prefix)

let rib_routes t prefix = Option.value (Pm.find_opt prefix t.rib) ~default:[]

let known_prefixes t =
  let s = Net.Ipv4.Prefix_set.empty in
  let s = Pm.fold (fun p _ acc -> Net.Ipv4.Prefix_set.add p acc) t.rib s in
  let s = Pm.fold (fun p _ acc -> Net.Ipv4.Prefix_set.add p acc) t.originated s in
  let s = Pm.fold (fun p _ acc -> Net.Ipv4.Prefix_set.add p acc) t.decisions s in
  Net.Ipv4.Prefix_set.elements s

(* Rebuild-on-subscribe (rare) so notification (hot) is a plain array
   iteration — never the quadratic [subscribers @ [f]] pattern. *)
let subscribe_decision_change t f =
  t.on_decision_change <- Array.append t.on_decision_change [| f |]

(* --- Announcement construction ---------------------------------------- *)

(* What session (member, neighbor) should advertise for this prefix given
   the decision map: the member's centrally selected route with its own
   ASN prepended (AS identity preserved), filtered by loop check, by
   not-back-to-exit, and by the member's export policy. *)
let announcement t ~member ~neighbor prefix decision_map =
  match Net.Asn.Map.find_opt member decision_map with
  | None -> None
  | Some (d : As_graph.decision) ->
    let back_to_exit =
      match d.As_graph.hop with
      | As_graph.Exit { neighbor = n } -> Net.Asn.equal n neighbor
      | As_graph.Bridge { via_neighbor; _ } -> Net.Asn.equal via_neighbor neighbor
      | As_graph.Deliver_local | As_graph.Intra _ -> false
    in
    if back_to_exit then None
    else begin
      let as_path = member :: d.As_graph.as_path in
      if List.exists (Net.Asn.equal neighbor) as_path then None
      else begin
        let attrs =
          Bgp.Attrs.make ~as_path ~next_hop:(t.addr_of_member member) ()
        in
        let policy = t.policy_of ~member ~neighbor in
        Bgp.Policy.export policy ~provenance:d.As_graph.provenance ~prefix attrs
      end
    end

let sync_session t ~member ~neighbor prefix decision_map =
  match announcement t ~member ~neighbor prefix decision_map with
  | Some attrs ->
    t.stats.announces <- t.stats.announces + 1;
    Engine.Metrics.Counter.inc t.tm.announce_c;
    Speaker.announce t.speaker ~member ~neighbor prefix attrs
  | None ->
    t.stats.withdraws <- t.stats.withdraws + 1;
    Engine.Metrics.Counter.inc t.tm.withdraw_c;
    Speaker.withdraw t.speaker ~member ~neighbor prefix

(* --- Recomputation ------------------------------------------------------ *)

let recompute_prefix t prefix =
  if Engine.Causal.enabled (Engine.Sim.causal t.sim) then
    Engine.Sim.annotate t.sim ~category:"ctrl.recompute" ~node:"controller"
      ~label:(Net.Ipv4.prefix_to_string prefix) ();
  let originators = Option.value (Pm.find_opt prefix t.originated) ~default:Net.Asn.Set.empty in
  let fp =
    {
      fp_routes = rib_routes t prefix;
      fp_originators = originators;
      fp_graph_version = Net.Graph.version t.switch_graph;
    }
  in
  match Pm.find_opt prefix t.fingerprints with
  | Some prev when fingerprint_equal prev fp ->
    (* Unchanged inputs: the deterministic pipeline would reproduce the
       previous decisions, flow rules and announcements verbatim. *)
    t.stats.recompute_skipped <- t.stats.recompute_skipped + 1;
    Engine.Metrics.Counter.inc t.tm.recompute_skipped_c
  | Some _ | None ->
  t.fingerprints <- Pm.add prefix fp t.fingerprints;
  t.stats.prefixes_recomputed <- t.stats.prefixes_recomputed + 1;
  Engine.Metrics.Counter.inc t.tm.prefixes_recomputed_c;
  (* As_graph.compute runs exactly one Dijkstra over the switch graph. *)
  Engine.Metrics.Counter.inc t.tm.dijkstra_runs_c;
  let desired =
    As_graph.compute ~arena:t.arena ~members:t.members ~switch_graph:t.switch_graph
      ~routes:fp.fp_routes ~originators ()
  in
  (* Notify decision changes (convergence instrumentation). *)
  let previous = decisions_for t prefix in
  Net.Asn.Set.iter
    (fun member ->
      let old_d = Net.Asn.Map.find_opt member previous in
      let new_d = Net.Asn.Map.find_opt member desired in
      let changed =
        match (old_d, new_d) with
        | None, None -> false
        | Some a, Some b ->
          a.As_graph.hop <> b.As_graph.hop
          || a.As_graph.as_path <> b.As_graph.as_path
        | None, Some _ | Some _, None -> true
      in
      if changed then begin
        t.stats.decision_changes <- t.stats.decision_changes + 1;
        Engine.Metrics.Counter.inc t.tm.decision_changes_c;
        log t "decision %a %a: %a" Net.Ipv4.pp_prefix prefix Net.Asn.pp member
          (Fmt.option ~none:(Fmt.any "unreachable") As_graph.pp_decision)
          new_d;
        Array.iter (fun f -> f prefix member new_d) t.on_decision_change
      end)
    t.members;
  t.decisions <- Pm.add prefix desired t.decisions;
  (* Program the data plane. *)
  let installed = Option.value (Pm.find_opt prefix t.installed) ~default:Net.Asn.Map.empty in
  let changes, new_installed =
    Flow_compiler.diff ?idle_timeout:t.flow_idle_timeout ?hard_timeout:t.flow_hard_timeout
      ~prefix ~node_of_asn:t.node_of_asn ~members:(members t) ~installed ~desired ()
  in
  (* Reactive mode installs rules only on demand: recomputation refreshes
     or deletes rules already on a switch but never pushes new ones. *)
  let changes, new_installed =
    if t.config.proactive then (changes, new_installed)
    else begin
      let had m = Net.Asn.Map.mem m installed in
      ( List.filter (fun (c : Flow_compiler.change) -> had c.Flow_compiler.member) changes,
        Net.Asn.Map.filter (fun m _ -> had m) new_installed )
    end
  in
  t.installed <- Pm.add prefix new_installed t.installed;
  List.iter
    (fun { Flow_compiler.member; mods } ->
      List.iter
        (fun m ->
          t.stats.flow_mods <- t.stats.flow_mods + 1;
          Engine.Metrics.Counter.inc t.tm.flow_mods_c;
          ignore (t.send_switch ~member m))
        mods)
    changes;
  (* Update the legacy world through the speaker. *)
  List.iter
    (fun (member, neighbor) -> sync_session t ~member ~neighbor prefix desired)
    (Speaker.sessions t.speaker)

(* Close the fallback-exit handshake: the batch that just ran reinstalled
   the flow state of every member awaiting resync, so release them from
   legacy fallback mode. *)
let flush_resyncing t =
  if not (Net.Asn.Set.is_empty t.resyncing) then begin
    let pending = t.resyncing in
    t.resyncing <- Net.Asn.Set.empty;
    Net.Asn.Set.iter
      (fun member ->
        log t "resync done -> %a" Net.Asn.pp member;
        ignore (t.send_switch ~member Sdn.Openflow.Resync_done))
      pending
  end

let recompute_batch t prefixes =
  t.stats.recompute_batches <- t.stats.recompute_batches + 1;
  Engine.Metrics.Counter.inc t.tm.recompute_c;
  (* One batching scope per recompute event: the speaker packs every
     (re)announcement of the batch into one UPDATE per session. *)
  Speaker.with_batch t.speaker (fun () -> List.iter (recompute_prefix t) prefixes);
  flush_resyncing t

let mark_dirty t prefix =
  match t.recompute with
  | Some r -> Recompute.mark_dirty r prefix
  | None -> Speaker.with_batch t.speaker (fun () -> recompute_prefix t prefix)

(* --- Inputs ------------------------------------------------------------- *)

let upsert_route t prefix (route : As_graph.exit_route) =
  let same (r : As_graph.exit_route) =
    Net.Asn.equal r.As_graph.member route.As_graph.member
    && Net.Asn.equal r.As_graph.neighbor route.As_graph.neighbor
  in
  let others = List.filter (fun r -> not (same r)) (rib_routes t prefix) in
  let routes =
    List.sort
      (fun (a : As_graph.exit_route) (b : As_graph.exit_route) ->
        let c = Net.Asn.compare a.As_graph.member b.As_graph.member in
        if c <> 0 then c else Net.Asn.compare a.As_graph.neighbor b.As_graph.neighbor)
      (route :: others)
  in
  t.rib <- Pm.add prefix routes t.rib

let remove_route t prefix ~member ~neighbor =
  let routes =
    List.filter
      (fun (r : As_graph.exit_route) ->
        not
          (Net.Asn.equal r.As_graph.member member
          && Net.Asn.equal r.As_graph.neighbor neighbor))
      (rib_routes t prefix)
  in
  t.rib <- (if routes = [] then Pm.remove prefix t.rib else Pm.add prefix routes t.rib)

let on_external_update t ~member ~neighbor (u : Bgp.Message.update) =
  t.stats.updates_in <- t.stats.updates_in + 1;
  Engine.Metrics.Counter.inc t.tm.updates_in_c;
  List.iter
    (fun prefix ->
      remove_route t prefix ~member ~neighbor;
      mark_dirty t prefix)
    u.Bgp.Message.withdrawn;
  List.iter
    (fun (prefix, attrs) ->
      let policy = t.policy_of ~member ~neighbor in
      (match Bgp.Policy.import policy ~me:member ~prefix attrs with
      | Some attrs ->
        upsert_route t prefix
          { As_graph.member; neighbor; attrs; rel = Bgp.Policy.relationship policy }
      | None -> remove_route t prefix ~member ~neighbor);
      mark_dirty t prefix)
    u.Bgp.Message.announced

let on_session_change t ~member ~neighbor ~up =
  if up then begin
    (* Full-table sync toward the new session from current decisions. *)
    Speaker.with_batch t.speaker (fun () ->
        List.iter
          (fun prefix -> sync_session t ~member ~neighbor prefix (decisions_for t prefix))
          (known_prefixes t))
  end
  else begin
    (* Flush everything learned over this peering. *)
    let affected =
      Pm.fold
        (fun prefix routes acc ->
          if
            List.exists
              (fun (r : As_graph.exit_route) ->
                Net.Asn.equal r.As_graph.member member
                && Net.Asn.equal r.As_graph.neighbor neighbor)
              routes
          then prefix :: acc
          else acc)
        t.rib []
    in
    List.iter
      (fun prefix ->
        remove_route t prefix ~member ~neighbor;
        mark_dirty t prefix)
      affected
  end

(* Port status from a member switch: a member-to-member port edits the
   switch graph (and re-splits sub-clusters); a member-to-external port
   bounces the BGP session riding on it. *)
let handle_port_status t ~switch_asn ~port ~up =
  match t.asn_of_node port with
  | None -> log t "port status for unknown node %d" port
  | Some peer_asn ->
    if Net.Asn.Set.mem peer_asn t.members then begin
      let u = Net.Asn.to_int switch_asn and v = Net.Asn.to_int peer_asn in
      (if up then Net.Graph.add_edge t.switch_graph u v
       else Net.Graph.remove_edge t.switch_graph u v);
      log t "switch graph %a<->%a %s" Net.Asn.pp switch_asn Net.Asn.pp peer_asn
        (if up then "up" else "down");
      List.iter (fun p -> mark_dirty t p) (known_prefixes t)
    end
    else if up then Speaker.open_session t.speaker ~member:switch_asn ~neighbor:peer_asn
    else Speaker.session_down t.speaker ~member:switch_asn ~neighbor:peer_asn

(* PACKET_IN: emit the packet on the decided port; in reactive mode also
   install the rule (with an idle timeout) so the flow's successors stay
   in the data plane. *)
let handle_packet_in t ~switch_asn ~in_port:_ (packet : Net.Packet.t) =
  let prefix_match =
    List.find_opt
      (fun p -> Net.Ipv4.mem packet.Net.Packet.dst p)
      (known_prefixes t)
  in
  match prefix_match with
  | None -> ()
  | Some prefix -> (
    match decision t ~member:switch_asn prefix with
    | None -> ()
    | Some d -> (
      match Flow_compiler.action_of_decision ~node_of_asn:t.node_of_asn d with
      | Some (Sdn.Flow.Output port as action) ->
        if not t.config.proactive then begin
          let rule =
            Sdn.Flow.make
              ~priority:(Net.Ipv4.prefix_len prefix)
              ~idle_timeout:t.config.reactive_idle_timeout ~match_prefix:prefix action
          in
          t.stats.flow_mods <- t.stats.flow_mods + 1;
          ignore
            (t.send_switch ~member:switch_asn
               (Sdn.Openflow.Flow_mod { command = Sdn.Openflow.Add; rule }));
          let installed =
            Option.value (Pm.find_opt prefix t.installed) ~default:Net.Asn.Map.empty
          in
          t.installed <- Pm.add prefix (Net.Asn.Map.add switch_asn action installed) t.installed;
          (* [installed] changed outside recomputation: the next recompute
             must not be skipped on stale inputs. *)
          t.fingerprints <- Pm.remove prefix t.fingerprints
        end;
        ignore
          (t.send_switch ~member:switch_asn (Sdn.Openflow.Packet_out { out_port = port; packet }))
      | Some (Sdn.Flow.To_controller | Sdn.Flow.Drop) | None -> ()))

let handle_openflow t msg =
  match msg with
  | Sdn.Openflow.Packet_in { switch_asn; in_port; packet } ->
    handle_packet_in t ~switch_asn ~in_port packet
  | Sdn.Openflow.Port_status { switch_asn; port; up } ->
    handle_port_status t ~switch_asn ~port ~up
  | Sdn.Openflow.Bgp_relay { member; neighbor; direction = Sdn.Openflow.To_speaker; payload } ->
    Speaker.handle_relay t.speaker ~member ~neighbor payload
  | Sdn.Openflow.Hello -> ()
  | Sdn.Openflow.Echo_request { switch_asn } ->
    (* Heartbeat probe from a member switch: answering proves the control
       plane is alive and keeps the switch out of fallback mode. *)
    ignore (t.send_switch ~member:switch_asn Sdn.Openflow.Echo_reply)
  | Sdn.Openflow.Flow_removed { switch_asn; rule; reason = _ } ->
    (* A timed-out rule is gone from the switch: forget it so a later
       PACKET_IN (reactive) or recomputation (proactive) reinstalls it. *)
    log t "flow removed at %a: %a" Net.Asn.pp switch_asn Sdn.Flow.pp rule;
    let prefix = rule.Sdn.Flow.match_prefix in
    (match Pm.find_opt prefix t.installed with
    | Some installed ->
      t.installed <- Pm.add prefix (Net.Asn.Map.remove switch_asn installed) t.installed;
      (* The rule must be reinstallable by the next recomputation even if
         its routing inputs are unchanged. *)
      t.fingerprints <- Pm.remove prefix t.fingerprints;
      (* Proactive mode promises complete tables: expiry alone (no routing
         input changed) must still trigger the reinstall. *)
      if t.config.proactive then mark_dirty t prefix
    | None -> ())
  | Sdn.Openflow.Bgp_relay _ | Sdn.Openflow.Packet_out _ | Sdn.Openflow.Flow_mod _
  | Sdn.Openflow.Echo_reply | Sdn.Openflow.Resync_done ->
    log t "unexpected openflow message: %a" Sdn.Openflow.pp msg

(* --- Origination --------------------------------------------------------- *)

let originate t ~member prefix =
  if not (Net.Asn.Set.mem member t.members) then
    invalid_arg (Fmt.str "Controller.originate: %a not a member" Net.Asn.pp member);
  let current = Option.value (Pm.find_opt prefix t.originated) ~default:Net.Asn.Set.empty in
  t.originated <- Pm.add prefix (Net.Asn.Set.add member current) t.originated;
  log t "originate %a at %a" Net.Ipv4.pp_prefix prefix Net.Asn.pp member;
  mark_dirty t prefix

let withdraw_origin t ~member prefix =
  match Pm.find_opt prefix t.originated with
  | None -> ()
  | Some set ->
    let set = Net.Asn.Set.remove member set in
    t.originated <-
      (if Net.Asn.Set.is_empty set then Pm.remove prefix t.originated
       else Pm.add prefix set t.originated);
    log t "withdraw-origin %a at %a" Net.Ipv4.pp_prefix prefix Net.Asn.pp member;
    mark_dirty t prefix

let flush_recompute t = Option.iter Recompute.flush_now t.recompute

let recompute_info t =
  match t.recompute with
  | Some r -> (Recompute.batches r, Recompute.marks r)
  | None -> (0, 0)

(* A member switch restarted with an empty flow table: forget what we
   think is installed there and mark everything dirty, so the next batch
   re-pushes its rules (announcements are deduplicated by the speaker). *)
let resync_member t member =
  if Net.Asn.Set.mem member t.members then begin
    t.installed <- Pm.map (Net.Asn.Map.remove member) t.installed;
    t.fingerprints <- Pm.empty;
    t.resyncing <- Net.Asn.Set.add member t.resyncing;
    match known_prefixes t with
    | [] -> flush_resyncing t (* nothing to reinstall: release immediately *)
    | prefixes -> List.iter (mark_dirty t) prefixes
  end

(* --- Lifecycle and checkpointing ----------------------------------------- *)

type checkpoint = {
  co_rib : (Net.Ipv4.prefix * As_graph.exit_route list) list;
  co_originated : (Net.Ipv4.prefix * Net.Asn.Set.t) list;
  co_installed : (Net.Ipv4.prefix * Sdn.Flow.action Net.Asn.Map.t) list;
  co_decisions : (Net.Ipv4.prefix * As_graph.decision Net.Asn.Map.t) list;
  co_graph_edges : (int * int * float) list;
  co_recompute : Recompute.state option;
  co_resyncing : Net.Asn.Set.t;
}

type Engine.Node.blob += Controller_state of checkpoint

let snapshot t =
  Controller_state
    {
      co_rib = Pm.bindings t.rib;
      co_originated = Pm.bindings t.originated;
      co_installed = Pm.bindings t.installed;
      co_decisions = Pm.bindings t.decisions;
      co_graph_edges = Net.Graph.edges t.switch_graph;
      co_recompute = Option.map Recompute.state t.recompute;
      co_resyncing = t.resyncing;
    }

(* Fingerprints are deliberately NOT captured: the restored graph's
   version counter restarts, so a kept fingerprint could never match
   again anyway.  Dropping them costs at most one redundant (and
   deterministic) recomputation per prefix, whose outputs the flow diff
   and the speaker's Adj-RIB-Out deduplicate away. *)
let restore t = function
  | Controller_state ck ->
    let of_bindings bs = List.fold_left (fun acc (p, v) -> Pm.add p v acc) Pm.empty bs in
    t.rib <- of_bindings ck.co_rib;
    t.originated <- of_bindings ck.co_originated;
    t.installed <- of_bindings ck.co_installed;
    t.decisions <- of_bindings ck.co_decisions;
    t.fingerprints <- Pm.empty;
    t.resyncing <- ck.co_resyncing;
    List.iter
      (fun (u, v, _) -> Net.Graph.remove_edge t.switch_graph u v)
      (Net.Graph.edges t.switch_graph);
    List.iter
      (fun (u, v, w) -> Net.Graph.add_edge ~w t.switch_graph u v)
      ck.co_graph_edges;
    (match (t.recompute, ck.co_recompute) with
    | Some r, Some st -> Recompute.restore r st
    | _ -> ())
  | _ -> invalid_arg "Controller.restore: foreign snapshot blob"

(* Crash: the POX application dies.  Learned state (RIB, decisions,
   installed-rule shadow, fingerprints) is lost; [originated] is retained
   as configuration; the switch graph is retained because its physical
   edges still exist — a real controller would re-learn them from
   PORT_STATUS on reconnect. *)
let on_crashed t =
  t.rib <- Pm.empty;
  t.installed <- Pm.empty;
  t.decisions <- Pm.empty;
  t.fingerprints <- Pm.empty;
  t.resyncing <- Net.Asn.Set.empty;
  Option.iter Recompute.reset t.recompute

(* Restart: re-run the pipeline for configured originations.  External
   routes reappear as the speaker's sessions re-establish and resync.
   Every member is owed a RESYNC_DONE (they degraded to fallback while we
   were dead); it goes out with the first recompute batch, or at once
   when there is nothing to reinstall. *)
let on_restarted t =
  t.resyncing <- t.members;
  if Pm.is_empty t.originated then flush_resyncing t
  else Pm.iter (fun prefix _ -> mark_dirty t prefix) t.originated

(* --- Construction --------------------------------------------------------- *)

let create ?flow_idle_timeout ?flow_hard_timeout ~sim ~config ~members:member_list ~speaker
    ~send_switch ~node_of_asn ~asn_of_node ~addr_of_member ~policy_of ~intra_links () =
  let members = Net.Asn.Set.of_list member_list in
  let switch_graph = Net.Graph.create () in
  List.iter (fun m -> Net.Graph.add_node switch_graph (Net.Asn.to_int m)) member_list;
  List.iter
    (fun (a, b) -> Net.Graph.add_edge switch_graph (Net.Asn.to_int a) (Net.Asn.to_int b))
    intra_links;
  let m = Engine.Sim.metrics sim in
  let counter ?help name = Engine.Metrics.counter m ?help name in
  let tm =
    {
      updates_in_c =
        counter ~help:"external BGP updates relayed to the controller"
          "controller_updates_in_total";
      recompute_c = counter ~help:"batch recomputation runs" "controller_recompute_total";
      prefixes_recomputed_c =
        counter ~help:"per-prefix recomputations" "controller_prefixes_recomputed_total";
      recompute_skipped_c =
        counter ~help:"dirty prefixes skipped because their inputs were unchanged"
          "controller_recompute_skipped_total";
      dijkstra_runs_c =
        counter ~help:"shortest-path runs over the switch graph"
          "controller_dijkstra_runs_total";
      flow_mods_c = counter ~help:"FLOW_MODs pushed to switches" "controller_flow_mods_total";
      announce_c =
        counter ~help:"announcements sent through the speaker" "controller_announce_total";
      withdraw_c =
        counter ~help:"withdrawals sent through the speaker" "controller_withdraw_total";
      decision_changes_c =
        counter ~help:"per-member decision changes" "controller_decision_changes_total";
    }
  in
  let t =
    {
      sim;
      node = Engine.Node.create ~kind:"controller" sim ~name:"controller";
      config;
      flow_idle_timeout;
      flow_hard_timeout;
      members;
      speaker;
      send_switch;
      node_of_asn;
      asn_of_node;
      addr_of_member;
      policy_of;
      switch_graph;
      arena = As_graph.create_arena ();
      rib = Pm.empty;
      originated = Pm.empty;
      installed = Pm.empty;
      decisions = Pm.empty;
      fingerprints = Pm.empty;
      recompute = None;
      resyncing = Net.Asn.Set.empty;
      on_decision_change = [||];
      stats =
        {
          updates_in = 0;
          recompute_batches = 0;
          prefixes_recomputed = 0;
          recompute_skipped = 0;
          flow_mods = 0;
          announces = 0;
          withdraws = 0;
          decision_changes = 0;
        };
      tm;
    }
  in
  t.recompute <-
    Some
      (Recompute.create ~sim ~delay:config.recompute_delay ~callback:(fun prefixes ->
           recompute_batch t prefixes));
  Speaker.set_handlers speaker
    ~on_update:(fun ~member ~neighbor u -> on_external_update t ~member ~neighbor u)
    ~on_session:(fun ~member ~neighbor ~up -> on_session_change t ~member ~neighbor ~up);
  Engine.Node.on_crash t.node (fun () -> on_crashed t);
  Engine.Node.on_start t.node (fun ~first -> if not first then on_restarted t);
  Engine.Node.set_snapshot t.node (fun () -> snapshot t);
  Engine.Node.set_restore t.node (restore t);
  Engine.Node.start t.node;
  t
