(* Engine.Pool + the parallel experiment runner: the differential
   guarantee is that a sweep executed on a domain pool (jobs >= 2) is
   structurally identical — per-run seconds/changes/collector_updates,
   metrics snapshots, boxplots — to the same sweep run sequentially. *)

let cfg = Framework.Config.fast_test

(* --- Engine.Pool unit tests ---------------------------------------------- *)

let test_pool_order () =
  Engine.Pool.with_pool ~jobs:3 (fun pool ->
      let xs = List.init 100 Fun.id in
      let got = Engine.Pool.map pool (fun i -> i * i) xs in
      Alcotest.(check (list int)) "input order preserved" (List.map (fun i -> i * i) xs) got)

let test_pool_jobs1_bypass () =
  Engine.Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (Engine.Pool.jobs pool);
      let got = Engine.Pool.map pool succ [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "sequential map" [ 2; 3; 4 ] got)

let test_pool_exception () =
  Engine.Pool.with_pool ~jobs:2 (fun pool ->
      (match
         Engine.Pool.map pool
           (fun i -> if i mod 3 = 1 then failwith (Fmt.str "boom %d" i) else i)
           (List.init 9 Fun.id)
       with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        (* lowest failing index (1) wins deterministically *)
        Alcotest.(check string) "lowest-index failure" "boom 1" msg);
      (* the pool survives a failed batch *)
      let got = Engine.Pool.map pool succ [ 10; 20 ] in
      Alcotest.(check (list int)) "reusable after failure" [ 11; 21 ] got)

let test_pool_reuse () =
  Engine.Pool.with_pool ~jobs:4 (fun pool ->
      let a = Engine.Pool.map pool (fun i -> i + 1) (List.init 17 Fun.id) in
      let b = Engine.Pool.map pool (fun i -> i * 2) (List.init 31 Fun.id) in
      Alcotest.(check (list int)) "first batch" (List.init 17 (fun i -> i + 1)) a;
      Alcotest.(check (list int)) "second batch" (List.init 31 (fun i -> i * 2)) b;
      Alcotest.(check (list int)) "empty batch" [] (Engine.Pool.map pool Fun.id []))

let test_pool_map_reduce () =
  Engine.Pool.with_pool ~jobs:3 (fun pool ->
      let got =
        Engine.Pool.map_reduce pool
          ~map:(fun i -> Fmt.str "%d" i)
          ~reduce:(fun acc s -> acc ^ s)
          ~init:"" (List.init 10 Fun.id)
      in
      Alcotest.(check string) "deterministic fold order" "0123456789" got)

let test_pool_guards () =
  (match Engine.Pool.create ~jobs:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs=0 must raise");
  let pool = Engine.Pool.create ~jobs:2 in
  Engine.Pool.shutdown pool;
  Engine.Pool.shutdown pool;
  (* idempotent *)
  match Engine.Pool.map pool Fun.id [ 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "map after shutdown must raise"

(* --- Parallel-vs-sequential sweep differentials -------------------------- *)

let check_differential name (seq : Framework.Experiments.series)
    (par : Framework.Experiments.series) =
  (* targeted projections first, for readable failures *)
  let proj f s =
    List.concat_map
      (fun (p : Framework.Experiments.point) -> List.map f p.Framework.Experiments.results)
      s.Framework.Experiments.points
  in
  Alcotest.(check (list (float 0.0)))
    (name ^ ": seconds")
    (proj (fun r -> r.Framework.Experiments.seconds) seq)
    (proj (fun r -> r.Framework.Experiments.seconds) par);
  Alcotest.(check (list int))
    (name ^ ": changes")
    (proj (fun r -> r.Framework.Experiments.changes) seq)
    (proj (fun r -> r.Framework.Experiments.changes) par);
  Alcotest.(check (list int))
    (name ^ ": collector_updates")
    (proj (fun r -> r.Framework.Experiments.collector_updates) seq)
    (proj (fun r -> r.Framework.Experiments.collector_updates) par);
  let boxes s =
    List.map
      (fun (p : Framework.Experiments.point) ->
        p.Framework.Experiments.box.Engine.Stats.median)
      s.Framework.Experiments.points
  in
  Alcotest.(check (list (float 0.0))) (name ^ ": box medians") (boxes seq) (boxes par);
  (* then the full structural check: metrics snapshots included *)
  Alcotest.(check bool)
    (name ^ ": deep structural equality")
    true
    (Framework.Experiments.equal_series seq par)

let with_jobs jobs f = Engine.Pool.with_pool ~jobs f

let test_fig2_differential () =
  let seq = Framework.Experiments.fig2_withdrawal ~n:6 ~runs:2 ~seed:3 ~config:cfg () in
  List.iter
    (fun jobs ->
      with_jobs jobs (fun pool ->
          let par =
            Framework.Experiments.fig2_withdrawal ~pool ~n:6 ~runs:2 ~seed:3 ~config:cfg ()
          in
          check_differential (Fmt.str "fig2 jobs=%d" jobs) seq par))
    [ 2; 3; 4 ]

let test_announcement_differential () =
  let seq = Framework.Experiments.announcement_sweep ~n:6 ~runs:2 ~seed:5 ~config:cfg () in
  with_jobs 3 (fun pool ->
      let par =
        Framework.Experiments.announcement_sweep ~pool ~n:6 ~runs:2 ~seed:5 ~config:cfg ()
      in
      check_differential "announce jobs=3" seq par)

let test_failover_differential () =
  let seq = Framework.Experiments.failover_sweep ~n:6 ~runs:2 ~seed:9 ~config:cfg () in
  with_jobs 2 (fun pool ->
      let par =
        Framework.Experiments.failover_sweep ~pool ~n:6 ~runs:2 ~seed:9 ~config:cfg ()
      in
      check_differential "failover jobs=2" seq par)

let test_placement_differential () =
  let sweep ?pool () =
    Framework.Experiments.placement_sweep ?pool ~tier1:2 ~tier2:4 ~stubs:8 ~ks:[ 0; 2 ]
      ~runs:2 ~seed:53 ~config:cfg ~placement:Framework.Experiments.Top_degree ()
  in
  let seq = sweep () in
  with_jobs 4 (fun pool ->
      let par = sweep ~pool () in
      check_differential "placement jobs=4" seq par)

let test_ablation_differential () =
  let sweep ?pool () =
    Framework.Experiments.ablation_recompute_delay ?pool ~n:6 ~runs:2 ~seed:11 ~config:cfg
      ~delays_ms:[ 0; 1000 ] ()
  in
  let seq = sweep () in
  with_jobs 2 (fun pool -> check_differential "ablation jobs=2" seq (sweep ~pool ()));
  (* a jobs=1 pool must be indistinguishable from no pool at all *)
  with_jobs 1 (fun pool -> check_differential "ablation jobs=1" seq (sweep ~pool ()))

let test_scaling_differential () =
  let sweep ?pool () =
    Framework.Experiments.scaling_sweep ?pool ~sizes:[ 5; 7 ] ~fraction:0.4 ~runs:2 ~seed:43
      ~config:cfg ()
  in
  let seq = sweep () in
  with_jobs 3 (fun pool -> check_differential "scaling jobs=3" seq (sweep ~pool ()))

let suite =
  [
    Alcotest.test_case "pool: order preservation" `Quick test_pool_order;
    Alcotest.test_case "pool: jobs=1 bypass" `Quick test_pool_jobs1_bypass;
    Alcotest.test_case "pool: exception propagation" `Quick test_pool_exception;
    Alcotest.test_case "pool: reuse across batches" `Quick test_pool_reuse;
    Alcotest.test_case "pool: map_reduce order" `Quick test_pool_map_reduce;
    Alcotest.test_case "pool: guards" `Quick test_pool_guards;
    Alcotest.test_case "fig2 parallel == sequential" `Slow test_fig2_differential;
    Alcotest.test_case "announce parallel == sequential" `Slow test_announcement_differential;
    Alcotest.test_case "failover parallel == sequential" `Slow test_failover_differential;
    Alcotest.test_case "placement parallel == sequential" `Slow test_placement_differential;
    Alcotest.test_case "ablation parallel == sequential" `Quick test_ablation_differential;
    Alcotest.test_case "scaling parallel == sequential" `Slow test_scaling_differential;
  ]
