test/test_topology.ml: Alcotest Engine List Net QCheck QCheck_alcotest Topology
