(* Aggregates every module's suite into one alcotest run. *)

let () =
  Alcotest.run "hybridsdn"
    [
      ("engine.time", Test_time.suite);
      ("engine.heap", Test_heap.suite);
      ("engine.rng", Test_rng.suite);
      ("engine.stats", Test_stats.suite);
      ("engine.sim", Test_sim.suite);
      ("engine.metrics", Test_metrics.suite);
      ("engine.causal", Test_causal.suite);
      ("engine.node", Test_node_runtime.suite);
      ("engine.pool", Test_parallel.suite);
      ("net.ipv4", Test_ipv4.suite);
      ("net.graph", Test_graph.suite);
      ("net.fib", Test_fib.suite);
      ("net.netsim", Test_netsim.suite);
      ("topology", Test_topology.suite);
      ("bgp.attrs", Test_bgp_attrs.suite);
      ("bgp.message", Test_message.suite);
      ("bgp.decision", Test_decision.suite);
      ("bgp.policy", Test_policy.suite);
      ("bgp.rib", Test_rib.suite);
      ("bgp.rib_differential", Test_rib_differential.suite);
      ("bgp.mrai", Test_mrai.suite);
      ("bgp.router", Test_router.suite);
      ("bgp.wire", Test_wire.suite);
      ("bgp.wire_transport", Test_wire_transport.suite);
      ("bgp.damping", Test_damping.suite);
      ("bgp.liveness", Test_liveness.suite);
      ("bgp.session", Test_session.suite);
      ("bgp.collector", Test_collector.suite);
      ("sdn.flow_table", Test_flow_table.suite);
      ("sdn.switch", Test_switch.suite);
      ("cluster.as_graph", Test_as_graph.suite);
      ("cluster.flow_compiler", Test_flow_compiler.suite);
      ("cluster.recompute", Test_recompute.suite);
      ("cluster.speaker", Test_speaker.suite);
      ("cluster.reactive", Test_reactive.suite);
      ("cluster.controller", Test_controller.suite);
      ("cluster.incremental", Test_incremental.suite);
      ("framework.addressing", Test_addressing.suite);
      ("framework.network", Test_network.suite);
      ("framework.convergence", Test_convergence.suite);
      ("framework.monitor", Test_monitor.suite);
      ("net.dataplane", Test_dataplane.suite);
      ("framework.logparse", Test_logparse.suite);
      ("framework.visualize", Test_visualize.suite);
      ("framework.scenario", Test_scenario.suite);
      ("framework.chaos", Test_chaos.suite);
      ("framework.experiments", Test_experiments.suite);
      ("framework.sharding", Test_shard.suite);
      ("formats", Test_formats.suite);
      ("framework.looking_glass", Test_looking_glass.suite);
      ("framework.quagga_conf", Test_quagga_conf.suite);
      ("invariants", Test_invariants.suite);
    ]
