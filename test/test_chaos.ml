(* Framework.Chaos: campaign determinism, the invariant oracle's teeth,
   graceful degradation vs. blackholing, and schedule minimization. *)

let asn = Topology.Artificial.asn

let quiet_cfg = Framework.Config.failure_test

(* A converged hybrid clique on the chaos engine's own default spec. *)
let converged_net ?(config = quiet_cfg) ?(seed = 7) () =
  let net = Framework.Network.create ~config ~seed (Framework.Chaos.default_spec ()) in
  let conv = Framework.Convergence.attach net in
  Framework.Network.start net;
  let plan = Framework.Network.plan net in
  List.iter
    (fun a -> Framework.Network.originate net a (plan.Framework.Addressing.origin_prefix a))
    [ asn 0; asn 1 ];
  (match
     Framework.Convergence.wait_quiet ~quiet:(Engine.Time.sec 3)
       ~max_wait:(Engine.Time.sec 60) conv
   with
  | `Quiet _ -> ()
  | `Timeout _ -> Alcotest.fail "setup never converged");
  (net, conv)

(* --- Campaign determinism ----------------------------------------------- *)

let test_campaign_deterministic () =
  let campaign () = Framework.Chaos.run_campaign ~seed:2014 ~runs:50 () in
  let a = campaign () and b = campaign () in
  Alcotest.(check string) "same seed, same campaign digest"
    a.Framework.Chaos.campaign_digest b.Framework.Chaos.campaign_digest;
  Alcotest.(check int) "zero violating runs" 0
    (List.length
       (List.filter
          (fun (r : Framework.Chaos.run_result) -> r.Framework.Chaos.violations <> [])
          a.Framework.Chaos.results));
  Alcotest.(check bool) "every run quiesced" true
    (List.for_all
       (fun (r : Framework.Chaos.run_result) -> r.Framework.Chaos.quiesced)
       a.Framework.Chaos.results);
  let c = Framework.Chaos.run_campaign ~seed:2015 ~runs:50 () in
  Alcotest.(check bool) "different seed, different campaign" true
    (a.Framework.Chaos.campaign_digest <> c.Framework.Chaos.campaign_digest)

let test_schedules_vary_and_heal () =
  let rng = Engine.Rng.create 99 in
  let spec = Framework.Chaos.default_spec () in
  let schedules = List.init 20 (Framework.Chaos.generate ~spec ~rng) in
  Alcotest.(check bool) "every schedule injects at least one fault" true
    (List.for_all
       (fun (s : Framework.Chaos.schedule) -> s.Framework.Chaos.events <> [])
       schedules);
  Alcotest.(check bool) "every fault heals after injection" true
    (List.for_all
       (fun (s : Framework.Chaos.schedule) ->
         List.for_all
           (fun (e : Framework.Chaos.event) ->
             Engine.Time.(e.Framework.Chaos.heal_at > e.Framework.Chaos.at))
           s.Framework.Chaos.events)
       schedules);
  (* not all schedules draw the same fault mix *)
  let rendered =
    List.map
      (fun (s : Framework.Chaos.schedule) ->
        Fmt.str "%a" Fmt.(list Framework.Chaos.pp_event) s.Framework.Chaos.events)
      schedules
  in
  Alcotest.(check bool) "schedules differ" true
    (List.length (List.sort_uniq String.compare rendered) > 10)

(* --- The oracle has teeth ----------------------------------------------- *)

let test_oracle_catches_stale_flow_rule () =
  let net, _ = converged_net () in
  Alcotest.(check (list string)) "clean before injection" []
    (List.map
       (fun (v : Framework.Chaos.violation) -> v.Framework.Chaos.invariant)
       (Framework.Chaos.check_invariants net));
  (* Crash a legacy AS, then plant a rule on a live member switch that
     still forwards to the corpse — the stale-flow bug the oracle exists
     to catch. *)
  let victim = asn 7 in
  Framework.Network.crash_node net victim;
  let sw = Option.get (Framework.Network.switch net (asn 2)) in
  Sdn.Flow_table.add (Sdn.Switch.table sw)
    (Sdn.Flow.make ~priority:99
       ~match_prefix:(Option.get (Net.Ipv4.prefix_of_string "100.99.0.0/24"))
       (Sdn.Flow.Output (Net.Asn.to_int victim)));
  let violations = Framework.Chaos.check_invariants net in
  Alcotest.(check bool) "stale flow rule detected" true
    (List.exists
       (fun (v : Framework.Chaos.violation) ->
         v.Framework.Chaos.invariant = "no-stale-flow-rule")
       violations)

(* --- Graceful degradation vs. blackholing ------------------------------- *)

let reach_during_head_outage ~fallback =
  let config =
    if fallback then quiet_cfg else { quiet_cfg with Framework.Config.switch_liveness = None }
  in
  let net, _ = converged_net ~config () in
  let plan = Framework.Network.plan net in
  Framework.Network.crash_controller net;
  (* announced while the head is down: only the legacy plane can carry it *)
  Framework.Network.originate net (asn 5) (plan.Framework.Addressing.origin_prefix (asn 5));
  Framework.Network.run_until net
    (Engine.Time.add (Framework.Network.now net) (Engine.Time.sec 8));
  Framework.Monitor.reachable net ~src:(asn 2) ~dst:(asn 5)

let test_fallback_retains_reachability () =
  Alcotest.(check bool) "member reaches the mid-outage announcement" true
    (reach_during_head_outage ~fallback:true)

let test_no_fallback_blackholes () =
  Alcotest.(check bool) "member blackholes without fallback" false
    (reach_during_head_outage ~fallback:false)

(* --- Minimization ------------------------------------------------------- *)

let test_minimize_keeps_passing_schedule () =
  let rng = Engine.Rng.create 3 in
  let schedule = Framework.Chaos.generate ~spec:(Framework.Chaos.default_spec ()) ~rng 0 in
  let result = Framework.Chaos.execute ~seed:2014 schedule in
  Alcotest.(check (list string)) "schedule passes" []
    (List.map
       (fun (v : Framework.Chaos.violation) -> v.Framework.Chaos.detail)
       result.Framework.Chaos.violations);
  let minimized = Framework.Chaos.minimize ~seed:2014 schedule in
  Alcotest.(check int) "passing schedule left untouched"
    (List.length schedule.Framework.Chaos.events)
    (List.length minimized.Framework.Chaos.events)

let suite =
  [
    Alcotest.test_case "50-run campaign deterministic" `Slow test_campaign_deterministic;
    Alcotest.test_case "schedules vary and always heal" `Quick test_schedules_vary_and_heal;
    Alcotest.test_case "oracle catches a stale flow rule" `Quick test_oracle_catches_stale_flow_rule;
    Alcotest.test_case "fallback retains reachability" `Quick test_fallback_retains_reachability;
    Alcotest.test_case "no-fallback blackholes" `Quick test_no_fallback_blackholes;
    Alcotest.test_case "minimize keeps a passing schedule" `Quick test_minimize_keeps_passing_schedule;
  ]
