(* Weighted graph over integer node ids.

   Used for physical topologies, the controller's switch graph and the
   per-prefix AS topology graph.  Adjacency lists are kept sorted by node
   id so traversal order — and therefore every algorithm built on top — is
   deterministic. *)

type t = {
  adj : (int, (int * float) list) Hashtbl.t;
  directed : bool;
  mutable nedges : int;
}

let create ?(directed = false) () = { adj = Hashtbl.create 64; directed; nedges = 0 }

let is_directed t = t.directed

let add_node t v = if not (Hashtbl.mem t.adj v) then Hashtbl.replace t.adj v []

let mem_node t v = Hashtbl.mem t.adj v

let nodes t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.adj [] |> List.sort Int.compare

let node_count t = Hashtbl.length t.adj

let edge_count t = t.nedges

let neighbors t v = match Hashtbl.find_opt t.adj v with None -> [] | Some l -> l

let succ t v = List.map fst (neighbors t v)

let degree t v = List.length (neighbors t v)

let weight t u v =
  List.find_map (fun (w, wt) -> if w = v then Some wt else None) (neighbors t u)

let mem_edge t u v = Option.is_some (weight t u v)

(* Insert (v, w) into a sorted adjacency list, replacing any existing entry
   for v.  Returns the new list and whether an entry existed. *)
let rec insert_sorted v w = function
  | [] -> ([ (v, w) ], false)
  | (x, _) :: rest when x = v -> ((v, w) :: rest, true)
  | (x, xw) :: rest when x < v ->
    let rest', existed = insert_sorted v w rest in
    ((x, xw) :: rest', existed)
  | l -> ((v, w) :: l, false)

let add_half t u v w =
  add_node t u;
  add_node t v;
  let l, existed = insert_sorted v w (neighbors t u) in
  Hashtbl.replace t.adj u l;
  existed

let add_edge ?(w = 1.0) t u v =
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  let existed = add_half t u v w in
  if not t.directed then ignore (add_half t v u w);
  if not existed then t.nedges <- t.nedges + 1

let remove_half t u v =
  match Hashtbl.find_opt t.adj u with
  | None -> false
  | Some l ->
    let l' = List.filter (fun (x, _) -> x <> v) l in
    Hashtbl.replace t.adj u l';
    List.length l' <> List.length l

let remove_edge t u v =
  let existed = remove_half t u v in
  if not t.directed then ignore (remove_half t v u);
  if existed then t.nedges <- t.nedges - 1

let remove_node t v =
  if Hashtbl.mem t.adj v then begin
    let out_degree = degree t v in
    Hashtbl.remove t.adj v;
    let removed_in = ref 0 in
    Hashtbl.iter
      (fun u l ->
        let l' = List.filter (fun (x, _) -> x <> v) l in
        if List.length l' <> List.length l then incr removed_in;
        Hashtbl.replace t.adj u l')
      t.adj;
    if t.directed then t.nedges <- t.nedges - out_degree - !removed_in
    else t.nedges <- t.nedges - out_degree
  end

let edges t =
  let all =
    Hashtbl.fold
      (fun u l acc -> List.fold_left (fun acc (v, w) -> (u, v, w) :: acc) acc l)
      t.adj []
  in
  let all = if t.directed then all else List.filter (fun (u, v, _) -> u < v) all in
  List.sort (fun (a, b, _) (c, d, _) -> if a <> c then Int.compare a c else Int.compare b d) all

let copy t =
  let g = create ~directed:t.directed () in
  Hashtbl.iter (fun v l -> Hashtbl.replace g.adj v l) t.adj;
  g.nedges <- t.nedges;
  g

(* Dijkstra from [src]; infinite-distance nodes are absent from the result. *)
let dijkstra t src =
  let dist : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let pred : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let cmp (d1, s1, _) (d2, s2, _) =
    let c = Float.compare d1 d2 in
    if c <> 0 then c else Int.compare s1 s2
  in
  let heap = Engine.Heap.create ~dummy:(0.0, 0, 0) cmp in
  let seq = ref 0 in
  let push d v =
    Engine.Heap.push heap (d, !seq, v);
    incr seq
  in
  Hashtbl.replace dist src 0.0;
  push 0.0 src;
  let rec loop () =
    match Engine.Heap.pop heap with
    | None -> ()
    | Some (d, _, v) ->
      (* Skip stale entries. *)
      if Float.equal (Hashtbl.find dist v) d then
        List.iter
          (fun (w, wt) ->
            if wt < 0.0 then invalid_arg "Graph.dijkstra: negative weight";
            let nd = d +. wt in
            let better =
              match Hashtbl.find_opt dist w with
              | None -> true
              | Some old -> nd < old
            in
            if better then begin
              Hashtbl.replace dist w nd;
              Hashtbl.replace pred w v;
              push nd w
            end)
          (neighbors t v);
      loop ()
  in
  loop ();
  (dist, pred)

let distance t src dst =
  let dist, _ = dijkstra t src in
  Hashtbl.find_opt dist dst

let shortest_path t src dst =
  if src = dst then if mem_node t src then Some [ src ] else None
  else begin
    let _, pred = dijkstra t src in
    if not (Hashtbl.mem pred dst) then None
    else begin
      let rec build v acc =
        if v = src then v :: acc else build (Hashtbl.find pred v) (v :: acc)
      in
      Some (build dst [])
    end
  end

let bfs_reachable t src =
  if not (mem_node t src) then []
  else begin
    let visited = Hashtbl.create 64 in
    Hashtbl.replace visited src ();
    let queue = Queue.create () in
    Queue.push src queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun (w, _) ->
          if not (Hashtbl.mem visited w) then begin
            Hashtbl.replace visited w ();
            Queue.push w queue
          end)
        (neighbors t v)
    done;
    Hashtbl.fold (fun v () acc -> v :: acc) visited [] |> List.sort Int.compare
  end

(* Connected components of the undirected view, each sorted, listed by
   smallest member. *)
let components t =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun v ->
      if Hashtbl.mem seen v then None
      else begin
        let comp = bfs_reachable t v in
        List.iter (fun w -> Hashtbl.replace seen w ()) comp;
        Some comp
      end)
    (nodes t)

let is_connected t =
  match nodes t with
  | [] -> true
  | v :: _ -> List.length (bfs_reachable t v) = node_count t

let pp ppf t =
  Fmt.pf ppf "@[<v>graph %d nodes %d edges" (node_count t) (edge_count t);
  List.iter (fun (u, v, w) -> Fmt.pf ppf "@,  %d %s %d (%.1f)" u
                (if t.directed then "->" else "--") v w) (edges t);
  Fmt.pf ppf "@]"
