test/test_collector.ml: Alcotest Bgp Engine List Net Option Sim Time
