(* Bgp.Mrai: pacing semantics — immediate first send, coalescing while
   throttled, withdrawal exemption, reset. *)

open Engine

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let nh = Net.Ipv4.addr_of_octets 10 0 0 1

let attrs ?(med = 0) () = Bgp.Attrs.make ~med ~next_hop:nh ()

let config ?(on_withdrawals = true) () =
  Bgp.Config.no_jitter
    { Bgp.Config.default with Bgp.Config.mrai = Time.sec 10; mrai_on_withdrawals = on_withdrawals }

let setup ?on_withdrawals () =
  let sim = Sim.create () in
  let sent = ref [] in
  let mrai =
    Bgp.Mrai.create sim ~rng:(Rng.create 1) ~config:(config ?on_withdrawals ()) ~name:"test"
      ~send:(fun u -> sent := (Sim.now sim, u) :: !sent)
  in
  (sim, mrai, sent)

let sent_times sent = List.rev_map (fun (t, _) -> Time.to_us t) !sent

let test_first_immediate () =
  let sim, mrai, sent = setup () in
  Bgp.Mrai.enqueue_announce mrai (p "100.64.0.0/24") (attrs ());
  Alcotest.(check (list int)) "sent at once" [ 0 ] (sent_times sent);
  Alcotest.(check bool) "throttled after" true (Bgp.Mrai.is_throttled mrai);
  ignore (Sim.run sim);
  Alcotest.(check int) "no spurious flush" 1 (List.length !sent)

let test_coalescing () =
  let sim, mrai, sent = setup () in
  let pre = p "100.64.0.0/24" in
  Bgp.Mrai.enqueue_announce mrai pre (attrs ~med:1 ());
  (* while throttled: three successive changes for the same prefix *)
  Bgp.Mrai.enqueue_announce mrai pre (attrs ~med:2 ());
  Bgp.Mrai.enqueue_announce mrai pre (attrs ~med:3 ());
  Alcotest.(check int) "queued" 1 (Bgp.Mrai.pending_count mrai);
  ignore (Sim.run sim);
  match List.rev !sent with
  | [ (_, first); (at, second) ] ->
    Alcotest.(check int) "flush at expiry" 10_000_000 (Time.to_us at);
    Alcotest.(check int) "first had med=1"
      1
      (match first.Bgp.Message.announced with [ (_, a) ] -> a.Bgp.Attrs.med | _ -> -1);
    Alcotest.(check int) "flush carries only the latest" 3
      (match second.Bgp.Message.announced with [ (_, a) ] -> a.Bgp.Attrs.med | _ -> -1)
  | l -> Alcotest.failf "expected 2 updates, got %d" (List.length l)

let test_timer_rearms_only_when_flushing () =
  let sim, mrai, sent = setup () in
  Bgp.Mrai.enqueue_announce mrai (p "100.64.0.0/24") (attrs ());
  ignore (Sim.run sim);
  (* empty expiry: timer must be idle now *)
  Alcotest.(check bool) "idle after empty expiry" false (Bgp.Mrai.is_throttled mrai);
  Bgp.Mrai.enqueue_announce mrai (p "100.64.1.0/24") (attrs ());
  Alcotest.(check int) "immediate again after idle" 2 (List.length !sent)

let test_withdraw_exempt () =
  let _, mrai, sent = setup ~on_withdrawals:false () in
  let pre = p "100.64.0.0/24" in
  Bgp.Mrai.enqueue_announce mrai pre (attrs ());
  (* throttled; a withdrawal must bypass and cancel the pending announce *)
  Bgp.Mrai.enqueue_announce mrai pre (attrs ~med:9 ());
  Bgp.Mrai.enqueue_withdraw mrai pre;
  Alcotest.(check int) "withdraw sent immediately" 2 (List.length !sent);
  (match !sent with
  | (_, u) :: _ ->
    Alcotest.(check int) "it is a withdrawal" 1 (List.length u.Bgp.Message.withdrawn)
  | [] -> Alcotest.fail "nothing sent");
  Alcotest.(check int) "pending announce cancelled" 0 (Bgp.Mrai.pending_count mrai)

let test_withdraw_paced () =
  let sim, mrai, sent = setup ~on_withdrawals:true () in
  let pre = p "100.64.0.0/24" in
  Bgp.Mrai.enqueue_announce mrai pre (attrs ());
  Bgp.Mrai.enqueue_withdraw mrai pre;
  Alcotest.(check int) "withdraw queued, not sent" 1 (List.length !sent);
  ignore (Sim.run sim);
  match !sent with
  | (at, u) :: _ ->
    Alcotest.(check int) "flushed at expiry" 10_000_000 (Time.to_us at);
    Alcotest.(check int) "as a withdrawal" 1 (List.length u.Bgp.Message.withdrawn);
    Alcotest.(check int) "no announcement" 0 (List.length u.Bgp.Message.announced)
  | [] -> Alcotest.fail "nothing sent"

let test_reset () =
  let sim, mrai, sent = setup () in
  Bgp.Mrai.enqueue_announce mrai (p "100.64.0.0/24") (attrs ());
  Bgp.Mrai.enqueue_announce mrai (p "100.64.1.0/24") (attrs ());
  Bgp.Mrai.reset mrai;
  Alcotest.(check int) "pending cleared" 0 (Bgp.Mrai.pending_count mrai);
  Alcotest.(check bool) "timer stopped" false (Bgp.Mrai.is_throttled mrai);
  ignore (Sim.run sim);
  Alcotest.(check int) "nothing flushed after reset" 1 (List.length !sent)

let test_announce_overrides_pending_withdraw () =
  let sim, mrai, sent = setup ~on_withdrawals:true () in
  let pre = p "100.64.0.0/24" in
  Bgp.Mrai.enqueue_announce mrai pre (attrs ~med:1 ());
  Bgp.Mrai.enqueue_withdraw mrai pre;
  Bgp.Mrai.enqueue_announce mrai pre (attrs ~med:2 ());
  ignore (Sim.run sim);
  match List.rev !sent with
  | [ _; (_, flush) ] ->
    Alcotest.(check int) "announce superseded the withdraw" 1
      (List.length flush.Bgp.Message.announced);
    Alcotest.(check int) "no withdrawal left" 0 (List.length flush.Bgp.Message.withdrawn)
  | l -> Alcotest.failf "expected 2 updates, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "first send immediate" `Quick test_first_immediate;
    Alcotest.test_case "coalescing keeps latest" `Quick test_coalescing;
    Alcotest.test_case "timer re-arm policy" `Quick test_timer_rearms_only_when_flushing;
    Alcotest.test_case "withdrawal exemption (RFC)" `Quick test_withdraw_exempt;
    Alcotest.test_case "withdrawal pacing (Quagga)" `Quick test_withdraw_paced;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "announce overrides pending withdraw" `Quick
      test_announce_overrides_pending_withdraw;
  ]
