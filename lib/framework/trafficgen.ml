(* High-rate synthetic traffic generation over the data-plane fast path.

   A generator owns a seeded probe schedule (all pairs, a sampled pair
   budget, or per-prefix sampling) and fires it in BURSTS: each burst
   compiles — or reuses — a [Net.Dataplane] snapshot of the composed
   forwarding state and classifies every scheduled probe against it with
   [Net.Dataplane.forward], so a burst of hundreds of thousands of
   probes costs no per-probe allocation and perturbs no flow counters.

   Each burst is recorded as an epoch (simulated timestamp + fate
   census) and mirrored into the simulator's metrics registry, which
   [Telemetry] scrapes on its normal cadence:

     dataplane_probes_total              every probe injected
     dataplane_probes_delivered_total    probes that reached dst's host
     dataplane_probes_dropped_total{fate="blackhole"|"loop"|"ttl_expired"}

   Drop counters are registered lazily per fate label — a clean run
   exports exactly the same series as before this module existed. *)

type schedule =
  | All_pairs
  | Sampled_pairs of int
  | Per_prefix of int

let pp_schedule ppf = function
  | All_pairs -> Fmt.string ppf "all-pairs"
  | Sampled_pairs k -> Fmt.pf ppf "sampled-pairs(%d)" k
  | Per_prefix k -> Fmt.pf ppf "per-prefix(%d)" k

type epoch = {
  at : Engine.Time.t;
  injected : int;
  delivered : int;
  blackholed : int;
  looped : int;
  ttl_expired : int;
}

let epoch_lost e = e.blackholed + e.looped + e.ttl_expired

let loss_ratio e = if e.injected = 0 then 0.0 else float_of_int (epoch_lost e) /. float_of_int e.injected

let pp_epoch ppf e =
  Fmt.pf ppf "t=%a injected=%d delivered=%d blackhole=%d loop=%d ttl=%d loss=%.4f"
    Engine.Time.pp e.at e.injected e.delivered e.blackholed e.looped e.ttl_expired
    (loss_ratio e)

type t = {
  net : Network.t;
  schedule : schedule;
  ttl : int;
  rng : Engine.Rng.t;
  srcs : Net.Asn.t array;  (* spec order: the deterministic probe order *)
  dsts : Net.Asn.t array;  (* destination ASes (default: all) *)
  dst_bits : int array;  (* host address of each destination's origin prefix *)
  dst_src_idx : int array;  (* each destination's index in [srcs], -1 if absent *)
  mutable epochs : epoch list;  (* newest first *)
  mutable probes_c : Engine.Metrics.Counter.t option;
  mutable delivered_c : Engine.Metrics.Counter.t option;
  dropped_by : (string, Engine.Metrics.Counter.t) Hashtbl.t;
}

let create ?(ttl = Net.Packet.default_ttl) ?(seed = 0) ?dsts net schedule =
  (match schedule with
  | All_pairs -> ()
  | Sampled_pairs k | Per_prefix k ->
    if k <= 0 then invalid_arg "Trafficgen.create: sample budget must be positive");
  let plan = Network.plan net in
  let all = Topology.Spec.asns (Network.spec net) in
  let srcs = Array.of_list all in
  let dsts = Array.of_list (Option.value dsts ~default:all) in
  if Array.length dsts = 0 then invalid_arg "Trafficgen.create: empty destination set";
  let dst_bits =
    Array.map (fun asn -> Net.Ipv4.addr_to_bits (plan.Addressing.host_addr asn)) dsts
  in
  let idx_in_srcs asn =
    let rec go i = if i >= Array.length srcs then -1 else if Net.Asn.equal srcs.(i) asn then i else go (i + 1) in
    go 0
  in
  let dst_src_idx = Array.map idx_in_srcs dsts in
  {
    net;
    schedule;
    ttl;
    rng = Engine.Rng.create seed;
    srcs;
    dsts;
    dst_bits;
    dst_src_idx;
    epochs = [];
    probes_c = None;
    delivered_c = None;
    dropped_by = Hashtbl.create 4;
  }

let schedule t = t.schedule

(* --- Metrics (lazy registration, per the switch counter idiom) ---------- *)

let metrics t = Engine.Sim.metrics (Network.sim t.net)

let probes_counter t =
  match t.probes_c with
  | Some c -> c
  | None ->
    let c =
      Engine.Metrics.counter (metrics t) ~help:"synthetic data-plane probes injected"
        "dataplane_probes_total"
    in
    t.probes_c <- Some c;
    c

let delivered_counter t =
  match t.delivered_c with
  | Some c -> c
  | None ->
    let c =
      Engine.Metrics.counter (metrics t) ~help:"synthetic probes delivered to destination host"
        "dataplane_probes_delivered_total"
    in
    t.delivered_c <- Some c;
    c

let dropped_counter t fate =
  let label = Net.Dataplane.fate_to_string fate in
  match Hashtbl.find_opt t.dropped_by label with
  | Some c -> c
  | None ->
    let c =
      Engine.Metrics.counter (metrics t) ~help:"synthetic probes lost in the data plane"
        ~labels:[ ("fate", label) ]
        "dataplane_probes_dropped_total"
    in
    Hashtbl.add t.dropped_by label c;
    c

(* --- Bursts ------------------------------------------------------------- *)

(* One probe against the frozen snapshot; accumulates into the census
   refs.  [si] is the dense snapshot index of the source. *)
let fire dp ~ttl ~si ~dst_bits ~delivered ~blackholed ~looped ~ttl_expired =
  let r = Net.Dataplane.forward dp ~src:si ~dst_bits ~ttl in
  match Net.Dataplane.result_fate_code r with
  | 0 -> incr delivered
  | 1 -> incr blackholed
  | 2 -> incr looped
  | _ -> incr ttl_expired

let burst ?snapshot t =
  let dp = match snapshot with Some dp -> dp | None -> Network.dataplane_snapshot t.net in
  let n = Array.length t.srcs in
  let nd = Array.length t.dsts in
  let idx i = Net.Dataplane.index_of dp (Net.Asn.to_int t.srcs.(i)) in
  let injected = ref 0
  and delivered = ref 0
  and blackholed = ref 0
  and looped = ref 0
  and ttl_expired = ref 0 in
  let probe ~si ~di =
    incr injected;
    fire dp ~ttl:t.ttl ~si ~dst_bits:t.dst_bits.(di) ~delivered ~blackholed ~looped
      ~ttl_expired
  in
  (* a seeded source other than the destination itself *)
  let src_for d =
    let di = t.dst_src_idx.(d) in
    if di < 0 then Engine.Rng.int t.rng n
    else (di + 1 + Engine.Rng.int t.rng (n - 1)) mod n
  in
  (match t.schedule with
  | All_pairs ->
    for s = 0 to n - 1 do
      let si = idx s in
      for d = 0 to nd - 1 do
        if t.dst_src_idx.(d) <> s then probe ~si ~di:d
      done
    done
  | Sampled_pairs k ->
    for _ = 1 to k do
      let d = Engine.Rng.int t.rng nd in
      probe ~si:(idx (src_for d)) ~di:d
    done
  | Per_prefix k ->
    for d = 0 to nd - 1 do
      for _ = 1 to k do
        probe ~si:(idx (src_for d)) ~di:d
      done
    done);
  let e =
    {
      at = Network.now t.net;
      injected = !injected;
      delivered = !delivered;
      blackholed = !blackholed;
      looped = !looped;
      ttl_expired = !ttl_expired;
    }
  in
  t.epochs <- e :: t.epochs;
  Engine.Metrics.Counter.add (probes_counter t) e.injected;
  Engine.Metrics.Counter.add (delivered_counter t) e.delivered;
  if e.blackholed > 0 then
    Engine.Metrics.Counter.add (dropped_counter t Net.Dataplane.Blackholed) e.blackholed;
  if e.looped > 0 then
    Engine.Metrics.Counter.add (dropped_counter t Net.Dataplane.Looped) e.looped;
  if e.ttl_expired > 0 then
    Engine.Metrics.Counter.add (dropped_counter t Net.Dataplane.Ttl_expired) e.ttl_expired;
  e

let run t ~every ~until =
  if Engine.Time.compare every Engine.Time.zero <= 0 then
    invalid_arg "Trafficgen.run: interval must be positive";
  let sim = Network.sim t.net in
  let rec arm at =
    if Engine.Time.compare at until <= 0 then
      ignore
        (Engine.Sim.schedule_at ~category:"trafficgen" sim at (fun () ->
             ignore (burst t);
             arm (Engine.Time.add at every)))
  in
  arm (Engine.Time.add (Engine.Sim.now sim) every)

let epochs t = List.rev t.epochs

let totals t =
  List.fold_left
    (fun acc e ->
      {
        at = (if Engine.Time.compare e.at acc.at > 0 then e.at else acc.at);
        injected = acc.injected + e.injected;
        delivered = acc.delivered + e.delivered;
        blackholed = acc.blackholed + e.blackholed;
        looped = acc.looped + e.looped;
        ttl_expired = acc.ttl_expired + e.ttl_expired;
      })
    {
      at = Engine.Time.zero;
      injected = 0;
      delivered = 0;
      blackholed = 0;
      looped = 0;
      ttl_expired = 0;
    }
    t.epochs
