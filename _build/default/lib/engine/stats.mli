(** Descriptive statistics for experiment results (boxplots over runs,
    linear fits for the Fig. 2 trend check). *)

type boxplot = {
  n : int;
  minimum : float;
  q1 : float;
  median : float;
  q3 : float;
  maximum : float;
  mean : float;
  stddev : float;
}

val mean : float list -> float

val stddev : float list -> float
(** Sample standard deviation. *)

val quantile : float list -> float -> float
(** [quantile l q] with linear interpolation (R type 7). *)

val median : float list -> float

val boxplot : float list -> boxplot
(** @raise Invalid_argument on an empty sample. *)

val pp_boxplot : Format.formatter -> boxplot -> unit

val linear_fit : (float * float) list -> float * float
(** [linear_fit pts] is [(intercept, slope)] of the least-squares line. *)

val r_squared : (float * float) list -> float
(** Coefficient of determination of the least-squares fit. *)

(** Streaming mean/variance/min/max (Welford) for unbounded measurements. *)
module Running : sig
  type t

  val create : unit -> t

  val add : t -> float -> unit

  val count : t -> int

  val mean : t -> float

  val variance : t -> float

  val stddev : t -> float

  val minimum : t -> float

  val maximum : t -> float
end
