(* Automatic log-file analysis.

   The original framework greps Quagga logs; ours renders the structured
   trace to equivalent text lines (Engine.Trace.render_line) and this
   module parses them back and answers the same questions: per-node
   activity, per-prefix route-change timelines, convergence instants,
   update counts.  Parsing text (rather than peeking at live state) keeps
   the analysis usable on saved log files. *)

type entry = {
  time_us : int;
  level : string;
  node : string;
  category : string;
  message : string;
}

(* Lines look like: "000001234567 info AS65001[bgp]: bestpath ..." *)
let parse_line line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i1 -> (
    let time_str = String.sub line 0 i1 in
    match int_of_string_opt time_str with
    | None -> None
    | Some time_us -> (
      let rest = String.sub line (i1 + 1) (String.length line - i1 - 1) in
      match String.index_opt rest ' ' with
      | None -> None
      | Some i2 -> (
        let level = String.sub rest 0 i2 in
        let rest = String.sub rest (i2 + 1) (String.length rest - i2 - 1) in
        (* node[category]: message *)
        match (String.index_opt rest '[', String.index_opt rest ']') with
        | Some ib, Some ie when ib < ie && ie + 1 < String.length rest && rest.[ie + 1] = ':'
          ->
          let node = String.sub rest 0 ib in
          let category = String.sub rest (ib + 1) (ie - ib - 1) in
          let msg_start = ie + 2 in
          let message =
            String.trim (String.sub rest msg_start (String.length rest - msg_start))
          in
          Some { time_us; level; node; category; message }
        | _ -> None)))

let parse_lines lines = List.filter_map parse_line lines

let parse_text text = parse_lines (String.split_on_char '\n' text)

let of_trace trace = parse_lines (Engine.Trace.to_lines trace)

(* --- Analyses ------------------------------------------------------------ *)

let by_node entries =
  let table = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace table e.node (1 + Option.value (Hashtbl.find_opt table e.node) ~default:0))
    entries;
  Hashtbl.fold (fun node count acc -> (node, count) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let by_category entries =
  let table = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace table e.category
        (1 + Option.value (Hashtbl.find_opt table e.category) ~default:0))
    entries;
  Hashtbl.fold (fun cat count acc -> (cat, count) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let mentions_prefix prefix e =
  let needle = Net.Ipv4.prefix_to_string prefix in
  let hay = e.message in
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  n > 0 && scan 0

(* The route-change timeline of a prefix: every bestpath/decision line
   that mentions it, in time order. *)
let route_changes entries prefix =
  List.filter
    (fun e ->
      (e.category = "bgp" || e.category = "controller")
      && mentions_prefix prefix e
      &&
      let is_prefix_of p s =
        String.length s >= String.length p && String.sub s 0 (String.length p) = p
      in
      is_prefix_of "bestpath" e.message || is_prefix_of "decision" e.message)
    entries

(* Log-derived convergence instant for a prefix (microseconds), i.e. the
   last route change mentioning it. *)
let convergence_time_us entries prefix =
  List.fold_left
    (fun acc e -> match acc with Some t when t >= e.time_us -> acc | _ -> Some e.time_us)
    None (route_changes entries prefix)

let in_window entries ~from_us ~to_us =
  List.filter (fun e -> e.time_us >= from_us && e.time_us <= to_us) entries

(* Path-exploration rounds: best-route changes for a prefix cluster into
   MRAI-spaced waves; we count the clusters, splitting wherever the gap
   between consecutive changes exceeds [round_gap_us] (use ~half the
   MRAI).  This turns the mechanism behind Fig. 2 — "convergence time =
   rounds x MRAI" — into a measurable quantity. *)
let exploration_rounds ?(round_gap_us = 10_000_000) entries prefix =
  let times =
    List.map (fun e -> e.time_us) (route_changes entries prefix) |> List.sort_uniq Int.compare
  in
  match times with
  | [] -> 0
  | first :: rest ->
    let rounds, _ =
      List.fold_left
        (fun (rounds, prev) t -> if t - prev > round_gap_us then (rounds + 1, t) else (rounds, t))
        (1, first) rest
    in
    rounds

let pp_entry ppf e =
  Fmt.pf ppf "%.3fs %s %s[%s]: %s" (float_of_int e.time_us /. 1e6) e.level e.node e.category
    e.message
