lib/framework/scenario.mli: Engine Experiment Format Net
