(* RFC 4271 binary message encoding/decoding, with 4-octet AS numbers
   carried natively in AS_PATH (RFC 6793 NEW-speaker behaviour) and the
   4-octet-AS capability advertised in OPEN.

   One wire UPDATE carries a single attribute set for all its NLRI, so a
   semantic update whose announcements differ in attributes is split into
   several wire messages ([encode] returns a list); [decode_all] of the
   concatenation merges back to the same semantic content. *)

type error =
  | Truncated
  | Bad_marker
  | Bad_length of int
  | Bad_type of int
  | Bad_version of int
  | Malformed of string

let pp_error ppf = function
  | Truncated -> Fmt.string ppf "truncated message"
  | Bad_marker -> Fmt.string ppf "bad marker"
  | Bad_length n -> Fmt.pf ppf "bad length %d" n
  | Bad_type n -> Fmt.pf ppf "bad message type %d" n
  | Bad_version n -> Fmt.pf ppf "bad BGP version %d" n
  | Malformed what -> Fmt.pf ppf "malformed %s" what

(* message types *)
let t_open = 1

let t_update = 2

let t_notification = 3

let t_keepalive = 4

(* path attribute type codes *)
let a_origin = 1

let a_as_path = 2

let a_next_hop = 3

let a_med = 4

let a_local_pref = 5

let a_communities = 8

let header_size = 19

let max_message_size = 4096

(* --- Byte-building helpers ---------------------------------------------- *)

let u8 buf v = Buffer.add_uint8 buf (v land 0xFF)

let u16 buf v = Buffer.add_uint16_be buf (v land 0xFFFF)

let u32 buf v = Buffer.add_int32_be buf (Int32.of_int v)

let u32_of_addr buf addr = Buffer.add_int32_be buf (Net.Ipv4.addr_to_int32 addr)

(* A prefix on the wire: 1 length byte + ceil(len/8) network octets. *)
let add_prefix buf prefix =
  let len = Net.Ipv4.prefix_len prefix in
  u8 buf len;
  let octet_count = (len + 7) / 8 in
  let raw = Net.Ipv4.addr_to_int32 (Net.Ipv4.prefix_network prefix) in
  for i = 0 to octet_count - 1 do
    u8 buf (Int32.to_int (Int32.shift_right_logical raw (24 - (8 * i))) land 0xFF)
  done

let wrap ~msg_type body =
  let total = header_size + Bytes.length body in
  if total > max_message_size then invalid_arg "Wire: message exceeds 4096 bytes";
  let buf = Buffer.create total in
  for _ = 1 to 16 do
    u8 buf 0xFF
  done;
  u16 buf total;
  u8 buf msg_type;
  Buffer.add_bytes buf body;
  Buffer.to_bytes buf

(* --- Encoding -------------------------------------------------------------- *)

let encode_open ~asn ~router_id ~hold_time =
  let buf = Buffer.create 32 in
  u8 buf 4 (* version *);
  let asn_int = Net.Asn.to_int asn in
  (* 2-octet field carries AS_TRANS when the ASN does not fit *)
  u16 buf (if asn_int > 0xFFFF then 23456 else asn_int);
  u16 buf (hold_time land 0xFFFF);
  u32_of_addr buf router_id;
  (* optional parameter: capability 65 (4-octet AS) *)
  let cap = Buffer.create 8 in
  u8 cap 2 (* param type: capability *);
  u8 cap 6 (* param length *);
  u8 cap 65 (* capability code *);
  u8 cap 4 (* capability length *);
  u32 cap asn_int;
  u8 buf (Buffer.length cap);
  Buffer.add_buffer buf cap;
  wrap ~msg_type:t_open (Buffer.to_bytes buf)

let encode_attribute buf ~flags ~code body =
  let len = Buffer.length body in
  if len > 255 then begin
    (* extended length (flag 0x10, 2-byte length) *)
    u8 buf (flags lor 0x10);
    u8 buf code;
    u16 buf len
  end
  else begin
    u8 buf flags;
    u8 buf code;
    u8 buf len
  end;
  Buffer.add_buffer buf body

let encode_attrs (attrs : Attrs.t) =
  let buf = Buffer.create 64 in
  (* ORIGIN, well-known transitive *)
  let body = Buffer.create 1 in
  u8 body (Attrs.origin_rank attrs.Attrs.origin);
  encode_attribute buf ~flags:0x40 ~code:a_origin body;
  (* AS_PATH: AS_SEQUENCE segments of 4-octet ASNs (max 255 hops each) *)
  let body = Buffer.create 16 in
  let rec segments = function
    | [] -> ()
    | path ->
      let n = min 255 (List.length path) in
      u8 body 2 (* AS_SEQUENCE *);
      u8 body n;
      let rec emit i = function
        | a :: rest when i < n ->
          u32 body (Net.Asn.to_int a);
          emit (i + 1) rest
        | rest -> rest
      in
      segments (emit 0 path)
  in
  segments attrs.Attrs.as_path;
  encode_attribute buf ~flags:0x40 ~code:a_as_path body;
  (* NEXT_HOP *)
  let body = Buffer.create 4 in
  u32_of_addr body attrs.Attrs.next_hop;
  encode_attribute buf ~flags:0x40 ~code:a_next_hop body;
  (* MED, optional non-transitive *)
  if attrs.Attrs.med <> 0 then begin
    let body = Buffer.create 4 in
    u32 body attrs.Attrs.med;
    encode_attribute buf ~flags:0x80 ~code:a_med body
  end;
  (* LOCAL_PREF *)
  let body = Buffer.create 4 in
  u32 body attrs.Attrs.local_pref;
  encode_attribute buf ~flags:0x40 ~code:a_local_pref body;
  (* COMMUNITIES, optional transitive *)
  if not (Community.Set.is_empty attrs.Attrs.communities) then begin
    let body = Buffer.create 8 in
    Community.Set.iter
      (fun c ->
        u16 body (Community.asn c);
        u16 body (Community.tag c))
      attrs.Attrs.communities;
    encode_attribute buf ~flags:0xC0 ~code:a_communities body
  end;
  buf

let encode_update_message ~withdrawn ~attrs ~nlri =
  let buf = Buffer.create 64 in
  let wd = Buffer.create 16 in
  List.iter (add_prefix wd) withdrawn;
  u16 buf (Buffer.length wd);
  Buffer.add_buffer buf wd;
  (match attrs with
  | None -> u16 buf 0
  | Some attrs ->
    let ab = encode_attrs attrs in
    u16 buf (Buffer.length ab);
    Buffer.add_buffer buf ab);
  List.iter (add_prefix buf) nlri;
  wrap ~msg_type:t_update (Buffer.to_bytes buf)

(* Group announcements by shared attributes (wire_equal + local_pref),
   preserving first-appearance order. *)
let group_by_attrs announced =
  let groups : (Attrs.t * Net.Ipv4.prefix list ref) list ref = ref [] in
  List.iter
    (fun (prefix, attrs) ->
      match
        List.find_opt
          (fun (a, _) ->
            Attrs.wire_equal a attrs && a.Attrs.local_pref = attrs.Attrs.local_pref)
          !groups
      with
      | Some (_, prefixes) -> prefixes := prefix :: !prefixes
      | None -> groups := !groups @ [ (attrs, ref [ prefix ]) ])
    announced;
  List.map (fun (attrs, prefixes) -> (attrs, List.rev !prefixes)) !groups

let encode = function
  | Message.Open { asn; router_id; hold_time } -> [ encode_open ~asn ~router_id ~hold_time ]
  | Message.Keepalive -> [ wrap ~msg_type:t_keepalive Bytes.empty ]
  | Message.Notification reason ->
    let buf = Buffer.create 16 in
    u8 buf 6 (* Cease *);
    u8 buf 0;
    Buffer.add_string buf reason;
    [ wrap ~msg_type:t_notification (Buffer.to_bytes buf) ]
  | Message.Update { announced; withdrawn } -> (
    match group_by_attrs announced with
    | [] -> [ encode_update_message ~withdrawn ~attrs:None ~nlri:[] ]
    | (first_attrs, first_nlri) :: rest ->
      (* withdrawals ride in the first message *)
      encode_update_message ~withdrawn ~attrs:(Some first_attrs) ~nlri:first_nlri
      :: List.map
           (fun (attrs, nlri) ->
             encode_update_message ~withdrawn:[] ~attrs:(Some attrs) ~nlri)
           rest)

(* --- Decoding -------------------------------------------------------------- *)

type cursor = { data : bytes; mutable pos : int; limit : int }

let remaining c = c.limit - c.pos

let need c n = if remaining c < n then Error Truncated else Ok ()

let ( let* ) = Result.bind

let read_u8 c =
  let* () = need c 1 in
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  Ok v

let read_u16 c =
  let* a = read_u8 c in
  let* b = read_u8 c in
  Ok ((a lsl 8) lor b)

let read_u32 c =
  let* a = read_u16 c in
  let* b = read_u16 c in
  Ok ((a lsl 16) lor b)

let read_prefix c =
  let* len = read_u8 c in
  if len > 32 then Error (Malformed "prefix length")
  else begin
    let octets = (len + 7) / 8 in
    let* () = need c octets in
    let raw = ref 0l in
    for i = 0 to octets - 1 do
      raw :=
        Int32.logor !raw
          (Int32.shift_left (Int32.of_int (Char.code (Bytes.get c.data (c.pos + i)))) (24 - (8 * i)))
    done;
    c.pos <- c.pos + octets;
    Ok (Net.Ipv4.prefix (Net.Ipv4.addr_of_int32 !raw) len)
  end

let read_prefixes c =
  let rec go acc =
    if remaining c = 0 then Ok (List.rev acc)
    else
      let* p = read_prefix c in
      go (p :: acc)
  in
  go []

let sub_cursor c len =
  let* () = need c len in
  let sub = { data = c.data; pos = c.pos; limit = c.pos + len } in
  c.pos <- c.pos + len;
  Ok sub

let decode_open c =
  let* version = read_u8 c in
  if version <> 4 then Error (Bad_version version)
  else
    let* as2 = read_u16 c in
    let* hold = read_u16 c in
    let* rid = read_u32 c in
    let router_id = Net.Ipv4.addr_of_int32 (Int32.of_int rid) in
    let* opt_len = read_u8 c in
    let* params = sub_cursor c opt_len in
    (* scan optional parameters for the 4-octet-AS capability *)
    let rec scan asn4 =
      if remaining params = 0 then Ok asn4
      else
        let* ptype = read_u8 params in
        let* plen = read_u8 params in
        let* body = sub_cursor params plen in
        if ptype <> 2 then scan asn4
        else begin
          let rec caps asn4 =
            if remaining body = 0 then Ok asn4
            else
              let* code = read_u8 body in
              let* clen = read_u8 body in
              let* cbody = sub_cursor body clen in
              if code = 65 && clen = 4 then
                let* v = read_u32 cbody in
                caps (Some v)
              else caps asn4
          in
          let* asn4 = caps asn4 in
          scan asn4
        end
    in
    let* asn4 = scan None in
    let asn_int = match asn4 with Some v -> v | None -> as2 in
    if asn_int <= 0 then Error (Malformed "ASN")
    else Ok (Message.Open { asn = Net.Asn.of_int asn_int; router_id; hold_time = hold })

let decode_attrs c =
  let origin = ref Attrs.Igp in
  let as_path = ref [] in
  let next_hop = ref (Net.Ipv4.addr_of_octets 0 0 0 0) in
  let med = ref 0 in
  let local_pref = ref Attrs.default_local_pref in
  let communities = ref Community.Set.empty in
  let rec go () =
    if remaining c = 0 then Ok ()
    else
      let* flags = read_u8 c in
      let* code = read_u8 c in
      let* len = if flags land 0x10 <> 0 then read_u16 c else read_u8 c in
      let* body = sub_cursor c len in
      let* () =
        if code = a_origin then
          let* v = read_u8 body in
          match v with
          | 0 ->
            origin := Attrs.Igp;
            Ok ()
          | 1 ->
            origin := Attrs.Egp;
            Ok ()
          | 2 ->
            origin := Attrs.Incomplete;
            Ok ()
          | _ -> Error (Malformed "origin")
        else if code = a_as_path then begin
          let rec segments acc =
            if remaining body = 0 then Ok acc
            else
              let* seg_type = read_u8 body in
              let* count = read_u8 body in
              if seg_type <> 2 then Error (Malformed "AS_PATH segment type")
              else begin
                let rec hops acc n =
                  if n = 0 then Ok acc
                  else
                    let* v = read_u32 body in
                    if v <= 0 then Error (Malformed "AS_PATH ASN")
                    else hops (Net.Asn.of_int v :: acc) (n - 1)
                in
                let* hops_rev = hops [] count in
                segments (acc @ List.rev hops_rev)
              end
          in
          let* path = segments [] in
          as_path := path;
          Ok ()
        end
        else if code = a_next_hop then
          let* v = read_u32 body in
          next_hop := Net.Ipv4.addr_of_int32 (Int32.of_int v);
          Ok ()
        else if code = a_med then
          let* v = read_u32 body in
          med := v;
          Ok ()
        else if code = a_local_pref then
          let* v = read_u32 body in
          local_pref := v;
          Ok ()
        else if code = a_communities then begin
          let rec comms () =
            if remaining body = 0 then Ok ()
            else
              let* a = read_u16 body in
              let* t = read_u16 body in
              communities := Community.Set.add (Community.make a t) !communities;
              comms ()
          in
          comms ()
        end
        else Ok () (* unknown attribute: skip *)
      in
      go ()
  in
  let* () = go () in
  Ok
    (Attrs.make ~as_path:!as_path ~local_pref:!local_pref ~med:!med ~origin:!origin
       ~communities:!communities ~next_hop:!next_hop ())

let decode_update c =
  let* wd_len = read_u16 c in
  let* wd_cursor = sub_cursor c wd_len in
  let* withdrawn = read_prefixes wd_cursor in
  let* attr_len = read_u16 c in
  let* attr_cursor = sub_cursor c attr_len in
  let* nlri = read_prefixes c in
  if attr_len = 0 then
    if nlri = [] then Ok (Message.Update { announced = []; withdrawn })
    else Error (Malformed "NLRI without attributes")
  else
    let* attrs = decode_attrs attr_cursor in
    Ok (Message.Update { announced = List.map (fun p -> (p, attrs)) nlri; withdrawn })

let decode_notification c =
  let* _code = read_u8 c in
  let* _subcode = read_u8 c in
  let reason = Bytes.sub_string c.data c.pos (remaining c) in
  c.pos <- c.limit;
  Ok (Message.Notification reason)

(* Decode one message from the head of [data] at [pos]; returns the
   message and the number of bytes consumed. *)
let decode ?(pos = 0) data =
  let total = Bytes.length data - pos in
  if total < header_size then Error Truncated
  else begin
    let marker_ok = ref true in
    for i = 0 to 15 do
      if Bytes.get data (pos + i) <> '\xFF' then marker_ok := false
    done;
    if not !marker_ok then Error Bad_marker
    else begin
      let len = (Char.code (Bytes.get data (pos + 16)) lsl 8) lor Char.code (Bytes.get data (pos + 17)) in
      if len < header_size || len > max_message_size then Error (Bad_length len)
      else if total < len then Error Truncated
      else begin
        let msg_type = Char.code (Bytes.get data (pos + 18)) in
        let c = { data; pos = pos + header_size; limit = pos + len } in
        let* msg =
          if msg_type = t_open then decode_open c
          else if msg_type = t_update then decode_update c
          else if msg_type = t_notification then decode_notification c
          else if msg_type = t_keepalive then
            if remaining c = 0 then Ok Message.Keepalive else Error (Bad_length len)
          else Error (Bad_type msg_type)
        in
        Ok (msg, len)
      end
    end
  end

let decode_all data =
  let rec go pos acc =
    if pos = Bytes.length data then Ok (List.rev acc)
    else
      let* msg, consumed = decode ~pos data in
      go (pos + consumed) (msg :: acc)
  in
  go 0 []

let encode_concat msg =
  let parts = encode msg in
  let total = List.fold_left (fun acc b -> acc + Bytes.length b) 0 parts in
  let out = Bytes.create total in
  let pos = ref 0 in
  List.iter
    (fun b ->
      Bytes.blit b 0 out !pos (Bytes.length b);
      pos := !pos + Bytes.length b)
    parts;
  out
