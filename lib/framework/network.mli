(** The network builder: a topology spec turned into a running emulation —
    legacy BGP routers, SDN switches under the IDR controller + cluster
    speaker, the monitoring collector, automatic addressing/policies, and
    the data plane. *)

type t

val ctrl_node : int
(** Fabric node id hosting the controller + cluster BGP speaker. *)

val collector_node : int

val collector_asn : Net.Asn.t

val create :
  ?config:Config.t ->
  ?order:Engine.Sim.order ->
  ?owned:(int -> bool) ->
  seed:int ->
  Topology.Spec.t ->
  t
(** Build the emulation (validates the spec).  Call {!start} to open BGP
    sessions, then drive the simulator.

    [order] (default {!Engine.Sim.Seq}) selects the scheduler's
    tie-breaking discipline; sharded runs use [Canonical].  [owned]
    (default everything) restricts which fabric nodes this instance
    EXECUTES: the whole network is still constructed — replicated
    construction keeps every per-component RNG stream identical across
    shards — but {!start} and link watchers are gated to owned nodes, so
    non-owned replicas stay inert. *)

val start : t -> unit
(** Open all BGP sessions (routers and cluster speaker) on owned nodes. *)

val owned : t -> int -> bool
(** Whether this instance executes the given fabric node. *)

(* --- Accessors --- *)

val sim : t -> Engine.Sim.t

val seed : t -> int
(** The construction seed (recorded for checkpointing). *)

val fabric : t -> Payload.t Net.Netsim.t

val runtime_node : t -> Net.Asn.t -> Engine.Node.t option
(** The runtime node behind an AS (its router or switch) or, for
    {!collector_asn}, the collector. *)

val runtime_nodes : t -> Engine.Node.t list
(** Every runtime node in fabric-id order, plus the cluster speaker
    (which shares {!ctrl_node} with the controller). *)

val spec : t -> Topology.Spec.t

val plan : t -> Addressing.plan

val config : t -> Config.t

val collector : t -> Bgp.Collector.t

val controller : t -> Cluster_ctl.Controller.t option

val speaker : t -> Cluster_ctl.Speaker.t option

val routers : t -> Bgp.Router.t Net.Asn.Map.t

val router : t -> Net.Asn.t -> Bgp.Router.t option

val switch : t -> Net.Asn.t -> Sdn.Switch.t option

val asns : t -> Net.Asn.t list

val sdn_asns : t -> Net.Asn.t list

val legacy_asns : t -> Net.Asn.t list

val role : t -> Net.Asn.t -> Topology.Spec.role

val asn_of_node : t -> int -> Net.Asn.t option

val node_of_asn : t -> Net.Asn.t -> int option

val link_up : t -> Net.Asn.t -> Net.Asn.t -> bool

val link_delay : t -> Net.Asn.t -> Net.Asn.t -> Engine.Time.span option

(* --- Experiment operations --- *)

val originate : t -> Net.Asn.t -> Net.Ipv4.prefix -> unit
(** Originate at a legacy router or (via the controller) an SDN member;
    also marks the prefix for local data-plane delivery. *)

val withdraw : t -> Net.Asn.t -> Net.Ipv4.prefix -> unit

val fail_link : t -> Net.Asn.t -> Net.Asn.t -> unit
(** @raise Invalid_argument when no such link exists. *)

val recover_link : t -> Net.Asn.t -> Net.Asn.t -> unit

val fail_ctrl_link : t -> Net.Asn.t -> unit
(** Partition a member switch from the cluster head: only the control
    channel goes down, data-plane links are untouched (with
    {!Config.t.switch_liveness} set, the member degrades onto its legacy
    fallback route).  @raise Invalid_argument when the AS has no control
    link. *)

val recover_ctrl_link : t -> Net.Asn.t -> unit

val ctrl_link_up : t -> Net.Asn.t -> bool

val heal_all_links : t -> unit
(** Bring every failed link (AS-AS, control, collector) back up —
    chaos-schedule epilogue. *)

val crash_node : t -> Net.Asn.t -> unit
(** Crash the AS's component process (router or switch): volatile state
    is lost (RIBs and FIB, or the flow table), owned timers are
    cancelled, pending fabric deliveries are refused until restart.
    @raise Invalid_argument for an unknown AS. *)

val restart_node : t -> Net.Asn.t -> unit
(** Restart after {!crash_node}: a router re-announces its originations
    and re-opens every session with a NOTIFICATION-then-OPEN exchange; a
    switch comes back empty and the controller re-pushes its rules. *)

val crash_controller : t -> unit
(** Crash the cluster head — controller and speaker together (they are
    one emulated host).  @raise Invalid_argument without an SDN cluster. *)

val restart_controller : t -> unit
(** Restart the cluster head: the controller re-runs its pipeline for
    originated prefixes and external routes return as the speaker
    resyncs its sessions. *)

val add_peering :
  ?rel:Topology.Spec.rel -> ?delay:Engine.Time.span -> t -> Net.Asn.t -> Net.Asn.t -> unit
(** Add a new inter-AS peering at runtime ([Open] relationship by
    default; [C2p] = first AS is the customer): creates the link,
    configures both endpoints (router peer, speaker session, or
    controller switch-graph edge) and opens the session.
    @raise Invalid_argument for unknown ASes or an existing link. *)

val settle : ?max_events:int -> t -> Engine.Time.t
(** Run until the event queue drains (full protocol quiescence including
    MRAI timers).  @raise Failure at the event-limit safety valve. *)

val run_until : t -> Engine.Time.t -> unit

val now : t -> Engine.Time.t

(* --- Data plane --- *)

type data_stats = { mutable forwarded : int; mutable dropped : int; mutable delivered : int }

val data_stats : t -> data_stats

val inject : t -> src:Net.Asn.t -> Net.Packet.t -> unit
(** Start a packet at an AS, as if emitted by a local host. *)

val subscribe_deliver : t -> (Net.Asn.t -> Net.Packet.t -> unit) -> unit
(** Called on every locally delivered packet. *)

val set_auto_reply : t -> bool -> unit
(** Whether delivered echo requests generate replies (default true). *)

val add_local_prefix : t -> Net.Asn.t -> Net.Ipv4.prefix -> unit

val remove_local_prefix : t -> Net.Asn.t -> Net.Ipv4.prefix -> unit

val is_local_addr : t -> Net.Asn.t -> Net.Ipv4.addr -> bool

type forwarding = Local | Next of int | No_route

val forwarding_at : t -> Net.Asn.t -> Net.Ipv4.addr -> forwarding
(** The AS's current forwarding decision for an address (FIB for legacy,
    flow table for SDN members). *)

val dataplane_snapshot : t -> Net.Dataplane.t
(** Compile the composed forwarding state (FIBs + flow tables + local
    delivery sets + link liveness) into a frozen allocation-free
    fast-path snapshot over dense node indices.  Reads tables through
    the non-mutating lookups, so probing the snapshot perturbs neither
    flow packet counters nor miss metrics.  Recompile after the control
    plane changes. *)

(* --- Whole-network checkpointing --- *)

type checkpoint
(** An in-memory snapshot: the construction recipe (seed, spec, config)
    plus link states, every runtime node's captured state, the wire
    (in-flight messages and the loss-RNG position) and the framework's
    data planes.  See DESIGN.md "Node runtime" for what is (and is not)
    captured. *)

val checkpoint : t -> checkpoint
(** @raise Invalid_argument when peerings were added at runtime
    ({!add_peering} state is not checkpointable). *)

val checkpoint_time : checkpoint -> Engine.Time.t

val restore : checkpoint -> t
(** Rebuild a network from a checkpoint.  The restored simulator's clock
    restarts at zero with captured events re-scheduled at their original
    absolute instants; do not call {!start} on the result — sessions are
    already open per the captured states. *)
