(* Deterministic discrete-event scheduler.

   Events fire in (time, insertion sequence) order, so two events scheduled
   for the same instant run in the order they were scheduled — this plus the
   splittable RNG makes whole experiment runs bit-reproducible. *)

type event = {
  fire_at : Time.t;
  seq : int;
  mutable cancelled : bool;
  action : unit -> unit;
}

type handle = event

type t = {
  mutable now : Time.t;
  mutable next_seq : int;
  mutable executed : int;
  queue : event Heap.t;
  rng : Rng.t;
  trace : Trace.t;
}

let compare_event a b =
  let c = Time.compare a.fire_at b.fire_at in
  if c <> 0 then c else compare a.seq b.seq

let dummy_event = { fire_at = Time.zero; seq = -1; cancelled = true; action = ignore }

let create ?(seed = 0) ?(trace = true) () =
  {
    now = Time.zero;
    next_seq = 0;
    executed = 0;
    queue = Heap.create ~capacity:1024 ~dummy:dummy_event compare_event;
    rng = Rng.create seed;
    trace = Trace.create ~enabled:trace ();
  }

let now t = t.now

let rng t = t.rng

let trace t = t.trace

let pending t = Heap.length t.queue

let executed t = t.executed

let schedule_at t fire_at action =
  if Time.(fire_at < t.now) then
    invalid_arg
      (Fmt.str "Sim.schedule_at: %a is in the past (now %a)" Time.pp fire_at Time.pp t.now);
  let ev = { fire_at; seq = t.next_seq; cancelled = false; action } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.queue ev;
  ev

let schedule_after t span action = schedule_at t (Time.add t.now span) action

let cancel ev = ev.cancelled <- true

let cancelled ev = ev.cancelled

(* Run one event; returns false when the queue is exhausted. *)
let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev when ev.cancelled -> step t
  | Some ev ->
    t.now <- ev.fire_at;
    t.executed <- t.executed + 1;
    ev.action ();
    true

type run_result = Exhausted | Reached_limit | Reached_time of Time.t

let run ?until ?(max_events = max_int) t =
  let rec loop remaining =
    if remaining = 0 then Reached_limit
    else
      match Heap.peek t.queue with
      | None -> Exhausted
      | Some ev when ev.cancelled ->
        ignore (Heap.pop t.queue);
        loop remaining
      | Some ev -> (
        match until with
        | Some stop when Time.(ev.fire_at > stop) ->
          t.now <- stop;
          Reached_time stop
        | Some _ | None ->
          if step t then loop (remaining - 1) else Exhausted)
  in
  loop max_events

let log t ~node ~category ?level msg =
  Trace.record t.trace ~time:t.now ~node ~category ?level msg

let logf t ~node ~category ?level fmt = Fmt.kstr (log t ~node ~category ?level) fmt
