(** Dependency-free domain work pool for embarrassingly parallel
    experiment batches (OCaml 5 [Domain] + [Mutex] + [Condition]).

    The pool exists to run many *independent* simulations at once: each
    task must own all of its mutable state ({!Sim}, {!Metrics}, {!Rng},
    {!Trace} instances and everything hanging off them) — see the
    ownership rule documented in those interfaces.  The pool itself
    never shares anything between tasks beyond the immutable inputs the
    caller closes over.

    Determinism: {!map} and {!map_reduce} return results in input
    order, whatever order tasks finished in, so a parallel sweep is
    bit-identical to its sequential counterpart.  With [jobs = 1] no
    domains are ever spawned and [map] is literally [List.map] — the
    sequential code path stays byte-identical. *)

type t

val create : jobs:int -> t
(** [create ~jobs] is a pool of [jobs] worker domains ([jobs - 1]
    spawned domains; the submitting domain does not execute tasks).
    [jobs = 1] spawns nothing and makes every operation sequential.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Configured parallelism (1 means the pool is a no-op wrapper). *)

val recommended_jobs : ?cap:int -> unit -> int
(** [Domain.recommended_domain_count ()] clamped to [\[1, cap\]] — the
    default for [-j]/[--jobs] flags.  When [cap] is not passed it is the
    [HYBRIDSIM_JOBS_CAP] environment variable if that holds a positive
    integer, 8 otherwise (unset/empty/invalid values fall back to 8). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element, possibly in parallel,
    and returns results in input order.  If one or more applications
    raise, the exception of the *lowest-indexed* failing element is
    re-raised on the submitting domain (with its backtrace) after all
    tasks have finished — so a failing map never leaves stray tasks
    running.  The pool is reusable: any number of [map]s may be issued
    sequentially from the owning domain. *)

val map_reduce : t -> map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c
(** [map_reduce t ~map ~reduce ~init xs] maps in parallel, then folds
    the results sequentially in input order on the submitting domain —
    deterministic whatever [reduce] is. *)

val run_each : n:int -> (int -> 'a) -> 'a array
(** [run_each ~n f] runs [f 0 .. f (n-1)] concurrently with each index
    PINNED to its own domain for the call's whole duration ([f 0] on the
    calling domain, each other index on a freshly spawned domain), and
    returns the results in index order after all have finished.  Unlike
    {!map}, tasks may synchronize with each other (e.g. via a barrier)
    and may rely on staying on one domain (Domain.DLS state); the
    trade-off is that all [n] run at once regardless of core count.
    If several raise, the lowest-indexed exception is re-raised.
    [n = 1] spawns nothing and runs [f 0] inline.
    @raise Invalid_argument if [n < 1]. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent; the pool must not be used
    afterwards.  [jobs = 1] pools shut down trivially. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and guarantees
    {!shutdown} on exit, exceptional or not. *)
