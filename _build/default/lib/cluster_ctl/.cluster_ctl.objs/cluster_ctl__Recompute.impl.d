lib/cluster_ctl/recompute.ml: Engine List Net
