(** The emulated network fabric: nodes, links and delayed message delivery,
    parametric in the protocol message type. *)

type 'a handler = from:int -> 'a -> unit

type link_watcher = link:Link.t -> peer:int -> up:bool -> unit

type drop_reason = Link_down | Loss | Queue | No_handler | Node_down | Session_down
(** Why a delivery was silently dropped: link down at delivery time,
    probabilistic loss, queue overflow (link drop-tail or node mailbox),
    no receiver attached, receiver node crashed, or discarded by a
    protocol layer because the session/control channel it belongs to is
    down (accounted via {!note_drop}). *)

val drop_reason_label : drop_reason -> string
(** The [reason] label value used on
    [net_messages_dropped_total{reason=...}]. *)

type 'a t

val create : Engine.Sim.t -> 'a t

val sim : 'a t -> Engine.Sim.t

val rng : 'a t -> Engine.Rng.t
(** The fabric's loss-decision stream (checkpointing captures its
    position). *)

val add_node : 'a t -> id:int -> name:string -> unit
(** @raise Invalid_argument on duplicate ids. *)

val mem_node : 'a t -> int -> bool

val node_name : 'a t -> int -> string

val node_ids : 'a t -> int list
(** Sorted ascending. *)

val set_handler : 'a t -> int -> 'a handler -> unit
(** Install a raw handler closure (nodes without any sink drop traffic).
    Lifecycle-blind — prefer {!attach}. *)

val attach : 'a t -> int -> 'a Engine.Node.port -> unit
(** Attach an [Engine.Node] mailbox port as the node's sink: deliveries to
    a crashed node are dropped (reason [Node_down]) and mailbox overflow
    is dropped (reason [Queue]) instead of being handed to stale state. *)

val attached_node : 'a t -> int -> Engine.Node.t option
(** The runtime node behind a {!attach}ed sink, if any. *)

val set_link_watcher : 'a t -> int -> link_watcher -> unit
(** Called when an adjacent link changes state. *)

val add_link :
  ?delay:Engine.Time.span ->
  ?loss:float ->
  ?bandwidth_bps:int ->
  ?queue_limit:int ->
  'a t ->
  int ->
  int ->
  Link.t
(** At most one link per node pair.  [bandwidth_bps] enables serialization
    delay and drop-tail queuing (see {!Link.admit}).
    @raise Invalid_argument on duplicates or unknown nodes. *)

val link_by_id : 'a t -> Link.id -> Link.t option

val link_between : 'a t -> int -> int -> Link.t option

val links : 'a t -> Link.t list
(** Sorted by link id. *)

val neighbors : 'a t -> int -> int list

val set_link_up : 'a t -> Link.t -> bool -> unit
(** Flip link state and notify both endpoints' watchers.  Messages already
    in flight on a failing link are dropped at delivery time. *)

val fail_link_between : 'a t -> int -> int -> bool
(** [false] if no such link exists. *)

val recover_link_between : 'a t -> int -> int -> bool

val send : ?size_bits:int -> 'a t -> src:int -> dst:int -> 'a -> bool
(** Queue a message for delivery after the link's (queuing +
    serialization +) propagation delay; [false] when there is no up link
    between the nodes.  [size_bits] (default 512) only matters on
    bandwidth-limited links; a drop-tail loss still returns [true] — the
    sender cannot tell. *)

val drops : 'a t -> drop_reason -> int
(** Messages dropped for [reason] since creation. *)

val note_drop : 'a t -> drop_reason -> unit
(** Account a drop that never reached a wire (protocol-layer discard,
    e.g. a BGP relay thrown away while its session is down). *)

(** {1 Sharded execution}

    When the owning sim runs in {!Engine.Sim.Canonical} order, every
    admitted send draws a per-directed-channel sequence number and its
    delivery event is keyed [(kclass = 1, knode = src, kseq)] — a key
    every partitioning assigns identically, because only the shard
    owning [src] ever sends from it and FIFO links deliver in send
    order.  A remote route diverts sends whose destination lives on
    another shard; the receiving shard re-schedules them with
    {!inject_remote} under the very same key. *)

type 'a remote = {
  r_src : int;
  r_dst : int;
  r_at : Engine.Time.t;  (** absolute delivery instant *)
  r_seq : int;  (** the sender's per-channel sequence (canonical key) *)
  r_payload : 'a;
}

val set_remote_route : 'a t -> local:(int -> bool) -> route:('a remote -> unit) -> unit
(** Divert sends to nodes for which [local] is [false]: instead of
    scheduling a local delivery, the fully-formed {!remote} (with its
    delivery instant and canonical sequence already fixed) is handed to
    [route] for barrier exchange.  Send-side accounting (admission,
    queue drops, [net_messages_sent_total]) still happens here; delivery
    accounting happens on the shard that injects. *)

val inject_remote : 'a t -> 'a remote -> unit
(** Schedule a delivery received from another shard at its original
    instant and canonical key.  The caller is responsible for re-interning
    any domain-local hash-consed payload state first.
    @raise Invalid_argument if no link joins the endpoints. *)

type 'a in_flight = { src : int; dst : int; deliver_at : Engine.Time.t; payload : 'a }

val in_flight : 'a t -> 'a in_flight list
(** Messages on the wire (sent, not yet delivered), in send order —
    the wire contents a checkpoint must capture. *)

val inject_in_flight : 'a t -> 'a in_flight -> unit
(** Re-schedule a captured delivery at its original absolute instant
    (restore path).
    @raise Invalid_argument if no link joins the endpoints. *)

val up_graph : 'a t -> Graph.t
(** Snapshot of the topology restricted to links that are currently up. *)
