(* The demo's end-to-end application view: a "video stream" (a periodic
   probe flow) between two hosts while the primary route fails over.

   We stream probes from a clique member to a stub AS, fail the stub's
   primary link mid-stream, and report the loss window — once with pure
   BGP and once with half the clique centralized.

     dune exec examples/video_failover.exe *)

let run ~sdn =
  let n = 8 in
  let spec = Topology.Artificial.failover_backup_chain ~clique_size:n ~chain_len:2 () in
  let members = List.init sdn (fun i -> Topology.Artificial.asn (n - 1 - i)) in
  let spec = Topology.Spec.with_sdn spec members in
  let exp = Framework.Experiment.create ~seed:7 spec in
  let network = Framework.Experiment.network exp in
  let stub = Topology.Artificial.stub_asn spec in
  let viewer = Topology.Artificial.asn 2 (* a legacy clique member *) in
  let prefix = Framework.Experiment.default_prefix exp stub in
  (* stub hosts the "video server" *)
  ignore (Framework.Experiment.measure exp ~prefix (fun () ->
      ignore (Framework.Experiment.announce exp stub)));
  ignore (Framework.Experiment.announce exp viewer);
  ignore (Framework.Experiment.settle exp);
  (* one probe every 500 ms for 3 simulated minutes *)
  let stream =
    Framework.Monitor.start_stream network ~src:viewer ~dst:stub
      ~interval:(Engine.Time.ms 500) ~count:360
  in
  (* fail the primary 10 s into the stream *)
  ignore
    (Engine.Sim.schedule_after (Framework.Experiment.sim exp) (Engine.Time.sec 10) (fun () ->
         Framework.Network.fail_link network stub (Topology.Artificial.asn 0)));
  ignore (Framework.Experiment.settle exp);
  (stream, Framework.Monitor.loss_ratio stream, Framework.Monitor.mean_rtt_ms stream)

let () =
  Fmt.pr "video fail-over demo: 360 probes at 2/s, primary link dies at t+10s@.@.";
  List.iter
    (fun sdn ->
      let stream, loss, rtt = run ~sdn in
      let s = stream.Framework.Monitor.stats in
      Fmt.pr "%d/8 ASes centralized: sent=%d replies=%d loss=%.1f%% mean rtt=%.1f ms@." sdn
        s.Framework.Monitor.sent s.Framework.Monitor.replies (loss *. 100.0) rtt)
    [ 0; 4 ];
  Fmt.pr "@.(loss is the fail-over interruption window as the application sees it)@."
