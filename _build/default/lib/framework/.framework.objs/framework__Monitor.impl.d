lib/framework/monitor.ml: Addressing Engine Fmt List Net Network Option Topology
