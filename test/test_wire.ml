(* Bgp.Wire: RFC 4271 binary encoding — roundtrips, wire-format details,
   and malformed-input handling. *)

let asn = Net.Asn.of_int

let nh = Net.Ipv4.addr_of_octets 10 1 2 3

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let attrs ?(path = [ 65001 ]) ?(lp = 100) ?(med = 0) ?(origin = Bgp.Attrs.Igp)
    ?(communities = []) () =
  Bgp.Attrs.make ~as_path:(List.map asn path) ~local_pref:lp ~med ~origin
    ~communities:(Bgp.Community.Set.of_list communities)
    ~next_hop:nh ()

let decode_one bytes =
  match Bgp.Wire.decode bytes with
  | Ok (msg, consumed) ->
    Alcotest.(check int) "consumed all" (Bytes.length bytes) consumed;
    msg
  | Error e -> Alcotest.failf "decode failed: %a" Bgp.Wire.pp_error e

let test_keepalive_roundtrip () =
  match Bgp.Wire.encode Bgp.Message.Keepalive with
  | [ bytes ] ->
    Alcotest.(check int) "19 bytes" Bgp.Wire.header_size (Bytes.length bytes);
    Alcotest.(check bool) "roundtrip" true (decode_one bytes = Bgp.Message.Keepalive)
  | _ -> Alcotest.fail "one message expected"

let test_open_roundtrip_small_asn () =
  let msg = Bgp.Message.Open { asn = asn 65001; router_id = nh; hold_time = 180 } in
  match Bgp.Wire.encode msg with
  | [ bytes ] -> (
    match decode_one bytes with
    | Bgp.Message.Open { asn = a; router_id; hold_time } ->
      Alcotest.(check int) "asn" 65001 (Net.Asn.to_int a);
      Alcotest.(check bool) "router id" true (Net.Ipv4.equal_addr router_id nh);
      Alcotest.(check int) "hold time survives the wire" 180 hold_time
    | _ -> Alcotest.fail "expected OPEN")
  | _ -> Alcotest.fail "one message expected"

let test_open_roundtrip_4byte_asn () =
  (* an ASN above 65535 must survive via the 4-octet-AS capability *)
  let big = asn 4_200_000_000 in
  let msg = Bgp.Message.Open { asn = big; router_id = nh; hold_time = 90 } in
  match Bgp.Wire.encode msg with
  | [ bytes ] -> (
    (* the 2-octet field must carry AS_TRANS *)
    let as2 =
      (Char.code (Bytes.get bytes (Bgp.Wire.header_size + 1)) lsl 8)
      lor Char.code (Bytes.get bytes (Bgp.Wire.header_size + 2))
    in
    Alcotest.(check int) "AS_TRANS in 2-octet field" 23456 as2;
    match decode_one bytes with
    | Bgp.Message.Open { asn = a; _ } ->
      Alcotest.(check int) "full asn recovered" 4_200_000_000 (Net.Asn.to_int a)
    | _ -> Alcotest.fail "expected OPEN")
  | _ -> Alcotest.fail "one message expected"

let test_notification_roundtrip () =
  let msg = Bgp.Message.Notification "hold timer expired" in
  match Bgp.Wire.encode msg with
  | [ bytes ] -> (
    match decode_one bytes with
    | Bgp.Message.Notification reason ->
      Alcotest.(check string) "reason" "hold timer expired" reason
    | _ -> Alcotest.fail "expected NOTIFICATION")
  | _ -> Alcotest.fail "one message expected"

let test_update_roundtrip () =
  let a = attrs ~path:[ 65001; 65002 ] ~lp:130 ~med:7 ~origin:Bgp.Attrs.Egp
      ~communities:[ Bgp.Community.make 65000 99; Bgp.Community.no_export ] () in
  let msg =
    Bgp.Message.update
      ~announced:[ (p "100.64.0.0/24", a); (p "100.64.1.0/24", a) ]
      ~withdrawn:[ p "9.9.0.0/16"; p "8.0.0.0/8" ]
      ()
  in
  match Bgp.Wire.encode msg with
  | [ bytes ] -> (
    match decode_one bytes with
    | Bgp.Message.Update { announced; withdrawn } ->
      Alcotest.(check int) "two nlri" 2 (List.length announced);
      Alcotest.(check int) "two withdrawn" 2 (List.length withdrawn);
      let _, a' = List.hd announced in
      Alcotest.(check bool) "attrs wire-equal" true (Bgp.Attrs.wire_equal a a');
      Alcotest.(check int) "local pref" 130 a'.Bgp.Attrs.local_pref;
      Alcotest.(check int) "med" 7 a'.Bgp.Attrs.med;
      Alcotest.(check bool) "origin" true (a'.Bgp.Attrs.origin = Bgp.Attrs.Egp);
      Alcotest.(check bool) "communities" true
        (Bgp.Attrs.has_community a' Bgp.Community.no_export)
    | _ -> Alcotest.fail "expected UPDATE")
  | msgs -> Alcotest.failf "expected one message, got %d" (List.length msgs)

let test_update_splits_by_attrs () =
  (* different attribute sets cannot share a wire UPDATE *)
  let a1 = attrs ~path:[ 65001 ] () and a2 = attrs ~path:[ 65002; 65003 ] () in
  let msg =
    Bgp.Message.update
      ~announced:[ (p "100.64.0.0/24", a1); (p "100.64.1.0/24", a2) ]
      ~withdrawn:[ p "9.9.0.0/16" ]
      ()
  in
  let parts = Bgp.Wire.encode msg in
  Alcotest.(check int) "two wire messages" 2 (List.length parts);
  match Bgp.Wire.decode_all (Bgp.Wire.encode_concat msg) with
  | Ok msgs ->
    let announced =
      List.concat_map
        (function Bgp.Message.Update u -> u.Bgp.Message.announced | _ -> [])
        msgs
    in
    let withdrawn =
      List.concat_map
        (function Bgp.Message.Update u -> u.Bgp.Message.withdrawn | _ -> [])
        msgs
    in
    Alcotest.(check int) "all nlri recovered" 2 (List.length announced);
    Alcotest.(check int) "withdrawals once" 1 (List.length withdrawn)
  | Error e -> Alcotest.failf "decode_all: %a" Bgp.Wire.pp_error e

let test_odd_prefix_lengths () =
  (* /0, /1, /9, /17, /25, /32 exercise every octet-count branch *)
  List.iter
    (fun prefix_str ->
      let msg =
        Bgp.Message.update ~announced:[ (p prefix_str, attrs ()) ] ()
      in
      match Bgp.Wire.decode_all (Bgp.Wire.encode_concat msg) with
      | Ok [ Bgp.Message.Update { announced = [ (back, _) ]; _ } ] ->
        Alcotest.(check string) prefix_str prefix_str (Net.Ipv4.prefix_to_string back)
      | _ -> Alcotest.failf "roundtrip failed for %s" prefix_str)
    [ "0.0.0.0/0"; "128.0.0.0/1"; "10.128.0.0/9"; "10.1.128.0/17"; "10.1.2.128/25";
      "10.1.2.3/32" ]

let test_malformed_inputs () =
  let good = Bgp.Wire.encode_concat Bgp.Message.Keepalive in
  (* truncation *)
  (match Bgp.Wire.decode (Bytes.sub good 0 10) with
  | Error Bgp.Wire.Truncated -> ()
  | _ -> Alcotest.fail "truncated must fail");
  (* marker corruption *)
  let bad_marker = Bytes.copy good in
  Bytes.set bad_marker 3 '\x00';
  (match Bgp.Wire.decode bad_marker with
  | Error Bgp.Wire.Bad_marker -> ()
  | _ -> Alcotest.fail "bad marker must fail");
  (* bad type *)
  let bad_type = Bytes.copy good in
  Bytes.set bad_type 18 '\x09';
  (match Bgp.Wire.decode bad_type with
  | Error (Bgp.Wire.Bad_type 9) -> ()
  | _ -> Alcotest.fail "bad type must fail");
  (* absurd length *)
  let bad_len = Bytes.copy good in
  Bytes.set bad_len 16 '\x00';
  Bytes.set bad_len 17 '\x05';
  match Bgp.Wire.decode bad_len with
  | Error (Bgp.Wire.Bad_length 5) -> ()
  | _ -> Alcotest.fail "bad length must fail"

let test_long_as_path_segments () =
  (* paths longer than 255 hops need multiple AS_SEQUENCE segments *)
  let long_path = List.init 300 (fun i -> 60000 + i) in
  let msg =
    Bgp.Message.update ~announced:[ (p "100.64.0.0/24", attrs ~path:long_path ()) ] ()
  in
  match Bgp.Wire.decode_all (Bgp.Wire.encode_concat msg) with
  | Ok [ Bgp.Message.Update { announced = [ (_, a) ]; _ } ] ->
    Alcotest.(check int) "300 hops survive" 300 (Bgp.Attrs.path_length a);
    Alcotest.(check (list int)) "order preserved" long_path
      (List.map Net.Asn.to_int (Bgp.Attrs.as_path a))
  | _ -> Alcotest.fail "roundtrip failed"

let arb_message =
  let gen =
    QCheck.Gen.(
      let gen_prefix =
        let* oct1 = int_range 1 223 in
        let* oct2 = int_range 0 255 in
        let* len = int_range 8 32 in
        return (Net.Ipv4.prefix (Net.Ipv4.addr_of_octets oct1 oct2 0 0) len)
      in
      let gen_attrs =
        let* path_len = int_range 0 6 in
        let* path = list_repeat path_len (int_range 1 100000) in
        let* lp = int_range 0 300 in
        let* med = int_range 0 50 in
        let* origin = oneofl [ Bgp.Attrs.Igp; Bgp.Attrs.Egp; Bgp.Attrs.Incomplete ] in
        let* ncomm = int_range 0 3 in
        let* comms = list_repeat ncomm (pair (int_range 0 65535) (int_range 0 65535)) in
        return
          (attrs ~path ~lp ~med ~origin
             ~communities:(List.map (fun (a, t) -> Bgp.Community.make a t) comms)
             ())
      in
      let* n_ann = int_range 0 5 in
      let* announced = list_repeat n_ann (pair gen_prefix gen_attrs) in
      let* n_wd = int_range 0 5 in
      let* withdrawn = list_repeat n_wd gen_prefix in
      return (Bgp.Message.update ~announced ~withdrawn ()))
  in
  QCheck.make ~print:(fun m -> Fmt.str "%a" Bgp.Message.pp m) gen

let prop_update_roundtrip =
  QCheck.Test.make ~name:"update stream roundtrip preserves content" ~count:300 arb_message
    (fun msg ->
      match msg with
      | Bgp.Message.Update u -> (
        match Bgp.Wire.decode_all (Bgp.Wire.encode_concat msg) with
        | Error _ -> false
        | Ok msgs ->
          let announced =
            List.concat_map
              (function Bgp.Message.Update u -> u.Bgp.Message.announced | _ -> [])
              msgs
          in
          let withdrawn =
            List.concat_map
              (function Bgp.Message.Update u -> u.Bgp.Message.withdrawn | _ -> [])
              msgs
          in
          let norm_ann l =
            List.sort compare
              (List.map
                 (fun (p, (a : Bgp.Attrs.t)) ->
                   ( Net.Ipv4.prefix_to_string p,
                     Fmt.str "%a|%d" Bgp.Attrs.pp a a.Bgp.Attrs.local_pref ))
                 l)
          in
          let norm_wd l = List.sort compare (List.map Net.Ipv4.prefix_to_string l) in
          norm_ann announced = norm_ann u.Bgp.Message.announced
          && norm_wd withdrawn = norm_wd u.Bgp.Message.withdrawn)
      | _ -> true)

let suite =
  [
    Alcotest.test_case "keepalive roundtrip" `Quick test_keepalive_roundtrip;
    Alcotest.test_case "open roundtrip (16-bit asn)" `Quick test_open_roundtrip_small_asn;
    Alcotest.test_case "open roundtrip (32-bit asn)" `Quick test_open_roundtrip_4byte_asn;
    Alcotest.test_case "notification roundtrip" `Quick test_notification_roundtrip;
    Alcotest.test_case "update roundtrip" `Quick test_update_roundtrip;
    Alcotest.test_case "update splits by attrs" `Quick test_update_splits_by_attrs;
    Alcotest.test_case "odd prefix lengths" `Quick test_odd_prefix_lengths;
    Alcotest.test_case "malformed inputs" `Quick test_malformed_inputs;
    Alcotest.test_case "long AS path segments" `Quick test_long_as_path_segments;
    QCheck_alcotest.to_alcotest prop_update_roundtrip;
  ]
