(** Automatic IP address assignment: router address, host address and
    default origin prefix per AS, derived from the spec ordering. *)

type plan = {
  index_of : Net.Asn.t -> int;
  router_addr : Net.Asn.t -> Net.Ipv4.addr;
  host_addr : Net.Asn.t -> Net.Ipv4.addr;
  origin_prefix : Net.Asn.t -> Net.Ipv4.prefix;
}

val plan : Topology.Spec.t -> plan
(** @raise Invalid_argument for ASNs outside the spec;
    @raise Failure for topologies beyond the address plan (~16k ASes). *)
