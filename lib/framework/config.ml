(* Framework-level experiment configuration: BGP timing, controller
   behaviour, link properties, infrastructure placement. *)

type t = {
  bgp : Bgp.Config.t;
  damping : Bgp.Damping.config option; (* RFC 2439 flap damping on legacy routers *)
  controller : Cluster_ctl.Controller.config;
  speaker_mrai : Bgp.Config.t option;
      (* pace the cluster speaker's announcements like a normal BGP
         implementation (None = ExaBGP-style immediate emission) *)
  default_link_delay : Engine.Time.span;
  collector_link_delay : Engine.Time.span;
  control_link_delay : Engine.Time.span; (* controller <-> switch *)
  wire_transport : bool;
      (* pass every BGP message through the RFC 4271 binary codec at the
         sender (encode -> byte stream -> decode), exactly as a TCP
         transport would carry it; semantic UPDATEs that split into
         several wire messages are delivered as such *)
  speaker_liveness : Bgp.Config.keepalive option;
      (* KEEPALIVE/hold timers on the cluster speaker's external sessions
         (None = sessions never hold-expire, the pre-liveness behaviour) *)
  switch_liveness : Sdn.Switch.liveness option;
      (* member switches heartbeat the controller and degrade into a
         legacy-BGP fallback route when the control plane goes silent *)
  flow_idle_timeout : Engine.Time.span option;
  flow_hard_timeout : Engine.Time.span option;
      (* stamp proactively installed flow rules so stale forwarding state
         decays at the switch when the controller stops refreshing it *)
  causal : Engine.Causal.mode;
      (* causal span tracing: the default bounded ring is the always-on
         flight recorder chaos dumps on invariant violations; [Full]
         retains every span for export/critical-path analysis *)
  collector_retention : Bgp.Collector.retention;
      (* [Counts_only] drops the collector's event log, keeping counts and
         per-prefix last-update instants — required at Internet scale
         where the log would dominate the heap *)
}

let default =
  {
    bgp = Bgp.Config.default;
    damping = None;
    controller = Cluster_ctl.Controller.default_config;
    speaker_mrai = None;
    default_link_delay = Engine.Time.ms 2;
    collector_link_delay = Engine.Time.ms 1;
    control_link_delay = Engine.Time.ms 1;
    wire_transport = false;
    speaker_liveness = None;
    switch_liveness = None;
    flow_idle_timeout = None;
    flow_hard_timeout = None;
    causal = Engine.Causal.Ring 4096;
    collector_retention = Bgp.Collector.Full;
  }

let with_mrai t span = { t with bgp = Bgp.Config.with_mrai t.bgp span }

let with_recompute_delay t span =
  { t with
    controller = { t.controller with Cluster_ctl.Controller.recompute_delay = span } }

(* A configuration scaled for fast unit tests: second-scale MRAI. *)
let fast_test =
  {
    default with
    bgp =
      {
        Bgp.Config.default with
        Bgp.Config.mrai = Engine.Time.sec 2;
        proc_delay_min = Engine.Time.ms 1;
        proc_delay_max = Engine.Time.ms 5;
        session_down_detect = Engine.Time.ms 100;
        session_open_delay = Engine.Time.ms 200;
      };
    controller =
      { Cluster_ctl.Controller.default_config with
        Cluster_ctl.Controller.recompute_delay = Engine.Time.ms 200 };
  }

(* Every failure-detection mechanism armed with second-scale timers:
   silent failures hold-expire within ~6 s, switches degrade to legacy
   fallback after ~3 s of control silence, and stale flow rules decay
   within 45 s.  The base is [fast_test] so whole failure/recovery
   scenarios fit in under a simulated minute. *)
let failure_test =
  let liveness =
    { Bgp.Config.interval = Engine.Time.sec 2; hold_time = Engine.Time.sec 6 }
  in
  {
    fast_test with
    bgp = Bgp.Config.with_reconnect (Bgp.Config.with_keepalives ~keepalive:liveness fast_test.bgp);
    speaker_liveness = Some liveness;
    switch_liveness =
      Some { Sdn.Switch.echo_interval = Engine.Time.sec 1; fail_after = Engine.Time.sec 3 };
    flow_hard_timeout = Some (Engine.Time.sec 45);
  }
