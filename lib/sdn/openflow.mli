(** OpenFlow-style control messages, including the BGP relay
    encapsulation between border switches and the cluster BGP speaker. *)

type flow_mod_command = Add | Delete | Delete_strict

type removal_reason = Idle_timeout | Hard_timeout

type relay_direction = To_speaker | To_neighbor

type t =
  | Hello
  | Echo_request of { switch_asn : Net.Asn.t }
      (** switch → controller heartbeat probe *)
  | Echo_reply  (** controller → switch: the control plane is alive *)
  | Resync_done
      (** controller → switch after a restart: flow state reinstalled,
          leave legacy fallback mode *)
  | Packet_in of { switch_asn : Net.Asn.t; in_port : Flow.port; packet : Net.Packet.t }
  | Packet_out of { out_port : Flow.port; packet : Net.Packet.t }
  | Flow_mod of { command : flow_mod_command; rule : Flow.rule }
  | Flow_removed of { switch_asn : Net.Asn.t; rule : Flow.rule; reason : removal_reason }
  | Port_status of { switch_asn : Net.Asn.t; port : Flow.port; up : bool }
  | Bgp_relay of {
      member : Net.Asn.t;
      neighbor : Net.Asn.t;
      direction : relay_direction;
      payload : Bgp.Message.t;
    }

val pp : Format.formatter -> t -> unit
