(** Weighted graph over integer node ids, with deterministic traversal
    order (adjacency sorted by node id). *)

type t

val create : ?directed:bool -> unit -> t
(** Undirected by default. *)

val is_directed : t -> bool

val version : t -> int
(** Monotone structural-mutation counter: bumped by every
    [add_node]/[add_edge]/[remove_edge]/[remove_node]/[clear] that changes
    the graph.  Cache derived structures keyed on it. *)

val clear : t -> unit
(** Remove every node and edge (bumps the version); the value stays
    usable, so scratch graphs can be rebuilt without reallocating. *)

val add_node : t -> int -> unit

val mem_node : t -> int -> bool

val nodes : t -> int list
(** Sorted ascending. *)

val node_count : t -> int

val edge_count : t -> int

val neighbors : t -> int -> (int * float) list
(** Sorted by neighbor id; empty for unknown nodes. *)

val succ : t -> int -> int list

val degree : t -> int -> int

val weight : t -> int -> int -> float option

val mem_edge : t -> int -> int -> bool

val add_edge : ?w:float -> t -> int -> int -> unit
(** Adds endpoints as needed; replaces the weight of an existing edge.
    @raise Invalid_argument on self-loops. *)

val remove_edge : t -> int -> int -> unit

val remove_node : t -> int -> unit

val edges : t -> (int * int * float) list
(** Each undirected edge once (u < v), sorted. *)

val copy : t -> t

val dijkstra : t -> int -> (int, float) Hashtbl.t * (int, int) Hashtbl.t
(** [dijkstra t src] is [(dist, pred)]; unreachable nodes are absent.
    @raise Invalid_argument on negative edge weights. *)

type scratch
(** Reusable Dijkstra working state (distance/predecessor tables and the
    priority queue), for callers that run many single-source computations
    back to back — the controller's per-prefix sweep. *)

val scratch : unit -> scratch

val dijkstra_reuse : scratch -> t -> int -> (int, float) Hashtbl.t * (int, int) Hashtbl.t
(** Like {!dijkstra} but allocation-lean: the returned tables belong to the
    scratch and are overwritten by its next use — read them before running
    again, or copy what must survive. *)

val distance : t -> int -> int -> float option

val shortest_path : t -> int -> int -> int list option
(** Node sequence from [src] to [dst] inclusive. *)

val bfs_reachable : t -> int -> int list
(** Nodes reachable from [src], sorted, including [src]. *)

val components : t -> int list list
(** Connected components (undirected view), each sorted. *)

val is_connected : t -> bool

val pp : Format.formatter -> t -> unit
