(* System-level invariants on randomized full-stack emulations: these are
   the properties that make the emulator trustworthy as an experimental
   instrument.

   After running a random topology with random originations to
   quiescence:
   I1. peer-state consistency — what A's Adj-RIB-Out says it advertised
       to B is exactly what B's Adj-RIB-In holds from A;
   I2. decision fixed point — re-running the decision process changes no
       router's best route;
   I3. loc-rib paths are simple (no AS appears twice);
   I4. the data plane never loops (walks end in delivery or blackhole);
   I5. under Gao-Rexford policies, every selected path is valley-free. *)

let cfg = Framework.Config.fast_test

(* Build, start, originate a couple of prefixes, settle. *)
let settled_network ~spec ~seed ~origins =
  let net = Framework.Network.create ~config:cfg ~seed spec in
  Framework.Network.start net;
  ignore (Framework.Network.settle net);
  let plan = Framework.Network.plan net in
  List.iter
    (fun asn -> Framework.Network.originate net asn (plan.Framework.Addressing.origin_prefix asn))
    origins;
  ignore (Framework.Network.settle net);
  net

let random_spec seed =
  let rng = Engine.Rng.create seed in
  let n = 4 + Engine.Rng.int rng 5 in
  Topology.Random_models.erdos_renyi rng ~n ~p:0.4

let origins_of spec seed =
  let rng = Engine.Rng.create (seed + 7) in
  Engine.Rng.sample rng 2 (Topology.Spec.asns spec)

let all_prefixes net origins =
  let plan = Framework.Network.plan net in
  List.map (fun a -> plan.Framework.Addressing.origin_prefix a) origins

(* I1 *)
let check_peer_consistency net =
  let routers = Framework.Network.routers net in
  Net.Asn.Map.iter
    (fun a_asn a ->
      Net.Asn.Map.iter
        (fun b_asn b ->
          if (not (Net.Asn.equal a_asn b_asn)) && Bgp.Router.peer_established a b_asn then begin
            (* every prefix A believes it advertised to B... *)
            List.iter
              (fun (prefix, out_attrs) ->
                match Bgp.Router.adj_in_find b ~peer:a_asn prefix with
                | Some route ->
                  if not (Bgp.Attrs.wire_equal out_attrs (Bgp.Route.attrs route)) then
                    Alcotest.failf "adj-out/adj-in attrs mismatch %a->%a %a" Net.Asn.pp a_asn
                      Net.Asn.pp b_asn Net.Ipv4.pp_prefix prefix
                | None ->
                  Alcotest.failf "%a advertised %a to %a but it is missing" Net.Asn.pp a_asn
                    Net.Ipv4.pp_prefix prefix Net.Asn.pp b_asn)
              (List.filter_map
                 (fun prefix ->
                   Option.map (fun attrs -> (prefix, attrs))
                     (Bgp.Router.adj_out_find a ~peer:b_asn prefix))
                 (List.map fst (Bgp.Router.loc_entries a)));
            (* ...and B holds nothing from A that A does not claim *)
            List.iter
              (fun (prefix, _) ->
                match Bgp.Router.adj_in_find b ~peer:a_asn prefix with
                | Some _ ->
                  if Bgp.Router.adj_out_find a ~peer:b_asn prefix = None then
                    Alcotest.failf "%a holds ghost route from %a for %a" Net.Asn.pp b_asn
                      Net.Asn.pp a_asn Net.Ipv4.pp_prefix prefix
                | None -> ())
              (Bgp.Router.loc_entries b)
          end)
        routers)
    routers

(* I2 *)
let check_decision_fixed_point net prefixes =
  Net.Asn.Map.iter
    (fun asn router ->
      List.iter
        (fun prefix ->
          let stored = Bgp.Router.best router prefix in
          let recomputed = Bgp.Decision.select (Bgp.Router.candidates router prefix) in
          let same =
            match (stored, recomputed) with
            | None, None -> true
            | Some a, Some b ->
              Bgp.Route.source a = Bgp.Route.source b
              && Bgp.Attrs.wire_equal (Bgp.Route.attrs a) (Bgp.Route.attrs b)
            | _ -> false
          in
          if not same then
            Alcotest.failf "decision not a fixed point at %a for %a" Net.Asn.pp asn
              Net.Ipv4.pp_prefix prefix)
        prefixes)
    (Framework.Network.routers net)

(* I3 *)
let check_simple_paths net =
  Net.Asn.Map.iter
    (fun asn router ->
      List.iter
        (fun (prefix, route) ->
          let path = Bgp.Attrs.as_path (Bgp.Route.attrs route) in
          let sorted = List.sort_uniq Net.Asn.compare path in
          if List.length sorted <> List.length path then
            Alcotest.failf "non-simple path at %a for %a" Net.Asn.pp asn Net.Ipv4.pp_prefix
              prefix)
        (Bgp.Router.loc_entries router))
    (Framework.Network.routers net)

(* I4 *)
let check_no_forwarding_loops net origins =
  let plan = Framework.Network.plan net in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if not (Net.Asn.equal src dst) then begin
            match
              Framework.Monitor.walk net ~src
                ~dst_addr:(plan.Framework.Addressing.host_addr dst)
            with
            | Framework.Monitor.Loop path ->
              Alcotest.failf "forwarding loop %a->%a via [%a]" Net.Asn.pp src Net.Asn.pp dst
                Fmt.(list ~sep:sp Net.Asn.pp)
                path
            | Framework.Monitor.Ttl_exceeded _ -> Alcotest.fail "ttl exceeded (hidden loop?)"
            | Framework.Monitor.Delivered _ | Framework.Monitor.Blackhole _ -> ()
          end)
        origins)
    (Topology.Spec.asns (Framework.Network.spec net))

(* I5: up* flat? down* — once a path goes toward a customer (down) or
   crosses a peer link (flat), it may never go back up or flat again. *)
let check_valley_free spec net =
  let rel ~of_asn ~toward =
    match
      List.find_opt
        (fun (l : Topology.Spec.link_spec) ->
          (Net.Asn.equal l.Topology.Spec.a of_asn && Net.Asn.equal l.Topology.Spec.b toward)
          || (Net.Asn.equal l.Topology.Spec.b of_asn && Net.Asn.equal l.Topology.Spec.a toward))
        (Topology.Spec.links spec)
    with
    | Some l -> Some (Topology.Spec.neighbor_role_of_link ~me:of_asn l)
    | None -> None
  in
  Net.Asn.Map.iter
    (fun asn router ->
      List.iter
        (fun (prefix, route) ->
          (* hops walked from this AS toward the origin *)
          let hops = asn :: Bgp.Attrs.as_path (Bgp.Route.attrs route) in
          let rec walk descended = function
            | a :: (b :: _ as rest) -> (
              match rel ~of_asn:a ~toward:b with
              | Some Topology.Spec.Provider | Some Topology.Spec.Sibling
              | Some Topology.Spec.Unrestricted ->
                (* climbing or policy-free: only legal before any descent *)
                if descended && rel ~of_asn:a ~toward:b = Some Topology.Spec.Provider then
                  Alcotest.failf "valley in path at %a for %a" Net.Asn.pp asn
                    Net.Ipv4.pp_prefix prefix
                else walk descended rest
              | Some Topology.Spec.Peer ->
                if descended then
                  Alcotest.failf "peer crossing after descent at %a for %a" Net.Asn.pp asn
                    Net.Ipv4.pp_prefix prefix
                else walk true rest
              | Some Topology.Spec.Customer -> walk true rest
              | None -> walk descended rest (* non-adjacent: speaker-mediated hop *))
            | [ _ ] | [] -> ()
          in
          walk false hops)
        (Bgp.Router.loc_entries router))
    (Framework.Network.routers net)

let run_invariant_battery seed =
  let spec = random_spec seed in
  let origins = origins_of spec seed in
  let net = settled_network ~spec ~seed ~origins in
  let prefixes = all_prefixes net origins in
  check_peer_consistency net;
  check_decision_fixed_point net prefixes;
  check_simple_paths net;
  check_no_forwarding_loops net origins

let test_invariants_random_topologies () =
  List.iter run_invariant_battery [ 101; 202; 303; 404; 505; 616; 727; 838; 949; 1060 ]

let test_invariants_after_failures () =
  (* Same battery, but after killing and restoring random links. *)
  List.iter
    (fun seed ->
      let spec = random_spec seed in
      let origins = origins_of spec seed in
      let net = settled_network ~spec ~seed ~origins in
      let rng = Engine.Rng.create (seed * 13) in
      let links = Topology.Spec.links spec in
      let victims = Engine.Rng.sample rng 2 links in
      List.iter
        (fun (l : Topology.Spec.link_spec) ->
          Framework.Network.fail_link net l.Topology.Spec.a l.Topology.Spec.b)
        victims;
      ignore (Framework.Network.settle net);
      check_peer_consistency net;
      check_decision_fixed_point net (all_prefixes net origins);
      check_simple_paths net;
      check_no_forwarding_loops net origins;
      (* and again after recovery *)
      List.iter
        (fun (l : Topology.Spec.link_spec) ->
          Framework.Network.recover_link net l.Topology.Spec.a l.Topology.Spec.b)
        victims;
      ignore (Framework.Network.settle net);
      check_peer_consistency net;
      check_no_forwarding_loops net origins)
    [ 606; 707; 808 ]

let test_invariants_hybrid () =
  (* The battery on hybrid networks: half the ASes centralized. *)
  List.iter
    (fun seed ->
      let spec = random_spec seed in
      let asns = Topology.Spec.asns spec in
      let k = List.length asns / 2 in
      let sdn = List.filteri (fun i _ -> i >= List.length asns - k) asns in
      let spec = Topology.Spec.with_sdn spec sdn in
      let origins =
        List.filter (fun a -> not (List.exists (Net.Asn.equal a) sdn)) asns
        |> fun legacy -> [ List.hd legacy ]
      in
      let net = settled_network ~spec ~seed ~origins in
      check_peer_consistency net;
      check_simple_paths net;
      check_no_forwarding_loops net origins)
    [ 111; 222; 333 ]

let test_valley_free_on_internet () =
  List.iter
    (fun seed ->
      let rng = Engine.Rng.create seed in
      let spec = Topology.Caida.generate ~tier1:3 ~tier2:6 ~stubs:10 rng in
      (* stubs originate *)
      let origins = Topology.Caida.stub_asns ~tier1:3 ~tier2:6 ~stubs:10 |> Engine.Rng.sample rng 3 in
      let net = settled_network ~spec ~seed ~origins in
      check_valley_free spec net;
      check_peer_consistency net;
      check_simple_paths net)
    [ 11; 22; 33 ]

let suite =
  [
    Alcotest.test_case "random topologies" `Slow test_invariants_random_topologies;
    Alcotest.test_case "after link failures" `Slow test_invariants_after_failures;
    Alcotest.test_case "hybrid networks" `Slow test_invariants_hybrid;
    Alcotest.test_case "valley-free on internet graphs" `Slow test_valley_free_on_internet;
  ]
