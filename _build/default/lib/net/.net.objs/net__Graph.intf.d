lib/net/graph.mli: Format Hashtbl
