lib/sdn/openflow.mli: Bgp Flow Format Net
