examples/internet_subclusters.ml: Cluster_ctl Engine Fmt Framework Int List Net Topology
