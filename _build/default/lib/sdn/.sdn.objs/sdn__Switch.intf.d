lib/sdn/switch.mli: Bgp Engine Flow_table Net Openflow
