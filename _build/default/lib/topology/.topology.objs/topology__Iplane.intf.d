lib/topology/iplane.mli: Engine Format Net Spec
