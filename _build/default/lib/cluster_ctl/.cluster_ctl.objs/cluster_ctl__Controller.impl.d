lib/cluster_ctl/controller.ml: As_graph Bgp Engine Flow_compiler Fmt List Net Option Recompute Sdn Speaker
