(* Longest-prefix-match forwarding table, as a binary trie on address bits.
   Generic in the entry type: legacy routers store next-hop AS decisions,
   SDN switches store flow actions. *)

type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = { root : 'a node; mutable size : int }

let make_node () = { value = None; zero = None; one = None }

let create () = { root = make_node (); size = 0 }

let size t = t.size

(* Bit [i] (0 = most significant) of an address. *)
let bit addr i =
  Int32.logand (Int32.shift_right_logical (Ipv4.addr_to_int32 addr) (31 - i)) 1l <> 0l

let rec locate_rec node addr len i ~create_missing =
  if i = len then Some node
  else begin
    let child = if bit addr i then node.one else node.zero in
    match child with
    | Some c -> locate_rec c addr len (i + 1) ~create_missing
    | None ->
      if not create_missing then None
      else begin
        let c = make_node () in
        if bit addr i then node.one <- Some c else node.zero <- Some c;
        locate_rec c addr len (i + 1) ~create_missing
      end
  end

let insert t prefix value =
  let addr = Ipv4.prefix_network prefix in
  let len = Ipv4.prefix_len prefix in
  match locate_rec t.root addr len 0 ~create_missing:true with
  | None -> assert false
  | Some node ->
    if Option.is_none node.value then t.size <- t.size + 1;
    node.value <- Some value

let find t prefix =
  let addr = Ipv4.prefix_network prefix in
  let len = Ipv4.prefix_len prefix in
  match locate_rec t.root addr len 0 ~create_missing:false with
  | None -> None
  | Some node -> node.value

let remove t prefix =
  let addr = Ipv4.prefix_network prefix in
  let len = Ipv4.prefix_len prefix in
  match locate_rec t.root addr len 0 ~create_missing:false with
  | None -> ()
  | Some node ->
    if Option.is_some node.value then t.size <- t.size - 1;
    node.value <- None

(* Walk toward the address, remembering the deepest populated node. *)
let lookup t addr =
  let rec walk node i best =
    let best =
      match node.value with
      | Some v -> Some (Ipv4.prefix addr i, v)
      | None -> best
    in
    if i = 32 then best
    else
      match (if bit addr i then node.one else node.zero) with
      | None -> best
      | Some c -> walk c (i + 1) best
  in
  walk t.root 0 None

let lookup_value t addr = Option.map snd (lookup t addr)

let entries t =
  let rec walk node addr i acc =
    let acc =
      match node.value with
      | Some v -> (Ipv4.prefix (Ipv4.addr_of_int32 addr) i, v) :: acc
      | None -> acc
    in
    let acc =
      match node.zero with Some c -> walk c addr (i + 1) acc | None -> acc
    in
    match node.one with
    | Some c -> walk c (Int32.logor addr (Int32.shift_left 1l (31 - i))) (i + 1) acc
    | None -> acc
  in
  walk t.root 0l 0 [] |> List.sort (fun (p, _) (q, _) -> Ipv4.compare_prefix p q)

let clear t =
  t.root.value <- None;
  t.root.zero <- None;
  t.root.one <- None;
  t.size <- 0

let iter t f = List.iter (fun (p, v) -> f p v) (entries t)
