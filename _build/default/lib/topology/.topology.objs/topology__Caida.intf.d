lib/topology/caida.mli: Engine Format Net Spec
