lib/framework/convergence.mli: Engine Format Net Network
