lib/topology/spec.mli: Format Net
