(* Framework.Convergence: measurement semantics. *)

let asn = Topology.Artificial.asn

let cfg = Framework.Config.fast_test

let make_exp ?(n = 4) ?(sdn = []) () =
  let spec = Topology.Spec.with_sdn (Topology.Artificial.clique n) sdn in
  Framework.Experiment.create ~config:cfg ~seed:5 spec

let test_announcement_measured () =
  let exp = make_exp () in
  let prefix = Framework.Experiment.default_prefix exp (asn 0) in
  let m =
    Framework.Experiment.measure exp ~prefix (fun () ->
        ignore (Framework.Experiment.announce exp (asn 0)))
  in
  Alcotest.(check bool) "has convergence" true (m.Framework.Convergence.convergence <> None);
  let secs = Framework.Experiment.convergence_seconds m in
  Alcotest.(check bool) "positive and small" true (secs > 0.0 && secs < 5.0);
  Alcotest.(check bool) "changes counted" true (m.Framework.Convergence.changes >= 4)

let test_noop_event_has_no_convergence () =
  let exp = make_exp () in
  let prefix = Framework.Experiment.default_prefix exp (asn 0) in
  (* withdrawing a prefix that was never announced changes nothing *)
  let m =
    Framework.Experiment.measure exp ~prefix (fun () ->
        ignore (Framework.Experiment.withdraw exp (asn 0)))
  in
  Alcotest.(check bool) "no convergence for no-op" true
    (m.Framework.Convergence.convergence = None);
  Alcotest.(check int) "no changes" 0 m.Framework.Convergence.changes

let test_withdrawal_slower_than_announcement () =
  let exp = make_exp () in
  let prefix = Framework.Experiment.default_prefix exp (asn 0) in
  let m_ann =
    Framework.Experiment.measure exp ~prefix (fun () ->
        ignore (Framework.Experiment.announce exp (asn 0)))
  in
  let m_wd =
    Framework.Experiment.measure exp ~prefix (fun () ->
        ignore (Framework.Experiment.withdraw exp (asn 0)))
  in
  Alcotest.(check bool) "Tdown > Tup (path exploration)" true
    (Framework.Experiment.convergence_seconds m_wd
    > Framework.Experiment.convergence_seconds m_ann)

let test_collector_view_close_to_control_view () =
  let exp = make_exp () in
  let prefix = Framework.Experiment.default_prefix exp (asn 0) in
  ignore
    (Framework.Experiment.measure exp ~prefix (fun () ->
         ignore (Framework.Experiment.announce exp (asn 0))));
  let w = Framework.Experiment.watcher exp in
  let control = Option.get (Framework.Convergence.last_control_change w prefix) in
  let collector = Option.get (Framework.Convergence.last_collector_update w prefix) in
  (* the collector hears about the last change within an MRAI + delays *)
  let gap = Engine.Time.to_sec_f (Engine.Time.diff collector control) in
  Alcotest.(check bool) (Fmt.str "gap %.3fs bounded" gap) true (Float.abs gap < 3.0)

let test_sdn_reduces_withdrawal_time () =
  let t_legacy =
    let exp = make_exp ~n:6 () in
    Framework.Experiment.convergence_seconds (Core.measure_withdrawal exp (asn 0))
  in
  let t_hybrid =
    let exp = make_exp ~n:6 ~sdn:[ asn 2; asn 3; asn 4; asn 5 ] () in
    Framework.Experiment.convergence_seconds (Core.measure_withdrawal exp (asn 0))
  in
  Alcotest.(check bool)
    (Fmt.str "hybrid %.2fs < legacy %.2fs" t_hybrid t_legacy)
    true (t_hybrid < t_legacy)

let suite =
  [
    Alcotest.test_case "announcement measured" `Quick test_announcement_measured;
    Alcotest.test_case "no-op has no convergence" `Quick test_noop_event_has_no_convergence;
    Alcotest.test_case "withdrawal slower than announcement" `Quick
      test_withdrawal_slower_than_announcement;
    Alcotest.test_case "collector view consistent" `Quick
      test_collector_view_close_to_control_view;
    Alcotest.test_case "centralization reduces Tdown" `Quick test_sdn_reduces_withdrawal_time;
  ]
