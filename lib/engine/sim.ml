(* Deterministic discrete-event scheduler.

   Events fire in (time, insertion sequence) order, so two events scheduled
   for the same instant run in the order they were scheduled — this plus the
   splittable RNG makes whole experiment runs bit-reproducible.

   Observability: every event carries a category string; the scheduler
   counts scheduled/executed/reaped events per category in its metrics
   registry (deterministic — safe to export), and, when profiling is
   enabled, additionally accumulates per-category wall-clock self time in
   a separate table that deliberately stays OUT of the registry so metric
   exports remain byte-identical across runs of the same seed. *)

type event = {
  fire_at : Time.t;
  seq : int;
  category : string;
  span : int; (* causal span id, -1 when tracing is disabled *)
  mutable cancelled : bool;
  action : unit -> unit;
}

type handle = event

type profile_row = { category : string; events : int; seconds : float }

type prof_cell = { mutable p_events : int; mutable p_seconds : float }

type t = {
  mutable now : Time.t;
  mutable next_seq : int;
  mutable executed : int;
  queue : event Heap.t;
  rng : Rng.t;
  trace : Trace.t;
  causal : Causal.t;
  metrics : Metrics.t;
  mutable profiling : bool;
  profile : (string, prof_cell) Hashtbl.t;
  scheduled_by : (string, Metrics.Counter.t) Hashtbl.t;
  executed_by : (string, Metrics.Counter.t) Hashtbl.t;
  reaped : Metrics.Counter.t;
  mutable on_wake : (unit -> unit) list;
}

let compare_event a b =
  let c = Time.compare a.fire_at b.fire_at in
  if c <> 0 then c else compare a.seq b.seq

let dummy_event =
  {
    fire_at = Time.zero;
    seq = -1;
    category = "";
    span = -1;
    cancelled = true;
    action = ignore;
  }

let create ?(seed = 0) ?(trace = true) ?(causal = Causal.Disabled) ?(profiling = false) () =
  let metrics = Metrics.create () in
  {
    now = Time.zero;
    next_seq = 0;
    executed = 0;
    queue = Heap.create ~capacity:1024 ~dummy:dummy_event compare_event;
    rng = Rng.create seed;
    trace = Trace.create ~enabled:trace ();
    causal = Causal.create ~mode:causal ~seed ();
    metrics;
    profiling;
    profile = Hashtbl.create 16;
    scheduled_by = Hashtbl.create 16;
    executed_by = Hashtbl.create 16;
    reaped =
      Metrics.counter metrics ~help:"cancelled events reaped from the queue"
        "sim_events_cancelled_total";
    on_wake = [];
  }

let now t = t.now

let rng t = t.rng

let trace t = t.trace

let causal t = t.causal

let annotate t ~category ?node ?label () =
  Causal.annotate t.causal ~category ?node ?label ~at:t.now ()

let with_span t ~category ?node ?label f =
  Causal.with_span t.causal ~category ?node ?label ~at:t.now f

let metrics t = t.metrics

let pending t = Heap.length t.queue

let executed t = t.executed

let set_profiling t flag = t.profiling <- flag

let profiling t = t.profiling

let profile t =
  Hashtbl.fold
    (fun category cell acc ->
      { category; events = cell.p_events; seconds = cell.p_seconds } :: acc)
    t.profile []
  |> List.sort (fun a b -> String.compare a.category b.category)

let pp_profile ppf t =
  Fmt.pf ppf "%-24s %10s %12s@." "category" "events" "self-s";
  List.iter
    (fun r -> Fmt.pf ppf "%-24s %10d %12.6f@." r.category r.events r.seconds)
    (profile t)

let category_counter cache metrics name category =
  match Hashtbl.find_opt cache category with
  | Some c -> c
  | None ->
    let c = Metrics.counter metrics ~labels:[ ("category", category) ] name in
    Hashtbl.replace cache category c;
    c

let schedule_at ?(category = "event") t fire_at action =
  if Time.(fire_at < t.now) then
    invalid_arg
      (Fmt.str "Sim.schedule_at: %a is in the past (now %a)" Time.pp fire_at Time.pp t.now);
  let span = Causal.on_schedule t.causal ~category ~queued_at:t.now in
  let ev = { fire_at; seq = t.next_seq; category; span; cancelled = false; action } in
  t.next_seq <- t.next_seq + 1;
  Metrics.Counter.inc
    (category_counter t.scheduled_by t.metrics "sim_events_scheduled_total" category);
  let was_empty = Heap.length t.queue = 0 in
  Heap.push t.queue ev;
  (* Notify after the push so a hook's own scheduling sees a non-empty
     queue and cannot re-trigger the transition. *)
  if was_empty then List.iter (fun f -> f ()) t.on_wake;
  ev

let schedule_after ?category t span action =
  schedule_at ?category t (Time.add t.now span) action

let on_wake t f = t.on_wake <- t.on_wake @ [ f ]

let cancel ev = ev.cancelled <- true

let cancelled ev = ev.cancelled

let note_reaped t = Metrics.Counter.inc t.reaped

let run_action t ev =
  if t.profiling then begin
    let t0 = Sys.time () in
    ev.action ();
    let dt = Sys.time () -. t0 in
    let cell =
      match Hashtbl.find_opt t.profile ev.category with
      | Some c -> c
      | None ->
        let c = { p_events = 0; p_seconds = 0.0 } in
        Hashtbl.replace t.profile ev.category c;
        c
    in
    cell.p_events <- cell.p_events + 1;
    cell.p_seconds <- cell.p_seconds +. dt
  end
  else ev.action ()

let execute t ev =
  t.now <- ev.fire_at;
  t.executed <- t.executed + 1;
  Metrics.Counter.inc
    (category_counter t.executed_by t.metrics "sim_events_executed_total" ev.category);
  if Causal.enabled t.causal then begin
    Causal.on_execute t.causal ev.span ~fired_at:ev.fire_at;
    Fun.protect
      ~finally:(fun () -> Causal.clear_current t.causal)
      (fun () -> run_action t ev)
  end
  else run_action t ev

(* Run one event; returns false when the queue is exhausted. *)
let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev when ev.cancelled ->
    note_reaped t;
    step t
  | Some ev ->
    execute t ev;
    true

type run_result = Exhausted | Reached_limit | Reached_time of Time.t

let run ?until ?(max_events = max_int) t =
  let rec loop remaining =
    if remaining = 0 then Reached_limit
    else
      match Heap.peek t.queue with
      | None -> Exhausted
      | Some ev when ev.cancelled ->
        ignore (Heap.pop t.queue);
        note_reaped t;
        loop remaining
      | Some ev -> (
        match until with
        | Some stop when Time.(ev.fire_at > stop) ->
          t.now <- stop;
          Reached_time stop
        | Some _ | None ->
          if step t then loop (remaining - 1) else Exhausted)
  in
  loop max_events

let log t ~node ~category ?level msg =
  Trace.record t.trace ~time:t.now ~node ~category ?level msg

let logf t ~node ~category ?level fmt = Fmt.kstr (log t ~node ~category ?level) fmt
