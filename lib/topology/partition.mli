(** Deterministic, seed-stable topology partitioner for sharded
    execution.

    Produces the same assignment for the same (spec, shards, seed) on
    every host — no RNG is drawn; the seed only rotates the candidate
    order.  All SDN members land on shard 0 (the speaker/controller
    shard), regions grow by BFS from high-degree seeds so neighboring
    ASes tend to share a shard, and the smallest region grows next for
    rough balance.  Empty shards are legal (e.g. more shards than
    non-SDN ASes); they simply idle at the barrier. *)

type t

val compute : ?seed:int -> shards:int -> Spec.t -> t
(** @raise Invalid_argument if [shards < 1]. *)

val shards : t -> int

val shard_of : t -> Net.Asn.t -> int
(** @raise Invalid_argument for an ASN not in the spec. *)

val sizes : t -> int array
(** ASes per shard (fresh copy). *)

val assignment : t -> (Net.Asn.t * int) list
(** Sorted by ASN. *)

val cut_links : t -> Spec.t -> int
(** Spec links whose endpoints live on different shards — each one is a
    channel that must cross the epoch barrier. *)
