lib/cluster_ctl/speaker.ml: Bgp Engine Fmt Hashtbl List Net Option
