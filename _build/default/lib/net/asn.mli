(** Autonomous System numbers. *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument outside the 32-bit ASN range. *)

val to_int : t -> int

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Renders as ["AS65001"]. *)

val to_string : t -> string

val of_string : string -> t option
(** Accepts ["65001"] and ["AS65001"]. *)

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
