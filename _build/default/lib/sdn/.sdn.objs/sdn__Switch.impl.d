lib/sdn/switch.ml: Bgp Engine Flow Flow_table Net Openflow Option
