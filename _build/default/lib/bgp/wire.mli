(** RFC 4271 binary message encoding/decoding (4-octet ASNs per RFC 6793,
    with the 4-octet-AS capability in OPEN).

    One wire UPDATE carries one attribute set, so semantic updates whose
    announcements differ in attributes encode to several wire messages;
    {!decode_all} of the concatenation recovers the same content. *)

type error =
  | Truncated
  | Bad_marker
  | Bad_length of int
  | Bad_type of int
  | Bad_version of int
  | Malformed of string

val pp_error : Format.formatter -> error -> unit

val header_size : int
(** 19 bytes: 16-byte marker, 2-byte length, 1-byte type. *)

val max_message_size : int
(** 4096 (RFC 4271). *)

val encode : Message.t -> bytes list
(** The wire messages for a semantic message (UPDATEs split per shared
    attribute set; withdrawals ride in the first).
    @raise Invalid_argument if a message exceeds the 4096-byte limit. *)

val encode_concat : Message.t -> bytes
(** [encode] flattened into one byte stream. *)

val decode : ?pos:int -> bytes -> (Message.t * int, error) result
(** Decode one message from [pos]; returns it and the bytes consumed. *)

val decode_all : bytes -> (Message.t list, error) result
(** Decode a whole stream of back-to-back messages. *)
