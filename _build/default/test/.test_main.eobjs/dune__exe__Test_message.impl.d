test/test_message.ml: Alcotest Astring_like Bgp Fmt List Net Option
