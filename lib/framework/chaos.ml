(* Seeded chaos campaigns: randomized fault schedules executed against a
   fresh network, with an invariant oracle at every quiescent point.

   A campaign is fully determined by (seed, runs, topology, fallback
   flag): schedule generation, fault timing, the emulation itself and the
   final state digests are all driven by deterministic RNG streams, so a
   campaign report — and its MD5 digest — is bit-identical across
   invocations.  That makes a failing schedule a *reproducer*: re-run the
   same seed and the same violation appears, then greedy minimization
   shrinks the schedule to the faults that actually matter. *)

module Pm = Net.Ipv4.Prefix_map

(* --- Fault model -------------------------------------------------------- *)

type fault =
  | Crash of Net.Asn.t (* crash the AS's router/switch, restart at heal *)
  | Link_down of Net.Asn.t * Net.Asn.t (* fail the link, recover at heal *)
  | Link_flap of Net.Asn.t * Net.Asn.t * int (* n 1 s fail/recover cycles *)
  | Loss_burst of Net.Asn.t * Net.Asn.t
      (* 100% loss, link still reports up: only liveness timers can see it *)
  | Ctrl_partition of Net.Asn.t (* member's control channel down, data links up *)
  | Head_crash (* the cluster head: controller + speaker together *)

type event = { at : Engine.Time.t; heal_at : Engine.Time.t; fault : fault }

type schedule = { index : int; events : event list }

let pp_fault ppf = function
  | Crash a -> Fmt.pf ppf "crash %a" Net.Asn.pp a
  | Link_down (a, b) -> Fmt.pf ppf "link-down %a %a" Net.Asn.pp a Net.Asn.pp b
  | Link_flap (a, b, n) -> Fmt.pf ppf "flap %a %a x%d" Net.Asn.pp a Net.Asn.pp b n
  | Loss_burst (a, b) -> Fmt.pf ppf "loss-burst %a %a" Net.Asn.pp a Net.Asn.pp b
  | Ctrl_partition a -> Fmt.pf ppf "ctrl-partition %a" Net.Asn.pp a
  | Head_crash -> Fmt.string ppf "head-crash"

let pp_event ppf e =
  Fmt.pf ppf "%a@%.2f..%.2f" pp_fault e.fault
    (Engine.Time.to_sec_f e.at)
    (Engine.Time.to_sec_f e.heal_at)

(* Independent deterministic stream per (campaign seed, purpose). *)
let mix seed k = (seed * 1_000_003) + (k * 7919) + 1

(* --- Schedule generation ------------------------------------------------ *)

(* The default battlefield: the paper's 8-AS clique with a 3-member SDN
   sub-cluster — every failure domain (legacy BGP, cluster control plane,
   hybrid boundary) is present. *)
let default_spec () =
  let asn = Topology.Artificial.asn in
  Topology.Spec.with_sdn (Topology.Artificial.clique 8) [ asn 2; asn 3; asn 4 ]

(* Faults start inside [8 s, 14 s] (after initial convergence) and every
   schedule heals completely: crashes restart, links recover, loss
   clears.  Loss bursts outlast the 6 s hold time so KEEPALIVE liveness
   — not link watchers — must detect them. *)
let generate ~spec ~rng index =
  let as_links =
    List.map
      (fun (l : Topology.Spec.link_spec) -> (l.Topology.Spec.a, l.Topology.Spec.b))
      (Topology.Spec.links spec)
  in
  let sdn = Topology.Spec.sdn_asns spec in
  let nodes = Topology.Spec.asns spec in
  let n_faults = 1 + Engine.Rng.int rng 3 in
  let used_nodes = ref Net.Asn.Set.empty in
  let used_links = ref [] in
  let used_head = ref false in
  let touch asn = used_nodes := Net.Asn.Set.add asn !used_nodes in
  let fresh_node candidates =
    match
      List.filter (fun a -> not (Net.Asn.Set.mem a !used_nodes)) candidates
    with
    | [] -> None
    | free -> Some (Engine.Rng.pick rng free)
  in
  let fresh_link () =
    match
      List.filter
        (fun (a, b) ->
          (not (List.mem (a, b) !used_links))
          && (not (Net.Asn.Set.mem a !used_nodes))
          && not (Net.Asn.Set.mem b !used_nodes))
        as_links
    with
    | [] -> None
    | free -> Some (Engine.Rng.pick rng free)
  in
  let at () = Engine.Time.of_sec_f (8.0 +. Engine.Rng.float rng 6.0) in
  let heal_after at lo hi =
    Engine.Time.add at (Engine.Time.of_sec_f (lo +. Engine.Rng.float rng (hi -. lo)))
  in
  let rec draw remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      let kind = Engine.Rng.int rng 6 in
      let event =
        match kind with
        | 0 -> (
          match fresh_node nodes with
          | Some a ->
            touch a;
            let t = at () in
            Some { at = t; heal_at = heal_after t 4.0 8.0; fault = Crash a }
          | None -> None)
        | 1 -> (
          match fresh_link () with
          | Some (a, b) ->
            used_links := (a, b) :: !used_links;
            let t = at () in
            Some { at = t; heal_at = heal_after t 4.0 8.0; fault = Link_down (a, b) }
          | None -> None)
        | 2 -> (
          match fresh_link () with
          | Some (a, b) ->
            used_links := (a, b) :: !used_links;
            let cycles = 2 + Engine.Rng.int rng 3 in
            let t = at () in
            Some
              {
                at = t;
                heal_at = Engine.Time.add t (Engine.Time.sec cycles);
                fault = Link_flap (a, b, cycles);
              }
          | None -> None)
        | 3 -> (
          match fresh_link () with
          | Some (a, b) ->
            used_links := (a, b) :: !used_links;
            let t = at () in
            Some { at = t; heal_at = heal_after t 8.0 12.0; fault = Loss_burst (a, b) }
          | None -> None)
        | 4 -> (
          match fresh_node sdn with
          | Some m ->
            touch m;
            let t = at () in
            Some { at = t; heal_at = heal_after t 6.0 10.0; fault = Ctrl_partition m }
          | None -> None)
        | _ ->
          if !used_head || sdn = [] then None
          else begin
            used_head := true;
            let t = at () in
            Some { at = t; heal_at = heal_after t 5.0 9.0; fault = Head_crash }
          end
      in
      match event with
      | Some e -> draw (remaining - 1) (e :: acc)
      | None -> draw (remaining - 1) acc (* kind unavailable: smaller schedule *)
    end
  in
  let events =
    draw n_faults [] |> List.stable_sort (fun a b -> Engine.Time.compare a.at b.at)
  in
  { index; events }

(* --- Fault execution ---------------------------------------------------- *)

let apply_fault net (e : event) =
  let sim = Network.sim net in
  let label = Fmt.str "%a" pp_fault e.fault in
  (* Each injection/heal event carries its own category and a marker span
     labelled with the fault, so a flight-recorder dump shows which fault
     every causal subtree hangs off. *)
  let sched ~category time fn =
    ignore
      (Engine.Sim.schedule_at ~category sim time (fun () ->
           Engine.Sim.annotate sim ~category ~label ();
           fn ()))
  in
  let fault time fn = sched ~category:"chaos.fault" time fn in
  let heal time fn = sched ~category:"chaos.heal" time fn in
  match e.fault with
  | Crash a ->
    fault e.at (fun () -> Network.crash_node net a);
    heal e.heal_at (fun () -> Network.restart_node net a)
  | Link_down (a, b) ->
    fault e.at (fun () -> Network.fail_link net a b);
    heal e.heal_at (fun () -> Network.recover_link net a b)
  | Link_flap (a, b, cycles) ->
    for i = 0 to cycles - 1 do
      let base = Engine.Time.add e.at (Engine.Time.sec i) in
      fault base (fun () -> Network.fail_link net a b);
      heal
        (Engine.Time.add base (Engine.Time.ms 500))
        (fun () -> Network.recover_link net a b)
    done
  | Loss_burst (a, b) -> (
    match
      Net.Netsim.link_between (Network.fabric net) (Net.Asn.to_int a) (Net.Asn.to_int b)
    with
    | None -> invalid_arg "Chaos: loss burst on a non-existent link"
    | Some link ->
      let original = Net.Link.loss link in
      fault e.at (fun () -> Net.Link.set_loss link 1.0);
      heal e.heal_at (fun () -> Net.Link.set_loss link original))
  | Ctrl_partition m ->
    fault e.at (fun () -> Network.fail_ctrl_link net m);
    heal e.heal_at (fun () -> Network.recover_ctrl_link net m)
  | Head_crash ->
    fault e.at (fun () -> Network.crash_controller net);
    heal e.heal_at (fun () -> Network.restart_controller net)

(* --- State digest ------------------------------------------------------- *)

(* A deterministic rendering of the converged control and data planes:
   session FSM states, Loc-RIBs, flow tables, controller decisions and
   speaker sessions.  Deliberately excludes wall-clock fields and traffic
   counters so [checkpoint |> restore] must reproduce it exactly. *)
let render_state net =
  let buf = Buffer.create 4096 in
  let add fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  List.iter
    (fun asn ->
      match Network.router net asn with
      | None -> ()
      | Some r ->
        add "router %a up=%b\n" Net.Asn.pp asn (Engine.Node.is_up (Bgp.Router.node r));
        List.iter
          (fun peer ->
            add "  session %a %s\n" Net.Asn.pp peer
              (Bgp.Session.to_string (Bgp.Router.session_state r peer)))
          (List.sort Net.Asn.compare (Bgp.Router.peer_asns r));
        List.iter
          (fun (p, route) -> add "  loc %a %a\n" Net.Ipv4.pp_prefix p Bgp.Route.pp route)
          (Bgp.Router.loc_entries r))
    (Network.asns net);
  List.iter
    (fun asn ->
      match Network.switch net asn with
      | None -> ()
      | Some sw ->
        add "switch %a up=%b fallback=%b\n" Net.Asn.pp asn
          (Engine.Node.is_up (Sdn.Switch.node sw))
          (Sdn.Switch.fallback_active sw);
        List.iter
          (fun (r : Sdn.Flow.rule) ->
            add "  flow %a prio=%d %a\n" Net.Ipv4.pp_prefix r.Sdn.Flow.match_prefix
              r.Sdn.Flow.priority Sdn.Flow.pp_action r.Sdn.Flow.action)
          (Sdn.Flow_table.entries_sorted (Sdn.Switch.table sw)))
    (Network.asns net);
  (match Network.controller net with
  | None -> ()
  | Some ctrl ->
    add "controller up=%b\n" (Engine.Node.is_up (Cluster_ctl.Controller.node ctrl));
    List.iter
      (fun prefix ->
        List.iter
          (fun (member, d) ->
            add "  decision %a %a %a\n" Net.Ipv4.pp_prefix prefix Net.Asn.pp member
              Cluster_ctl.As_graph.pp_decision d)
          (Net.Asn.Map.bindings (Cluster_ctl.Controller.decisions_for ctrl prefix)))
      (Cluster_ctl.Controller.known_prefixes ctrl));
  (match Network.speaker net with
  | None -> ()
  | Some sp ->
    List.iter
      (fun (member, neighbor) ->
        add "speaker %a/%a established=%b\n" Net.Asn.pp member Net.Asn.pp neighbor
          (Cluster_ctl.Speaker.session_established sp ~member ~neighbor))
      (Cluster_ctl.Speaker.sessions sp));
  Buffer.contents buf

let state_digest net = Digest.to_hex (Digest.string (render_state net))

(* --- Invariant oracle --------------------------------------------------- *)

type violation = { invariant : string; detail : string }

let pp_violation ppf v = Fmt.pf ppf "[%s] %s" v.invariant v.detail

(* I1: packets never cycle.  Walk the programmed forwarding state (FIBs
   and flow tables) from every AS toward every origin address; revisiting
   a node is a loop.  Blackholes (No_route) are legal — a prefix may
   genuinely be unreachable mid-recovery — loops never are. *)
let check_no_loops net acc =
  let plan = Network.plan net in
  let asns = Network.asns net in
  List.fold_left
    (fun acc dst_as ->
      let addr = plan.Addressing.host_addr dst_as in
      List.fold_left
        (fun acc src ->
          let rec walk asn visited acc =
            if List.exists (Net.Asn.equal asn) visited then
              {
                invariant = "no-forwarding-loop";
                detail =
                  Fmt.str "%a -> %a loops at %a (path %a)" Net.Asn.pp src Net.Asn.pp dst_as
                    Net.Asn.pp asn
                    Fmt.(list ~sep:(any ">") Net.Asn.pp)
                    (List.rev visited);
              }
              :: acc
            else
              match Network.forwarding_at net asn addr with
              | Network.Local | Network.No_route -> acc
              | Network.Next node -> (
                match Network.asn_of_node net node with
                | None -> acc (* toward collector/ctrl: not a data path *)
                | Some next -> walk next (asn :: visited) acc)
          in
          walk src [] acc)
        acc asns)
    acc asns

(* I2: no flow rule points at a dead element.  Every Output port of every
   live switch must name a fabric node that is up and reachable over an
   up link — a rule surviving its target's death is exactly the stale
   state the failover machinery must clean up. *)
let check_flow_targets net acc =
  List.fold_left
    (fun acc asn ->
      match Network.switch net asn with
      | None -> acc
      | Some sw ->
        if not (Engine.Node.is_up (Sdn.Switch.node sw)) then acc
        else
          List.fold_left
            (fun acc (r : Sdn.Flow.rule) ->
              match r.Sdn.Flow.action with
              | Sdn.Flow.To_controller | Sdn.Flow.Drop -> acc
              | Sdn.Flow.Output port ->
                if port = Net.Asn.to_int asn then acc (* local-delivery convention *)
                else begin
                  let bad detail = { invariant = "no-stale-flow-rule"; detail } :: acc in
                  match Network.asn_of_node net port with
                  | None ->
                    bad
                      (Fmt.str "%a: rule %a -> non-AS node %d" Net.Asn.pp asn
                         Net.Ipv4.pp_prefix r.Sdn.Flow.match_prefix port)
                  | Some target ->
                    if not (Network.link_up net asn target) then
                      bad
                        (Fmt.str "%a: rule %a -> %a over a down link" Net.Asn.pp asn
                           Net.Ipv4.pp_prefix r.Sdn.Flow.match_prefix Net.Asn.pp target)
                    else if
                      not
                        (match Network.runtime_node net target with
                        | Some n -> Engine.Node.is_up n
                        | None -> false)
                    then
                      bad
                        (Fmt.str "%a: rule %a -> crashed node %a" Net.Asn.pp asn
                           Net.Ipv4.pp_prefix r.Sdn.Flow.match_prefix Net.Asn.pp target)
                    else acc
                end)
            acc
            (Sdn.Flow_table.rules (Sdn.Switch.table sw)))
    acc (Network.asns net)

(* I3: RIB contents agree with session state.  A router must hold no
   candidate route learned from a peer whose session is not Established,
   and the controller's external RIB must only cite speaker sessions that
   are established. *)
let check_session_rib net acc =
  let plan = Network.plan net in
  let prefixes = List.map (fun a -> plan.Addressing.origin_prefix a) (Network.asns net) in
  let acc =
    List.fold_left
      (fun acc asn ->
        match Network.router net asn with
        | None -> acc
        | Some r ->
          if not (Engine.Node.is_up (Bgp.Router.node r)) then acc
          else
            List.fold_left
              (fun acc prefix ->
                List.fold_left
                  (fun acc route ->
                    match Bgp.Route.from_peer route with
                    | None -> acc
                    | Some peer ->
                      if Bgp.Router.session_state r peer = Bgp.Session.Established then acc
                      else
                        {
                          invariant = "session-rib-consistency";
                          detail =
                            Fmt.str "%a holds %a from %a but that session is %s" Net.Asn.pp
                              asn Net.Ipv4.pp_prefix prefix Net.Asn.pp peer
                              (Bgp.Session.to_string (Bgp.Router.session_state r peer));
                        }
                        :: acc)
                  acc
                  (Bgp.Router.candidates r prefix))
              acc prefixes)
      acc (Network.asns net)
  in
  match (Network.controller net, Network.speaker net) with
  | Some ctrl, Some sp when Engine.Node.is_up (Cluster_ctl.Controller.node ctrl) ->
    List.fold_left
      (fun acc prefix ->
        List.fold_left
          (fun acc (route : Cluster_ctl.As_graph.exit_route) ->
            let member = route.Cluster_ctl.As_graph.member in
            let neighbor = route.Cluster_ctl.As_graph.neighbor in
            if Cluster_ctl.Speaker.session_established sp ~member ~neighbor then acc
            else
              {
                invariant = "session-rib-consistency";
                detail =
                  Fmt.str "controller RIB cites down session %a/%a for %a" Net.Asn.pp
                    member Net.Asn.pp neighbor Net.Ipv4.pp_prefix prefix;
              }
              :: acc)
          acc
          (Cluster_ctl.Controller.rib_routes ctrl prefix))
      acc
      (Cluster_ctl.Controller.known_prefixes ctrl)
  | _ -> acc

(* I4: checkpointing is faithful.  A checkpoint taken at a quiescent
   point, restored into a fresh network, must reproduce the digest of the
   original byte for byte. *)
let check_checkpoint_idempotent net acc =
  let before = state_digest net in
  let restored = Network.restore (Network.checkpoint net) in
  let after = state_digest restored in
  if String.equal before after then acc
  else
    {
      invariant = "checkpoint-restore-idempotent";
      detail = Fmt.str "digest %s became %s after checkpoint+restore" before after;
    }
    :: acc

(* I5: the static forwarding verifier holds.  The compiled data-plane
   snapshot must (a) report no forwarding cycles and (b) classify every
   (src, dst) pair exactly as the event-driven reference walker does —
   the fast path summarizing the network must forward like it. *)
let check_fwd_verify net acc =
  let acc =
    List.fold_left
      (fun acc issue ->
        { invariant = "fwd-verify-loop"; detail = Fmt.str "%a" Fwd_verify.pp_issue issue }
        :: acc)
      acc
      (Fwd_verify.loops (Fwd_verify.verify net))
  in
  List.fold_left
    (fun acc d ->
      {
        invariant = "fwd-verify-agreement";
        detail = Fmt.str "%a" Fwd_verify.pp_disagreement d;
      }
      :: acc)
    acc (Fwd_verify.differential net)

let check_invariants net =
  [] |> check_no_loops net |> check_flow_targets net |> check_session_rib net
  |> check_fwd_verify net
  |> check_checkpoint_idempotent net
  |> List.rev

(* --- One run ------------------------------------------------------------ *)

type run_result = {
  schedule : schedule;
  quiesced : bool;
  violations : violation list;
  digest : string;
  flight : string list;
      (* causal flight-recorder dump, non-empty only when invariants fired *)
}

let config_for ~fallback =
  if fallback then Config.failure_test
  else { Config.failure_test with Config.switch_liveness = None }

(* Execute one schedule: build, converge, inject, let every fault heal,
   wait for control-plane quiet, then interrogate the invariants. *)
let execute ?(fallback = true) ?(spec = default_spec ()) ~seed (schedule : schedule) =
  let net =
    Network.create ~config:(config_for ~fallback) ~seed:(mix seed schedule.index) spec
  in
  let conv = Convergence.attach net in
  Network.start net;
  let plan = Network.plan net in
  List.iter
    (fun a -> Network.originate net a (plan.Addressing.origin_prefix a))
    (Network.asns net);
  List.iter (apply_fault net) schedule.events;
  let last_heal =
    List.fold_left
      (fun acc e -> Engine.Time.max acc e.heal_at)
      (Engine.Time.sec 10) schedule.events
  in
  Network.run_until net (Engine.Time.add last_heal (Engine.Time.sec 10));
  let quiesced =
    match
      Convergence.wait_quiet ~quiet:(Engine.Time.sec 5) ~max_wait:(Engine.Time.sec 180)
        conv
    with
    | `Quiet _ -> true
    | `Timeout _ -> false
  in
  let violations =
    (if quiesced then []
     else
       [ { invariant = "quiescence"; detail = "control plane still changing after 180 s" } ])
    @ check_invariants net
  in
  (* A violation auto-dumps the causal flight recorder: the ring holds
     the newest spans, i.e. the causal history leading into the bad
     state.  Deterministic (simulated time only), so including it in
     rendered reports keeps campaign digests seed-stable. *)
  let flight =
    if violations = [] then []
    else Engine.Causal.flight_lines (Engine.Sim.causal (Network.sim net))
  in
  { schedule; quiesced; violations; digest = state_digest net; flight }

let run_one ?fallback ?(spec = default_spec ()) ~seed index =
  let rng = Engine.Rng.create (mix seed ((2 * index) + 1)) in
  let schedule = generate ~spec ~rng index in
  execute ?fallback ~spec ~seed schedule

(* --- Greedy schedule minimization --------------------------------------- *)

(* Drop one fault at a time, keeping the removal whenever the shrunken
   schedule still violates an invariant; the result is a locally minimal
   reproducer (every remaining fault is necessary). *)
let minimize ?fallback ?spec ~seed (schedule : schedule) =
  let fails events =
    (execute ?fallback ?spec ~seed { schedule with events }).violations <> []
  in
  if not (fails schedule.events) then schedule
  else begin
    let keep = ref schedule.events in
    List.iter
      (fun e ->
        let without = List.filter (fun e' -> e' != e) !keep in
        if fails without then keep := without)
      schedule.events;
    { schedule with events = !keep }
  end

(* --- Campaign ----------------------------------------------------------- *)

type report = {
  seed : int;
  runs : int;
  fallback : bool;
  results : run_result list;
  campaign_digest : string;
}

let render_result r =
  Fmt.str "run %d: faults=[%a] %s violations=%d digest=%s" r.schedule.index
    Fmt.(list ~sep:(any "; ") pp_event)
    r.schedule.events
    (if r.quiesced then "quiet" else "TIMEOUT")
    (List.length r.violations) r.digest
  ^ (match r.violations with
    | [] -> ""
    | vs -> "\n" ^ String.concat "\n" (List.map (Fmt.str "  %a" pp_violation) vs))
  ^
  match r.flight with
  | [] -> ""
  | lines ->
    let n = List.length lines in
    let max_lines = 40 in
    let shown = List.filteri (fun i _ -> i >= n - max_lines) lines in
    Fmt.str "\n  flight recorder (%d span%s, last %d shown):\n" n
      (if n = 1 then "" else "s")
      (List.length shown)
    ^ String.concat "\n" (List.map (fun l -> "    " ^ l) shown)

let render_report r =
  let header =
    Fmt.str "chaos campaign seed=%d runs=%d fallback=%b" r.seed r.runs r.fallback
  in
  let body = List.map render_result r.results in
  let failed =
    List.filter (fun (res : run_result) -> res.violations <> []) r.results
  in
  let summary =
    Fmt.str "violating runs: %d/%d\ncampaign digest: %s" (List.length failed) r.runs
      r.campaign_digest
  in
  String.concat "\n" ((header :: body) @ [ summary ]) ^ "\n"

let run_campaign ?(fallback = true) ?(spec = default_spec ()) ~seed ~runs () =
  let results =
    List.init runs (fun i -> run_one ~fallback ~spec ~seed i)
  in
  let digest =
    Digest.to_hex (Digest.string (String.concat "\n" (List.map render_result results)))
  in
  { seed; runs; fallback; results; campaign_digest = digest }
