test/test_fib.ml: Alcotest Fib Fmt Int32 Ipv4 List Net Option QCheck QCheck_alcotest
