lib/engine/timer.ml: Sim
