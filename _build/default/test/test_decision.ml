(* Bgp.Decision: each tie-break step and total-order properties. *)

let nh = Net.Ipv4.addr_of_octets 10 0 0 1

let prefix = Option.get (Net.Ipv4.prefix_of_string "100.64.0.0/24")

let route ?(local_pref = 100) ?(path = [ 65001 ]) ?(med = 0) ?(origin = Bgp.Attrs.Igp)
    ?(source = `Ebgp 65001) () =
  let attrs =
    Bgp.Attrs.make ~as_path:(List.map Net.Asn.of_int path) ~local_pref ~med ~origin ~next_hop:nh
      ()
  in
  let source =
    match source with `Local -> Bgp.Route.Local | `Ebgp n -> Bgp.Route.Ebgp (Net.Asn.of_int n)
  in
  Bgp.Route.make ~prefix ~attrs ~source ~learned_at:Engine.Time.zero

let prefer a b msg =
  Alcotest.(check bool) msg true (Bgp.Decision.better a b);
  Alcotest.(check bool) (msg ^ " (antisym)") false (Bgp.Decision.better b a)

let test_local_pref_wins () =
  prefer
    (route ~local_pref:130 ~path:[ 65001; 65002; 65003 ] ())
    (route ~local_pref:100 ~path:[ 65004 ] ~source:(`Ebgp 65004) ())
    "higher local pref beats shorter path"

let test_local_beats_learned () =
  prefer (route ~source:`Local ~path:[] ()) (route ~path:[ 65001 ] ())
    "locally originated beats learned"

let test_shorter_path () =
  prefer (route ~path:[ 65002 ] ~source:(`Ebgp 65002) ())
    (route ~path:[ 65001; 65003 ] ~source:(`Ebgp 65001) ())
    "shorter AS path wins"

let test_origin () =
  prefer
    (route ~origin:Bgp.Attrs.Igp ())
    (route ~origin:Bgp.Attrs.Incomplete ~source:(`Ebgp 65000) ())
    "IGP origin beats incomplete"

let test_med () =
  prefer (route ~med:5 ()) (route ~med:10 ~source:(`Ebgp 65000) ()) "lower MED wins"

let test_neighbor_tiebreak () =
  prefer
    (route ~source:(`Ebgp 65001) ())
    (route ~source:(`Ebgp 65002) ~path:[ 65002 ] ())
    "lower neighbor ASN breaks ties"

let test_select () =
  let worst = route ~local_pref:90 () in
  let best = route ~local_pref:130 ~source:(`Ebgp 65005) ~path:[ 65005 ] () in
  let mid = route ~local_pref:110 ~source:(`Ebgp 65002) ~path:[ 65002 ] () in
  (match Bgp.Decision.select [ worst; best; mid ] with
  | Some r -> Alcotest.(check int) "selects best" 130 (Bgp.Route.attrs r).Bgp.Attrs.local_pref
  | None -> Alcotest.fail "must select");
  Alcotest.(check bool) "empty" true (Bgp.Decision.select [] = None)

let test_explain () =
  let a = route ~local_pref:130 () and b = route ~local_pref:90 ~source:(`Ebgp 65002) () in
  let step, sign = Bgp.Decision.explain a b in
  Alcotest.(check string) "deciding step" "local_pref" step;
  Alcotest.(check bool) "sign prefers a" true (sign < 0)

let arb_route =
  let gen =
    QCheck.Gen.(
      let* lp = int_range 90 130 in
      let* len = int_range 0 4 in
      let* path = list_repeat len (int_range 65001 65008) in
      let* med = int_range 0 3 in
      let* src = int_range 65001 65008 in
      let* origin = oneofl [ Bgp.Attrs.Igp; Bgp.Attrs.Egp; Bgp.Attrs.Incomplete ] in
      return (route ~local_pref:lp ~path ~med ~origin ~source:(`Ebgp src) ()))
  in
  QCheck.make ~print:(fun r -> Fmt.str "%a" Bgp.Route.pp r) gen

let prop_total_order_antisymmetric =
  QCheck.Test.make ~name:"compare is antisymmetric" ~count:300
    QCheck.(pair arb_route arb_route)
    (fun (a, b) -> Bgp.Decision.compare a b = -Bgp.Decision.compare b a)

let prop_total_order_transitive =
  QCheck.Test.make ~name:"compare is transitive" ~count:300
    QCheck.(triple arb_route arb_route arb_route)
    (fun (a, b, c) ->
      let ab = Bgp.Decision.compare a b and bc = Bgp.Decision.compare b c in
      if ab <= 0 && bc <= 0 then Bgp.Decision.compare a c <= 0 else true)

let prop_select_is_minimum =
  QCheck.Test.make ~name:"select returns the compare-minimum" ~count:300
    QCheck.(list_of_size Gen.(1 -- 10) arb_route)
    (fun routes ->
      match Bgp.Decision.select routes with
      | None -> false
      | Some best -> List.for_all (fun r -> Bgp.Decision.compare best r <= 0) routes)

let suite =
  [
    Alcotest.test_case "local pref dominates" `Quick test_local_pref_wins;
    Alcotest.test_case "local origination" `Quick test_local_beats_learned;
    Alcotest.test_case "shorter path" `Quick test_shorter_path;
    Alcotest.test_case "origin rank" `Quick test_origin;
    Alcotest.test_case "MED" `Quick test_med;
    Alcotest.test_case "neighbor tiebreak" `Quick test_neighbor_tiebreak;
    Alcotest.test_case "select" `Quick test_select;
    Alcotest.test_case "explain" `Quick test_explain;
    QCheck_alcotest.to_alcotest prop_total_order_antisymmetric;
    QCheck_alcotest.to_alcotest prop_total_order_transitive;
    QCheck_alcotest.to_alcotest prop_select_is_minimum;
  ]
