(* Hybridsdn — the public facade of the hybrid BGP-SDN emulation
   framework.

   The layered libraries remain directly usable ([Engine], [Net],
   [Topology], [Bgp], [Sdn], [Cluster_ctl], [Framework]); this module
   re-exports them under one roof and offers the handful of entry points
   a quickstart needs.

   {[
     let spec = Core.Topo.clique 16 |> Core.sdn_tail ~k:8 in
     let exp = Core.run spec in
     let origin = Core.Topo.asn 0 in
     let m = Core.measure_withdrawal exp origin in
     Fmt.pr "converged in %.1fs@." (Core.seconds m)
   ]} *)

let version = "1.0.0"

(* Re-exports: foundational layers. *)

module Time = Engine.Time
module Rng = Engine.Rng
module Stats = Engine.Stats
module Sim = Engine.Sim
module Trace = Engine.Trace

module Asn = Net.Asn
module Ipv4 = Net.Ipv4
module Graph = Net.Graph
module Packet = Net.Packet

module Spec = Topology.Spec
module Caida = Topology.Caida
module Iplane = Topology.Iplane
module Random_models = Topology.Random_models

module Bgp_attrs = Bgp.Attrs
module Bgp_damping = Bgp.Damping
module Bgp_route = Bgp.Route
module Bgp_policy = Bgp.Policy
module Bgp_decision = Bgp.Decision
module Bgp_config = Bgp.Config
module Bgp_router = Bgp.Router
module Bgp_collector = Bgp.Collector

module Flow = Sdn.Flow
module Flow_table = Sdn.Flow_table
module Openflow = Sdn.Openflow
module Switch = Sdn.Switch

module As_graph = Cluster_ctl.As_graph
module Controller = Cluster_ctl.Controller
module Speaker = Cluster_ctl.Speaker

module Config = Framework.Config
module Network = Framework.Network
module Experiment = Framework.Experiment
module Experiments = Framework.Experiments
module Convergence = Framework.Convergence
module Monitor = Framework.Monitor
module Scenario = Framework.Scenario
module Visualize = Framework.Visualize
module Logparse = Framework.Logparse
module Addressing = Framework.Addressing
module Looking_glass = Framework.Looking_glass

(* Topology shorthands. *)
module Topo = struct
  include Topology.Artificial
end

(* Mark the last [k] ASes of a spec as SDN-controlled. *)
let sdn_tail ~k spec =
  let asns = Spec.asns spec in
  let n = List.length asns in
  if k > n then invalid_arg "Core.sdn_tail: k exceeds topology size";
  let tail = List.filteri (fun i _ -> i >= n - k) asns in
  Spec.with_sdn spec tail

(* Build and bootstrap an experiment. *)
let run ?config ?seed spec = Experiment.create ?config ?seed spec

(* Announce the AS's default prefix, settle, withdraw it, and measure the
   withdrawal convergence — the paper's headline experiment on any
   topology. *)
let measure_withdrawal exp origin =
  let prefix = Experiment.default_prefix exp origin in
  ignore (Experiment.measure exp ~prefix (fun () -> ignore (Experiment.announce exp origin)));
  Experiment.measure exp ~prefix (fun () -> ignore (Experiment.withdraw exp origin))

let measure_announcement exp origin =
  let prefix = Experiment.default_prefix exp origin in
  Experiment.measure exp ~prefix (fun () -> ignore (Experiment.announce exp origin))

let seconds = Experiment.convergence_seconds
