(* Per-peer outbound update scheduling under the
   MinRouteAdvertisementInterval.

   Semantics (matching Quagga's behaviour): the first advertisement after
   an idle period goes out immediately and arms the timer; while the timer
   runs, changes coalesce in a pending set (later changes for the same
   prefix replace earlier ones — only the latest state is ever sent); on
   expiry the pending set is flushed as one UPDATE and the timer re-arms
   only if something was flushed.  Explicit withdrawals bypass the timer
   unless [mrai_on_withdrawals] is set. *)

module Pm = Net.Ipv4.Prefix_map

type pending = Announce of Attrs.t | Withdraw

type t = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  config : Config.t;
  send : Message.update -> unit;
  timer : Engine.Timer.t;
  mutable pending : pending Pm.t;
  mutable flushes : int;
  deferrals_c : Engine.Metrics.Counter.t;
  flushes_c : Engine.Metrics.Counter.t;
}

let rec flush t =
  if not (Pm.is_empty t.pending) then begin
    let announced, withdrawn =
      Pm.fold
        (fun prefix p (ann, wd) ->
          match p with
          | Announce attrs -> ((prefix, attrs) :: ann, wd)
          | Withdraw -> (ann, prefix :: wd))
        t.pending ([], [])
    in
    t.pending <- Pm.empty;
    t.flushes <- t.flushes + 1;
    Engine.Metrics.Counter.inc t.flushes_c;
    t.send { Message.announced = List.rev announced; withdrawn = List.rev withdrawn };
    arm t
  end

and arm t = Engine.Timer.start t.timer (Config.jittered_mrai t.config t.rng)

let create sim ~rng ~config ~name ~send =
  (* The timer callback needs the record and the record needs the timer;
     tie the knot through a reference. *)
  let self = ref None in
  let callback () = match !self with Some t -> flush t | None -> () in
  (* All per-peer instances share the same unlabeled series — idempotent
     registration returns the same handle each time. *)
  let m = Engine.Sim.metrics sim in
  let t =
    {
      sim;
      rng;
      config;
      send;
      timer = Engine.Timer.create ~category:"bgp.mrai" sim ~name ~callback;
      pending = Pm.empty;
      flushes = 0;
      deferrals_c =
        Engine.Metrics.counter m ~help:"route changes deferred by a running MRAI timer"
          "bgp_mrai_deferrals_total";
      flushes_c =
        Engine.Metrics.counter m ~help:"batched UPDATE flushes" "bgp_mrai_flushes_total";
    }
  in
  self := Some t;
  t

let pending_count t = Pm.cardinal t.pending

let flushes t = t.flushes

let is_throttled t = Engine.Timer.is_armed t.timer

let enqueue_announce t prefix attrs =
  t.pending <- Pm.add prefix (Announce attrs) t.pending;
  if is_throttled t then Engine.Metrics.Counter.inc t.deferrals_c else flush t

let enqueue_withdraw t prefix =
  if t.config.Config.mrai_on_withdrawals then begin
    t.pending <- Pm.add prefix Withdraw t.pending;
    if is_throttled t then Engine.Metrics.Counter.inc t.deferrals_c else flush t
  end
  else begin
    (* Withdrawals are exempt from MRAI: cancel any pending announcement
       for the prefix and send the withdrawal immediately, leaving the
       timer state untouched. *)
    t.pending <- Pm.remove prefix t.pending;
    t.send { Message.announced = []; withdrawn = [ prefix ] }
  end

(* Session reset: drop pending state and stop the timer. *)
let reset t =
  t.pending <- Pm.empty;
  Engine.Timer.cancel t.timer

(* Checkpointing.  The jitter stream position travels with the pending
   set so a restored run draws the same MRAI intervals the original
   would have. *)
type state = {
  s_pending : (Net.Ipv4.prefix * pending) list;
  s_due : Engine.Time.t option;
  s_rng : Engine.Rng.t;
}

let state t =
  {
    s_pending = Pm.bindings t.pending;
    s_due = Engine.Timer.due t.timer;
    s_rng = Engine.Rng.copy t.rng;
  }

let restore t st =
  Engine.Rng.assign ~from:st.s_rng t.rng;
  t.pending <-
    List.fold_left (fun acc (prefix, p) -> Pm.add prefix p acc) Pm.empty st.s_pending;
  match st.s_due with
  | Some at -> Engine.Timer.start_at t.timer at
  | None -> Engine.Timer.cancel t.timer
