lib/bgp/message.ml: Attrs Fmt List Net
