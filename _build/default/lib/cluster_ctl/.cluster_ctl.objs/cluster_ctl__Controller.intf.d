lib/cluster_ctl/controller.mli: As_graph Bgp Engine Net Sdn Speaker
