lib/bgp/wire.mli: Format Message
