(* Differential suite: the scale-path structures (prefix-trie RIBs,
   hash-consed attrs) against plain map-based reference implementations —
   the pre-scale design kept here as an executable specification.  Every
   random sequence is seeded from [Engine.Rng] so a failure reproduces
   exactly. *)

module Pm = Net.Ipv4.Prefix_map
module Pt = Net.Ipv4.Prefix_trie
module Am = Net.Asn.Map

let nh = Net.Ipv4.addr_of_octets 10 0 0 1

let asn = Net.Asn.of_int

(* A small pool of overlapping prefixes (different lengths, shared
   spines) so removes hit, LPM has real longest-vs-shorter choices, and
   trie paths share internal nodes. *)
let random_prefix rng =
  let len = 8 + Engine.Rng.int rng 21 (* /8 .. /28 *) in
  let a = 10 + Engine.Rng.int rng 4 in
  let b = Engine.Rng.int rng 8 in
  let c = Engine.Rng.int rng 8 in
  let d = Engine.Rng.int rng 256 in
  Net.Ipv4.prefix (Net.Ipv4.addr_of_octets a b c d) len

let random_addr rng =
  Net.Ipv4.addr_of_octets
    (10 + Engine.Rng.int rng 4)
    (Engine.Rng.int rng 8) (Engine.Rng.int rng 8) (Engine.Rng.int rng 256)

let route ~peer ~prefix ~tag =
  Bgp.Route.make ~prefix
    ~attrs:(Bgp.Attrs.make ~as_path:[ asn peer; asn (65100 + tag) ] ~next_hop:nh ())
    ~source:(Bgp.Route.Ebgp (asn peer)) ~learned_at:Engine.Time.zero

let check_entries name expected got =
  Alcotest.(check int) (name ^ ": cardinal") (List.length expected) (List.length got);
  List.iter2
    (fun (pe, _) (pg, _) ->
      Alcotest.(check bool)
        (Fmt.str "%s: key %a vs %a" name Net.Ipv4.pp_prefix pe Net.Ipv4.pp_prefix pg)
        true
        (Net.Ipv4.equal_prefix pe pg))
    expected got

(* --- Prefix_trie vs Prefix_map: insert / remove / exact / LPM -------- *)

let reference_lpm addr m =
  Pm.fold
    (fun p v best ->
      if Net.Ipv4.mem addr p then
        match best with
        | Some (bp, _) when Net.Ipv4.prefix_len bp >= Net.Ipv4.prefix_len p -> best
        | _ -> Some (p, v)
      else best)
    m None

let test_trie_vs_map () =
  let rng = Engine.Rng.create 42 in
  let trie = Pt.create () in
  let reference = ref Pm.empty in
  for step = 1 to 3000 do
    let p = random_prefix rng in
    (match Engine.Rng.int rng 5 with
    | 0 | 1 ->
      let v = step in
      Pt.set p v trie;
      reference := Pm.add p v !reference
    | 2 ->
      Pt.remove p trie;
      reference := Pm.remove p !reference
    | 3 ->
      let addr = random_addr rng in
      let got = Pt.lookup addr trie in
      let want = reference_lpm addr !reference in
      Alcotest.(check bool)
        (Fmt.str "step %d: LPM for %a" step Net.Ipv4.pp_addr addr)
        true
        (match (got, want) with
        | None, None -> true
        | Some (gp, gv), Some (wp, wv) -> Net.Ipv4.equal_prefix gp wp && gv = wv
        | _ -> false)
    | _ ->
      let got = Pt.find p trie in
      Alcotest.(check (option int))
        (Fmt.str "step %d: find %a" step Net.Ipv4.pp_prefix p)
        (Pm.find_opt p !reference) got);
    Alcotest.(check int) (Fmt.str "step %d: size" step) (Pm.cardinal !reference)
      (Pt.size trie);
    if step mod 250 = 0 then begin
      let expected = Pm.bindings !reference in
      check_entries (Fmt.str "step %d: entries" step) expected (Pt.entries trie);
      List.iter2
        (fun (_, ve) (_, vg) -> Alcotest.(check int) "entry value" ve vg)
        expected (Pt.entries trie)
    end
  done;
  Pt.clear trie;
  Alcotest.(check int) "clear empties" 0 (Pt.size trie);
  Alcotest.(check bool) "clear is_empty" true (Pt.is_empty trie)

(* --- Adj-RIB-In: trie-backed vs per-peer Prefix_map ------------------ *)

type ref_adj_in = { mutable tables : Bgp.Route.t Pm.t Am.t }

let ref_adj_in_set t ~peer r =
  let m = Option.value (Am.find_opt peer t.tables) ~default:Pm.empty in
  t.tables <- Am.add peer (Pm.add (Bgp.Route.prefix r) r m) t.tables

let ref_adj_in_remove t ~peer prefix =
  match Am.find_opt peer t.tables with
  | None -> ()
  | Some m ->
    let m = Pm.remove prefix m in
    t.tables <- (if Pm.is_empty m then Am.remove peer t.tables else Am.add peer m t.tables)

let ref_adj_in_drop_peer t ~peer =
  let dropped =
    match Am.find_opt peer t.tables with
    | None -> []
    | Some m -> List.map fst (Pm.bindings m)
  in
  t.tables <- Am.remove peer t.tables;
  dropped

let ref_adj_in_candidates t prefix =
  Am.fold
    (fun _ m acc -> match Pm.find_opt prefix m with Some r -> r :: acc | None -> acc)
    t.tables []
  |> List.rev

let ref_adj_in_size t = Am.fold (fun _ m acc -> acc + Pm.cardinal m) t.tables 0

let same_route a b =
  Net.Ipv4.equal_prefix (Bgp.Route.prefix a) (Bgp.Route.prefix b)
  && Bgp.Route.attrs a == Bgp.Route.attrs b
  && Bgp.Route.source a = Bgp.Route.source b

let test_adj_in_differential () =
  let rng = Engine.Rng.create 1001 in
  let rib = Bgp.Rib.Adj_in.create () in
  let reference = { tables = Am.empty } in
  let peers = [ 65001; 65002; 65003; 65004; 65005 ] in
  for step = 1 to 2000 do
    let peer = asn (Engine.Rng.pick rng peers) in
    let prefix = random_prefix rng in
    (match Engine.Rng.int rng 8 with
    | 0 | 1 | 2 | 3 ->
      let r = route ~peer:(Net.Asn.to_int peer) ~prefix ~tag:(Engine.Rng.int rng 4) in
      Bgp.Rib.Adj_in.set rib ~peer r;
      ref_adj_in_set reference ~peer r
    | 4 | 5 ->
      Bgp.Rib.Adj_in.remove rib ~peer prefix;
      ref_adj_in_remove reference ~peer prefix
    | 6 ->
      let got = Bgp.Rib.Adj_in.drop_peer rib ~peer in
      let want = ref_adj_in_drop_peer reference ~peer in
      Alcotest.(check int)
        (Fmt.str "step %d: drop_peer count" step)
        (List.length want) (List.length got);
      List.iter2
        (fun w g ->
          Alcotest.(check bool) "dropped prefix" true (Net.Ipv4.equal_prefix w g))
        (List.sort Net.Ipv4.compare_prefix want)
        (List.sort Net.Ipv4.compare_prefix got)
    | _ ->
      let got = Bgp.Rib.Adj_in.candidates rib prefix in
      let want = ref_adj_in_candidates reference prefix in
      Alcotest.(check int)
        (Fmt.str "step %d: candidate count" step)
        (List.length want) (List.length got);
      List.iter2
        (fun w g ->
          Alcotest.(check bool) "candidate route" true (same_route w g))
        want got);
    Alcotest.(check int)
      (Fmt.str "step %d: size" step)
      (ref_adj_in_size reference)
      (Bgp.Rib.Adj_in.size rib);
    (* exact-match spot check with a prefix likely present *)
    let probe = random_prefix rng in
    let got = Bgp.Rib.Adj_in.find rib ~peer probe in
    let want =
      Option.bind (Am.find_opt peer reference.tables) (Pm.find_opt probe)
    in
    Alcotest.(check bool)
      (Fmt.str "step %d: find agrees" step)
      true
      (match (got, want) with
      | None, None -> true
      | Some g, Some w -> same_route g w
      | _ -> false)
  done;
  (* final full-state comparison, peer by peer *)
  List.iter
    (fun p ->
      let peer = asn p in
      let want =
        match Am.find_opt peer reference.tables with
        | None -> []
        | Some m -> List.map fst (Pm.bindings m)
      in
      let got = Bgp.Rib.Adj_in.prefixes_from rib ~peer in
      Alcotest.(check int) (Fmt.str "final: AS%d prefixes" p) (List.length want)
        (List.length got);
      List.iter2
        (fun w g -> Alcotest.(check bool) "prefix" true (Net.Ipv4.equal_prefix w g))
        want
        (List.sort Net.Ipv4.compare_prefix got))
    peers

(* --- Loc-RIB: trie-backed vs Prefix_map ------------------------------ *)

let test_loc_differential () =
  let rng = Engine.Rng.create 2002 in
  let rib = Bgp.Rib.Loc.create () in
  let reference = ref Pm.empty in
  for step = 1 to 2000 do
    let prefix = random_prefix rng in
    (match Engine.Rng.int rng 3 with
    | 0 | 1 ->
      let r = route ~peer:65001 ~prefix ~tag:(Engine.Rng.int rng 4) in
      Bgp.Rib.Loc.set rib r;
      reference := Pm.add prefix r !reference
    | _ ->
      Bgp.Rib.Loc.remove rib prefix;
      reference := Pm.remove prefix !reference);
    Alcotest.(check int)
      (Fmt.str "step %d: size" step)
      (Pm.cardinal !reference) (Bgp.Rib.Loc.size rib);
    let probe = random_prefix rng in
    Alcotest.(check bool)
      (Fmt.str "step %d: find agrees" step)
      true
      (match (Bgp.Rib.Loc.find rib probe, Pm.find_opt probe !reference) with
      | None, None -> true
      | Some g, Some w -> same_route g w
      | _ -> false)
  done;
  check_entries "final entries" (Pm.bindings !reference) (Bgp.Rib.Loc.entries rib)

(* --- Adj-RIB-Out: trie-backed vs per-peer Prefix_map ----------------- *)

let test_adj_out_differential () =
  let rng = Engine.Rng.create 3003 in
  let rib = Bgp.Rib.Adj_out.create () in
  let peers = [ 65001; 65002; 65003 ] in
  let attrs tag = Bgp.Attrs.make ~as_path:[ asn (65200 + tag) ] ~next_hop:nh () in
  let ref_tables = ref Am.empty in
  for step = 1 to 2000 do
    let peer = asn (Engine.Rng.pick rng peers) in
    let prefix = random_prefix rng in
    (match Engine.Rng.int rng 6 with
    | 0 | 1 | 2 ->
      let a = attrs (Engine.Rng.int rng 4) in
      Bgp.Rib.Adj_out.set rib ~peer prefix a;
      let m = Option.value (Am.find_opt peer !ref_tables) ~default:Pm.empty in
      ref_tables := Am.add peer (Pm.add prefix a m) !ref_tables
    | 3 | 4 ->
      Bgp.Rib.Adj_out.remove rib ~peer prefix;
      (match Am.find_opt peer !ref_tables with
      | None -> ()
      | Some m ->
        let m = Pm.remove prefix m in
        ref_tables :=
          (if Pm.is_empty m then Am.remove peer !ref_tables
           else Am.add peer m !ref_tables))
    | _ ->
      let got = Bgp.Rib.Adj_out.drop_peer rib ~peer in
      let want =
        match Am.find_opt peer !ref_tables with
        | None -> []
        | Some m -> List.map fst (Pm.bindings m)
      in
      ref_tables := Am.remove peer !ref_tables;
      Alcotest.(check int)
        (Fmt.str "step %d: drop_peer count" step)
        (List.length want) (List.length got));
    let ref_size = Am.fold (fun _ m acc -> acc + Pm.cardinal m) !ref_tables 0 in
    Alcotest.(check int) (Fmt.str "step %d: size" step) ref_size
      (Bgp.Rib.Adj_out.size rib);
    let probe = random_prefix rng in
    let got = Bgp.Rib.Adj_out.find rib ~peer probe in
    let want = Option.bind (Am.find_opt peer !ref_tables) (Pm.find_opt probe) in
    Alcotest.(check bool)
      (Fmt.str "step %d: find agrees" step)
      true
      (match (got, want) with
      | None, None -> true
      | Some g, Some w -> g == w
      | _ -> false)
  done;
  (* the satellite fix: no peer with an empty advertised set may linger *)
  let entries = Bgp.Rib.Adj_out.entries rib in
  List.iter
    (fun (peer, advertised) ->
      Alcotest.(check bool)
        (Fmt.str "no empty per-peer map for AS%d" (Net.Asn.to_int peer))
        true
        (advertised <> []))
    entries;
  Alcotest.(check int) "entries peer count" (Am.cardinal !ref_tables)
    (List.length entries);
  List.iter
    (fun (peer, advertised) ->
      let want = Pm.bindings (Am.find_opt peer !ref_tables |> Option.get) in
      check_entries
        (Fmt.str "final advertised AS%d" (Net.Asn.to_int peer))
        want advertised)
    entries

(* --- Small-topology end-to-end: trie-backed Loc-RIBs vs a map mirror
   rebuilt from the best-route change stream of a real run -------------- *)

let test_small_topology_mirror () =
  let a = Topology.Artificial.asn in
  let spec = Topology.Spec.with_sdn (Topology.Artificial.clique 5) [ a 1 ] in
  let exp = Framework.Experiment.create ~config:Framework.Config.fast_test ~seed:7 spec in
  let routers = Framework.Network.routers (Framework.Experiment.network exp) in
  let mirrors = Hashtbl.create 8 in
  Am.iter
    (fun asn router ->
      let mirror = ref Pm.empty in
      Hashtbl.replace mirrors asn mirror;
      Bgp.Router.subscribe_best_change router (fun prefix r ->
          match r with
          | Some r -> mirror := Pm.add prefix r !mirror
          | None -> mirror := Pm.remove prefix !mirror))
    routers;
  ignore (Framework.Experiment.announce exp (a 0));
  ignore (Framework.Experiment.settle exp);
  ignore (Framework.Experiment.announce exp (a 2));
  ignore (Framework.Experiment.announce exp (a 3));
  ignore (Framework.Experiment.settle exp);
  ignore (Framework.Experiment.withdraw exp (a 0));
  ignore (Framework.Experiment.settle exp);
  Am.iter
    (fun asn router ->
      let name = Fmt.str "AS%d Loc-RIB" (Net.Asn.to_int asn) in
      let want = Pm.bindings !(Hashtbl.find mirrors asn) in
      let got = Bgp.Router.loc_entries router in
      check_entries name want got;
      List.iter2
        (fun (_, w) (_, g) -> Alcotest.(check bool) (name ^ " route") true (same_route w g))
        want got)
    routers

let suite =
  [
    Alcotest.test_case "trie vs map (insert/remove/LPM)" `Quick test_trie_vs_map;
    Alcotest.test_case "adj-in vs map reference" `Quick test_adj_in_differential;
    Alcotest.test_case "loc vs map reference" `Quick test_loc_differential;
    Alcotest.test_case "adj-out vs map reference" `Quick test_adj_out_differential;
    Alcotest.test_case "small topology loc mirror" `Quick test_small_topology_mirror;
  ]
