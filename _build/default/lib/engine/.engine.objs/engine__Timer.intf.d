lib/engine/timer.mli: Sim Time
