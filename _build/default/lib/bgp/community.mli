(** BGP community attribute values. *)

type t = int * int

val make : int -> int -> t
(** @raise Invalid_argument outside 16-bit halves. *)

val asn : t -> int

val tag : t -> int

val compare : t -> t -> int

val equal : t -> t -> bool

val no_export : t

val no_advertise : t

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val of_string : string -> t option

module Set : Set.S with type elt = t
