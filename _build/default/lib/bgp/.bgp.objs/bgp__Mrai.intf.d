lib/bgp/mrai.mli: Attrs Config Engine Message Net
