lib/net/netsim.mli: Engine Graph Link
