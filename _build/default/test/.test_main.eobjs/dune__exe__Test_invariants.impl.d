test/test_invariants.ml: Alcotest Bgp Engine Fmt Framework List Net Option Topology
