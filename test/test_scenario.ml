(* Framework.Scenario: declarative timed experiment scripts. *)

let asn = Topology.Artificial.asn

let cfg = Framework.Config.fast_test

let test_actions_execute_in_order () =
  let exp = Framework.Experiment.create ~config:cfg ~seed:31 (Topology.Artificial.clique 3) in
  let t0 = Engine.Time.to_sec_f (Framework.Experiment.now exp) in
  let scenario =
    Framework.Scenario.make ~title:"demo"
      [
        Framework.Scenario.at (t0 +. 1.0) (Framework.Scenario.Announce (asn 0, None));
        Framework.Scenario.at (t0 +. 20.0) (Framework.Scenario.Withdraw (asn 0, None));
        Framework.Scenario.at (t0 +. 10.0) (Framework.Scenario.Note "midpoint");
      ]
  in
  let log = Framework.Scenario.run exp scenario in
  let kinds =
    List.map
      (fun (_, action) ->
        match action with
        | Framework.Scenario.Announce _ -> "announce"
        | Framework.Scenario.Withdraw _ -> "withdraw"
        | Framework.Scenario.Note _ -> "note"
        | _ -> "other")
      log
  in
  Alcotest.(check (list string)) "sorted by time" [ "announce"; "note"; "withdraw" ] kinds;
  (* after announce+withdraw the route must be gone everywhere *)
  let net = Framework.Experiment.network exp in
  let prefix = Framework.Experiment.default_prefix exp (asn 0) in
  List.iter
    (fun a ->
      match Framework.Network.router net a with
      | Some r -> Alcotest.(check bool) "no residue" true (Bgp.Router.best r prefix = None)
      | None -> ())
    (Framework.Network.asns net)

let test_link_actions () =
  let exp = Framework.Experiment.create ~config:cfg ~seed:32 (Topology.Artificial.ring 4) in
  let t0 = Engine.Time.to_sec_f (Framework.Experiment.now exp) in
  let scenario =
    Framework.Scenario.make ~title:"flap"
      [
        Framework.Scenario.at (t0 +. 0.5) (Framework.Scenario.Fail_link (asn 0, asn 1));
        Framework.Scenario.at (t0 +. 5.0) (Framework.Scenario.Recover_link (asn 0, asn 1));
      ]
  in
  ignore (Framework.Scenario.run exp scenario);
  let net = Framework.Experiment.network exp in
  let r0 = Option.get (Framework.Network.router net (asn 0)) in
  Alcotest.(check bool) "session recovered after flap" true
    (Bgp.Router.peer_established r0 (asn 1))

let test_ping_action () =
  let exp = Framework.Experiment.create ~config:cfg ~seed:33 (Topology.Artificial.clique 3) in
  let t0 = Engine.Time.to_sec_f (Framework.Experiment.now exp) in
  let scenario =
    Framework.Scenario.make ~title:"ping"
      [
        Framework.Scenario.at (t0 +. 0.1) (Framework.Scenario.Announce (asn 0, None));
        Framework.Scenario.at (t0 +. 0.1) (Framework.Scenario.Announce (asn 1, None));
        Framework.Scenario.at (t0 +. 5.0) (Framework.Scenario.Ping (asn 1, asn 0));
      ]
  in
  let net = Framework.Experiment.network exp in
  let delivered = ref 0 in
  Framework.Network.subscribe_deliver net (fun _ _ -> incr delivered);
  ignore (Framework.Scenario.run exp scenario);
  Alcotest.(check bool) "echo and reply delivered" true (!delivered >= 2)

let test_crash_restart_actions () =
  let exp = Framework.Experiment.create ~config:cfg ~seed:34 (Topology.Artificial.clique 4) in
  let t0 = Engine.Time.to_sec_f (Framework.Experiment.now exp) in
  let scenario =
    Framework.Scenario.make ~title:"chaos"
      [
        Framework.Scenario.at (t0 +. 0.1) (Framework.Scenario.Announce (asn 0, None));
        Framework.Scenario.at (t0 +. 10.0) (Framework.Scenario.Crash_node (asn 1));
        Framework.Scenario.at (t0 +. 12.0) (Framework.Scenario.Restart_node (asn 1));
      ]
  in
  ignore (Framework.Scenario.run exp scenario);
  let net = Framework.Experiment.network exp in
  let r1 = Option.get (Framework.Network.router net (asn 1)) in
  let prefix = Framework.Experiment.default_prefix exp (asn 0) in
  Alcotest.(check bool) "session back after restart" true
    (Bgp.Router.peer_established r1 (asn 0));
  Alcotest.(check bool) "route relearned after restart" true
    (Bgp.Router.best r1 prefix <> None)

let test_text_round_trip () =
  let text =
    "# scenario: chaos\n@1.000 announce AS65000\n@10.000 crash AS65001\n\
     @12.000 restart AS65001\n@15.000 fail-link AS65000 AS65001\n"
  in
  match Framework.Scenario.parse_string text with
  | Error e -> Alcotest.fail e
  | Ok sc -> (
    let kinds =
      List.map
        (fun (s : Framework.Scenario.step) ->
          match s.action with
          | Framework.Scenario.Crash_node _ -> "crash"
          | Framework.Scenario.Restart_node _ -> "restart"
          | Framework.Scenario.Announce _ -> "announce"
          | Framework.Scenario.Fail_link _ -> "fail-link"
          | _ -> "other")
        (Framework.Scenario.steps sc)
    in
    Alcotest.(check (list string)) "parsed actions"
      [ "announce"; "crash"; "restart"; "fail-link" ]
      kinds;
    (* render -> parse -> render must be a fixed point *)
    let rendered = Framework.Scenario.render sc in
    match Framework.Scenario.parse_string rendered with
    | Error e -> Alcotest.fail e
    | Ok sc2 ->
      Alcotest.(check string) "round trip" rendered (Framework.Scenario.render sc2))

let test_failure_domain_round_trip () =
  (* the failure-domain verbs: partition (AS and ctrl forms), flap, heal *)
  let text =
    "@1.000 partition AS65001 AS65002\n@2.000 partition AS65003 ctrl\n\
     @3.000 flap AS65001 AS65004 3\n@9.000 heal\n"
  in
  match Framework.Scenario.parse_string text with
  | Error e -> Alcotest.fail e
  | Ok sc -> (
    (match Framework.Scenario.steps sc with
    | [ s1; s2; s3; s4 ] ->
      (match s1.Framework.Scenario.action with
      | Framework.Scenario.Partition (_, Some _) -> ()
      | _ -> Alcotest.fail "expected AS partition");
      (match s2.Framework.Scenario.action with
      | Framework.Scenario.Partition (a, None) ->
        Alcotest.(check int) "ctrl partition target" 65003 (Net.Asn.to_int a)
      | _ -> Alcotest.fail "expected ctrl partition");
      (match s3.Framework.Scenario.action with
      | Framework.Scenario.Flap (_, _, n) -> Alcotest.(check int) "flap count" 3 n
      | _ -> Alcotest.fail "expected flap");
      (match s4.Framework.Scenario.action with
      | Framework.Scenario.Heal -> ()
      | _ -> Alcotest.fail "expected heal")
    | _ -> Alcotest.fail "expected four steps");
    let rendered = Framework.Scenario.render sc in
    match Framework.Scenario.parse_string rendered with
    | Error e -> Alcotest.fail e
    | Ok sc2 ->
      Alcotest.(check string) "round trip" rendered (Framework.Scenario.render sc2))

let test_bad_failure_domain_lines () =
  List.iter
    (fun line ->
      match Framework.Scenario.parse_string line with
      | Ok _ -> Alcotest.fail (line ^ " must not parse")
      | Error _ -> ())
    [
      "@1.0 partition AS65001";
      "@1.0 flap AS65001 AS65002 0";
      "@1.0 flap AS65001 AS65002 many";
      "@1.0 partition nonsense ctrl";
    ]

let test_partition_flap_heal_execute () =
  let exp = Framework.Experiment.create ~config:cfg ~seed:35 (Topology.Artificial.ring 4) in
  let t0 = Engine.Time.to_sec_f (Framework.Experiment.now exp) in
  let scenario =
    Framework.Scenario.make ~title:"failure-domain"
      [
        Framework.Scenario.at (t0 +. 0.1) (Framework.Scenario.Announce (asn 0, None));
        Framework.Scenario.at (t0 +. 5.0) (Framework.Scenario.Partition (asn 0, Some (asn 1)));
        Framework.Scenario.at (t0 +. 6.0) (Framework.Scenario.Flap (asn 2, asn 3, 2));
        Framework.Scenario.at (t0 +. 20.0) Framework.Scenario.Heal;
      ]
  in
  ignore (Framework.Scenario.run exp scenario);
  let net = Framework.Experiment.network exp in
  (* heal brought the partitioned link back; the flap ended recovered *)
  Alcotest.(check bool) "partitioned link healed" true (Framework.Network.link_up net (asn 0) (asn 1));
  Alcotest.(check bool) "flapped link ends up" true (Framework.Network.link_up net (asn 2) (asn 3));
  let r0 = Option.get (Framework.Network.router net (asn 0)) in
  Alcotest.(check bool) "session re-established after heal" true
    (Bgp.Router.peer_established r0 (asn 1))

let suite =
  [
    Alcotest.test_case "ordered execution" `Quick test_actions_execute_in_order;
    Alcotest.test_case "failure-domain verbs round trip" `Quick test_failure_domain_round_trip;
    Alcotest.test_case "bad failure-domain lines rejected" `Quick test_bad_failure_domain_lines;
    Alcotest.test_case "partition/flap/heal execute" `Quick test_partition_flap_heal_execute;
    Alcotest.test_case "link actions" `Quick test_link_actions;
    Alcotest.test_case "ping action" `Quick test_ping_action;
    Alcotest.test_case "crash/restart actions" `Quick test_crash_restart_actions;
    Alcotest.test_case "text round trip" `Quick test_text_round_trip;
  ]
