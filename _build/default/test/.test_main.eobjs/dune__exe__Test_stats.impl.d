test/test_stats.ml: Alcotest Engine Float Gen List QCheck QCheck_alcotest Stats
