examples/flap_damping.ml: Bgp Engine Fmt Framework List Topology
