lib/sdn/flow.mli: Engine Format Net
