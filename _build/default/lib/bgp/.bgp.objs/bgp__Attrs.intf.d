lib/bgp/attrs.mli: Community Format Net
