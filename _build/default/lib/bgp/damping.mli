(** Route-flap damping (RFC 2439): per-(peer, prefix) penalties with
    exponential decay, suppression above a threshold, reuse below. *)

type config = {
  half_life : Engine.Time.span;
  suppress_threshold : float;
  reuse_threshold : float;
  max_suppress : Engine.Time.span;
  withdrawal_penalty : float;
  readvertisement_penalty : float;
  attribute_change_penalty : float;
}

val default_config : config
(** Cisco-style: half-life 15 min, suppress 2000, reuse 750, cap 60 min;
    penalties 1000/1000/500. *)

type event = Withdrawal | Readvertisement | Attribute_change

type t

val create : config -> t

val config : t -> config

val record :
  t ->
  peer:Net.Asn.t ->
  prefix:Net.Ipv4.prefix ->
  now:Engine.Time.t ->
  event ->
  [ `Ok | `Suppressed_until of Engine.Time.t ]
(** Accumulate a flap penalty.  When the route is (or becomes)
    suppressed, returns the time it becomes reusable — schedule a
    re-decision there. *)

val is_suppressed : t -> peer:Net.Asn.t -> prefix:Net.Ipv4.prefix -> now:Engine.Time.t -> bool
(** Current suppression state; transitions back to reusable as a side
    effect once decayed below the reuse threshold or past the cap. *)

val current_penalty : t -> peer:Net.Asn.t -> prefix:Net.Ipv4.prefix -> now:Engine.Time.t -> float

val span_to_reuse : config -> float -> Engine.Time.span
(** Decay time from a penalty down to the reuse threshold. *)

val suppressions : t -> int
(** Routes suppressed so far. *)

val reuses : t -> int
(** Suppressions lifted so far. *)

val entry_count : t -> int

val pp_config : Format.formatter -> config -> unit
