test/test_sim.ml: Alcotest Engine List Option Sim Time Timer Trace
