test/test_flow_compiler.ml: Alcotest As_graph Bgp Cluster_ctl Flow_compiler List Net Option Sdn
