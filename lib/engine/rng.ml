(* Deterministic splittable PRNG (SplitMix64).

   Every subsystem receives its own split stream so that adding a random
   draw in one module never perturbs the draws seen by another — a property
   plain [Random.State] sharing does not give and which keeps experiment
   runs comparable across code changes. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next_int64 t }

(* Checkpoint support: duplicate or overwrite the stream position without
   consuming a draw. *)
let copy t = { state = t.state }

let assign ~from t = t.state <- from.state

let bits53 t = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)

let float t bound = bits53 t /. 9007199254740992.0 *. bound

let uniform t lo hi = lo +. float t (hi -. lo)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem r bound64 in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int bound64) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample t k l =
  if k >= List.length l then l
  else
    let shuffled = shuffle t l in
    List.filteri (fun i _ -> i < k) shuffled

let jitter_span t span ~lo ~hi = Time.span_scale span (uniform t lo hi)
