(* BGP community attribute values: (asn, tag) pairs plus the well-known
   communities.  The framework's policy templates use communities to tag
   route provenance (e.g. which relationship a route was learned over). *)

type t = int * int

let make asn tag =
  if asn < 0 || asn > 0xFFFF || tag < 0 || tag > 0xFFFF then invalid_arg "Community.make";
  (asn, tag)

let asn (a, _) = a

let tag (_, t) = t

let compare = compare

let equal a b = compare a b = 0

(* Well-known communities (RFC 1997). *)
let no_export = (0xFFFF, 0xFF01)

let no_advertise = (0xFFFF, 0xFF02)

let pp ppf (a, t) = Fmt.pf ppf "%d:%d" a t

let to_string c = Fmt.str "%a" pp c

let of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ a; t ] -> (
    match (int_of_string_opt a, int_of_string_opt t) with
    | Some a, Some t when a >= 0 && a <= 0xFFFF && t >= 0 && t <= 0xFFFF -> Some (a, t)
    | _ -> None)
  | _ -> None

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
