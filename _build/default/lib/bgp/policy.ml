(* Relationship-based BGP policy templates.

   The framework auto-configures Gao–Rexford (valley-free) policies from a
   topology's business relationships: customers are preferred over peers
   over providers on import, and routes learned from peers/providers are
   re-exported only to customers.  [Unrestricted] disables policy — the
   clique experiments use it so routes propagate everywhere and the classic
   path-exploration dynamics appear. *)

type relationship = Customer | Provider | Peer | Sibling | Unrestricted

let relationship_to_string = function
  | Customer -> "customer"
  | Provider -> "provider"
  | Peer -> "peer"
  | Sibling -> "sibling"
  | Unrestricted -> "unrestricted"

(* Standard local-preference tiers: prefer routes via customers (they pay),
   then siblings/peers, then providers. *)
let default_local_pref = function
  | Customer -> 130
  | Sibling -> 120
  | Peer -> 110
  | Unrestricted -> 100
  | Provider -> 90

type t = {
  relationship : relationship;
  local_pref : int;
  import_prefix_filter : Net.Ipv4.prefix -> bool;
  export_prefix_filter : Net.Ipv4.prefix -> bool;
  import_community : Community.t option;
  export_prepend : int; (* extra own-ASN prepends toward this neighbor (TE) *)
}

let make ?local_pref ?(import_prefix_filter = fun _ -> true)
    ?(export_prefix_filter = fun _ -> true) ?import_community ?(export_prepend = 0)
    relationship =
  if export_prepend < 0 then invalid_arg "Policy.make: negative export_prepend";
  let local_pref =
    match local_pref with Some lp -> lp | None -> default_local_pref relationship
  in
  {
    relationship;
    local_pref;
    import_prefix_filter;
    export_prefix_filter;
    import_community;
    export_prepend;
  }

let relationship t = t.relationship

let local_pref t = t.local_pref

let export_prepend t = t.export_prepend

(* Import processing for a route received from a peer governed by [t]:
   reject AS-path loops and filtered prefixes, stamp local-pref (a purely
   local attribute) and the provenance community. *)
let import t ~me ~prefix (attrs : Attrs.t) =
  if Attrs.path_contains attrs me then None
  else if not (t.import_prefix_filter prefix) then None
  else if Attrs.has_community attrs Community.no_advertise then None
  else begin
    let attrs = Attrs.with_local_pref attrs t.local_pref in
    let attrs =
      match t.import_community with
      | Some c -> Attrs.add_community attrs c
      | None -> attrs
    in
    Some attrs
  end

(* The source "relationship" of a locally originated route. *)
type route_provenance = From of relationship | Originated

(* Valley-free export rule: routes go to customers/siblings always; to
   peers and providers only when we originated them or learned them from a
   customer/sibling.  Unrestricted neighbors exchange everything. *)
let export_allowed ~to_rel ~provenance =
  match to_rel with
  | Customer | Sibling | Unrestricted -> true
  | Peer | Provider -> (
    match provenance with
    | Originated -> true
    | From (Customer | Sibling | Unrestricted) -> true
    | From (Peer | Provider) -> false)

let export t ~provenance ~prefix (attrs : Attrs.t) =
  if not (t.export_prefix_filter prefix) then None
  else if Attrs.has_community attrs Community.no_export then None
  else if Attrs.has_community attrs Community.no_advertise then None
  else if not (export_allowed ~to_rel:t.relationship ~provenance) then None
  else Some attrs

let pp ppf t =
  Fmt.pf ppf "%s lp=%d" (relationship_to_string t.relationship) t.local_pref
