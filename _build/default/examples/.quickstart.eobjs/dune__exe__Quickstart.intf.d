examples/quickstart.mli:
