test/test_switch.ml: Alcotest Bgp Engine Flow Flow_table List Net Openflow Option Sdn Switch
