lib/topology/artificial.ml: Fmt List Net Spec
