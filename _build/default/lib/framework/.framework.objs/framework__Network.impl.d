lib/framework/network.ml: Addressing Bgp Cluster_ctl Config Engine Fmt Hashtbl List Net Option Payload Sdn String Topology
