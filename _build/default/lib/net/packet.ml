(* Data-plane packets.

   The framework's end-to-end monitoring (the paper pings hosts / streams
   video between them) is modelled as periodic probe packets forwarded
   hop-by-hop through FIBs and flow tables. *)

type kind =
  | Icmp_echo of { seq : int }
  | Icmp_reply of { seq : int }
  | Payload of string

type t = { src : Ipv4.addr; dst : Ipv4.addr; ttl : int; kind : kind }

let default_ttl = 64

let echo ?(ttl = default_ttl) ~src ~dst seq = { src; dst; ttl; kind = Icmp_echo { seq } }

let reply_to p =
  match p.kind with
  | Icmp_echo { seq } ->
    Some { src = p.dst; dst = p.src; ttl = default_ttl; kind = Icmp_reply { seq } }
  | Icmp_reply _ | Payload _ -> None

let data ?(ttl = default_ttl) ~src ~dst payload = { src; dst; ttl; kind = Payload payload }

let decr_ttl p = if p.ttl <= 0 then None else Some { p with ttl = p.ttl - 1 }

let pp_kind ppf = function
  | Icmp_echo { seq } -> Fmt.pf ppf "echo(%d)" seq
  | Icmp_reply { seq } -> Fmt.pf ppf "reply(%d)" seq
  | Payload s -> Fmt.pf ppf "data(%d bytes)" (String.length s)

let pp ppf p =
  Fmt.pf ppf "%a -> %a ttl=%d %a" Ipv4.pp_addr p.src Ipv4.pp_addr p.dst p.ttl pp_kind p.kind
