(* Lockstep-epoch coordinator for sharded single-run execution.

   N shards each own a full Sim instance (plus everything hanging off it
   — RNG, metrics, trace — respecting the one-domain ownership rule) and
   advance in conservative epochs: every shard executes all events
   strictly before the shared horizon

       horizon = (global min next event time) + lookahead,

   buffers the cross-shard messages it produced, and meets the others at
   a barrier where outboxes are exchanged and injected.  Because every
   cross-shard message sent during an epoch travels over a link whose
   delay is at least [lookahead], it arrives at or after the horizon —
   so no injection is ever late, and with canonically keyed events
   ({!Sim.Canonical}) the merged event order is independent of both the
   partitioning and domain scheduling.

   Shards are PINNED to domains ({!Pool.run_each}): hash-consed state
   lives in Domain.DLS, so a shard must never migrate.  The barrier is
   poisoned when any shard raises, so a failure tears the whole run down
   instead of deadlocking the survivors. *)

type 'msg ops = {
  sim : Sim.t;
  real_executed : unit -> int;
  flush : unit -> (int * 'msg) list;
  inject : src:int -> 'msg list -> unit;
  on_quiescent : max_now:Time.t -> bool;
}

type stats = {
  shards : int;
  epochs : int;
  lookahead : Time.span;
  executed : int array;
  injected : int array;
  stall_s : float array;
  settled : bool;
}

exception Poisoned

type barrier = {
  m : Mutex.t;
  cv : Condition.t;
  parties : int;
  mutable waiting : int;
  mutable generation : int;
  mutable poisoned : bool;
  (* lowest-index failure wins, matching Pool's error rule *)
  mutable error : (int * exn * Printexc.raw_backtrace) option;
}

let barrier_make parties =
  {
    m = Mutex.create ();
    cv = Condition.create ();
    parties;
    waiting = 0;
    generation = 0;
    poisoned = false;
    error = None;
  }

let barrier_await b =
  Mutex.lock b.m;
  if b.poisoned then begin
    Mutex.unlock b.m;
    raise Poisoned
  end;
  let gen = b.generation in
  b.waiting <- b.waiting + 1;
  if b.waiting = b.parties then begin
    b.waiting <- 0;
    b.generation <- gen + 1;
    Condition.broadcast b.cv;
    Mutex.unlock b.m
  end
  else begin
    while b.generation = gen && not b.poisoned do
      Condition.wait b.cv b.m
    done;
    let p = b.poisoned in
    Mutex.unlock b.m;
    if p then raise Poisoned
  end

let barrier_poison b ~index e bt =
  Mutex.lock b.m;
  (match b.error with
  | Some (j, _, _) when j < index -> ()
  | Some _ | None -> b.error <- Some (index, e, bt));
  b.poisoned <- true;
  Condition.broadcast b.cv;
  Mutex.unlock b.m

let min_next_time next_times =
  Array.fold_left
    (fun acc nt ->
      match (acc, nt) with
      | None, x | x, None -> x
      | Some a, Some b -> Some (Time.min a b))
    None next_times

let run ~shards ~lookahead ?(clock = fun () -> 0.) ?budget make =
  if shards < 1 then invalid_arg "Shard.run: shards must be >= 1";
  if Time.(lookahead <= Time.span_zero) then
    invalid_arg "Shard.run: lookahead must be positive";
  let b = barrier_make shards in
  (* Shared epoch state: each slot is written only by its own shard, and
     every read happens on the far side of a barrier from the write, so
     the barrier mutex provides the needed happens-before edges. *)
  let next_times = Array.make shards None in
  let nows = Array.make shards Time.zero in
  let reals = Array.make shards 0 in
  let outboxes = Array.make shards [] in
  let executed_stats = Array.make shards 0 in
  let injected_stats = Array.make shards 0 in
  let stall_stats = Array.make shards 0.0 in
  let epochs_cell = ref 0 in
  let settled_cell = ref false in
  let body i =
    let ops, finish = make i in
    let sim = ops.sim in
    let stall = ref 0.0 in
    let injected = ref 0 in
    let epochs = ref 0 in
    let await () =
      let t0 = clock () in
      barrier_await b;
      stall := !stall +. (clock () -. t0)
    in
    let publish () =
      next_times.(i) <- Sim.next_event_time sim;
      nows.(i) <- Sim.now sim;
      reals.(i) <- ops.real_executed ()
    in
    publish ();
    await ();
    (* Invariant at the top of each iteration: all shards have published
       and passed a barrier, so everyone computes the same decision from
       identical shared state. *)
    let rec epoch_loop () =
      let total_real = Array.fold_left ( + ) 0 reals in
      if match budget with Some n -> total_real >= n | None -> false then false
      else
        match min_next_time next_times with
        | None ->
          let max_now = Array.fold_left Time.max Time.zero nows in
          if ops.on_quiescent ~max_now then begin
            (* First barrier: every shard must finish READING the shared
               decision state before anyone re-publishes — without it a
               slow shard could observe a peer's fresh publish at its own
               decision point, take the other branch, and desynchronize
               the barrier pairing.  (Same two-barrier shape as the
               execute branch, so branch choice never skews the count.) *)
            await ();
            publish ();
            await ();
            epoch_loop ()
          end
          else true
        | Some tmin ->
          let horizon = Time.add tmin lookahead in
          ignore (Sim.run_before sim ~horizon);
          outboxes.(i) <- ops.flush ();
          incr epochs;
          await ();
          (* exchange: deterministic source order, 0 .. N-1 *)
          for src = 0 to shards - 1 do
            let mine =
              List.filter_map
                (fun (dst, msg) -> if dst = i then Some msg else None)
                outboxes.(src)
            in
            match mine with
            | [] -> ()
            | msgs ->
              injected := !injected + List.length msgs;
              ops.inject ~src msgs
          done;
          publish ();
          await ();
          epoch_loop ()
    in
    let settled = epoch_loop () in
    executed_stats.(i) <- Sim.executed sim;
    injected_stats.(i) <- !injected;
    stall_stats.(i) <- !stall;
    if i = 0 then begin
      epochs_cell := !epochs;
      settled_cell := settled
    end;
    finish ()
  in
  let results =
    Pool.run_each ~n:shards (fun i ->
        match body i with
        | v -> Some v
        | exception Poisoned -> None
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          barrier_poison b ~index:i e bt;
          None)
  in
  (match b.error with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  let results =
    Array.map
      (function Some v -> v | None -> invalid_arg "Shard.run: shard vanished")
      results
  in
  ( results,
    {
      shards;
      epochs = !epochs_cell;
      lookahead;
      executed = executed_stats;
      injected = injected_stats;
      stall_s = stall_stats;
      settled = !settled_cell;
    } )
