(* Label-aware metrics registry.

   One registry per simulation (owned by Sim), so parallel experiments
   never share counters and identical seeds yield identical snapshots.
   Everything is deterministic: label sets are canonicalized (sorted by
   key) at registration, snapshots are sorted by (name, labels), and no
   wall-clock value ever enters the registry — wall-clock profiling lives
   in Sim's separate profile table precisely so that exports stay
   byte-reproducible across runs of the same seed.

   Registration is idempotent: asking for the same (name, labels) series
   again returns the existing handle, so hot paths keep a handle and cold
   paths may just re-look it up. *)

type labels = (string * string) list

let canon_labels labels =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let rec dedup = function
    | (k, _) :: ((k', _) :: _ as rest) when String.equal k k' -> dedup rest
    | kv :: rest -> kv :: dedup rest
    | [] -> []
  in
  (* last writer wins on duplicate keys, matching Hashtbl.replace intuition *)
  dedup sorted

let render_labels = function
  | [] -> ""
  | labels ->
    Fmt.str "{%s}"
      (String.concat "," (List.map (fun (k, v) -> Fmt.str "%s=%S" k v) labels))

let series_key name labels = name ^ render_labels labels

(* --- Series ------------------------------------------------------------- *)

module Counter = struct
  type t = { mutable v : int }

  let inc t = t.v <- t.v + 1

  let add t by =
    if by < 0 then invalid_arg "Metrics.Counter.add: negative increment";
    t.v <- t.v + by

  let value t = t.v
end

module Gauge = struct
  type t = { mutable v : float }

  let set t v = t.v <- v

  let add t by = t.v <- t.v +. by

  let value t = t.v
end

module Histogram = struct
  type t = {
    bounds : float array; (* strictly increasing upper bounds *)
    counts : int array; (* per-bucket, length = bounds + 1 (overflow) *)
    mutable sum : float;
    mutable count : int;
  }

  let observe t x =
    let n = Array.length t.bounds in
    let rec slot i = if i >= n || x <= t.bounds.(i) then i else slot (i + 1) in
    t.counts.(slot 0) <- t.counts.(slot 0) + 1;
    t.sum <- t.sum +. x;
    t.count <- t.count + 1

  let count t = t.count

  let sum t = t.sum
end

(* Geometric ("log-scale") bucket bounds: start, start*factor, ... *)
let log_buckets ?(start = 0.001) ?(factor = 2.0) ?(count = 16) () =
  if start <= 0.0 || factor <= 1.0 || count < 1 then
    invalid_arg "Metrics.log_buckets: need start > 0, factor > 1, count >= 1";
  Array.init count (fun i -> start *. (factor ** float_of_int i))

let default_buckets = log_buckets ()

type series =
  | S_counter of Counter.t
  | S_gauge of Gauge.t
  | S_histogram of Histogram.t

type entry = { name : string; help : string; labels : labels; series : series }

type t = {
  entries : (string, entry) Hashtbl.t; (* keyed by series_key *)
  mutable collectors : (unit -> unit) list;
}

let create () = { entries = Hashtbl.create 64; collectors = [] }

let on_collect t f = t.collectors <- t.collectors @ [ f ]

let kind_name = function
  | S_counter _ -> "counter"
  | S_gauge _ -> "gauge"
  | S_histogram _ -> "histogram"

let register t ~name ~help ~labels make =
  let labels = canon_labels labels in
  let key = series_key name labels in
  match Hashtbl.find_opt t.entries key with
  | Some entry -> entry
  | None ->
    let entry = { name; help; labels; series = make () } in
    Hashtbl.replace t.entries key entry;
    entry

let counter t ?(help = "") ?(labels = []) name =
  match register t ~name ~help ~labels (fun () -> S_counter { Counter.v = 0 }) with
  | { series = S_counter c; _ } -> c
  | entry ->
    invalid_arg (Fmt.str "Metrics.counter: %s already registered as a %s" name
                   (kind_name entry.series))

let gauge t ?(help = "") ?(labels = []) name =
  match register t ~name ~help ~labels (fun () -> S_gauge { Gauge.v = 0.0 }) with
  | { series = S_gauge g; _ } -> g
  | entry ->
    invalid_arg (Fmt.str "Metrics.gauge: %s already registered as a %s" name
                   (kind_name entry.series))

let histogram t ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
  let make () =
    (match Array.to_list buckets with
    | [] -> invalid_arg "Metrics.histogram: empty buckets"
    | first :: rest ->
      ignore
        (List.fold_left
           (fun prev b ->
             if b <= prev then invalid_arg "Metrics.histogram: buckets must increase";
             b)
           first rest));
    S_histogram
      { Histogram.bounds = Array.copy buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        sum = 0.0;
        count = 0 }
  in
  match register t ~name ~help ~labels make with
  | { series = S_histogram h; _ } -> h
  | entry ->
    invalid_arg (Fmt.str "Metrics.histogram: %s already registered as a %s" name
                   (kind_name entry.series))

(* --- Snapshots ----------------------------------------------------------- *)

type hist_value = {
  buckets : (float * int) list; (* (upper bound, cumulative count); +inf last *)
  sum : float;
  count : int;
}

type value = Counter_v of int | Gauge_v of float | Histogram_v of hist_value

type sample = { name : string; help : string; labels : labels; value : value }

type snapshot = { at : Time.t; samples : sample list }

let freeze entry =
  let value =
    match entry.series with
    | S_counter c -> Counter_v c.Counter.v
    | S_gauge g -> Gauge_v g.Gauge.v
    | S_histogram h ->
      let cumulative = ref 0 in
      let finite =
        Array.to_list
          (Array.mapi
             (fun i bound ->
               cumulative := !cumulative + h.Histogram.counts.(i);
               (bound, !cumulative))
             h.Histogram.bounds)
      in
      Histogram_v
        { buckets = finite @ [ (infinity, h.Histogram.count) ];
          sum = h.Histogram.sum;
          count = h.Histogram.count }
  in
  { name = entry.name; help = entry.help; labels = entry.labels; value }

let snapshot t ~at =
  List.iter (fun f -> f ()) t.collectors;
  let keyed = Hashtbl.fold (fun key entry acc -> (key, entry) :: acc) t.entries [] in
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) keyed in
  { at; samples = List.map (fun (_, e) -> freeze e) sorted }

(* --- Merging (sharded runs) --------------------------------------------- *)

(* Bucket bounds come from identical registration code in every shard, so a
   mismatch means the snapshots are not replicas of the same registry. *)
let merge_hist name a b =
  let buckets =
    try
      List.map2
        (fun (ba, ca) (bb, cb) ->
          if not (ba = bb) then
            invalid_arg (Fmt.str "Metrics.merge: %s histogram bucket mismatch" name);
          (ba, ca + cb))
        a.buckets b.buckets
    with Invalid_argument _ ->
      invalid_arg (Fmt.str "Metrics.merge: %s histogram bucket mismatch" name)
  in
  { buckets; sum = a.sum +. b.sum; count = a.count + b.count }

let merge_value ~resolve ~name ~labels a b =
  match (a, b) with
  | Counter_v x, Counter_v y -> Counter_v (x + y)
  | Gauge_v x, Gauge_v y -> (
    match resolve ~name ~labels with
    | `Sum -> Gauge_v (x +. y)
    | `Max -> Gauge_v (Float.max x y))
  | Histogram_v x, Histogram_v y -> Histogram_v (merge_hist name x y)
  | _ -> invalid_arg (Fmt.str "Metrics.merge: %s has mismatched kinds" name)

let merge ?(resolve = fun ~name:_ ~labels:_ -> `Sum) snapshots =
  match snapshots with
  | [] -> invalid_arg "Metrics.merge: empty snapshot list"
  | first :: _ ->
    let at =
      List.fold_left
        (fun acc s -> if Time.compare s.at acc > 0 then s.at else acc)
        first.at snapshots
    in
    let tbl = Hashtbl.create 256 in
    List.iter
      (fun snap ->
        List.iter
          (fun s ->
            let key = series_key s.name s.labels in
            match Hashtbl.find_opt tbl key with
            | None -> Hashtbl.replace tbl key s
            | Some prev ->
              Hashtbl.replace tbl key
                { prev with
                  value =
                    merge_value ~resolve ~name:s.name ~labels:s.labels prev.value
                      s.value })
          snap.samples)
      snapshots;
    let keyed = Hashtbl.fold (fun key s acc -> (key, s) :: acc) tbl [] in
    let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) keyed in
    { at; samples = List.map snd sorted }

let find_sample snapshot ?(labels = []) name =
  let labels = canon_labels labels in
  List.find_opt (fun s -> String.equal s.name name && s.labels = labels) snapshot.samples

(* Scalar view of a sample: counters and gauges as-is, histograms by count. *)
let sample_value = function
  | Counter_v v -> float_of_int v
  | Gauge_v v -> v
  | Histogram_v h -> float_of_int h.count

let value snapshot ?labels name = Option.map (fun s -> sample_value s.value) (find_sample snapshot ?labels name)

(* --- Rendering ----------------------------------------------------------- *)

(* Deterministic float rendering: integers without a fractional part, the
   rest with enough digits to round-trip. *)
let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Fmt.str "%.0f" x
  else Fmt.str "%.9g" x

let fmt_le bound = if bound = infinity then "+Inf" else fmt_float bound

let labels_with labels extra = canon_labels (labels @ extra)

let prom_line buf name labels v =
  Buffer.add_string buf name;
  Buffer.add_string buf (render_labels labels);
  Buffer.add_char buf ' ';
  Buffer.add_string buf v;
  Buffer.add_char buf '\n'

let to_prometheus snapshot =
  let buf = Buffer.create 1024 in
  let last_family = ref "" in
  List.iter
    (fun s ->
      if not (String.equal s.name !last_family) then begin
        last_family := s.name;
        if s.help <> "" then Buffer.add_string buf (Fmt.str "# HELP %s %s\n" s.name s.help);
        Buffer.add_string
          buf
          (Fmt.str "# TYPE %s %s\n" s.name
             (match s.value with
             | Counter_v _ -> "counter"
             | Gauge_v _ -> "gauge"
             | Histogram_v _ -> "histogram"))
      end;
      match s.value with
      | Counter_v v -> prom_line buf s.name s.labels (string_of_int v)
      | Gauge_v v -> prom_line buf s.name s.labels (fmt_float v)
      | Histogram_v h ->
        List.iter
          (fun (bound, cumulative) ->
            prom_line buf (s.name ^ "_bucket")
              (labels_with s.labels [ ("le", fmt_le bound) ])
              (string_of_int cumulative))
          h.buckets;
        prom_line buf (s.name ^ "_sum") s.labels (fmt_float h.sum);
        prom_line buf (s.name ^ "_count") s.labels (string_of_int h.count))
    snapshot.samples;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_labels labels =
  Fmt.str "{%s}"
    (String.concat ","
       (List.map (fun (k, v) -> Fmt.str "\"%s\":\"%s\"" (json_escape k) (json_escape v)) labels))

(* One JSON object per sample, one line each: a JSONL time-series row. *)
let to_jsonl snapshot =
  let buf = Buffer.create 1024 in
  let t_us = Time.to_us snapshot.at in
  List.iter
    (fun s ->
      let common =
        Fmt.str "{\"t_us\":%d,\"metric\":\"%s\",\"labels\":%s" t_us (json_escape s.name)
          (json_labels s.labels)
      in
      let rest =
        match s.value with
        | Counter_v v -> Fmt.str ",\"type\":\"counter\",\"value\":%d}" v
        | Gauge_v v -> Fmt.str ",\"type\":\"gauge\",\"value\":%s}" (fmt_float v)
        | Histogram_v h ->
          Fmt.str ",\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"buckets\":[%s]}" h.count
            (fmt_float h.sum)
            (String.concat ","
               (List.map
                  (fun (bound, cumulative) ->
                    Fmt.str "{\"le\":\"%s\",\"count\":%d}" (fmt_le bound) cumulative)
                  h.buckets))
      in
      Buffer.add_string buf common;
      Buffer.add_string buf rest;
      Buffer.add_char buf '\n')
    snapshot.samples;
  Buffer.contents buf

let csv_header = "t_us,metric,labels,type,value\n"

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv ?(header = true) snapshot =
  let buf = Buffer.create 1024 in
  if header then Buffer.add_string buf csv_header;
  let t_us = Time.to_us snapshot.at in
  let labels_str labels =
    csv_escape (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels))
  in
  let row metric labels kind v =
    Buffer.add_string buf (Fmt.str "%d,%s,%s,%s,%s\n" t_us metric (labels_str labels) kind v)
  in
  List.iter
    (fun s ->
      match s.value with
      | Counter_v v -> row s.name s.labels "counter" (string_of_int v)
      | Gauge_v v -> row s.name s.labels "gauge" (fmt_float v)
      | Histogram_v h ->
        List.iter
          (fun (bound, cumulative) ->
            row (s.name ^ "_bucket")
              (labels_with s.labels [ ("le", fmt_le bound) ])
              "histogram" (string_of_int cumulative))
          h.buckets;
        row (s.name ^ "_sum") s.labels "histogram" (fmt_float h.sum);
        row (s.name ^ "_count") s.labels "histogram" (string_of_int h.count))
    snapshot.samples;
  Buffer.contents buf

(* --- Prometheus text parsing ---------------------------------------------

   Enough of the exposition format to round-trip our own exports and to
   validate files in the CLI smoke check: comments, bare samples, and
   label sets with escaped string values. *)

type parsed_sample = { p_name : string; p_labels : labels; p_value : float }

exception Parse_error of string

let parse_prometheus text =
  let parse_line lineno line =
    let fail msg = raise (Parse_error (Fmt.str "line %d: %s" lineno msg)) in
    let line = String.trim line in
    if line = "" || line.[0] = '#' then None
    else begin
      let len = String.length line in
      let rec name_end i =
        if i >= len then i
        else
          match line.[i] with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> name_end (i + 1)
          | _ -> i
      in
      let ne = name_end 0 in
      if ne = 0 then fail "expected metric name";
      let p_name = String.sub line 0 ne in
      let labels = ref [] in
      let i = ref ne in
      if !i < len && line.[!i] = '{' then begin
        incr i;
        let rec parse_label () =
          while !i < len && (line.[!i] = ' ' || line.[!i] = ',') do incr i done;
          if !i >= len then fail "unterminated label set"
          else if line.[!i] = '}' then incr i
          else begin
            let ks = !i in
            while !i < len && line.[!i] <> '=' do incr i done;
            if !i >= len then fail "expected '=' in label";
            let key = String.trim (String.sub line ks (!i - ks)) in
            incr i;
            if !i >= len || line.[!i] <> '"' then fail "expected quoted label value";
            incr i;
            let buf = Buffer.create 8 in
            let rec scan () =
              if !i >= len then fail "unterminated label value"
              else
                match line.[!i] with
                | '"' -> incr i
                | '\\' ->
                  if !i + 1 >= len then fail "dangling escape";
                  (match line.[!i + 1] with
                  | 'n' -> Buffer.add_char buf '\n'
                  | c -> Buffer.add_char buf c);
                  i := !i + 2;
                  scan ()
                | c ->
                  Buffer.add_char buf c;
                  incr i;
                  scan ()
            in
            scan ();
            labels := (key, Buffer.contents buf) :: !labels;
            parse_label ()
          end
        in
        parse_label ()
      end;
      let rest = String.trim (String.sub line !i (len - !i)) in
      let value_str = match String.split_on_char ' ' rest with v :: _ -> v | [] -> "" in
      let p_value =
        match value_str with
        | "+Inf" -> infinity
        | "-Inf" -> neg_infinity
        | "NaN" -> nan
        | v -> (
          match float_of_string_opt v with
          | Some f -> f
          | None -> fail (Fmt.str "bad sample value %S" v))
      in
      Some { p_name; p_labels = canon_labels (List.rev !labels); p_value }
    end
  in
  try
    Ok
      (List.concat
         (List.mapi
            (fun i line -> Option.to_list (parse_line (i + 1) line))
            (String.split_on_char '\n' text)))
  with Parse_error msg -> Error msg
