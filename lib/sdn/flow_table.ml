(* A switch's flow table: highest-priority matching rule wins; among equal
   priorities the longest prefix wins (the compiler sets priority = prefix
   length, so both tie-breaks agree).

   Rules are kept in an array sorted by (priority desc, prefix-length
   desc, prefix asc): lookup walks from the front and stops at the first
   match — the winner by construction — instead of filtering the whole
   table and folding for the best.  Install/delete (control plane, rare)
   rebuild the array; occupancy is [Array.length], O(1), so the metrics
   gauge no longer walks the table on every collect. *)

type t = {
  mutable rules : Flow.rule array; (* sorted by [order] *)
  mutable misses : int;
  misses_c : Engine.Metrics.Counter.t option;
}

(* Total order on rules: descending priority, then descending prefix
   length, then ascending prefix for determinism.  [order a b = 0] iff
   [Flow.same_match a b]: equal prefixes have equal lengths, so the
   (priority, prefix) pair decides both. *)
let order (a : Flow.rule) (b : Flow.rule) =
  if a.Flow.priority <> b.Flow.priority then Int.compare b.Flow.priority a.Flow.priority
  else begin
    let la = Net.Ipv4.prefix_len a.Flow.match_prefix
    and lb = Net.Ipv4.prefix_len b.Flow.match_prefix in
    if la <> lb then Int.compare lb la
    else Net.Ipv4.compare_prefix a.Flow.match_prefix b.Flow.match_prefix
  end

(* [metrics]/[labels] are optional so tables can exist outside a simulation
   (tests, offline compilation); when given, misses become a labeled counter
   and occupancy a pull-style gauge synced at snapshot time. *)
let create ?metrics ?(labels = []) () =
  let misses_c =
    Option.map
      (fun m ->
        Engine.Metrics.counter m ~help:"lookups that matched no rule" ~labels
          "sdn_flow_table_misses_total")
      metrics
  in
  let t = { rules = [||]; misses = 0; misses_c } in
  Option.iter
    (fun m ->
      let g =
        Engine.Metrics.gauge m ~help:"installed flow rules" ~labels "sdn_flow_table_rules"
      in
      Engine.Metrics.on_collect m (fun () ->
          Engine.Metrics.Gauge.set g (float_of_int (Array.length t.rules))))
    metrics;
  t

let rules t = Array.to_list t.rules

let size t = Array.length t.rules

let misses t = t.misses

(* First index whose rule sorts at-or-after [rule]; [Array.length] when
   every rule sorts before it. *)
let insertion_point t rule =
  let lo = ref 0 and hi = ref (Array.length t.rules) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if order t.rules.(mid) rule < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let add t rule =
  (* Add-or-replace on the (match, priority) key. *)
  let i = insertion_point t rule in
  if i < Array.length t.rules && Flow.same_match t.rules.(i) rule then t.rules.(i) <- rule
  else begin
    let n = Array.length t.rules in
    let rules = Array.make (n + 1) rule in
    Array.blit t.rules 0 rules 0 i;
    Array.blit t.rules i rules (i + 1) (n - i);
    t.rules <- rules
  end

let filter_rules t keep =
  if not (Array.for_all keep t.rules) then
    t.rules <- Array.of_list (List.filter keep (Array.to_list t.rules))

let delete t ~match_prefix =
  filter_rules t (fun r -> not (Net.Ipv4.equal_prefix r.Flow.match_prefix match_prefix))

let delete_exact t rule = filter_rules t (fun r -> not (Flow.same_match r rule))

(* Remove this very rule record (physical identity) — used by timeout
   expiry so that a same-key replacement installed later is never the
   victim of the old rule's timer. *)
let remove_physical t rule =
  let before = Array.length t.rules in
  filter_rules t (fun r -> r != rule);
  Array.length t.rules < before

let mem_physical t rule = Array.exists (fun r -> r == rule) t.rules

let clear t = t.rules <- [||]

let lookup t addr =
  (* Sorted by (priority desc, length desc): the first match is the
     winner, and equal-length prefixes are disjoint, so no later rule of
     the same rank can also match. *)
  let n = Array.length t.rules in
  let rec scan i =
    if i >= n then None
    else begin
      let r = t.rules.(i) in
      if Flow.matches r addr then Some r else scan (i + 1)
    end
  in
  match scan 0 with
  | None ->
    t.misses <- t.misses + 1;
    Option.iter Engine.Metrics.Counter.inc t.misses_c;
    None
  | Some best ->
    best.Flow.packets <- best.Flow.packets + 1;
    Some best

(* Index of the winning rule for an address, [-1] on a miss.  Unlike
   [lookup] this neither boxes the result nor mutates anything (no
   [packets]/[misses] bump, no metric), so verifiers and the data-plane
   fast path can interrogate a table without perturbing its counters.
   Matching is pure int arithmetic on the prefix bits: [Int32.to_int] is
   an immediate read, so the scan allocates nothing. *)
let lookup_idx t addr_bits =
  let rules = t.rules in
  let n = Array.length rules in
  let rec scan i =
    if i >= n then -1
    else begin
      let p = rules.(i).Flow.match_prefix in
      let net = Net.Ipv4.addr_to_bits (Net.Ipv4.prefix_network p) in
      let mask = Net.Ipv4.mask_bits (Net.Ipv4.prefix_len p) in
      if addr_bits land mask = net then i else scan (i + 1)
    end
  in
  scan 0

let nth_rule t i = t.rules.(i)

let find t ~match_prefix =
  let rec scan i =
    if i >= Array.length t.rules then None
    else begin
      let r = t.rules.(i) in
      if Net.Ipv4.equal_prefix r.Flow.match_prefix match_prefix then Some r else scan (i + 1)
    end
  in
  scan 0

let entries_sorted t = Array.to_list t.rules

let pp ppf t =
  Fmt.pf ppf "@[<v>flow table (%d rules, %d misses)" (size t) t.misses;
  List.iter (fun r -> Fmt.pf ppf "@,  %a" Flow.pp r) (entries_sorted t);
  Fmt.pf ppf "@]"
