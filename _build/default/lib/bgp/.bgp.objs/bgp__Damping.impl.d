lib/bgp/damping.ml: Engine Float Fmt Hashtbl Net
