test/test_monitor.ml: Alcotest Engine Framework List Net Topology
