(* The benchmark harness: regenerates every table/figure of the paper's
   evaluation (full-size, printed as series + ASCII boxplots), then runs
   one Bechamel micro-benchmark per experiment kind plus core-algorithm
   benchmarks.

   Sections:
     FIG2            withdrawal convergence vs SDN fraction, 16-AS clique
     ANNOUNCE        announcement convergence vs SDN fraction (§4)
     FAILOVER        fail-over convergence vs SDN fraction (§4)
     ABLATION-DELAY  controller delayed-recomputation interval (A1)
     SUBCLUSTER      disjoint sub-cluster resilience (A2)
     ABLATION-MRAI   MRAI sensitivity (A3)
     ABLATION-WRATE  withdrawal pacing: RFC vs Quagga (A4)
     CHURN           collector update counts vs SDN fraction
     TELEMETRY       one instrumented withdrawal run: sampled metrics
                     timeline + scheduler wall-clock profile
     SHARD           lockstep-epoch partitioned run vs sequential
                     (bit-identity differential + barrier accounting)
     MICRO           Bechamel micro-benchmarks

   `dune exec bench/main.exe -- --quick` runs a reduced sweep.
   `--out FILE` additionally writes a machine-readable JSON baseline
   (per-section wall-clock, FIG2 medians, headline counters, Bechamel
   micro results) so successive PRs can diff perf against each other;
   `--check FILE` validates such a baseline and exits.
   `--metrics-out FILE` exports the TELEMETRY run's timeline (format by
   extension: .prom/.txt Prometheus, .csv CSV, else JSONL);
   `--metrics-interval S` sets its sampling period in simulated seconds.
   `--jobs N` (default: recommended cores, capped) additionally runs the
   FIG2 and PLACEMENT sweeps on an N-domain `Engine.Pool`, asserts the
   parallel results equal the sequential ones, and records per-section
   `wall_par_s`/`speedup` plus `meta.jobs` in the baseline. *)

(* Minimal JSON value + writer + parser: just enough to emit the bench
   baseline and validate it back (`--check`) without a json dependency. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let num v = if Float.is_nan v then Null else Num v

  let add_escaped b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let rec emit b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Num v ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" v)
      else Buffer.add_string b (Printf.sprintf "%.9g" v)
    | Str s ->
      Buffer.add_char b '"';
      add_escaped b s;
      Buffer.add_char b '"'
    | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ", ";
          emit b v)
        l;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          emit b (Str k);
          Buffer.add_string b ": ";
          emit b v)
        kvs;
      Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 4096 in
    emit b t;
    Buffer.contents b

  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let lit word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let number () =
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' ->
            incr pos;
            Buffer.contents b
          | '\\' ->
            incr pos;
            if !pos >= n then fail "bad escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
              | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?' (* placeholder: validation only *)
              | None -> fail "bad \\u escape");
              pos := !pos + 4
            | _ -> fail "bad escape");
            incr pos;
            go ()
          | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
      in
      go ()
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> Str (string_lit ())
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some _ -> number ()
      | None -> fail "unexpected end of input"
    and arr () =
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec items acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    and obj () =
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
end

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

let flag_value name =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let metrics_out = flag_value "--metrics-out"

let out_path = flag_value "--out"

let check_path = flag_value "--check"

(* Worker domains for the parallel sweep sections.  0/absent = auto
   (recommended domain count, capped); 1 disables the parallel pass. *)
let jobs =
  match flag_value "--jobs" with
  | None -> Engine.Pool.recommended_jobs ()
  | Some s -> (
    match int_of_string_opt s with
    | Some 0 -> Engine.Pool.recommended_jobs ()
    | Some v when v >= 1 -> v
    | _ -> Fmt.failwith "--jobs: expected a non-negative integer, got %S" s)

(* Per-section wall-clock, accumulated in run order for the JSON baseline. *)
let sections_wall : (string * float) list ref = ref []

(* Sections also measured on the domain pool: name -> (wall at jobs=N,
   speedup = sequential wall / parallel wall). *)
let sections_par : (string * (float * float)) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  sections_wall := (name, Unix.gettimeofday () -. t0) :: !sections_wall;
  r

(* Run a sweep section at jobs=1 (the baseline wall_s, comparable across
   PRs) and again at jobs=N, requiring bit-identical results — the
   deterministic speedup accounting.  Returns the sequential result. *)
let timed_speedup name ~seq ~par ~equal =
  let t0 = Unix.gettimeofday () in
  let r_seq = seq () in
  let wall_seq = Unix.gettimeofday () -. t0 in
  sections_wall := (name, wall_seq) :: !sections_wall;
  if jobs > 1 then begin
    let t0 = Unix.gettimeofday () in
    let r_par = par () in
    let wall_par = Unix.gettimeofday () -. t0 in
    if not (equal r_seq r_par) then begin
      Fmt.epr "FATAL: %s: jobs=%d result differs from the sequential run@." name jobs;
      exit 1
    end;
    let speedup = wall_seq /. wall_par in
    sections_par := (name, (wall_par, speedup)) :: !sections_par;
    Fmt.pr "%s: jobs=1 %.3f s, jobs=%d %.3f s, speedup %.2fx (results identical)@." name
      wall_seq jobs wall_par speedup
  end;
  r_seq

(* `--check FILE`: validate a previously written baseline and exit.  Keeps
   the CI smoke alias honest — the emitted file must parse and carry the
   sections/micro/meta payload a later PR would diff against. *)
let check_baseline path =
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let fail msg =
    Fmt.epr "%s: %s@." path msg;
    exit 1
  in
  let json =
    match Json.parse contents with
    | v -> v
    | exception Json.Parse_error msg -> fail ("invalid JSON: " ^ msg)
  in
  let top = match json with Json.Obj kvs -> kvs | _ -> fail "top level is not an object" in
  let field name =
    match List.assoc_opt name top with
    | Some v -> v
    | None -> fail (Fmt.str "missing %S field" name)
  in
  let meta =
    match field "meta" with
    | Json.Obj (_ :: _ as kvs) -> kvs
    | _ -> fail "\"meta\" is not a non-empty object"
  in
  (* [jobs] arrived with the parallel runner (PR 5); pre-PR5 baselines
     (e.g. BENCH_pr3.json) simply lack it — both must validate. *)
  let meta_jobs =
    match List.assoc_opt "jobs" meta with
    | None -> None
    | Some (Json.Num v) when v >= 1.0 -> Some (int_of_float v)
    | Some _ -> fail "\"meta.jobs\" is not a number >= 1"
  in
  let nonempty_arr name =
    match field name with
    | Json.Arr (_ :: _ as items) ->
      List.iter
        (function Json.Obj _ -> () | _ -> fail (Fmt.str "%S entry is not an object" name))
        items;
      items
    | _ -> fail (Fmt.str "%S is not a non-empty array" name)
  in
  let sections = nonempty_arr "sections" in
  (* Optional per-section parallel fields: when one of wall_par_s/speedup
     is present both must be, be finite and be consistent with wall_s. *)
  let nspeedup =
    List.fold_left
      (fun acc section ->
        let kvs = match section with Json.Obj kvs -> kvs | _ -> [] in
        let num k =
          match List.assoc_opt k kvs with
          | Some (Json.Num v) when Float.is_finite v && v > 0.0 -> Some v
          | Some _ -> fail (Fmt.str "section field %S is not a positive number" k)
          | None -> None
        in
        match (num "wall_par_s", num "speedup") with
        | None, None -> acc
        | Some _, None | None, Some _ ->
          fail "sections must carry wall_par_s and speedup together"
        | Some wall_par, Some speedup ->
          (match num "wall_s" with
          | Some wall when Float.abs ((wall /. wall_par) -. speedup) > 0.05 *. speedup ->
            fail "section speedup is inconsistent with wall_s / wall_par_s"
          | _ -> ());
          acc + 1)
      0 sections
  in
  if nspeedup > 0 && meta_jobs = None then
    fail "sections carry speedup fields but \"meta.jobs\" is missing";
  let nmicro = List.length (nonempty_arr "micro") in
  (match field "headline" with Json.Obj _ -> () | _ -> fail "\"headline\" is not an object");
  (* Optional "scale" object (PR 8+): validate the SCALE metrics and
     guard their ratios.  Pre-PR8 baselines simply lack the field. *)
  let scale_summary =
    match List.assoc_opt "scale" top with
    | None -> ""
    | Some (Json.Obj kvs) ->
      let num k =
        match List.assoc_opt k kvs with
        | Some (Json.Num v) when Float.is_finite v -> v
        | Some _ -> fail (Fmt.str "\"scale.%s\" is not a finite number" k)
        | None -> fail (Fmt.str "missing \"scale.%s\"" k)
      in
      let pos k =
        let v = num k in
        if v <= 0.0 then fail (Fmt.str "\"scale.%s\" must be positive" k);
        v
      in
      let ases = pos "ases" in
      let prefixes = pos "prefixes" in
      let ups = pos "updates_per_sec" in
      let rib = pos "rib_routes" in
      let adj_in = pos "adj_in_routes" in
      let peak = pos "peak_words" in
      ignore (pos "load_updates");
      ignore (pos "load_wall_s");
      ignore (pos "live_words");
      ignore (pos "distinct_attrs");
      (match num "load_settled" with
      | 0.0 | 1.0 -> ()
      | _ -> fail "\"scale.load_settled\" must be 0 or 1");
      if num "tdown_s" < 0.0 then fail "\"scale.tdown_s\" must be non-negative";
      (* Ratio guards, deliberately generous: catch order-of-magnitude
         regressions (a de-interning or a leak), not machine noise. *)
      if adj_in < rib then fail "\"scale.adj_in_routes\" below \"scale.rib_routes\"";
      let words_per_route = peak /. Float.max 1.0 (rib +. adj_in) in
      if words_per_route > 10_000.0 then
        fail
          (Fmt.str "scale: %.0f peak heap words per route (> 10000): interning regression?"
             words_per_route);
      if ups < 100.0 then fail "scale: under 100 updates/s: propagation path regression?";
      Fmt.str ", scale %.0f ASes x %.0f prefixes (%.0f upd/s)" ases prefixes ups
    | Some _ -> fail "\"scale\" is not an object"
  in
  (* Optional "shard" object (PR 9+): the sharded-vs-sequential
     differential must have held, the partition must be non-degenerate
     (cross-shard traffic actually flowed), and the recorded speedup
     must match the two wall times.  No lower bound on the speedup
     itself: few-core hosts legitimately see ~1.0x. *)
  let shard_summary =
    match List.assoc_opt "shard" top with
    | None -> ""
    | Some (Json.Obj kvs) ->
      let num k =
        match List.assoc_opt k kvs with
        | Some (Json.Num v) when Float.is_finite v -> v
        | Some _ -> fail (Fmt.str "\"shard.%s\" is not a finite number" k)
        | None -> fail (Fmt.str "missing \"shard.%s\"" k)
      in
      let shards = num "shards" in
      if shards < 2.0 then fail "\"shard.shards\" must be >= 2";
      if num "identical" <> 1.0 then
        fail "shard: differential FAILED: sharded run was not identical to sequential";
      if num "epochs" < 1.0 then fail "\"shard.epochs\" must be >= 1";
      if num "executed_total" <= 0.0 then fail "\"shard.executed_total\" must be positive";
      if num "injected_total" <= 0.0 then
        fail "shard: no cross-shard deliveries: degenerate partition?";
      if num "cut_links" < 1.0 then fail "\"shard.cut_links\" must be >= 1";
      if num "stall_s" < 0.0 then fail "\"shard.stall_s\" must be non-negative";
      let wall_seq = num "wall_seq_s" and wall_par = num "wall_shard_s" in
      if wall_seq <= 0.0 || wall_par <= 0.0 then
        fail "\"shard.wall_seq_s\"/\"shard.wall_shard_s\" must be positive";
      let speedup = num "speedup" in
      if speedup <= 0.0 then fail "\"shard.speedup\" must be positive";
      if Float.abs ((wall_seq /. wall_par) -. speedup) > 0.05 *. speedup then
        fail "shard: speedup is inconsistent with wall_seq_s / wall_shard_s";
      Fmt.str ", shard differential ok at %.0f shards (%.2fx)" shards speedup
    | Some _ -> fail "\"shard\" is not an object"
  in
  (* Optional "loss" object (PR 10+): the data-plane fast path's
     throughput and allocation guards, plus the probe-vs-verifier sweep
     health.  Missing = an older baseline, still valid. *)
  let loss_summary =
    match List.assoc_opt "loss" top with
    | None -> ""
    | Some (Json.Obj kvs) ->
      let num k =
        match List.assoc_opt k kvs with
        | Some (Json.Num v) when Float.is_finite v -> v
        | Some _ -> fail (Fmt.str "\"loss.%s\" is not a finite number" k)
        | None -> fail (Fmt.str "missing \"loss.%s\"" k)
      in
      let pps = num "probes_per_sec" in
      if num "probes" <= 0.0 then fail "\"loss.probes\" must be positive";
      if pps < 1_000_000.0 then
        fail
          (Fmt.str "loss: %.0f probes/s (under 1M): fast-path throughput regression?" pps);
      let alloc = num "alloc_words_per_probe" in
      if alloc < 0.0 then fail "\"loss.alloc_words_per_probe\" must be non-negative";
      if alloc > 8.0 then
        fail
          (Fmt.str "loss: %.1f minor words per probe: fast-path boxing regression?" alloc);
      if num "identical" <> 1.0 then
        fail "loss: differential FAILED: parallel sweep was not identical to sequential";
      if num "residual_issues_total" <> 0.0 then
        fail "loss: verifier found residual non-delivered pairs after recovery";
      if num "loss_s_sdn0" < 0.0 || num "loss_s_sdnmax" < 0.0 then
        fail "loss: negative loss duration";
      Fmt.str ", loss %.1fM probes/s (%.2f w/probe)" (pps /. 1e6) alloc
    | Some _ -> fail "\"loss\" is not an object"
  in
  Fmt.pr "%s: ok (%d sections%s, %d micro benchmarks%s%s%s%s)@." path (List.length sections)
    (if nspeedup > 0 then Fmt.str ", %d with speedup" nspeedup else "")
    nmicro
    (match meta_jobs with Some j -> Fmt.str ", jobs=%d" j | None -> ", pre-jobs baseline")
    scale_summary shard_summary loss_summary;
  exit 0

let () = Option.iter check_baseline check_path

let metrics_interval =
  match flag_value "--metrics-interval" with
  | None -> 1.0
  | Some s -> (
    match float_of_string_opt s with
    | Some v when v > 0.0 -> v
    | _ -> Fmt.failwith "--metrics-interval: expected a positive number, got %S" s)

let n = if quick then 8 else 16

let runs = if quick then 3 else 10

let config = Framework.Config.default

(* One pool for every parallel pass; [None] when running sequentially. *)
let pool = if jobs > 1 then Some (Engine.Pool.create ~jobs) else None

let section name = Fmt.pr "@.===== %s =====@." name

let print_series s =
  Fmt.pr "%a@." Framework.Experiments.pp_series s;
  Fmt.pr "%s@." (Framework.Visualize.series_to_ascii s);
  (* machine-readable copy for external plotting *)
  let dir = "bench_results" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (Fmt.str "%s.csv" s.Framework.Experiments.label) in
  let oc = open_out path in
  output_string oc (Framework.Experiments.series_to_csv s);
  close_out oc

let print_trend s =
  let intercept, slope, r2 = Framework.Experiments.median_trend s in
  Fmt.pr "linear fit of medians: y = %.2f + %.2f*x   r^2 = %.3f@." intercept slope r2

let fig2 () =
  section (Fmt.str "FIG2: withdrawal convergence, %d-AS clique, %d runs/point" n runs);
  let s =
    timed_speedup "fig2"
      ~seq:(fun () -> Framework.Experiments.fig2_withdrawal ~n ~runs ~config ())
      ~par:(fun () -> Framework.Experiments.fig2_withdrawal ?pool ~n ~runs ~config ())
      ~equal:Framework.Experiments.equal_series
  in
  print_series s;
  print_trend s;
  s

let announce () =
  section "ANNOUNCE: announcement convergence (smaller reductions expected)";
  let s = Framework.Experiments.announcement_sweep ~n ~runs ~config () in
  print_series s;
  s

let failover () =
  section "FAILOVER: stub primary-link failure, backup via 2-AS chain";
  let s = Framework.Experiments.failover_sweep ~n ~runs ~config () in
  print_series s;
  Fmt.pr "data-plane restoration (the demo's end-to-end interruption):@.";
  Fmt.pr "%8s %14s %14s@." "sdn" "mean-restore-s" "max-restore-s";
  List.iter
    (fun (p : Framework.Experiments.point) ->
      let mean f = Engine.Stats.mean (List.map f p.Framework.Experiments.results) in
      Fmt.pr "%8.0f %14.2f %14.2f@." p.Framework.Experiments.x
        (mean (fun r -> r.Framework.Experiments.restore_mean))
        (mean (fun r -> r.Framework.Experiments.restore_max)))
    s.Framework.Experiments.points;
  s

let rounds () =
  section "ROUNDS: MRAI exploration waves per withdrawal (the mechanism behind FIG2)";
  Fmt.pr "%8s %8s %14s@." "sdn" "waves" "Tdown-s";
  List.iter
    (fun sdn ->
      let spec = Topology.Artificial.clique n in
      let members = List.init sdn (fun i -> Topology.Artificial.asn (n - 1 - i)) in
      let spec = Topology.Spec.with_sdn spec members in
      let exp = Framework.Experiment.create ~config ~seed:67 spec in
      let origin = Topology.Artificial.asn 0 in
      let prefix = Framework.Experiment.default_prefix exp origin in
      ignore
        (Framework.Experiment.measure exp ~prefix (fun () ->
             ignore (Framework.Experiment.announce exp origin)));
      let before_us = Engine.Time.to_us (Framework.Experiment.now exp) in
      let m =
        Framework.Experiment.measure exp ~prefix (fun () ->
            ignore (Framework.Experiment.withdraw exp origin))
      in
      let entries =
        Framework.Logparse.of_trace (Engine.Sim.trace (Framework.Experiment.sim exp))
      in
      let after_withdrawal =
        List.filter (fun e -> e.Framework.Logparse.time_us >= before_us) entries
      in
      let waves =
        Framework.Logparse.exploration_rounds ~round_gap_us:10_000_000 after_withdrawal prefix
      in
      Fmt.pr "%8d %8d %14.2f@." sdn waves (Framework.Experiment.convergence_seconds m))
    (if quick then [ 0; 4 ] else [ 0; 4; 8; 12; 14 ])

let ablation_delay () =
  section "ABLATION-DELAY: controller recomputation delay at 50% deployment (x = ms)";
  let s = Framework.Experiments.ablation_recompute_delay ~n ~runs ~config () in
  print_series s

let ablation_mrai () =
  section "ABLATION-MRAI: MRAI sensitivity (x = MRAI seconds)";
  let s0 = Framework.Experiments.ablation_mrai ~n ~runs ~config ~sdn:0 () in
  print_series s0;
  let s8 = Framework.Experiments.ablation_mrai ~n ~runs ~config ~sdn:(n / 2) () in
  print_series s8

let ablation_wrate () =
  section "ABLATION-WRATE: withdrawal pacing (x=0 RFC-exempt, x=1 Quagga-paced)";
  let s = Framework.Experiments.ablation_wrate ~n ~runs ~config ~sdn:0 () in
  print_series s

let scaling () =
  section "SCALING: withdrawal convergence vs clique size (x = n, 50% centralized vs 0%)";
  let s_half =
    Framework.Experiments.scaling_sweep
      ~sizes:(if quick then [ 6; 8; 10 ] else [ 8; 12; 16; 20; 24 ])
      ~fraction:0.5 ~runs:(if quick then 2 else 5) ~config ()
  in
  print_series s_half;
  let s_zero =
    Framework.Experiments.scaling_sweep
      ~sizes:(if quick then [ 6; 8; 10 ] else [ 8; 12; 16; 20; 24 ])
      ~fraction:0.0 ~runs:(if quick then 2 else 5) ~config ()
  in
  print_series s_zero

let ablation_speaker_mrai () =
  section "ABLATION-SPEAKER-MRAI: pace the cluster speaker like a BGP router (50% SDN)";
  Fmt.pr "%14s %12s@." "speaker-mrai" "Tdown-med-s";
  List.iter
    (fun (label, speaker_mrai) ->
      let config = { config with Framework.Config.speaker_mrai } in
      let results =
        List.init
          (if quick then 2 else 5)
          (fun i ->
            Framework.Experiments.clique_run ~n ~sdn:(n / 2)
              ~event:Framework.Experiments.Withdrawal ~seed:(61 + (1000 * i)) ~config ())
      in
      let med =
        Engine.Stats.median (List.map (fun r -> r.Framework.Experiments.seconds) results)
      in
      Fmt.pr "%14s %12.2f@." label med)
    [ ("off (exabgp)", None); ("30s (quagga)", Some Bgp.Config.default) ]

let ablation_damping () =
  section "ABLATION-DAMPING: flap storm (4 withdraw/announce cycles, 45 s apart)";
  Fmt.pr "%10s %16s %12s %14s %12s@." "damping" "collector-updates" "recovery-s"
    "suppressions" "blackholed";
  List.iter
    (fun damping ->
      let r = Framework.Experiments.flap_run ~n ~damping ~seed:31 ~config () in
      Fmt.pr "%10b %16d %12.1f %14d %12d@." damping
        r.Framework.Experiments.collector_updates_total
        r.Framework.Experiments.recovery_seconds
        r.Framework.Experiments.suppressions_total
        r.Framework.Experiments.blackholed_after_storm)
    [ false; true ]

let placement () =
  section "PLACEMENT: which ASes to centralize (Internet-like topology, withdrawal)";
  let compute ?pool () =
    List.map
      (fun placement ->
        Framework.Experiments.placement_sweep ?pool
          ~runs:(if quick then 2 else 5)
          ~ks:(if quick then [ 0; 4; 8 ] else [ 0; 2; 4; 6; 8 ])
          ~config ~placement ())
      [ Framework.Experiments.Top_degree; Framework.Experiments.Random_choice;
        Framework.Experiments.Stubs_first ]
  in
  let ss =
    timed_speedup "placement"
      ~seq:(fun () -> compute ())
      ~par:(fun () -> compute ?pool ())
      ~equal:(fun a b -> List.for_all2 Framework.Experiments.equal_series a b)
  in
  List.iter print_series ss

let churn_load () =
  section "CHURN-LOAD: withdrawal convergence under background flapping (per-peer MRAI coupling)";
  Fmt.pr "%8s %14s %14s@." "sdn" "quiet-Tdown-s" "churny-Tdown-s";
  List.iter
    (fun sdn ->
      let quiet =
        Framework.Experiments.clique_run ~n ~sdn ~event:Framework.Experiments.Withdrawal
          ~seed:59 ~config ()
      in
      let churny =
        Framework.Experiments.churn_run ~n ~sdn ~flap_period_s:20.0 ~seed:59 ~config ()
      in
      Fmt.pr "%8d %14.2f %14.2f@." sdn quiet.Framework.Experiments.seconds
        churny.Framework.Experiments.seconds)
    (if quick then [ 0; 4 ] else [ 0; 4; 8; 12 ])

let table_size () =
  section "TABLE-SIZE: withdrawal convergence vs background prefixes (negative control)";
  Fmt.pr "%12s %12s %10s@." "background" "Tdown-s" "changes";
  List.iter
    (fun background ->
      let r =
        Framework.Experiments.table_size_run ~n ~sdn:0 ~background ~seed:47 ~config ()
      in
      Fmt.pr "%12d %12.2f %10d@." background r.Framework.Experiments.seconds
        r.Framework.Experiments.changes)
    (if quick then [ 0; 4 ] else [ 0; 5; 10; 15 ])

let subcluster () =
  section "SUBCLUSTER: disjoint sub-clusters bridged over the legacy world";
  let r = Framework.Experiments.subcluster_resilience ~config () in
  Fmt.pr "reachable before split:       %b@." r.Framework.Experiments.reachable_before;
  Fmt.pr "reachable after bridge fail:  %b@." r.Framework.Experiments.reachable_after_split;
  Fmt.pr "post-split path via legacy:   %b@." r.Framework.Experiments.used_legacy_bridge;
  Fmt.pr "reachable after recovery:     %b@." r.Framework.Experiments.reachable_after_recovery

let churn (fig2_series : Framework.Experiments.series) =
  section "CHURN: BGP updates seen by the route collector per withdrawal run";
  Fmt.pr "%8s %12s %12s@." "sdn" "mean-updates" "mean-changes";
  List.iter
    (fun (p : Framework.Experiments.point) ->
      let mean f = Engine.Stats.mean (List.map f p.Framework.Experiments.results) in
      Fmt.pr "%8.0f %12.1f %12.1f@." p.Framework.Experiments.x
        (mean (fun r -> float_of_int r.Framework.Experiments.collector_updates))
        (mean (fun r -> float_of_int r.Framework.Experiments.changes)))
    fig2_series.Framework.Experiments.points

let telemetry () =
  section "TELEMETRY: instrumented withdrawal run (metrics timeline + scheduler profile)";
  let sdn = n / 2 in
  let spec = Topology.Artificial.clique n in
  let members = List.init sdn (fun i -> Topology.Artificial.asn (n - 1 - i)) in
  let spec = Topology.Spec.with_sdn spec members in
  let exp = Framework.Experiment.create ~config ~seed:67 spec in
  let sim = Framework.Experiment.sim exp in
  Engine.Sim.set_profiling sim true;
  let sink =
    Option.map
      (fun path ->
        Framework.Telemetry.create
          ~interval:(Engine.Time.of_sec_f metrics_interval)
          ~sim ~path ())
      metrics_out
  in
  let origin = Topology.Artificial.asn 0 in
  let prefix = Framework.Experiment.default_prefix exp origin in
  ignore
    (Framework.Experiment.measure exp ~prefix (fun () ->
         ignore (Framework.Experiment.announce exp origin)));
  let m =
    Framework.Experiment.measure exp ~prefix (fun () ->
        ignore (Framework.Experiment.withdraw exp origin))
  in
  let tdown = Framework.Experiment.convergence_seconds m in
  Fmt.pr "clique:%d sdn:%d withdrawal Tdown = %.2f s@." n sdn tdown;
  let snap = Framework.Experiment.final_metrics exp in
  let headline =
    List.filter_map
      (fun name -> Option.map (fun v -> (name, v)) (Engine.Metrics.value snap name))
      [ "controller_recompute_total"; "controller_recompute_skipped_total";
        "controller_flow_mods_total"; "controller_updates_in_total";
        "bgp_mrai_deferrals_total"; "net_messages_delivered_total" ]
  in
  List.iter (fun (name, v) -> Fmt.pr "%-32s %10.0f@." name v) headline;
  Fmt.pr "@.scheduler wall-clock self-profile (host time, varies run to run):@.";
  Fmt.pr "%a@." Engine.Sim.pp_profile sim;
  Option.iter
    (fun sink ->
      match Framework.Telemetry.finish sink with
      | Ok count ->
        Fmt.pr "metrics: %d snapshots written to %s@." count (Option.get metrics_out)
      | Error msg -> Fmt.epr "metrics: write failed: %s@." msg)
    sink;
  (tdown, headline)

(* --- causal tracing overhead -------------------------------------------- *)

(* The same seeded clique withdrawal run three ways: tracing disabled
   (the engine default), the always-on Ring flight recorder (the
   framework default) and Full retention (`hybridsim trace`).  Best-of-k
   host wall clock per mode; the ring/full ratios against disabled land
   in the baseline headline so later PRs can watch the overhead claim.
   The simulated result must be bit-identical across modes — trace ids
   come from a dedicated RNG stream and must never perturb the run. *)
let causal_overhead () =
  section "TRACE-OVERHEAD: same seeded withdrawal, tracing disabled vs ring vs full";
  let reps = if quick then 3 else 5 in
  let sdn = n / 2 in
  let run mode =
    let config = { config with Framework.Config.causal = mode } in
    let best = ref infinity in
    let seconds = ref nan in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let r =
        Framework.Experiments.clique_run ~n ~sdn ~event:Framework.Experiments.Withdrawal
          ~seed:67 ~config ()
      in
      best := Float.min !best (Unix.gettimeofday () -. t0);
      seconds := r.Framework.Experiments.seconds
    done;
    (!best, !seconds)
  in
  let wall_off, secs_off = run Engine.Causal.Disabled in
  let wall_ring, secs_ring = run (Engine.Causal.Ring 4096) in
  let wall_full, secs_full = run Engine.Causal.Full in
  if not (secs_off = secs_ring && secs_off = secs_full) then begin
    Fmt.epr "FATAL: tracing mode changed the simulated result (%.6f / %.6f / %.6f)@."
      secs_off secs_ring secs_full;
    exit 1
  end;
  let ring_ratio = wall_ring /. wall_off in
  let full_ratio = wall_full /. wall_off in
  Fmt.pr "%-12s %12s %8s@." "mode" "wall_best_s" "ratio";
  Fmt.pr "%-12s %12.4f %8.2f@." "disabled" wall_off 1.0;
  Fmt.pr "%-12s %12.4f %8.2f@." "ring:4096" wall_ring ring_ratio;
  Fmt.pr "%-12s %12.4f %8.2f@." "full" wall_full full_ratio;
  Fmt.pr "simulated Tdown identical across modes: %.6f s (clique:%d sdn:%d, best of %d)@."
    secs_off n sdn reps;
  [ ("trace_overhead_ring_ratio", ring_ratio); ("trace_overhead_full_ratio", full_ratio) ]

(* --- Internet-scale stress ----------------------------------------------- *)

(* The PR 8 tentpole proof: a synthetic CAIDA graph at Internet-like AS
   counts, loaded with enough origins that the RIBs hold millions of
   routes, then one measured withdrawal.  The load phase runs under an
   explicit event budget AND a host-clock wall deadline per phase —
   with batching one delivery event can carry thousands of prefixes, so
   an event count alone does not bound work; full global propagation of
   10k prefixes across 5k ASes needs hours on one core.  The bench
   loads to the nearer horizon and reports [load_settled] honestly.
   The quick variant (100 ASes) settles completely. *)
let scale () =
  section "SCALE: CAIDA-graph load + measured withdrawal (trie RIBs, interned attrs)";
  let tier1, tier2, stubs, prefixes, budget, wall =
    if quick then (4, 24, 72, 200, 3_000_000, None)
    else (10, 200, 4790, 10_000, 12_000_000, Some 150.0)
  in
  let r =
    Framework.Experiments.scale_run ~tier1 ~tier2 ~stubs ~prefixes ~sdn:0
      ~load_max_events:budget ?phase_wall_s:wall ~clock:Unix.gettimeofday ~seed:5 ~config ()
  in
  let open Framework.Experiments in
  Fmt.pr "graph: %d ASes, %d links; %d prefixes loaded@." r.ases r.links r.prefixes;
  Fmt.pr "load: %d collector updates in %.1f s host time (%.0f updates/s), settled=%b@."
    r.load_updates r.load_seconds r.updates_per_sec r.load_settled;
  Fmt.pr "tables: %d Loc-RIB routes, %d Adj-RIB-In routes, %d interned attr sets@."
    r.rib_routes r.adj_in_routes r.distinct_attrs;
  Fmt.pr "heap: %d live words, %d peak words (%.1f MB peak)@." r.live_words r.peak_words
    (float_of_int r.peak_words *. 8.0 /. 1e6);
  Fmt.pr "withdrawal: Tdown = %.2f s (simulated), %d control changes@."
    r.withdrawal.seconds r.withdrawal.changes;
  [
    ("ases", float_of_int r.ases);
    ("links", float_of_int r.links);
    ("prefixes", float_of_int r.prefixes);
    ("load_updates", float_of_int r.load_updates);
    ("load_wall_s", r.load_seconds);
    ("updates_per_sec", r.updates_per_sec);
    ("load_settled", if r.load_settled then 1.0 else 0.0);
    ("rib_routes", float_of_int r.rib_routes);
    ("adj_in_routes", float_of_int r.adj_in_routes);
    ("live_words", float_of_int r.live_words);
    ("peak_words", float_of_int r.peak_words);
    ("distinct_attrs", float_of_int r.distinct_attrs);
    ("tdown_s", r.withdrawal.seconds);
  ]

(* --- Sharded single-run execution ---------------------------------------- *)

(* The PR 9 tentpole proof: ONE run partitioned across domains advancing
   in lockstep epochs must be bit-identical to the same run at one
   shard, and the section shows where the time went (per-shard event
   counts, barrier stall).  The speedup figure is reported honestly but
   NOT guarded: on few-core hosts or small runs lockstep epochs can sit
   at ~1.0x — the invariant this section defends is identity. *)
let shard () =
  section "SHARD: lockstep-epoch partitioned run == sequential (differential)";
  let tier1, tier2, stubs, prefixes =
    if quick then (2, 8, 30, 40) else (5, 40, 455, 300)
  in
  let nshards = 2 in
  let run n =
    let t0 = Unix.gettimeofday () in
    let _, s =
      Framework.Experiments.scale_shard_run ~tier1 ~tier2 ~stubs ~prefixes ~sdn:4
        ~shards:n ~clock:Unix.gettimeofday ~seed:9 ~config ()
    in
    (s, Unix.gettimeofday () -. t0)
  in
  let seq, wall_seq = run 1 in
  let par, wall_par = run nshards in
  if not (Framework.Sharding.equal_result par seq) then
    failwith "SHARD: sharded result differs from the sequential run";
  let st = par.Framework.Sharding.stats in
  let total = Array.fold_left ( + ) 0 in
  let stall = Array.fold_left ( +. ) 0.0 st.Engine.Shard.stall_s in
  let speedup = wall_seq /. wall_par in
  let pp_ints = Fmt.(array ~sep:(any "/") int) in
  Fmt.pr "partition: sizes %a, %d cut links, %d epochs, lookahead %a@." pp_ints
    par.Framework.Sharding.partition_sizes par.Framework.Sharding.cut_links
    st.Engine.Shard.epochs Engine.Time.pp_span st.Engine.Shard.lookahead;
  Fmt.pr "events: executed %a (%d total), injected cross-shard %a (%d total)@." pp_ints
    st.Engine.Shard.executed (total st.Engine.Shard.executed) pp_ints
    st.Engine.Shard.injected (total st.Engine.Shard.injected);
  Fmt.pr "barrier stall: %a s (%.2f s total)@."
    Fmt.(array ~sep:(any "/") (fmt "%.2f"))
    st.Engine.Shard.stall_s stall;
  Fmt.pr "wall: %.2f s at 1 shard, %.2f s at %d shards (speedup %.2fx)@." wall_seq wall_par
    nshards speedup;
  Fmt.pr "differential: identical@.";
  [
    ("shards", float_of_int nshards);
    ("epochs", float_of_int st.Engine.Shard.epochs);
    ("cut_links", float_of_int par.Framework.Sharding.cut_links);
    ("executed_total", float_of_int (total st.Engine.Shard.executed));
    ("injected_total", float_of_int (total st.Engine.Shard.injected));
    ("stall_s", stall);
    ("wall_seq_s", wall_seq);
    ("wall_shard_s", wall_par);
    ("speedup", speedup);
    ("identical", 1.0);
  ]

(* --- Data-plane loss + fast-path throughput ------------------------------ *)

(* The PR 10 tentpole proof, two halves.  (1) The loss sweep: seeded
   probe bursts against the forwarding snapshot measure how long the
   data plane black-holes/loops packets after a link failure, per SDN
   membership level — run sequentially and on the pool, requiring
   bit-identical results.  (2) The fast path itself: a tight forward
   loop over the settled network's snapshot must clear 1M probes/s with
   near-zero per-probe minor allocation — guarded here and re-checked by
   `--check` against the recorded baseline. *)
let loss () =
  section "LOSS: data-plane loss vs centralization (probe bursts on the fast path)";
  let nn = if quick then 8 else 16 in
  let lruns = if quick then 2 else 5 in
  let s =
    timed_speedup "loss"
      ~seq:(fun () -> Framework.Experiments.loss_sweep ~n:nn ~runs:lruns ~config ())
      ~par:(fun () -> Framework.Experiments.loss_sweep ?pool ~n:nn ~runs:lruns ~config ())
      ~equal:Framework.Experiments.equal_loss_series
  in
  Fmt.pr "%a@." Framework.Experiments.pp_loss_series s;
  let dir = "bench_results" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (Fmt.str "%s.csv" s.Framework.Experiments.ls_label) in
  let oc = open_out path in
  output_string oc (Framework.Experiments.loss_series_to_csv s);
  close_out oc;
  let mean f rs = Engine.Stats.mean (List.map f rs) in
  let point_loss (p : Framework.Experiments.loss_point) =
    mean (fun (r : Framework.Experiments.loss_result) -> r.Framework.Experiments.loss_seconds)
      p.Framework.Experiments.lp_results
  in
  let first_point = List.hd s.Framework.Experiments.ls_points in
  let last_point = List.nth s.Framework.Experiments.ls_points
      (List.length s.Framework.Experiments.ls_points - 1)
  in
  let residual_total =
    List.fold_left
      (fun acc (p : Framework.Experiments.loss_point) ->
        List.fold_left
          (fun acc (r : Framework.Experiments.loss_result) ->
            acc + r.Framework.Experiments.residual_issues)
          acc p.Framework.Experiments.lp_results)
      0 s.Framework.Experiments.ls_points
  in
  (* Fast-path throughput: every AS fires at the stub's host address
     against one frozen snapshot of the settled (pre-failure) state. *)
  let throughput_stats =
    timed "loss_throughput" (fun () ->
        let spec = Topology.Artificial.failover_backup_chain ~clique_size:nn ~chain_len:2 () in
        let exp = Framework.Experiment.create ~config ~seed:73 spec in
        let stub = Topology.Artificial.stub_asn spec in
        let prefix = Framework.Experiment.default_prefix exp stub in
        ignore
          (Framework.Experiment.measure exp ~prefix (fun () ->
               ignore (Framework.Experiment.announce exp stub)));
        let network = Framework.Experiment.network exp in
        let dp = Framework.Network.dataplane_snapshot network in
        let plan = Framework.Network.plan network in
        let dst_bits = Net.Ipv4.addr_to_bits (plan.Framework.Addressing.host_addr stub) in
        let srcs =
          Array.of_list
            (List.map
               (fun a -> Net.Dataplane.index_of dp (Net.Asn.to_int a))
               (Topology.Spec.asns spec))
        in
        let nsrc = Array.length srcs in
        (* correctness first: the settled network delivers from everywhere *)
        Array.iter
          (fun si ->
            let r = Net.Dataplane.forward dp ~src:si ~dst_bits ~ttl:64 in
            if Net.Dataplane.result_fate r <> Net.Dataplane.Delivered then begin
              Fmt.epr "FATAL: fast path failed to deliver from index %d@." si;
              exit 1
            end)
          srcs;
        let probes = if quick then 1_000_000 else 5_000_000 in
        let sink = ref 0 in
        let before = Gc.minor_words () in
        let t0 = Unix.gettimeofday () in
        for i = 0 to probes - 1 do
          let si = Array.unsafe_get srcs (i mod nsrc) in
          sink := !sink + Net.Dataplane.forward dp ~src:si ~dst_bits ~ttl:64
        done;
        let wall = Unix.gettimeofday () -. t0 in
        let allocd = Gc.minor_words () -. before in
        ignore !sink;
        let probes_per_sec = float_of_int probes /. wall in
        let alloc_per_probe = allocd /. float_of_int probes in
        Fmt.pr "throughput: %.2fM probes/s (%d probes in %.3f s), %.3f minor words/probe@."
          (probes_per_sec /. 1e6) probes wall alloc_per_probe;
        if probes_per_sec < 1e6 then begin
          Fmt.epr "FATAL: fast path under 1M probes/s@.";
          exit 1
        end;
        if alloc_per_probe > 8.0 then begin
          Fmt.epr "FATAL: fast path allocates %.1f minor words/probe@." alloc_per_probe;
          exit 1
        end;
        [
          ("probes", float_of_int probes);
          ("probes_per_sec", probes_per_sec);
          ("alloc_words_per_probe", alloc_per_probe);
        ])
  in
  if residual_total <> 0 then begin
    Fmt.epr "FATAL: verifier found %d residual non-delivered pairs after recovery@."
      residual_total;
    exit 1
  end;
  throughput_stats
  @ [
      ("loss_s_sdn0", point_loss first_point);
      ("loss_s_sdnmax", point_loss last_point);
      ("residual_issues_total", float_of_int residual_total);
      ("identical", 1.0);
    ]

(* --- Bechamel micro-benchmarks ------------------------------------------ *)

let micro () =
  section "MICRO: Bechamel micro-benchmarks (OLS time per run)";
  let open Bechamel in
  let open Toolkit in
  let fast = Framework.Config.fast_test in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    !counter
  in
  (* One Test.make per experiment regenerator (scaled-down instances). *)
  let run_fig2 () =
    Framework.Experiments.clique_run ~n:6 ~sdn:2 ~event:Framework.Experiments.Withdrawal
      ~seed:(fresh ()) ~config:fast ()
  in
  let run_announce () =
    Framework.Experiments.clique_run ~n:6 ~sdn:2 ~event:Framework.Experiments.Announcement
      ~seed:(fresh ()) ~config:fast ()
  in
  let run_failover () =
    Framework.Experiments.failover_run ~n:5 ~sdn:2 ~seed:(fresh ()) ~config:fast ()
  in
  let run_subcluster () =
    Framework.Experiments.subcluster_resilience ~seed:(fresh ()) ~config:fast ()
  in
  let t_fig2 = Test.make ~name:"fig2_withdrawal_point" (Staged.stage run_fig2) in
  let t_announce = Test.make ~name:"announcement_point" (Staged.stage run_announce) in
  let t_failover = Test.make ~name:"failover_point" (Staged.stage run_failover) in
  let t_subcluster = Test.make ~name:"subcluster_resilience" (Staged.stage run_subcluster) in
  (* Core algorithm benchmarks. *)
  let t_as_graph =
    let members = Net.Asn.Set.of_list (List.init 8 (fun i -> Net.Asn.of_int (65010 + i))) in
    let g = Net.Graph.create () in
    Net.Asn.Set.iter (fun m -> Net.Graph.add_node g (Net.Asn.to_int m)) members;
    List.iter (fun i -> Net.Graph.add_edge g (65010 + i) (65010 + i + 1)) (List.init 7 Fun.id);
    let nh = Net.Ipv4.addr_of_octets 10 0 0 1 in
    let routes =
      List.init 16 (fun i ->
          {
            Cluster_ctl.As_graph.member = Net.Asn.of_int (65010 + (i mod 8));
            neighbor = Net.Asn.of_int (65100 + i);
            attrs =
              Bgp.Attrs.make
                ~as_path:(List.init ((i mod 4) + 1) (fun j -> Net.Asn.of_int (65100 + i + j)))
                ~next_hop:nh ();
            rel = Bgp.Policy.Unrestricted;
          })
    in
    Test.make ~name:"as_graph_compute_8members"
      (Staged.stage (fun () ->
           Cluster_ctl.As_graph.compute ~members ~switch_graph:g ~routes
             ~originators:Net.Asn.Set.empty ()))
  in
  let t_decision =
    let nh = Net.Ipv4.addr_of_octets 10 0 0 1 in
    let prefix = Option.get (Net.Ipv4.prefix_of_string "100.64.0.0/24") in
    let routes =
      List.init 16 (fun i ->
          Bgp.Route.make ~prefix
            ~attrs:
              (Bgp.Attrs.make
                 ~as_path:(List.init ((i mod 5) + 1) (fun j -> Net.Asn.of_int (65001 + i + j)))
                 ~local_pref:(90 + (i mod 4 * 10))
                 ~next_hop:nh ())
            ~source:(Bgp.Route.Ebgp (Net.Asn.of_int (65001 + i)))
            ~learned_at:Engine.Time.zero)
    in
    Test.make ~name:"decision_select_16routes"
      (Staged.stage (fun () -> Bgp.Decision.select routes))
  in
  let t_fib =
    let fib = Net.Fib.create () in
    List.iteri
      (fun i () ->
        Net.Fib.insert fib (Net.Ipv4.prefix (Net.Ipv4.addr_of_octets 10 (i mod 256) 0 0) 16) i)
      (List.init 256 (fun _ -> ()));
    let probe = Net.Ipv4.addr_of_octets 10 127 3 4 in
    Test.make ~name:"fib_lookup_256" (Staged.stage (fun () -> Net.Fib.lookup_value fib probe))
  in
  let t_dijkstra =
    let g = Net.Graph.create () in
    for i = 0 to 99 do
      Net.Graph.add_node g i
    done;
    for i = 0 to 98 do
      Net.Graph.add_edge g i (i + 1);
      if i mod 7 = 0 && i + 9 < 100 then Net.Graph.add_edge g i (i + 9)
    done;
    Test.make ~name:"dijkstra_100nodes" (Staged.stage (fun () -> Net.Graph.dijkstra g 0))
  in
  let t_wire_encode, t_wire_decode =
    let nh = Net.Ipv4.addr_of_octets 10 0 0 1 in
    let attrs =
      Bgp.Attrs.make
        ~as_path:(List.init 5 (fun i -> Net.Asn.of_int (65001 + i)))
        ~communities:(Bgp.Community.Set.singleton (Bgp.Community.make 65000 1))
        ~med:10 ~next_hop:nh ()
    in
    let msg =
      Bgp.Message.update
        ~announced:
          (List.init 8 (fun i ->
               (Net.Ipv4.prefix (Net.Ipv4.addr_of_octets 100 64 i 0) 24, attrs)))
        ~withdrawn:[ Net.Ipv4.prefix (Net.Ipv4.addr_of_octets 9 9 0 0) 16 ]
        ()
    in
    let encoded = Bgp.Wire.encode_concat msg in
    ( Test.make ~name:"wire_encode_update8" (Staged.stage (fun () -> Bgp.Wire.encode msg)),
      Test.make ~name:"wire_decode_update8"
        (Staged.stage (fun () -> Bgp.Wire.decode_all encoded)) )
  in
  let tests =
    [ t_fig2; t_announce; t_failover; t_subcluster; t_as_graph; t_decision; t_fib; t_dijkstra;
      t_wire_encode; t_wire_decode ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = [ Instance.monotonic_clock ] in
  (* Warm up the experiment regenerators before sampling: their first
     iterations fault in code paths and take the initial major-GC spikes,
     which previously dragged several fits below r^2 = 0.7 (e.g.
     fib_lookup_256 at 0.62 and as_graph_compute_8members at 0.65 in
     BENCH_pr3.json). *)
  List.iter
    (fun f ->
      for _ = 1 to 3 do
        f ()
      done)
    [
      (fun () -> ignore (run_fig2 ()));
      (fun () -> ignore (run_announce ()));
      (fun () -> ignore (run_failover ()));
      (fun () -> ignore (run_subcluster ()));
    ];
  (* [start] is the minimum-runs floor per sample; a longer [quota] in
     full mode buys enough samples for a stable OLS fit. *)
  let cfg =
    Benchmark.cfg ~limit:300
      ~quota:(Time.second (if quick then 0.25 else 1.0))
      ~start:3 ~stabilize:true ~kde:None ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        let r2 = Option.value (Analyze.OLS.r_square ols_result) ~default:nan in
        (name, ns, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
  in
  Fmt.pr "%-40s %14s %8s@." "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, ns, r2) ->
      let time =
        if Float.is_nan ns then "n/a"
        else if ns > 1e6 then Fmt.str "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Fmt.str "%.2f us" (ns /. 1e3)
        else Fmt.str "%.0f ns" ns
      in
      Fmt.pr "%-40s %14s %8.3f%s@." name time r2
        (if Float.is_nan r2 || r2 >= 0.8 then "" else "   WARNING: noisy fit"))
    rows;
  let noisy = List.filter (fun (_, _, r2) -> (not (Float.is_nan r2)) && r2 < 0.8) rows in
  if noisy <> [] then begin
    Fmt.pr "@.WARNING: %d micro-benchmark fit(s) below r^2 = 0.8:@." (List.length noisy);
    List.iter (fun (name, _, r2) -> Fmt.pr "  %-40s r^2 = %.3f@." name r2) noisy;
    Fmt.pr "treat their ns_per_run as indicative only; do not commit them as a baseline@."
  end;
  rows

(* --- machine-readable baseline ------------------------------------------ *)

let series_medians (s : Framework.Experiments.series) =
  List.map
    (fun (p : Framework.Experiments.point) ->
      let med =
        Engine.Stats.median
          (List.map (fun r -> r.Framework.Experiments.seconds) p.Framework.Experiments.results)
      in
      (p.Framework.Experiments.x, med))
    s.Framework.Experiments.points

let write_baseline path ~fig2_series ~telemetry_tdown ~headline ~micro_rows ~scale_stats
    ~shard_stats ~loss_stats =
  let json =
    Json.Obj
      [
        ( "meta",
          Json.Obj
            [
              ("bench", Json.Str "hybridsdn");
              ("quick", Json.Bool quick);
              ("n", Json.Num (float_of_int n));
              ("runs", Json.Num (float_of_int runs));
              ("jobs", Json.Num (float_of_int jobs));
            ] );
        ( "sections",
          Json.Arr
            (List.rev_map
               (fun (name, wall) ->
                 let par =
                   match List.assoc_opt name !sections_par with
                   | Some (wall_par, speedup) ->
                     [ ("wall_par_s", Json.num wall_par); ("speedup", Json.num speedup) ]
                   | None -> []
                 in
                 Json.Obj
                   ((("name", Json.Str name) :: ("wall_s", Json.num wall) :: par)))
               !sections_wall) );
        ( "fig2",
          Json.Arr
            (List.map
               (fun (x, med) ->
                 Json.Obj [ ("sdn", Json.num x); ("tdown_median_s", Json.num med) ])
               (series_medians fig2_series)) );
        ( "headline",
          Json.Obj
            (("telemetry_tdown_s", Json.num telemetry_tdown)
            :: List.map (fun (name, v) -> (name, Json.num v)) headline) );
        ( "micro",
          Json.Arr
            (List.map
               (fun (name, ns, r2) ->
                 Json.Obj
                   [ ("name", Json.Str name); ("ns_per_run", Json.num ns); ("r2", Json.num r2) ])
               micro_rows) );
        ("scale", Json.Obj (List.map (fun (k, v) -> (k, Json.num v)) scale_stats));
        ("shard", Json.Obj (List.map (fun (k, v) -> (k, Json.num v)) shard_stats));
        ("loss", Json.Obj (List.map (fun (k, v) -> (k, Json.num v)) loss_stats));
      ]
  in
  let dir = Filename.dirname path in
  if dir <> "." && dir <> "" && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "baseline written to %s@." path

let () =
  Fmt.pr "hybridsdn bench harness (n=%d, runs=%d, jobs=%d%s)@." n runs jobs
    (if quick then ", quick" else "");
  (* Micro-benchmarks run FIRST, on a pristine heap.  Bechamel
     unconditionally compacts the heap until the live-word count settles
     before every test (and, with [stabilize], before every sample) —
     and after the macro sections the major heap holds tens of millions
     of words laced with the attribute interner's weak tables, whose
     entries keep dropping across compactions, so every stabilization
     ran the full 10-compaction cycle at seconds per compaction: the
     section cost ~17 minutes at the tail of the run and its
     nanosecond-scale fits absorbed the inflated cache pressure.  At
     process start the same stabilization is milliseconds.  (The worker
     domains of a --jobs run exist already and add stop-the-world minor
     collections to the sampling noise; the committed baselines run at
     jobs=1, where no worker domains exist.) *)
  let micro_rows = timed "micro" micro in
  let fig2_series = fig2 () in
  timed "rounds" rounds;
  ignore (timed "announce" announce);
  ignore (timed "failover" failover);
  timed "ablation_delay" ablation_delay;
  timed "ablation_mrai" ablation_mrai;
  timed "ablation_wrate" ablation_wrate;
  timed "ablation_speaker_mrai" ablation_speaker_mrai;
  timed "ablation_damping" ablation_damping;
  timed "scaling" scaling;
  placement ();
  timed "churn_load" churn_load;
  timed "table_size" table_size;
  timed "subcluster" subcluster;
  timed "churn" (fun () -> churn fig2_series);
  let telemetry_tdown, headline = timed "telemetry" telemetry in
  let overhead_rows = timed "trace_overhead" causal_overhead in
  let headline = headline @ overhead_rows in
  let scale_stats = timed "scale" scale in
  let shard_stats = timed "shard" shard in
  let loss_stats = loss () in
  Option.iter Engine.Pool.shutdown pool;
  Option.iter
    (fun path ->
      write_baseline path ~fig2_series ~telemetry_tdown ~headline ~micro_rows ~scale_stats
        ~shard_stats ~loss_stats)
    out_path;
  Fmt.pr "@.done.@."
