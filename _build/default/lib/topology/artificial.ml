(* Deterministic artificial topologies.

   The paper's headline experiment runs on a 16-AS clique with full route
   propagation (Open links), which is the classic BGP path-exploration
   worst case.  The other shapes are standard building blocks for
   experiment design. *)

let base_asn = 65001

let asn i = Net.Asn.of_int (base_asn + i)

let nodes n = List.init n (fun i -> Spec.node (asn i))

let clique ?(rel = Spec.Open) n =
  if n < 2 then invalid_arg "Artificial.clique: need at least 2 nodes";
  let links = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      links := Spec.link ~rel (asn i) (asn j) :: !links
    done
  done;
  Spec.make ~title:(Fmt.str "clique-%d" n) ~nodes:(nodes n) ~links:(List.rev !links)

(* Hub is provider of every leaf by default (a classic access topology). *)
let star ?(rel = Spec.C2p) n =
  if n < 2 then invalid_arg "Artificial.star: need at least 2 nodes";
  let links = List.init (n - 1) (fun i -> Spec.link ~rel (asn (i + 1)) (asn 0)) in
  Spec.make ~title:(Fmt.str "star-%d" n) ~nodes:(nodes n) ~links

let line ?(rel = Spec.Open) n =
  if n < 2 then invalid_arg "Artificial.line: need at least 2 nodes";
  let links = List.init (n - 1) (fun i -> Spec.link ~rel (asn i) (asn (i + 1))) in
  Spec.make ~title:(Fmt.str "line-%d" n) ~nodes:(nodes n) ~links

let ring ?(rel = Spec.Open) n =
  if n < 3 then invalid_arg "Artificial.ring: need at least 3 nodes";
  let links =
    Spec.link ~rel (asn (n - 1)) (asn 0)
    :: List.init (n - 1) (fun i -> Spec.link ~rel (asn i) (asn (i + 1)))
  in
  Spec.make ~title:(Fmt.str "ring-%d" n) ~nodes:(nodes n) ~links

(* Complete binary tree with [depth] levels; children are customers of
   their parent, mirroring provider hierarchies. *)
let tree ?(rel = Spec.C2p) depth =
  if depth < 1 then invalid_arg "Artificial.tree: depth must be >= 1";
  let n = (1 lsl depth) - 1 in
  let links = ref [] in
  for i = 1 to n - 1 do
    let parent = (i - 1) / 2 in
    links := Spec.link ~rel (asn i) (asn parent) :: !links
  done;
  Spec.make ~title:(Fmt.str "tree-d%d" depth) ~nodes:(nodes n) ~links:(List.rev !links)

let grid ?(rel = Spec.Open) rows cols =
  if rows < 1 || cols < 1 || rows * cols < 2 then invalid_arg "Artificial.grid";
  let id r c = (r * cols) + c in
  let links = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then links := Spec.link ~rel (asn (id r c)) (asn (id r (c + 1))) :: !links;
      if r + 1 < rows then links := Spec.link ~rel (asn (id r c)) (asn (id (r + 1) c)) :: !links
    done
  done;
  Spec.make
    ~title:(Fmt.str "grid-%dx%d" rows cols)
    ~nodes:(nodes (rows * cols))
    ~links:(List.rev !links)

(* A stub AS dual-homed to two transit ASes that are connected to the rest
   of a clique: the fail-over experiment's shape — kill the primary link
   and routing must fall back to the backup. *)
let dual_homed_stub ?(clique_size = 6) () =
  if clique_size < 2 then invalid_arg "Artificial.dual_homed_stub";
  let base = clique ~rel:Spec.Open clique_size in
  let stub = asn clique_size in
  let primary = asn 0 in
  let backup = asn 1 in
  Spec.make
    ~title:(Fmt.str "dual-homed-stub-%d" clique_size)
    ~nodes:(Spec.nodes base @ [ Spec.node stub ])
    ~links:
      (Spec.links base
      @ [ Spec.link ~rel:Spec.C2p stub primary; Spec.link ~rel:Spec.C2p stub backup ])

let stub_asn spec =
  match List.rev (Spec.nodes spec) with
  | [] -> invalid_arg "Artificial.stub_asn: empty spec"
  | last :: _ -> last.Spec.asn

(* Fail-over with real path exploration: a stub AS has a short primary
   path into clique member 0 and a strictly longer backup path — a chain
   of [chain_len] transit ASes into clique member 1.  When the primary
   link dies, clique members hold stale length-3 paths through each other
   ([X, member0, stub]) that beat the longer backup, so they explore them
   MRAI round by MRAI round before settling on the backup — the dynamics
   the paper's fail-over experiment stresses.

   Node layout: 0..n-1 clique, n..n+chain_len-1 the backup chain
   (stub-side first), n+chain_len the stub. *)
let failover_backup_chain ?(clique_size = 16) ?(chain_len = 2) () =
  if clique_size < 2 || chain_len < 1 then invalid_arg "Artificial.failover_backup_chain";
  let base = clique ~rel:Spec.Open clique_size in
  let chain = List.init chain_len (fun i -> asn (clique_size + i)) in
  let stub = asn (clique_size + chain_len) in
  let chain_links =
    (* stub -> chain.0 -> chain.1 -> ... -> clique member 1 *)
    let hops = (stub :: chain) @ [ asn 1 ] in
    let rec pair = function
      | a :: (b :: _ as rest) -> Spec.link ~rel:Spec.Open a b :: pair rest
      | [ _ ] | [] -> []
    in
    pair hops
  in
  Spec.make
    ~title:(Fmt.str "failover-chain-%d-%d" clique_size chain_len)
    ~nodes:(Spec.nodes base @ List.map Spec.node chain @ [ Spec.node stub ])
    ~links:(Spec.links base @ [ Spec.link ~rel:Spec.Open stub (asn 0) ] @ chain_links)
