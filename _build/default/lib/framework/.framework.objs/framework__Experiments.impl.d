lib/framework/experiments.ml: Bgp Buffer Config Convergence Engine Experiment Float Fmt Hashtbl Int List Monitor Net Network Topology
