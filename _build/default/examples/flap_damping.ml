(* Route-flap damping vs the controller's delayed recomputation.

   An origin flaps its prefix; we compare three worlds:
   1. plain BGP            — every flap floods the network;
   2. BGP + RFC 2439       — receivers suppress the flapper (less churn,
                             but the route stays dark long after the
                             flapping stops);
   3. a 50% SDN deployment — the controller's delayed recomputation
                             batches the burst without the availability
                             penalty.

     dune exec examples/flap_damping.exe *)

let flap_world ~label ~damping ~sdn =
  let n = 8 in
  let flaps = 4 in
  if sdn = 0 then begin
    let r =
      Framework.Experiments.flap_run ~n ~flaps ~gap_s:45.0 ~damping ~seed:77
        ~config:Framework.Config.default ()
    in
    Fmt.pr "%-28s updates=%4d  recovery=%7.1fs  suppressions=%3d@." label
      r.Framework.Experiments.collector_updates_total
      r.Framework.Experiments.recovery_seconds r.Framework.Experiments.suppressions_total
  end
  else begin
    (* hybrid world: run the same storm by hand on a half-centralized clique *)
    let spec =
      Topology.Spec.with_sdn (Topology.Artificial.clique n)
        (List.init sdn (fun i -> Topology.Artificial.asn (n - 1 - i)))
    in
    let exp = Framework.Experiment.create ~seed:77 spec in
    let origin = Topology.Artificial.asn 0 in
    let prefix = Framework.Experiment.default_prefix exp origin in
    ignore (Framework.Experiment.measure exp ~prefix (fun () ->
        ignore (Framework.Experiment.announce exp origin)));
    let network = Framework.Experiment.network exp in
    let sim = Framework.Experiment.sim exp in
    let collector = Framework.Network.collector network in
    let before = Bgp.Collector.event_count collector in
    let t_final = ref Engine.Time.zero in
    for i = 1 to flaps do
      ignore (Framework.Experiment.withdraw exp origin);
      Framework.Network.run_until network
        (Engine.Time.add (Engine.Sim.now sim) (Engine.Time.sec 45));
      t_final := Engine.Sim.now sim;
      ignore (Framework.Experiment.announce exp origin);
      if i < flaps then
        Framework.Network.run_until network
          (Engine.Time.add (Engine.Sim.now sim) (Engine.Time.sec 45))
    done;
    ignore (Framework.Experiment.settle exp);
    let watcher = Framework.Experiment.watcher exp in
    let recovery =
      match Framework.Convergence.last_control_change watcher prefix with
      | Some t when Engine.Time.(t >= !t_final) ->
        Engine.Time.to_sec_f (Engine.Time.diff t !t_final)
      | Some _ | None -> 0.0
    in
    Fmt.pr "%-28s updates=%4d  recovery=%7.1fs  suppressions=  -@." label
      (Bgp.Collector.event_count collector - before)
      recovery
  end

let () =
  Fmt.pr "flap storm: 4 withdraw/announce cycles, 45 s apart, 8-AS clique@.@.";
  flap_world ~label:"plain BGP" ~damping:false ~sdn:0;
  flap_world ~label:"BGP + flap damping" ~damping:true ~sdn:0;
  flap_world ~label:"hybrid (4/8 centralized)" ~damping:false ~sdn:4;
  Fmt.pr
    "@.damping buys quiet at the price of availability (the route stays@.\
     suppressed ~49 min after the last flap); the hybrid deployment's@.\
     delayed recomputation absorbs the same burst and recovers within@.\
     one controller cycle of the flapping stopping.@."
