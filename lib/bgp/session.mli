(** Per-peer BGP session FSM (collapsed RFC 4271 states) and the
    deterministic exponential-backoff reconnect schedule. *)

type state = Idle | Connect | Established

val of_flags : open_sent:bool -> established:bool -> state
(** Derive the FSM state from the router's session flags: [Established]
    dominates, an unanswered OPEN is [Connect], otherwise [Idle]. *)

val to_string : state -> string

val to_int : state -> int
(** Stable encoding for metrics gauges: Idle = 0, Connect = 1,
    Established = 2. *)

val pp : Format.formatter -> state -> unit

type backoff = {
  retry_initial : Engine.Time.span;
  retry_multiplier : float;
  retry_max : Engine.Time.span;
  max_attempts : int;
}

val default_backoff : backoff
(** 1 s initial, doubling, capped at 32 s, at most 6 retries. *)

val delay : backoff -> Engine.Rng.t -> attempt:int -> Engine.Time.span
(** Delay before retry [attempt] (0-based): [retry_initial *
    retry_multiplier^attempt] capped at [retry_max], jittered
    multiplicatively in [0.75, 1.0] from [rng]. *)
