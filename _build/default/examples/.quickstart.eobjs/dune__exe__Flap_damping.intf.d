examples/flap_damping.mli:
