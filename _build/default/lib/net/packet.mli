(** Data-plane packets for end-to-end connectivity and loss monitoring. *)

type kind =
  | Icmp_echo of { seq : int }
  | Icmp_reply of { seq : int }
  | Payload of string

type t = { src : Ipv4.addr; dst : Ipv4.addr; ttl : int; kind : kind }

val default_ttl : int

val echo : ?ttl:int -> src:Ipv4.addr -> dst:Ipv4.addr -> int -> t

val reply_to : t -> t option
(** The echo reply for an echo request; [None] for other kinds. *)

val data : ?ttl:int -> src:Ipv4.addr -> dst:Ipv4.addr -> string -> t

val decr_ttl : t -> t option
(** [None] when the TTL is exhausted (packet must be dropped). *)

val pp : Format.formatter -> t -> unit
