lib/topology/random_models.ml: Array Artificial Engine Float Fmt Hashtbl List Net Spec
