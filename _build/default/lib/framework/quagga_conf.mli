(** Quagga/FRR bgpd configuration generation from a topology spec and the
    automatic address plan — exports an emulated experiment to a real
    testbed.  Gao–Rexford policies are encoded the way deployments do it:
    provenance communities stamped on import, valley-free deny clauses on
    export toward peers and providers. *)

val bgpd_conf : Topology.Spec.t -> Addressing.plan -> Net.Asn.t -> string
(** The bgpd.conf text for one AS.
    @raise Invalid_argument for ASNs outside the spec. *)

val all_configs : Topology.Spec.t -> (Net.Asn.t * string) list

val write_configs : Topology.Spec.t -> dir:string -> unit
(** Write [bgpd-AS<n>.conf] files into [dir] (created if missing). *)
