test/test_time.ml: Alcotest Engine Time
