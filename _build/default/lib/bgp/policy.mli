(** Relationship-based (Gao–Rexford) BGP policy templates. *)

type relationship = Customer | Provider | Peer | Sibling | Unrestricted

val relationship_to_string : relationship -> string

val default_local_pref : relationship -> int
(** Customer 130 > Sibling 120 > Peer 110 > Unrestricted 100 > Provider 90. *)

type t

val make :
  ?local_pref:int ->
  ?import_prefix_filter:(Net.Ipv4.prefix -> bool) ->
  ?export_prefix_filter:(Net.Ipv4.prefix -> bool) ->
  ?import_community:Community.t ->
  ?export_prepend:int ->
  relationship ->
  t
(** [export_prepend] adds that many extra own-ASN prepends toward the
    neighbor — the standard inbound traffic-engineering knob. *)

val relationship : t -> relationship

val local_pref : t -> int

val export_prepend : t -> int

val import : t -> me:Net.Asn.t -> prefix:Net.Ipv4.prefix -> Attrs.t -> Attrs.t option
(** Import processing: AS-path loop check, prefix filter, NO_ADVERTISE,
    local-pref stamping, provenance community.  [None] = rejected. *)

type route_provenance = From of relationship | Originated

val export_allowed : to_rel:relationship -> provenance:route_provenance -> bool
(** The valley-free export predicate. *)

val export : t -> provenance:route_provenance -> prefix:Net.Ipv4.prefix -> Attrs.t -> Attrs.t option
(** Export processing toward a neighbor governed by [t]: valley-free rule,
    prefix filter, NO_EXPORT/NO_ADVERTISE.  [None] = do not advertise. *)

val pp : Format.formatter -> t -> unit
