(** Point-to-point links between emulated network devices. *)

type id = int

type t

val make :
  ?bandwidth_bps:int ->
  ?queue_limit:int ->
  id:id ->
  a:int ->
  b:int ->
  delay:Engine.Time.span ->
  loss:float ->
  unit ->
  t
(** [bandwidth_bps] enables serialization delay and per-direction FIFO
    queuing (default: infinite capacity); [queue_limit] bounds pending
    transmissions per direction (drop-tail, default 64).
    @raise Invalid_argument on self-links, loss outside [0,1],
    non-positive bandwidth or queue limit. *)

val bandwidth_bps : t -> int option

val transmission_time : t -> size_bits:int -> Engine.Time.span

val admit : t -> now:Engine.Time.t -> dst:int -> size_bits:int -> Engine.Time.t option
(** Admit a transmission toward endpoint [dst]: the delivery instant
    (queuing + serialization + propagation), or [None] on drop-tail. *)

val id : t -> id

val endpoints : t -> int * int

val other_end : t -> int -> int
(** @raise Invalid_argument if the node is not an endpoint. *)

val connects : t -> int -> int -> bool

val is_up : t -> bool

val delay : t -> Engine.Time.span

val loss : t -> float

val set_loss : t -> float -> unit

val delivered : t -> int
(** Messages delivered over this link so far. *)

val dropped : t -> int
(** Messages dropped (loss or link-down while in flight). *)

val note_delivered : t -> unit

val note_dropped : t -> unit

val set_up_internal : t -> bool -> unit
(** Raw state flip — use {!Netsim.set_link_up} so watchers are notified. *)

val pp : Format.formatter -> t -> unit
