test/test_convergence.ml: Alcotest Core Engine Float Fmt Framework Option Topology
