test/test_heap.ml: Alcotest Engine Heap Int List Option QCheck QCheck_alcotest
