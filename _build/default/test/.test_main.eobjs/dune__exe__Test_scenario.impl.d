test/test_scenario.ml: Alcotest Bgp Engine Framework List Option Topology
