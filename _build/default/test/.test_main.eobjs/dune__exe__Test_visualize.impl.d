test/test_visualize.ml: Alcotest Engine Framework List Net Option String Topology
