(* Autonomous System numbers. *)

type t = int

let of_int n =
  if n <= 0 || n > 0xFFFF_FFFF then invalid_arg (Fmt.str "Asn.of_int: %d out of range" n);
  n

let to_int t = t

let compare = Int.compare

let equal = Int.equal

let hash = Hashtbl.hash

let pp ppf t = Fmt.pf ppf "AS%d" t

let to_string t = Fmt.str "%a" pp t

let of_string s =
  let s = String.trim s in
  let num =
    if String.length s > 2 && String.(equal (uppercase_ascii (sub s 0 2)) "AS") then
      String.sub s 2 (String.length s - 2)
    else s
  in
  match int_of_string_opt num with
  | Some n when n > 0 && n <= 0xFFFF_FFFF -> Some n
  | Some _ | None -> None

module Set = Set.Make (Int)
module Map = Map.Make (Int)
