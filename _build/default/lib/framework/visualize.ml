(* Visualization: Graphviz dot export of experiment component graphs (the
   paper's Fig. 1 equivalent), ASCII boxplot rendering for sweep results,
   and route-change timelines. *)

(* Dot graph of a topology spec: SDN members as boxes inside the cluster,
   legacy routers as ellipses, the collector and the controller/speaker
   node with their monitoring/control edges. *)
let spec_to_dot ?(with_infrastructure = true) spec =
  let buf = Buffer.create 1024 in
  let add fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  add "graph hybrid {\n";
  add "  layout=neato; overlap=false; splines=true;\n";
  add "  node [fontname=\"Helvetica\"];\n";
  List.iter
    (fun (n : Topology.Spec.node_spec) ->
      let shape, color =
        match n.Topology.Spec.role with
        | Topology.Spec.Sdn -> ("box", "lightblue")
        | Topology.Spec.Legacy -> ("ellipse", "white")
      in
      add "  \"%s\" [shape=%s style=filled fillcolor=%s];\n" n.Topology.Spec.name shape color)
    (Topology.Spec.nodes spec);
  let name_of asn =
    match Topology.Spec.find_node spec asn with
    | Some n -> n.Topology.Spec.name
    | None -> Net.Asn.to_string asn
  in
  List.iter
    (fun (l : Topology.Spec.link_spec) ->
      let style =
        match l.Topology.Spec.rel with
        | Topology.Spec.C2p -> "[dir=forward arrowhead=normal label=\"c2p\"]"
        | Topology.Spec.P2p -> "[style=dashed label=\"p2p\"]"
        | Topology.Spec.S2s -> "[style=dotted label=\"s2s\"]"
        | Topology.Spec.Open -> "[]"
      in
      add "  \"%s\" -- \"%s\" %s;\n" (name_of l.Topology.Spec.a) (name_of l.Topology.Spec.b)
        style)
    (Topology.Spec.links spec);
  if with_infrastructure then begin
    add "  \"collector\" [shape=cylinder style=filled fillcolor=lightyellow];\n";
    List.iter
      (fun (n : Topology.Spec.node_spec) ->
        add "  \"collector\" -- \"%s\" [style=dotted color=gray];\n" n.Topology.Spec.name)
      (Topology.Spec.nodes spec);
    if Topology.Spec.sdn_asns spec <> [] then begin
      add "  \"controller\\n+ cluster BGP speaker\" [shape=component style=filled fillcolor=lightpink];\n";
      List.iter
        (fun asn ->
          add "  \"controller\\n+ cluster BGP speaker\" -- \"%s\" [style=bold color=red];\n"
            (name_of asn))
        (Topology.Spec.sdn_asns spec)
    end
  end;
  add "}\n";
  Buffer.contents buf

(* ASCII boxplot chart for a sweep series: one row per point, the box
   drawn over a fixed-width scale. *)
let series_to_ascii ?(width = 56) (s : Experiments.series) =
  let buf = Buffer.create 1024 in
  let add fmt = Fmt.kstr (Buffer.add_string buf) fmt in
  let maxv =
    List.fold_left
      (fun acc (p : Experiments.point) -> Float.max acc p.Experiments.box.Engine.Stats.maximum)
      0.0 s.Experiments.points
  in
  let maxv = if maxv <= 0.0 then 1.0 else maxv in
  let col v = int_of_float (v /. maxv *. float_of_int (width - 1)) in
  add "%s (convergence seconds, scale 0..%.1f)\n" s.Experiments.label maxv;
  List.iter
    (fun (p : Experiments.point) ->
      let b = p.Experiments.box in
      let line = Bytes.make width ' ' in
      let put i c = if i >= 0 && i < width then Bytes.set line i c in
      let lo = col b.Engine.Stats.minimum
      and q1 = col b.Engine.Stats.q1
      and md = col b.Engine.Stats.median
      and q3 = col b.Engine.Stats.q3
      and hi = col b.Engine.Stats.maximum in
      for i = lo to hi do
        put i '-'
      done;
      for i = q1 to q3 do
        put i '='
      done;
      put lo '|';
      put hi '|';
      put md '#';
      add "%6.1f %s med=%.1f\n" p.Experiments.x (Bytes.to_string line) b.Engine.Stats.median)
    s.Experiments.points;
  Buffer.contents buf

(* Route-change timeline for a prefix, from parsed log entries. *)
let timeline entries prefix =
  let buf = Buffer.create 512 in
  List.iter
    (fun (e : Logparse.entry) ->
      Buffer.add_string buf (Fmt.str "%a\n" Logparse.pp_entry e))
    (Logparse.route_changes entries prefix);
  Buffer.contents buf
