(** Declarative timed experiment scenarios, runnable from code or from the
    text format `hybridsim scenario` replays. *)

type action =
  | Announce of Net.Asn.t * Net.Ipv4.prefix option  (** [None] = default prefix *)
  | Withdraw of Net.Asn.t * Net.Ipv4.prefix option
  | Fail_link of Net.Asn.t * Net.Asn.t
  | Recover_link of Net.Asn.t * Net.Asn.t
  | Crash_node of Net.Asn.t  (** crash the AS's router or switch process *)
  | Restart_node of Net.Asn.t
  | Partition of Net.Asn.t * Net.Asn.t option
      (** cut the link to another AS, or ([None], written [ctrl] in the
          text format) the member's control channel to the cluster head *)
  | Flap of Net.Asn.t * Net.Asn.t * int
      (** n fail/recover cycles on the link, 1 s period (500 ms down,
          500 ms up; ends recovered) *)
  | Heal  (** bring every failed link back up *)
  | Ping of Net.Asn.t * Net.Asn.t
  | Note of string

type step = { at : Engine.Time.t; action : action }

type t

val make : title:string -> step list -> t
(** Steps are sorted by time. *)

val at : float -> action -> step
(** [at seconds action]. *)

val title : t -> string

val steps : t -> step list

val pp_action : Format.formatter -> action -> unit

val render : t -> string
(** The text format: ["@SECONDS ACTION ARGS"] lines with ['#'] comments. *)

val parse_string : ?title:string -> string -> (t, string) result

val parse_file : string -> (t, string) result

val run : Experiment.t -> t -> (Engine.Time.t * action) list
(** Schedule all steps, run to quiescence, return the executed log. *)
