(** The union message type carried by the emulated fabric. *)

type t =
  | Bgp of Bgp.Message.t
  | Openflow of Sdn.Openflow.t
  | Data of Net.Packet.t

val pp : Format.formatter -> t -> unit
