lib/net/netsim.ml: Engine Fmt Graph Hashtbl Int Link List Option
