(** The experiment lifecycle API: build a topology, bring BGP up,
    announce/withdraw prefixes, fail/recover links, measure convergence —
    the paper's Mininet-BGP command extensions. *)

type t

val create :
  ?config:Config.t -> ?seed:int -> ?originate_all:bool -> Topology.Spec.t -> t
(** Build the emulation, open all sessions and run to quiescence.  With
    [originate_all], every AS announces its default prefix during
    bootstrap. *)

val network : t -> Network.t

val watcher : t -> Convergence.t

val sim : t -> Engine.Sim.t

val now : t -> Engine.Time.t

val metrics : t -> Engine.Metrics.t
(** The simulation's metrics registry. *)

val final_metrics : t -> Engine.Metrics.snapshot
(** The registry frozen at the current simulated instant. *)

val default_prefix : t -> Net.Asn.t -> Net.Ipv4.prefix

val announce : ?prefix:Net.Ipv4.prefix -> t -> Net.Asn.t -> Net.Ipv4.prefix
(** Originate (default prefix unless given); returns the prefix used. *)

val withdraw : ?prefix:Net.Ipv4.prefix -> t -> Net.Asn.t -> Net.Ipv4.prefix

val fail_link : t -> Net.Asn.t -> Net.Asn.t -> unit

val recover_link : t -> Net.Asn.t -> Net.Asn.t -> unit

val settle : ?max_events:int -> t -> Engine.Time.t

val measure :
  ?max_events:int -> t -> prefix:Net.Ipv4.prefix -> (unit -> unit) -> Convergence.measurement
(** Perform the action and run to quiescence, measuring the prefix's
    convergence from the moment of the action. *)

val convergence_seconds : Convergence.measurement -> float
(** NaN when the event changed nothing. *)

val reachable : t -> src:Net.Asn.t -> dst:Net.Asn.t -> bool

val walk : t -> src:Net.Asn.t -> dst:Net.Asn.t -> Monitor.outcome
