(* The emulated network fabric: nodes, links, and delayed message delivery.

   Parametric in the message payload so the protocol layers (BGP, OpenFlow,
   data packets) define their own message types without this module
   depending on them.  Messages in flight when their link fails are dropped
   at delivery time, like frames on a cut wire. *)

type 'a handler = from:int -> 'a -> unit

type link_watcher = link:Link.t -> peer:int -> up:bool -> unit

type 'a node = {
  id : int;
  name : string;
  mutable handler : 'a handler option;
  mutable link_watcher : link_watcher option;
}

type 'a t = {
  sim : Engine.Sim.t;
  rng : Engine.Rng.t;
  nodes : (int, 'a node) Hashtbl.t;
  links : (Link.id, Link.t) Hashtbl.t;
  by_pair : (int * int, Link.id) Hashtbl.t;
  mutable next_link_id : int;
  sent_c : Engine.Metrics.Counter.t;
  delivered_c : Engine.Metrics.Counter.t;
  dropped_c : Engine.Metrics.Counter.t;
}

let create sim =
  let m = Engine.Sim.metrics sim in
  {
    sim;
    rng = Engine.Rng.split (Engine.Sim.rng sim);
    nodes = Hashtbl.create 64;
    links = Hashtbl.create 64;
    by_pair = Hashtbl.create 64;
    next_link_id = 0;
    sent_c =
      Engine.Metrics.counter m ~help:"messages accepted onto a link" "net_messages_sent_total";
    delivered_c =
      Engine.Metrics.counter m ~help:"messages handed to a receiver"
        "net_messages_delivered_total";
    dropped_c =
      Engine.Metrics.counter m
        ~help:"messages lost to link failure, loss, queue overflow or no handler"
        "net_messages_dropped_total";
  }

let sim t = t.sim

let pair u v = if u < v then (u, v) else (v, u)

let add_node t ~id ~name =
  if Hashtbl.mem t.nodes id then invalid_arg (Fmt.str "Netsim.add_node: duplicate id %d" id);
  Hashtbl.replace t.nodes id { id; name; handler = None; link_watcher = None }

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Fmt.str "Netsim: unknown node %d" id)

let mem_node t id = Hashtbl.mem t.nodes id

let node_name t id = (node t id).name

let node_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes [] |> List.sort Int.compare

let set_handler t id h = (node t id).handler <- Some h

let set_link_watcher t id w = (node t id).link_watcher <- Some w

let add_link ?(delay = Engine.Time.ms 2) ?(loss = 0.0) ?bandwidth_bps ?queue_limit t u v =
  ignore (node t u);
  ignore (node t v);
  if Hashtbl.mem t.by_pair (pair u v) then
    invalid_arg (Fmt.str "Netsim.add_link: duplicate link %d<->%d" u v);
  let id = t.next_link_id in
  t.next_link_id <- id + 1;
  let link = Link.make ?bandwidth_bps ?queue_limit ~id ~a:u ~b:v ~delay ~loss () in
  Hashtbl.replace t.links id link;
  Hashtbl.replace t.by_pair (pair u v) id;
  link

let link_by_id t id = Hashtbl.find_opt t.links id

let link_between t u v =
  Option.bind (Hashtbl.find_opt t.by_pair (pair u v)) (fun id -> Hashtbl.find_opt t.links id)

let links t =
  Hashtbl.fold (fun _ l acc -> l :: acc) t.links []
  |> List.sort (fun a b -> Int.compare (Link.id a) (Link.id b))

let neighbors t id =
  List.filter_map
    (fun l ->
      let a, b = Link.endpoints l in
      if a = id then Some b else if b = id then Some a else None)
    (links t)

let set_link_up t link up =
  if Link.is_up link <> up then begin
    Link.set_up_internal link up;
    let a, b = Link.endpoints link in
    Engine.Sim.logf t.sim ~node:"net" ~category:"link" "link %d<->%d %s" a b
      (if up then "up" else "down");
    let notify endpoint peer =
      match (node t endpoint).link_watcher with
      | Some w -> w ~link ~peer ~up
      | None -> ()
    in
    notify a b;
    notify b a
  end

let fail_link_between t u v =
  match link_between t u v with
  | Some l ->
    set_link_up t l false;
    true
  | None -> false

let recover_link_between t u v =
  match link_between t u v with
  | Some l ->
    set_link_up t l true;
    true
  | None -> false

let drop t link =
  Link.note_dropped link;
  Engine.Metrics.Counter.inc t.dropped_c

let deliver t link ~src ~dst payload () =
  if not (Link.is_up link) then drop t link
  else if Link.loss link > 0.0 && Engine.Rng.chance t.rng (Link.loss link) then
    drop t link
  else begin
    match (node t dst).handler with
    | None -> drop t link
    | Some h ->
      Link.note_delivered link;
      Engine.Metrics.Counter.inc t.delivered_c;
      h ~from:src payload
  end

(* [size_bits] matters only on bandwidth-limited links, where it adds
   serialization delay and FIFO queuing (drop-tail when the direction's
   queue is full). *)
let send ?(size_bits = 8 * 64) t ~src ~dst payload =
  match link_between t src dst with
  | None -> false
  | Some link when not (Link.is_up link) -> false
  | Some link -> (
    match Link.admit link ~now:(Engine.Sim.now t.sim) ~dst ~size_bits with
    | None ->
      drop t link;
      true (* accepted by the sender, lost in the queue *)
    | Some delivery_at ->
      Engine.Metrics.Counter.inc t.sent_c;
      ignore
        (Engine.Sim.schedule_at ~category:"net.deliver" t.sim delivery_at
           (deliver t link ~src ~dst payload));
      true)

(* Current topology restricted to links that are up. *)
let up_graph t =
  let g = Graph.create () in
  List.iter (fun id -> Graph.add_node g id) (node_ids t);
  List.iter
    (fun l ->
      if Link.is_up l then begin
        let a, b = Link.endpoints l in
        Graph.add_edge g a b
      end)
    (links t);
  g
