test/test_wire_transport.ml: Alcotest Bgp Float Framework List Net Option Topology
