(* Engine.Metrics, Engine.Sampler, Framework.Telemetry and the Trace
   eviction fix: primitive semantics, label canonicalization, snapshot
   immutability, exporter goldens, Prometheus round-trip, and the
   determinism guarantee (same seed => byte-identical exports). *)

open Engine

let test_counter_semantics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "requests_total" in
  Metrics.Counter.inc c;
  Metrics.Counter.add c 4;
  Alcotest.(check int) "inc + add" 5 (Metrics.Counter.value c);
  (match Metrics.Counter.add c (-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative counter increment must raise");
  Alcotest.(check int) "unchanged after rejected add" 5 (Metrics.Counter.value c)

let test_gauge_semantics () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "depth" in
  Metrics.Gauge.set g 3.5;
  Metrics.Gauge.add g (-1.5);
  Alcotest.(check (float 1e-9)) "set + add" 2.0 (Metrics.Gauge.value g)

let test_histogram_semantics () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[| 1.0; 10.0 |] "latency" in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 5.0; 50.0 ];
  Alcotest.(check int) "count" 3 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 55.5 (Metrics.Histogram.sum h);
  let snap = Metrics.snapshot m ~at:Time.zero in
  match Metrics.find_sample snap "latency" with
  | Some { value = Histogram_v hv; _ } ->
    Alcotest.(check (list (pair (float 1e-9) int)))
      "cumulative buckets, +Inf last"
      [ (1.0, 1); (10.0, 2); (infinity, 3) ]
      hv.buckets
  | _ -> Alcotest.fail "histogram sample missing"

let test_registration_idempotent_and_canonical () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~labels:[ ("b", "2"); ("a", "1") ] "x_total" in
  let b = Metrics.counter m ~labels:[ ("a", "1"); ("b", "2") ] "x_total" in
  Metrics.Counter.inc a;
  Metrics.Counter.inc b;
  (* Label order does not matter: both registrations hit the same series. *)
  Alcotest.(check int) "same handle through either order" 2 (Metrics.Counter.value a);
  let snap = Metrics.snapshot m ~at:Time.zero in
  (* Query labels are canonicalized too: any order finds the series. *)
  (match Metrics.find_sample snap ~labels:[ ("b", "2"); ("a", "1") ] "x_total" with
  | Some s ->
    Alcotest.(check (list (pair string string)))
      "labels canonicalized (sorted by key)"
      [ ("a", "1"); ("b", "2") ]
      s.Metrics.labels
  | None -> Alcotest.fail "sample missing");
  (* The same series registered as a different kind is a programming error. *)
  match Metrics.gauge m ~labels:[ ("a", "1"); ("b", "2") ] "x_total" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise"

let test_snapshot_isolation () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c_total" in
  Metrics.Counter.inc c;
  let before = Metrics.snapshot m ~at:Time.zero in
  Metrics.Counter.add c 10;
  let after = Metrics.snapshot m ~at:(Time.ms 1) in
  Alcotest.(check (option (float 1e-9))) "old snapshot frozen" (Some 1.0)
    (Metrics.value before "c_total");
  Alcotest.(check (option (float 1e-9))) "new snapshot sees mutation" (Some 11.0)
    (Metrics.value after "c_total")

let test_on_collect () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "pulled" in
  let source = ref 0.0 in
  Metrics.on_collect m (fun () -> Metrics.Gauge.set g !source);
  source := 42.0;
  let snap = Metrics.snapshot m ~at:Time.zero in
  Alcotest.(check (option (float 1e-9))) "collect callback ran" (Some 42.0)
    (Metrics.value snap "pulled")

(* A tiny fixed registry exercised against exact export text, so format
   drift is caught deliberately rather than discovered by downstream
   parsers. *)
let golden_snapshot () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"updates seen" ~labels:[ ("node", "AS65001") ] "upd_total" in
  Metrics.Counter.add c 7;
  let g = Metrics.gauge m "rib_routes" in
  Metrics.Gauge.set g 3.0;
  let h = Metrics.histogram m ~buckets:[| 0.5 |] "conv_seconds" in
  Metrics.Histogram.observe h 0.25;
  Metrics.Histogram.observe h 2.0;
  Metrics.snapshot m ~at:(Time.ms 1500)

let test_prometheus_golden () =
  Alcotest.(check string) "prometheus exposition"
    "# TYPE conv_seconds histogram\n\
     conv_seconds_bucket{le=\"0.5\"} 1\n\
     conv_seconds_bucket{le=\"+Inf\"} 2\n\
     conv_seconds_sum 2.25\n\
     conv_seconds_count 2\n\
     # TYPE rib_routes gauge\n\
     rib_routes 3\n\
     # HELP upd_total updates seen\n\
     # TYPE upd_total counter\n\
     upd_total{node=\"AS65001\"} 7\n"
    (Metrics.to_prometheus (golden_snapshot ()))

let test_jsonl_golden () =
  Alcotest.(check string) "jsonl rows"
    "{\"t_us\":1500000,\"metric\":\"conv_seconds\",\"labels\":{},\"type\":\"histogram\",\"count\":2,\"sum\":2.25,\"buckets\":[{\"le\":\"0.5\",\"count\":1},{\"le\":\"+Inf\",\"count\":2}]}\n\
     {\"t_us\":1500000,\"metric\":\"rib_routes\",\"labels\":{},\"type\":\"gauge\",\"value\":3}\n\
     {\"t_us\":1500000,\"metric\":\"upd_total\",\"labels\":{\"node\":\"AS65001\"},\"type\":\"counter\",\"value\":7}\n"
    (Metrics.to_jsonl (golden_snapshot ()))

let test_csv_golden () =
  Alcotest.(check string) "csv rows"
    "t_us,metric,labels,type,value\n\
     1500000,conv_seconds_bucket,le=0.5,histogram,1\n\
     1500000,conv_seconds_bucket,le=+Inf,histogram,2\n\
     1500000,conv_seconds_sum,,histogram,2.25\n\
     1500000,conv_seconds_count,,histogram,2\n\
     1500000,rib_routes,,gauge,3\n\
     1500000,upd_total,node=AS65001,counter,7\n"
    (Metrics.to_csv (golden_snapshot ()))

let test_prometheus_roundtrip () =
  let snap = golden_snapshot () in
  match Metrics.parse_prometheus (Metrics.to_prometheus snap) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    (* 4 histogram-expanded rows + gauge + counter. *)
    Alcotest.(check int) "sample count" 6 (List.length parsed);
    let find name labels =
      List.find_opt
        (fun p -> p.Metrics.p_name = name && p.Metrics.p_labels = labels)
        parsed
    in
    (match find "upd_total" [ ("node", "AS65001") ] with
    | Some p -> Alcotest.(check (float 1e-9)) "counter value survives" 7.0 p.Metrics.p_value
    | None -> Alcotest.fail "upd_total{node} missing after round-trip");
    (match find "conv_seconds_bucket" [ ("le", "+Inf") ] with
    | Some p -> Alcotest.(check (float 1e-9)) "+Inf bucket" 2.0 p.Metrics.p_value
    | None -> Alcotest.fail "+Inf bucket missing after round-trip")

let test_log_buckets () =
  let b = Metrics.log_buckets ~start:0.001 ~factor:2.0 ~count:4 () in
  Alcotest.(check (array (float 1e-12))) "geometric bounds"
    [| 0.001; 0.002; 0.004; 0.008 |] b

(* The Trace eviction fix: capacity 1 must retain the newest record
   instead of looping, and warn_count must survive eviction. *)
let test_trace_capacity_one () =
  let tr = Trace.create ~capacity:1 () in
  Trace.record tr ~time:Time.zero ~node:"a" ~category:"t" "first";
  Trace.record tr ~time:(Time.ms 1) ~node:"a" ~category:"t" ~level:Trace.Warn "second";
  let entries = Trace.records tr in
  Alcotest.(check int) "retains one record" 1 (List.length entries);
  Alcotest.(check string) "the newest one" "second" (List.hd entries).Trace.message;
  Alcotest.(check int) "total counts evicted records" 2 (Trace.total tr);
  Alcotest.(check int) "warn count" 1 (Trace.warn_count tr)

(* The sampler must never keep the queue alive on its own, and must
   resume when new work arrives after a drain. *)
let test_sampler_dormant_and_resume () =
  let sim = Sim.create () in
  let seen = ref 0 in
  let sampler =
    Sampler.start sim ~interval:(Time.ms 10) ~on_sample:(fun _ -> incr seen)
  in
  ignore (Sim.schedule_at sim (Time.ms 25) ignore);
  (match Sim.run sim with
  | Sim.Exhausted -> ()
  | _ -> Alcotest.fail "sampler must not prevent queue exhaustion");
  let after_first = !seen in
  Alcotest.(check bool) "sampled during first phase" true (after_first >= 2);
  (* New work after the drain: the on_wake hook must re-arm sampling. *)
  ignore (Sim.schedule_after sim (Time.ms 30) ignore);
  ignore (Sim.run sim);
  Alcotest.(check bool) "resumed after wake" true (!seen > after_first);
  Sampler.stop sampler;
  ignore (Sim.schedule_after sim (Time.ms 30) ignore);
  let before = !seen in
  ignore (Sim.run sim);
  Alcotest.(check int) "stopped sampler stays quiet" before !seen

let test_sim_category_counters () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at ~category:"net.deliver" sim (Time.ms 1) ignore);
  ignore (Sim.schedule_at ~category:"net.deliver" sim (Time.ms 2) ignore);
  let h = Sim.schedule_at ~category:"bgp.process" sim (Time.ms 3) ignore in
  Sim.cancel h;
  ignore (Sim.run sim);
  let snap = Metrics.snapshot (Sim.metrics sim) ~at:(Sim.now sim) in
  let v ?labels name = Metrics.value snap ?labels name in
  Alcotest.(check (option (float 1e-9))) "scheduled{net.deliver}" (Some 2.0)
    (v ~labels:[ ("category", "net.deliver") ] "sim_events_scheduled_total");
  Alcotest.(check (option (float 1e-9))) "executed{net.deliver}" (Some 2.0)
    (v ~labels:[ ("category", "net.deliver") ] "sim_events_executed_total");
  Alcotest.(check (option (float 1e-9))) "cancelled reaped" (Some 1.0)
    (v "sim_events_cancelled_total")

(* End-to-end determinism: two whole-stack runs with the same seed must
   export byte-identical JSONL. *)
let test_same_seed_byte_identical () =
  let run () =
    let r =
      Framework.Experiments.clique_run ~n:6 ~sdn:2
        ~event:Framework.Experiments.Withdrawal ~seed:11
        ~config:Framework.Config.fast_test ()
    in
    Metrics.to_jsonl r.Framework.Experiments.metrics
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "export is non-trivial" true (String.length a > 1000);
  Alcotest.(check string) "byte-identical across identical seeds" a b

let test_telemetry_validate () =
  let snap = golden_snapshot () in
  (match Framework.Telemetry.validate Framework.Telemetry.Jsonl (Metrics.to_jsonl snap) with
  | Ok n -> Alcotest.(check int) "jsonl rows validated" 3 n
  | Error e -> Alcotest.fail e);
  (match
     Framework.Telemetry.validate Framework.Telemetry.Prometheus (Metrics.to_prometheus snap)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match Framework.Telemetry.validate Framework.Telemetry.Csv (Metrics.to_csv snap) with
  | Ok n -> Alcotest.(check int) "csv rows validated" 6 n
  | Error e -> Alcotest.fail e);
  match Framework.Telemetry.validate Framework.Telemetry.Jsonl "{\"broken\":\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed JSONL must be rejected"

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "gauge semantics" `Quick test_gauge_semantics;
    Alcotest.test_case "histogram semantics" `Quick test_histogram_semantics;
    Alcotest.test_case "registration idempotent + canonical labels" `Quick
      test_registration_idempotent_and_canonical;
    Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
    Alcotest.test_case "on_collect pull gauges" `Quick test_on_collect;
    Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
    Alcotest.test_case "jsonl golden" `Quick test_jsonl_golden;
    Alcotest.test_case "csv golden" `Quick test_csv_golden;
    Alcotest.test_case "prometheus round-trip" `Quick test_prometheus_roundtrip;
    Alcotest.test_case "log bucket bounds" `Quick test_log_buckets;
    Alcotest.test_case "trace capacity-1 retention" `Quick test_trace_capacity_one;
    Alcotest.test_case "sampler dormant + resume" `Quick test_sampler_dormant_and_resume;
    Alcotest.test_case "sim category counters" `Quick test_sim_category_counters;
    Alcotest.test_case "same seed, byte-identical export" `Quick
      test_same_seed_byte_identical;
    Alcotest.test_case "telemetry validators" `Quick test_telemetry_validate;
  ]
