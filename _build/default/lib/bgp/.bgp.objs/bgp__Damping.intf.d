lib/bgp/damping.mli: Engine Format Net
