(* Engine.Rng: determinism, stream independence, range contracts. *)

open Engine

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let da = List.init 50 (fun _ -> Rng.next_int64 a) in
  let db = List.init 50 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "same seed, same stream" true (da = db)

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false
    (List.init 10 (fun _ -> Rng.next_int64 a) = List.init 10 (fun _ -> Rng.next_int64 b))

let test_split_independence () =
  (* Drawing from a split stream must not perturb the parent beyond the
     single split draw. *)
  let parent1 = Rng.create 7 in
  let child1 = Rng.split parent1 in
  ignore (List.init 100 (fun _ -> Rng.next_int64 child1));
  let after_child_use = List.init 10 (fun _ -> Rng.next_int64 parent1) in
  let parent2 = Rng.create 7 in
  let _child2 = Rng.split parent2 in
  let reference = List.init 10 (fun _ -> Rng.next_int64 parent2) in
  Alcotest.(check bool) "parent unaffected by child draws" true (after_child_use = reference)

let test_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.fail "int out of bounds"
  done

let test_int_range_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int_range rng 10 20 in
    if v < 10 || v > 20 then Alcotest.fail "int_range out of bounds"
  done

let test_float_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "float out of bounds"
  done

let test_invalid_args () =
  let rng = Rng.create 6 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng ([] : int list)))

let test_jitter_bounds () =
  let rng = Rng.create 8 in
  for _ = 1 to 200 do
    let s = Rng.jitter_span rng (Time.sec 30) ~lo:0.75 ~hi:1.0 in
    let sec = Time.to_sec_f s in
    if sec < 22.5 -. 1e-6 || sec >= 30.0 +. 1e-6 then
      Alcotest.failf "jitter out of bounds: %f" sec
  done

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      List.sort Int.compare (Rng.shuffle rng l) = List.sort Int.compare l)

let prop_sample_size =
  QCheck.Test.make ~name:"sample size is min(k, |l|)" ~count:200
    QCheck.(triple small_int small_nat (list small_int))
    (fun (seed, k, l) ->
      let rng = Rng.create seed in
      List.length (Rng.sample rng k l) = min k (List.length l))

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_range bounds" `Quick test_int_range_bounds;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
    Alcotest.test_case "mrai jitter bounds" `Quick test_jitter_bounds;
    QCheck_alcotest.to_alcotest prop_shuffle_permutation;
    QCheck_alcotest.to_alcotest prop_sample_size;
  ]
