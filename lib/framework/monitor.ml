(* End-to-end connectivity and loss monitoring.

   Two complementary tools, mirroring the original framework's ping-based
   host monitoring:

   - a zero-time *walker* over the programmed forwarding state (legacy
     FIBs + SDN flow tables) that classifies a path as delivered, black-
     holed, or looping — used for "is connectivity stable" checks; and
   - a *probe stream* of real data packets through the fabric (delays,
     loss, in-flight drops included), whose delivery ratio over time is
     the loss measurement — this is the paper's end-to-end video proxy. *)

type outcome =
  | Delivered of Net.Asn.t list (* AS-level path, source first *)
  | Blackhole of Net.Asn.t list
  | Loop of Net.Asn.t list
  | Ttl_exceeded of Net.Asn.t list

let outcome_path = function
  | Delivered p | Blackhole p | Loop p | Ttl_exceeded p -> p

let is_delivered = function
  | Delivered _ -> true
  | Blackhole _ | Loop _ | Ttl_exceeded _ -> false

(* Walk the forwarding state from [src] toward [dst_addr]. *)
let walk ?(max_hops = 64) network ~src ~dst_addr =
  let rec go asn visited hops =
    let path = List.rev (asn :: visited) in
    if hops > max_hops then Ttl_exceeded path
    else
      match Network.forwarding_at network asn dst_addr with
      | Network.Local -> Delivered path
      | Network.No_route -> Blackhole path
      | Network.Next node -> (
        match Network.asn_of_node network node with
        | None -> Blackhole path
        | Some next ->
          (* A next hop over a failed link drops traffic on the wire. *)
          if not (Network.link_up network asn next) then Blackhole path
          else if List.exists (Net.Asn.equal next) (asn :: visited) then Loop (path @ [ next ])
          else go next (asn :: visited) (hops + 1))
  in
  go src [] 0

let reachable network ~src ~dst =
  let dst_addr = (Network.plan network).Addressing.host_addr dst in
  is_delivered (walk network ~src ~dst_addr)

(* All-pairs reachability for the ASes that currently originate their
   default prefix (others have no address to reach). *)
let connectivity_matrix network ~origins =
  let plan = Network.plan network in
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst ->
          if Net.Asn.equal src dst then None
          else
            Some (src, dst, is_delivered (walk network ~src ~dst_addr:(plan.Addressing.host_addr dst))))
        origins)
    (Topology.Spec.asns (Network.spec network))

(* Traceroute: the walker annotated with cumulative one-way latency from
   the fabric's link delays. *)
type trace_hop = { hop : Net.Asn.t; cumulative : Engine.Time.span }

let traceroute network ~src ~dst =
  let dst_addr = (Network.plan network).Addressing.host_addr dst in
  let outcome = walk network ~src ~dst_addr in
  let rec annotate acc cumulative = function
    | [] -> List.rev acc
    | [ last ] -> List.rev ({ hop = last; cumulative } :: acc)
    | a :: (b :: _ as rest) ->
      let step = Option.value (Network.link_delay network a b) ~default:Engine.Time.span_zero in
      annotate
        ({ hop = a; cumulative } :: acc)
        (Engine.Time.span_add cumulative step)
        rest
  in
  (outcome, annotate [] Engine.Time.span_zero (outcome_path outcome))

let pp_traceroute ppf (outcome, hops) =
  let status =
    match outcome with
    | Delivered _ -> "reached"
    | Blackhole _ -> "blackhole"
    | Loop _ -> "loop"
    | Ttl_exceeded _ -> "ttl exceeded"
  in
  List.iteri
    (fun i { hop; cumulative } ->
      Fmt.pf ppf "%2d  %a  %.2f ms@." (i + 1) Net.Asn.pp hop
        (Engine.Time.to_ms_f cumulative))
    hops;
  Fmt.pf ppf "-- %s@." status

(* --- Probe streams ------------------------------------------------------ *)

type probe_stats = {
  mutable sent : int;
  mutable received : int;
  mutable replies : int;
  mutable rtt_sum_us : int;
}

type stream = {
  src : Net.Asn.t;
  dst : Net.Asn.t;
  stats : probe_stats;
  mutable sent_at : (int * Engine.Time.t) list;
}

let loss_ratio s =
  if s.stats.sent = 0 then 0.0
  else 1.0 -. (float_of_int s.stats.replies /. float_of_int s.stats.sent)

let mean_rtt_ms s =
  if s.stats.replies = 0 then nan
  else float_of_int s.stats.rtt_sum_us /. float_of_int s.stats.replies /. 1000.0

(* Send [count] echo probes from src's host to dst's host, [interval]
   apart, starting now.  Replies are matched by sequence number. *)
let start_stream network ~src ~dst ~interval ~count =
  let plan = Network.plan network in
  let sim = Network.sim network in
  let m = Engine.Sim.metrics sim in
  (* Shared across streams: idempotent registration returns one handle. *)
  let sent_c = Engine.Metrics.counter m ~help:"echo probes injected" "monitor_probes_sent_total" in
  let received_c =
    Engine.Metrics.counter m ~help:"echo probes reaching their target"
      "monitor_probes_received_total"
  in
  let replies_c =
    Engine.Metrics.counter m ~help:"echo replies returning to the source"
      "monitor_probe_replies_total"
  in
  let stream =
    { src; dst; stats = { sent = 0; received = 0; replies = 0; rtt_sum_us = 0 }; sent_at = [] }
  in
  let src_addr = plan.Addressing.host_addr src in
  let dst_addr = plan.Addressing.host_addr dst in
  Network.subscribe_deliver network (fun asn packet ->
      match packet.Net.Packet.kind with
      | Net.Packet.Icmp_echo _ ->
        if Net.Asn.equal asn dst && Net.Ipv4.equal_addr packet.Net.Packet.dst dst_addr then begin
          stream.stats.received <- stream.stats.received + 1;
          Engine.Metrics.Counter.inc received_c
        end
      | Net.Packet.Icmp_reply { seq } ->
        if Net.Asn.equal asn src && Net.Ipv4.equal_addr packet.Net.Packet.dst src_addr then begin
          match List.assoc_opt seq stream.sent_at with
          | Some t0 ->
            stream.stats.replies <- stream.stats.replies + 1;
            Engine.Metrics.Counter.inc replies_c;
            stream.stats.rtt_sum_us <-
              stream.stats.rtt_sum_us
              + Engine.Time.to_us (Engine.Time.diff (Engine.Sim.now sim) t0)
          | None -> ()
        end
      | Net.Packet.Payload _ -> ());
  for i = 0 to count - 1 do
    ignore
      (Engine.Sim.schedule_after ~category:"monitor.probe" sim
         (Engine.Time.span_scale interval (float_of_int i))
         (fun () ->
           stream.stats.sent <- stream.stats.sent + 1;
           Engine.Metrics.Counter.inc sent_c;
           stream.sent_at <- (i, Engine.Sim.now sim) :: stream.sent_at;
           Network.inject network ~src (Net.Packet.echo ~src:src_addr ~dst:dst_addr i)))
  done;
  stream

let pp_outcome ppf o =
  let kind, path =
    match o with
    | Delivered p -> ("delivered", p)
    | Blackhole p -> ("blackhole", p)
    | Loop p -> ("loop", p)
    | Ttl_exceeded p -> ("ttl-exceeded", p)
  in
  Fmt.pf ppf "%s via [%a]" kind Fmt.(list ~sep:sp Net.Asn.pp) path
