(** Deterministic discrete-event scheduler.

    Events fire in (time, insertion sequence) order; with the splittable
    {!Rng} this makes runs bit-reproducible for a given seed. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val create : ?seed:int -> ?trace:bool -> unit -> t

val now : t -> Time.t

val rng : t -> Rng.t
(** The root RNG; split per subsystem rather than drawing directly. *)

val trace : t -> Trace.t

val pending : t -> int
(** Events still queued (including cancelled ones not yet reaped). *)

val executed : t -> int
(** Events executed so far. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** @raise Invalid_argument if the instant is in the past. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> handle

val cancel : handle -> unit

val cancelled : handle -> bool

val step : t -> bool
(** Execute the next event; [false] when the queue is empty. *)

type run_result = Exhausted | Reached_limit | Reached_time of Time.t

val run : ?until:Time.t -> ?max_events:int -> t -> run_result
(** Run until the queue drains, [max_events] fire, or the next event lies
    beyond [until] (in which case the clock advances to [until]). *)

val log : t -> node:string -> category:string -> ?level:Trace.level -> string -> unit

val logf :
  t ->
  node:string ->
  category:string ->
  ?level:Trace.level ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
