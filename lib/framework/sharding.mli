(** Sharded single-run execution: one emulation partitioned across N
    OCaml domains, bit-identical to the same run at [shards = 1].

    Every shard replicates the full {!Network} construction from the
    same (spec, config, seed) — so all per-component RNG streams are
    split identically — but executes only the fabric nodes it owns per
    the deterministic {!Topology.Partition}.  Cross-shard deliveries are
    buffered per epoch and exchanged at {!Engine.Shard}'s barrier; every
    sim runs in {!Engine.Sim.Canonical} order with partition-independent
    event keys, which makes the merged schedule independent of the
    partitioning.  See DESIGN.md "Sharded execution".

    Limits: lossy links are refused (their drop draw would consume a
    shared RNG stream in partition-dependent order) and causal tracing
    is forced off (span ids are execution-order-local to a shard). *)

type command =
  | Originate of Net.Asn.t * Net.Ipv4.prefix
  | Withdraw of Net.Asn.t * Net.Ipv4.prefix
  | Fail_link of Net.Asn.t * Net.Asn.t
  | Recover_link of Net.Asn.t * Net.Asn.t

type phase = { commands : command list; measured : Net.Ipv4.prefix option }
(** One experiment phase: commands applied atomically at a single driver
    instant once the previous phase settled, optionally measuring the
    convergence of one prefix. *)

type phase_outcome = {
  started_at : Engine.Time.t;  (** the instant the phase's commands executed *)
  ended_at : Engine.Time.t;  (** global quiescence closing the phase *)
  collector_updates : int;  (** collector events during the phase *)
  measurement : Convergence.measurement option;
}

type result = {
  shards : int;
  partition_sizes : int array;
  cut_links : int;
  phases : phase_outcome list;
  metrics : Engine.Metrics.snapshot;  (** merged across shards *)
  collector_last : (Net.Ipv4.prefix * Engine.Time.t) list;
  collector_total : int;
  rib_routes : int;  (** Loc-RIB routes summed over owned routers *)
  adj_in_routes : int;
  end_time : Engine.Time.t;
  settled : bool;  (** [false] when the budget stopped the run early *)
  stats : Engine.Shard.stats;
}

val run :
  ?shards:int ->
  ?partition_seed:int ->
  ?budget:int ->
  ?clock:(unit -> float) ->
  config:Config.t ->
  seed:int ->
  phases:phase list ->
  Topology.Spec.t ->
  result
(** Build and execute the sharded run.  [budget] bounds the total
    real-event count across all shards (checked at epoch boundaries;
    deterministic overshoot of at most one epoch).  [clock] feeds
    barrier-stall accounting only.
    @raise Invalid_argument on [shards < 1], a zero-delay link, or a
    lossy link. *)

val equal_result : result -> result -> bool
(** Deterministic-field equality: phases, merged metrics, collector
    stream, RIB sums, end time and settledness — everything except
    wall-clock shard stats.  The shards=N-vs-1 differential check. *)
