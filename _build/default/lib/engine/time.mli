(** Virtual simulation time: absolute instants and spans, in integer
    microseconds.  Integer time keeps the event queue ordering exact and
    simulation runs bit-reproducible. *)

type t
(** An absolute instant since simulation start. *)

type span = t
(** A difference between instants.  Spans and instants share the
    representation; constructors below build spans. *)

val zero : t

val compare : t -> t -> int

val equal : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( < ) : t -> t -> bool

val ( >= ) : t -> t -> bool

val ( > ) : t -> t -> bool

val min : t -> t -> t

val max : t -> t -> t

val add : t -> span -> t

val diff : t -> t -> span

val us : int -> span
(** [us n] is a span of [n] microseconds. *)

val ms : int -> span
(** [ms n] is a span of [n] milliseconds. *)

val sec : int -> span
(** [sec n] is a span of [n] seconds. *)

val of_sec_f : float -> span
(** [of_sec_f f] is a span of [f] seconds, rounded to the microsecond. *)

val span_add : span -> span -> span

val span_scale : span -> float -> span
(** [span_scale s f] scales span [s] by factor [f] (used for MRAI jitter). *)

val span_zero : span

val to_us : t -> int

val to_ms_f : t -> float

val to_sec_f : t -> float

val of_us : int -> t

val pp : Format.formatter -> t -> unit

val pp_span : Format.formatter -> span -> unit

val to_string : t -> string
