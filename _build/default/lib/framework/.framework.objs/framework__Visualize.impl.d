lib/framework/visualize.ml: Buffer Bytes Engine Experiments Float Fmt List Logparse Net Topology
