lib/bgp/router.ml: Attrs Community Config Damping Decision Engine Fmt Hashtbl List Message Mrai Net Option Policy Rib Route
