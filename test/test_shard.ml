(* Sharded single-run execution: the differential guarantee is that one
   simulation partitioned across N domains is bit-identical, on every
   deterministic field (phase timings, measurements, merged metrics,
   collector stream, RIB sums), to the same run at shards = 1. *)

let cfg = Framework.Config.fast_test

module Sharding = Framework.Sharding
module Partition = Topology.Partition

(* --- Topology.Partition ------------------------------------------------- *)

let caida seed = Topology.Caida.generate ~tier1:2 ~tier2:5 ~stubs:20 (Engine.Rng.create seed)

let test_partition_deterministic () =
  let spec = caida 7 in
  let a = Partition.compute ~seed:3 ~shards:4 spec in
  let b = Partition.compute ~seed:3 ~shards:4 spec in
  Alcotest.(check bool)
    "same assignment" true
    (Partition.assignment a = Partition.assignment b);
  Alcotest.(check int) "covers every AS" (Topology.Spec.node_count spec)
    (Array.fold_left ( + ) 0 (Partition.sizes a));
  List.iter
    (fun asn ->
      let s = Partition.shard_of a asn in
      Alcotest.(check bool) "shard in range" true (s >= 0 && s < 4))
    (Topology.Spec.asns spec)

let test_partition_sdn_pinned () =
  let spec = Topology.Artificial.clique 8 in
  let members = [ Topology.Artificial.asn 0; Topology.Artificial.asn 3 ] in
  let spec = Topology.Spec.with_sdn spec members in
  let p = Partition.compute ~shards:3 spec in
  List.iter
    (fun m -> Alcotest.(check int) "sdn member on shard 0" 0 (Partition.shard_of p m))
    members

let test_partition_guards () =
  let spec = Topology.Artificial.clique 4 in
  (match Partition.compute ~shards:0 spec with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shards=0 must raise");
  let p = Partition.compute ~shards:1 spec in
  List.iter
    (fun a -> Alcotest.(check int) "shards=1 all on 0" 0 (Partition.shard_of p a))
    (Topology.Spec.asns spec);
  (match Partition.shard_of p (Net.Asn.of_int 64000) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown ASN must raise");
  (* more shards than ASes: empty regions are legal *)
  let p = Partition.compute ~shards:9 spec in
  Alcotest.(check int) "still covers all" 4 (Array.fold_left ( + ) 0 (Partition.sizes p))

(* --- Engine.Sim canonical ordering -------------------------------------- *)

let test_canonical_order () =
  let sim = Engine.Sim.create ~order:Engine.Sim.Canonical () in
  let log = ref [] in
  let ev name = ignore (() : unit); log := name :: !log in
  let at = Engine.Time.ms 5 in
  let key kclass knode kseq = { Engine.Sim.kclass; knode; kseq } in
  (* scrambled insertion order; canonical order must sort it out *)
  ignore (Engine.Sim.schedule_at ~key:(key 1 2 0) sim at (fun () -> ev "node2"));
  ignore (Engine.Sim.schedule_at ~key:(key 1 1 1) sim at (fun () -> ev "node1b"));
  ignore (Engine.Sim.schedule_at ~key:(key (-1) 0 0) sim at (fun () -> ev "driver"));
  ignore (Engine.Sim.schedule_at ~key:(key 1 1 0) sim at (fun () -> ev "node1a"));
  (match Engine.Sim.run sim with Engine.Sim.Exhausted -> () | _ -> Alcotest.fail "drain");
  Alcotest.(check (list string))
    "canonical (kclass, knode, kseq) order"
    [ "driver"; "node1a"; "node1b"; "node2" ]
    (List.rev !log)

let test_seq_order_unchanged () =
  let sim = Engine.Sim.create () in
  let log = ref [] in
  let at = Engine.Time.ms 5 in
  (* keys are ignored under Seq: insertion (seq) order wins *)
  ignore
    (Engine.Sim.schedule_at ~key:{ Engine.Sim.kclass = 9; knode = 9; kseq = 9 } sim at
       (fun () -> log := "first" :: !log));
  ignore (Engine.Sim.schedule_at sim at (fun () -> log := "second" :: !log));
  (match Engine.Sim.run sim with Engine.Sim.Exhausted -> () | _ -> Alcotest.fail "drain");
  Alcotest.(check (list string)) "seq order" [ "first"; "second" ] (List.rev !log)

(* --- Engine.Metrics.merge ------------------------------------------------ *)

let test_metrics_merge () =
  let reg i =
    let m = Engine.Metrics.create () in
    Engine.Metrics.Counter.add (Engine.Metrics.counter m "updates_total") (10 * (i + 1));
    Engine.Metrics.Gauge.set (Engine.Metrics.gauge m "last_change_seconds") (float_of_int i);
    Engine.Metrics.Gauge.set (Engine.Metrics.gauge m "rib_routes") (float_of_int (i + 1));
    Engine.Metrics.snapshot m ~at:(Engine.Time.sec (i + 1))
  in
  let merged =
    Engine.Metrics.merge
      ~resolve:(fun ~name ~labels:_ ->
        if String.equal name "last_change_seconds" then `Max else `Sum)
      [ reg 0; reg 1; reg 2 ]
  in
  Alcotest.(check (option (float 1e-9)))
    "counters add" (Some 60.0)
    (Engine.Metrics.value merged "updates_total");
  Alcotest.(check (option (float 1e-9)))
    "max gauge" (Some 2.0)
    (Engine.Metrics.value merged "last_change_seconds");
  Alcotest.(check (option (float 1e-9)))
    "sum gauge" (Some 6.0)
    (Engine.Metrics.value merged "rib_routes");
  Alcotest.(check bool) "latest at" true (merged.Engine.Metrics.at = Engine.Time.sec 3)

(* --- Engine.Pool.run_each + HYBRIDSIM_JOBS_CAP --------------------------- *)

let test_run_each () =
  let r = Engine.Pool.run_each ~n:4 (fun i -> i * i) in
  Alcotest.(check (list int)) "shard order" [ 0; 1; 4; 9 ] (Array.to_list r);
  let r1 = Engine.Pool.run_each ~n:1 (fun i -> i + 41) in
  Alcotest.(check (list int)) "n=1 on caller" [ 41 ] (Array.to_list r1);
  (match Engine.Pool.run_each ~n:0 (fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "n=0 must raise");
  match
    Engine.Pool.run_each ~n:3 (fun i ->
        if i >= 1 then failwith (Fmt.str "boom %d" i) else i)
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg -> Alcotest.(check string) "lowest index wins" "boom 1" msg

let test_jobs_cap_env () =
  let with_env v f =
    let old = Sys.getenv_opt "HYBRIDSIM_JOBS_CAP" in
    Unix.putenv "HYBRIDSIM_JOBS_CAP" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "HYBRIDSIM_JOBS_CAP" (Option.value old ~default:"")) f
  in
  with_env "2" (fun () ->
      Alcotest.(check bool) "cap=2 applies" true (Engine.Pool.recommended_jobs () <= 2));
  with_env "1" (fun () ->
      Alcotest.(check int) "cap=1 applies" 1 (Engine.Pool.recommended_jobs ()));
  with_env "bogus" (fun () ->
      let d = Engine.Pool.recommended_jobs () in
      Alcotest.(check bool) "bogus falls back to default" true (d >= 1 && d <= 8));
  with_env "0" (fun () ->
      let d = Engine.Pool.recommended_jobs () in
      Alcotest.(check bool) "non-positive falls back" true (d >= 1 && d <= 8));
  (* explicit ?cap still beats the env var *)
  with_env "7" (fun () ->
      Alcotest.(check int) "explicit cap wins" 1 (Engine.Pool.recommended_jobs ~cap:1 ()))

(* --- Sharding differentials ---------------------------------------------- *)

let check_equal name a b =
  Alcotest.(check bool) name true (Sharding.equal_result a b)

let clique_spec ~n ~sdn =
  let spec = Topology.Artificial.clique n in
  if sdn > 0 then Topology.Spec.with_sdn spec (List.init sdn Topology.Artificial.asn)
  else spec

let announce_withdraw_phases spec origin =
  let plan = Framework.Addressing.plan spec in
  let prefix = plan.Framework.Addressing.origin_prefix origin in
  [
    { Sharding.commands = [ Sharding.Originate (origin, prefix) ]; measured = Some prefix };
    { Sharding.commands = [ Sharding.Withdraw (origin, prefix) ]; measured = Some prefix };
  ]

let run_clique ~shards ~sdn () =
  let spec = clique_spec ~n:8 ~sdn in
  let origin = Topology.Artificial.asn 7 in
  Sharding.run ~shards ~config:cfg ~seed:11 ~phases:(announce_withdraw_phases spec origin)
    spec

let test_clique_differential () =
  let r1 = run_clique ~shards:1 ~sdn:0 () in
  Alcotest.(check bool) "settled" true r1.Sharding.settled;
  Alcotest.(check int) "both phases ran" 2 (List.length r1.Sharding.phases);
  (match (List.nth r1.Sharding.phases 1).Sharding.measurement with
  | Some m ->
    Alcotest.(check bool) "withdrawal converged" true (m.Framework.Convergence.changes > 0)
  | None -> Alcotest.fail "missing measurement");
  check_equal "clique shards 2 == 1" r1 (run_clique ~shards:2 ~sdn:0 ());
  check_equal "clique shards 4 == 1" r1 (run_clique ~shards:4 ~sdn:0 ())

let test_clique_sdn_differential () =
  let r1 = run_clique ~shards:1 ~sdn:3 () in
  Alcotest.(check bool) "settled" true r1.Sharding.settled;
  check_equal "sdn clique shards 2 == 1" r1 (run_clique ~shards:2 ~sdn:3 ());
  check_equal "sdn clique shards 3 == 1" r1 (run_clique ~shards:3 ~sdn:3 ())

(* A chaos phase plan that crosses the partition: fail a link whose
   endpoints live on different shards of the 2-way partition, re-measure,
   then recover it. *)
let test_caida_chaos_differential () =
  let spec = caida 5 in
  let origin = List.hd (Topology.Caida.stub_asns ~tier1:2 ~tier2:5 ~stubs:20) in
  let p2 = Partition.compute ~seed:11 ~shards:2 spec in
  let cut =
    List.find
      (fun (l : Topology.Spec.link_spec) ->
        Partition.shard_of p2 l.Topology.Spec.a <> Partition.shard_of p2 l.Topology.Spec.b)
      (Topology.Spec.links spec)
  in
  let plan = Framework.Addressing.plan spec in
  let prefix = plan.Framework.Addressing.origin_prefix origin in
  let phases =
    [
      { Sharding.commands = [ Sharding.Originate (origin, prefix) ]; measured = Some prefix };
      {
        Sharding.commands = [ Sharding.Fail_link (cut.Topology.Spec.a, cut.Topology.Spec.b) ];
        measured = Some prefix;
      };
      {
        Sharding.commands =
          [ Sharding.Recover_link (cut.Topology.Spec.a, cut.Topology.Spec.b) ];
        measured = Some prefix;
      };
      { Sharding.commands = [ Sharding.Withdraw (origin, prefix) ]; measured = Some prefix };
    ]
  in
  let run shards = Sharding.run ~shards ~partition_seed:11 ~config:cfg ~seed:5 ~phases spec in
  let r1 = run 1 in
  Alcotest.(check bool) "settled" true r1.Sharding.settled;
  Alcotest.(check int) "all phases ran" 4 (List.length r1.Sharding.phases);
  let r2 = run 2 in
  Alcotest.(check bool) "cut links crossed" true (r2.Sharding.cut_links > 0);
  check_equal "caida chaos shards 2 == 1" r1 r2

let test_scale_shard_differential () =
  let run shards =
    Framework.Experiments.scale_shard_run ~tier1:2 ~tier2:4 ~stubs:10 ~prefixes:6 ~sdn:2
      ~shards ~seed:3 ~config:cfg ()
  in
  let s1, r1 = run 1 in
  Alcotest.(check bool) "load settled" true s1.Framework.Experiments.load_settled;
  Alcotest.(check bool)
    "withdrawal measured" true
    (Float.is_finite s1.Framework.Experiments.withdrawal.Framework.Experiments.seconds);
  let s2, r2 = run 2 in
  check_equal "scale shards 2 == 1" r1 r2;
  Alcotest.(check int)
    "rib routes agree" s1.Framework.Experiments.rib_routes s2.Framework.Experiments.rib_routes;
  Alcotest.(check (float 1e-9))
    "convergence agrees" s1.Framework.Experiments.withdrawal.Framework.Experiments.seconds
    s2.Framework.Experiments.withdrawal.Framework.Experiments.seconds;
  (* scale_run ?shards dispatches to the same path *)
  let via_scale_run =
    Framework.Experiments.scale_run ~tier1:2 ~tier2:4 ~stubs:10 ~prefixes:6 ~sdn:2 ~shards:2
      ~seed:3 ~config:cfg ()
  in
  Alcotest.(check int)
    "scale_run ~shards same tables" s1.Framework.Experiments.rib_routes
    via_scale_run.Framework.Experiments.rib_routes

let test_sharding_guards () =
  let spec = clique_spec ~n:4 ~sdn:0 in
  let phases = announce_withdraw_phases spec (Topology.Artificial.asn 3) in
  (match Sharding.run ~shards:0 ~config:cfg ~seed:1 ~phases spec with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shards=0 must raise");
  match
    Framework.Experiments.scale_run ~tier1:2 ~tier2:4 ~stubs:10 ~shards:2 ~phase_wall_s:1.0
      ~seed:1 ~config:cfg ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "phase_wall_s with ~shards must raise"

let test_budget_stops_deterministically () =
  let spec = clique_spec ~n:8 ~sdn:0 in
  let phases = announce_withdraw_phases spec (Topology.Artificial.asn 7) in
  let run shards =
    Sharding.run ~shards ~budget:60 ~config:cfg ~seed:11 ~phases spec
  in
  let r1 = run 1 in
  Alcotest.(check bool) "budget stops the run" false r1.Sharding.settled;
  check_equal "budget-stopped shards 2 == 1" r1 (run 2)

let suite =
  [
    Alcotest.test_case "partition: deterministic + covering" `Quick test_partition_deterministic;
    Alcotest.test_case "partition: sdn pinned to shard 0" `Quick test_partition_sdn_pinned;
    Alcotest.test_case "partition: guards" `Quick test_partition_guards;
    Alcotest.test_case "sim: canonical key order" `Quick test_canonical_order;
    Alcotest.test_case "sim: seq order unchanged" `Quick test_seq_order_unchanged;
    Alcotest.test_case "metrics: merge" `Quick test_metrics_merge;
    Alcotest.test_case "pool: run_each" `Quick test_run_each;
    Alcotest.test_case "pool: HYBRIDSIM_JOBS_CAP" `Quick test_jobs_cap_env;
    Alcotest.test_case "clique shards {1,2,4} identical" `Quick test_clique_differential;
    Alcotest.test_case "sdn clique shards {1,2,3} identical" `Quick test_clique_sdn_differential;
    Alcotest.test_case "caida chaos shards 2 == 1" `Slow test_caida_chaos_differential;
    Alcotest.test_case "scale run shards 2 == 1" `Slow test_scale_shard_differential;
    Alcotest.test_case "sharding: guards" `Quick test_sharding_guards;
    Alcotest.test_case "budget stop is deterministic" `Quick test_budget_stops_deterministically;
  ]
