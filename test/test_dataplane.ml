(* Net.Dataplane + Framework.Fwd_verify: the allocation-free fast path
   must classify every (src, dst) pair exactly like the live emulation.
   Unit tests drive hand-built snapshots through every fate; the
   differential tests hold [Fwd_verify] (snapshot walks) and
   [Monitor.walk] (live state) to the same answer across legacy, SDN,
   fallback and failure states. *)

let asn = Topology.Artificial.asn

let cfg = Framework.Config.fast_test

let addr_bits o1 o2 o3 o4 = Net.Ipv4.addr_to_bits (Net.Ipv4.addr_of_octets o1 o2 o3 o4)

let prefix s = Option.get (Net.Ipv4.prefix_of_string s)

let fate = Alcotest.testable Net.Dataplane.pp_fate ( = )

(* A hand-built 3-node chain 0 -> 1 -> 2 with 10.0.2.0/24 local at node 2. *)
let chain () =
  let dp = Net.Dataplane.create ~asns:[| 100; 101; 102 |] in
  let fib01 = Net.Fib.create () in
  Net.Fib.insert fib01 (prefix "10.0.2.0/24") 1;
  Net.Dataplane.set_fib dp 0 fib01;
  let fib12 = Net.Fib.create () in
  Net.Fib.insert fib12 (prefix "10.0.2.0/24") 2;
  Net.Dataplane.set_fib dp 1 fib12;
  Net.Dataplane.add_local dp 2 (prefix "10.0.2.0/24");
  Net.Dataplane.set_link dp 0 1 true;
  Net.Dataplane.set_link dp 1 2 true;
  dp

let test_unit_delivered () =
  let dp = chain () in
  let r = Net.Dataplane.forward dp ~src:0 ~dst_bits:(addr_bits 10 0 2 7) ~ttl:64 in
  Alcotest.check fate "delivered" Net.Dataplane.Delivered (Net.Dataplane.result_fate r);
  Alcotest.(check int) "two hops" 2 (Net.Dataplane.result_hops r);
  Alcotest.(check (array int)) "path 0-1-2" [| 0; 1; 2 |] (Net.Dataplane.last_path dp);
  (* local delivery at the source itself: zero hops, TTL never consulted *)
  let r = Net.Dataplane.forward dp ~src:2 ~dst_bits:(addr_bits 10 0 2 7) ~ttl:0 in
  Alcotest.check fate "local at ttl=0" Net.Dataplane.Delivered (Net.Dataplane.result_fate r);
  Alcotest.(check int) "zero hops" 0 (Net.Dataplane.result_hops r)

let test_unit_blackhole () =
  let dp = chain () in
  (* no route for this destination *)
  let r = Net.Dataplane.forward dp ~src:0 ~dst_bits:(addr_bits 9 9 9 9) ~ttl:64 in
  Alcotest.check fate "no route" Net.Dataplane.Blackholed (Net.Dataplane.result_fate r);
  (* a down link black-holes even with a matching route *)
  Net.Dataplane.set_link dp 1 2 false;
  let r = Net.Dataplane.forward dp ~src:0 ~dst_bits:(addr_bits 10 0 2 7) ~ttl:64 in
  Alcotest.check fate "down link" Net.Dataplane.Blackholed (Net.Dataplane.result_fate r);
  Alcotest.(check (array int)) "stops at 1" [| 0; 1 |] (Net.Dataplane.last_path dp)

let test_unit_loop_and_ttl () =
  (* 0 and 1 point at each other: revisit = loop whatever the TTL *)
  let dp = Net.Dataplane.create ~asns:[| 200; 201 |] in
  let fib0 = Net.Fib.create () in
  Net.Fib.insert fib0 (prefix "10.9.0.0/16") 1;
  Net.Dataplane.set_fib dp 0 fib0;
  let fib1 = Net.Fib.create () in
  Net.Fib.insert fib1 (prefix "10.9.0.0/16") 0;
  Net.Dataplane.set_fib dp 1 fib1;
  Net.Dataplane.set_link dp 0 1 true;
  Net.Dataplane.set_link dp 1 0 true;
  let r = Net.Dataplane.forward dp ~src:0 ~dst_bits:(addr_bits 10 9 1 1) ~ttl:64 in
  Alcotest.check fate "loop" Net.Dataplane.Looped (Net.Dataplane.result_fate r);
  Alcotest.(check (array int)) "revisits 0" [| 0; 1; 0 |] (Net.Dataplane.last_path dp);
  (* TTL death binds first when it is tighter than the cycle *)
  let r = Net.Dataplane.forward dp ~src:0 ~dst_bits:(addr_bits 10 9 1 1) ~ttl:1 in
  Alcotest.check fate "ttl death" Net.Dataplane.Ttl_expired (Net.Dataplane.result_fate r)

let test_unit_rules_first_match () =
  (* SDN rule tables are first-match in table order, not LPM *)
  let dp = Net.Dataplane.create ~asns:[| 300; 301; 302 |] in
  let wide_net = addr_bits 10 0 0 0 and wide_mask = Net.Ipv4.mask_bits 8 in
  let narrow_net = addr_bits 10 0 2 0 and narrow_mask = Net.Ipv4.mask_bits 24 in
  (* the wide rule sits first, so it wins even against the narrow match *)
  Net.Dataplane.set_rules dp 0 ~nets:[| wide_net; narrow_net |]
    ~masks:[| wide_mask; narrow_mask |] ~acts:[| 1; 2 |];
  Net.Dataplane.add_local dp 1 (prefix "10.0.0.0/8");
  Net.Dataplane.add_local dp 2 (prefix "10.0.2.0/24");
  Net.Dataplane.set_link dp 0 1 true;
  Net.Dataplane.set_link dp 0 2 true;
  let r = Net.Dataplane.forward dp ~src:0 ~dst_bits:(addr_bits 10 0 2 9) ~ttl:4 in
  Alcotest.check fate "delivered" Net.Dataplane.Delivered (Net.Dataplane.result_fate r);
  Alcotest.(check (array int)) "took the first rule" [| 0; 1 |] (Net.Dataplane.last_path dp);
  (* a Drop action (code -1) black-holes *)
  Net.Dataplane.set_rules dp 0 ~nets:[| wide_net |] ~masks:[| wide_mask |]
    ~acts:[| Net.Dataplane.drop |];
  let r = Net.Dataplane.forward dp ~src:0 ~dst_bits:(addr_bits 10 0 2 9) ~ttl:4 in
  Alcotest.check fate "drop rule" Net.Dataplane.Blackholed (Net.Dataplane.result_fate r)

let test_decr_ttl_edges () =
  let a = Net.Ipv4.addr_of_octets 10 0 0 1 and b = Net.Ipv4.addr_of_octets 10 0 0 2 in
  let p1 = Net.Packet.echo ~ttl:1 ~src:a ~dst:b 1 in
  (match Net.Packet.decr_ttl p1 with
  | Some p -> Alcotest.(check int) "1 -> 0" 0 p.Net.Packet.ttl
  | None -> Alcotest.fail "ttl=1 must still forward once");
  let p0 = Net.Packet.echo ~ttl:0 ~src:a ~dst:b 1 in
  Alcotest.(check bool) "0 dies" true (Net.Packet.decr_ttl p0 = None);
  (* the snapshot walk agrees: ttl=1 crosses exactly one link *)
  let dp = chain () in
  let r = Net.Dataplane.forward dp ~src:1 ~dst_bits:(addr_bits 10 0 2 7) ~ttl:1 in
  Alcotest.check fate "one link reaches 2" Net.Dataplane.Delivered
    (Net.Dataplane.result_fate r);
  let r = Net.Dataplane.forward dp ~src:0 ~dst_bits:(addr_bits 10 0 2 7) ~ttl:1 in
  Alcotest.check fate "two links need ttl 2" Net.Dataplane.Ttl_expired
    (Net.Dataplane.result_fate r)

(* --- Differential: snapshot vs live walker over real networks ----------- *)

let build ?(spec = Topology.Artificial.clique 4) () =
  let net = Framework.Network.create ~config:cfg ~seed:9 spec in
  Framework.Network.start net;
  ignore (Framework.Network.settle net);
  net

let originate net a =
  let plan = Framework.Network.plan net in
  Framework.Network.originate net a (plan.Framework.Addressing.origin_prefix a);
  ignore (Framework.Network.settle net)

let check_agreement name net =
  let disagreements = Framework.Fwd_verify.differential net in
  if disagreements <> [] then
    Alcotest.failf "%s: %d disagreement(s), first: %a" name
      (List.length disagreements)
      Framework.Fwd_verify.pp_disagreement (List.hd disagreements)

let test_differential_clique () =
  let net = build () in
  originate net (asn 0);
  originate net (asn 2);
  check_agreement "settled clique" net;
  let report = Framework.Fwd_verify.verify ~dsts:[ asn 0; asn 2 ] net in
  Alcotest.(check int) "all pairs delivered" report.Framework.Fwd_verify.pairs
    report.Framework.Fwd_verify.delivered;
  Alcotest.(check (list pass)) "no issues" [] report.Framework.Fwd_verify.issues

let test_differential_blackhole () =
  let net = build ~spec:(Topology.Artificial.line 3) () in
  originate net (asn 0);
  (* the only path dies: everything beyond the cut black-holes *)
  Framework.Network.fail_link net (asn 0) (asn 1);
  check_agreement "cut line, pre-convergence" net;
  ignore (Framework.Network.settle net);
  check_agreement "cut line, post-convergence" net;
  let report = Framework.Fwd_verify.verify ~dsts:[ asn 0 ] net in
  Alcotest.(check int) "both far nodes blackholed" 2
    report.Framework.Fwd_verify.blackholed;
  Alcotest.(check int) "none looped" 0 report.Framework.Fwd_verify.looped

let test_differential_sdn_members () =
  let spec = Topology.Spec.with_sdn (Topology.Artificial.clique 5) [ asn 3; asn 4 ] in
  let net = build ~spec () in
  originate net (asn 0);
  originate net (asn 1);
  check_agreement "clique with SDN members" net;
  let report = Framework.Fwd_verify.verify ~dsts:[ asn 0; asn 1 ] net in
  Alcotest.(check int) "all delivered through flow tables"
    report.Framework.Fwd_verify.pairs report.Framework.Fwd_verify.delivered

let test_differential_sdn_fallback () =
  (* A member partitioned from the controller degrades onto its legacy
     fallback route; the snapshot must mirror the fallback flow table.
     Liveness timers tick forever, so advance wall-clock windows with
     [run_until] rather than waiting for quiescence. *)
  let spec = Topology.Spec.with_sdn (Topology.Artificial.clique 5) [ asn 3; asn 4 ] in
  let config = Framework.Config.failure_test in
  let net = Framework.Network.create ~config ~seed:9 spec in
  Framework.Network.start net;
  let run_for s =
    Framework.Network.run_until net
      (Engine.Time.add (Framework.Network.now net) (Engine.Time.sec s))
  in
  run_for 10;
  let plan = Framework.Network.plan net in
  Framework.Network.originate net (asn 0) (plan.Framework.Addressing.origin_prefix (asn 0));
  run_for 10;
  check_agreement "settled hybrid clique" net;
  Framework.Network.fail_ctrl_link net (asn 3);
  run_for 10;
  check_agreement "member in legacy fallback" net;
  Framework.Network.recover_ctrl_link net (asn 3);
  run_for 10;
  check_agreement "member back under the controller" net

let test_differential_withdrawal_and_recovery () =
  let net = build () in
  let plan = Framework.Network.plan net in
  let p = plan.Framework.Addressing.origin_prefix (asn 1) in
  originate net (asn 1);
  Framework.Network.withdraw net (asn 1) p;
  ignore (Framework.Network.settle net);
  check_agreement "after withdrawal" net;
  let report = Framework.Fwd_verify.verify ~dsts:[ asn 1 ] net in
  Alcotest.(check int) "withdrawn prefix unreachable" 3
    report.Framework.Fwd_verify.blackholed

(* --- Traffic generation -------------------------------------------------- *)

let test_trafficgen_deterministic () =
  let net = build () in
  originate net (asn 0);
  originate net (asn 2);
  let burst_of seed =
    let tg =
      Framework.Trafficgen.create ~seed ~dsts:[ asn 0; asn 2 ] net
        (Framework.Trafficgen.Sampled_pairs 64)
    in
    Framework.Trafficgen.burst tg
  in
  let a = burst_of 5 and b = burst_of 5 and c = burst_of 6 in
  Alcotest.(check bool) "same seed, same census" true (a = b);
  Alcotest.(check int) "64 injected" 64 a.Framework.Trafficgen.injected;
  Alcotest.(check int) "all delivered" 64 a.Framework.Trafficgen.delivered;
  Alcotest.(check int) "other seed still clean" 64 c.Framework.Trafficgen.delivered

let test_trafficgen_counters () =
  let net = build ~spec:(Topology.Artificial.line 3) () in
  originate net (asn 0);
  let tg =
    Framework.Trafficgen.create ~dsts:[ asn 0 ] net (Framework.Trafficgen.Per_prefix 3)
  in
  ignore (Framework.Trafficgen.burst tg);
  let m = Engine.Sim.metrics (Framework.Network.sim net) in
  let snap = Engine.Metrics.snapshot m ~at:(Framework.Network.now net) in
  Alcotest.(check (option (float 1e-9))) "probes counted" (Some 3.0)
    (Engine.Metrics.value snap "dataplane_probes_total");
  Alcotest.(check (option (float 1e-9))) "all delivered" (Some 3.0)
    (Engine.Metrics.value snap "dataplane_probes_delivered_total");
  (* no drops yet: the labelled drop series must not exist *)
  Alcotest.(check (option (float 1e-9))) "no drop series" None
    (Engine.Metrics.value snap ~labels:[ ("fate", "blackhole") ]
       "dataplane_probes_dropped_total");
  (* cut the only path: drops appear under their fate label *)
  Framework.Network.fail_link net (asn 0) (asn 1);
  let e = Framework.Trafficgen.burst tg in
  Alcotest.(check int) "all lost" 3 (Framework.Trafficgen.epoch_lost e);
  let snap = Engine.Metrics.snapshot m ~at:(Framework.Network.now net) in
  Alcotest.(check (option (float 1e-9))) "blackholes labelled" (Some 3.0)
    (Engine.Metrics.value snap ~labels:[ ("fate", "blackhole") ]
       "dataplane_probes_dropped_total")

let test_trafficgen_fate_agreement () =
  (* Every probe fate must match the verifier's census on the same
     frozen state: burst totals are just an aggregated verify. *)
  let net = build ~spec:(Topology.Artificial.line 4) () in
  originate net (asn 3);
  Framework.Network.fail_link net (asn 2) (asn 3);
  ignore (Framework.Network.settle net);
  let tg =
    Framework.Trafficgen.create ~dsts:[ asn 3 ] net Framework.Trafficgen.All_pairs
  in
  let e = Framework.Trafficgen.burst tg in
  let r = Framework.Fwd_verify.verify ~dsts:[ asn 3 ] net in
  Alcotest.(check int) "injected = pairs" r.Framework.Fwd_verify.pairs
    e.Framework.Trafficgen.injected;
  Alcotest.(check int) "delivered agree" r.Framework.Fwd_verify.delivered
    e.Framework.Trafficgen.delivered;
  Alcotest.(check int) "blackholes agree" r.Framework.Fwd_verify.blackholed
    e.Framework.Trafficgen.blackholed;
  Alcotest.(check int) "loops agree" r.Framework.Fwd_verify.looped
    e.Framework.Trafficgen.looped

let test_loss_run_recovers () =
  let r =
    Framework.Experiments.loss_run ~per_prefix:2 ~interval_ms:100 ~n:5 ~sdn:2 ~seed:3
      ~config:cfg ()
  in
  Alcotest.(check bool) "loss observed" true (r.Framework.Experiments.lost > 0);
  Alcotest.(check bool) "loss cleared" true
    (r.Framework.Experiments.loss_seconds < r.Framework.Experiments.converge_seconds +. 1.0);
  Alcotest.(check int) "verifier clean after recovery" 0
    r.Framework.Experiments.residual_issues

let suite =
  [
    Alcotest.test_case "unit: delivered + local at source" `Quick test_unit_delivered;
    Alcotest.test_case "unit: blackhole (no route, down link)" `Quick test_unit_blackhole;
    Alcotest.test_case "unit: loop vs ttl death" `Quick test_unit_loop_and_ttl;
    Alcotest.test_case "unit: rule tables are first-match" `Quick test_unit_rules_first_match;
    Alcotest.test_case "packet decr_ttl edges" `Quick test_decr_ttl_edges;
    Alcotest.test_case "differential: settled clique" `Quick test_differential_clique;
    Alcotest.test_case "differential: blackholes on a cut line" `Quick
      test_differential_blackhole;
    Alcotest.test_case "differential: SDN members" `Quick test_differential_sdn_members;
    Alcotest.test_case "differential: SDN legacy fallback" `Quick
      test_differential_sdn_fallback;
    Alcotest.test_case "differential: withdrawal" `Quick
      test_differential_withdrawal_and_recovery;
    Alcotest.test_case "trafficgen: seeded determinism" `Quick test_trafficgen_deterministic;
    Alcotest.test_case "trafficgen: labelled drop counters" `Quick test_trafficgen_counters;
    Alcotest.test_case "trafficgen: fate census = verifier census" `Quick
      test_trafficgen_fate_agreement;
    Alcotest.test_case "loss_run: loss clears by convergence" `Quick test_loss_run_recovers;
  ]
