lib/framework/convergence.ml: Bgp Cluster_ctl Engine Fmt List Net Network Option
