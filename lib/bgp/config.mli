(** BGP timing configuration (Quagga-like defaults). *)

type t = {
  mrai : Engine.Time.span;  (** base eBGP MinRouteAdvertisementInterval *)
  mrai_jitter_lo : float;
  mrai_jitter_hi : float;
  mrai_on_withdrawals : bool;
      (** apply MRAI to explicit withdrawals too (RFC 4271 exempts them) *)
  proc_delay_min : Engine.Time.span;
  proc_delay_max : Engine.Time.span;
  session_down_detect : Engine.Time.span;
  session_open_delay : Engine.Time.span;
  keepalives : keepalive option;
      (** KEEPALIVE/hold-timer liveness; off by default — with keepalives
          on, detect convergence via quiet periods, not queue drain. *)
  reconnect : Session.backoff option;
      (** exponential-backoff retry of unanswered OPENs; off by default *)
}

and keepalive = { interval : Engine.Time.span; hold_time : Engine.Time.span }

val default_keepalive : keepalive
(** Quagga defaults: 60 s keepalive, 180 s hold. *)

val with_keepalives : ?keepalive:keepalive -> t -> t

val with_reconnect : ?backoff:Session.backoff -> t -> t

val default : t
(** MRAI 30 s jittered [0.75,1.0] applied to withdrawals too (Quagga
    behaviour), processing 10–50 ms, detection 500 ms. *)

val with_mrai : t -> Engine.Time.span -> t

val no_jitter : t -> t

val jittered_mrai : t -> Engine.Rng.t -> Engine.Time.span

val processing_delay : t -> Engine.Rng.t -> Engine.Time.span
