(* The experiment lifecycle API — the high-level commands the framework
   gives experimenters (the paper's Mininet-BGP command extensions):
   build a topology, bring BGP up, announce/withdraw prefixes, fail and
   recover links, wait for convergence, measure. *)

type t = {
  network : Network.t;
  watcher : Convergence.t;
  mutable bootstrap_done : bool;
}

let network t = t.network

let watcher t = t.watcher

let sim t = Network.sim t.network

let now t = Network.now t.network

let metrics t = Engine.Sim.metrics (sim t)

(* The whole-stack registry frozen at the current simulated instant —
   what experiment results carry as their final telemetry. *)
let final_metrics t = Engine.Metrics.snapshot (metrics t) ~at:(now t)

(* Build the emulation and bring all BGP sessions up, with every AS
   originating its default prefix unless [originate_all] is false; runs
   until the bootstrap has fully converged. *)
let create ?(config = Config.default) ?(seed = 42) ?(originate_all = false) spec =
  let network = Network.create ~config ~seed spec in
  let watcher = Convergence.attach network in
  let t = { network; watcher; bootstrap_done = false } in
  Network.start network;
  ignore (Network.settle network);
  if originate_all then begin
    List.iter
      (fun asn ->
        Network.originate network asn ((Network.plan network).Addressing.origin_prefix asn))
      (Topology.Spec.asns spec);
    ignore (Network.settle network)
  end;
  t.bootstrap_done <- true;
  t

let default_prefix t asn = (Network.plan t.network).Addressing.origin_prefix asn

let announce ?prefix t asn =
  let prefix = match prefix with Some p -> p | None -> default_prefix t asn in
  Network.originate t.network asn prefix;
  prefix

let withdraw ?prefix t asn =
  let prefix = match prefix with Some p -> p | None -> default_prefix t asn in
  Network.withdraw t.network asn prefix;
  prefix

let fail_link t a b = Network.fail_link t.network a b

let recover_link t a b = Network.recover_link t.network a b

let settle ?max_events t = Network.settle ?max_events t.network

(* Perform [action] and run to quiescence, measuring convergence of
   [prefix] from the moment of the action. *)
let measure ?max_events t ~prefix action =
  let event_time = now t in
  let changes_before = Convergence.control_changes t.watcher prefix in
  action ();
  Convergence.measure ?max_events ~changes_before t.watcher ~prefix ~event_time

(* Convergence time in seconds, NaN when nothing changed. *)
let convergence_seconds (m : Convergence.measurement) =
  match m.Convergence.convergence with
  | Some span -> Engine.Time.to_sec_f span
  | None -> nan

let reachable t ~src ~dst = Monitor.reachable t.network ~src ~dst

let walk t ~src ~dst =
  Monitor.walk t.network ~src ~dst_addr:((Network.plan t.network).Addressing.host_addr dst)
