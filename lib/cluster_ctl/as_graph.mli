(** The per-prefix AS topology graph: the controller's loop-safe
    transformation of the switch graph plus external BGP routes, and the
    Dijkstra route selection on it. *)

type exit_route = {
  member : Net.Asn.t;  (** cluster member whose peering learned the route *)
  neighbor : Net.Asn.t;  (** external neighbor it was learned from *)
  attrs : Bgp.Attrs.t;
  rel : Bgp.Policy.relationship;  (** relationship toward [neighbor] *)
}

type hop =
  | Deliver_local  (** this member originates the prefix *)
  | Exit of { neighbor : Net.Asn.t }  (** leave the cluster via this peering *)
  | Intra of { next_member : Net.Asn.t }  (** next switch inside the cluster *)
  | Bridge of { via_neighbor : Net.Asn.t; to_member : Net.Asn.t }
      (** cross the legacy world toward another sub-cluster *)

type decision = {
  member : Net.Asn.t;
  hop : hop;
  as_path : Net.Asn.t list;  (** member → origin, member itself excluded *)
  distance : float;
  provenance : Bgp.Policy.route_provenance;
}

val classify_path :
  Net.Asn.Set.t -> Net.Asn.t list -> [ `External | `Reenters of Net.Asn.t list * Net.Asn.t ]
(** Whether an AS path re-enters the cluster; if so, the legacy segment up
    to and including the first member, and that member. *)

type arena
(** Reusable working state for {!compute}: edge/memo tables, the reversed
    graph, Dijkstra scratch, and the sub-cluster table cached on the
    switch graph's {!Net.Graph.version}.  One arena serves any number of
    sequential computations; results never alias arena storage. *)

val create_arena : unit -> arena

val compute :
  ?arena:arena ->
  members:Net.Asn.Set.t ->
  switch_graph:Net.Graph.t ->
  routes:exit_route list ->
  originators:Net.Asn.Set.t ->
  unit ->
  decision Net.Asn.Map.t
(** Route selection for one prefix.  [switch_graph] nodes are member ASN
    integers with only up links.  Routes whose path re-enters the member's
    own sub-cluster are discarded (loop avoidance); paths into a different
    sub-cluster become legacy bridges.  Unreachable members are absent
    from the result.  The result's next hops form a tree — loop-free by
    construction. *)

val naive_compute :
  members:Net.Asn.Set.t ->
  routes:exit_route list ->
  originators:Net.Asn.Set.t ->
  unit ->
  decision Net.Asn.Map.t
(** The baseline the paper warns against: independent per-member best-exit
    selection with only BGP's own-ASN loop check — no switch-graph
    transformation, no sub-cluster analysis.  Can produce forwarding
    loops through the legacy world (demonstrated in the test suite);
    exists for comparison only. *)

val pp_hop : Format.formatter -> hop -> unit

val pp_decision : Format.formatter -> decision -> unit
