(* The union message type carried by the emulated fabric: BGP wire
   messages, OpenFlow control traffic, and data-plane packets. *)

type t =
  | Bgp of Bgp.Message.t
  | Openflow of Sdn.Openflow.t
  | Data of Net.Packet.t

let pp ppf = function
  | Bgp m -> Fmt.pf ppf "bgp:%a" Bgp.Message.pp m
  | Openflow m -> Fmt.pf ppf "of:%a" Sdn.Openflow.pp m
  | Data p -> Fmt.pf ppf "data:%a" Net.Packet.pp p
