(* Text formats: scenario files and collector dumps. *)

let asn = Topology.Artificial.asn

let p s = Option.get (Net.Ipv4.prefix_of_string s)

(* --- Scenario text ------------------------------------------------------- *)

let scenario_text =
  "# demo scenario\n\
   @0.5 announce AS65001\n\
   @2.0 announce AS65002 100.99.0.0/24\n\
   @10.0 fail-link AS65001 AS65002\n\
   @20.0 recover-link AS65001 AS65002\n\
   @25.0 ping AS65002 AS65001\n\
   @30.0 withdraw AS65001\n\
   @31.0 note measurement window ends\n"

let test_scenario_parse () =
  match Framework.Scenario.parse_string scenario_text with
  | Error e -> Alcotest.fail e
  | Ok s ->
    let steps = Framework.Scenario.steps s in
    Alcotest.(check int) "step count" 7 (List.length steps);
    (match steps with
    | first :: _ -> (
      Alcotest.(check int) "first at 0.5s" 500_000
        (Engine.Time.to_us first.Framework.Scenario.at);
      match first.Framework.Scenario.action with
      | Framework.Scenario.Announce (a, None) ->
        Alcotest.(check int) "announce AS" 65001 (Net.Asn.to_int a)
      | _ -> Alcotest.fail "first action should be a default-prefix announce")
    | [] -> Alcotest.fail "no steps");
    let with_prefix =
      List.exists
        (fun (st : Framework.Scenario.step) ->
          match st.Framework.Scenario.action with
          | Framework.Scenario.Announce (_, Some pre) ->
            Net.Ipv4.equal_prefix pre (p "100.99.0.0/24")
          | _ -> false)
        steps
    in
    Alcotest.(check bool) "explicit prefix parsed" true with_prefix

let test_scenario_roundtrip () =
  match Framework.Scenario.parse_string scenario_text with
  | Error e -> Alcotest.fail e
  | Ok s -> (
    let rendered = Framework.Scenario.render s in
    match Framework.Scenario.parse_string rendered with
    | Error e -> Alcotest.failf "re-parse failed: %s" e
    | Ok s2 ->
      Alcotest.(check int) "same step count"
        (List.length (Framework.Scenario.steps s))
        (List.length (Framework.Scenario.steps s2));
      Alcotest.(check string) "stable render" rendered (Framework.Scenario.render s2))

let test_scenario_parse_errors () =
  let bad_cases =
    [ "@x announce AS65001"; "@1.0 announce"; "@1.0 explode AS65001"; "announce AS65001";
      "@1.0 announce AS65001 999.0.0.0/8"; "@1.0 fail-link AS65001" ]
  in
  List.iter
    (fun text ->
      match Framework.Scenario.parse_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should reject %S" text)
    bad_cases

let test_scenario_executes_parsed () =
  let text = "@1.0 announce AS65001\n@40.0 withdraw AS65001\n" in
  let scenario =
    match Framework.Scenario.parse_string text with Ok s -> s | Error e -> Alcotest.fail e
  in
  let exp =
    Framework.Experiment.create ~config:Framework.Config.fast_test ~seed:41
      (Topology.Artificial.clique 3)
  in
  let log = Framework.Scenario.run exp scenario in
  Alcotest.(check int) "both actions ran" 2 (List.length log);
  let net = Framework.Experiment.network exp in
  let r = Option.get (Framework.Network.router net (asn 1)) in
  Alcotest.(check bool) "withdrawn at the end" true
    (Bgp.Router.best r (Framework.Experiment.default_prefix exp (asn 0)) = None)

(* --- Collector dumps ------------------------------------------------------ *)

let make_collector_with_events () =
  let sim = Engine.Sim.create () in
  let collector =
    Bgp.Collector.create ~sim ~asn:(Net.Asn.of_int 64000) ~node_id:99
      ~router_id:(Net.Ipv4.addr_of_octets 10 9 9 9)
      ~send:(fun ~dst:_ _ -> true)
      ()
  in
  Bgp.Collector.add_peer collector ~peer_asn:(Net.Asn.of_int 65001) ~peer_node:1;
  let attrs path =
    Bgp.Attrs.make
      ~as_path:(List.map Net.Asn.of_int path)
      ~next_hop:(Net.Ipv4.addr_of_octets 10 0 0 1)
      ()
  in
  ignore
    (Engine.Sim.schedule_at sim (Engine.Time.ms 5) (fun () ->
         Bgp.Collector.handle_message collector ~from:1
           (Bgp.Message.update
              ~announced:[ (p "100.64.0.0/24", attrs [ 65001; 65002 ]) ]
              ())));
  ignore
    (Engine.Sim.schedule_at sim (Engine.Time.ms 1500) (fun () ->
         Bgp.Collector.handle_message collector ~from:1
           (Bgp.Message.update ~withdrawn:[ p "100.64.0.0/24" ] ())));
  ignore (Engine.Sim.run sim);
  collector

let test_dump_roundtrip () =
  let collector = make_collector_with_events () in
  let text = Bgp.Collector.dump collector in
  match Bgp.Collector.parse_dump text with
  | Error e -> Alcotest.fail e
  | Ok events ->
    Alcotest.(check int) "two events" 2 (List.length events);
    (match events with
    | [ a; w ] ->
      Alcotest.(check int) "announce time" 5_000 (Engine.Time.to_us a.Bgp.Collector.time);
      (match a.Bgp.Collector.action with
      | Bgp.Collector.Announce attrs ->
        Alcotest.(check (list int)) "path preserved" [ 65001; 65002 ]
          (List.map Net.Asn.to_int (Bgp.Attrs.as_path attrs))
      | Bgp.Collector.Withdraw -> Alcotest.fail "first should be announce");
      Alcotest.(check bool) "second is withdraw" true
        (w.Bgp.Collector.action = Bgp.Collector.Withdraw)
    | _ -> Alcotest.fail "expected exactly two")

let test_dump_parse_errors () =
  List.iter
    (fun text ->
      match Bgp.Collector.parse_dump text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should reject %S" text)
    [ "garbage"; "5|65001|X|100.64.0.0/24|"; "5|65001|A|not-a-prefix|65001" ]

let test_rate_buckets () =
  let collector = make_collector_with_events () in
  let buckets = Bgp.Collector.rate_buckets ~bucket:(Engine.Time.sec 1) collector in
  Alcotest.(check int) "two buckets" 2 (List.length buckets);
  match buckets with
  | [ (t0, c0); (t1, c1) ] ->
    Alcotest.(check int) "bucket 0 start" 0 (Engine.Time.to_us t0);
    Alcotest.(check int) "bucket 0 count" 1 c0;
    Alcotest.(check int) "bucket 1 start" 1_000_000 (Engine.Time.to_us t1);
    Alcotest.(check int) "bucket 1 count" 1 c1
  | _ -> Alcotest.fail "unexpected buckets"

(* --- Flap-storm experiment ------------------------------------------------ *)

let test_flap_damping_tradeoff () =
  let config = Framework.Config.fast_test in
  let off = Framework.Experiments.flap_run ~n:5 ~flaps:3 ~gap_s:10.0 ~damping:false ~seed:31 ~config () in
  let on = Framework.Experiments.flap_run ~n:5 ~flaps:3 ~gap_s:10.0 ~damping:true ~seed:31 ~config () in
  Alcotest.(check int) "no suppressions without damping" 0 off.Framework.Experiments.suppressions_total;
  Alcotest.(check bool) "damping suppresses" true (on.Framework.Experiments.suppressions_total > 0);
  Alcotest.(check bool) "damping reduces churn" true
    (on.Framework.Experiments.collector_updates_total
    < off.Framework.Experiments.collector_updates_total);
  Alcotest.(check bool) "damping delays recovery" true
    (on.Framework.Experiments.recovery_seconds > off.Framework.Experiments.recovery_seconds);
  Alcotest.(check int) "both eventually recover" 0 on.Framework.Experiments.blackholed_after_storm

(* --- Telemetry validation and finish hardening --------------------------- *)

module Tel = Framework.Telemetry

let format_t =
  Alcotest.testable
    (fun ppf f -> Fmt.string ppf (Tel.format_to_string f))
    (fun a b -> a = b)

let test_format_of_path_edges () =
  Alcotest.(check format_t) "uppercase extension" Tel.Prometheus
    (Tel.format_of_path "metrics.PROM");
  Alcotest.(check format_t) "mixed-case csv" Tel.Csv (Tel.format_of_path "out.CsV");
  Alcotest.(check format_t) "txt is prometheus" Tel.Prometheus
    (Tel.format_of_path "metrics.txt");
  Alcotest.(check format_t) "no extension defaults to jsonl" Tel.Jsonl
    (Tel.format_of_path "metrics");
  Alcotest.(check format_t) "trailing dot defaults to jsonl" Tel.Jsonl
    (Tel.format_of_path "metrics.");
  Alcotest.(check format_t) "unknown extension defaults to jsonl" Tel.Jsonl
    (Tel.format_of_path "metrics.data")

let check_invalid what = function
  | Ok _ -> Alcotest.fail (what ^ ": malformed input validated as Ok")
  | Error _ -> ()

let test_validate_malformed () =
  (* Truncated CSV header. *)
  check_invalid "truncated csv header" (Tel.validate Tel.Csv "time,na");
  check_invalid "empty csv" (Tel.validate Tel.Csv "");
  (* Bad JSONL lines. *)
  check_invalid "unterminated object" (Tel.validate Tel.Jsonl "{\"a\": 1");
  check_invalid "bare value line" (Tel.validate Tel.Jsonl "{\"a\":1}\nnot json\n");
  check_invalid "trailing garbage" (Tel.validate Tel.Jsonl "{\"a\":1} extra");
  check_invalid "bad escape" (Tel.validate Tel.Jsonl "{\"a\":\"\\x\"}");
  Alcotest.(check bool) "non-object jsonl line rejected" true
    (Result.is_error (Tel.validate Tel.Jsonl "[1,2,3]"));
  (* Prometheus parse errors. *)
  check_invalid "prometheus garbage" (Tel.validate Tel.Prometheus "!!!not metrics");
  check_invalid "prometheus bad value"
    (Tel.validate Tel.Prometheus "metric_a{label=\"x\"} notanumber");
  (* Well-formed inputs still pass. *)
  (match Tel.validate Tel.Jsonl "{\"a\":1}\n{\"b\":[true,null]}\n" with
  | Ok n -> Alcotest.(check int) "jsonl lines counted" 2 n
  | Error e -> Alcotest.fail ("valid jsonl rejected: " ^ e))

let test_validate_file_malformed () =
  let write path content =
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    path
  in
  let dir = Filename.temp_file "telemetry_validate" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  check_invalid "csv file with truncated header"
    (Tel.validate_file (write (Filename.concat dir "bad.csv") "time,na\n1,2\n"));
  check_invalid "jsonl file with bad line"
    (Tel.validate_file (write (Filename.concat dir "bad.jsonl") "{\"a\":1}\n{oops\n"));
  check_invalid "prom file with parse error"
    (Tel.validate_file (write (Filename.concat dir "bad.prom") "{{{\n"))

(* finish reports write errors instead of raising, and double-finish can
   never duplicate the final snapshot. *)
let test_finish_reports_errors_and_is_idempotent () =
  let sim = Engine.Sim.create ~seed:1 () in
  let bad = Tel.create ~sim ~path:"/nonexistent-dir-for-test/metrics.jsonl" () in
  ignore (Engine.Sim.schedule_at sim (Engine.Time.sec 3) ignore);
  ignore (Engine.Sim.run sim);
  (match Tel.finish bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "write into a missing directory must be an Error");
  Alcotest.(check bool) "sink is closed after a failed write" true (Tel.closed bad);
  let path = Filename.temp_file "telemetry_finish" ".jsonl" in
  let sim2 = Engine.Sim.create ~seed:2 () in
  let sink = Tel.create ~sim:sim2 ~path () in
  ignore (Engine.Sim.schedule_at sim2 (Engine.Time.sec 3) ignore);
  ignore (Engine.Sim.run sim2);
  Tel.close sink;
  let n1 =
    match Tel.finish sink with
    | Ok n -> n
    | Error e -> Alcotest.fail ("finish failed: " ^ e)
  in
  let n2 =
    match Tel.finish sink with
    | Ok n -> n
    | Error e -> Alcotest.fail ("second finish failed: " ^ e)
  in
  Alcotest.(check int) "double finish adds no snapshot" n1 n2;
  Alcotest.(check int) "snapshot list is stable" n1 (List.length (Tel.snapshots sink));
  (match Tel.validate_file path with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("rewritten file invalid: " ^ e));
  Sys.remove path

let suite =
  [
    Alcotest.test_case "scenario parse" `Quick test_scenario_parse;
    Alcotest.test_case "scenario roundtrip" `Quick test_scenario_roundtrip;
    Alcotest.test_case "scenario parse errors" `Quick test_scenario_parse_errors;
    Alcotest.test_case "scenario executes parsed" `Quick test_scenario_executes_parsed;
    Alcotest.test_case "collector dump roundtrip" `Quick test_dump_roundtrip;
    Alcotest.test_case "collector dump errors" `Quick test_dump_parse_errors;
    Alcotest.test_case "collector rate buckets" `Quick test_rate_buckets;
    Alcotest.test_case "flap damping trade-off" `Quick test_flap_damping_tradeoff;
    Alcotest.test_case "format_of_path edge cases" `Quick test_format_of_path_edges;
    Alcotest.test_case "validate rejects malformed inputs" `Quick test_validate_malformed;
    Alcotest.test_case "validate_file rejects malformed files" `Quick
      test_validate_file_malformed;
    Alcotest.test_case "finish error reporting + idempotency" `Quick
      test_finish_reports_errors_and_is_idempotent;
  ]
