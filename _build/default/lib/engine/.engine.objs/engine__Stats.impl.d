lib/engine/stats.ml: Array Float Fmt List Stdlib
