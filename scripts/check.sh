#!/bin/sh
# Repo-wide check: format (if ocamlformat is available), build, unit
# tests, and the end-to-end metrics smoke run.  Exits non-zero on the
# first failure.  Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$1"; }

step "format"
if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt
else
  echo "ocamlformat not installed — skipping format check"
fi

step "build"
dune build

step "unit tests"
dune runtest

step "smoke (instrumented run + metrics validation)"
dune build @smoke

step "chaos smoke (cluster-head crash/restart + graceful degradation)"
dune build @chaos-smoke

step "chaos campaign (25 seeded fault schedules through the invariant oracle)"
dune build @chaos-campaign

step "parallel smoke (multi-domain sweep == sequential differential)"
dune build @par-smoke

step "trace smoke (causal spans: valid Chrome JSON, seed-stable critical path)"
dune build @trace-smoke

step "bench smoke (quick sweep + JSON baseline validation)"
dune build @bench-smoke

step "scale smoke (reduced 500-AS run + PR 8 baseline ratio guards)"
dune build @scale-smoke

step "shard smoke (500-AS sharded run == sequential differential + PR 9 baseline guards)"
dune build @shard-smoke

step "loss smoke (data-plane loss sweep differential + PR 10 baseline guards)"
dune build @loss-smoke

printf '\nall checks passed\n'
