(** Hybridsdn — public facade of the hybrid BGP-SDN emulation framework.

    Re-exports every layer under one roof and provides the quickstart
    entry points:

    {[
      let spec = Core.sdn_tail ~k:8 (Core.Topo.clique 16) in
      let exp = Core.run ~seed:1 spec in
      let m = Core.measure_withdrawal exp (Core.Topo.asn 0) in
      Fmt.pr "converged in %.1fs@." (Core.seconds m)
    ]} *)

val version : string

(** {1 Engine: deterministic discrete-event simulation} *)

module Time = Engine.Time
module Rng = Engine.Rng
module Stats = Engine.Stats
module Sim = Engine.Sim
module Trace = Engine.Trace

(** {1 Network substrate} *)

module Asn = Net.Asn
module Ipv4 = Net.Ipv4
module Graph = Net.Graph
module Packet = Net.Packet

(** {1 Topologies} *)

module Spec = Topology.Spec
module Caida = Topology.Caida
module Iplane = Topology.Iplane
module Random_models = Topology.Random_models

(** Artificial topology shorthands (clique, star, ring, ...). *)
module Topo : sig
  include module type of Topology.Artificial
end

(** {1 BGP} *)

module Bgp_attrs = Bgp.Attrs
module Bgp_damping = Bgp.Damping
module Bgp_route = Bgp.Route
module Bgp_policy = Bgp.Policy
module Bgp_decision = Bgp.Decision
module Bgp_config = Bgp.Config
module Bgp_router = Bgp.Router
module Bgp_collector = Bgp.Collector

(** {1 SDN} *)

module Flow = Sdn.Flow
module Flow_table = Sdn.Flow_table
module Openflow = Sdn.Openflow
module Switch = Sdn.Switch

(** {1 The IDR controller cluster} *)

module As_graph = Cluster_ctl.As_graph
module Controller = Cluster_ctl.Controller
module Speaker = Cluster_ctl.Speaker

(** {1 Experiment framework} *)

module Config = Framework.Config
module Network = Framework.Network
module Experiment = Framework.Experiment
module Experiments = Framework.Experiments
module Convergence = Framework.Convergence
module Monitor = Framework.Monitor
module Scenario = Framework.Scenario
module Visualize = Framework.Visualize
module Logparse = Framework.Logparse
module Addressing = Framework.Addressing
module Looking_glass = Framework.Looking_glass

(** {1 Quickstart helpers} *)

val sdn_tail : k:int -> Spec.t -> Spec.t
(** Mark the last [k] ASes of a spec as SDN-controlled. *)

val run : ?config:Config.t -> ?seed:int -> Spec.t -> Experiment.t
(** Build and bootstrap an experiment. *)

val measure_withdrawal : Experiment.t -> Asn.t -> Convergence.measurement
(** Announce the AS's default prefix, settle, withdraw it, measure. *)

val measure_announcement : Experiment.t -> Asn.t -> Convergence.measurement

val seconds : Convergence.measurement -> float
