lib/bgp/wire.ml: Attrs Buffer Bytes Char Community Fmt Int32 List Message Net Result
