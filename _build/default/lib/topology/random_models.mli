(** Random topology models.  All results are connected (components are
    stitched); with [~infer_rels:true] links are oriented
    customer→provider towards the higher-degree endpoint, otherwise all
    links are [Open]. *)

val erdos_renyi : ?infer_rels:bool -> Engine.Rng.t -> n:int -> p:float -> Spec.t

val barabasi_albert : ?infer_rels:bool -> Engine.Rng.t -> n:int -> m:int -> Spec.t
(** Preferential attachment with [m] links per new node. *)

val waxman : ?infer_rels:bool -> ?alpha:float -> ?beta:float -> Engine.Rng.t -> n:int -> Spec.t
(** Geometric Waxman model on the unit square. *)

val glp : ?infer_rels:bool -> ?p:float -> ?beta:float -> Engine.Rng.t -> n:int -> m:int -> Spec.t
(** Generalized Linear Preference (Bu–Towsley): with probability [p]
    densify with [m] internal links, else a new node joins with [m]
    links; attachment ∝ (degree − beta).  Closer to measured AS degree
    distributions than plain preferential attachment. *)
