(* Quickstart: the paper's headline experiment in ~20 lines.

   Build a 16-AS clique, centralize half of it under the IDR controller,
   announce a prefix, withdraw it, and compare convergence with the pure
   BGP baseline.

     dune exec examples/quickstart.exe *)

let () =
  let origin = Core.Topo.asn 0 in
  let measure ~sdn_members =
    let spec = Core.Topo.clique 16 in
    let spec = if sdn_members = 0 then spec else Core.sdn_tail ~k:sdn_members spec in
    let exp = Core.run ~seed:1 spec in
    Core.seconds (Core.measure_withdrawal exp origin)
  in
  let baseline = measure ~sdn_members:0 in
  let hybrid = measure ~sdn_members:8 in
  Fmt.pr "withdrawal convergence on a 16-AS clique@.";
  Fmt.pr "  pure BGP:             %6.1f s@." baseline;
  Fmt.pr "  8 of 16 centralized:  %6.1f s@." hybrid;
  Fmt.pr "  improvement:          %6.1fx@." (baseline /. hybrid);
  (* The framework also renders the experiment's component diagram
     (the paper's Fig. 1) for any topology: *)
  let spec = Core.sdn_tail ~k:8 (Core.Topo.clique 16) in
  let dot = Core.Visualize.spec_to_dot spec in
  let oc = open_out "quickstart-components.dot" in
  output_string oc dot;
  close_out oc;
  Fmt.pr "@.component diagram written to quickstart-components.dot@."
