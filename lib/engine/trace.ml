(* Structured event log.

   The original framework grep-analyses Quagga log files; we keep structured
   records and can render them to similar text lines, so the log-analysis
   tooling (framework.Logparse) has a faithful input format.

   Bounded traces use an exact circular buffer: with [capacity = n] the
   log retains precisely the [n] newest records, each insertion O(1).
   Unbounded traces (capacity 0) use a doubling array. *)

type level = Debug | Info | Warn

type record = {
  time : Time.t;
  node : string;
  category : string;
  level : level;
  message : string;
}

let dummy =
  { time = Time.zero; node = ""; category = ""; level = Debug; message = "" }

type t = {
  mutable arr : record array;
  mutable start : int; (* index of the oldest retained record *)
  mutable count : int;
  mutable total : int; (* records ever seen, eviction-proof *)
  mutable warns : int; (* Warn-level records ever seen *)
  mutable enabled : bool;
  capacity : int; (* 0 = unbounded *)
}

let create ?(enabled = true) ?(capacity = 0) () =
  let capacity = Stdlib.max 0 capacity in
  let initial = if capacity > 0 then capacity else 64 in
  { arr = Array.make initial dummy; start = 0; count = 0; total = 0; warns = 0; enabled; capacity }

let set_enabled t flag = t.enabled <- flag

let enabled t = t.enabled

let record t ~time ~node ~category ?(level = Info) message =
  if t.enabled then begin
    let r = { time; node; category; level; message } in
    t.total <- t.total + 1;
    if level = Warn then t.warns <- t.warns + 1;
    if t.capacity > 0 then
      if t.count < t.capacity then begin
        t.arr.((t.start + t.count) mod t.capacity) <- r;
        t.count <- t.count + 1
      end
      else begin
        (* Full ring: the slot at [start] holds the oldest record —
           overwrite it and rotate. *)
        t.arr.(t.start) <- r;
        t.start <- (t.start + 1) mod t.capacity
      end
    else begin
      if t.count = Array.length t.arr then begin
        let bigger = Array.make (2 * t.count) dummy in
        Array.blit t.arr 0 bigger 0 t.count;
        t.arr <- bigger
      end;
      t.arr.(t.count) <- r;
      t.count <- t.count + 1
    end
  end

let count t = t.count

let total t = t.total

let warn_count t = t.warns

let get t i =
  if t.capacity > 0 then t.arr.((t.start + i) mod t.capacity) else t.arr.(i)

let records t = List.init t.count (get t)

let clear t =
  Array.fill t.arr 0 (Array.length t.arr) dummy;
  t.start <- 0;
  t.count <- 0

let filter ?node ?category ?since t =
  let matches r =
    (match node with None -> true | Some n -> String.equal r.node n)
    && (match category with None -> true | Some c -> String.equal r.category c)
    && match since with None -> true | Some s -> Time.(r.time >= s)
  in
  List.filter matches (records t)

let level_to_string = function Debug -> "debug" | Info -> "info" | Warn -> "warn"

let render_line r =
  Fmt.str "%012d %s %s[%s]: %s" (Time.to_us r.time) (level_to_string r.level)
    r.node r.category r.message

let to_lines t = List.map render_line (records t)

let last_time_matching t pred =
  (* Scan newest to oldest so the first match is the latest. *)
  let rec find i =
    if i < 0 then None
    else
      let r = get t i in
      if pred r then Some r.time else find (i - 1)
  in
  find (t.count - 1)
