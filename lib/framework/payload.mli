(** The union message type carried by the emulated fabric. *)

type t =
  | Bgp of Bgp.Message.t
  | Openflow of Sdn.Openflow.t
  | Data of Net.Packet.t

val pp : Format.formatter -> t -> unit

val rehash : t -> t
(** Re-intern domain-local hash-consed state (BGP path attributes,
    including those inside relayed OpenFlow messages) on the calling
    domain — required on the receiving side of a cross-shard exchange. *)
