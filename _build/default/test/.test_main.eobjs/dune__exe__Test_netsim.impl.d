test/test_netsim.ml: Alcotest Engine Gen Graph Link List Net Netsim Option QCheck QCheck_alcotest Sim Time
