test/test_controller.ml: Alcotest Bgp Cluster_ctl Framework List Net Option Topology
