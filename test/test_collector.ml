(* Bgp.Collector: recording and timestamps. *)

open Engine

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let nh = Net.Ipv4.addr_of_octets 10 0 0 1

let setup () =
  let sim = Sim.create () in
  let sent = ref [] in
  let collector =
    Bgp.Collector.create ~sim ~asn:(Net.Asn.of_int 64000) ~node_id:99 ~router_id:nh
      ~send:(fun ~dst msg ->
        sent := (dst, msg) :: !sent;
        true)
      ()
  in
  Bgp.Collector.add_peer collector ~peer_asn:(Net.Asn.of_int 65001) ~peer_node:1;
  (sim, collector, sent)

let announce_update prefix =
  Bgp.Message.update ~announced:[ (prefix, Bgp.Attrs.make ~next_hop:nh ()) ] ()

let test_open_autoresponse () =
  let _, collector, sent = setup () in
  Bgp.Collector.handle_message collector ~from:1
    (Bgp.Message.Open { asn = Net.Asn.of_int 65001; router_id = nh; hold_time = 0 });
  match !sent with
  | [ (1, Bgp.Message.Open _) ] -> ()
  | _ -> Alcotest.fail "collector must respond to OPEN with OPEN"

let test_records_events () =
  let sim, collector, _ = setup () in
  ignore
    (Sim.schedule_at sim (Time.ms 5) (fun () ->
         Bgp.Collector.handle_message collector ~from:1 (announce_update (p "100.64.0.0/24"))));
  ignore
    (Sim.schedule_at sim (Time.ms 9) (fun () ->
         Bgp.Collector.handle_message collector ~from:1
           (Bgp.Message.update ~withdrawn:[ p "100.64.0.0/24" ] ())));
  ignore (Sim.run sim);
  Alcotest.(check int) "two events" 2 (Bgp.Collector.event_count collector);
  (match Bgp.Collector.events collector with
  | [ e1; e2 ] ->
    Alcotest.(check int) "first at 5ms" 5_000 (Time.to_us e1.Bgp.Collector.time);
    Alcotest.(check bool) "first is announce" true
      (match e1.Bgp.Collector.action with Bgp.Collector.Announce _ -> true | _ -> false);
    Alcotest.(check bool) "second is withdraw" true
      (e2.Bgp.Collector.action = Bgp.Collector.Withdraw)
  | _ -> Alcotest.fail "expected 2 events");
  Alcotest.(check (option int)) "last update time" (Some 9_000)
    (Option.map Time.to_us (Bgp.Collector.last_update_time collector))

let test_per_prefix_queries () =
  let sim, collector, _ = setup () in
  ignore
    (Sim.schedule_at sim (Time.ms 1) (fun () ->
         Bgp.Collector.handle_message collector ~from:1 (announce_update (p "100.64.0.0/24"))));
  ignore
    (Sim.schedule_at sim (Time.ms 2) (fun () ->
         Bgp.Collector.handle_message collector ~from:1 (announce_update (p "100.64.1.0/24"))));
  ignore (Sim.run sim);
  Alcotest.(check int) "events for prefix" 1
    (List.length (Bgp.Collector.events_for collector (p "100.64.0.0/24")));
  Alcotest.(check (option int)) "last for prefix" (Some 1_000)
    (Option.map Time.to_us (Bgp.Collector.last_update_for collector (p "100.64.0.0/24")));
  Alcotest.(check (option int)) "unknown prefix" None
    (Option.map Time.to_us (Bgp.Collector.last_update_for collector (p "9.9.9.0/24")))

let test_unknown_peer_ignored () =
  let _, collector, _ = setup () in
  Bgp.Collector.handle_message collector ~from:42 (announce_update (p "100.64.0.0/24"));
  Alcotest.(check int) "ignored" 0 (Bgp.Collector.event_count collector)

let test_clear () =
  let _, collector, _ = setup () in
  Bgp.Collector.handle_message collector ~from:1 (announce_update (p "100.64.0.0/24"));
  Bgp.Collector.clear collector;
  Alcotest.(check int) "cleared" 0 (Bgp.Collector.event_count collector)

let suite =
  [
    Alcotest.test_case "OPEN auto-response" `Quick test_open_autoresponse;
    Alcotest.test_case "records events" `Quick test_records_events;
    Alcotest.test_case "per-prefix queries" `Quick test_per_prefix_queries;
    Alcotest.test_case "unknown peer ignored" `Quick test_unknown_peer_ignored;
    Alcotest.test_case "clear" `Quick test_clear;
  ]
