lib/bgp/collector.mli: Attrs Engine Format Message Net
