(* Deterministic, seed-stable partitioner for sharded execution.

   Goals, in order: (1) identical output for identical (spec, shards,
   seed) on every host — the partition feeds a bit-reproducible sharded
   run; (2) every SDN member on shard 0, so speaker/controller traffic
   never crosses a shard boundary; (3) regions that follow the topology
   (BFS growth from high-degree seeds) so most BGP chatter stays
   intra-shard; (4) rough size balance (smallest region grows next).

   No RNG is drawn: the seed only rotates the deterministic candidate
   order, which is enough to get different-but-stable partitions per
   experiment seed. *)

type t = {
  shards : int;
  assign : (Net.Asn.t, int) Hashtbl.t;
  sizes : int array;
}

let shards t = t.shards

let shard_of t asn =
  match Hashtbl.find_opt t.assign asn with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Partition.shard_of: unknown %a" Net.Asn.pp asn)

let sizes t = Array.copy t.sizes

let assignment t =
  Hashtbl.fold (fun asn s acc -> (asn, s) :: acc) t.assign []
  |> List.sort (fun (a, _) (b, _) -> Net.Asn.compare a b)

let cut_links t spec =
  List.fold_left
    (fun acc (l : Spec.link_spec) ->
      if shard_of t l.a <> shard_of t l.b then acc + 1 else acc)
    0 (Spec.links spec)

let rotate k xs =
  let n = List.length xs in
  if n = 0 then []
  else begin
    let k = ((k mod n) + n) mod n in
    let rec go i acc rest =
      if i = 0 then rest @ List.rev acc
      else match rest with x :: tl -> go (i - 1) (x :: acc) tl | [] -> List.rev acc
    in
    go k [] xs
  end

let compute ?(seed = 0) ~shards spec =
  if shards < 1 then invalid_arg "Partition.compute: shards must be >= 1";
  let asns = List.sort Net.Asn.compare (Spec.asns spec) in
  let n = List.length asns in
  let assign = Hashtbl.create (max 16 n) in
  let sizes = Array.make shards 0 in
  let put asn s =
    if not (Hashtbl.mem assign asn) then begin
      Hashtbl.replace assign asn s;
      sizes.(s) <- sizes.(s) + 1
    end
  in
  let sorted_neighbors a = List.sort Net.Asn.compare (Spec.neighbors spec a) in
  let sdn = List.sort Net.Asn.compare (Spec.sdn_asns spec) in
  (* SDN members are pinned to shard 0: the speaker and controller live
     there, so centralized control traffic never crosses the barrier. *)
  List.iter (fun a -> put a 0) sdn;
  if shards > 1 then begin
    let degree a = List.length (Spec.neighbors spec a) in
    let candidates =
      asns
      |> List.filter (fun a -> not (Hashtbl.mem assign a))
      |> List.sort (fun a b ->
             match compare (degree b) (degree a) with
             | 0 -> Net.Asn.compare a b
             | c -> c)
      |> rotate seed
    in
    let next_cand = ref candidates in
    let rec pop_candidate () =
      match !next_cand with
      | [] -> None
      | a :: rest ->
        next_cand := rest;
        if Hashtbl.mem assign a then pop_candidate () else Some a
    in
    let frontiers = Array.init shards (fun _ -> Queue.create ()) in
    let expand s a = List.iter (fun b -> Queue.add b frontiers.(s)) (sorted_neighbors a) in
    (* the SDN block's neighborhood is shard 0's initial frontier *)
    List.iter (fun a -> expand 0 a) sdn;
    (* one high-degree seed per still-empty region *)
    for s = 0 to shards - 1 do
      if sizes.(s) = 0 then
        match pop_candidate () with
        | Some a ->
          put a s;
          expand s a
        | None -> ()
    done;
    let assigned = ref (Array.fold_left ( + ) 0 sizes) in
    while !assigned < n do
      (* smallest region grows next; ties go to the lowest shard index *)
      let s = ref 0 in
      for i = 1 to shards - 1 do
        if sizes.(i) < sizes.(!s) then s := i
      done;
      let s = !s in
      let rec next_from_frontier () =
        match Queue.take_opt frontiers.(s) with
        | None -> None
        | Some a -> if Hashtbl.mem assign a then next_from_frontier () else Some a
      in
      let pick =
        match next_from_frontier () with
        | Some a -> Some a
        | None -> pop_candidate () (* region walled in: jump to a fresh component *)
      in
      match pick with
      | Some a ->
        put a s;
        expand s a;
        incr assigned
      | None ->
        (* candidates exhausted (all remaining nodes were assigned
           meanwhile) — close out by scanning the canonical order *)
        List.iter (fun a -> put a s) asns;
        assigned := n
    done
  end
  else List.iter (fun a -> put a 0) asns;
  { shards; assign; sizes }
