(** The cluster BGP speaker: terminates cluster members' external eBGP
    peerings (preserving AS identity), relays updates to/from the
    controller, deduplicates announcements per session. *)

type t

type stats = {
  mutable updates_in : int;
  mutable updates_out : int;
  mutable opens : int;
}

val create :
  ?liveness:Bgp.Config.keepalive ->
  sim:Engine.Sim.t ->
  send_relay:(member:Net.Asn.t -> neighbor:Net.Asn.t -> Bgp.Message.t -> bool) ->
  unit ->
  t
(** [send_relay] forwards a wire message toward the neighbor via the
    member's border switch.  [liveness] enables per-session KEEPALIVE
    emission and hold-timer supervision (negotiated per RFC 4271: the
    session hold time is the minimum of both proposals, 0 disables). *)

val node : t -> Engine.Node.t
(** The runtime node: a crash silently loses every session's state; a
    restart re-opens each configured session with a NOTIFICATION-then-OPEN
    exchange so remote routers flush and resync. *)

val set_handlers :
  t ->
  on_update:(member:Net.Asn.t -> neighbor:Net.Asn.t -> Bgp.Message.update -> unit) ->
  on_session:(member:Net.Asn.t -> neighbor:Net.Asn.t -> up:bool -> unit) ->
  unit
(** Wire the controller in. *)

val add_session :
  ?mrai_config:Bgp.Config.t ->
  t ->
  member:Net.Asn.t ->
  neighbor:Net.Asn.t ->
  member_addr:Net.Ipv4.addr ->
  unit
(** Configure one external peering.  [mrai_config] enables conventional
    MRAI pacing of the speaker's announcements (off by default). *)

val sessions : t -> (Net.Asn.t * Net.Asn.t) list
(** (member, neighbor) pairs in configuration order. *)

val sessions_of : t -> Net.Asn.t -> Net.Asn.t list

val session_established : t -> member:Net.Asn.t -> neighbor:Net.Asn.t -> bool

val stats : t -> stats

val open_session : t -> member:Net.Asn.t -> neighbor:Net.Asn.t -> unit

val open_all : t -> unit

val session_down : t -> member:Net.Asn.t -> neighbor:Net.Asn.t -> unit
(** E.g. after a PORT_STATUS down for the underlying link. *)

val handle_relay : t -> member:Net.Asn.t -> neighbor:Net.Asn.t -> Bgp.Message.t -> unit

val with_batch : t -> (unit -> 'a) -> 'a
(** Run [f] in an update-batching scope: announcements/withdrawals issued
    inside it coalesce per session and leave as one packed UPDATE per
    session when the outermost scope closes (sessions flushed in
    configuration order).  Outside any scope each change is sent
    immediately, as before. *)

val announce : t -> member:Net.Asn.t -> neighbor:Net.Asn.t -> Net.Ipv4.prefix -> Bgp.Attrs.t -> unit
(** Advertise (deduplicated against the session's Adj-RIB-Out). *)

val withdraw : t -> member:Net.Asn.t -> neighbor:Net.Asn.t -> Net.Ipv4.prefix -> unit

val advertised : t -> member:Net.Asn.t -> neighbor:Net.Asn.t -> Net.Ipv4.prefix -> Bgp.Attrs.t option
