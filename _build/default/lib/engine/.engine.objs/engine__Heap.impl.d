lib/engine/heap.ml: Array Stdlib
