lib/framework/quagga_conf.ml: Addressing Buffer Filename Fmt List Net Sys Topology
