(** The proof-of-concept IDR SDN controller: centralized per-prefix route
    selection on the AS topology graph, flow-rule compilation, BGP
    announcements through the cluster speaker, delayed recomputation. *)

type config = {
  recompute_delay : Engine.Time.span;
  proactive : bool;
      (** true: push flow rules for every decision (the paper's mode);
          false: install on PACKET_IN with an idle timeout *)
  reactive_idle_timeout : Engine.Time.span;
}

val default_config : config
(** 2-second delayed recomputation, proactive installation. *)

type stats = {
  mutable updates_in : int;
  mutable recompute_batches : int;
  mutable prefixes_recomputed : int;
  mutable recompute_skipped : int;
      (** dirty prefixes whose inputs (RIB slice, originators, switch-graph
          version) were unchanged: the deterministic pipeline would have
          reproduced the previous outputs, so the run was elided *)
  mutable flow_mods : int;
  mutable announces : int;
  mutable withdraws : int;
  mutable decision_changes : int;
}

type t

val create :
  ?flow_idle_timeout:Engine.Time.span ->
  ?flow_hard_timeout:Engine.Time.span ->
  sim:Engine.Sim.t ->
  config:config ->
  members:Net.Asn.t list ->
  speaker:Speaker.t ->
  send_switch:(member:Net.Asn.t -> Sdn.Openflow.t -> bool) ->
  node_of_asn:(Net.Asn.t -> int option) ->
  asn_of_node:(int -> Net.Asn.t option) ->
  addr_of_member:(Net.Asn.t -> Net.Ipv4.addr) ->
  policy_of:(member:Net.Asn.t -> neighbor:Net.Asn.t -> Bgp.Policy.t) ->
  intra_links:(Net.Asn.t * Net.Asn.t) list ->
  unit ->
  t
(** Registers itself as the speaker's update/session handler.
    [flow_idle_timeout]/[flow_hard_timeout] stamp every proactively pushed
    flow rule, so installed rules decay at the switch when the controller
    dies and stops refreshing them (the FLOW_REMOVED notification marks
    the prefix dirty so a live controller immediately reinstalls). *)

val node : t -> Engine.Node.t
(** The runtime node: a crash loses the RIB, decisions and installed-rule
    shadow but keeps originations (configuration) and the switch graph; a
    restart re-runs the pipeline for originated prefixes, and external
    routes return as the speaker's sessions resync. *)

val members : t -> Net.Asn.t list

val stats : t -> stats

val switch_graph : t -> Net.Graph.t

val decision : t -> member:Net.Asn.t -> Net.Ipv4.prefix -> As_graph.decision option

val decisions_for : t -> Net.Ipv4.prefix -> As_graph.decision Net.Asn.Map.t

val rib_routes : t -> Net.Ipv4.prefix -> As_graph.exit_route list

val known_prefixes : t -> Net.Ipv4.prefix list

val subscribe_decision_change :
  t -> (Net.Ipv4.prefix -> Net.Asn.t -> As_graph.decision option -> unit) -> unit

val handle_openflow : t -> Sdn.Openflow.t -> unit
(** Entry point for messages arriving at the controller node: PACKET_IN,
    PORT_STATUS, and BGP relays (handed to the speaker). *)

val originate : t -> member:Net.Asn.t -> Net.Ipv4.prefix -> unit

val withdraw_origin : t -> member:Net.Asn.t -> Net.Ipv4.prefix -> unit

val flush_recompute : t -> unit
(** Force pending dirty prefixes to recompute now. *)

val recompute_info : t -> int * int
(** (batches, marks) of the delayed-recomputation scheduler. *)

val resync_member : t -> Net.Asn.t -> unit
(** A member switch restarted with an empty flow table: forget its
    installed rules and mark every known prefix dirty so the next batch
    re-pushes them. *)
