lib/bgp/route.mli: Attrs Engine Format Net
