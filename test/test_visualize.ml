(* Framework.Visualize: dot export and ASCII rendering. *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  n > 0 && scan 0

let test_dot_contains_components () =
  let spec =
    Topology.Spec.with_sdn (Topology.Artificial.clique 4)
      [ Topology.Artificial.asn 2; Topology.Artificial.asn 3 ]
  in
  let dot = Framework.Visualize.spec_to_dot spec in
  Alcotest.(check bool) "graph header" true (contains dot "graph hybrid {");
  Alcotest.(check bool) "legacy node" true (contains dot "\"AS65001\"");
  Alcotest.(check bool) "sdn node is a box" true (contains dot "shape=box");
  Alcotest.(check bool) "collector present" true (contains dot "collector");
  Alcotest.(check bool) "controller present" true (contains dot "controller");
  Alcotest.(check bool) "speaker labeled" true (contains dot "cluster BGP speaker")

let test_dot_without_infrastructure () =
  let spec = Topology.Artificial.clique 3 in
  let dot = Framework.Visualize.spec_to_dot ~with_infrastructure:false spec in
  Alcotest.(check bool) "no collector" false (contains dot "collector")

let test_dot_relationship_styles () =
  let asn = Topology.Artificial.asn in
  let spec =
    Topology.Spec.make ~title:"rels"
      ~nodes:[ Topology.Spec.node (asn 0); Topology.Spec.node (asn 1); Topology.Spec.node (asn 2) ]
      ~links:
        [
          Topology.Spec.link ~rel:Topology.Spec.C2p (asn 0) (asn 1);
          Topology.Spec.link ~rel:Topology.Spec.P2p (asn 1) (asn 2);
        ]
  in
  let dot = Framework.Visualize.spec_to_dot ~with_infrastructure:false spec in
  Alcotest.(check bool) "c2p arrow" true (contains dot "c2p");
  Alcotest.(check bool) "p2p dashed" true (contains dot "p2p")

let test_ascii_boxplot () =
  let results =
    List.map
      (fun s ->
        { Framework.Experiments.seconds = s; changes = 1; collector_updates = 1;
          restore_mean = nan; restore_max = nan;
          metrics = { Engine.Metrics.at = Engine.Time.zero; samples = [] } })
  in
  let point x secs =
    {
      Framework.Experiments.x;
      results = results secs;
      box = Engine.Stats.boxplot secs;
    }
  in
  let series =
    {
      Framework.Experiments.label = "test-series";
      points = [ point 0.0 [ 10.0; 12.0; 14.0 ]; point 2.0 [ 5.0; 6.0; 7.0 ] ];
    }
  in
  let out = Framework.Visualize.series_to_ascii series in
  Alcotest.(check bool) "label shown" true (contains out "test-series");
  Alcotest.(check bool) "median marker" true (contains out "#");
  Alcotest.(check bool) "box body" true (contains out "=");
  Alcotest.(check bool) "medians annotated" true (contains out "med=12.0")

let test_timeline () =
  let trace = Engine.Trace.create () in
  Engine.Trace.record trace ~time:(Engine.Time.ms 3) ~node:"AS65001" ~category:"bgp"
    "bestpath 100.64.0.0/24 -> [AS65002]";
  let entries = Framework.Logparse.of_trace trace in
  let out =
    Framework.Visualize.timeline entries (Option.get (Net.Ipv4.prefix_of_string "100.64.0.0/24"))
  in
  Alcotest.(check bool) "event rendered" true (contains out "bestpath")

let suite =
  [
    Alcotest.test_case "dot components" `Quick test_dot_contains_components;
    Alcotest.test_case "dot without infrastructure" `Quick test_dot_without_infrastructure;
    Alcotest.test_case "dot relationship styles" `Quick test_dot_relationship_styles;
    Alcotest.test_case "ascii boxplot" `Quick test_ascii_boxplot;
    Alcotest.test_case "timeline" `Quick test_timeline;
  ]
