(* Bgp.Damping: penalty decay math and router-level suppression. *)

open Engine

let p s = Option.get (Net.Ipv4.prefix_of_string s)

let peer = Net.Asn.of_int 65001

let prefix = p "100.64.0.0/24"

(* Small numbers for testable arithmetic: half-life 10 s. *)
let test_config =
  {
    Bgp.Damping.half_life = Time.sec 10;
    suppress_threshold = 2000.0;
    reuse_threshold = 750.0;
    max_suppress = Time.sec 120;
    withdrawal_penalty = 1000.0;
    readvertisement_penalty = 1000.0;
    attribute_change_penalty = 500.0;
  }

let test_penalty_decays () =
  let d = Bgp.Damping.create test_config in
  ignore (Bgp.Damping.record d ~peer ~prefix ~now:Time.zero Bgp.Damping.Withdrawal);
  Alcotest.(check (float 1e-6)) "initial" 1000.0
    (Bgp.Damping.current_penalty d ~peer ~prefix ~now:Time.zero);
  Alcotest.(check (float 1e-6)) "halved at half-life" 500.0
    (Bgp.Damping.current_penalty d ~peer ~prefix ~now:(Time.sec 10));
  Alcotest.(check (float 1e-6)) "quartered at 2x" 250.0
    (Bgp.Damping.current_penalty d ~peer ~prefix ~now:(Time.sec 20))

let test_accumulation_with_decay () =
  let d = Bgp.Damping.create test_config in
  ignore (Bgp.Damping.record d ~peer ~prefix ~now:Time.zero Bgp.Damping.Withdrawal);
  ignore (Bgp.Damping.record d ~peer ~prefix ~now:(Time.sec 10) Bgp.Damping.Attribute_change);
  (* 1000 decayed to 500, plus 500 *)
  Alcotest.(check (float 1e-6)) "decay then add" 1000.0
    (Bgp.Damping.current_penalty d ~peer ~prefix ~now:(Time.sec 10))

let test_suppression_and_reuse () =
  let d = Bgp.Damping.create test_config in
  ignore (Bgp.Damping.record d ~peer ~prefix ~now:Time.zero Bgp.Damping.Withdrawal);
  Alcotest.(check bool) "below threshold" false
    (Bgp.Damping.is_suppressed d ~peer ~prefix ~now:Time.zero);
  ignore (Bgp.Damping.record d ~peer ~prefix ~now:(Time.sec 1) Bgp.Damping.Readvertisement);
  (* ~1933 so far: still under the 2000 threshold *)
  Alcotest.(check bool) "still under threshold" false
    (Bgp.Damping.is_suppressed d ~peer ~prefix ~now:(Time.sec 1));
  (match Bgp.Damping.record d ~peer ~prefix ~now:(Time.sec 1) Bgp.Damping.Attribute_change with
  | `Suppressed_until reuse_at ->
    (* penalty ~2433; reuse at 10 * log2(2433/750) ~ 17 s later *)
    let dt = Time.to_sec_f (Time.diff reuse_at (Time.sec 1)) in
    Alcotest.(check bool) (Fmt.str "reuse in %.1fs" dt) true (dt > 15.0 && dt < 19.0)
  | `Ok -> Alcotest.fail "must suppress above threshold");
  Alcotest.(check bool) "suppressed now" true
    (Bgp.Damping.is_suppressed d ~peer ~prefix ~now:(Time.sec 2));
  Alcotest.(check int) "suppression counted" 1 (Bgp.Damping.suppressions d);
  Alcotest.(check bool) "reusable after decay" false
    (Bgp.Damping.is_suppressed d ~peer ~prefix ~now:(Time.sec 60));
  Alcotest.(check int) "reuse counted" 1 (Bgp.Damping.reuses d)

let test_max_suppress_cap () =
  let config = { test_config with Bgp.Damping.half_life = Time.sec 100000 } in
  let d = Bgp.Damping.create config in
  (* with an enormous half-life the penalty barely decays; only the cap
     can lift the suppression *)
  ignore (Bgp.Damping.record d ~peer ~prefix ~now:Time.zero Bgp.Damping.Withdrawal);
  ignore (Bgp.Damping.record d ~peer ~prefix ~now:Time.zero Bgp.Damping.Withdrawal);
  Alcotest.(check bool) "suppressed" true
    (Bgp.Damping.is_suppressed d ~peer ~prefix ~now:(Time.sec 60));
  Alcotest.(check bool) "cap lifts it" false
    (Bgp.Damping.is_suppressed d ~peer ~prefix ~now:(Time.sec 121))

let test_span_to_reuse () =
  let span = Bgp.Damping.span_to_reuse test_config 1500.0 in
  Alcotest.(check bool) "1500 -> 750 takes one half-life" true
    (Float.abs (Time.to_sec_f span -. 10.0) < 0.01);
  Alcotest.(check bool) "already reusable" true
    (Time.equal (Bgp.Damping.span_to_reuse test_config 700.0) Time.span_zero)

(* Router-level: a flapping origin gets its route suppressed at the
   receiver, and the route comes back after the penalty decays. *)
let test_router_suppression () =
  let h = Test_router.make_harness () in
  let a = Test_router.add_router h 65001 in
  let b = Test_router.add_router ~damping:test_config h 65002 in
  Test_router.peer_pair a b;
  Bgp.Router.start a;
  Test_router.run_until h (Time.sec 1);
  (* flap quickly (2 s apart, half-life 10 s) so penalties accumulate *)
  Bgp.Router.originate a prefix;
  Test_router.run_until h (Time.sec 3);
  Bgp.Router.withdraw_origin a prefix;
  Test_router.run_until h (Time.sec 5);
  Bgp.Router.originate a prefix;
  Test_router.run_until h (Time.sec 7);
  Bgp.Router.withdraw_origin a prefix;
  Test_router.run_until h (Time.sec 9);
  Bgp.Router.originate a prefix;
  Test_router.run_until h (Time.sec 11);
  Alcotest.(check bool) "suppressed at receiver" true (Bgp.Router.best b prefix = None);
  (match Bgp.Router.damping_state b with
  | Some d ->
    Alcotest.(check bool) "suppression recorded" true (Bgp.Damping.suppressions d >= 1)
  | None -> Alcotest.fail "damping enabled");
  (* the scheduled reuse re-decision restores it once decayed *)
  Test_router.run h;
  Alcotest.(check bool) "route restored after reuse" true (Bgp.Router.best b prefix <> None)

let test_router_no_damping_unaffected () =
  let h = Test_router.make_harness () in
  let a = Test_router.add_router h 65001 in
  let b = Test_router.add_router h 65002 in
  Test_router.peer_pair a b;
  Bgp.Router.start a;
  Test_router.run h;
  Bgp.Router.originate a prefix;
  Test_router.run h;
  Bgp.Router.withdraw_origin a prefix;
  Test_router.run h;
  Bgp.Router.originate a prefix;
  Test_router.run h;
  Alcotest.(check bool) "no suppression without damping" true
    (Bgp.Router.best b prefix <> None)

let prop_decay_monotone =
  QCheck.Test.make ~name:"penalty decay is monotone in time" ~count:200
    QCheck.(pair (float_bound_inclusive 5000.0) (pair small_nat small_nat))
    (fun (pen, (t1, t2)) ->
      let d = Bgp.Damping.create test_config in
      ignore (Bgp.Damping.record d ~peer ~prefix ~now:Time.zero Bgp.Damping.Withdrawal);
      ignore pen;
      let early = Bgp.Damping.current_penalty d ~peer ~prefix ~now:(Time.sec (min t1 t2)) in
      let late = Bgp.Damping.current_penalty d ~peer ~prefix ~now:(Time.sec (max t1 t2)) in
      late <= early +. 1e-9)

let suite =
  [
    Alcotest.test_case "penalty decays" `Quick test_penalty_decays;
    Alcotest.test_case "accumulation with decay" `Quick test_accumulation_with_decay;
    Alcotest.test_case "suppression and reuse" `Quick test_suppression_and_reuse;
    Alcotest.test_case "max suppress cap" `Quick test_max_suppress_cap;
    Alcotest.test_case "span to reuse" `Quick test_span_to_reuse;
    Alcotest.test_case "router-level suppression" `Quick test_router_suppression;
    Alcotest.test_case "no damping, no suppression" `Quick test_router_no_damping_unaffected;
    QCheck_alcotest.to_alcotest prop_decay_monotone;
  ]
