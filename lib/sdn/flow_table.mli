(** A switch's flow table: highest priority wins, then longest prefix. *)

type t

val create : ?metrics:Engine.Metrics.t -> ?labels:Engine.Metrics.labels -> unit -> t
(** When [metrics] is given, misses are exported as
    [sdn_flow_table_misses_total] and occupancy as the [sdn_flow_table_rules]
    gauge, both carrying [labels]. *)

val rules : t -> Flow.rule list

val size : t -> int

val misses : t -> int
(** Lookups that matched no rule. *)

val add : t -> Flow.rule -> unit
(** Add-or-replace on the (match, priority) key. *)

val delete : t -> match_prefix:Net.Ipv4.prefix -> unit
(** Delete all rules matching exactly this prefix (any priority). *)

val delete_exact : t -> Flow.rule -> unit

val remove_physical : t -> Flow.rule -> bool
(** Remove exactly this rule record (physical identity); [false] when it
    was not installed.  Timeout expiry uses this so a later same-key
    replacement is never removed by the old rule's timer. *)

val mem_physical : t -> Flow.rule -> bool

val clear : t -> unit

val lookup : t -> Net.Ipv4.addr -> Flow.rule option
(** Winning rule for the address; bumps its packet counter. *)

val lookup_idx : t -> int -> int
(** [lookup_idx t bits] is the index (into the sorted rule array, see
    {!nth_rule}) of the winning rule for an address given as
    {!Net.Ipv4.addr_to_bits} int bits, or [-1] on a miss.  Unlike
    {!lookup} it allocates nothing and mutates nothing — no [option]
    boxing, no packet/miss counters — so read-only consumers (the static
    forwarding verifier, the data-plane fast path) can use it without
    perturbing table state. *)

val nth_rule : t -> int -> Flow.rule
(** The rule at a {!lookup_idx} index.  @raise Invalid_argument when out
    of bounds (including [-1]). *)

val find : t -> match_prefix:Net.Ipv4.prefix -> Flow.rule option

val entries_sorted : t -> Flow.rule list

val pp : Format.formatter -> t -> unit
