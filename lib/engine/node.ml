(* The node actor runtime.

   Every emulated component (router, switch, speaker, controller,
   collector) sits on one of these: a lifecycle state machine, a bounded
   ingress mailbox with drop accounting, owned timers that die with the
   node, epoch-guarded event scheduling, and snapshot/restore hooks for
   whole-network checkpointing.

   Two invariants keep the runtime behaviour-preserving for runs that
   never crash a node:

   - Delivery through a port drains the mailbox synchronously, so a
     message is processed at the same instant (and in the same order)
     as the direct handler call it replaces.  The queue only holds more
     than one message during re-entrant delivery, which the previous
     closure wiring could not express at all.

   - Metric series (mailbox drops, lifecycle transitions) are registered
     lazily on first increment, so a run that never drops or crashes
     exports byte-identical metrics to the pre-runtime code. *)

type lifecycle = Created | Up | Down

type blob = ..

type t = {
  sim : Sim.t;
  name : string;
  kind : string;
  rng : Rng.t option;
  mailbox_capacity : int;
  mailbox : (unit -> unit) Queue.t;
  mutable draining : bool;
  mutable lifecycle : lifecycle;
  mutable epoch : int;
  mutable timers : Timer.t list; (* reverse adoption order *)
  mutable start_hooks : (first:bool -> unit) list; (* reverse order *)
  mutable crash_hooks : (unit -> unit) list; (* reverse order *)
  mutable snapshot_hook : (unit -> blob) option;
  mutable restore_hook : (blob -> unit) option;
  mutable dropped : int;
  mutable processed : int;
  mutable crashes : int;
  mutable drop_counter : Metrics.Counter.t option;
}

type 'msg port = { node : t; handler : from:int -> 'msg -> unit }

let create ?(kind = "node") ?rng ?(mailbox_capacity = 4096) sim ~name =
  if mailbox_capacity <= 0 then invalid_arg "Node.create: mailbox_capacity must be positive";
  {
    sim;
    name;
    kind;
    rng;
    mailbox_capacity;
    mailbox = Queue.create ();
    draining = false;
    lifecycle = Created;
    epoch = 0;
    timers = [];
    start_hooks = [];
    crash_hooks = [];
    snapshot_hook = None;
    restore_hook = None;
    dropped = 0;
    processed = 0;
    crashes = 0;
    drop_counter = None;
  }

let sim t = t.sim
let name t = t.name
let kind t = t.kind
let lifecycle t = t.lifecycle
let is_up t = t.lifecycle = Up
let epoch t = t.epoch
let rng t = t.rng
let mailbox_depth t = Queue.length t.mailbox
let mailbox_dropped t = t.dropped
let processed t = t.processed
let crashes t = t.crashes

let pp_lifecycle fmt = function
  | Created -> Format.pp_print_string fmt "created"
  | Up -> Format.pp_print_string fmt "up"
  | Down -> Format.pp_print_string fmt "down"

(* Lazily registered so crash-free runs export unchanged metrics. *)
let bump_lifecycle_counter t transition =
  let c =
    Metrics.counter (Sim.metrics t.sim)
      ~help:"node lifecycle transitions"
      ~labels:[ ("kind", t.kind); ("transition", transition) ]
      "node_lifecycle_transitions_total"
  in
  Metrics.Counter.inc c

let bump_drop_counter t =
  let c =
    match t.drop_counter with
    | Some c -> c
    | None ->
        let c =
          Metrics.counter (Sim.metrics t.sim)
            ~help:"messages refused by full node mailboxes"
            ~labels:[ ("kind", t.kind) ]
            "node_mailbox_dropped_total"
        in
        t.drop_counter <- Some c;
        c
  in
  Metrics.Counter.inc c

let on_start t f = t.start_hooks <- f :: t.start_hooks
let on_crash t f = t.crash_hooks <- f :: t.crash_hooks
let set_snapshot t f = t.snapshot_hook <- Some f
let set_restore t f = t.restore_hook <- Some f

let start t =
  match t.lifecycle with
  | Up -> ()
  | (Created | Down) as prev ->
      t.lifecycle <- Up;
      let first = prev = Created in
      if not first then bump_lifecycle_counter t "start";
      List.iter (fun f -> f ~first) (List.rev t.start_hooks)

let crash t =
  match t.lifecycle with
  | Created | Down -> ()
  | Up ->
      t.lifecycle <- Down;
      t.epoch <- t.epoch + 1;
      t.crashes <- t.crashes + 1;
      bump_lifecycle_counter t "crash";
      List.iter Timer.cancel t.timers;
      Queue.clear t.mailbox;
      t.draining <- false;
      Sim.logf t.sim ~node:t.name ~category:"node" ~level:Trace.Warn "crash (epoch %d)"
        t.epoch;
      List.iter (fun f -> f ()) (List.rev t.crash_hooks)

let restart t =
  crash t;
  start t

let own_timer t timer = t.timers <- timer :: t.timers

let timer ?category t ~name ~callback =
  let tm = Timer.create ?category t.sim ~name ~callback in
  own_timer t tm;
  tm

let owned_timers t = List.rev t.timers

let guarded t f =
  let epoch_at_schedule = t.epoch in
  fun () -> if t.epoch = epoch_at_schedule && is_up t then f ()

let schedule_at ?category t at f =
  ignore (Sim.schedule_at ?category t.sim at (guarded t f))

let schedule_after ?category t span f =
  ignore (Sim.schedule_after ?category t.sim span (guarded t f))

(* Mailbox.  Enqueue then drain: with no re-entrancy this is exactly one
   synchronous handler call; under re-entrant delivery the outer drain
   loop processes queued messages in arrival order. *)
let drain t =
  if not t.draining then begin
    t.draining <- true;
    Fun.protect
      ~finally:(fun () -> t.draining <- false)
      (fun () ->
        while not (Queue.is_empty t.mailbox) do
          let work = Queue.pop t.mailbox in
          t.processed <- t.processed + 1;
          work ()
        done)
  end

let port node ~handler = { node; handler }
let port_node p = p.node

let deliver p ~from msg =
  let t = p.node in
  if not (is_up t) then false
  else if Queue.length t.mailbox >= t.mailbox_capacity then begin
    t.dropped <- t.dropped + 1;
    bump_drop_counter t;
    false
  end
  else begin
    Queue.push (fun () -> p.handler ~from msg) t.mailbox;
    if Causal.enabled (Sim.causal t.sim) then
      Sim.annotate t.sim ~category:"node.deliver" ~node:t.name
        ~label:(string_of_int from) ();
    drain t;
    true
  end

(* Snapshot / restore. *)

type state = {
  s_lifecycle : lifecycle;
  s_epoch : int;
  s_timers : (string * Time.t) list;
  s_blob : blob option;
}

let state t =
  let timers =
    List.filter_map
      (fun tm -> match Timer.due tm with Some at -> Some (Timer.name tm, at) | None -> None)
      (owned_timers t)
  in
  {
    s_lifecycle = t.lifecycle;
    s_epoch = t.epoch;
    s_timers = timers;
    s_blob = Option.map (fun f -> f ()) t.snapshot_hook;
  }

let restore_state t st =
  t.lifecycle <- st.s_lifecycle;
  t.epoch <- st.s_epoch;
  List.iter
    (fun (name, at) ->
      match List.find_opt (fun tm -> Timer.name tm = name) (owned_timers t) with
      | Some tm -> Timer.start_at tm at
      | None -> ())
    st.s_timers;
  match (st.s_blob, t.restore_hook) with
  | Some blob, Some f -> f blob
  | _ -> ()
