test/test_flow_table.ml: Alcotest Flow Flow_table Fmt List Net Option QCheck QCheck_alcotest Sdn
