(* A dependency-free domain work pool.

   Shape: one shared FIFO of thunks guarded by a mutex, [jobs - 1]
   worker domains blocked on [nonempty], and a submitting domain that
   also drains the queue during [map] (so [jobs] tasks really do run
   concurrently without over-spawning domains).  Each [map] call owns a
   batch record counting its outstanding tasks; the submitter waits on
   [batch_done] once the queue is empty.  Only one batch is in flight
   at a time — the pool has a single owning domain by contract — so the
   queue is provably empty when [map] returns and the pool is
   immediately reusable. *)

type batch = {
  mutable remaining : int;
  (* lowest-indexed failure wins, so parallel error reporting is
     deterministic *)
  mutable error : (int * exn * Printexc.raw_backtrace) option;
}

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  batch_done : Condition.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

let jobs t = t.jobs

(* The default cap is overridable via HYBRIDSIM_JOBS_CAP so -j 0 can use
   more than 8 cores on big hosts without a code change.  Unset, empty,
   non-numeric, or non-positive values fall back to the built-in cap. *)
let env_cap ~default =
  match Sys.getenv_opt "HYBRIDSIM_JOBS_CAP" with
  | None | Some "" -> default
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> default)

let recommended_jobs ?cap () =
  let cap = match cap with Some c -> c | None -> env_cap ~default:8 in
  let cap = max 1 cap in
  min cap (max 1 (Domain.recommended_domain_count ()))

(* Pull one task or block; [None] only after shutdown. *)
let rec next_task t =
  if t.stopped then None
  else
    match Queue.take_opt t.queue with
    | Some _ as task -> task
    | None ->
      Condition.wait t.nonempty t.mutex;
      next_task t

let rec worker_loop t =
  Mutex.lock t.mutex;
  let task = next_task t in
  Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some task ->
    task ();
    worker_loop t

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      batch_done = Condition.create ();
      stopped = false;
      workers = [||];
    }
  in
  if jobs > 1 then t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.mutex;
    t.stopped <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end
  else t.stopped <- true

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f xs =
  if t.stopped then invalid_arg "Pool.map: pool already shut down";
  match xs with
  | [] -> []
  | xs when t.jobs = 1 -> List.map f xs
  | xs ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results = Array.make n None in
    let batch = { remaining = n; error = None } in
    let task i () =
      (match f arr.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock t.mutex;
        (match batch.error with
        | Some (j, _, _) when j < i -> ()
        | Some _ | None -> batch.error <- Some (i, e, bt));
        Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      batch.remaining <- batch.remaining - 1;
      if batch.remaining = 0 then Condition.broadcast t.batch_done;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.nonempty;
    (* The submitter is a worker too: drain the queue, then wait for
       whatever the other domains still have in flight. *)
    let rec drain () =
      match Queue.take_opt t.queue with
      | Some task ->
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        drain ()
      | None -> ()
    in
    drain ();
    while batch.remaining > 0 do
      Condition.wait t.batch_done t.mutex
    done;
    Mutex.unlock t.mutex;
    (match batch.error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list (Array.map Option.get results)

let map_reduce t ~map:f ~reduce ~init xs = List.fold_left reduce init (map t f xs)

(* Pinned execution: index [i] runs on its own dedicated domain for its
   whole lifetime (index 0 on the caller).  This is NOT what [map] gives
   you — the FIFO hands tasks to whichever worker wakes first — and the
   pinning matters for workloads that (a) build Domain.DLS state (e.g.
   hash-consed attribute tables) that must stay on one domain, and
   (b) synchronize with each other through barriers, where queue-based
   scheduling could park two phases of the same task on one worker and
   deadlock.  Standalone by design: it spawns its own domains and does
   not touch a pool's queue. *)
let run_each ~n f =
  if n < 1 then invalid_arg "Pool.run_each: n must be >= 1";
  if n = 1 then [| f 0 |]
  else begin
    let spawned = Array.init (n - 1) (fun k -> Domain.spawn (fun () -> f (k + 1))) in
    let r0 =
      match f 0 with
      | v -> Ok v
      | exception e -> Error (e, Printexc.get_raw_backtrace ())
    in
    let rest =
      Array.map
        (fun d ->
          match Domain.join d with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ()))
        spawned
    in
    let all = Array.append [| r0 |] rest in
    (* lowest index wins, matching [map]'s deterministic error rule *)
    Array.iter
      (function Error (e, bt) -> Printexc.raise_with_backtrace e bt | Ok _ -> ())
      all;
    Array.map (function Ok v -> v | Error _ -> assert false) all
  end
