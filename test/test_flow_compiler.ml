(* Cluster_ctl.Flow_compiler: decision → FLOW_MOD diffing. *)

open Cluster_ctl

let asn = Net.Asn.of_int

let prefix = Option.get (Net.Ipv4.prefix_of_string "100.64.0.0/24")

let node_of_asn a = Some (Net.Asn.to_int a)

let decision ?(hop = As_graph.Exit { neighbor = asn 65001 }) member =
  {
    As_graph.member = asn member;
    hop;
    as_path = [ asn 65001 ];
    distance = 1.0;
    provenance = Bgp.Policy.From Bgp.Policy.Unrestricted;
  }

let diff ~installed ~desired ~members =
  Flow_compiler.diff ~prefix ~node_of_asn ~members:(List.map asn members)
    ~installed:
      (List.fold_left
         (fun acc (m, a) -> Net.Asn.Map.add (asn m) a acc)
         Net.Asn.Map.empty installed)
    ~desired:
      (List.fold_left
         (fun acc (m, d) -> Net.Asn.Map.add (asn m) d acc)
         Net.Asn.Map.empty desired)
    ()

let mods_of changes member =
  List.concat_map
    (fun (c : Flow_compiler.change) ->
      if Net.Asn.equal c.Flow_compiler.member (asn member) then c.Flow_compiler.mods else [])
    changes

let test_fresh_install () =
  let changes, installed =
    diff ~installed:[] ~desired:[ (65010, decision 65010) ] ~members:[ 65010 ]
  in
  (match mods_of changes 65010 with
  | [ Sdn.Openflow.Flow_mod { command = Sdn.Openflow.Add; rule } ] ->
    Alcotest.(check bool) "action output 65001" true
      (Sdn.Flow.action_equal rule.Sdn.Flow.action (Sdn.Flow.Output 65001));
    Alcotest.(check int) "priority = prefix length" 24 rule.Sdn.Flow.priority
  | _ -> Alcotest.fail "expected one Add");
  Alcotest.(check int) "state recorded" 1 (Net.Asn.Map.cardinal installed)

let test_no_change_no_mods () =
  let changes, _ =
    diff
      ~installed:[ (65010, Sdn.Flow.Output 65001) ]
      ~desired:[ (65010, decision 65010) ]
      ~members:[ 65010 ]
  in
  Alcotest.(check int) "silent when identical" 0 (List.length changes)

let test_action_change_replaces () =
  let changes, installed =
    diff
      ~installed:[ (65010, Sdn.Flow.Output 65002) ]
      ~desired:[ (65010, decision 65010) ]
      ~members:[ 65010 ]
  in
  (match mods_of changes 65010 with
  | [ Sdn.Openflow.Flow_mod { command = Sdn.Openflow.Add; rule } ] ->
    Alcotest.(check bool) "new action" true
      (Sdn.Flow.action_equal rule.Sdn.Flow.action (Sdn.Flow.Output 65001))
  | _ -> Alcotest.fail "expected replacing Add");
  Alcotest.(check bool) "installed updated" true
    (Net.Asn.Map.find_opt (asn 65010) installed = Some (Sdn.Flow.Output 65001))

let test_removal_deletes () =
  let changes, installed =
    diff ~installed:[ (65010, Sdn.Flow.Output 65001) ] ~desired:[] ~members:[ 65010 ]
  in
  (match mods_of changes 65010 with
  | [ Sdn.Openflow.Flow_mod { command = Sdn.Openflow.Delete; _ } ] -> ()
  | _ -> Alcotest.fail "expected Delete");
  Alcotest.(check int) "state empty" 0 (Net.Asn.Map.cardinal installed)

let test_deliver_local_installs_nothing () =
  let changes, installed =
    diff ~installed:[]
      ~desired:[ (65010, decision ~hop:As_graph.Deliver_local 65010) ]
      ~members:[ 65010 ]
  in
  Alcotest.(check int) "no mods" 0 (List.length changes);
  Alcotest.(check int) "no state" 0 (Net.Asn.Map.cardinal installed)

let test_intra_and_bridge_ports () =
  let changes, _ =
    diff ~installed:[]
      ~desired:
        [
          (65010, decision ~hop:(As_graph.Intra { next_member = asn 65011 }) 65010);
          ( 65011,
            decision ~hop:(As_graph.Bridge { via_neighbor = asn 65003; to_member = asn 65012 })
              65011 );
        ]
      ~members:[ 65010; 65011 ]
  in
  (match mods_of changes 65010 with
  | [ Sdn.Openflow.Flow_mod { rule; _ } ] ->
    Alcotest.(check bool) "intra port" true
      (Sdn.Flow.action_equal rule.Sdn.Flow.action (Sdn.Flow.Output 65011))
  | _ -> Alcotest.fail "intra add expected");
  match mods_of changes 65011 with
  | [ Sdn.Openflow.Flow_mod { rule; _ } ] ->
    Alcotest.(check bool) "bridge exits via neighbor" true
      (Sdn.Flow.action_equal rule.Sdn.Flow.action (Sdn.Flow.Output 65003))
  | _ -> Alcotest.fail "bridge add expected"

let suite =
  [
    Alcotest.test_case "fresh install" `Quick test_fresh_install;
    Alcotest.test_case "no change, no mods" `Quick test_no_change_no_mods;
    Alcotest.test_case "action change replaces" `Quick test_action_change_replaces;
    Alcotest.test_case "removal deletes" `Quick test_removal_deletes;
    Alcotest.test_case "deliver-local installs nothing" `Quick test_deliver_local_installs_nothing;
    Alcotest.test_case "intra and bridge ports" `Quick test_intra_and_bridge_ports;
  ]
