lib/framework/visualize.mli: Experiments Logparse Net Topology
