(** BGP path attributes. *)

type origin = Igp | Egp | Incomplete

val origin_rank : origin -> int
(** Decision-process rank: IGP < EGP < Incomplete. *)

val origin_to_string : origin -> string

type t = private {
  as_path : Net.Asn.t list;  (** leftmost = most recently traversed AS *)
  next_hop : Net.Ipv4.addr;
  local_pref : int;
  med : int;
  origin : origin;
  communities : Community.Set.t;
  path_len : int;  (** cached [List.length as_path] *)
  wire_id : int;  (** canonical id of the wire-visible attrs (domain-local) *)
  id : int;  (** canonical id of the full attribute set (domain-local) *)
}
(** Values are hash-consed: every construction returns the canonical,
    physically-unique value for its content, so [equal] is pointer
    equality and [wire_equal] a single int comparison.  Canonical values
    are immutable and must never be mutated through [Obj] tricks.  Intern
    tables and ids are domain-local ([Engine.Pool] runs each experiment on
    one domain); ids are only meaningful for equality within a domain and
    must never be used for ordering. *)

val default_local_pref : int

val make :
  ?as_path:Net.Asn.t list ->
  ?local_pref:int ->
  ?med:int ->
  ?origin:origin ->
  ?communities:Community.Set.t ->
  next_hop:Net.Ipv4.addr ->
  unit ->
  t

val as_path : t -> Net.Asn.t list

val path_length : t -> int

val path_contains : t -> Net.Asn.t -> bool

val prepend : t -> Net.Asn.t -> t
(** Prepend an ASN (what an eBGP speaker does on export). *)

val origin_as : t -> Net.Asn.t option
(** Rightmost (originating) AS of the path. *)

val neighbor_as : t -> Net.Asn.t option
(** Leftmost AS of the path. *)

val with_local_pref : t -> int -> t

val with_next_hop : t -> Net.Ipv4.addr -> t

val with_med : t -> int -> t

val add_community : t -> Community.t -> t

val has_community : t -> Community.t -> bool

val equal : t -> t -> bool
(** Full structural equality — O(1) thanks to interning. *)

val wire_equal : t -> t -> bool
(** Equality of the attributes a peer sees (local-pref excluded) — used to
    suppress duplicate advertisements.  O(1) id comparison. *)

val id : t -> int

val wire_id : t -> int

type intern_stats = {
  distinct_paths : int;
  distinct_wire : int;
  distinct_full : int;
}

val intern_stats : unit -> intern_stats
(** Sizes of this domain's intern tables (distinct AS-paths, wire-visible
    sets, full sets) — for tests and memory accounting. *)

val pp_path : Format.formatter -> Net.Asn.t list -> unit

val pp : Format.formatter -> t -> unit

val rehash : t -> t
(** Re-intern on the calling domain.  Intern tables are domain-local, so
    an attrs value that crossed domains (sharded execution) must be
    rehashed before pointer-equality semantics apply; on the minting
    domain this returns the argument itself. *)
