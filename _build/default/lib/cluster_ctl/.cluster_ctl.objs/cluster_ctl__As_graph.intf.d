lib/cluster_ctl/as_graph.mli: Bgp Format Net
