(* Full-stack wire transport: with [wire_transport] every BGP message
   crosses the RFC 4271 binary codec at the sender.  The emulation must
   behave identically (the codec is transparent), which is the strongest
   integration check the codec can get. *)

let asn = Topology.Artificial.asn

let wire_cfg = { Framework.Config.fast_test with Framework.Config.wire_transport = true }

let plain_cfg = Framework.Config.fast_test

let run_convergence config =
  let spec =
    Topology.Spec.with_sdn (Topology.Artificial.clique 5) [ asn 3; asn 4 ]
  in
  let exp = Framework.Experiment.create ~config ~seed:61 spec in
  let origin = asn 0 in
  let prefix = Framework.Experiment.default_prefix exp origin in
  let m_up =
    Framework.Experiment.measure exp ~prefix (fun () ->
        ignore (Framework.Experiment.announce exp origin))
  in
  let m_down =
    Framework.Experiment.measure exp ~prefix (fun () ->
        ignore (Framework.Experiment.withdraw exp origin))
  in
  (exp, Framework.Experiment.convergence_seconds m_up,
   Framework.Experiment.convergence_seconds m_down)

let test_wire_transport_converges () =
  let exp, up, down = run_convergence wire_cfg in
  Alcotest.(check bool) "announce converges" true (Float.is_finite up);
  Alcotest.(check bool) "withdraw converges" true (Float.is_finite down);
  (* no residual state *)
  let net = Framework.Experiment.network exp in
  List.iter
    (fun a ->
      match Framework.Network.router net a with
      | Some r -> Alcotest.(check int) "loc-rib empty" 0 (Bgp.Router.loc_size r)
      | None -> ())
    (Framework.Network.asns net)

let test_wire_transport_equivalent_routes () =
  (* identical final routing state with and without the codec in the path *)
  let routes config =
    let spec = Topology.Spec.with_sdn (Topology.Artificial.clique 5) [ asn 3; asn 4 ] in
    let exp = Framework.Experiment.create ~config ~seed:61 spec in
    let origin = asn 0 in
    let prefix = Framework.Experiment.default_prefix exp origin in
    ignore
      (Framework.Experiment.measure exp ~prefix (fun () ->
           ignore (Framework.Experiment.announce exp origin)));
    let net = Framework.Experiment.network exp in
    List.filter_map
      (fun a ->
        match Framework.Network.router net a with
        | Some r ->
          Option.map
            (fun route ->
              (Net.Asn.to_int a,
               List.map Net.Asn.to_int (Bgp.Attrs.as_path (Bgp.Route.attrs route))))
            (Bgp.Router.best r prefix)
        | None -> None)
      (Framework.Network.asns net)
  in
  Alcotest.(check (list (pair int (list int)))) "same routes through the codec"
    (routes plain_cfg) (routes wire_cfg)

let test_wire_transport_hybrid_data_plane () =
  let spec = Topology.Spec.with_sdn (Topology.Artificial.clique 5) [ asn 3; asn 4 ] in
  let net = Framework.Network.create ~config:wire_cfg ~seed:62 spec in
  Framework.Network.start net;
  ignore (Framework.Network.settle net);
  let plan = Framework.Network.plan net in
  Framework.Network.originate net (asn 0) (plan.Framework.Addressing.origin_prefix (asn 0));
  Framework.Network.originate net (asn 4) (plan.Framework.Addressing.origin_prefix (asn 4));
  ignore (Framework.Network.settle net);
  Alcotest.(check bool) "legacy -> sdn over wire transport" true
    (Framework.Monitor.reachable net ~src:(asn 0) ~dst:(asn 4));
  Alcotest.(check bool) "sdn -> legacy over wire transport" true
    (Framework.Monitor.reachable net ~src:(asn 4) ~dst:(asn 0))

let suite =
  [
    Alcotest.test_case "converges through the codec" `Quick test_wire_transport_converges;
    Alcotest.test_case "route-for-route equivalent" `Quick test_wire_transport_equivalent_routes;
    Alcotest.test_case "hybrid data plane" `Quick test_wire_transport_hybrid_data_plane;
  ]
