test/test_damping.ml: Alcotest Bgp Engine Float Fmt Net Option QCheck QCheck_alcotest Test_router Time
