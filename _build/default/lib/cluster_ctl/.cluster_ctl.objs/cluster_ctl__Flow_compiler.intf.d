lib/cluster_ctl/flow_compiler.mli: As_graph Net Sdn
