lib/framework/config.mli: Bgp Cluster_ctl Engine
