lib/sdn/openflow.ml: Bgp Flow Fmt Net
