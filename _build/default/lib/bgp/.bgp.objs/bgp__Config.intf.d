lib/bgp/config.mli: Engine
