lib/bgp/rib.mli: Attrs Net Route
