lib/bgp/collector.ml: Attrs Buffer Engine Fmt Hashtbl List Message Net Option String
