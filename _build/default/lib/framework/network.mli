(** The network builder: a topology spec turned into a running emulation —
    legacy BGP routers, SDN switches under the IDR controller + cluster
    speaker, the monitoring collector, automatic addressing/policies, and
    the data plane. *)

type t

val ctrl_node : int
(** Fabric node id hosting the controller + cluster BGP speaker. *)

val collector_node : int

val collector_asn : Net.Asn.t

val create : ?config:Config.t -> seed:int -> Topology.Spec.t -> t
(** Build the emulation (validates the spec).  Call {!start} to open BGP
    sessions, then drive the simulator. *)

val start : t -> unit
(** Open all BGP sessions (routers and cluster speaker). *)

(* --- Accessors --- *)

val sim : t -> Engine.Sim.t

val fabric : t -> Payload.t Net.Netsim.t

val spec : t -> Topology.Spec.t

val plan : t -> Addressing.plan

val config : t -> Config.t

val collector : t -> Bgp.Collector.t

val controller : t -> Cluster_ctl.Controller.t option

val speaker : t -> Cluster_ctl.Speaker.t option

val routers : t -> Bgp.Router.t Net.Asn.Map.t

val router : t -> Net.Asn.t -> Bgp.Router.t option

val switch : t -> Net.Asn.t -> Sdn.Switch.t option

val asns : t -> Net.Asn.t list

val sdn_asns : t -> Net.Asn.t list

val legacy_asns : t -> Net.Asn.t list

val role : t -> Net.Asn.t -> Topology.Spec.role

val asn_of_node : t -> int -> Net.Asn.t option

val node_of_asn : t -> Net.Asn.t -> int option

val link_up : t -> Net.Asn.t -> Net.Asn.t -> bool

val link_delay : t -> Net.Asn.t -> Net.Asn.t -> Engine.Time.span option

(* --- Experiment operations --- *)

val originate : t -> Net.Asn.t -> Net.Ipv4.prefix -> unit
(** Originate at a legacy router or (via the controller) an SDN member;
    also marks the prefix for local data-plane delivery. *)

val withdraw : t -> Net.Asn.t -> Net.Ipv4.prefix -> unit

val fail_link : t -> Net.Asn.t -> Net.Asn.t -> unit
(** @raise Invalid_argument when no such link exists. *)

val recover_link : t -> Net.Asn.t -> Net.Asn.t -> unit

val add_peering :
  ?rel:Topology.Spec.rel -> ?delay:Engine.Time.span -> t -> Net.Asn.t -> Net.Asn.t -> unit
(** Add a new inter-AS peering at runtime ([Open] relationship by
    default; [C2p] = first AS is the customer): creates the link,
    configures both endpoints (router peer, speaker session, or
    controller switch-graph edge) and opens the session.
    @raise Invalid_argument for unknown ASes or an existing link. *)

val settle : ?max_events:int -> t -> Engine.Time.t
(** Run until the event queue drains (full protocol quiescence including
    MRAI timers).  @raise Failure at the event-limit safety valve. *)

val run_until : t -> Engine.Time.t -> unit

val now : t -> Engine.Time.t

(* --- Data plane --- *)

type data_stats = { mutable forwarded : int; mutable dropped : int; mutable delivered : int }

val data_stats : t -> data_stats

val inject : t -> src:Net.Asn.t -> Net.Packet.t -> unit
(** Start a packet at an AS, as if emitted by a local host. *)

val subscribe_deliver : t -> (Net.Asn.t -> Net.Packet.t -> unit) -> unit
(** Called on every locally delivered packet. *)

val set_auto_reply : t -> bool -> unit
(** Whether delivered echo requests generate replies (default true). *)

val add_local_prefix : t -> Net.Asn.t -> Net.Ipv4.prefix -> unit

val remove_local_prefix : t -> Net.Asn.t -> Net.Ipv4.prefix -> unit

val is_local_addr : t -> Net.Asn.t -> Net.Ipv4.addr -> bool

type forwarding = Local | Next of int | No_route

val forwarding_at : t -> Net.Asn.t -> Net.Ipv4.addr -> forwarding
(** The AS's current forwarding decision for an address (FIB for legacy,
    flow table for SDN members). *)
