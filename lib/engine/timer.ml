(* Restartable one-shot timer on top of the scheduler.

   This is the shape both BGP MRAI timers and the controller's delayed
   recomputation need: arm, coalesce while armed, cancel, fire once.
   The armed deadline is remembered ([due]) so node checkpoints can
   capture and re-arm timers at their original absolute expiry. *)

type t = {
  sim : Sim.t;
  name : string;
  category : string;
  callback : unit -> unit;
  mutable armed : Sim.handle option;
  mutable deadline : Time.t option;
  mutable fires : int;
}

let create ?(category = "timer") sim ~name ~callback =
  { sim; name; category; callback; armed = None; deadline = None; fires = 0 }

let is_armed t =
  match t.armed with
  | None -> false
  | Some h -> not (Sim.cancelled h)

let cancel t =
  (match t.armed with Some h -> Sim.cancel h | None -> ());
  t.armed <- None;
  t.deadline <- None

let fire t () =
  t.armed <- None;
  t.deadline <- None;
  t.fires <- t.fires + 1;
  t.callback ()

let start_at t at =
  cancel t;
  t.deadline <- Some at;
  t.armed <- Some (Sim.schedule_at ~category:t.category t.sim at (fire t))

let start t span = start_at t (Time.add (Sim.now t.sim) span)

let start_if_idle t span = if not (is_armed t) then start t span

let due t = if is_armed t then t.deadline else None

let fires t = t.fires

let name t = t.name
