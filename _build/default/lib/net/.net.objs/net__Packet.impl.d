lib/net/packet.ml: Fmt Ipv4 String
