(* BGP path attributes. *)

type origin = Igp | Egp | Incomplete

let origin_rank = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

let origin_to_string = function Igp -> "i" | Egp -> "e" | Incomplete -> "?"

type t = {
  as_path : Net.Asn.t list; (* leftmost = most recent hop *)
  next_hop : Net.Ipv4.addr;
  local_pref : int;
  med : int;
  origin : origin;
  communities : Community.Set.t;
}

let default_local_pref = 100

let make ?(as_path = []) ?(local_pref = default_local_pref) ?(med = 0) ?(origin = Igp)
    ?(communities = Community.Set.empty) ~next_hop () =
  { as_path; next_hop; local_pref; med; origin; communities }

let as_path t = t.as_path

let path_length t = List.length t.as_path

let path_contains t asn = List.exists (Net.Asn.equal asn) t.as_path

let prepend t asn = { t with as_path = asn :: t.as_path }

let origin_as t =
  match List.rev t.as_path with [] -> None | last :: _ -> Some last

let neighbor_as t = match t.as_path with [] -> None | first :: _ -> Some first

let with_local_pref t lp = { t with local_pref = lp }

let with_next_hop t nh = { t with next_hop = nh }

let with_med t med = { t with med }

let add_community t c = { t with communities = Community.Set.add c t.communities }

let has_community t c = Community.Set.mem c t.communities

(* Equality of everything a peer would see on the wire: used to suppress
   duplicate advertisements in Adj-RIB-Out. *)
let wire_equal a b =
  List.length a.as_path = List.length b.as_path
  && List.for_all2 Net.Asn.equal a.as_path b.as_path
  && Net.Ipv4.equal_addr a.next_hop b.next_hop
  && a.med = b.med
  && a.origin = b.origin
  && Community.Set.equal a.communities b.communities

let pp_path ppf path =
  if path = [] then Fmt.string ppf "(empty)"
  else Fmt.(list ~sep:(any " ") Net.Asn.pp) ppf path

let pp ppf t =
  Fmt.pf ppf "path=[%a] nh=%a lp=%d med=%d origin=%s" pp_path t.as_path Net.Ipv4.pp_addr
    t.next_hop t.local_pref t.med (origin_to_string t.origin)
